// Tests of the fault-injection and resilience layer: seeded drop/delay
// injection with retransmission, capped exponential NACK backoff, CQ-pressure
// bursts, NIC failure with multi-NIC failover (fabric-internal and through
// UNR's splitter), and determinism of faulty runs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/log.hpp"
#include "common/profile.hpp"
#include "fabric/fabric.hpp"
#include "runtime/world.hpp"
#include "sim/cond.hpp"
#include "unr/unr.hpp"

namespace unr::fabric {
namespace {

using sim::Cond;
using sim::Kernel;

Fabric::Config two_node_cfg(unr::SystemProfile prof = unr::make_hpc_ib()) {
  Fabric::Config c;
  c.nodes = 2;
  c.ranks_per_node = 1;
  c.profile = std::move(prof);
  c.deterministic_routing = true;
  return c;
}

TEST(FaultInjector, RejectsBadRates) {
  EXPECT_THROW(FaultInjector({.drop_rate = 1.0}, 1), std::logic_error);
  EXPECT_THROW(FaultInjector({.drop_rate = -0.1}, 1), std::logic_error);
  EXPECT_THROW(FaultInjector({.delay_rate = 1.5}, 1), std::logic_error);
  EXPECT_NO_THROW(FaultInjector({.drop_rate = 0.99, .delay_rate = 1.0}, 1));
}

TEST(FaultInjector, DisabledClassesNeverDraw) {
  // With everything off the injector must not consume randomness — that is
  // the determinism contract that keeps faults-off runs bit-identical.
  FaultInjector inj({}, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop_delivery());
    EXPECT_EQ(inj.extra_delay(), 0);
  }
  EXPECT_EQ(inj.drops_injected(), 0u);
  EXPECT_EQ(inj.delays_injected(), 0u);
}

TEST(Backoff, FirstRetryKeepsBaseDelayThenGrowsToCap) {
  auto cfg = two_node_cfg();
  cfg.retry.jitter_frac = 0.0;  // exact values
  Kernel k;
  Fabric f(k, cfg);
  const Time base = cfg.profile.cq_retry_delay;
  EXPECT_EQ(f.nack_backoff_delay(1), base);
  EXPECT_EQ(f.nack_backoff_delay(2), 2 * base);
  EXPECT_EQ(f.nack_backoff_delay(3), 4 * base);
  EXPECT_EQ(f.nack_backoff_delay(6), 32 * base);   // hits the default cap (32x)
  EXPECT_EQ(f.nack_backoff_delay(20), 32 * base);  // stays capped
}

TEST(Backoff, JitterIsBoundedAndDeterministic) {
  auto cfg = two_node_cfg();
  cfg.retry.jitter_frac = 0.25;
  const Time base = cfg.profile.cq_retry_delay;
  std::vector<Time> first;
  for (int run = 0; run < 2; ++run) {
    Kernel k;
    Fabric f(k, cfg);
    std::vector<Time> delays;
    for (int a = 2; a < 8; ++a) delays.push_back(f.nack_backoff_delay(a));
    for (std::size_t i = 0; i < delays.size(); ++i) {
      const Time raw = std::min<Time>(base << (i + 1), 32 * base);
      EXPECT_GE(delays[i], raw);
      EXPECT_LE(delays[i], raw + raw / 4);
    }
    if (run == 0)
      first = delays;
    else
      EXPECT_EQ(first, delays);  // same seed, same jitter
  }
}

TEST(Backoff, PreviewIsConstAndPerFlightStreamsDesynchronize) {
  auto cfg = two_node_cfg();
  cfg.retry.jitter_frac = 0.25;
  Kernel k;
  // Const: previewing delays is a pure function of the configuration and can
  // never shift the jitter sequence the simulation itself sees.
  const Fabric f(k, cfg);
  EXPECT_EQ(f.nack_backoff_delay(4, 17), f.nack_backoff_delay(4, 17));
  // Different flights retrying the same attempt number fan out — this is
  // what breaks up lockstep retry storms.
  bool differs = false;
  for (std::uint64_t s = 1; s <= 8 && !differs; ++s)
    differs = f.nack_backoff_delay(4, s) != f.nack_backoff_delay(4, s + 8);
  EXPECT_TRUE(differs);
}

TEST(Backoff, CustomPolicyRespected) {
  auto cfg = two_node_cfg();
  cfg.retry.multiplier = 1.0;  // fixed-delay policy (the pre-backoff behavior)
  cfg.retry.jitter_frac = 0.0;
  Kernel k;
  Fabric f(k, cfg);
  for (int a : {1, 2, 5, 50})
    EXPECT_EQ(f.nack_backoff_delay(a), cfg.profile.cq_retry_delay);
}

TEST(Resilience, InjectedDropsAreRetransmitted) {
  auto cfg = two_node_cfg();
  cfg.seed = 7;
  cfg.faults.drop_rate = 0.25;
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> src(64), dst(50 * 64);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i + 3);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  int delivered = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(10 * kMs);
      return;
    }
    for (int i = 0; i < 50; ++i) {
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = src.data();
      a.dst = {1, mr, static_cast<std::size_t>(i) * 64};
      a.size = 64;
      a.on_delivered = [&] { delivered++; };
      f.put(std::move(a));
    }
    Kernel::current()->sleep_for(10 * kMs);
  });
  EXPECT_EQ(delivered, 50);  // every drop was recovered
  EXPECT_GT(f.stats().resilience.injected_drops, 0u);
  EXPECT_EQ(f.stats().resilience.retransmits, f.stats().resilience.injected_drops);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(std::memcmp(dst.data() + i * 64, src.data(), 64), 0) << "put " << i;
}

TEST(Resilience, InjectedDelayPostponesArrival) {
  auto cfg = two_node_cfg();
  cfg.faults.delay_rate = 1.0;  // every delivery held up
  cfg.faults.delay_max = 50 * kUs;
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  Time arrival = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(1 * kMs);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = &one;
    a.dst = {1, mr, 0};
    a.size = 1;
    a.on_delivered = [&] { arrival = k.now(); };
    f.put(std::move(a));
    Kernel::current()->sleep_for(1 * kMs);
  });
  const auto& p = f.profile();
  const Time undelayed = p.nic_overhead + serialize_ns(1, p.nic_gbps) + p.wire_latency;
  EXPECT_GT(arrival, undelayed);
  EXPECT_LE(arrival, undelayed + cfg.faults.delay_max);
  EXPECT_EQ(f.stats().resilience.injected_delays, 1u);
}

TEST(Resilience, OrderedCompanionNeverOvertakesDataUnderDropsAndDelays) {
  // The companion pattern at fabric level: an ordered data PUT immediately
  // followed by an ordered AM on the same (src,dst) channel. Injected drops
  // and delays must stall the FIFO, never reorder it — when the AM fires,
  // the data it announces must already be visible.
  auto cfg = two_node_cfg();
  cfg.seed = 21;
  cfg.faults.drop_rate = 0.3;
  cfg.faults.delay_rate = 0.5;
  cfg.faults.delay_max = 30 * kUs;
  Kernel k;
  Fabric f(k, cfg);
  constexpr int kIters = 100;
  constexpr std::size_t kMsg = 8;
  std::vector<std::byte> dst(kIters * kMsg, std::byte{0});
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  int notified = 0;
  f.set_am_handler(1, 7, [&](int, const std::vector<std::byte>& p) {
    int i = -1;
    ASSERT_EQ(p.size(), sizeof i);
    std::memcpy(&i, p.data(), sizeof i);
    for (std::size_t b = 0; b < kMsg; ++b)
      ASSERT_EQ(dst[static_cast<std::size_t>(i) * kMsg + b],
                static_cast<std::byte>(i & 0xFF))
          << "companion overtook its data at iteration " << i;
    notified++;
  });
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(100 * kMs);
      return;
    }
    std::vector<std::byte> buf(kMsg);
    for (int i = 0; i < kIters; ++i) {
      std::fill(buf.begin(), buf.end(), static_cast<std::byte>(i & 0xFF));
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = buf.data();
      a.dst = {1, mr, static_cast<std::size_t>(i) * kMsg};
      a.size = kMsg;
      a.ordered = true;
      f.put(std::move(a));
      std::vector<std::byte> payload(sizeof i);
      std::memcpy(payload.data(), &i, sizeof i);
      f.send_am(0, 1, 7, std::move(payload), -1, /*ordered=*/true);
    }
    Kernel::current()->sleep_for(100 * kMs);
  });
  EXPECT_EQ(notified, kIters);
  EXPECT_GT(f.stats().resilience.injected_drops, 0u);
  EXPECT_GT(f.stats().resilience.injected_delays, 0u);
}

TEST(Resilience, OrderedCompanionSurvivesMidFlightNicDeath) {
  // A NIC dies while an ordered data+companion pair is still in its send
  // engine: both messages are lost with the NIC and retransmitted in FIFO
  // order (data first), so the notification still cannot overtake the data.
  auto cfg = two_node_cfg(unr::make_th_xy());  // multi-NIC node
  cfg.faults.nic_faults.push_back({.node = 0, .index = 0, .at = 5 * kUs});
  Kernel k;
  Fabric f(k, cfg);
  const std::size_t msg = 1 * MiB;  // long serialization: dies mid-flight
  std::vector<std::byte> src(msg), dst(msg, std::byte{0});
  for (std::size_t i = 0; i < msg; ++i) src[i] = static_cast<std::byte>(i % 251);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  bool notified = false;
  f.set_am_handler(1, 7, [&](int, const std::vector<std::byte>&) {
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), msg), 0)
        << "companion overtook the data lost to the NIC failure";
    notified = true;
  });
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(10 * kMs);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = src.data();
    a.dst = {1, mr, 0};
    a.size = msg;
    a.nic_index = 0;
    a.ordered = true;
    f.put(std::move(a));
    f.send_am(0, 1, 7, std::vector<std::byte>(8), /*nic_index=*/0, /*ordered=*/true);
    Kernel::current()->sleep_for(10 * kMs);
  });
  EXPECT_TRUE(notified);
  EXPECT_GE(f.stats().resilience.lost_to_nic, 2u);  // the data AND its companion
  EXPECT_GE(f.stats().resilience.retransmits, 2u);
}

TEST(Resilience, OrderedStreamStaysFifoAcrossNicDeathFailover) {
  // Regression (found by the fuzz harness, seed 60): a big ordered message
  // is in NIC 0's send engine when the NIC dies; a second ordered message to
  // the same peer is sent after the death and reroutes to NIC 1. The lost
  // message's recovery re-enters the launch path and reserves a *later*
  // FIFO slot, so without receiver-side sequencing the younger message
  // overtakes it — reordering the (src,dst) ordered stream that two-sided
  // eager traffic and level-0 companions rely on.
  auto cfg = two_node_cfg(unr::make_th_xy());  // multi-NIC node
  cfg.faults.nic_faults.push_back({.node = 0, .index = 0, .at = 5 * kUs});
  Kernel k;
  Fabric f(k, cfg);
  std::vector<int> order;
  f.set_am_handler(1, 7, [&](int, const std::vector<std::byte>& p) {
    order.push_back(static_cast<int>(std::to_integer<unsigned char>(p[0])));
  });
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(10 * kMs);
      return;
    }
    // Long serialization: still in tx at the 5us death, lost with the NIC.
    f.send_am(0, 1, 7, std::vector<std::byte>(1 * MiB, std::byte{1}),
              /*nic_index=*/0, /*ordered=*/true);
    Kernel::current()->sleep_for(10 * kUs);  // NIC 0 is dead by now
    f.send_am(0, 1, 7, std::vector<std::byte>(8, std::byte{2}),
              /*nic_index=*/0, /*ordered=*/true);
    Kernel::current()->sleep_for(10 * kMs);
  });
  EXPECT_GE(f.stats().resilience.lost_to_nic, 1u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Resilience, AmRetransmissionConsumesNicBandwidth) {
  // A dropped AM re-enters the launch path: every retransmission reserves
  // the source NIC's send engine again (one tx per traversal, not one per
  // AM) and pays the wire latency through the normal arrival model.
  auto cfg = two_node_cfg();
  cfg.seed = 5;
  cfg.faults.drop_rate = 0.25;
  Kernel k;
  Fabric f(k, cfg);
  int delivered = 0;
  f.set_am_handler(1, 3, [&](int, const std::vector<std::byte>&) { delivered++; });
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(10 * kMs);
      return;
    }
    for (int i = 0; i < 200; ++i)
      f.send_am(0, 1, 3, std::vector<std::byte>(16), -1, /*ordered=*/false);
    Kernel::current()->sleep_for(10 * kMs);
  });
  EXPECT_EQ(delivered, 200);
  const auto& rs = f.stats().resilience;
  EXPECT_GT(rs.injected_drops, 0u);
  EXPECT_EQ(f.nic(0, 0).tx_messages(), f.stats().ams + rs.retransmits);
}

TEST(Resilience, CqBurstForcesBackoffThenDrains) {
  auto cfg = two_node_cfg();
  cfg.profile.cq_depth = 4;
  // Occupy the whole remote CQ on (1, 0) from t=0 for 100 us.
  cfg.faults.cq_bursts.push_back({.node = 1, .index = 0, .at = 0, .entries = 4,
                                  .duration = 100 * kUs});
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  Time arrival = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(1 * kMs);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = &one;
    a.dst = {1, mr, 0};
    a.size = 1;
    a.want_remote_cqe = true;
    a.on_delivered = [&] { arrival = k.now(); };
    f.put(std::move(a));
    Kernel::current()->sleep_for(1 * kMs);
  });
  EXPECT_GE(arrival, 100 * kUs);  // could not land before the burst lifted
  EXPECT_GT(f.stats().cq_retries, 0u);
  EXPECT_GT(f.stats().resilience.backoff_ns, 0u);
  EXPECT_EQ(f.nic(1, 0).remote_cq().size(), 1u);  // the CQE did land
}

TEST(Resilience, NicFailureLosesInFlightAndFabricRetransmits) {
  // 2 NICs per node; a large PUT is still serializing on NIC 0 when the NIC
  // dies. No on_lost handler is set, so the fabric itself re-sends on the
  // surviving NIC after the detection timeout.
  auto cfg = two_node_cfg(unr::make_th_xy());
  cfg.faults.nic_faults.push_back({.node = 0, .index = 0, .at = 5 * kUs});
  Kernel k;
  Fabric f(k, cfg);
  const std::size_t msg = 1 * MiB;  // ~40 us of serialization: dies mid-flight
  std::vector<std::byte> src(msg), dst(msg);
  for (std::size_t i = 0; i < msg; ++i) src[i] = static_cast<std::byte>(i % 251);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  int delivered = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(10 * kMs);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = src.data();
    a.dst = {1, mr, 0};
    a.size = msg;
    a.nic_index = 0;
    a.on_delivered = [&] { delivered++; };
    f.put(std::move(a));
    Kernel::current()->sleep_for(10 * kMs);
  });
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), msg), 0);
  const auto& rs = f.stats().resilience;
  EXPECT_EQ(rs.nic_failures, 1u);
  EXPECT_EQ(rs.lost_to_nic, 1u);
  EXPECT_GE(rs.failovers, 1u);
  EXPECT_GE(rs.retransmits, 1u);
  EXPECT_TRUE(f.nic(0, 0).failed());
  EXPECT_FALSE(f.nic(0, 1).failed());
  EXPECT_EQ(f.healthy_nic_count(0), 1);
}

TEST(Resilience, PostTimeFailoverAvoidsDeadNic) {
  auto cfg = two_node_cfg(unr::make_th_xy());
  cfg.faults.nic_faults.push_back({.node = 0, .index = 0, .at = 1});
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  int delivered = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(1 * kMs);
      return;
    }
    Kernel::current()->sleep_for(10);  // the NIC is already dead by now
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = &one;
    a.dst = {1, mr, 0};
    a.size = 1;
    a.nic_index = 0;  // explicitly requests the dead NIC
    a.on_delivered = [&] { delivered++; };
    f.put(std::move(a));
    Kernel::current()->sleep_for(1 * kMs);
  });
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(f.stats().resilience.failovers, 1u);
  EXPECT_EQ(f.nic(0, 0).tx_messages(), 0u);  // nothing ever used the dead NIC
  EXPECT_GT(f.nic(0, 1).tx_messages(), 0u);
}

TEST(Resilience, AllNicsDeadFailsLoudly) {
  auto cfg = two_node_cfg();  // 1 NIC per node
  cfg.faults.nic_faults.push_back({.node = 0, .index = 0, .at = 1});
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  EXPECT_THROW(k.run(2,
                     [&](int id) {
                       if (id != 0) return;
                       Kernel::current()->sleep_for(10);
                       Fabric::PutArgs a;
                       a.src_rank = 0;
                       a.src = &one;
                       a.dst = {1, mr, 0};
                       a.size = 1;
                       f.put(std::move(a));
                     }),
               std::logic_error);
}

TEST(Resilience, FaultyRunsAreDeterministic) {
  // Same seed + same fault schedule => identical delivery times and counters.
  auto run_once = [](std::vector<Time>* times, Fabric::Stats* stats) {
    auto cfg = two_node_cfg();
    cfg.seed = 99;
    cfg.deterministic_routing = false;  // jitter on: the hardest case
    cfg.profile.jitter = 300;
    cfg.faults.drop_rate = 0.2;
    cfg.faults.delay_rate = 0.3;
    cfg.faults.delay_max = 10 * kUs;
    Kernel k;
    Fabric f(k, cfg);
    std::vector<std::byte> dst(32 * 8);
    const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
    std::byte one{1};
    k.run(2, [&](int id) {
      if (id != 0) {
        Kernel::current()->sleep_for(10 * kMs);
        return;
      }
      for (int i = 0; i < 32; ++i) {
        Fabric::PutArgs a;
        a.src_rank = 0;
        a.src = &one;
        a.dst = {1, mr, static_cast<std::size_t>(i) * 8};
        a.size = 1;
        a.on_delivered = [&, i] { times->push_back(k.now()); };
        f.put(std::move(a));
      }
      Kernel::current()->sleep_for(10 * kMs);
    });
    *stats = f.stats();
  };
  std::vector<Time> t1, t2;
  Fabric::Stats s1, s2;
  run_once(&t1, &s1);
  run_once(&t2, &s2);
  ASSERT_EQ(t1.size(), 32u);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.resilience.injected_drops, s2.resilience.injected_drops);
  EXPECT_EQ(s1.resilience.injected_delays, s2.resilience.injected_delays);
  EXPECT_GT(s1.resilience.injected_drops, 0u);
}

}  // namespace
}  // namespace unr::fabric

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

// ---- The acceptance scenario from the issue: a K=4 split transfer stream
// survives a mid-run NIC failure by degrading to the surviving NICs, and the
// resilience counters record at least one failover.
TEST(Resilience, SplitPutStreamSurvivesNicFailureViaFailover) {
  unr::SystemProfile prof = unr::make_th_xy();  // GLEX: 128 custom bits
  prof.nics_per_node = 4;
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  // Kill NIC 1 on the sending node while the put stream is in full flight.
  wc.faults.nic_faults.push_back({.node = 0, .index = 1, .at = 100 * kUs});
  World w(wc);
  Unr unr(w);

  constexpr int kIters = 20;
  constexpr std::size_t kMsg = 1 * MiB;  // splits 4 ways (>= split_threshold)
  std::vector<std::byte> src(kMsg), dst(kIters * kMsg);
  for (std::size_t i = 0; i < kMsg; ++i) src[i] = static_cast<std::byte>(i % 249);

  bool received = false;
  w.run([&](Rank& r) {
    if (r.id() == 1) {
      const MemHandle mh = unr.mem_reg(1, dst.data(), dst.size());
      const SigId rsig = unr.sig_init(1, kIters);
      const Blk rblk = unr.blk_init(1, mh, 0, dst.size(), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      received = true;
    } else {
      const MemHandle mh = unr.mem_reg(0, src.data(), src.size());
      Blk whole;
      r.recv(1, 1, &whole, sizeof whole);
      const SigId ssig = unr.sig_init(0, kIters);
      const Blk sblk = unr.blk_init(0, mh, 0, kMsg, ssig);
      for (int i = 0; i < kIters; ++i) {
        // Carve the i-th destination slice out of the receiver's block.
        Blk slice = whole;
        slice.offset = whole.offset + static_cast<std::size_t>(i) * kMsg;
        slice.size = kMsg;
        PutOptions opts;
        opts.local_sig = ssig;
        unr.put(0, sblk, slice, opts);
      }
      unr.sig_wait(0, ssig);
    }
  });

  EXPECT_TRUE(received);
  for (int i = 0; i < kIters; ++i)
    EXPECT_EQ(std::memcmp(dst.data() + static_cast<std::size_t>(i) * kMsg, src.data(),
                          kMsg),
              0)
        << "iteration " << i;
  const auto& rs = w.fabric().stats().resilience;
  EXPECT_EQ(rs.nic_failures, 1u);
  EXPECT_GE(rs.failovers, 1u);          // the acceptance criterion
  EXPECT_GE(unr.stats().failovers, 1u); // fragments re-issued by the splitter
  EXPECT_GT(unr.stats().fragments, 0u);
}

TEST(Resilience, SplitDegradesToSurvivingNicCount) {
  // With a NIC already dead, a fresh large put splits (K-1) ways.
  unr::SystemProfile prof = unr::make_th_xy();
  prof.nics_per_node = 4;
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  wc.faults.nic_faults.push_back({.node = 0, .index = 2, .at = 1});
  World w(wc);
  Unr unr(w);

  constexpr std::size_t kMsg = 1 * MiB;
  std::vector<std::byte> src(kMsg), dst(kMsg);
  w.run([&](Rank& r) {
    if (r.id() == 1) {
      const MemHandle mh = unr.mem_reg(1, dst.data(), dst.size());
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, kMsg, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      const MemHandle mh = unr.mem_reg(0, src.data(), src.size());
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      r.kernel().sleep_for(10);  // ensure the fault event has fired
      unr.put(0, unr.blk_init(0, mh, 0, kMsg), rblk);
    }
  });
  // 3 fragments (k=3), not 4: the dead NIC earns no fragment.
  EXPECT_EQ(unr.stats().fragments, 2u);
  EXPECT_EQ(w.fabric().nic(0, 2).tx_messages(), 0u);
}

TEST(Resilience, Level0CompanionChannelDeliversUnderDrops) {
  // Level 0 sends every notification as an ordered companion message behind
  // its data. With drop injection on, the fabric's FIFO-preserving
  // retransmission must keep each companion behind its (possibly dropped
  // and retransmitted) data: when the final signal fires, every slice must
  // already hold its payload.
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = unr::make_hpc_ib();
  wc.deterministic_routing = true;
  wc.seed = 13;
  wc.faults.drop_rate = 0.2;
  World w(wc);
  Unr::Config ucfg;
  ucfg.channel = ChannelKind::kLevel0;
  Unr unr(w, ucfg);

  constexpr int kIters = 30;
  constexpr std::size_t kMsg = 4 * KiB;
  std::vector<std::byte> src(kMsg), dst(kIters * kMsg, std::byte{0});
  w.run([&](Rank& r) {
    if (r.id() == 1) {
      const MemHandle mh = unr.mem_reg(1, dst.data(), dst.size());
      const SigId rsig = unr.sig_init(1, kIters);
      const Blk rblk = unr.blk_init(1, mh, 0, dst.size(), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      const MemHandle mh = unr.mem_reg(0, src.data(), src.size());
      Blk whole;
      r.recv(1, 1, &whole, sizeof whole);
      const Blk sblk = unr.blk_init(0, mh, 0, kMsg);
      for (int i = 0; i < kIters; ++i) {
        for (std::size_t b = 0; b < kMsg; ++b)
          src[b] = static_cast<std::byte>((i + static_cast<int>(b)) % 253);
        Blk slice = whole;
        slice.offset = whole.offset + static_cast<std::size_t>(i) * kMsg;
        slice.size = kMsg;
        unr.put(0, sblk, slice);
      }
    }
  });
  // The signal fired: every slice's data must have been visible no later
  // than its companion notification.
  for (int i = 0; i < kIters; ++i)
    for (std::size_t b = 0; b < kMsg; ++b)
      ASSERT_EQ(dst[static_cast<std::size_t>(i) * kMsg + b],
                static_cast<std::byte>((i + static_cast<int>(b)) % 253))
          << "iteration " << i << " byte " << b;
  EXPECT_GT(unr.stats().companions, 0u);
  EXPECT_GT(w.fabric().stats().resilience.injected_drops, 0u);
}

TEST(Resilience, NativeCompanionFallbackDeliversUnderDrops) {
  // The native channel's escape hatch (channel_native.cpp): when a split's
  // MMAS addend does not fit the interface's custom bits (uTofu: 8 remote
  // bits), the fragment degrades to an ordered PUT plus an ordered
  // companion — exactly the pair that relies on fabric-internal,
  // FIFO-preserving retransmission under drop injection.
  unr::SystemProfile prof = unr::make_hpc_ib();
  prof.iface = unr::Interface::kUtofu;
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  wc.seed = 29;
  wc.faults.drop_rate = 0.15;
  World w(wc);
  Unr unr(w);  // auto => native channel

  constexpr int kIters = 20;
  constexpr std::size_t kMsg = 16 * KiB;
  std::vector<std::byte> src(kMsg), dst(kIters * kMsg, std::byte{0});
  w.run([&](Rank& r) {
    if (r.id() == 1) {
      const MemHandle mh = unr.mem_reg(1, dst.data(), dst.size());
      const SigId rsig = unr.sig_init(1, kIters);
      const Blk rblk = unr.blk_init(1, mh, 0, dst.size(), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      const MemHandle mh = unr.mem_reg(0, src.data(), src.size());
      Blk whole;
      r.recv(1, 1, &whole, sizeof whole);
      const Blk sblk = unr.blk_init(0, mh, 0, kMsg);
      for (int i = 0; i < kIters; ++i) {
        for (std::size_t b = 0; b < kMsg; ++b)
          src[b] = static_cast<std::byte>((3 * i + static_cast<int>(b)) % 241);
        Blk slice = whole;
        slice.offset = whole.offset + static_cast<std::size_t>(i) * kMsg;
        slice.size = kMsg;
        PutOptions opts;
        opts.force_split = 2;  // MMAS addends overflow uTofu's 8 bits
        unr.put(0, sblk, slice, opts);
      }
    }
  });
  for (int i = 0; i < kIters; ++i)
    for (std::size_t b = 0; b < kMsg; ++b)
      ASSERT_EQ(dst[static_cast<std::size_t>(i) * kMsg + b],
                static_cast<std::byte>((3 * i + static_cast<int>(b)) % 241))
          << "iteration " << i << " byte " << b;
  EXPECT_GT(unr.stats().encode_fallbacks, 0u);  // the fallback actually fired
  EXPECT_GT(unr.stats().companions, 0u);
  EXPECT_GT(w.fabric().stats().resilience.injected_drops, 0u);
}

TEST(Resilience, SigWaitForTimesOutOnWedgedTransfer) {
  // A transfer that can never complete (its peer never sends) times out
  // instead of hanging the actor forever.
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = unr::make_hpc_ib();
  wc.deterministic_routing = true;
  World w(wc);
  Unr unr(w);
  bool timed_out = false;
  Time woke = 0;
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId sig = unr.sig_init(0, 1);
    timed_out = !unr.sig_wait_for(0, sig, 50 * kUs);
    woke = r.now();
  });
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(woke, 50 * kUs);
}

}  // namespace
}  // namespace unr::unrlib
