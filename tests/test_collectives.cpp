// Collectives over the two-sided runtime: correctness across rank counts
// (powers of two and not), plus a timing sanity check for barrier.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"

namespace unr::runtime {
namespace {

World::Config cfg_n(int nodes, int rpn = 1) {
  World::Config c;
  c.nodes = nodes;
  c.ranks_per_node = rpn;
  c.profile = unr::make_hpc_ib();
  c.deterministic_routing = true;
  return c;
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BarrierSynchronizes) {
  World w(cfg_n(GetParam()));
  std::vector<Time> after(static_cast<std::size_t>(w.nranks()));
  w.run([&](Rank& r) {
    // Stagger arrivals; everyone must leave at/after the last arrival.
    r.kernel().sleep_for(static_cast<Time>(r.id()) * 10 * kUs);
    r.barrier();
    after[static_cast<std::size_t>(r.id())] = r.now();
  });
  const Time last_arrival = static_cast<Time>(w.nranks() - 1) * 10 * kUs;
  for (Time t : after) EXPECT_GE(t, last_arrival);
}

TEST_P(CollectivesP, BcastDeliversFromEveryRoot) {
  World w(cfg_n(GetParam()));
  const int p = w.nranks();
  for (int root = 0; root < p; root = root * 2 + 1) {
    std::vector<int> got(static_cast<std::size_t>(p), -1);
    w.run([&](Rank& r) {
      int v = r.id() == root ? 4242 + root : -1;
      r.bcast(root, &v, sizeof v);
      got[static_cast<std::size_t>(r.id())] = v;
    });
    for (int v : got) EXPECT_EQ(v, 4242 + root);
    break;  // one World::run per World; root sweep happens across param cases
  }
}

TEST_P(CollectivesP, AllreduceSum) {
  World w(cfg_n(GetParam()));
  const int p = w.nranks();
  std::vector<double> results(static_cast<std::size_t>(p), 0.0);
  w.run([&](Rank& r) {
    double v[3] = {1.0, static_cast<double>(r.id()), 2.0};
    r.allreduce_sum(v, 3);
    results[static_cast<std::size_t>(r.id())] = v[1];
    EXPECT_DOUBLE_EQ(v[0], static_cast<double>(p));
    EXPECT_DOUBLE_EQ(v[2], 2.0 * p);
  });
  const double expect = p * (p - 1) / 2.0;
  for (double v : results) EXPECT_DOUBLE_EQ(v, expect);
}

TEST_P(CollectivesP, AllgatherCollectsAllBlocks) {
  World w(cfg_n(GetParam()));
  const int p = w.nranks();
  bool ok = true;
  w.run([&](Rank& r) {
    const int mine = r.id() * 3 + 1;
    std::vector<int> all(static_cast<std::size_t>(p));
    r.allgather(&mine, all.data(), sizeof(int));
    for (int i = 0; i < p; ++i)
      if (all[static_cast<std::size_t>(i)] != i * 3 + 1) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST_P(CollectivesP, AlltoallTransposesBlocks) {
  World w(cfg_n(GetParam()));
  const int p = w.nranks();
  bool ok = true;
  w.run([&](Rank& r) {
    std::vector<int> send(static_cast<std::size_t>(p)), recv(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      send[static_cast<std::size_t>(i)] = r.id() * 1000 + i;  // to rank i
    r.alltoall(send.data(), recv.data(), sizeof(int));
    for (int i = 0; i < p; ++i)
      if (recv[static_cast<std::size_t>(i)] != i * 1000 + r.id()) ok = false;
  });
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesP, ::testing::Values(1, 2, 3, 4, 7, 8, 16),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "p" + std::to_string(i.param);
                         });

TEST(Collectives, AlltoallvVariableBlocks) {
  World w(cfg_n(4));
  bool ok = true;
  w.run([&](Rank& r) {
    const int p = r.nranks();
    const auto sp = static_cast<std::size_t>(p);
    // Rank r sends (r+1)*(d+1) ints to rank d.
    std::vector<std::size_t> scount(sp), sdisp(sp), rcount(sp), rdisp(sp);
    std::size_t stot = 0, rtot = 0;
    for (int d = 0; d < p; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      scount[sd] = sizeof(int) * static_cast<std::size_t>((r.id() + 1) * (d + 1));
      sdisp[sd] = stot;
      stot += scount[sd];
      rcount[sd] = sizeof(int) * static_cast<std::size_t>((d + 1) * (r.id() + 1));
      rdisp[sd] = rtot;
      rtot += rcount[sd];
    }
    std::vector<int> send(stot / sizeof(int)), recv(rtot / sizeof(int), -1);
    for (int d = 0; d < p; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      int* base = send.data() + sdisp[sd] / sizeof(int);
      for (std::size_t i = 0; i < scount[sd] / sizeof(int); ++i)
        base[i] = r.id() * 100 + d;
    }
    alltoallv(r.comm(), r.id(), send.data(), scount, sdisp, recv.data(), rcount, rdisp);
    for (int d = 0; d < p; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      const int* base = recv.data() + rdisp[sd] / sizeof(int);
      for (std::size_t i = 0; i < rcount[sd] / sizeof(int); ++i)
        if (base[i] != d * 100 + r.id()) ok = false;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Collectives, GatherAtRoot) {
  World w(cfg_n(5));
  std::vector<int> got(5, -1);
  w.run([&](Rank& r) {
    const int mine = r.id() * r.id();
    gather(r.comm(), r.id(), /*root=*/2, &mine, got.data(), sizeof(int));
  });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i * i);
}

TEST(Collectives, AllreduceMaxCorrectValue) {
  World w(cfg_n(6));
  std::vector<double> got(6, -1.0);
  w.run([&](Rank& r) {
    double v = static_cast<double>((r.id() * 37) % 11);
    allreduce_max(r.comm(), r.id(), &v, 1);
    got[static_cast<std::size_t>(r.id())] = v;
  });
  for (double v : got) EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossTalk) {
  World w(cfg_n(4));
  bool ok = true;
  w.run([&](Rank& r) {
    for (int iter = 0; iter < 10; ++iter) {
      double v = 1.0;
      r.allreduce_sum(&v, 1);
      if (v != 4.0) ok = false;
      r.barrier();
    }
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace unr::runtime
