// Solver variants: PDD tridiagonal method end-to-end, overlap toggle,
// fallback-channel backend, and PSCW group semantics beyond pairs.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "powerllel/solver.hpp"
#include "runtime/window.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {
namespace {

using runtime::Rank;
using runtime::Window;
using runtime::World;

World::Config wcfg(int nranks) {
  World::Config c;
  c.nodes = nranks;
  c.profile = unr::make_th_xy();
  c.deterministic_routing = true;
  return c;
}

SolverConfig scfg(int pr, int pc, CommBackend backend, unrlib::Unr* unr) {
  SolverConfig sc;
  sc.decomp.nx = 16;
  sc.decomp.ny = 16;
  sc.decomp.nz = 16;
  sc.decomp.pr = pr;
  sc.decomp.pc = pc;
  sc.lz = 2.0;
  sc.nu = 0.03;
  sc.dt = 1e-3;
  sc.bc = ZBc::kNoSlip;
  sc.backend = backend;
  sc.unr = unr;
  return sc;
}

double run_solver_div(const SolverConfig& base, TridiagMethod method, bool overlap,
                      World& w) {
  double div = 1.0;
  w.run([&](Rank& r) {
    SolverConfig sc = base;
    sc.tridiag_method = method;
    sc.overlap_halo = overlap;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * z * (2 - z); },
        [](double x, double y, double) { return 0.1 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(4);
    div = s.global_max_divergence();
  });
  return div;
}

TEST(SolverVariants, PddApproxKeepsDivergenceSmall) {
  // PDD is exact for two blocks (one interface, nothing to drop) but
  // approximate from three blocks on: with pc = 4 and the weakly-dominant
  // low modes, the residual divergence sits measurably above the exact
  // sweep's round-off while remaining small.
  World w_exact(wcfg(4));
  const double div_exact =
      run_solver_div(scfg(1, 4, CommBackend::kMpi, nullptr),
                     TridiagMethod::kReducedExact, false, w_exact);
  World w_pdd(wcfg(4));
  const double div_pdd = run_solver_div(scfg(1, 4, CommBackend::kMpi, nullptr),
                                        TridiagMethod::kPddApprox, false, w_pdd);
  EXPECT_LT(div_exact, 1e-10);
  // At this TINY block size (4 z-rows per block) the dropped couplings of
  // the weak low modes are O(1): PDD's error is large — the quantitative
  // reason PowerLLEL can use PDD only with its production-scale blocks
  // (hundreds of rows), and why kReducedExact is this repo's default.
  // bench_ablation_tridiag shows the error melting with dominance.
  EXPECT_GT(div_pdd, 1e-3);
  EXPECT_LT(div_pdd, 10.0);  // still bounded: the solve is stable, not exact
}

TEST(SolverVariants, OverlapToggleDoesNotChangePhysics) {
  auto run_ke = [&](bool overlap) {
    World w(wcfg(4));
    unrlib::Unr unr(w);
    double ke = 0;
    w.run([&](Rank& r) {
      SolverConfig sc = scfg(2, 2, CommBackend::kUnr, &unr);
      sc.overlap_halo = overlap;
      Solver s(r, sc);
      s.init_velocity(
          [](double x, double y, double z) { return std::cos(x) * z * (2 - z); },
          [](double x, double y, double) { return 0.2 * std::sin(x + y); },
          [](double, double, double) { return 0.0; });
      s.run(3);
      ke = s.global_kinetic_energy();
    });
    return ke;
  };
  EXPECT_EQ(run_ke(true), run_ke(false));
}

TEST(SolverVariants, OverlapReducesVirtualTime) {
  auto run_elapsed = [&](bool overlap) {
    World w(wcfg(8));
    unrlib::Unr unr(w);
    w.run([&](Rank& r) {
      SolverConfig sc = scfg(4, 2, CommBackend::kUnr, &unr);
      sc.decomp.nx = 32;
      sc.decomp.ny = 32;
      sc.decomp.nz = 16;
      sc.overlap_halo = overlap;
      Solver s(r, sc);
      s.init_velocity(
          [](double x, double y, double z) { return std::cos(x) * z * (2 - z); },
          [](double, double, double) { return 0.0; },
          [](double, double, double) { return 0.0; });
      s.run(3);
    });
    return w.elapsed();
  };
  EXPECT_LT(run_elapsed(true), run_elapsed(false));
}

TEST(SolverVariants, FallbackBackendSamePhysics) {
  auto run_ke = [&](unrlib::ChannelKind kind) {
    World w(wcfg(4));
    unrlib::Unr::Config uc;
    uc.channel = kind;
    unrlib::Unr unr(w, uc);
    double ke = 0, div = 1;
    w.run([&](Rank& r) {
      Solver s(r, scfg(2, 2, CommBackend::kUnr, &unr));
      s.init_velocity(
          [](double x, double y, double z) { return std::sin(x + y) * z * (2 - z); },
          [](double, double, double) { return 0.0; },
          [](double, double, double) { return 0.0; });
      s.run(3);
      ke = s.global_kinetic_energy();
      div = s.global_max_divergence();
    });
    EXPECT_LT(div, 1e-10);
    return ke;
  };
  const double native = run_ke(unrlib::ChannelKind::kNative);
  const double fallback = run_ke(unrlib::ChannelKind::kMpiFallback);
  const double level4 = run_ke(unrlib::ChannelKind::kLevel4);
  EXPECT_EQ(native, fallback);
  EXPECT_EQ(native, level4);
}

TEST(WindowGroups, PscwWithMultipleOrigins) {
  // One target exposes to three origins at once; wait() must count the
  // puts of all of them.
  World w(wcfg(4));
  std::vector<double> seen;
  w.run([&](Rank& r) {
    std::vector<double> expo(4, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 4 * sizeof(double));
    if (r.id() == 0) {
      const std::array<int, 3> origins{1, 2, 3};
      win->post(0, origins);
      win->wait(0);
      seen = expo;
    } else {
      const std::array<int, 1> target{0};
      win->start(r.id(), target);
      const double v = r.id() * 1.5;
      win->put(r.id(), 0, static_cast<std::size_t>(r.id()) * sizeof(double), &v,
               sizeof v);
      win->complete(r.id());
    }
  });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[1], 1.5);
  EXPECT_EQ(seen[2], 3.0);
  EXPECT_EQ(seen[3], 4.5);
}

TEST(WindowGroups, RepeatedPscwEpochs) {
  World w(wcfg(2));
  int good = 0;
  w.run([&](Rank& r) {
    std::vector<double> expo(1, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), sizeof(double));
    const std::array<int, 1> peer{1 - r.id()};
    for (int epoch = 0; epoch < 6; ++epoch) {
      if (r.id() == 0) {
        win->start(0, peer);
        const double v = 10.0 + epoch;
        win->put(0, 1, 0, &v, sizeof v);
        win->complete(0);
        // Reverse the roles so both sides exercise post/wait.
        win->post(0, peer);
        win->wait(0);
      } else {
        win->post(1, peer);
        win->wait(1);
        if (expo[0] == 10.0 + epoch) ++good;
        win->start(1, peer);
        win->complete(1);  // empty access epoch
      }
    }
  });
  EXPECT_EQ(good, 6);
}

}  // namespace
}  // namespace unr::powerllel
