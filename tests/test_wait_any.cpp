// Unr::sig_wait_any: blocking on the union of several signals and consuming
// completions in arrival order.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config cfg(int nodes = 2) {
  World::Config c;
  c.nodes = nodes;
  c.profile = unr::make_th_xy();
  c.deterministic_routing = true;
  return c;
}

TEST(WaitAny, ReturnsImmediatelyIfOneAlreadyTriggered) {
  World w(cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId a = unr.sig_init(0, 1);
    const SigId b = unr.sig_init(0, 1);
    unr.sig_at(0, b).apply(-1);
    const std::array<SigId, 2> sigs{a, b};
    EXPECT_EQ(unr.sig_wait_any(0, sigs), 1u);
    EXPECT_EQ(r.now(), 0u);
  });
}

TEST(WaitAny, WakesOnWhicheverArrivesFirst) {
  World w(cfg());
  Unr unr(w);
  std::vector<std::size_t> order;
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId a = unr.sig_init(0, 1);
    const SigId b = unr.sig_init(0, 1);
    const SigId c = unr.sig_init(0, 1);
    // Fire them via events in a scrambled time order: c, a, b.
    r.kernel().post_in(100, [&] { unr.sig_at(0, c).apply(-1); });
    r.kernel().post_in(200, [&] { unr.sig_at(0, a).apply(-1); });
    r.kernel().post_in(300, [&] { unr.sig_at(0, b).apply(-1); });

    std::vector<SigId> pending{a, b, c};
    while (!pending.empty()) {
      const std::size_t hit = unr.sig_wait_any(0, pending);
      order.push_back(static_cast<std::size_t>(pending[hit]));
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(hit));
    }
    EXPECT_EQ(r.now(), 300u);
  });
  // Arrival order c(2), a(0), b(1) by SigId allocation order 0,1,2.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
}

TEST(WaitAny, DuplicateSigIdsWaitOnceReturnFirstIndex) {
  // Regression: the same SigId listed twice used to register the actor as a
  // waiter twice on one Cond. The contract now: duplicates are waited on
  // once, and the FIRST occurrence's index is returned when it triggers.
  World w(cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId a = unr.sig_init(0, 1);
    const SigId b = unr.sig_init(0, 1);

    // Already-triggered duplicate: scan resolves to the first occurrence.
    unr.sig_at(0, a).apply(-1);
    const std::array<SigId, 3> dup_front{a, b, a};
    EXPECT_EQ(unr.sig_wait_any(0, dup_front), 0u);
    const std::array<SigId, 3> dup_back{b, a, a};
    EXPECT_EQ(unr.sig_wait_any(0, dup_back), 1u);

    // Blocking duplicate: fresh, untriggered signals so the wait actually
    // blocks. The wake path must land on the first occurrence, and the
    // duplicate registration must not corrupt the waiter list (a second
    // wait on the same set still works).
    const SigId c = unr.sig_init(0, 1);
    const SigId d = unr.sig_init(0, 1);
    r.kernel().post_in(100, [&] { unr.sig_at(0, c).apply(-1); });
    const std::array<SigId, 4> dups{c, c, d, c};
    EXPECT_EQ(unr.sig_wait_any(0, dups), 0u);
    EXPECT_EQ(r.now(), 100u);
    EXPECT_EQ(unr.sig_wait_any(0, dups), 0u);  // still triggered, no re-arm
  });
}

TEST(WaitAny, EndToEndArrivalOrderAcrossPeers) {
  // Rank 0 waits on per-source signals from three peers who send at
  // staggered times; the indices must come back in arrival order.
  World w(cfg(4));
  Unr unr(w);
  std::vector<int> arrival_order;
  w.run([&](Rank& r) {
    std::vector<int> buf(4, -1);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 0) {
      std::vector<SigId> sigs(4, kNoSig);
      for (int src = 1; src < 4; ++src) {
        sigs[static_cast<std::size_t>(src)] = unr.sig_init(0, 1);
        const Blk slot = unr.blk_init(0, mh, static_cast<std::size_t>(src) * sizeof(int),
                                      sizeof(int), sigs[static_cast<std::size_t>(src)]);
        r.send(src, 1, &slot, sizeof slot);
      }
      std::vector<SigId> pending{sigs[1], sigs[2], sigs[3]};
      std::vector<int> sources{1, 2, 3};
      while (!pending.empty()) {
        const std::size_t hit = unr.sig_wait_any(0, pending);
        arrival_order.push_back(sources[hit]);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(hit));
        sources.erase(sources.begin() + static_cast<std::ptrdiff_t>(hit));
      }
    } else {
      Blk slot;
      r.recv(0, 1, &slot, sizeof slot);
      // Rank 3 sends first, then 1, then 2.
      const Time delay = r.id() == 3 ? 10 * kUs : (r.id() == 1 ? 200 * kUs : 400 * kUs);
      r.kernel().sleep_for(delay);
      std::vector<int> val(1, r.id() * 11);
      const MemHandle smh = unr.mem_reg(r.id(), val.data(), sizeof(int));
      unr.put(r.id(), unr.blk_init(r.id(), smh, 0, sizeof(int)), slot);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_EQ(arrival_order, (std::vector<int>{3, 1, 2}));
}

}  // namespace
}  // namespace unr::unrlib
