// Tests of the simulated interconnect: memory registration, PUT/GET data
// movement and timing, custom-bit truncation, completion queues and
// overflow/retry, active messages and FIFO ordering, multi-NIC bandwidth.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/profile.hpp"
#include "fabric/fabric.hpp"
#include "sim/cond.hpp"

namespace unr::fabric {
namespace {

using sim::Cond;
using sim::Kernel;

Fabric::Config two_node_cfg(unr::SystemProfile prof = unr::make_hpc_ib()) {
  Fabric::Config c;
  c.nodes = 2;
  c.ranks_per_node = 1;
  c.profile = std::move(prof);
  c.deterministic_routing = true;
  return c;
}

TEST(CustomBits, TruncationWidths) {
  const CustomBits full = CustomBits::from_pair(~0ull, ~0ull);
  EXPECT_EQ(full.truncated(0), CustomBits::from_pair(0, 0));
  EXPECT_EQ(full.truncated(8).lo, 0xFFull);
  EXPECT_EQ(full.truncated(32).lo, 0xFFFFFFFFull);
  EXPECT_EQ(full.truncated(64), CustomBits::from_pair(~0ull, 0));
  EXPECT_EQ(full.truncated(100).hi, (1ull << 36) - 1);
  EXPECT_EQ(full.truncated(128), full);
}

TEST(CustomBits, Fits) {
  EXPECT_TRUE(CustomBits::from_u64(0xFF).fits(8));
  EXPECT_FALSE(CustomBits::from_u64(0x100).fits(8));
  EXPECT_TRUE(CustomBits::from_pair(0, 1).fits(65));
  EXPECT_FALSE(CustomBits::from_pair(0, 1).fits(64));
}

TEST(Personalities, TableTwoRows) {
  EXPECT_EQ(personality(Interface::kGlex).put_remote_bits, 128);
  EXPECT_EQ(personality(Interface::kVerbs).put_remote_bits, 32);
  EXPECT_EQ(personality(Interface::kVerbs).get_remote_bits, 0);
  EXPECT_EQ(personality(Interface::kUtofu).put_remote_bits, 8);
  EXPECT_EQ(personality(Interface::kUgni).put_remote_bits, 32);
  EXPECT_TRUE(personality(Interface::kPami).shared_put_bits);
  EXPECT_EQ(personality(Interface::kPortals).put_local_bits, -1);  // "Hash"
  EXPECT_EQ(personality(Interface::kPortals).effective_put_local(), 64);
}

TEST(MemRegistry, RegisterResolveBounds) {
  MemRegistry reg(0, 8);
  std::vector<std::byte> buf(256);
  const MrId id = reg.register_region(3, buf.data(), buf.size());
  EXPECT_EQ(reg.resolve({3, id, 16}, 10), buf.data() + 16);
  EXPECT_EQ(reg.region_size(3, id), 256u);
  EXPECT_THROW(reg.resolve({3, id, 250}, 10), std::logic_error);   // out of bounds
  EXPECT_THROW(reg.resolve({2, id, 0}, 1), std::logic_error);      // wrong rank
  reg.deregister_region(3, id);
  EXPECT_THROW(reg.resolve({3, id, 0}, 1), std::logic_error);      // dead region
}

TEST(MemRegistry, PerRankLimitEnforced) {
  MemRegistry reg(2, 8);
  std::vector<std::byte> buf(64);
  reg.register_region(0, buf.data(), 1);
  reg.register_region(0, buf.data() + 1, 1);
  EXPECT_THROW(reg.register_region(0, buf.data() + 2, 1), std::logic_error);
  // Other ranks unaffected.
  EXPECT_NO_THROW(reg.register_region(1, buf.data() + 3, 1));
}

TEST(CompletionQueue, PushPopOverflow) {
  CompletionQueue q(2);
  EXPECT_TRUE(q.push({}));
  EXPECT_TRUE(q.push({}));
  EXPECT_FALSE(q.push({}));
  EXPECT_EQ(q.overflows(), 1u);
  q.pop();
  EXPECT_TRUE(q.push({}));
  EXPECT_EQ(q.pushed(), 3u);
}

TEST(CompletionQueue, PopOnEmptyFailsLoudly) {
  // Regression: pop() on an empty queue used to read q_.front() of an empty
  // deque — undefined behavior. It must fail loudly instead.
  CompletionQueue q(2);
  EXPECT_THROW(q.pop(), std::logic_error);
  q.push({});
  q.pop();
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(CompletionQueue, PressureOccupiesSlotsWithoutContent) {
  CompletionQueue q(2);
  q.add_pressure(2);
  EXPECT_TRUE(q.full());
  EXPECT_TRUE(q.empty());  // pressure is not content
  EXPECT_FALSE(q.push({}));
  EXPECT_EQ(q.overflows(), 1u);
  q.release_pressure(1);
  EXPECT_TRUE(q.push({}));
  EXPECT_TRUE(q.full());
  q.release_pressure(5);  // over-release clamps at zero
  EXPECT_EQ(q.pressure(), 0u);
  EXPECT_FALSE(q.full());
}

TEST(Fabric, PutMovesDataAndSignalsDelivery) {
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> src(1024), dst(1024);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i * 7);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());

  bool delivered = false;
  Time deliver_time = 0;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) {
      cond.wait([&] { return delivered; });
      EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = src.data();
    a.dst = {1, mr, 0};
    a.size = src.size();
    a.on_delivered = [&] {
      delivered = true;
      deliver_time = k.now();
      cond.notify_all();
    };
    f.put(std::move(a));
  });
  EXPECT_TRUE(delivered);
  // Arrival = nic_overhead + size/bw + wire latency.
  const auto& p = f.profile();
  const Time expect = p.nic_overhead + serialize_ns(1024, p.nic_gbps) + p.wire_latency;
  EXPECT_EQ(deliver_time, expect);
}

TEST(Fabric, LocalCompletionComesOneAckAfterDelivery) {
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> src(64), dst(64);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  Time deliver_time = 0, local_time = 0;
  bool done = false;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) return;
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = src.data();
    a.dst = {1, mr, 0};
    a.size = src.size();
    a.on_delivered = [&] { deliver_time = k.now(); };
    a.on_local_complete = [&] {
      local_time = k.now();
      done = true;
      cond.notify_all();
    };
    f.put(std::move(a));
    cond.wait([&] { return done; });
  });
  EXPECT_EQ(local_time, deliver_time + f.profile().wire_latency);
}

TEST(Fabric, GetFetchesRemoteData) {
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> owner_buf(512), reader_buf(512);
  for (std::size_t i = 0; i < owner_buf.size(); ++i)
    owner_buf[i] = static_cast<std::byte>(255 - i % 251);
  const MrId mr = f.memory().register_region(1, owner_buf.data(), owner_buf.size());
  bool done = false;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) return;
    Fabric::GetArgs a;
    a.src_rank = 0;
    a.dst = reader_buf.data();
    a.src = {1, mr, 0};
    a.size = reader_buf.size();
    a.on_complete = [&] {
      done = true;
      cond.notify_all();
    };
    f.get(std::move(a));
    cond.wait([&] { return done; });
  });
  EXPECT_EQ(std::memcmp(owner_buf.data(), reader_buf.data(), owner_buf.size()), 0);
}

TEST(Fabric, GetLatencyIsRoundTrip) {
  // The paper recommends PUT over GET because GET pays a round trip.
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> owner_buf(8), reader_buf(8);
  const MrId mr = f.memory().register_region(1, owner_buf.data(), owner_buf.size());
  Time got = 0;
  bool done = false;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) return;
    Fabric::GetArgs a;
    a.src_rank = 0;
    a.dst = reader_buf.data();
    a.src = {1, mr, 0};
    a.size = 8;
    a.on_complete = [&] {
      got = k.now();
      done = true;
      cond.notify_all();
    };
    f.get(std::move(a));
    cond.wait([&] { return done; });
  });
  EXPECT_GT(got, 2 * f.profile().wire_latency);  // request + response legs
}

TEST(Fabric, RemoteImmTruncatedToInterfaceWidth) {
  // Verbs: 32 remote PUT bits — the upper bits must be gone.
  Kernel k;
  Fabric f(k, two_node_cfg(unr::make_hpc_ib()));
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(50 * kUs);
      return;
    }
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = &one;
    a.dst = {1, mr, 0};
    a.size = 1;
    a.remote_imm = CustomBits::from_pair(0x1234567890ABCDEFull, 0xFFull);
    a.want_remote_cqe = true;
    f.put(std::move(a));
    Kernel::current()->sleep_for(50 * kUs);
  });
  auto& cq = f.nic(1, 0).remote_cq();
  ASSERT_EQ(cq.size(), 1u);
  const Cqe e = cq.pop();
  EXPECT_EQ(e.imm.lo, 0x90ABCDEFull);
  EXPECT_EQ(e.imm.hi, 0u);
  EXPECT_EQ(e.peer_rank, 0);
  EXPECT_EQ(e.kind, CqeKind::kPutDelivered);
}

TEST(Fabric, ZeroByteGetCompletesWithoutTouchingMemory) {
  // A 0-byte GET is legal: it pays the full round trip and fires its
  // completion, but must not touch a single byte on either side.
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> owner_buf(32, std::byte{0xAA});
  std::vector<std::byte> reader_buf(32, std::byte{0x55});
  const MrId mr = f.memory().register_region(1, owner_buf.data(), owner_buf.size());
  Time got = 0;
  bool done = false;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) return;
    Fabric::GetArgs a;
    a.src_rank = 0;
    a.dst = reader_buf.data();
    a.src = {1, mr, 0};
    a.size = 0;
    a.on_complete = [&] {
      got = k.now();
      done = true;
      cond.notify_all();
    };
    f.get(std::move(a));
    cond.wait([&] { return done; });
  });
  EXPECT_TRUE(done);
  EXPECT_GT(got, 2 * f.profile().wire_latency);  // still a request + response
  for (const std::byte b : reader_buf) EXPECT_EQ(b, std::byte{0x55});
  for (const std::byte b : owner_buf) EXPECT_EQ(b, std::byte{0xAA});
}

TEST(Fabric, PutImmExactlyAtWidthBoundary) {
  // Verbs: 32 remote PUT bits. 2^32 - 1 fits exactly and must survive
  // untouched; 2^32 is one past the boundary and masks to 0 (the fabric
  // models hardware truncation — detecting the overflow and falling back is
  // the channel layer's job).
  Kernel k;
  Fabric f(k, two_node_cfg(unr::make_hpc_ib()));
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(300 * kUs);
      return;
    }
    const auto send = [&](std::uint64_t imm) {
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = &one;
      a.dst = {1, mr, 0};
      a.size = 1;
      a.remote_imm = CustomBits::from_u64(imm);
      a.want_remote_cqe = true;
      f.put(std::move(a));
      Kernel::current()->sleep_for(100 * kUs);  // keep arrivals ordered
    };
    send(0xFFFFFFFFull);   // exactly at the 32-bit boundary
    send(0x100000000ull);  // one past
  });
  auto& cq = f.nic(1, 0).remote_cq();
  ASSERT_EQ(cq.size(), 2u);
  const Cqe at = cq.pop();
  EXPECT_EQ(at.imm.lo, 0xFFFFFFFFull);
  EXPECT_EQ(at.imm.hi, 0u);
  const Cqe past = cq.pop();
  EXPECT_EQ(past.imm.lo, 0u);
  EXPECT_EQ(past.imm.hi, 0u);
}

TEST(Fabric, CqOverflowNacksAndRetries) {
  auto cfg = two_node_cfg();
  cfg.profile.cq_depth = 4;
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(64);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  int delivered = 0;
  k.run(2, [&](int id) {
    if (id != 0) {
      // Nobody drains the CQ for a while; then drain and let retries land.
      Kernel::current()->sleep_for(200 * kUs);
      auto& cq = f.nic(1, 0).remote_cq();
      while (!cq.empty()) cq.pop();
      Kernel::current()->sleep_for(200 * kUs);
      auto& cq2 = f.nic(1, 0).remote_cq();
      while (!cq2.empty()) cq2.pop();
      return;
    }
    for (int i = 0; i < 8; ++i) {
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = &one;
      a.dst = {1, mr, static_cast<std::size_t>(i)};
      a.size = 1;
      a.want_remote_cqe = true;
      a.on_delivered = [&] { delivered++; };
      f.put(std::move(a));
    }
    Kernel::current()->sleep_for(400 * kUs);
  });
  EXPECT_EQ(delivered, 8);           // all land eventually
  EXPECT_GT(f.stats().cq_retries, 0u);  // but some had to retry
}

TEST(Fabric, CqRetryFailsLoudlyAtConfigurableAttemptCap) {
  // Nobody ever drains the remote CQ: the NACK loop must hit the (lowered)
  // attempt cap and fail loudly instead of spinning the event loop forever.
  auto cfg = two_node_cfg();
  cfg.profile.cq_depth = 1;
  cfg.retry.max_attempts = 16;
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  EXPECT_THROW(k.run(2,
                     [&](int id) {
                       if (id != 0) {
                         Kernel::current()->sleep_for(100 * kMs);
                         return;
                       }
                       for (int i = 0; i < 2; ++i) {
                         Fabric::PutArgs a;
                         a.src_rank = 0;
                         a.src = &one;
                         a.dst = {1, mr, 0};
                         a.size = 1;
                         a.want_remote_cqe = true;
                         f.put(std::move(a));
                       }
                       Kernel::current()->sleep_for(100 * kMs);
                     }),
               std::logic_error);
  // The first put filled the depth-1 CQ; the second burned all its retries:
  // max_attempts NACKs are allowed, attempt max_attempts + 1 fails loudly
  // (the same meaning the wire-retransmission cap has).
  EXPECT_EQ(f.stats().cq_retries, 16u);
  EXPECT_GT(f.stats().resilience.backoff_ns, 0u);
  EXPECT_GT(f.total_cq_overflows(), 0u);
}

TEST(Fabric, OrderedTrafficIsFifoPerPair) {
  auto cfg = two_node_cfg();
  cfg.deterministic_routing = false;
  cfg.profile.jitter = 500;  // plenty of reordering for unordered traffic
  Kernel k;
  Fabric f(k, cfg);
  std::vector<int> arrivals;
  for (int r = 0; r < 2; ++r)
    f.set_am_handler(r, 42, [&](int, const std::vector<std::byte>& p) {
      arrivals.push_back(static_cast<int>(std::to_integer<unsigned char>(p[0])));
    });
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(1 * kMs);
      return;
    }
    for (int i = 0; i < 32; ++i)
      f.send_am(0, 1, 42, {static_cast<std::byte>(i)}, -1, /*ordered=*/true);
    Kernel::current()->sleep_for(1 * kMs);
  });
  ASSERT_EQ(arrivals.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(arrivals[static_cast<std::size_t>(i)], i);
}

TEST(Fabric, TwoNicsDoubleEffectiveBandwidth) {
  auto cfg = two_node_cfg(unr::make_th_xy());  // 2 NICs per node
  Kernel k;
  Fabric f(k, cfg);
  const std::size_t msg = 1 * MiB;
  std::vector<std::byte> src(2 * msg), dst(2 * msg);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  Time one_nic = 0, two_nic = 0;
  int pending = 0;
  Cond cond;
  auto send_pair = [&](int nic_b, Time* out) {
    const Time t0 = k.now();
    pending = 2;
    for (int i = 0; i < 2; ++i) {
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = src.data() + static_cast<std::size_t>(i) * msg;
      a.dst = {1, mr, static_cast<std::size_t>(i) * msg};
      a.size = msg;
      a.nic_index = i == 0 ? 0 : nic_b;
      a.on_delivered = [&, t0, out] {
        if (--pending == 0) {
          *out = k.now() - t0;
          cond.notify_all();
        }
      };
      f.put(std::move(a));
    }
    cond.wait([&] { return pending == 0; });
  };
  k.run(2, [&](int id) {
    if (id != 0) return;
    send_pair(0, &one_nic);   // both messages on NIC 0: serialized
    send_pair(1, &two_nic);   // spread over both NICs: parallel
  });
  EXPECT_GT(one_nic, two_nic);
  // Two messages on one NIC serialize: ~2x the two-NIC completion time.
  EXPECT_NEAR(static_cast<double>(one_nic) / static_cast<double>(two_nic), 2.0, 0.25);
}

TEST(Fabric, IntraNodeFasterThanInterNode) {
  Fabric::Config cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 2;
  cfg.profile = unr::make_hpc_ib();
  cfg.deterministic_routing = true;
  Kernel k;
  Fabric f(k, cfg);
  std::vector<std::byte> dst(8);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte one{1};
  Time arrival = 0;
  bool done = false;
  Cond cond;
  k.run(2, [&](int id) {
    if (id != 0) return;
    Fabric::PutArgs a;
    a.src_rank = 0;
    a.src = &one;
    a.dst = {1, mr, 0};
    a.size = 1;
    a.on_delivered = [&] {
      arrival = k.now();
      done = true;
      cond.notify_all();
    };
    f.put(std::move(a));
    cond.wait([&] { return done; });
  });
  EXPECT_LT(arrival, f.profile().wire_latency);  // loopback skips the switch
}

TEST(Fabric, StatsAccumulate) {
  Kernel k;
  Fabric f(k, two_node_cfg());
  std::vector<std::byte> dst(1024);
  const MrId mr = f.memory().register_region(1, dst.data(), dst.size());
  std::byte buf[16] = {};
  k.run(2, [&](int id) {
    if (id != 0) {
      Kernel::current()->sleep_for(1 * kMs);
      return;
    }
    for (int i = 0; i < 3; ++i) {
      Fabric::PutArgs a;
      a.src_rank = 0;
      a.src = buf;
      a.dst = {1, mr, 0};
      a.size = 16;
      f.put(std::move(a));
    }
    Fabric::GetArgs g;
    g.src_rank = 0;
    g.dst = buf;
    g.src = {1, mr, 0};
    g.size = 16;
    f.get(std::move(g));
    Kernel::current()->sleep_for(1 * kMs);
  });
  EXPECT_EQ(f.stats().puts, 3u);
  EXPECT_EQ(f.stats().gets, 1u);
  EXPECT_EQ(f.stats().put_bytes, 48u);
  EXPECT_EQ(f.stats().get_bytes, 16u);
}

}  // namespace
}  // namespace unr::fabric
