// Integration tests of the UNR core: registered memory + Blk handles,
// notified PUT/GET end to end, multi-NIC aggregated signals (Fig. 2),
// bug-avoiding diagnostics, and the Code-2 usage pattern of the paper.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config world_cfg(unr::SystemProfile prof = unr::make_th_xy(), int nodes = 2,
                        int rpn = 1) {
  World::Config c;
  c.nodes = nodes;
  c.ranks_per_node = rpn;
  c.profile = std::move(prof);
  c.deterministic_routing = true;
  return c;
}

std::vector<double> ramp(std::size_t n, double scale) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = scale * static_cast<double>(i);
  return v;
}

TEST(UnrCore, NotifiedPutDeliversDataAndSignal) {
  World w(world_cfg());
  Unr unr(w);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<double> buf = r.id() == 0 ? ramp(64, 2.0) : std::vector<double>(64);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, 64 * sizeof(double), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf == ramp(64, 2.0);
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const SigId ssig = unr.sig_init(0, 1);
      const Blk sblk = unr.blk_init(0, mh, 0, 64 * sizeof(double), ssig);
      unr.put(0, sblk, rblk);
      unr.sig_wait(0, ssig);  // local completion: buffer reusable
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(unr.stats().puts, 1u);
}

TEST(UnrCore, NotifiedGetFetchesAndNotifiesBothSides) {
  World w(world_cfg());
  Unr unr(w);
  bool reader_ok = false, owner_ok = false;
  w.run([&](Rank& r) {
    std::vector<double> buf = r.id() == 1 ? ramp(32, 3.0) : std::vector<double>(32);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 1) {
      const SigId osig = unr.sig_init(1, 1);  // "my data was read"
      const Blk oblk = unr.blk_init(1, mh, 0, 32 * sizeof(double), osig);
      r.send(0, 1, &oblk, sizeof oblk);
      unr.sig_wait(1, osig);
      owner_ok = true;
    } else {
      Blk oblk;
      r.recv(1, 1, &oblk, sizeof oblk);
      const SigId lsig = unr.sig_init(0, 1);  // "the data arrived"
      const Blk lblk = unr.blk_init(0, mh, 0, 32 * sizeof(double), lsig);
      unr.get(0, lblk, oblk);
      unr.sig_wait(0, lsig);
      reader_ok = buf == ramp(32, 3.0);
    }
  });
  EXPECT_TRUE(reader_ok);
  EXPECT_TRUE(owner_ok);
}

TEST(UnrCore, MultiNicSplitAggregatesIntoOneSignal) {
  // TH-XY has two NICs: a large message splits into two fragments, and the
  // receiver still sees exactly ONE signal trigger (Fig. 2 / MMAS).
  World w(world_cfg(unr::make_th_xy()));
  Unr::Config cfg;
  cfg.split_threshold = 4 * KiB;
  Unr unr(w, cfg);
  bool ok = false;
  const std::size_t n = 64 * KiB / sizeof(double);
  w.run([&](Rank& r) {
    std::vector<double> buf = r.id() == 0 ? ramp(n, 1.0) : std::vector<double>(n);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, n * sizeof(double), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf == ramp(n, 1.0);
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const SigId ssig = unr.sig_init(0, 1);
      unr.put(0, unr.blk_init(0, mh, 0, n * sizeof(double), ssig), rblk);
      unr.sig_wait(0, ssig);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(unr.stats().fragments, 1u);  // one extra sub-message (K=2)
}

TEST(UnrCore, SplitIsFasterThanSingleNic) {
  // The point of multi-NIC aggregation: the same transfer completes sooner.
  const std::size_t bytes = 4 * MiB;
  auto run_once = [&](bool multi) {
    World w(world_cfg(unr::make_th_xy()));
    Unr::Config cfg;
    cfg.multi_channel = multi;
    cfg.split_threshold = 64 * KiB;
    Unr unr(w, cfg);
    Time triggered = 0;
    w.run([&](Rank& r) {
      std::vector<std::byte> buf(bytes);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
      if (r.id() == 1) {
        const SigId rsig = unr.sig_init(1, 1);
        const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
        r.send(0, 1, &rblk, sizeof rblk);
        unr.sig_wait(1, rsig);
        triggered = r.now();
      } else {
        Blk rblk;
        r.recv(1, 1, &rblk, sizeof rblk);
        unr.put(0, unr.blk_init(0, mh, 0, bytes), rblk);
      }
    });
    return triggered;
  };
  const Time single = run_once(false);
  const Time split = run_once(true);
  EXPECT_LT(split, single);
  // 4MiB at 200Gbps is ~168us serialized; split should save roughly half.
  EXPECT_NEAR(static_cast<double>(single - split),
              static_cast<double>(serialize_ns(bytes, 200.0)) / 2.0,
              static_cast<double>(serialize_ns(bytes, 200.0)) * 0.2);
}

TEST(UnrCore, ManyMessagesFromManyPeersOneSignal) {
  // Multi-message aggregation: one signal counts messages from 3 peers.
  World w(world_cfg(unr::make_th_xy(), 4, 1));
  Unr unr(w);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(4, -1);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 0) {
      const SigId rsig = unr.sig_init(0, 3);
      Blk blks[4];
      for (int src = 1; src < 4; ++src) {
        blks[src] = unr.blk_init(0, mh, static_cast<std::size_t>(src) * sizeof(int),
                                 sizeof(int), rsig);
        r.send(src, 1, &blks[src], sizeof(Blk));
      }
      unr.sig_wait(0, rsig);
      ok = buf[1] == 10 && buf[2] == 20 && buf[3] == 30;
    } else {
      Blk rblk;
      r.recv(0, 1, &rblk, sizeof rblk);
      std::vector<int> mine(1, r.id() * 10);
      const MemHandle smh = unr.mem_reg(r.id(), mine.data(), sizeof(int));
      unr.put(r.id(), unr.blk_init(r.id(), smh, 0, sizeof(int)), rblk);
      r.kernel().sleep_for(1 * kMs);  // keep buffers alive until delivery
    }
  });
  EXPECT_TRUE(ok);
}

TEST(UnrCore, Code2ProducerConsumerLoop) {
  // The full Code-2 pattern: N iterations of notified PUT ping with signal
  // reset, no explicit post-synchronization anywhere.
  World w(world_cfg());
  Unr unr(w);
  const int iters = 20;
  int verified = 0;
  set_log_level(LogLevel::kOff);
  w.run([&](Rank& r) {
    std::vector<double> buf(8, 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 0) {  // sender
      const SigId send_sig = unr.sig_init(0, 1);
      const Blk send_blk = unr.blk_init(0, mh, 0, 8 * sizeof(double), send_sig);
      Blk rmt_blk;
      r.recv(1, 1, &rmt_blk, sizeof rmt_blk);
      for (int it = 0; it < iters; ++it) {
        buf[0] = it;
        unr.put(0, send_blk, rmt_blk);
        unr.sig_wait(0, send_sig);
        unr.sig_reset(0, send_sig);
        // Implicit pre-synchronization: wait for the consumer's ack before
        // the next overwrite of the remote buffer.
        char ack;
        r.recv(1, 2, &ack, 1);
      }
    } else {  // receiver
      const SigId recv_sig = unr.sig_init(1, 1);
      const Blk recv_blk = unr.blk_init(1, mh, 0, 8 * sizeof(double), recv_sig);
      r.send(0, 1, &recv_blk, sizeof recv_blk);
      for (int it = 0; it < iters; ++it) {
        unr.sig_wait(1, recv_sig);
        if (buf[0] == it) ++verified;
        unr.sig_reset(1, recv_sig);  // after the buffer is ready again
        char ack = 1;
        r.send(0, 2, &ack, 1);
      }
    }
  });
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(verified, iters);
}

TEST(UnrCore, ZeroByteGetNotifiesBothSidesAndMovesNothing) {
  World w(world_cfg());
  Unr unr(w);
  bool owner_ok = false, reader_ok = false;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(16, r.id() == 1 ? std::byte{0xAA} : std::byte{0x55});
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      // Owner: the bound signal must net exactly one event for a 0-byte read.
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, 0, rsig);
      r.send(0, 7, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      owner_ok = unr.sig_counter(1, rsig) == 0;
      for (const std::byte b : buf) owner_ok &= b == std::byte{0xAA};
    } else {
      Blk rblk;
      r.recv(1, 7, &rblk, sizeof rblk);
      const SigId lsig = unr.sig_init(0, 1);
      const Blk lblk = unr.blk_init(0, mh, 0, 0, lsig);
      unr.get(0, lblk, rblk);
      unr.sig_wait(0, lsig);
      reader_ok = true;
      for (const std::byte b : buf) reader_ok &= b == std::byte{0x55};
    }
  });
  EXPECT_TRUE(owner_ok);
  EXPECT_TRUE(reader_ok);
  EXPECT_EQ(unr.stats().gets, 1u);
}

TEST(UnrCore, CustomBitsBoundarySigIdFallsBackToCompanion) {
  // uTofu: 8 custom bits, index-only encoding. Signal id 255 is the last
  // one that encodes natively; id 256 cannot fit and must ride an ordered
  // companion message — same semantics, one extra AM.
  auto prof = unr::make_th_xy();
  prof.iface = Interface::kUtofu;
  World w(world_cfg(prof));
  Unr unr(w);
  std::uint64_t companions_at_boundary = 0, fallbacks_at_boundary = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(8, std::byte{0});
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      SigId last_fit = kNoSig, first_past = kNoSig;
      for (int i = 0; i < 257; ++i) {
        const SigId s = unr.sig_init(1, 1);
        if (s == 255) last_fit = s;
        if (s == 256) first_past = s;
      }
      ASSERT_NE(last_fit, kNoSig);
      ASSERT_NE(first_past, kNoSig);
      const Blk b_fit = unr.blk_init(1, mh, 0, 4, last_fit);
      const Blk b_past = unr.blk_init(1, mh, 4, 4, first_past);
      r.send(0, 1, &b_fit, sizeof b_fit);
      r.send(0, 2, &b_past, sizeof b_past);
      unr.sig_wait(1, last_fit);
      unr.sig_wait(1, first_past);
      EXPECT_EQ(unr.sig_counter(1, last_fit), 0);
      EXPECT_EQ(unr.sig_counter(1, first_past), 0);
    } else {
      Blk b_fit, b_past;
      r.recv(1, 1, &b_fit, sizeof b_fit);
      r.recv(1, 2, &b_past, sizeof b_past);
      std::vector<std::byte> src(4, std::byte{0x11});
      const MemHandle smh = unr.mem_reg(0, src.data(), src.size());
      unr.put(0, unr.blk_init(0, smh, 0, 4), b_fit);
      companions_at_boundary = unr.stats().companions;
      fallbacks_at_boundary = unr.stats().encode_fallbacks;
      unr.put(0, unr.blk_init(0, smh, 0, 4), b_past);
    }
  });
  // id 255: encoded in the custom bits, no fallback traffic.
  EXPECT_EQ(fallbacks_at_boundary, 0u);
  EXPECT_EQ(companions_at_boundary, 0u);
  // id 256: exactly one encode fallback -> companion notification.
  EXPECT_EQ(unr.stats().encode_fallbacks, 1u);
  EXPECT_GE(unr.stats().companions, 1u);
}

TEST(UnrCore, SigResetDetectsMissingPreSynchronization) {
  // The receiver resets the signal, then the producer's SECOND message races
  // ahead of the consumer: reset-before-trigger fires the diagnostic.
  World w(world_cfg());
  Unr unr(w);
  int warnings = 0;
  set_log_level(LogLevel::kOff);
  set_warn_handler([&](const std::string& m) {
    // Either diagnostic shape counts: the second message arriving before the
    // reset reads as "early arrival" or, if it also over-counts, "overflow".
    if (m.find("reset") != std::string::npos) ++warnings;
  });
  w.run([&](Rank& r) {
    std::vector<double> buf(4, 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      const Blk sblk = unr.blk_init(0, mh, 0, 4 * sizeof(double));
      unr.put(0, sblk, rmt);
      unr.put(0, sblk, rmt);  // BUG: no pre-synchronization before reuse
      r.kernel().sleep_for(1 * kMs);
    } else {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(double), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      r.kernel().sleep_for(500 * kUs);  // the second message lands meanwhile
      unr.sig_reset(1, rsig);           // diagnostic fires here
    }
  });
  set_warn_handler(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_GE(warnings, 1);
}

TEST(UnrCore, OverflowBitReportedOnWait) {
  World w(world_cfg());
  Unr unr(w);
  int overflow_warnings = 0;
  set_log_level(LogLevel::kOff);
  set_warn_handler([&](const std::string& m) {
    if (m.find("overflow") != std::string::npos) ++overflow_warnings;
  });
  w.run([&](Rank& r) {
    std::vector<double> buf(4, 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      const Blk sblk = unr.blk_init(0, mh, 0, 4 * sizeof(double));
      // Three deliveries against num_event = 2.
      unr.put(0, sblk, rmt);
      unr.put(0, sblk, rmt);
      unr.put(0, sblk, rmt);
      r.kernel().sleep_for(1 * kMs);
    } else {
      const SigId rsig = unr.sig_init(1, 2);
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(double), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      r.kernel().sleep_for(1 * kMs);  // all three land
      unr.sig_wait(1, rsig);          // overflow bit must be reported
    }
  });
  set_warn_handler(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_GE(overflow_warnings, 1);
}

TEST(UnrCore, BlkInitValidatesBounds) {
  World w(world_cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<std::byte> buf(128);
    const MemHandle mh = unr.mem_reg(0, buf.data(), 128);
    EXPECT_NO_THROW(unr.blk_init(0, mh, 64, 64));
    EXPECT_THROW(unr.blk_init(0, mh, 64, 65), std::logic_error);
    EXPECT_THROW(unr.blk_init(1, mh, 0, 1), std::logic_error);  // foreign handle
  });
}

TEST(UnrCore, PutSizeMismatchCaught) {
  World w(world_cfg());
  Unr unr(w);
  EXPECT_THROW(
      w.run([&](Rank& r) {
        std::vector<std::byte> buf(128);
        const MemHandle mh = unr.mem_reg(r.id(), buf.data(), 128);
        if (r.id() == 0) {
          Blk rmt;
          r.recv(1, 1, &rmt, sizeof rmt);
          unr.put(0, unr.blk_init(0, mh, 0, 64), rmt);  // 64 into 32
        } else {
          const Blk rblk = unr.blk_init(1, mh, 0, 32);
          r.send(0, 1, &rblk, sizeof rblk);
          r.kernel().sleep_for(1 * kMs);
        }
      }),
      std::logic_error);
}

TEST(UnrCore, SubBlockKeepsSignalBinding) {
  World w(world_cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<std::byte> buf(256);
    const MemHandle mh = unr.mem_reg(0, buf.data(), 256);
    const SigId sig = unr.sig_init(0, 4);
    const Blk whole = unr.blk_init(0, mh, 0, 256, sig);
    const Blk part = whole.sub(64, 32);
    EXPECT_EQ(part.offset, 64u);
    EXPECT_EQ(part.size, 32u);
    EXPECT_EQ(part.sig, sig);
    EXPECT_EQ(part.rank, 0);
  });
}

TEST(UnrCore, SignalsAreIndependentSlots) {
  World w(world_cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId a = unr.sig_init(0, 1);
    const SigId b = unr.sig_init(0, 2);
    EXPECT_NE(a, b);
    EXPECT_EQ(unr.sig_counter(0, a), 1);
    EXPECT_EQ(unr.sig_counter(0, b), 2);
  });
}

TEST(UnrCore, PutWithoutAnySignalStillMovesData) {
  World w(world_cfg());
  Unr unr(w);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(4, r.id() == 0 ? 5 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      unr.put(0, unr.blk_init(0, mh, 0, 4 * sizeof(int)), rmt);
      r.kernel().sleep_for(1 * kMs);
    } else {
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(int));
      r.send(0, 1, &rblk, sizeof rblk);
      r.kernel().sleep_for(1 * kMs);
      ok = buf[0] == 5 && buf[3] == 5;
    }
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace unr::unrlib
