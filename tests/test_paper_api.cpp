// The paper-style API shim: Code 2 of the paper transcribed almost verbatim
// must compile and run against paper_api.hpp.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/world.hpp"
#include "unr/paper_api.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

TEST(PaperApi, Code2Verbatim) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr lib(w);

  const std::size_t buf_size = 256 * sizeof(double);
  const std::size_t size = 64 * sizeof(double);
  const std::size_t f_x = 16 * sizeof(double);  // "complex" buffer offsets
  const std::size_t g_y = 32 * sizeof(double);
  const int iters = 8;
  int verified = 0;

  w.run([&](Rank& r) {
    UNR_Handle h{&lib, r.id()};
    std::vector<double> buf(256, 0.0);

    if (r.id() == 0) {  // sender (Code 2, lines 1-6)
      auto mr = UNR_Mem_Reg(h, buf.data(), buf_size);
      auto send_sig = UNR_Sig_Init(h, 1);  // trigger after 1 event
      auto send_blk = UNR_Blk_Init(h, mr, f_x, size, send_sig);
      Blk rmt_blk;
      r.recv(1, 0, &rmt_blk, sizeof rmt_blk);  // get remote receiving address

      for (int it = 0; it < iters; ++it) {  // lines 14-26
        buf[f_x / sizeof(double)] = 100.0 + it;
        UNR_Put(h, send_blk, rmt_blk);
        UNR_Sig_Wait(h, send_sig);
        UNR_Sig_Reset(h, send_sig);
        char ack;  // pre-synchronization via a previous communication
        r.recv(1, 1, &ack, 1);
      }
    } else {  // receiver (lines 7-13)
      auto mr = UNR_Mem_Reg(h, buf.data(), buf_size);
      auto recv_sig = UNR_Sig_Init(h, 1);
      auto recv_blk = UNR_Blk_Init(h, mr, g_y, size, recv_sig);
      r.send(0, 0, &recv_blk, sizeof recv_blk);  // send receiving address

      for (int it = 0; it < iters; ++it) {
        UNR_Sig_Wait(h, recv_sig);
        if (buf[g_y / sizeof(double)] == 100.0 + it) ++verified;
        UNR_Sig_Reset(h, recv_sig);  // after the buffer is ready
        char ack = 1;
        r.send(0, 1, &ack, 1);
      }
    }
  });
  EXPECT_EQ(verified, iters);
}

TEST(PaperApi, PlanAndGet) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr lib(w);
  bool got = false;

  w.run([&](Rank& r) {
    UNR_Handle h{&lib, r.id()};
    std::vector<int> buf(8, r.id() == 1 ? 55 : 0);
    auto mr = UNR_Mem_Reg(h, buf.data(), buf.size() * sizeof(int));
    if (r.id() == 1) {
      auto oblk = UNR_Blk_Init(h, mr, 0, 8 * sizeof(int));
      r.send(0, 0, &oblk, sizeof oblk);
      r.kernel().sleep_for(1 * kMs);
    } else {
      Blk oblk;
      r.recv(1, 0, &oblk, sizeof oblk);
      auto sig = UNR_Sig_Init(h, 1);
      auto lblk = UNR_Blk_Init(h, mr, 0, 8 * sizeof(int), sig);
      auto plan = UNR_RMA_Plan(h);
      plan->add_get(lblk, oblk);
      UNR_Plan_Start(*plan);
      UNR_Sig_Wait(h, sig);
      got = buf[0] == 55 && buf[7] == 55;
    }
  });
  EXPECT_TRUE(got);
}

TEST(PaperApi, SigWaitForAndWaitAny) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr lib(w);
  bool timed_out = false, triggered = false;
  std::size_t which = 99;

  w.run([&](Rank& r) {
    UNR_Handle h{&lib, r.id()};
    std::vector<double> buf(32, 0.0);
    auto mr = UNR_Mem_Reg(h, buf.data(), buf.size() * sizeof(double));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 0, &rmt, sizeof rmt);
      r.kernel().sleep_for(50 * kUs);  // let the receiver's bounded wait expire
      auto sblk = UNR_Blk_Init(h, mr, 0, 16 * sizeof(double));
      UNR_Put(h, sblk, rmt);
    } else {
      // Two candidate signals; the PUT notifies only sig_b's block.
      auto sig_a = UNR_Sig_Init(h, 1);
      auto sig_b = UNR_Sig_Init(h, 1);
      auto rblk = UNR_Blk_Init(h, mr, 0, 16 * sizeof(double), sig_b);
      r.send(0, 0, &rblk, sizeof rblk);
      timed_out = !UNR_Sig_Wait_For(h, sig_a, 10 * kUs);  // nothing targets sig_a
      const SigId sigs[2] = {sig_a, sig_b};
      which = UNR_Sig_Wait_Any(h, std::span<const SigId>(sigs, 2));
      triggered = UNR_Sig_Wait_For(h, sig_b, 10 * kUs);  // already triggered
    }
  });
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(which, 1u);
  EXPECT_TRUE(triggered);
}

TEST(PaperApi, ConvertNamesCompile) {
  World::Config wc;
  wc.nodes = 2;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr lib(w);
  int delivered = 0;

  w.run([&](Rank& r) {
    UNR_Handle h{&lib, r.id()};
    std::vector<double> sbuf(16, r.id() + 1.5), rbuf(16, 0.0);
    auto smr = UNR_Mem_Reg(h, sbuf.data(), sbuf.size() * sizeof(double));
    auto rmr = UNR_Mem_Reg(h, rbuf.data(), rbuf.size() * sizeof(double));
    auto ssig = UNR_Sig_Init(h, 1);
    auto rsig = UNR_Sig_Init(h, 1);
    auto plan = UNR_RMA_Plan(h);
    const int peer = 1 - r.id();
    MPI_Sendrecv_Convert(h, r, smr, 0, 16 * sizeof(double), peer, rmr, 0,
                         16 * sizeof(double), peer, 7, ssig, rsig, *plan);
    UNR_Plan_Start(*plan);
    UNR_Sig_Wait(h, ssig);
    UNR_Sig_Wait(h, rsig);
    if (rbuf[0] == peer + 1.5) ++delivered;
  });
  EXPECT_EQ(delivered, 2);  // both directions delivered
}

}  // namespace
}  // namespace unr::unrlib
