// Tests of the two-sided runtime: eager vs rendezvous, tag matching with
// wildcards, unexpected messages, nonblocking requests, ordering, and the
// protocol cost shapes of Fig. 1 (eager copies vs rendezvous handshake).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"

namespace unr::runtime {
namespace {

World::Config small_world(int nodes = 2, int rpn = 1) {
  World::Config c;
  c.nodes = nodes;
  c.ranks_per_node = rpn;
  c.profile = unr::make_hpc_ib();
  c.deterministic_routing = true;
  return c;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(Comm, EagerSendRecv) {
  World w(small_world());
  const auto data = pattern(512, 1);  // below the 8KiB eager threshold
  bool ok = false;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 7, data.data(), data.size());
    } else {
      std::vector<std::byte> buf(512);
      r.recv(0, 7, buf.data(), buf.size());
      ok = std::memcmp(buf.data(), data.data(), data.size()) == 0;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, RendezvousSendRecv) {
  World w(small_world());
  const auto data = pattern(256 * KiB, 2);  // far above eager threshold
  bool ok = false;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 9, data.data(), data.size());
    } else {
      std::vector<std::byte> buf(256 * KiB);
      r.recv(0, 9, buf.data(), buf.size());
      ok = std::memcmp(buf.data(), data.data(), data.size()) == 0;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, UnexpectedEagerMessageMatchedLater) {
  World w(small_world());
  const auto data = pattern(64, 3);
  bool ok = false;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 5, data.data(), data.size());
    } else {
      r.kernel().sleep_for(100 * kUs);  // let the message land unexpected
      EXPECT_EQ(r.comm().unexpected_count(1), 1u);
      std::vector<std::byte> buf(64);
      r.recv(0, 5, buf.data(), buf.size());
      ok = std::memcmp(buf.data(), data.data(), 64) == 0;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, UnexpectedRendezvousMatchedLater) {
  World w(small_world());
  const auto data = pattern(128 * KiB, 4);
  bool ok = false;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 5, data.data(), data.size());
    } else {
      r.kernel().sleep_for(100 * kUs);
      std::vector<std::byte> buf(128 * KiB);
      r.recv(0, 5, buf.data(), buf.size());
      ok = std::memcmp(buf.data(), data.data(), data.size()) == 0;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, TagMatchingSelectsRightMessage) {
  World w(small_world());
  int got_a = 0, got_b = 0;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      const int a = 111, b = 222;
      r.send(1, 10, &a, sizeof a);
      r.send(1, 20, &b, sizeof b);
    } else {
      // Receive in the opposite order of sending.
      r.recv(0, 20, &got_b, sizeof got_b);
      r.recv(0, 10, &got_a, sizeof got_a);
    }
  });
  EXPECT_EQ(got_a, 111);
  EXPECT_EQ(got_b, 222);
}

TEST(Comm, WildcardSourceAndTag) {
  World w(small_world(3, 1));
  int sum = 0;
  w.run([&](Rank& r) {
    if (r.id() != 0) {
      const int v = r.id() * 100;
      r.send(0, r.id(), &v, sizeof v);
    } else {
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        r.recv(kAnySource, kAnyTag, &v, sizeof v);
        sum += v;
      }
    }
  });
  EXPECT_EQ(sum, 300);
}

TEST(Comm, NonOvertakingSamePairSameTag) {
  World::Config cfg = small_world();
  cfg.deterministic_routing = false;
  cfg.profile.jitter = 400;
  World w(cfg);
  std::vector<int> received;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      for (int i = 0; i < 20; ++i) r.send(1, 1, &i, sizeof i);
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        r.recv(0, 1, &v, sizeof v);
        received.push_back(v);
      }
    }
  });
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Comm, IsendIrecvWaitAll) {
  World w(small_world());
  const int n_msgs = 8;
  bool ok = true;
  w.run([&](Rank& r) {
    std::vector<std::vector<std::byte>> bufs;
    std::vector<RequestPtr> reqs;
    if (r.id() == 0) {
      for (int i = 0; i < n_msgs; ++i) bufs.push_back(pattern(4096, i));
      for (int i = 0; i < n_msgs; ++i)
        reqs.push_back(r.isend(1, i, bufs[static_cast<std::size_t>(i)].data(), 4096));
    } else {
      bufs.assign(n_msgs, std::vector<std::byte>(4096));
      for (int i = 0; i < n_msgs; ++i)
        reqs.push_back(r.irecv(0, i, bufs[static_cast<std::size_t>(i)].data(), 4096));
    }
    r.wait_all(reqs);
    if (r.id() == 1)
      for (int i = 0; i < n_msgs; ++i)
        ok = ok && bufs[static_cast<std::size_t>(i)] == pattern(4096, i);
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, SendRecvExchange) {
  World w(small_world());
  int got[2] = {-1, -1};
  w.run([&](Rank& r) {
    const int mine = r.id() + 50;
    int theirs = -1;
    const int peer = 1 - r.id();
    r.sendrecv(peer, 3, &mine, sizeof mine, peer, 3, &theirs, sizeof theirs);
    got[r.id()] = theirs;
  });
  EXPECT_EQ(got[0], 51);
  EXPECT_EQ(got[1], 50);
}

TEST(Comm, RecvBufferTooSmallFails) {
  World w(small_world());
  EXPECT_THROW(w.run([&](Rank& r) {
                 if (r.id() == 0) {
                   char big[128] = {};
                   r.send(1, 1, big, sizeof big);
                 } else {
                   char small[16];
                   r.recv(0, 1, small, sizeof small);
                 }
               }),
               std::logic_error);
}

TEST(Comm, EagerLatencyBelowRendezvousForSameSize) {
  // Same payload size sent through both protocols (by moving the threshold):
  // rendezvous pays the RTS/CTS handshake, eager only the copies.
  auto run_with_threshold = [&](std::size_t threshold) {
    World::Config cfg = small_world();
    cfg.profile.eager_threshold = threshold;
    World w(cfg);
    const auto data = pattern(4 * KiB, 9);
    w.run([&](Rank& r) {
      if (r.id() == 0) {
        r.send(1, 1, data.data(), data.size());
      } else {
        std::vector<std::byte> buf(4 * KiB);
        r.recv(0, 1, buf.data(), buf.size());
      }
    });
    return w.elapsed();
  };
  const Time eager = run_with_threshold(8 * KiB);
  const Time rdv = run_with_threshold(1 * KiB);
  EXPECT_LT(eager, rdv);
}

TEST(Comm, ManyRanksAllToOne) {
  World w(small_world(4, 4));  // 16 ranks
  std::vector<int> seen;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      for (int i = 1; i < r.nranks(); ++i) {
        int v = -1;
        r.recv(kAnySource, 1, &v, sizeof v);
        seen.push_back(v);
      }
    } else {
      const int v = r.id();
      r.send(0, 1, &v, sizeof v);
    }
  });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 120);
}

TEST(Comm, ZeroByteMessage) {
  World w(small_world());
  bool done = false;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 1, nullptr, 0);
    } else {
      r.recv(0, 1, nullptr, 0);
      done = true;
    }
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace unr::runtime
