// Channel-level tests: support-level classification (Tables I & II), the
// behaviour of each channel implementation across interface personalities,
// narrow-custom-bit fallbacks, and the level-4 hardware offload.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/log.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

TEST(SupportLevel, TableTwoClassification) {
  using fabric::personality;
  EXPECT_EQ(classify(personality(Interface::kGlex)), SupportLevel::kLevel3);
  EXPECT_EQ(classify(personality(Interface::kVerbs)), SupportLevel::kLevel2);
  EXPECT_EQ(classify(personality(Interface::kUtofu)), SupportLevel::kLevel1);
  EXPECT_EQ(classify(personality(Interface::kUgni)), SupportLevel::kLevel2);
  EXPECT_EQ(classify(personality(Interface::kPami)), SupportLevel::kLevel2);
  EXPECT_EQ(classify(personality(Interface::kPortals)), SupportLevel::kLevel3);
}

TEST(SupportLevel, NamesAndDocs) {
  for (int l = 0; l <= 4; ++l) {
    const auto lvl = static_cast<SupportLevel>(l);
    EXPECT_FALSE(std::string(support_level_name(lvl)).empty());
    EXPECT_FALSE(support_level_spec(lvl).empty());
    EXPECT_FALSE(support_level_suggestion(lvl).empty());
  }
}

TEST(WireEncoding, RoundTripsAcrossWidths) {
  struct Case {
    int width, index_bits;
    std::uint64_t index;
    std::int64_t code;
  };
  for (const Case c : {Case{128, 32, 0xDEADBEEFCAFEull, -1},
                       Case{128, 32, 7, 1023},
                       Case{64, 32, 0xFFFFFFFFull, -1},
                       Case{64, 32, 12, 65535},
                       Case{32, 20, (1 << 20) - 1, -1},
                       Case{32, 20, 5, 2047},
                       Case{16, 20, 65535, 0},
                       Case{8, 20, 255, 0}}) {
    fabric::CustomBits bits;
    ASSERT_TRUE(encode_notification(c.width, c.index_bits, c.index, c.code, bits))
        << "width=" << c.width;
    std::uint64_t index;
    std::int64_t code;
    decode_notification(c.width, c.index_bits, bits, index, code);
    EXPECT_EQ(index, c.index) << "width=" << c.width;
    EXPECT_EQ(code, c.code) << "width=" << c.width;
  }
}

TEST(WireEncoding, RejectsWhatDoesNotFit) {
  fabric::CustomBits bits;
  EXPECT_FALSE(encode_notification(0, 20, 0, 0, bits));          // no bits at all
  EXPECT_FALSE(encode_notification(8, 20, 256, 0, bits));        // index too wide
  EXPECT_FALSE(encode_notification(8, 20, 1, -1, bits));         // no room for code
  EXPECT_FALSE(encode_notification(32, 20, 1 << 20, 0, bits));   // index > 2^20
  EXPECT_FALSE(encode_notification(32, 20, 0, 4096, bits));      // code > 12 bits
  EXPECT_TRUE(encode_notification(32, 20, 0, 2047, bits));
}

// Notified put must work identically through every channel kind; what
// changes is the transport mechanics, not the observable semantics.
struct ChannelCase {
  const char* label;
  unr::SystemProfile profile;
  ChannelKind kind;
};

class ChannelSemantics : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelSemantics, NotifiedPutEndToEnd) {
  const auto& c = GetParam();
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = c.profile;
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.channel = c.kind;
  Unr unr(w, uc);

  const std::size_t n = 1024;
  bool data_ok = false, local_sig_ok = false;
  w.run([&](Rank& r) {
    std::vector<std::uint32_t> buf(n);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), n * sizeof(std::uint32_t));
    if (r.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<std::uint32_t>(i ^ 0xA5);
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      const SigId ssig = unr.sig_init(0, 1);
      unr.put(0, unr.blk_init(0, mh, 0, n * sizeof(std::uint32_t), ssig), rmt);
      unr.sig_wait(0, ssig);
      local_sig_ok = true;
    } else {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, n * sizeof(std::uint32_t), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      data_ok = true;
      for (std::size_t i = 0; i < n; ++i)
        if (buf[i] != (i ^ 0xA5)) data_ok = false;
    }
  });
  EXPECT_TRUE(data_ok) << c.label;
  EXPECT_TRUE(local_sig_ok) << c.label;
}

TEST_P(ChannelSemantics, NotifiedGetEndToEnd) {
  const auto& c = GetParam();
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = c.profile;
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.channel = c.kind;
  Unr unr(w, uc);

  bool reader_ok = false, owner_notified = false;
  w.run([&](Rank& r) {
    std::vector<double> buf(16, r.id() == 1 ? 6.5 : 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 1) {
      const SigId osig = unr.sig_init(1, 1);
      const Blk oblk = unr.blk_init(1, mh, 0, 16 * sizeof(double), osig);
      r.send(0, 1, &oblk, sizeof oblk);
      unr.sig_wait(1, osig);
      owner_notified = true;
    } else {
      Blk oblk;
      r.recv(1, 1, &oblk, sizeof oblk);
      const SigId lsig = unr.sig_init(0, 1);
      unr.get(0, unr.blk_init(0, mh, 0, 16 * sizeof(double), lsig), oblk);
      unr.sig_wait(0, lsig);
      reader_ok = buf[0] == 6.5 && buf[15] == 6.5;
    }
  });
  EXPECT_TRUE(reader_ok) << c.label;
  EXPECT_TRUE(owner_notified) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, ChannelSemantics,
    ::testing::Values(
        ChannelCase{"glex_native_level3", unr::make_th_xy(), ChannelKind::kNative},
        ChannelCase{"verbs_native_level2", unr::make_hpc_ib(), ChannelKind::kNative},
        ChannelCase{"glex_level0", unr::make_th_xy(), ChannelKind::kLevel0},
        ChannelCase{"glex_level4_hw", unr::make_th_xy(), ChannelKind::kLevel4},
        ChannelCase{"fallback_on_ib", unr::make_hpc_ib(), ChannelKind::kMpiFallback},
        ChannelCase{"fallback_on_th2a", unr::make_th_2a(), ChannelKind::kMpiFallback}),
    [](const ::testing::TestParamInfo<ChannelCase>& i) { return i.param.label; });

unr::SystemProfile utofu_like_profile() {
  // A level-1 system: uTofu personality on otherwise IB-like hardware.
  unr::SystemProfile p = unr::make_hpc_ib();
  p.name = "UTOFU-SIM";
  p.iface = Interface::kUtofu;
  return p;
}

TEST(ChannelLevels, AutoChannelPicksInterfaceLevel) {
  for (auto& [prof, lvl] :
       std::vector<std::pair<unr::SystemProfile, SupportLevel>>{
           {unr::make_th_xy(), SupportLevel::kLevel3},
           {unr::make_hpc_ib(), SupportLevel::kLevel2},
           {utofu_like_profile(), SupportLevel::kLevel1}}) {
    World::Config wc;
    wc.profile = prof;
    World w(wc);
    Unr unr(w);
    EXPECT_EQ(unr.support_level(), lvl) << prof.name;
  }
}

TEST(ChannelLevels, Level1SignalOverflowFallsBackToCompanion) {
  // uTofu offers 8 remote bits -> at most 256 signal slots travel natively.
  // Slot 300 still works, via the companion-message escape hatch.
  World::Config wc;
  wc.profile = utofu_like_profile();
  wc.deterministic_routing = true;
  World w(wc);
  Unr unr(w);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(1, r.id() == 0 ? 77 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
    if (r.id() == 1) {
      SigId rsig = 0;
      for (int i = 0; i <= 300; ++i) rsig = unr.sig_init(1, 1);
      EXPECT_GE(rsig, 256u);
      const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf[0] == 77;
    } else {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rmt);
      r.kernel().sleep_for(2 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_GT(unr.stats().encode_fallbacks, 0u);
  EXPECT_GT(unr.stats().companions, 0u);
}

TEST(ChannelLevels, Level2Mode2SupportsSplitMode1DoesNot) {
  auto make_unr_cfg = [](int mode) {
    Unr::Config uc;
    uc.level2_mode = mode;
    uc.split_threshold = 1 * KiB;
    return uc;
  };
  {
    World::Config wc;
    wc.profile = unr::make_hpc_ib();
    World w(wc);
    Unr unr(w, make_unr_cfg(2));
    EXPECT_TRUE(unr.channel().multi_channel());
  }
  {
    World::Config wc;
    wc.profile = unr::make_hpc_ib();
    World w(wc);
    Unr unr(w, make_unr_cfg(1));
    EXPECT_FALSE(unr.channel().multi_channel());
  }
}

TEST(ChannelLevels, Level4NeedsWideBits) {
  World::Config wc;
  wc.profile = unr::make_hpc_ib();  // Verbs: 32 bits, not level-4 capable
  World w(wc);
  Unr::Config uc;
  uc.channel = ChannelKind::kLevel4;
  EXPECT_THROW(Unr(w, uc), std::logic_error);
}

TEST(ChannelLevels, Level4LeavesNoPollingFootprint) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.channel = ChannelKind::kLevel4;
  uc.engine.reserved_core = false;  // would normally cost background load
  Unr unr(w, uc);
  // No background load registered on any node.
  for (int n = 0; n < 2; ++n)
    EXPECT_EQ(w.fabric().machine().node(n).background_load(), 0.0);

  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(1, r.id() == 0 ? 9 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf[0] == 9;
    } else {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rmt);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  // And the engines processed nothing.
  EXPECT_EQ(unr.engine(0).stats().cqes + unr.engine(1).stats().cqes, 0u);
}

TEST(ChannelLevels, Level4NotificationFasterThanPolledLevel3) {
  // Level 4's pitch: no polling phase delay on the notification path.
  auto run_kind = [](ChannelKind kind) {
    World::Config wc;
    wc.profile = unr::make_th_xy();
    wc.deterministic_routing = true;
    World w(wc);
    Unr::Config uc;
    uc.channel = kind;
    uc.engine.poll_interval = 20 * kUs;  // deliberately sluggish polling
    Unr unr(w, uc);
    Time triggered = 0;
    w.run([&](Rank& r) {
      std::vector<int> buf(1, 0);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
      if (r.id() == 1) {
        const SigId rsig = unr.sig_init(1, 1);
        const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
        r.send(0, 1, &rblk, sizeof rblk);
        unr.sig_wait(1, rsig);
        triggered = r.now();
      } else {
        Blk rmt;
        r.recv(1, 1, &rmt, sizeof rmt);
        unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rmt);
      }
    });
    return triggered;
  };
  const Time polled = run_kind(ChannelKind::kNative);
  const Time hw = run_kind(ChannelKind::kLevel4);
  EXPECT_LT(hw, polled);
  EXPECT_GE(polled - hw, 5 * kUs);  // roughly the polling phase delay
}

TEST(ChannelLevels, FallbackStagingCopiesCostTime) {
  // The fallback channel pays pack+unpack copies; on a slow-memcpy system
  // (TH-2A) a large notified put takes measurably longer than native.
  auto run_kind = [](ChannelKind kind) {
    World::Config wc;
    wc.profile = unr::make_th_2a();
    wc.deterministic_routing = true;
    World w(wc);
    Unr::Config uc;
    uc.channel = kind;
    Unr unr(w, uc);
    const std::size_t bytes = 1 * MiB;
    Time triggered = 0;
    w.run([&](Rank& r) {
      std::vector<std::byte> buf(bytes);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
      if (r.id() == 1) {
        const SigId rsig = unr.sig_init(1, 1);
        const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
        r.send(0, 1, &rblk, sizeof rblk);
        unr.sig_wait(1, rsig);
        triggered = r.now();
      } else {
        Blk rmt;
        r.recv(1, 1, &rmt, sizeof rmt);
        unr.put(0, unr.blk_init(0, mh, 0, bytes), rmt);
      }
    });
    return triggered;
  };
  const Time native = run_kind(ChannelKind::kNative);
  const Time fallback = run_kind(ChannelKind::kMpiFallback);
  EXPECT_GT(fallback, native);
  // At 48 gigabit/s memcpy, two 1MiB copies cost ~350us: must be visible.
  EXPECT_GT(fallback - native, 100 * kUs);
}

}  // namespace
}  // namespace unr::unrlib
