// Progress-engine behavior: drain scheduling, polling-interval latency,
// background core accounting, CQ-overflow resilience, and software-task
// ordering — the machinery behind Section VI-C's polling discussion.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config cfg(unr::SystemProfile prof = unr::make_th_xy()) {
  World::Config c;
  c.profile = std::move(prof);
  c.deterministic_routing = true;
  return c;
}

/// One notified put; returns the receive-side trigger time.
Time one_put_trigger_time(const Unr::Config& uc, World::Config wc) {
  World w(wc);
  Unr unr(w, uc);
  Time triggered = 0;
  w.run([&](Rank& r) {
    std::vector<int> buf(1, 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      triggered = r.now();
    } else {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rmt);
    }
  });
  return triggered;
}

TEST(Engine, PollIntervalAddsLatencyMonotonically) {
  Time prev = 0;
  for (Time interval : {Time(500), Time(4000), Time(16000)}) {
    Unr::Config uc;
    uc.engine.poll_interval = interval;
    const Time t = one_put_trigger_time(uc, cfg());
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Engine, ReservedCoreRegistersFullBackgroundLoad) {
  World w(cfg());
  Unr::Config uc;
  uc.engine.reserved_core = true;
  Unr unr(w, uc);
  for (int n = 0; n < 2; ++n)
    EXPECT_DOUBLE_EQ(w.fabric().machine().node(n).background_load(), 1.0);
}

TEST(Engine, UnreservedLoadIsFractional) {
  World w(cfg());
  Unr::Config uc;
  uc.engine.reserved_core = false;
  Unr unr(w, uc);
  const double load = w.fabric().machine().node(0).background_load();
  EXPECT_GT(load, 0.0);
  EXPECT_LT(load, 1.0);
}

TEST(Engine, UnreservedEngineDelaysNotifications) {
  Unr::Config reserved;
  reserved.engine.reserved_core = true;
  Unr::Config shared;
  shared.engine.reserved_core = false;
  EXPECT_GT(one_put_trigger_time(shared, cfg()),
            one_put_trigger_time(reserved, cfg()));
}

TEST(Engine, DrainsBackloggedCqWithoutLoss) {
  // Many puts land while the receiver is busy computing; a single wait must
  // still observe every completion (the engine drains the whole backlog).
  World w(cfg());
  Unr unr(w);
  const int n_msgs = 200;
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(static_cast<std::size_t>(n_msgs), 0);
    const MemHandle mh =
        unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, n_msgs);
      const Blk rblk =
          unr.blk_init(1, mh, 0, buf.size() * sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      r.compute(2 * kMs, 1);  // stay busy while the CQ fills
      unr.sig_wait(1, rsig);
      ok = true;
      for (int i = 0; i < n_msgs; ++i)
        if (buf[static_cast<std::size_t>(i)] != i + 1) ok = false;
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      std::vector<int> val(static_cast<std::size_t>(n_msgs));
      const MemHandle smh =
          unr.mem_reg(0, val.data(), val.size() * sizeof(int));
      for (int i = 0; i < n_msgs; ++i) {
        val[static_cast<std::size_t>(i)] = i + 1;
        unr.put(0,
                unr.blk_init(0, smh, static_cast<std::size_t>(i) * sizeof(int),
                             sizeof(int)),
                rblk.sub(static_cast<std::size_t>(i) * sizeof(int), sizeof(int)));
      }
      r.kernel().sleep_for(5 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_GE(unr.engine(1).stats().cqes, static_cast<std::uint64_t>(n_msgs));
}

TEST(Engine, TinyCqDepthSurvivesThroughRetries) {
  // A 16-entry remote CQ with 200 incoming puts: the NACK/retry path must
  // deliver everything (slower, but complete).
  World::Config wc = cfg();
  wc.profile.cq_depth = 16;
  World w(wc);
  Unr::Config uc;
  uc.engine.poll_interval = 50 * kUs;  // sluggish polling: the CQ must overflow
  Unr unr(w, uc);
  const int n_msgs = 200;
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(static_cast<std::size_t>(n_msgs), std::byte{0});
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, n_msgs);
      const Blk rblk = unr.blk_init(1, mh, 0, buf.size(), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = true;
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      std::byte one{1};
      std::vector<std::byte> src(static_cast<std::size_t>(n_msgs), one);
      const MemHandle smh = unr.mem_reg(0, src.data(), src.size());
      for (int i = 0; i < n_msgs; ++i)
        unr.put(0, unr.blk_init(0, smh, static_cast<std::size_t>(i), 1),
                rblk.sub(static_cast<std::size_t>(i), 1));
      r.kernel().sleep_for(20 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_GT(w.fabric().stats().cq_retries, 0u);
}

TEST(Engine, StatsCountDrainsAndTasks) {
  World w(cfg());
  Unr::Config uc;
  uc.channel = ChannelKind::kLevel0;  // all notifications are software tasks
  Unr unr(w, uc);
  w.run([&](Rank& r) {
    std::vector<int> buf(4, 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 3);
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      for (int i = 0; i < 3; ++i)
        unr.put(0, unr.blk_init(0, mh, 0, 4 * sizeof(int)), rblk);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_GE(unr.engine(1).stats().sw_tasks, 3u);
  EXPECT_GE(unr.engine(1).stats().drains, 1u);
  EXPECT_EQ(unr.stats().companions, 3u);
}

}  // namespace
}  // namespace unr::unrlib
