// Tests of the Plan machinery and the MPI conversion interfaces (Code 3):
// recorded puts replayed across iterations, isend/irecv pairs, sendrecv
// exchange, and the pipelined alltoallv used by the PPE solver.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"
#include "unr/convert.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config cfg(int nodes = 2, int rpn = 1) {
  World::Config c;
  c.nodes = nodes;
  c.ranks_per_node = rpn;
  c.profile = unr::make_th_xy();
  c.deterministic_routing = true;
  return c;
}

TEST(Plan, RecordedPutsReplayEachStart) {
  World w(cfg());
  Unr unr(w);
  const int iters = 5;
  int verified = 0;
  w.run([&](Rank& r) {
    std::vector<int> buf(4, 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 1, &rmt, sizeof rmt);
      const SigId ssig = unr.sig_init(0, 1);
      auto plan = unr.make_plan(0);
      plan->add_put(unr.blk_init(0, mh, 0, 4 * sizeof(int), ssig), rmt);
      for (int it = 0; it < iters; ++it) {
        buf[0] = it * 11;
        plan->start();
        unr.sig_wait(0, ssig);
        unr.sig_reset(0, ssig);
        char ack;
        r.recv(1, 2, &ack, 1);
      }
    } else {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      for (int it = 0; it < iters; ++it) {
        unr.sig_wait(1, rsig);
        if (buf[0] == it * 11) ++verified;
        unr.sig_reset(1, rsig);
        char ack = 1;
        r.send(0, 2, &ack, 1);
      }
    }
  });
  EXPECT_EQ(verified, iters);
}

TEST(Plan, MixedOpsAndLocalCopy) {
  World w(cfg());
  Unr unr(w);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> src(4, r.id() * 100 + 1), dst(4, 0);
    const MemHandle mh = unr.mem_reg(r.id(), dst.data(), dst.size() * sizeof(int));
    if (r.id() == 0) {
      const SigId sig = unr.sig_init(0, 1);
      auto plan = unr.make_plan(0);
      plan->add_local_copy(dst.data(), src.data(), 4 * sizeof(int), sig);
      plan->start();
      unr.sig_wait(0, sig);
      ok = dst[0] == 1 && dst[3] == 1;
      (void)mh;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Convert, IsendIrecvPairMovesData) {
  World w(cfg());
  Unr unr(w);
  const int iters = 3;
  int verified = 0;
  w.run([&](Rank& r) {
    std::vector<double> buf(32, 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    auto plan = unr.make_plan(r.id());
    if (r.id() == 0) {
      const SigId ssig = unr.sig_init(0, 1);
      isend_convert(unr, r, mh, 0, 32 * sizeof(double), /*dst=*/1, /*tag=*/5, ssig,
                    *plan);
      for (int it = 0; it < iters; ++it) {
        for (int i = 0; i < 32; ++i) buf[static_cast<std::size_t>(i)] = it + i * 0.5;
        plan->start();
        unr.sig_wait(0, ssig);
        unr.sig_reset(0, ssig);
        char ack;
        r.recv(1, 99, &ack, 1);
      }
    } else {
      const SigId rsig = unr.sig_init(1, 1);
      irecv_convert(unr, r, mh, 0, 32 * sizeof(double), /*src=*/0, /*tag=*/5, rsig,
                    *plan);
      for (int it = 0; it < iters; ++it) {
        unr.sig_wait(1, rsig);
        bool good = true;
        for (int i = 0; i < 32; ++i)
          if (buf[static_cast<std::size_t>(i)] != it + i * 0.5) good = false;
        if (good) ++verified;
        unr.sig_reset(1, rsig);
        char ack = 1;
        r.send(0, 99, &ack, 1);
      }
    }
  });
  EXPECT_EQ(verified, iters);
}

TEST(Convert, IsendIrecvSizeMismatchDetected) {
  World w(cfg());
  Unr unr(w);
  EXPECT_THROW(w.run([&](Rank& r) {
                 std::vector<double> buf(32, 0.0);
                 const MemHandle mh =
                     unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
                 auto plan = unr.make_plan(r.id());
                 if (r.id() == 0) {
                   isend_convert(unr, r, mh, 0, 32 * sizeof(double), 1, 5, kNoSig,
                                 *plan);
                 } else {
                   irecv_convert(unr, r, mh, 0, 16 * sizeof(double), 0, 5, kNoSig,
                                 *plan);
                 }
               }),
               std::logic_error);
}

TEST(Convert, SendrecvExchange) {
  World w(cfg());
  Unr unr(w);
  std::vector<int> got(2, -1);
  w.run([&](Rank& r) {
    const int peer = 1 - r.id();
    std::vector<int> sbuf(8, r.id() + 40), rbuf(8, -1);
    const MemHandle smh = unr.mem_reg(r.id(), sbuf.data(), sbuf.size() * sizeof(int));
    const MemHandle rmh = unr.mem_reg(r.id(), rbuf.data(), rbuf.size() * sizeof(int));
    const SigId ssig = unr.sig_init(r.id(), 1);
    const SigId rsig = unr.sig_init(r.id(), 1);
    auto plan = unr.make_plan(r.id());
    sendrecv_convert(unr, r, smh, 0, 8 * sizeof(int), peer, rmh, 0, 8 * sizeof(int),
                     peer, /*tag=*/3, ssig, rsig, *plan);
    plan->start();
    unr.sig_wait(r.id(), ssig);
    unr.sig_wait(r.id(), rsig);
    got[static_cast<std::size_t>(r.id())] = rbuf[0];
  });
  EXPECT_EQ(got[0], 41);
  EXPECT_EQ(got[1], 40);
}

TEST(Convert, AlltoallvPipelinedTranspose) {
  const int p = 4;
  World w(cfg(p, 1));
  Unr unr(w);
  int good_ranks = 0;
  w.run([&](Rank& r) {
    const auto sp = static_cast<std::size_t>(p);
    // Rank r sends 16 ints of value r*10+d to rank d.
    const std::size_t blk_ints = 16;
    const std::size_t blk_bytes = blk_ints * sizeof(int);
    std::vector<int> sbuf(sp * blk_ints), rbuf(sp * blk_ints, -1);
    std::vector<std::size_t> counts(sp, blk_bytes), displs(sp);
    for (std::size_t d = 0; d < sp; ++d) {
      displs[d] = d * blk_bytes;
      for (std::size_t i = 0; i < blk_ints; ++i)
        sbuf[d * blk_ints + i] = r.id() * 10 + static_cast<int>(d);
    }
    const MemHandle smh = unr.mem_reg(r.id(), sbuf.data(), sbuf.size() * sizeof(int));
    const MemHandle rmh = unr.mem_reg(r.id(), rbuf.data(), rbuf.size() * sizeof(int));
    const SigId ssig = unr.sig_init(r.id(), p);
    const SigId rsig = unr.sig_init(r.id(), p);
    auto plan = unr.make_plan(r.id());
    alltoallv_convert(unr, r, smh, counts, displs, rmh, counts, displs, ssig, rsig,
                      *plan);
    plan->start();
    unr.sig_wait(r.id(), ssig);
    unr.sig_wait(r.id(), rsig);
    bool good = true;
    for (std::size_t s = 0; s < sp; ++s)
      for (std::size_t i = 0; i < blk_ints; ++i)
        if (rbuf[s * blk_ints + i] != static_cast<int>(s) * 10 + r.id()) good = false;
    if (good) ++good_ranks;
  });
  EXPECT_EQ(good_ranks, p);
}

TEST(Convert, AlltoallvRepeatedIterationsWithReset) {
  const int p = 3;
  World w(cfg(p, 1));
  Unr unr(w);
  int good_iters = 0;
  w.run([&](Rank& r) {
    const auto sp = static_cast<std::size_t>(p);
    const std::size_t blk_bytes = 8 * sizeof(double);
    std::vector<double> sbuf(sp * 8), rbuf(sp * 8);
    std::vector<std::size_t> counts(sp, blk_bytes), displs(sp);
    for (std::size_t d = 0; d < sp; ++d) displs[d] = d * blk_bytes;
    const MemHandle smh = unr.mem_reg(r.id(), sbuf.data(), sbuf.size() * sizeof(double));
    const MemHandle rmh = unr.mem_reg(r.id(), rbuf.data(), rbuf.size() * sizeof(double));
    const SigId ssig = unr.sig_init(r.id(), p);
    const SigId rsig = unr.sig_init(r.id(), p);
    auto plan = unr.make_plan(r.id());
    alltoallv_convert(unr, r, smh, counts, displs, rmh, counts, displs, ssig, rsig,
                      *plan);
    for (int it = 0; it < 4; ++it) {
      for (std::size_t d = 0; d < sp; ++d)
        for (std::size_t i = 0; i < 8; ++i)
          sbuf[d * 8 + i] = 1000.0 * it + r.id() * 10 + static_cast<double>(d);
      plan->start();
      unr.sig_wait(r.id(), ssig);
      unr.sig_wait(r.id(), rsig);
      bool good = true;
      for (std::size_t s = 0; s < sp; ++s)
        for (std::size_t i = 0; i < 8; ++i)
          if (rbuf[s * 8 + i] != 1000.0 * it + static_cast<double>(s) * 10 + r.id())
            good = false;
      if (good && r.id() == 0) ++good_iters;
      unr.sig_reset(r.id(), ssig);
      unr.sig_reset(r.id(), rsig);
      // The collective structure itself provides the pre-synchronization for
      // the next iteration (everyone participated in this one)...
      r.barrier();
    }
  });
  EXPECT_EQ(good_iters, 4);
}

TEST(Convert, PlanSizeReflectsRecordedOps) {
  const int p = 4;
  World w(cfg(p, 1));
  Unr unr(w);
  std::size_t plan_size = 0;
  w.run([&](Rank& r) {
    const auto sp = static_cast<std::size_t>(p);
    std::vector<int> sbuf(sp), rbuf(sp);
    std::vector<std::size_t> counts(sp, sizeof(int)), displs(sp);
    for (std::size_t d = 0; d < sp; ++d) displs[d] = d * sizeof(int);
    const MemHandle smh = unr.mem_reg(r.id(), sbuf.data(), sp * sizeof(int));
    const MemHandle rmh = unr.mem_reg(r.id(), rbuf.data(), sp * sizeof(int));
    auto plan = unr.make_plan(r.id());
    alltoallv_convert(unr, r, smh, counts, displs, rmh, counts, displs, kNoSig, kNoSig,
                      *plan);
    if (r.id() == 0) plan_size = plan->size();
    r.barrier();
    plan->start();
    r.kernel().sleep_for(1 * kMs);
  });
  EXPECT_EQ(plan_size, 4u);  // p-1 puts + 1 local copy
}

}  // namespace
}  // namespace unr::unrlib
