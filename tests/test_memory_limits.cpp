// Registered-memory lifecycle through the UNR API: the per-rank region
// limit that motivates the BLK design ("register memory as large as
// possible and then divide it into BLKs" — Section IV-D), deregistration,
// and the fail-loud behavior for operations against dead regions.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

TEST(MemoryLimits, RegionCapForcesBlkStyle) {
  // A system allowing only 2 registered regions per rank: registering many
  // small buffers fails, registering one big one and slicing BLKs works.
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.max_regions_per_rank = 2;
  World w(wc);
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<double> big(1024);
    const MemHandle mh = unr.mem_reg(0, big.data(), big.size() * sizeof(double));
    std::vector<double> other(16);
    unr.mem_reg(0, other.data(), other.size() * sizeof(double));
    // Third registration: over the cap.
    std::vector<double> third(16);
    EXPECT_THROW(unr.mem_reg(0, third.data(), third.size() * sizeof(double)),
                 std::logic_error);
    // But any number of BLKs over the one big region is fine.
    std::vector<Blk> blks;
    for (int i = 0; i < 64; ++i)
      blks.push_back(unr.blk_init(0, mh, static_cast<std::size_t>(i) * 16 * 8, 16 * 8));
    EXPECT_EQ(blks.size(), 64u);
  });
}

TEST(MemoryLimits, DeregFreesASlot) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.max_regions_per_rank = 1;
  World w(wc);
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<double> a(8), b(8);
    const MemHandle ma = unr.mem_reg(0, a.data(), 64);
    EXPECT_THROW(unr.mem_reg(0, b.data(), 64), std::logic_error);
    unr.mem_dereg(0, ma);
    EXPECT_NO_THROW(unr.mem_reg(0, b.data(), 64));
  });
}

TEST(MemoryLimits, PutAgainstDeregisteredRegionFailsLoudly) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr unr(w);
  EXPECT_THROW(w.run([&](Rank& r) {
                 std::vector<int> buf(4, 0);
                 const MemHandle mh =
                     unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
                 if (r.id() == 1) {
                   const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(int));
                   r.send(0, 1, &rblk, sizeof rblk);
                   unr.mem_dereg(1, mh);  // BUG: expose, then pull the rug
                   r.kernel().sleep_for(1 * kMs);
                 } else {
                   Blk rblk;
                   r.recv(1, 1, &rblk, sizeof rblk);
                   r.kernel().sleep_for(100 * kUs);  // let the dereg land first
                   unr.put(0, unr.blk_init(0, mh, 0, 4 * sizeof(int)), rblk);
                   r.kernel().sleep_for(1 * kMs);
                 }
               }),
               std::logic_error);
}

TEST(MemoryLimits, BlkSlicingCoversWholeRegionExactly) {
  World::Config wc;
  wc.profile = unr::make_th_xy();
  World w(wc);
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<std::byte> buf(256);
    const MemHandle mh = unr.mem_reg(0, buf.data(), 256);
    EXPECT_NO_THROW(unr.blk_init(0, mh, 0, 256));       // exact fit
    EXPECT_NO_THROW(unr.blk_init(0, mh, 255, 1));       // last byte
    EXPECT_NO_THROW(unr.blk_init(0, mh, 128, 0));       // empty block is legal
    EXPECT_THROW(unr.blk_init(0, mh, 256, 1), std::logic_error);
    EXPECT_THROW(unr.blk_init(0, mh, 0, 257), std::logic_error);
  });
}

}  // namespace
}  // namespace unr::unrlib
