// unr_fuzz: property-based fuzz driver over the check:: subsystem.
//
// Sweeps seeds x interface personalities x fault modes; every case is
// generated, executed, and checked against the reference oracle — by default
// differentially across the three software channel levels (native / level0 /
// MPI fallback), whose application-visible digests must match bit for bit.
//
// Failures write a repro file next to the working directory, are minimized
// by the shrinker, and exit the sweep nonzero. Repros are full svc::RunSpec
// documents ("unrspec v1") with the workload embedded — the same canonical
// form the session server and the benches speak — and --repro= also accepts
// the older bare-workload files ("unrfuzz v1"/"unrfuzz v2"), so historical
// repros keep replaying.
//
//   unr_fuzz --seeds=200 --ifaces=glex,verbs,utofu --faults=both
//   unr_fuzz --seeds=200 --mix=aisync   # draw AI/sync round kinds too
//   unr_fuzz --repro=fuzz-fail-17-verbs-on.repro
//   unr_fuzz --mutate --seeds=5         # harness self-test (must catch bugs)
//   unr_fuzz --print-spec=42 --ifaces=glex
//   unr_fuzz --emit-corpus=DIR          # regenerate the committed scenario
//                                       # corpus (tests/fuzz/corpus/)
//
// tools/fuzz_triage.py wraps the repro/shrink workflow.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "check/workload.hpp"
#include "scenarios/traffic.hpp"
#include "svc/runspec.hpp"

namespace {

using namespace unr;
using namespace unr::check;

struct CliArgs {
  std::uint64_t seeds = 25;
  std::uint64_t seed0 = 1;
  std::vector<Interface> ifaces = {Interface::kGlex, Interface::kVerbs,
                                   Interface::kUtofu};
  std::vector<unrlib::ChannelKind> channels;  // empty = differential trio
  int faults = 2;                             // 0 = off, 1 = on, 2 = both
  bool mutate = false;
  bool do_shrink = true;
  std::string repro;
  std::string dump_dir = ".";
  std::string emit_corpus;  // write one scenario-pack repro per pattern here
  double time_budget = 0;   // wall seconds; 0 = unlimited
  std::int64_t print_spec = -1;
  GenConfig::Mix mix = GenConfig::Mix::kClassic;
};

bool parse_iface_list(const std::string& v, std::vector<Interface>& out) {
  out.clear();
  if (v == "all") {
    out = {Interface::kGlex, Interface::kVerbs,  Interface::kUtofu,
           Interface::kUgni, Interface::kPami,   Interface::kPortals};
    return true;
  }
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    Interface i{};
    if (!iface_from_token(tok, i)) {
      std::cerr << "unknown interface: " << tok << "\n";
      return false;
    }
    out.push_back(i);
  }
  return !out.empty();
}

bool parse_channel_list(const std::string& v,
                        std::vector<unrlib::ChannelKind>& out) {
  out.clear();
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == "native") out.push_back(unrlib::ChannelKind::kNative);
    else if (tok == "level0") out.push_back(unrlib::ChannelKind::kLevel0);
    else if (tok == "level4") out.push_back(unrlib::ChannelKind::kLevel4);
    else if (tok == "fallback") out.push_back(unrlib::ChannelKind::kMpiFallback);
    else if (tok == "auto") out.push_back(unrlib::ChannelKind::kAuto);
    else {
      std::cerr << "unknown channel: " << tok << "\n";
      return false;
    }
  }
  return !out.empty();
}

bool parse_args(int argc, char** argv, CliArgs& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--seeds=")) a.seeds = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--seed0=")) a.seed0 = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--ifaces=")) { if (!parse_iface_list(v, a.ifaces)) return false; }
    else if (const char* v = val("--channels=")) { if (!parse_channel_list(v, a.channels)) return false; }
    else if (const char* v = val("--faults=")) {
      const std::string m = v;
      if (m == "off") a.faults = 0;
      else if (m == "on") a.faults = 1;
      else if (m == "both") a.faults = 2;
      else { std::cerr << "bad --faults (off|on|both)\n"; return false; }
    }
    else if (const char* v = val("--repro=")) a.repro = v;
    else if (const char* v = val("--dump-dir=")) a.dump_dir = v;
    else if (const char* v = val("--emit-corpus=")) a.emit_corpus = v;
    else if (const char* v = val("--mix=")) {
      const std::string m = v;
      if (m == "classic") a.mix = GenConfig::Mix::kClassic;
      else if (m == "aisync") a.mix = GenConfig::Mix::kAiSync;
      else { std::cerr << "bad --mix (classic|aisync)\n"; return false; }
    }
    else if (const char* v = val("--time-budget=")) a.time_budget = std::strtod(v, nullptr);
    else if (const char* v = val("--print-spec=")) a.print_spec = std::strtoll(v, nullptr, 10);
    else if (arg == "--mutate") a.mutate = true;
    else if (arg == "--no-shrink") a.do_shrink = false;
    else if (arg == "--help" || arg == "-h") return false;
    else { std::cerr << "unknown flag: " << arg << "\n"; return false; }
  }
  return true;
}

void usage() {
  std::cerr <<
      "unr_fuzz [--seeds=N] [--seed0=S] [--ifaces=glex,verbs,...|all]\n"
      "         [--channels=native,level0,fallback,level4,auto]\n"
      "         [--faults=off|on|both] [--mix=classic|aisync]\n"
      "         [--time-budget=SECONDS] [--dump-dir=DIR] [--no-shrink]\n"
      "         [--repro=FILE]      replay one workload file\n"
      "         [--mutate]          self-test: injected bugs must be caught\n"
      "         [--print-spec=S]    print the generated workload for seed S\n"
      "         [--emit-corpus=DIR] write one scenario-pack repro per traffic\n"
      "                             pattern (regenerates tests/fuzz/corpus/)\n";
}

std::span<const unrlib::ChannelKind> channel_set(const CliArgs& a) {
  return a.channels.empty()
             ? differential_channels()
             : std::span<const unrlib::ChannelKind>(a.channels);
}

/// Run one spec over the configured channel set; returns the combined
/// violation list (differential digest mismatches included).
std::vector<std::string> run_case(const WorkloadSpec& spec, const CliArgs& a) {
  const DiffResult d = run_differential(spec, channel_set(a));
  return d.violations;
}

std::string case_name(std::uint64_t seed, Interface iface, bool faults) {
  std::ostringstream os;
  os << "seed " << seed << " iface " << iface_token(iface)
     << " faults " << (faults ? "on" : "off");
  return os.str();
}

void write_repro(const WorkloadSpec& spec, const std::string& path) {
  svc::RunSpec rs;
  rs.workload = spec;
  rs.seed = spec.seed;
  std::ofstream f(path);
  f << svc::to_text(rs);
  std::cerr << "  repro written: " << path << "\n";
}

/// Accept every repro generation: a full "unrspec v1" document (current), or
/// a bare workload in "unrfuzz v1"/"unrfuzz v2" (what older sweeps dumped).
bool load_repro(const std::string& text, WorkloadSpec& spec, std::string& err) {
  if (text.rfind(svc::kRunSpecFormat, 0) == 0) {
    svc::RunSpec rs;
    if (!svc::from_text(text, rs, &err)) return false;
    if (!rs.workload) {
      err = "unrspec repro embeds no workload block";
      return false;
    }
    spec = *rs.workload;
    return true;
  }
  return from_text(text, spec, &err);
}

/// Shrink with "the channel sweep still reports any violation" as the
/// predicate, then persist + print the minimized workload.
void shrink_and_report(const WorkloadSpec& spec, const CliArgs& a,
                       const std::string& tag) {
  if (!a.do_shrink) return;
  ShrinkStats st;
  const WorkloadSpec tiny = shrink(
      spec, [&](const WorkloadSpec& cand) { return !run_case(cand, a).empty(); },
      {}, &st);
  std::cerr << "  shrunk to " << total_ops(tiny) << " op(s) over "
            << tiny.rounds.size() << " round(s) (" << st.attempts
            << " attempts)\n";
  write_repro(tiny, a.dump_dir + "/" + tag + ".min.repro");
  std::cerr << to_text(tiny);
}

int replay(const CliArgs& a) {
  std::ifstream f(a.repro);
  if (!f) {
    std::cerr << "cannot open " << a.repro << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  WorkloadSpec spec;
  std::string err;
  if (!load_repro(buf.str(), spec, err)) {
    std::cerr << "bad repro file: " << err << "\n";
    return 2;
  }
  const DiffResult d = run_differential(spec, channel_set(a));
  for (const auto& [ch, r] : d.runs) {
    std::cerr << channel_token(ch) << ": digest 0x" << std::hex << r.digest
              << std::dec << ", " << r.events << " events, end "
              << r.end_time << " ns\n";
  }
  if (d.ok) {
    std::cerr << "PASS: no violations\n";
    return 0;
  }
  for (const std::string& v : d.violations) std::cerr << "VIOLATION: " << v << "\n";
  shrink_and_report(spec, a, "repro");
  return 1;
}

/// Harness self-test: plant a known bug, require the oracle to catch it and
/// the shrinker to reduce it to a small repro.
int mutate_sweep(const CliArgs& a) {
  int escapes = 0;
  int planted = 0;
  for (std::uint64_t s = a.seed0; s < a.seed0 + a.seeds; ++s) {
    for (const Mutation m : {Mutation::kCorruptPayload, Mutation::kStraySignal}) {
      GenConfig gc;
      gc.iface = a.ifaces.front();
      gc.mix = a.mix;
      WorkloadSpec spec = generate(s, gc);
      if (!inject_mutation(spec, m, s)) continue;
      ++planted;
      const char* name =
          m == Mutation::kCorruptPayload ? "corrupt-payload" : "stray-signal";
      const std::vector<std::string> v = run_case(spec, a);
      if (v.empty()) {
        std::cerr << "ESCAPE: " << name << " at seed " << s
                  << " not caught by the oracle\n";
        ++escapes;
        continue;
      }
      ShrinkStats st;
      const WorkloadSpec tiny = shrink(
          spec,
          [&](const WorkloadSpec& c) { return !run_case(c, a).empty(); }, {},
          &st);
      std::cerr << name << " seed " << s << ": caught (\"" << v.front()
                << "\"), shrunk " << total_ops(spec) << " -> "
                << total_ops(tiny) << " ops\n";
      if (total_ops(tiny) > 10) {
        std::cerr << "ESCAPE: shrinker left " << total_ops(tiny)
                  << " ops (> 10)\n";
        ++escapes;
      }
    }
  }
  std::cerr << "mutation self-test: " << planted << " planted, " << escapes
            << " escape(s)\n";
  if (planted == 0) {
    std::cerr << "no mutation sites found — widen the sweep\n";
    return 2;
  }
  return escapes == 0 ? 0 : 1;
}

/// Regenerate the committed scenario-pack corpus: one small-topology repro
/// per traffic pattern in scenarios::patterns(), each verified differentially
/// across the channel set BEFORE it is written — a corpus file that does not
/// replay clean must never be committed. The corpus-replay slice of
/// test_fuzz_smoke replays exactly these files.
int emit_corpus(const CliArgs& a) {
  int failures = 0;
  for (const scenarios::Pattern& pat : scenarios::patterns()) {
    scenarios::TrafficParams p;
    p.seed = 4242;
    p.nodes = 3;
    p.ranks_per_node = 2;
    p.rounds = 2;
    const WorkloadSpec spec = pat.make(p);
    if (const std::string verr = validate(spec); !verr.empty()) {
      std::cerr << "CORPUS FAIL: " << pat.name << " invalid: " << verr << "\n";
      ++failures;
      continue;
    }
    const std::vector<std::string> v = run_case(spec, a);
    if (!v.empty()) {
      std::cerr << "CORPUS FAIL: " << pat.name << "\n";
      for (const std::string& msg : v) std::cerr << "  " << msg << "\n";
      ++failures;
      continue;
    }
    write_repro(spec, a.emit_corpus + "/" + pat.name + ".repro");
  }
  std::cerr << "corpus: " << (failures == 0 ? "all patterns clean" : "FAILED")
            << "\n";
  return failures == 0 ? 0 : 1;
}

int sweep(const CliArgs& a) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (a.time_budget <= 0) return false;
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count() >= a.time_budget;
  };

  std::uint64_t cases = 0;
  int failures = 0;
  bool truncated = false;
  for (const Interface iface : a.ifaces) {
    for (const bool faults : {false, true}) {
      if ((a.faults == 0 && faults) || (a.faults == 1 && !faults)) continue;
      for (std::uint64_t s = a.seed0; s < a.seed0 + a.seeds; ++s) {
        if (out_of_budget()) {
          truncated = true;
          goto done;
        }
        GenConfig gc;
        gc.iface = iface;
        gc.faults = faults;
        gc.mix = a.mix;
        const WorkloadSpec spec = generate(s, gc);
        ++cases;
        const std::vector<std::string> v = run_case(spec, a);
        if (v.empty()) continue;
        ++failures;
        std::cerr << "FAIL: " << case_name(s, iface, faults) << "\n";
        for (const std::string& msg : v) std::cerr << "  " << msg << "\n";
        std::ostringstream tag;
        tag << "fuzz-fail-" << s << "-" << iface_token(iface) << "-"
            << (faults ? "on" : "off");
        write_repro(spec, a.dump_dir + "/" + tag.str() + ".repro");
        shrink_and_report(spec, a, tag.str());
      }
    }
  }
done:
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  std::cerr << "fuzz sweep: " << cases << " case(s), " << failures
            << " failure(s), " << dt.count() << " s"
            << (truncated ? " [time budget hit]" : "") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs a;
  if (!parse_args(argc, argv, a)) {
    usage();
    return 2;
  }
  if (a.print_spec >= 0) {
    GenConfig gc;
    gc.iface = a.ifaces.front();
    gc.faults = a.faults == 1;
    gc.mix = a.mix;
    std::cout << to_text(generate(static_cast<std::uint64_t>(a.print_spec), gc));
    return 0;
  }
  if (!a.emit_corpus.empty()) return emit_corpus(a);
  if (!a.repro.empty()) return replay(a);
  if (a.mutate) return mutate_sweep(a);
  return sweep(a);
}
