// Tier-1 slice of the property-based fuzz harness (docs/TESTING.md).
//
// The nightly `fuzz` label runs hundreds of seeds; this file keeps a small,
// fast cross-section in the always-on gate: generator determinism + text
// round-trip, clean differential runs across channel levels and interface
// personalities (faults on and off), the mutation self-test — a planted
// bug must be caught by the oracle and shrunk to a tiny repro — and the
// scenario-pack slice: oracle rules for the AI/sync round kinds, the aisync
// generator mix, and a differential replay of the committed corpus
// (tests/fuzz/corpus/, one repro per traffic pattern).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "check/workload.hpp"
#include "scenarios/traffic.hpp"
#include "svc/runspec.hpp"

namespace unr::check {
namespace {

GenConfig cfg(Interface iface, bool faults = false) {
  GenConfig gc;
  gc.iface = iface;
  gc.faults = faults;
  return gc;
}

TEST(FuzzGenerate, DeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const WorkloadSpec a = generate(seed, cfg(Interface::kVerbs));
    const WorkloadSpec b = generate(seed, cfg(Interface::kVerbs));
    EXPECT_EQ(to_text(a), to_text(b)) << "seed " << seed;
    EXPECT_EQ(validate(a), "") << "seed " << seed;
    EXPECT_GE(a.rounds.size(), 1u);
  }
}

TEST(FuzzGenerate, TextRoundTrip) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const WorkloadSpec a = generate(seed, cfg(Interface::kUtofu, true));
    WorkloadSpec b;
    std::string err;
    ASSERT_TRUE(from_text(to_text(a), b, &err)) << err;
    EXPECT_EQ(to_text(a), to_text(b));
    EXPECT_EQ(validate(b), "");
  }
}

TEST(FuzzRun, CleanSeedsNative) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kGlex));
    RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    const RunResult r = run_workload(spec, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.events, 0u);
  }
}

TEST(FuzzRun, DifferentialChannelsBitIdentical) {
  for (std::uint64_t seed : {2ull, 5ull, 11ull}) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kVerbs));
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << "seed " << seed << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
    ASSERT_EQ(d.runs.size(), 3u);
    EXPECT_EQ(d.runs[0].second.digest, d.runs[1].second.digest);
    EXPECT_EQ(d.runs[0].second.digest, d.runs[2].second.digest);
  }
}

TEST(FuzzRun, FaultsStillSatisfyOracle) {
  for (std::uint64_t seed : {3ull, 9ull}) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kUtofu, true));
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << "seed " << seed << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
  }
}

TEST(FuzzRun, EveryPersonalityOneSeed) {
  for (const Interface i :
       {Interface::kGlex, Interface::kVerbs, Interface::kUtofu,
        Interface::kUgni, Interface::kPami, Interface::kPortals}) {
    const WorkloadSpec spec = generate(13, cfg(i));
    RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    const RunResult r = run_workload(spec, opt);
    EXPECT_TRUE(r.ok) << iface_token(i) << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
  }
}

TEST(FuzzRun, DeterministicReplay) {
  const WorkloadSpec spec = generate(6, cfg(Interface::kVerbs, true));
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  const RunResult a = run_workload(spec, opt);
  const RunResult b = run_workload(spec, opt);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(FuzzRun, RejectsInvalidSpec) {
  WorkloadSpec spec = generate(1, cfg(Interface::kGlex));
  spec.rounds.emplace_back();
  spec.rounds.back().kind = RoundSpec::Kind::kXfer;
  OpSpec bad;
  bad.a = 0;
  bad.b = spec.nranks() + 5;  // out of range
  spec.rounds.back().ops.push_back(bad);
  const RunResult r = run_workload(spec);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("invalid spec"), std::string::npos);
}

// The acceptance check: a planted payload corruption must be caught by the
// byte oracle and shrunk to a <= 10-op repro that still fails.
TEST(FuzzMutation, CorruptPayloadCaughtAndShrunk) {
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  bool planted = false;
  for (std::uint64_t seed = 1; seed <= 10 && !planted; ++seed) {
    WorkloadSpec spec = generate(seed, cfg(Interface::kGlex));
    if (!inject_mutation(spec, Mutation::kCorruptPayload, seed)) continue;
    planted = true;
    const RunResult r = run_workload(spec, opt);
    ASSERT_FALSE(r.ok) << "corruption escaped the oracle (seed " << seed << ")";
    bool byte_hit = false;
    for (const std::string& v : r.violations) {
      byte_hit |= v.find("mismatch at byte") != std::string::npos;
    }
    EXPECT_TRUE(byte_hit) << r.violations.front();

    ShrinkStats st;
    const WorkloadSpec tiny = shrink(
        spec,
        [&](const WorkloadSpec& c) { return !run_workload(c, opt).ok; }, {},
        &st);
    EXPECT_LE(total_ops(tiny), 10u);
    EXPECT_LE(total_ops(tiny), total_ops(spec));
    EXPECT_FALSE(run_workload(tiny, opt).ok) << "shrunk repro stopped failing";
    EXPECT_GT(st.successes, 0u);
  }
  ASSERT_TRUE(planted) << "no eligible corruption site in 10 seeds";
}

TEST(FuzzMutation, StraySignalCaughtByCounterCheck) {
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  bool planted = false;
  for (std::uint64_t seed = 1; seed <= 10 && !planted; ++seed) {
    WorkloadSpec spec = generate(seed, cfg(Interface::kVerbs));
    if (!inject_mutation(spec, Mutation::kStraySignal, seed)) continue;
    planted = true;
    const RunResult r = run_workload(spec, opt);
    ASSERT_FALSE(r.ok) << "stray notification escaped (seed " << seed << ")";
    bool counter_hit = false;
    for (const std::string& v : r.violations) {
      counter_hit |= v.find("counter") != std::string::npos;
    }
    EXPECT_TRUE(counter_hit) << r.violations.front();
  }
  ASSERT_TRUE(planted) << "no eligible stray-signal site in 10 seeds";
}

TEST(FuzzOracle, PatternIsPositionSensitive) {
  EXPECT_NE(Oracle::pattern_byte(1, 0), Oracle::pattern_byte(2, 0));
  std::vector<std::byte> buf(64);
  Oracle::fill(buf, 99);
  std::size_t bad = 0;
  EXPECT_TRUE(Oracle::check(buf, 99, bad));
  buf[17] ^= std::byte{1};
  EXPECT_FALSE(Oracle::check(buf, 99, bad));
  EXPECT_EQ(bad, 17u);
}

// --- Scenario-pack oracle rules (AI-training / scalable-sync round kinds) ---

/// One round of each scenario-pack kind over a 6-rank machine, used to probe
/// the oracle's traffic models directly.
WorkloadSpec aisync_probe_spec() {
  WorkloadSpec s;
  s.seed = 77;
  s.iface = Interface::kVerbs;
  s.nodes = 3;
  s.ranks_per_node = 2;
  s.sig_n_bits = 16;
  RoundSpec r;
  r.kind = RoundSpec::Kind::kAlltoall;
  r.root = 2;
  r.size = 64;
  s.rounds.push_back(r);  // round 0: MoE all-to-all, hot expert = rank 2
  r = RoundSpec{};
  r.kind = RoundSpec::Kind::kFaaCombine;
  r.root = 1;
  r.count = 4;
  r.depth = 2;
  s.rounds.push_back(r);  // round 1: combining FAA, arity-2 tree at rank 1
  r = RoundSpec{};
  r.kind = RoundSpec::Kind::kSteal;
  r.size = 32;
  r.count = 3;
  s.rounds.push_back(r);  // round 2: work stealing, 3 items/steals per rank
  return s;
}

TEST(FuzzOracle, TreeTopologyIsConsistent) {
  const int P = 6;
  for (int root = 0; root < P; ++root) {
    for (int rank = 0; rank < P; ++rank) {
      const int v = Oracle::vrank_of(rank, root, P);
      EXPECT_EQ(Oracle::rank_of(v, root, P), rank);
    }
    EXPECT_EQ(Oracle::vrank_of(root, root, P), 0);
  }
  EXPECT_EQ(Oracle::tree_parent(0, 2), -1);  // the root has no parent
  // In an arity-d heap every non-root vrank's parent index is below it, and
  // child counts sum to P-1 (every rank except the root is someone's child).
  for (const int arity : {2, 3, 4}) {
    int children = 0;
    for (int v = 1; v < P; ++v) {
      EXPECT_LT(Oracle::tree_parent(v, arity), v);
      EXPECT_GE(Oracle::tree_parent(v, arity), 0);
    }
    for (int v = 0; v < P; ++v)
      children += Oracle::tree_child_count(v, arity, P);
    EXPECT_EQ(children, P - 1) << "arity " << arity;
  }
}

TEST(FuzzOracle, MoeRoutingSkewsTheHotExpert) {
  const WorkloadSpec s = aisync_probe_spec();
  const Oracle o(s);
  const std::uint64_t base = s.rounds[0].size;
  const int hot = s.rounds[0].root;
  for (int src = 0; src < s.nranks(); ++src) {
    EXPECT_EQ(o.moe_bytes(0, src, src), 0u);  // no self-traffic
    for (int dst = 0; dst < s.nranks(); ++dst) {
      if (src == dst) continue;
      const std::uint64_t b = o.moe_bytes(0, src, dst);
      if (dst == hot) {
        EXPECT_EQ(b, base * 4) << src << "->" << dst;  // 4x over-routed
      } else {
        EXPECT_GE(b, base);
        EXPECT_LE(b, base + base / 2);  // jitter stays in [0, size/2]
      }
      EXPECT_NE(o.moe_pattern(0, src, dst), 0u);
    }
  }
}

TEST(FuzzOracle, FaaCombiningAccountingBalances) {
  const WorkloadSpec s = aisync_probe_spec();
  const Oracle o(s);
  const std::size_t ri = 1;
  const int P = s.nranks();
  std::int64_t sum = 0;
  for (int rank = 0; rank < P; ++rank) {
    const std::int64_t c = o.faa_contrib(ri, rank);
    EXPECT_GE(c, 1);
    EXPECT_LE(c, s.rounds[ri].count);
    sum += c;
    // arm = what the rank's children deliver; a leaf needs no signal.
    EXPECT_EQ(o.faa_arm(ri, rank), o.faa_subtree_total(ri, rank) - c);
    const int v = Oracle::vrank_of(rank, s.rounds[ri].root, P);
    if (Oracle::tree_child_count(v, s.rounds[ri].depth, P) == 0) {
      EXPECT_EQ(o.faa_arm(ri, rank), 0) << "leaf rank " << rank;
    }
  }
  // The root's combined subtree is the whole machine's total.
  EXPECT_EQ(o.faa_subtree_total(ri, s.rounds[ri].root), o.faa_total(ri));
  EXPECT_EQ(o.faa_total(ri), sum);
}

TEST(FuzzOracle, StealScheduleNeverTargetsSelfAndBalances) {
  const WorkloadSpec s = aisync_probe_spec();
  const Oracle o(s);
  const std::size_t ri = 2;
  const int P = s.nranks();
  const int k = s.rounds[ri].count;
  std::int64_t robberies = 0;
  for (int thief = 0; thief < P; ++thief) {
    for (int j = 0; j < k; ++j) {
      const int victim = o.steal_victim(ri, thief, j);
      EXPECT_NE(victim, thief);
      EXPECT_GE(victim, 0);
      EXPECT_LT(victim, P);
      const int item = o.steal_item(ri, thief, j);
      EXPECT_GE(item, 0);
      EXPECT_LT(item, k);
      EXPECT_NE(o.item_pattern(ri, victim, item), 0u);
    }
    robberies += o.steal_robberies(ri, thief);
  }
  // Every steal robs exactly one victim: the per-victim tallies (each
  // victim's signal arming) must add up to all P*k steals.
  EXPECT_EQ(robberies, static_cast<std::int64_t>(P) * k);
}

TEST(FuzzOracle, ScenarioPatternsAreNonZero) {
  const WorkloadSpec s = aisync_probe_spec();
  const Oracle o(s);
  for (int mb = 0; mb < 8; ++mb) EXPECT_NE(o.pipe_pattern(0, mb), 0u);
  for (int rank = 0; rank < s.nranks(); ++rank) {
    EXPECT_NE(o.bt_pattern(0, rank, 0), 0u);
    EXPECT_NE(o.bt_pattern(0, rank, 1), 0u);
    EXPECT_NE(o.bt_pattern(0, rank, 0), o.bt_pattern(0, rank, 1));
  }
}

// --- The aisync generator mix ----------------------------------------------

GenConfig aisync_cfg(Interface iface, bool faults = false) {
  GenConfig gc = cfg(iface, faults);
  gc.mix = GenConfig::Mix::kAiSync;
  return gc;
}

TEST(FuzzAiSync, GeneratorDeterministicValidAndDrawsNewKinds) {
  std::size_t scenario_rounds = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const WorkloadSpec a = generate(seed, aisync_cfg(Interface::kVerbs));
    const WorkloadSpec b = generate(seed, aisync_cfg(Interface::kVerbs));
    EXPECT_EQ(to_text(a), to_text(b)) << "seed " << seed;
    EXPECT_EQ(validate(a), "") << "seed " << seed;
    for (const RoundSpec& r : a.rounds) {
      if (r.kind >= RoundSpec::Kind::kAllreduceRing) ++scenario_rounds;
    }
  }
  // The widened palette must actually reach the scenario-pack kinds.
  EXPECT_GT(scenario_rounds, 20u);
}

TEST(FuzzAiSync, ClassicMixIsUntouchedByThePalette) {
  // The golden determinism pins depend on kClassic consuming the exact RNG
  // stream of the pre-scenario-pack generator: same seed, same text.
  for (std::uint64_t seed : {2026ull, 2027ull, 3001ull}) {
    const WorkloadSpec classic = generate(seed, cfg(Interface::kVerbs));
    for (const RoundSpec& r : classic.rounds) {
      EXPECT_LT(r.kind, RoundSpec::Kind::kAllreduceRing) << "seed " << seed;
    }
  }
}

TEST(FuzzAiSync, TextRoundTripCoversNewKinds) {
  for (std::uint64_t seed : {4ull, 9ull, 31ull}) {
    const WorkloadSpec a = generate(seed, aisync_cfg(Interface::kUtofu, true));
    WorkloadSpec b;
    std::string err;
    ASSERT_TRUE(from_text(to_text(a), b, &err)) << err;
    EXPECT_EQ(a, b);
    EXPECT_EQ(validate(b), "");
  }
}

TEST(FuzzAiSync, DifferentialChannelsBitIdentical) {
  for (std::uint64_t seed : {8ull, 14ull}) {
    const WorkloadSpec spec = generate(seed, aisync_cfg(Interface::kVerbs));
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << "seed " << seed << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
  }
}

// --- Committed corpus replay (tests/fuzz/corpus/) ---------------------------

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(UNR_FUZZ_CORPUS_DIR))
    if (e.path().extension() == ".repro") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

WorkloadSpec load_corpus(const std::filesystem::path& path) {
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  svc::RunSpec rs;
  std::string err;
  EXPECT_TRUE(svc::from_text(buf.str(), rs, &err)) << path << ": " << err;
  EXPECT_TRUE(rs.workload.has_value()) << path;
  return rs.workload.value_or(WorkloadSpec{});
}

TEST(FuzzCorpus, OneReproPerTrafficPattern) {
  const auto files = corpus_files();
  ASSERT_EQ(files.size(), scenarios::patterns().size())
      << "corpus out of sync with scenarios::patterns() — regenerate with "
         "unr_fuzz --emit-corpus=tests/fuzz/corpus";
  for (const scenarios::Pattern& pat : scenarios::patterns()) {
    const bool present = std::any_of(
        files.begin(), files.end(),
        [&](const auto& f) { return f.stem() == pat.name; });
    EXPECT_TRUE(present) << "no corpus file for " << pat.name;
  }
}

TEST(FuzzCorpus, ReplaysCleanAcrossChannelsAndShards) {
  for (const auto& path : corpus_files()) {
    const WorkloadSpec spec = load_corpus(path);
    ASSERT_EQ(validate(spec), "") << path;
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << path << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
    std::optional<std::uint64_t> digest;
    for (const int k : {1, 2, 4}) {
      RunOptions opt;
      opt.shards = k;
      const RunResult r = run_workload(spec, opt);
      ASSERT_TRUE(r.ok) << path << " shards=" << k << ": "
                        << (r.violations.empty() ? "" : r.violations.front());
      if (!digest) digest = r.digest;
      else EXPECT_EQ(r.digest, *digest) << path << " shards=" << k;
    }
  }
}

}  // namespace
}  // namespace unr::check
