// Tier-1 slice of the property-based fuzz harness (docs/TESTING.md).
//
// The nightly `fuzz` label runs hundreds of seeds; this file keeps a small,
// fast cross-section in the always-on gate: generator determinism + text
// round-trip, clean differential runs across channel levels and interface
// personalities (faults on and off), and the mutation self-test — a planted
// bug must be caught by the oracle and shrunk to a tiny repro.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "check/workload.hpp"

namespace unr::check {
namespace {

GenConfig cfg(Interface iface, bool faults = false) {
  GenConfig gc;
  gc.iface = iface;
  gc.faults = faults;
  return gc;
}

TEST(FuzzGenerate, DeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const WorkloadSpec a = generate(seed, cfg(Interface::kVerbs));
    const WorkloadSpec b = generate(seed, cfg(Interface::kVerbs));
    EXPECT_EQ(to_text(a), to_text(b)) << "seed " << seed;
    EXPECT_EQ(validate(a), "") << "seed " << seed;
    EXPECT_GE(a.rounds.size(), 1u);
  }
}

TEST(FuzzGenerate, TextRoundTrip) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const WorkloadSpec a = generate(seed, cfg(Interface::kUtofu, true));
    WorkloadSpec b;
    std::string err;
    ASSERT_TRUE(from_text(to_text(a), b, &err)) << err;
    EXPECT_EQ(to_text(a), to_text(b));
    EXPECT_EQ(validate(b), "");
  }
}

TEST(FuzzRun, CleanSeedsNative) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kGlex));
    RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    const RunResult r = run_workload(spec, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.events, 0u);
  }
}

TEST(FuzzRun, DifferentialChannelsBitIdentical) {
  for (std::uint64_t seed : {2ull, 5ull, 11ull}) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kVerbs));
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << "seed " << seed << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
    ASSERT_EQ(d.runs.size(), 3u);
    EXPECT_EQ(d.runs[0].second.digest, d.runs[1].second.digest);
    EXPECT_EQ(d.runs[0].second.digest, d.runs[2].second.digest);
  }
}

TEST(FuzzRun, FaultsStillSatisfyOracle) {
  for (std::uint64_t seed : {3ull, 9ull}) {
    const WorkloadSpec spec = generate(seed, cfg(Interface::kUtofu, true));
    const DiffResult d = run_differential(spec, differential_channels());
    EXPECT_TRUE(d.ok) << "seed " << seed << ": "
                      << (d.violations.empty() ? "" : d.violations.front());
  }
}

TEST(FuzzRun, EveryPersonalityOneSeed) {
  for (const Interface i :
       {Interface::kGlex, Interface::kVerbs, Interface::kUtofu,
        Interface::kUgni, Interface::kPami, Interface::kPortals}) {
    const WorkloadSpec spec = generate(13, cfg(i));
    RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    const RunResult r = run_workload(spec, opt);
    EXPECT_TRUE(r.ok) << iface_token(i) << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
  }
}

TEST(FuzzRun, DeterministicReplay) {
  const WorkloadSpec spec = generate(6, cfg(Interface::kVerbs, true));
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  const RunResult a = run_workload(spec, opt);
  const RunResult b = run_workload(spec, opt);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(FuzzRun, RejectsInvalidSpec) {
  WorkloadSpec spec = generate(1, cfg(Interface::kGlex));
  spec.rounds.emplace_back();
  spec.rounds.back().kind = RoundSpec::Kind::kXfer;
  OpSpec bad;
  bad.a = 0;
  bad.b = spec.nranks() + 5;  // out of range
  spec.rounds.back().ops.push_back(bad);
  const RunResult r = run_workload(spec);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("invalid spec"), std::string::npos);
}

// The acceptance check: a planted payload corruption must be caught by the
// byte oracle and shrunk to a <= 10-op repro that still fails.
TEST(FuzzMutation, CorruptPayloadCaughtAndShrunk) {
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  bool planted = false;
  for (std::uint64_t seed = 1; seed <= 10 && !planted; ++seed) {
    WorkloadSpec spec = generate(seed, cfg(Interface::kGlex));
    if (!inject_mutation(spec, Mutation::kCorruptPayload, seed)) continue;
    planted = true;
    const RunResult r = run_workload(spec, opt);
    ASSERT_FALSE(r.ok) << "corruption escaped the oracle (seed " << seed << ")";
    bool byte_hit = false;
    for (const std::string& v : r.violations) {
      byte_hit |= v.find("mismatch at byte") != std::string::npos;
    }
    EXPECT_TRUE(byte_hit) << r.violations.front();

    ShrinkStats st;
    const WorkloadSpec tiny = shrink(
        spec,
        [&](const WorkloadSpec& c) { return !run_workload(c, opt).ok; }, {},
        &st);
    EXPECT_LE(total_ops(tiny), 10u);
    EXPECT_LE(total_ops(tiny), total_ops(spec));
    EXPECT_FALSE(run_workload(tiny, opt).ok) << "shrunk repro stopped failing";
    EXPECT_GT(st.successes, 0u);
  }
  ASSERT_TRUE(planted) << "no eligible corruption site in 10 seeds";
}

TEST(FuzzMutation, StraySignalCaughtByCounterCheck) {
  RunOptions opt;
  opt.channel = unrlib::ChannelKind::kNative;
  bool planted = false;
  for (std::uint64_t seed = 1; seed <= 10 && !planted; ++seed) {
    WorkloadSpec spec = generate(seed, cfg(Interface::kVerbs));
    if (!inject_mutation(spec, Mutation::kStraySignal, seed)) continue;
    planted = true;
    const RunResult r = run_workload(spec, opt);
    ASSERT_FALSE(r.ok) << "stray notification escaped (seed " << seed << ")";
    bool counter_hit = false;
    for (const std::string& v : r.violations) {
      counter_hit |= v.find("counter") != std::string::npos;
    }
    EXPECT_TRUE(counter_hit) << r.violations.front();
  }
  ASSERT_TRUE(planted) << "no eligible stray-signal site in 10 seeds";
}

TEST(FuzzOracle, PatternIsPositionSensitive) {
  EXPECT_NE(Oracle::pattern_byte(1, 0), Oracle::pattern_byte(2, 0));
  std::vector<std::byte> buf(64);
  Oracle::fill(buf, 99);
  std::size_t bad = 0;
  EXPECT_TRUE(Oracle::check(buf, 99, bad));
  buf[17] ^= std::byte{1};
  EXPECT_FALSE(Oracle::check(buf, 99, bad));
  EXPECT_EQ(bad, 17u);
}

}  // namespace
}  // namespace unr::check
