// Boundary semantics of the timed waits: Cond::wait_for, Signal::wait_for
// (via Unr::sig_wait_for), and Unr::sig_wait_any_for.
//
// The contract under test, at every layer:
//   * timeout == 0 polls the predicate once and returns without posting any
//     timer event or advancing virtual time;
//   * a wake arriving EXACTLY at the deadline wins over the timeout (the
//     expiry check yields to same-timestamp notifies already in flight);
//   * a wake arriving after the deadline loses — the wait returns timed-out
//     exactly at the deadline, not when the late wake lands.
#include <gtest/gtest.h>

#include <array>

#include "runtime/world.hpp"
#include "sim/cond.hpp"
#include "sim/kernel.hpp"
#include "unr/unr.hpp"

namespace unr::sim {
namespace {

// timeout == 0 is a pure poll: no timer armed (event_count stays 0), no time
// passes, result is just the predicate.
TEST(CondWaitFor, ZeroTimeoutPollsOnce) {
  Kernel k;
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    Cond cond;
    bool flag = false;
    EXPECT_FALSE(cond.wait_for([&] { return flag; }, 0));
    EXPECT_EQ(kk->now(), 0u);
    flag = true;
    EXPECT_TRUE(cond.wait_for([&] { return flag; }, 0));
    EXPECT_EQ(kk->now(), 0u);
  });
  EXPECT_EQ(k.event_count(), 0u);  // the poll posted nothing
}

// An already-true predicate returns immediately even with a huge timeout,
// again without arming a timer.
TEST(CondWaitFor, TruePredicateSkipsTimer) {
  Kernel k;
  k.run(1, [&](int) {
    Cond cond;
    EXPECT_TRUE(cond.wait_for([] { return true; }, 1000000));
    EXPECT_EQ(Kernel::current()->now(), 0u);
  });
  EXPECT_EQ(k.event_count(), 0u);
}

// The adversarial ordering: actor 0 arms its deadline timer BEFORE actor 1
// schedules anything, so at t=100 the expiry fires first in the bucket. The
// notify that lands at the same timestamp must still win — the expiry check
// re-queues behind same-time work instead of declaring timeout on the spot.
TEST(CondWaitFor, NotifyExactlyAtDeadlineWins) {
  Kernel k;
  Cond cond;
  bool flag = false;
  bool got = false;
  k.run(2, [&](int id) {
    Kernel* kk = Kernel::current();
    if (id == 0) {
      got = cond.wait_for([&] { return flag; }, 100);
      EXPECT_EQ(kk->now(), 100u);
    } else {
      kk->sleep_for(100);
      flag = true;
      cond.notify_all();
    }
  });
  EXPECT_TRUE(got);
}

// One tick past the deadline is too late: the waiter reports timeout at
// t=100 and does NOT linger until the notify at t=101.
TEST(CondWaitFor, NotifyAfterDeadlineLoses) {
  Kernel k;
  Cond cond;
  bool flag = false;
  k.run(2, [&](int id) {
    Kernel* kk = Kernel::current();
    if (id == 0) {
      EXPECT_FALSE(cond.wait_for([&] { return flag; }, 100));
      EXPECT_EQ(kk->now(), 100u);
    } else {
      kk->sleep_for(101);
      flag = true;
      cond.notify_all();
    }
  });
}

// A timed wait satisfied early leaves its deadline timer in the wheel. When
// that stale timer fires mid-way through a SECOND timed wait, it must look
// like a spurious wake (re-check and keep waiting), not a timeout for the
// wrong wait: the second wait runs its full 100 ns, ending at 150.
TEST(CondWaitFor, StaleTimerFromEarlierWaitIsSpurious) {
  Kernel k;
  Cond cond;
  bool first = false;
  k.run(2, [&](int id) {
    Kernel* kk = Kernel::current();
    if (id == 0) {
      EXPECT_TRUE(cond.wait_for([&] { return first; }, 100));
      EXPECT_EQ(kk->now(), 50u);  // satisfied early; timer still armed for 100
      EXPECT_FALSE(cond.wait_for([] { return false; }, 100));
      EXPECT_EQ(kk->now(), 150u);  // NOT 100: the stale timer didn't count
    } else {
      kk->sleep_for(50);
      first = true;
      cond.notify_all();
    }
  });
}

}  // namespace
}  // namespace unr::sim

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config cfg(int nodes = 2) {
  World::Config c;
  c.nodes = nodes;
  c.profile = unr::make_th_xy();
  c.deterministic_routing = true;
  // These tests poke another rank's signal directly from a peer fiber (a
  // shared-memory shortcut, not a fabric op) and assert same-timestamp
  // boundary semantics — both assume the scalar single-shard clock, so pin
  // it regardless of UNR_SHARDS.
  c.shards = 1;
  return c;
}

// Signal::wait_for inherits Cond's boundary semantics through its internal
// condition variable; exercise them through the library API.
TEST(SignalWaitFor, ZeroTimeoutPollsOnce) {
  World w(cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId sig = unr.sig_init(0, 1);
    EXPECT_FALSE(unr.sig_wait_for(0, sig, 0));
    EXPECT_EQ(r.now(), 0u);
    unr.sig_at(0, sig).apply(-1);
    EXPECT_TRUE(unr.sig_wait_for(0, sig, 0));
    EXPECT_EQ(r.now(), 0u);
  });
}

// Rank 0 arms its deadline first (it runs first), rank 1 applies the
// completion exactly at the deadline: the apply must win.
TEST(SignalWaitFor, ApplyExactlyAtDeadlineWins) {
  World w(cfg());
  Unr unr(w);
  SigId sig = kNoSig;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      sig = unr.sig_init(0, 1);
      EXPECT_TRUE(unr.sig_wait_for(0, sig, 100));
      EXPECT_EQ(r.now(), 100u);
    } else if (r.id() == 1) {
      r.kernel().sleep_for(100);
      unr.sig_at(0, sig).apply(-1);
    }
  });
}

TEST(SignalWaitFor, ApplyAfterDeadlineLoses) {
  World w(cfg());
  Unr unr(w);
  SigId sig = kNoSig;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      sig = unr.sig_init(0, 1);
      EXPECT_FALSE(unr.sig_wait_for(0, sig, 100));
      EXPECT_EQ(r.now(), 100u);
      // The late apply still lands; an untimed wait then consumes it.
      unr.sig_wait(0, sig);
      EXPECT_EQ(r.now(), 150u);
    } else if (r.id() == 1) {
      r.kernel().sleep_for(150);
      unr.sig_at(0, sig).apply(-1);
    }
  });
}

TEST(WaitAnyFor, ZeroTimeoutPollsOnce) {
  World w(cfg());
  Unr unr(w);
  w.run([&](Rank& r) {
    if (r.id() != 0) return;
    const SigId a = unr.sig_init(0, 1);
    const SigId b = unr.sig_init(0, 1);
    const std::array<SigId, 2> sigs{a, b};
    EXPECT_EQ(unr.sig_wait_any_for(0, sigs, 0), Unr::kWaitAnyTimeout);
    EXPECT_EQ(r.now(), 0u);
    unr.sig_at(0, b).apply(-1);
    EXPECT_EQ(unr.sig_wait_any_for(0, sigs, 0), 1u);
    EXPECT_EQ(r.now(), 0u);
  });
}

TEST(WaitAnyFor, ApplyExactlyAtDeadlineWins) {
  World w(cfg());
  Unr unr(w);
  SigId a = kNoSig, b = kNoSig;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      a = unr.sig_init(0, 1);
      b = unr.sig_init(0, 1);
      const std::array<SigId, 2> sigs{a, b};
      EXPECT_EQ(unr.sig_wait_any_for(0, sigs, 100), 1u);
      EXPECT_EQ(r.now(), 100u);
    } else if (r.id() == 1) {
      r.kernel().sleep_for(100);
      unr.sig_at(0, b).apply(-1);
    }
  });
}

TEST(WaitAnyFor, TimesOutWhenNothingTriggers) {
  World w(cfg());
  Unr unr(w);
  SigId a = kNoSig, b = kNoSig;
  w.run([&](Rank& r) {
    if (r.id() == 0) {
      a = unr.sig_init(0, 1);
      b = unr.sig_init(0, 1);
      const std::array<SigId, 2> sigs{a, b};
      EXPECT_EQ(unr.sig_wait_any_for(0, sigs, 100), Unr::kWaitAnyTimeout);
      EXPECT_EQ(r.now(), 100u);
      // The late apply is still observable by a later untimed wait_any.
      EXPECT_EQ(unr.sig_wait_any(0, sigs), 0u);
      EXPECT_EQ(r.now(), 150u);
    } else if (r.id() == 1) {
      r.kernel().sleep_for(150);
      unr.sig_at(0, a).apply(-1);
    }
  });
}

}  // namespace
}  // namespace unr::unrlib
