// Tests of the discrete-event kernel: event ordering, actor blocking,
// virtual sleep, condition variables, deadlock detection, determinism, and
// the node compute model.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/cond.hpp"
#include "sim/kernel.hpp"
#include "sim/node.hpp"

namespace unr::sim {
namespace {

TEST(Kernel, EventsRunInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    kk->post_in(300, [&] { order.push_back(3); });
    kk->post_in(100, [&] { order.push_back(1); });
    kk->post_in(200, [&] { order.push_back(2); });
    kk->sleep_for(1000);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.end_time(), 1000u);
}

TEST(Kernel, EqualTimestampsRunInPostOrder) {
  Kernel k;
  std::vector<int> order;
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    for (int i = 0; i < 10; ++i) kk->post_in(50, [&order, i] { order.push_back(i); });
    kk->sleep_for(100);
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, SleepAdvancesVirtualTimeOnly) {
  Kernel k;
  Time seen = 0;
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    kk->sleep_for(5 * kSec);  // five virtual seconds, instant in wall time
    seen = kk->now();
  });
  EXPECT_EQ(seen, 5 * kSec);
}

TEST(Kernel, ActorsInterleaveByVirtualTime) {
  Kernel k;
  std::vector<int> order;
  k.run(2, [&](int id) {
    Kernel* kk = Kernel::current();
    // Actor 0 wakes at 10, 30; actor 1 at 20, 40.
    kk->sleep_for(id == 0 ? 10 : 20);
    order.push_back(id);
    kk->sleep_for(20);
    order.push_back(id);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Kernel, CondWaitAndNotify) {
  Kernel k;
  bool flag = false;
  bool observed = false;
  Cond cond;
  k.run(2, [&](int id) {
    Kernel* kk = Kernel::current();
    if (id == 0) {
      cond.wait([&] { return flag; });
      observed = true;
      EXPECT_EQ(kk->now(), 500u);
    } else {
      kk->sleep_for(500);
      flag = true;
      cond.notify_all();
    }
  });
  EXPECT_TRUE(observed);
}

TEST(Kernel, NotifyFromEventHandler) {
  Kernel k;
  bool flag = false;
  Cond cond;
  k.run(1, [&](int) {
    Kernel::current()->post_in(250, [&] {
      flag = true;
      cond.notify_all();
    });
    cond.wait([&] { return flag; });
    EXPECT_EQ(Kernel::current()->now(), 250u);
  });
}

TEST(Kernel, DeadlockDetected) {
  Kernel k;
  Cond never;
  EXPECT_THROW(k.run(1, [&](int) { never.wait([] { return false; }); }),
               DeadlockError);
}

TEST(Kernel, ActorExceptionPropagates) {
  Kernel k;
  EXPECT_THROW(k.run(2,
                     [&](int id) {
                       if (id == 1) throw std::runtime_error("boom");
                       Kernel::current()->sleep_for(10);
                     }),
               std::runtime_error);
}

TEST(Kernel, ActorExceptionBeatsDeadlockReport) {
  // Rank 0 waits forever for rank 1, which dies: the real error must win.
  Kernel k;
  Cond never;
  try {
    k.run(2, [&](int id) {
      if (id == 1) throw std::logic_error("root cause");
      never.wait([] { return false; });
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(Kernel, ManyActorsBarrierPattern) {
  Kernel k;
  const int n = 64;
  int arrived = 0;
  Cond cond;
  k.run(n, [&](int id) {
    Kernel::current()->sleep_for(static_cast<Time>(id));
    if (++arrived == n) cond.notify_all();
    cond.wait([&] { return arrived == n; });
  });
  EXPECT_EQ(arrived, n);
  EXPECT_EQ(k.end_time(), static_cast<Time>(n - 1));
}

TEST(Kernel, DeterministicEventCount) {
  auto run_once = [] {
    Kernel k;
    k.run(8, [&](int id) {
      for (int i = 0; i < 20; ++i) Kernel::current()->sleep_for(10 + static_cast<Time>(id));
    });
    return k.event_count();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Node, ComputeScalesWithThreads) {
  Node n(0, 16);
  EXPECT_EQ(n.compute_time(1600, 1), 1600u);
  EXPECT_EQ(n.compute_time(1600, 16), 100u);
  // More threads than cores do not help further.
  EXPECT_EQ(n.compute_time(1600, 32), 100u);
}

TEST(Node, BackgroundLoadStealsCapacityAndPenalizesOversubscription) {
  Node n(0, 16);
  n.add_background_load(1.0, 0.0);  // a reserved service core
  // 15 cores left; 15 threads fit exactly: no penalty.
  EXPECT_EQ(n.compute_time(1500, 15), 100u);
  // 16 threads oversubscribe but the penalty is 0 here.
  EXPECT_EQ(n.compute_time(1500, 16), 100u);

  Node m(1, 16);
  m.add_background_load(0.85, 0.20);  // unreserved polling thread
  const Time t = m.compute_time(15150, 16);
  // capacity = 15.15, oversubscribed -> x1.2 penalty: 15150/15.15*1.2 = 1200.
  EXPECT_EQ(t, 1200u);
}

TEST(Node, RemoveBackgroundLoadRestores) {
  Node n(0, 8);
  n.add_background_load(0.5, 0.1);
  n.remove_background_load(0.5, 0.1);
  EXPECT_EQ(n.compute_time(800, 8), 100u);
}

TEST(Machine, NodesIndependent) {
  Machine m(4, 8);
  m.node(2).add_background_load(1.0, 0.0);
  EXPECT_EQ(m.node(0).background_load(), 0.0);
  EXPECT_EQ(m.node(2).background_load(), 1.0);
  EXPECT_EQ(m.node_count(), 4);
}

TEST(Kernel, PostIntoThePastRejected) {
  Kernel k;
  EXPECT_THROW(k.run(1,
                     [&](int) {
                       Kernel* kk = Kernel::current();
                       kk->sleep_for(100);
                       kk->post_at(50, [] {});
                     }),
               std::logic_error);
}

// Timestamps chosen to straddle every byte boundary of the timer wheel's
// 8x256 hierarchy: events must dispatch in time order, and equal-time
// events in posting order, even when popping them forces multi-level
// cascades across large virtual-time jumps.
TEST(Kernel, TimerWheelOrderAcrossCascades) {
  Kernel k;
  std::vector<int> order;
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    // Same-time group far in the future (level >= 3 insert, cascades down).
    const Time far = (Time{1} << 24) + 7;
    kk->post_at(far, [&] { order.push_back(10); });
    kk->post_at(far, [&] { order.push_back(11); });
    kk->post_at(far, [&] { order.push_back(12); });
    // Scattered times that land on different wheel levels, posted out of
    // chronological order.
    kk->post_at(300, [&] { order.push_back(2); });          // level 1
    kk->post_at(5, [&] { order.push_back(0); });            // level 0
    kk->post_at((Time{1} << 16) + 1, [&] { order.push_back(3); });  // level 2
    kk->post_at(255, [&] { order.push_back(1); });          // level 0 edge
    kk->post_at(far + 1, [&] { order.push_back(13); });
    // An event posted FROM an event, at the same time as a pending one:
    // posting order must still win within the timestamp.
    kk->post_at(300, [&] { order.push_back(20); });
    kk->sleep_for(far + 2);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 20, 3, 10, 11, 12, 13}));
  EXPECT_EQ(k.end_time(), (Time{1} << 24) + 9);
}

// --- Fiber-scheduler coverage ----------------------------------------------
// Actors are pooled fibers multiplexed on one OS thread; wake order is the
// kernel's explicit choice, so it is testable — and pinned — here.

// Multiple actors parked on one Cond must wake in REGISTRATION order (the
// order they blocked), not actor-id order: notify_all walks the waiter list
// FIFO and the ready queue preserves it. Actor 2 registers last despite its
// id because it naps before waiting.
TEST(Kernel, CondWakeOrderIsFifo) {
  Kernel k;
  bool flag = false;
  Cond cond;
  std::vector<int> wake_order;
  k.run(4, [&](int id) {
    Kernel* kk = Kernel::current();
    if (id == 0) {
      kk->sleep_for(10);
      flag = true;
      cond.notify_all();
      return;
    }
    if (id == 2) kk->sleep_for(1);  // registers after 1 and 3
    cond.wait([&] { return flag; });
    wake_order.push_back(id);
  });
  EXPECT_EQ(wake_order, (std::vector<int>{1, 3, 2}));
}

// An exception escaping one actor body aborts the run; the teardown must
// unwind every parked fiber (returning its pooled stack) and leak no pooled
// EventNode, even with timers still pending and actors blocked on a Cond.
TEST(Kernel, ActorExceptionReleasesFiberStacksAndEventNodes) {
  Kernel k;
  Cond never;
  EXPECT_THROW(k.run(4,
                     [&](int id) {
                       Kernel* kk = Kernel::current();
                       if (id == 3) {
                         kk->sleep_for(5);
                         throw std::runtime_error("boom");
                       }
                       if (id == 0) kk->sleep_for(1000000);  // timer pending at abort
                       never.wait([] { return false; });
                     }),
               std::runtime_error);
  const Kernel::PoolDebug pd = k.pool_debug();
  EXPECT_EQ(pd.leaked(), 0u);
  EXPECT_GE(pd.stacks_total, 4u);   // slabs carve in bulk; >= the 4 actors
  EXPECT_EQ(pd.live_stacks(), 0u);  // every coroutine frame unwound
}

// Actors can complete while events are still pending; those events are
// destroyed (not run) by ~Kernel's drain. The fiber stacks must already be
// back in the pool when run() returns, and the drain must release the
// callable's captures exactly once.
TEST(Kernel, DrainDestroysUnrunEventsAfterFiberCompletion) {
  auto tracker = std::make_shared<int>(0);
  {
    Kernel k;
    k.run(1, [&](int) {
      Kernel* kk = Kernel::current();
      kk->post_in(1000, [tracker] { ++*tracker; });  // never dispatched
      kk->sleep_for(10);
    });
    const Kernel::PoolDebug pd = k.pool_debug();
    EXPECT_EQ(pd.pending, 1u);        // the orphaned event
    EXPECT_EQ(pd.leaked(), 0u);
    EXPECT_EQ(pd.live_stacks(), 0u);  // fiber done, stack recycled
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(*tracker, 0);             // drained, not run
  EXPECT_EQ(tracker.use_count(), 1);  // ...but destroyed
}

// The thread-per-rank ceiling is gone: one process holds 100k actors (the
// paper's full Fig. 7 machine is 1728 nodes x 32 ranks = 55k). Stacks are
// lazily committed pooled fibers, so this is cheap enough for tier 1.
TEST(Kernel, ScaleHundredThousandActors) {
#if defined(__SANITIZE_ADDRESS__)
  const int n = 20000;  // ASan fake-stack bookkeeping makes 100k too slow
#else
  const int n = 100000;
#endif
  Kernel k;
  k.set_actor_stack_bytes(64 * 1024);
  int arrived = 0;
  k.run(n, [&](int id) {
    Kernel::current()->sleep_for(1 + static_cast<Time>(id % 97));
    ++arrived;
  });
  EXPECT_EQ(arrived, n);
  EXPECT_EQ(k.end_time(), 97u);
  EXPECT_GE(k.event_count(), static_cast<std::uint64_t>(n));
  const Kernel::PoolDebug pd = k.pool_debug();
  EXPECT_GE(pd.stacks_total, static_cast<std::size_t>(n));
  EXPECT_EQ(pd.live_stacks(), 0u);
}

// A large callable (captures beyond the node's inline storage) must take the
// heap fallback and still run and destroy exactly once.
TEST(Kernel, OversizedEventCallableHeapFallback) {
  Kernel k;
  auto tracker = std::make_shared<int>(0);
  k.run(1, [&](int) {
    Kernel* kk = Kernel::current();
    std::array<std::uint64_t, 16> big{};  // 128 bytes of captured state
    big[3] = 42;
    kk->post_in(10, [tracker, big] { *tracker += static_cast<int>(big[3]); });
    kk->sleep_for(20);
  });
  EXPECT_EQ(*tracker, 42);
  EXPECT_EQ(tracker.use_count(), 1);  // the event's copy was destroyed
}

}  // namespace
}  // namespace unr::sim
