// The KNEM/XPMEM-style intra-node fast path (Section IV-E-2): same-node
// notified transfers bypass the NIC, complete faster, and keep identical
// semantics.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config intra_cfg(unr::SystemProfile prof = unr::make_th_xy()) {
  World::Config wc;
  wc.nodes = 1;
  wc.ranks_per_node = 2;  // both ranks on one node
  wc.profile = std::move(prof);
  wc.deterministic_routing = true;
  return wc;
}

Time notified_put_time(bool shm, std::size_t bytes) {
  // RoCE: host memcpy is ~4x the NIC bandwidth, so the kernel-assisted copy
  // pays off clearly (on TH-XY the NIC loopback is nearly memcpy-speed and
  // the two paths tie — which is why the channel is configurable).
  World w(intra_cfg(unr::make_hpc_roce()));
  Unr::Config uc;
  uc.shm_intra_node = shm;
  Unr unr(w, uc);
  Time triggered = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(bytes, std::byte{static_cast<unsigned char>(r.id())});
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      triggered = r.now();
      EXPECT_EQ(buf[0], std::byte{0});
      EXPECT_EQ(buf[bytes - 1], std::byte{0});
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      unr.put(0, unr.blk_init(0, mh, 0, bytes), rblk);
      r.kernel().sleep_for(2 * kMs);
    }
  });
  return triggered;
}

TEST(ShmFastPath, SameSemanticsLowerLatency) {
  const Time nic = notified_put_time(false, 64 * KiB);
  const Time shm = notified_put_time(true, 64 * KiB);
  EXPECT_LT(shm, nic);
}

TEST(ShmFastPath, CountsInStats) {
  World w(intra_cfg());
  Unr::Config uc;
  uc.shm_intra_node = true;
  Unr unr(w, uc);
  w.run([&](Rank& r) {
    std::vector<int> buf(4, r.id());
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 2);
      const Blk rblk = unr.blk_init(1, mh, 0, 4 * sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      unr.put(0, unr.blk_init(0, mh, 0, 4 * sizeof(int)), rblk);
      unr.put(0, unr.blk_init(0, mh, 0, 4 * sizeof(int)), rblk);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_EQ(unr.stats().shm_fastpath, 2u);
  EXPECT_EQ(w.fabric().stats().puts, 0u);  // the NIC never saw the data
}

TEST(ShmFastPath, GetWorksToo) {
  World w(intra_cfg());
  Unr::Config uc;
  uc.shm_intra_node = true;
  Unr unr(w, uc);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<double> buf(16, r.id() == 1 ? 4.5 : 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 1) {
      const Blk oblk = unr.blk_init(1, mh, 0, 16 * sizeof(double));
      r.send(0, 1, &oblk, sizeof oblk);
      r.kernel().sleep_for(1 * kMs);
    } else {
      Blk oblk;
      r.recv(1, 1, &oblk, sizeof oblk);
      const SigId lsig = unr.sig_init(0, 1);
      unr.get(0, unr.blk_init(0, mh, 0, 16 * sizeof(double), lsig), oblk);
      unr.sig_wait(0, lsig);
      ok = buf[0] == 4.5 && buf[15] == 4.5;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(ShmFastPath, InterNodeTrafficUnaffected) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.shm_intra_node = true;  // enabled, but the peers are on different nodes
  Unr unr(w, uc);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(1, r.id() == 0 ? 7 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf[0] == 7;
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rblk);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(unr.stats().shm_fastpath, 0u);
  EXPECT_EQ(w.fabric().stats().puts, 1u);
}

TEST(ShmFastPath, WorksUnderLevel4Channel) {
  World w(intra_cfg());
  Unr::Config uc;
  uc.shm_intra_node = true;
  uc.channel = ChannelKind::kLevel4;  // no engine: notifications apply directly
  Unr unr(w, uc);
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(1, r.id() == 0 ? 3 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), sizeof(int));
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, sizeof(int), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf[0] == 3;
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      unr.put(0, unr.blk_init(0, mh, 0, sizeof(int)), rblk);
      r.kernel().sleep_for(1 * kMs);
    }
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace unr::unrlib
