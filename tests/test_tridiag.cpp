// Tridiagonal solver tests: Thomas vs direct substitution, and the
// distributed solver (exact reduced sweep and approximate PDD) against the
// sequential reference, over both communication backends.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "powerllel/poisson.hpp"  // CommBackend
#include "powerllel/tridiag.hpp"
#include "powerllel/tridiag_port.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {
namespace {

using runtime::Rank;
using runtime::World;

// Residual of the full system: a x_{i-1} + b_i x_i + c x_{i+1} - d_i.
double residual(double a, const std::vector<double>& b, double c,
                const std::vector<Complex>& x, const std::vector<Complex>& d) {
  const std::size_t n = b.size();
  double m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Complex r = b[i] * x[i] - d[i];
    if (i > 0) r += a * x[i - 1];
    if (i + 1 < n) r += c * x[i + 1];
    m = std::max(m, std::abs(r));
  }
  return m;
}

TEST(Thomas, SolvesAgainstResidual) {
  Rng rng(5);
  const std::size_t n = 64;
  std::vector<double> b(n);
  const double a = 1.0, c = 1.0;
  for (auto& bi : b) bi = -(2.5 + rng.uniform());  // diagonally dominant
  std::vector<Complex> d(n), rhs(n);
  for (auto& di : d) di = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  rhs = d;
  thomas_inplace(a, b, c, rhs);
  EXPECT_LT(residual(a, b, c, rhs, d), 1e-10);
}

TEST(Thomas, RealVariantMatchesComplex) {
  Rng rng(6);
  const std::size_t n = 32;
  std::vector<double> b(n);
  for (auto& bi : b) bi = -(3.0 + rng.uniform());
  std::vector<double> dr(n);
  for (auto& x : dr) x = rng.uniform(-1, 1);
  std::vector<Complex> dc(n);
  for (std::size_t i = 0; i < n; ++i) dc[i] = dr[i];
  thomas_inplace_real(1.0, b, 1.0, dr);
  thomas_inplace(1.0, b, 1.0, dc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(dr[i], dc[i].real(), 1e-12);
}

TEST(Thomas, SingleRow) {
  std::vector<double> b{4.0};
  std::vector<Complex> d{Complex(8.0, -4.0)};
  thomas_inplace(0.0, b, 0.0, d);
  EXPECT_NEAR(d[0].real(), 2.0, 1e-14);
  EXPECT_NEAR(d[0].imag(), -1.0, 1e-14);
}

struct DistCase {
  int nprocs;
  CommBackend backend;
  TridiagMethod method;
  double dominance;  // diagonal magnitude relative to |a|+|c|
};

class DistTridiagP : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistTridiagP, MatchesSequentialReference) {
  const DistCase c = GetParam();
  const std::size_t m = 16;  // rows per block
  const std::size_t n = m * static_cast<std::size_t>(c.nprocs);
  const std::size_t nlines = 6;

  // Build the global problem once (deterministic).
  Rng rng(42);
  std::vector<TridiagLine> lines(nlines);
  std::vector<double> gdiag(nlines * n);
  std::vector<Complex> grhs(nlines * n);
  for (std::size_t l = 0; l < nlines; ++l) {
    lines[l] = TridiagLine{1.0, 1.0};
    for (std::size_t i = 0; i < n; ++i) {
      gdiag[l * n + i] = -(c.dominance + 0.3 * rng.uniform());
      grhs[l * n + i] = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
  }
  std::vector<Complex> expect = grhs;
  reference_solve(lines, gdiag, expect.data(), nlines, n);

  World::Config wc;
  wc.nodes = c.nprocs;
  wc.ranks_per_node = 1;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  std::optional<unrlib::Unr> unr;
  if (c.backend == CommBackend::kUnr) unr.emplace(w);

  std::vector<double> max_err(static_cast<std::size_t>(c.nprocs), 0.0);
  w.run([&](Rank& r) {
    std::vector<int> group(static_cast<std::size_t>(c.nprocs));
    for (int i = 0; i < c.nprocs; ++i) group[static_cast<std::size_t>(i)] = i;
    std::unique_ptr<TridiagPort> port;
    if (c.backend == CommBackend::kUnr)
      port = make_unr_tridiag_port(r, *unr, group, r.id(), 100,
                                   nlines * 3 * sizeof(double));
    else
      port = make_mpi_tridiag_port(r, group, r.id(), 100);

    // My block of the global problem.
    const std::size_t s = static_cast<std::size_t>(r.id()) * m;
    std::vector<double> diag(nlines * m);
    std::vector<Complex> rhs(nlines * m);
    for (std::size_t l = 0; l < nlines; ++l)
      for (std::size_t i = 0; i < m; ++i) {
        diag[l * m + i] = gdiag[l * n + s + i];
        rhs[l * m + i] = grhs[l * n + s + i];
      }

    DistTridiag solver(r.id(), c.nprocs, m);
    solver.solve(lines, diag, rhs.data(), nlines, port->port(), c.method);

    double err = 0;
    for (std::size_t l = 0; l < nlines; ++l)
      for (std::size_t i = 0; i < m; ++i)
        err = std::max(err, std::abs(rhs[l * m + i] - expect[l * n + s + i]));
    max_err[static_cast<std::size_t>(r.id())] = err;
  });

  // The exact sweep must match to round-off; PDD is approximate, with error
  // decaying in (dominance ratio)^m — tight here thanks to dominance >= 3.
  const double tol = c.method == TridiagMethod::kReducedExact ? 1e-10 : 1e-6;
  for (double e : max_err) EXPECT_LT(e, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistTridiagP,
    ::testing::Values(
        DistCase{1, CommBackend::kMpi, TridiagMethod::kReducedExact, 2.5},
        DistCase{2, CommBackend::kMpi, TridiagMethod::kReducedExact, 2.5},
        DistCase{4, CommBackend::kMpi, TridiagMethod::kReducedExact, 2.5},
        DistCase{3, CommBackend::kMpi, TridiagMethod::kReducedExact, 2.1},
        DistCase{2, CommBackend::kUnr, TridiagMethod::kReducedExact, 2.5},
        DistCase{4, CommBackend::kUnr, TridiagMethod::kReducedExact, 2.5},
        DistCase{2, CommBackend::kMpi, TridiagMethod::kPddApprox, 3.5},
        DistCase{4, CommBackend::kMpi, TridiagMethod::kPddApprox, 3.5},
        DistCase{4, CommBackend::kUnr, TridiagMethod::kPddApprox, 3.5}),
    [](const ::testing::TestParamInfo<DistCase>& i) {
      std::string s = "p" + std::to_string(i.param.nprocs);
      s += i.param.backend == CommBackend::kUnr ? "_unr" : "_mpi";
      s += i.param.method == TridiagMethod::kReducedExact ? "_exact" : "_pdd";
      return s;
    });

TEST(DistTridiagRepeated, BackToBackSolvesReuseThePort) {
  // The UNR port's staging/signal recycling must survive many solves.
  const int p = 3;
  const std::size_t m = 8, nlines = 4;
  World::Config wc;
  wc.nodes = p;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  World w(wc);
  unrlib::Unr unr(w);
  int failures = 0;
  w.run([&](Rank& r) {
    std::vector<int> group{0, 1, 2};
    auto port = make_unr_tridiag_port(r, unr, group, r.id(), 100,
                                      nlines * 3 * sizeof(double));
    DistTridiag solver(r.id(), p, m);
    std::vector<TridiagLine> lines(nlines, TridiagLine{1.0, 1.0});
    for (int iter = 0; iter < 5; ++iter) {
      const std::size_t n = m * p;
      Rng rng(static_cast<std::uint64_t>(iter) + 1);
      std::vector<double> gdiag(nlines * n);
      std::vector<Complex> grhs(nlines * n);
      for (auto& x : gdiag) x = -(2.8 + 0.2 * rng.uniform());
      for (auto& x : grhs) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
      std::vector<Complex> expect = grhs;
      reference_solve(lines, gdiag, expect.data(), nlines, n);

      const std::size_t s = static_cast<std::size_t>(r.id()) * m;
      std::vector<double> diag(nlines * m);
      std::vector<Complex> rhs(nlines * m);
      for (std::size_t l = 0; l < nlines; ++l)
        for (std::size_t i = 0; i < m; ++i) {
          diag[l * m + i] = gdiag[l * n + s + i];
          rhs[l * m + i] = grhs[l * n + s + i];
        }
      solver.solve(lines, diag, rhs.data(), nlines, port->port(),
                   TridiagMethod::kReducedExact);
      for (std::size_t l = 0; l < nlines; ++l)
        for (std::size_t i = 0; i < m; ++i)
          if (std::abs(rhs[l * m + i] - expect[l * n + s + i]) > 1e-10) ++failures;
    }
  });
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace unr::powerllel
