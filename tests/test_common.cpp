// Unit tests for the common utilities: RNG determinism, statistics, units,
// profiles and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/profile.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace unr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.2);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(3);
  Rng b = a.fork();
  // The fork must not replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(OnlineStats, Basics) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(99), 100.0, 1.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Log2Histogram, Buckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(10), 1u); // 1024
}

TEST(Units, Serialization) {
  // 100 Gbps = 12.5 bytes/ns -> 1250 bytes take 100 ns.
  EXPECT_EQ(serialize_ns(1250, 100.0), 100u);
  // 1 MiB at 200 Gbps = 25 B/ns -> ~41.9 us.
  EXPECT_NEAR(static_cast<double>(serialize_ns(MiB, 200.0)), 41943.04, 2.0);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(8 * KiB), "8KiB");
  EXPECT_EQ(format_bytes(2 * MiB), "2MiB");
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1500), "1.50us");
}

TEST(Profiles, AllFourPlatformsPresent) {
  const auto ps = all_system_profiles();
  ASSERT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps[0].name, "TH-XY");
  EXPECT_EQ(ps[1].name, "TH-2A");
  EXPECT_EQ(ps[2].name, "HPC-IB");
  EXPECT_EQ(ps[3].name, "HPC-RoCE");
}

TEST(Profiles, TableIIIKeyFacts) {
  // Table III of the paper: TH-XY has two 200Gbps NICs, the others one NIC.
  EXPECT_EQ(make_th_xy().nics_per_node, 2);
  EXPECT_EQ(make_th_xy().nic_gbps, 200.0);
  EXPECT_EQ(make_th_2a().nics_per_node, 1);
  EXPECT_EQ(make_hpc_ib().nic_gbps, 100.0);
  EXPECT_EQ(make_hpc_roce().nic_gbps, 25.0);
  EXPECT_EQ(make_th_xy().iface, Interface::kGlex);
  EXPECT_EQ(make_hpc_ib().iface, Interface::kVerbs);
}

TEST(Profiles, LookupByNameThrowsOnUnknown) {
  EXPECT_EQ(system_profile("TH-XY").name, "TH-XY");
  EXPECT_THROW(system_profile("nope"), std::invalid_argument);
}

TEST(TextTable, RendersAlignedCells) {
  TextTable t;
  t.header({"a", "long-column"});
  t.row({"1", "x"});
  t.separator();
  t.row({"22", "yy"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("| a  | long-column |"), std::string::npos);
  EXPECT_NE(s.find("| 22 | yy          |"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.36), "+36.0%");
  EXPECT_EQ(TextTable::pct(-0.61), "-61.0%");
}

}  // namespace
}  // namespace unr
