// The session server stack: frame codec edge cases (partial reads across
// frame boundaries, zero-length / oversized frames, truncation), the JSON
// codec, and the server end-to-end over real sockets — concurrent sessions,
// cache-hit byte-identity, and mid-run client disconnects.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "scenarios/traffic.hpp"
#include "svc/frame.hpp"
#include "svc/json.hpp"
#include "svc/run.hpp"
#include "svc/runspec.hpp"
#include "svc/scenarios.hpp"
#include "svc/server.hpp"

using namespace unr::svc;

namespace {

// --- Frame codec ------------------------------------------------------------

struct Pair {
  int a = -1, b = -1;  ///< a = test side, b = peer side
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Frame, RoundTrip) {
  Pair p;
  ASSERT_EQ(write_frame(p.b, "{\"x\":1}"), FrameStatus::kOk);
  std::string payload;
  ASSERT_EQ(read_frame(p.a, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"x\":1}");
}

TEST(Frame, PartialReadsAcrossBoundaries) {
  // Drip two frames one byte at a time: the reader must reassemble both and
  // stop exactly at each boundary.
  Pair p;
  std::string wire, w2;
  ASSERT_TRUE(encode_frame("{\"first\":true}", wire));
  ASSERT_TRUE(encode_frame("{\"second\":\"abc\"}", w2));
  wire += w2;
  std::thread writer([&] {
    for (const char c : wire) {
      ASSERT_EQ(::send(p.b, &c, 1, 0), 1);
    }
    ::shutdown(p.b, SHUT_WR);
  });
  std::string payload;
  EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"first\":true}");
  EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"second\":\"abc\"}");
  EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kClosed);
  writer.join();
}

TEST(Frame, ZeroLengthIsError) {
  Pair p;
  const unsigned char hdr[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(p.b, hdr, 4, 0), 4);
  std::string payload;
  EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kEmpty);
  EXPECT_EQ(write_frame(p.b, ""), FrameStatus::kEmpty);
}

TEST(Frame, OversizedIsRefusedBeforeAllocating) {
  Pair p;
  // 0xFFFFFFFF advertised length: must come back kTooLarge without the
  // reader ever trying to allocate 4 GiB.
  const unsigned char hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(p.b, hdr, 4, 0), 4);
  std::string payload;
  EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kTooLarge);
  const std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(write_frame(p.b, big), FrameStatus::kTooLarge);
  std::string wire;
  EXPECT_FALSE(encode_frame(big, wire));
  EXPECT_FALSE(encode_frame("", wire));
}

TEST(Frame, TruncationMidFrameVsCleanEof) {
  {
    Pair p;
    std::string wire;
    ASSERT_TRUE(encode_frame("{\"x\":1}", wire));
    // Send all but the last byte, then hang up: EOF inside a frame.
    ASSERT_EQ(::send(p.b, wire.data(), wire.size() - 1, 0),
              static_cast<ssize_t>(wire.size() - 1));
    ::shutdown(p.b, SHUT_WR);
    std::string payload;
    EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kTruncated);
  }
  {
    Pair p;
    ::shutdown(p.b, SHUT_WR);  // hang up between frames: clean close
    std::string payload;
    EXPECT_EQ(read_frame(p.a, payload), FrameStatus::kClosed);
  }
}

// --- JSON codec -------------------------------------------------------------

TEST(Json, ParsesProtocolShapes) {
  Json v;
  std::string err;
  ASSERT_TRUE(Json::parse(
      "{\"op\":\"submit\",\"n\":42,\"f\":1.5,\"b\":true,\"z\":null,"
      "\"a\":[1,2,3],\"s\":\"q\\\"\\n\\u0041\"}",
      v, &err))
      << err;
  EXPECT_EQ(v.str("op", ""), "submit");
  EXPECT_EQ(v.num("n", 0), 42);
  EXPECT_TRUE(v.find("f")->number == 1.5);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("z")->type, Json::Type::kNull);
  EXPECT_EQ(v.find("a")->items.size(), 3u);
  EXPECT_EQ(v.find("s")->string, "q\"\nA");
}

TEST(Json, RejectsGarbage) {
  Json v;
  std::string err;
  EXPECT_FALSE(Json::parse("", v, &err));
  EXPECT_FALSE(Json::parse("{\"a\":}", v, &err));
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing", v, &err));
  EXPECT_FALSE(Json::parse("{\"a\":1", v, &err));
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  EXPECT_FALSE(Json::parse(deep, v, &err));
}

TEST(Json, EscapeRoundTrips) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  Json v;
  std::string err;
  ASSERT_TRUE(Json::parse("{\"k\":\"" + json_escape(nasty) + "\"}", v, &err))
      << err;
  EXPECT_EQ(v.str("k", ""), nasty);
}

// --- Server end-to-end ------------------------------------------------------

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

std::string request(int fd, const std::string& payload) {
  EXPECT_EQ(write_frame(fd, payload), FrameStatus::kOk);
  std::string reply;
  EXPECT_EQ(read_frame(fd, reply), FrameStatus::kOk);
  return reply;
}

std::string small_spec(std::uint64_t seed) {
  RunSpec s;
  s.scenario = "pingpong";
  s.seed = seed;
  s.params["iters"] = 10;
  s.params["size"] = 256;
  return to_text(s);
}

std::string submit_payload(const std::string& spec_text) {
  return "{\"op\":\"submit\",\"spec\":\"" + json_escape(spec_text) + "\"}";
}

/// Submit and collect (status?, result-frame-raw).
std::string submit_and_wait(int fd, const std::string& spec_text) {
  std::string frame = request(fd, submit_payload(spec_text));
  Json v;
  std::string err;
  EXPECT_TRUE(Json::parse(frame, v, &err)) << err << ": " << frame;
  EXPECT_NE(v.str("type", ""), "error") << frame;
  if (v.str("type", "") == "status") {
    EXPECT_EQ(read_frame(fd, frame), FrameStatus::kOk);
  }
  return frame;
}

/// Raw bytes of the "body" value — the cached payload.
std::string body_of(const std::string& result_frame) {
  const std::size_t i = result_frame.find("\"body\":");
  EXPECT_NE(i, std::string::npos) << result_frame;
  return result_frame.substr(i + 7, result_frame.size() - (i + 7) - 1);
}

TEST(Server, HelloSubmitCacheStats) {
  Server server;
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = connect_to(server.port());
  const std::string hello = request(fd, "{\"op\":\"hello\"}");
  EXPECT_NE(hello.find("unr-svc-v1"), std::string::npos);
  EXPECT_NE(hello.find("pingpong"), std::string::npos);

  const std::string spec = small_spec(7);
  const std::string first = submit_and_wait(fd, spec);
  EXPECT_NE(first.find("\"cache\":\"miss\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  const std::string second = submit_and_wait(fd, spec);
  EXPECT_NE(second.find("\"cache\":\"hit\""), std::string::npos) << second;
  // The whole result body — digest, events, metrics JSON — is byte-identical
  // between the original run and the cache hit.
  EXPECT_EQ(body_of(first), body_of(second));

  const std::string stats = request(fd, "{\"op\":\"stats\"}");
  Json sv;
  ASSERT_TRUE(Json::parse(stats, sv, &err)) << err;
  const Json* cache = sv.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->num("hits", 0), 1);
  EXPECT_GE(cache->num("misses", 0), 1);
  EXPECT_NE(stats.find("unr-metrics-v1"), std::string::npos) << stats;
  EXPECT_GT(sv.num("bytes_in", 0), 0);
  EXPECT_GT(sv.num("bytes_out", 0), 0);

  EXPECT_EQ(request(fd, "{\"op\":\"bye\"}"), "{\"type\":\"bye\"}");
  ::close(fd);
  server.stop();
  const Server::Stats st = server.stats();
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_EQ(st.sessions_closed, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
}

TEST(Server, EightConcurrentSessions) {
  Server server;
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  constexpr int kSessions = 8;
  std::vector<std::string> results(kSessions);
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      const int fd = connect_to(server.port());
      results[static_cast<std::size_t>(i)] =
          submit_and_wait(fd, small_spec(100 + static_cast<std::uint64_t>(i)));
      write_frame(fd, "{\"op\":\"bye\"}");
      std::string bye;
      read_frame(fd, bye);
      ::close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& r : results) {
    EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    EXPECT_NE(r.find("\"cache\":\"miss\""), std::string::npos) << r;
  }
  const Server::Stats st = server.stats();
  EXPECT_EQ(st.sessions_opened, kSessions);
  EXPECT_EQ(st.cache_misses, kSessions);
  server.stop();
}

TEST(Server, MidRunDisconnectDoesNotWedgeTheServer) {
  Server server;
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  // Fire a submit and hang up WITHOUT reading any reply: the session's
  // result write fails, the session dies, the run still completes and lands
  // in the cache.
  const std::string spec = small_spec(55);
  {
    const int fd = connect_to(server.port());
    ASSERT_EQ(write_frame(fd, submit_payload(spec)), FrameStatus::kOk);
    ::close(fd);
  }
  // A fresh session gets the cached result (or at worst re-runs it) — the
  // server must still answer.
  const int fd = connect_to(server.port());
  const std::string r = submit_and_wait(fd, spec);
  EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
  ::close(fd);
  server.stop();
  const Server::Stats st = server.stats();
  EXPECT_EQ(st.sessions_opened, 2u);
  EXPECT_EQ(st.sessions_closed, 2u);
}

TEST(Server, MalformedFramesAndOps) {
  Server server;
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  {  // unknown op: error frame, session survives
    const int fd = connect_to(server.port());
    EXPECT_NE(request(fd, "{\"op\":\"frobnicate\"}").find("\"type\":\"error\""),
              std::string::npos);
    EXPECT_NE(request(fd, "not json at all").find("bad json"),
              std::string::npos);
    EXPECT_NE(request(fd, "{\"op\":\"submit\",\"spec\":\"garbage\"}")
                  .find("bad spec"),
              std::string::npos);
    EXPECT_EQ(request(fd, "{\"op\":\"bye\"}"), "{\"type\":\"bye\"}");
    ::close(fd);
  }
  {  // zero-length frame: error frame, then the server hangs up
    const int fd = connect_to(server.port());
    const unsigned char hdr[4] = {0, 0, 0, 0};
    ASSERT_EQ(::send(fd, hdr, 4, 0), 4);
    std::string reply;
    ASSERT_EQ(read_frame(fd, reply), FrameStatus::kOk);
    EXPECT_NE(reply.find("bad frame"), std::string::npos);
    EXPECT_EQ(read_frame(fd, reply), FrameStatus::kClosed);
    ::close(fd);
  }
  server.stop();
}

// --- run_runspec (no sockets) ----------------------------------------------

TEST(RunRunspec, WorkloadAndScenarioPaths) {
  RunSpec s;
  s.scenario = "allreduce";
  s.params["iters"] = 2;
  s.params["count"] = 32;
  const RunOutcome a = run_runspec(s);
  EXPECT_TRUE(a.ok) << a.error;
  EXPECT_GT(a.events, 0u);
  // Same spec, same outcome — the determinism the cache stands on.
  const RunOutcome b = run_runspec(s);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.virtual_ns, b.virtual_ns);
  EXPECT_EQ(render_body(s, a), render_body(s, b));

  RunSpec bad;
  bad.scenario = "nope";
  EXPECT_FALSE(run_runspec(bad).ok);
  EXPECT_NE(run_runspec(bad).error.find("unknown scenario"), std::string::npos);

  RunSpec none;
  EXPECT_FALSE(run_runspec(none).ok);
}

// Every scenario-pack traffic pattern is servable by name: oracle-clean,
// deterministic (the cache contract), and channel-invariant — the fallback
// channel must reproduce the native run's application-visible digest bit for
// bit, because the served digest is the differential digest.
TEST(RunRunspec, TrafficPatternsServableAndChannelInvariant) {
  for (const unr::scenarios::Pattern& pat : unr::scenarios::patterns()) {
    RunSpec s;
    s.scenario = pat.name;
    s.nodes = 3;
    s.ranks_per_node = 2;
    s.seed = 5;
    s.params["rounds"] = 1;
    const RunOutcome a = run_runspec(s);
    ASSERT_TRUE(a.ok) << pat.name << ": "
                      << (a.error.empty()
                              ? (a.violations.empty() ? "" : a.violations[0])
                              : a.error);
    EXPECT_GT(a.events, 0u) << pat.name;
    const RunOutcome b = run_runspec(s);
    EXPECT_EQ(a.result_digest, b.result_digest) << pat.name;
    EXPECT_EQ(render_body(s, a), render_body(s, b)) << pat.name;
    RunSpec fb = s;
    fb.channel = "fallback";
    const RunOutcome c = run_runspec(fb);
    ASSERT_TRUE(c.ok) << pat.name;
    EXPECT_EQ(c.result_digest, a.result_digest) << pat.name;
  }
  // is_scenario and the name registry agree about the pack.
  EXPECT_TRUE(is_scenario("ai_moe_alltoall"));
  EXPECT_TRUE(is_scenario("sync_work_steal"));
}

}  // namespace
