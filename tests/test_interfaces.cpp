// End-to-end UNR over EVERY Table-II interface family, including the ones
// the paper could not access hardware for (uGNI, PAMI, Portals): the
// portability claim is that the same application code runs unchanged while
// the transport layer adapts to the available custom bits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

unr::SystemProfile profile_for(unr::Interface iface) {
  unr::SystemProfile p = unr::make_hpc_ib();  // neutral hardware numbers
  p.iface = iface;
  p.name = std::string("SIM-") + interface_name(iface);
  return p;
}

class InterfaceP : public ::testing::TestWithParam<unr::Interface> {};

/// The exact same producer/consumer program must work on every interface.
TEST_P(InterfaceP, NotifiedPutUnchangedApplicationCode) {
  World::Config wc;
  wc.profile = profile_for(GetParam());
  wc.deterministic_routing = true;
  World w(wc);
  Unr unr(w);

  const int iters = 6;
  int verified = 0;
  w.run([&](Rank& r) {
    std::vector<double> buf(128, 0.0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(double));
    if (r.id() == 0) {
      Blk rmt;
      r.recv(1, 0, &rmt, sizeof rmt);
      const SigId ssig = unr.sig_init(0, 1);
      const Blk sblk = unr.blk_init(0, mh, 0, 128 * sizeof(double), ssig);
      for (int it = 0; it < iters; ++it) {
        buf[0] = it * 2.5;
        buf[127] = -it;
        unr.put(0, sblk, rmt);
        unr.sig_wait(0, ssig);
        unr.sig_reset(0, ssig);
        char ack;
        r.recv(1, 1, &ack, 1);
      }
    } else {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, 128 * sizeof(double), rsig);
      r.send(0, 0, &rblk, sizeof rblk);
      for (int it = 0; it < iters; ++it) {
        unr.sig_wait(1, rsig);
        if (buf[0] == it * 2.5 && buf[127] == -static_cast<double>(it)) ++verified;
        unr.sig_reset(1, rsig);
        char ack = 1;
        r.send(0, 1, &ack, 1);
      }
    }
  });
  EXPECT_EQ(verified, iters);
}

TEST_P(InterfaceP, NotifiedGetUnchangedApplicationCode) {
  World::Config wc;
  wc.profile = profile_for(GetParam());
  wc.deterministic_routing = true;
  World w(wc);
  Unr unr(w);
  bool reader_ok = false, owner_ok = false;
  w.run([&](Rank& r) {
    std::vector<int> buf(32, r.id() == 1 ? 99 : 0);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size() * sizeof(int));
    if (r.id() == 1) {
      const SigId osig = unr.sig_init(1, 1);
      const Blk oblk = unr.blk_init(1, mh, 0, 32 * sizeof(int), osig);
      r.send(0, 0, &oblk, sizeof oblk);
      unr.sig_wait(1, osig);
      owner_ok = true;
    } else {
      Blk oblk;
      r.recv(1, 0, &oblk, sizeof oblk);
      const SigId lsig = unr.sig_init(0, 1);
      unr.get(0, unr.blk_init(0, mh, 0, 32 * sizeof(int), lsig), oblk);
      unr.sig_wait(0, lsig);
      reader_ok = buf[0] == 99 && buf[31] == 99;
    }
  });
  EXPECT_TRUE(reader_ok);
  EXPECT_TRUE(owner_ok);
}

INSTANTIATE_TEST_SUITE_P(TableTwo, InterfaceP,
                         ::testing::Values(unr::Interface::kGlex,
                                           unr::Interface::kVerbs,
                                           unr::Interface::kUtofu,
                                           unr::Interface::kUgni,
                                           unr::Interface::kPami,
                                           unr::Interface::kPortals),
                         [](const ::testing::TestParamInfo<unr::Interface>& i) {
                           return interface_name(i.param);
                         });

TEST(Level2Mode2, MultiNicSplitOnDualRailVerbs) {
  // A hypothetical dual-rail Verbs system: level-2 mode 2 packs the signal
  // index into x bits and the fragment addend code into 32-x, enabling
  // multi-channel aggregation with a limited K (Table I).
  unr::SystemProfile p = unr::make_hpc_ib();
  p.name = "IB-DUALRAIL";
  p.nics_per_node = 2;
  World::Config wc;
  wc.profile = p;
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.level2_mode = 2;
  uc.level2_index_bits = 20;
  uc.split_threshold = 4 * KiB;
  // Mode-2 addend codes are only 12 bits: the signal N must be small enough
  // for the fragment algebra to stay within the event field.
  uc.default_sig_n = 8;
  Unr unr(w, uc);
  ASSERT_TRUE(unr.channel().multi_channel());

  const std::size_t bytes = 512 * KiB;
  bool ok = false;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(bytes);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = true;
      for (std::size_t i = 0; i < bytes; i += 8191)
        if (buf[i] != static_cast<std::byte>(i & 0xFF)) ok = false;
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      for (std::size_t i = 0; i < bytes; ++i)
        buf[i] = static_cast<std::byte>(i & 0xFF);
      unr.put(0, unr.blk_init(0, mh, 0, bytes), rblk);
      r.kernel().sleep_for(2 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(unr.stats().fragments, 1u);        // K = 2 over the two rails
  EXPECT_EQ(unr.stats().encode_fallbacks, 0u); // everything fit in 32 bits
}

TEST(Level2Mode1, SplitDisabledButCorrect) {
  unr::SystemProfile p = unr::make_hpc_ib();
  p.nics_per_node = 2;
  World::Config wc;
  wc.profile = p;
  wc.deterministic_routing = true;
  World w(wc);
  Unr::Config uc;
  uc.level2_mode = 1;  // all 32 bits for the index: a = -1 only
  uc.split_threshold = 4 * KiB;
  Unr unr(w, uc);
  EXPECT_FALSE(unr.channel().multi_channel());

  bool ok = false;
  const std::size_t bytes = 128 * KiB;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(bytes, std::byte{7});
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      ok = buf[bytes - 1] == std::byte{42};
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      std::fill(buf.begin(), buf.end(), std::byte{42});
      unr.put(0, unr.blk_init(0, mh, 0, bytes), rblk);
      r.kernel().sleep_for(2 * kMs);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(unr.stats().fragments, 0u);  // no splitting in mode 1
}

}  // namespace
}  // namespace unr::unrlib
