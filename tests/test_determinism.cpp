// Determinism guarantees of the simulation: identical seeds must produce
// bit-identical virtual timelines across the whole stack (fabric, runtime,
// UNR, mini-PowerLLEL), and the seed must actually matter when adaptive
// routing jitter is on.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "check/runner.hpp"
#include "check/workload.hpp"
#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "scenarios/traffic.hpp"
#include "unr/unr.hpp"

namespace unr {
namespace {

using powerllel::CommBackend;
using powerllel::Solver;
using powerllel::SolverConfig;
using powerllel::ZBc;
using runtime::Rank;
using runtime::World;
using unrlib::Blk;
using unrlib::MemHandle;
using unrlib::SigId;
using unrlib::Unr;

Time pingpong_elapsed(std::uint64_t seed, bool jitter) {
  World::Config wc;
  wc.profile = make_hpc_roce();  // largest jitter of the four platforms
  wc.seed = seed;
  wc.deterministic_routing = !jitter;
  World w(wc);
  Unr unr(w);
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(4096);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), 1);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, buf.size(), rsig);
    const int peer = 1 - r.id();
    Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, buf.size());
    for (int i = 0; i < 25; ++i) {
      if (r.id() == 0) {
        unr.put(0, send_blk, peer_blk);
        unr.sig_wait(0, rsig);
        unr.sig_reset(0, rsig);
      } else {
        unr.sig_wait(1, rsig);
        unr.sig_reset(1, rsig);
        unr.put(1, send_blk, peer_blk);
      }
    }
  });
  return w.elapsed();
}

TEST(Determinism, SameSeedSameTimeline) {
  EXPECT_EQ(pingpong_elapsed(7, true), pingpong_elapsed(7, true));
  EXPECT_EQ(pingpong_elapsed(123, false), pingpong_elapsed(123, false));
}

TEST(Determinism, SeedMattersWithAdaptiveRouting) {
  // With jitter on, different seeds must explore different timelines.
  EXPECT_NE(pingpong_elapsed(1, true), pingpong_elapsed(2, true));
  // With deterministic routing, the seed is irrelevant.
  EXPECT_EQ(pingpong_elapsed(1, false), pingpong_elapsed(2, false));
}

struct SolverRun {
  Time elapsed;
  double ke;
  double div;
};

SolverRun run_solver(std::uint64_t seed) {
  World::Config wc;
  wc.nodes = 4;
  wc.profile = make_th_xy();
  wc.seed = seed;
  World w(wc);
  Unr unr(w);
  SolverRun out{};
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = 16;
    sc.decomp.ny = 16;
    sc.decomp.nz = 8;
    sc.decomp.pr = 2;
    sc.decomp.pc = 2;
    sc.backend = CommBackend::kUnr;
    sc.unr = &unr;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * z * (2 - z) * std::cos(y); },
        [](double x, double y, double) { return 0.2 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(3);
    out.ke = s.global_kinetic_energy();
    out.div = s.global_max_divergence();
  });
  out.elapsed = w.elapsed();
  return out;
}

TEST(Determinism, FullApplicationIsReproducible) {
  const SolverRun a = run_solver(11);
  const SolverRun b = run_solver(11);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.ke, b.ke);
  EXPECT_EQ(a.div, b.div);
}

struct KernelPin {
  std::uint64_t events;
  Time end;
};

/// Mixed PUT/AM/fault workload: notified PUTs around a ring, two-sided eager
/// traffic (AMs with ordered companions) the other way, adaptive-routing
/// jitter on, injected drops, and a NIC dying mid-run. Exercises every event
/// source in the fabric at once.
KernelPin run_mixed_workload(std::uint64_t seed, int shards = 1) {
  World::Config wc;
  wc.nodes = 4;
  wc.ranks_per_node = 2;
  wc.profile = make_th_xy();
  wc.profile.nics_per_node = 2;
  wc.seed = seed;
  // The golden pins below are defined by the single-shard kernel: pin the
  // shard count explicitly so a UNR_SHARDS environment override cannot move
  // them. (Fault draws come from per-shard injector streams, so a K>1 run
  // of this workload is reproducible per (seed, K) but pins different
  // values — see ShardedMixedWorkloadReproducible.)
  wc.shards = shards;
  wc.faults.drop_rate = 0.05;
  wc.faults.nic_faults.push_back({.node = 1, .index = 1, .at = 30 * kUs});
  World w(wc);
  Unr unr(w);
  const int iters = 20;
  w.run([&](Rank& r) {
    const int n = r.nranks();
    const int right = (r.id() + 1) % n;
    const int left = (r.id() + n - 1) % n;
    std::vector<std::byte> buf(4 * KiB);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), iters);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, buf.size(), rsig);
    Blk right_blk;
    r.sendrecv(right, 7, &my_blk, sizeof my_blk, left, 7, &right_blk, sizeof right_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, buf.size());
    std::uint64_t token = static_cast<std::uint64_t>(r.id());
    for (int i = 0; i < iters; ++i) {
      unr.put(r.id(), send_blk, right_blk);
      std::uint64_t got = 0;
      runtime::RequestPtr rr = r.irecv(right, 9, &got, sizeof got);
      r.send(left, 9, &token, sizeof token);
      r.wait(rr);
      token = got + 1;
    }
    unr.sig_wait(r.id(), rsig);
    r.barrier();
  });
  return {w.kernel().event_count(), w.elapsed()};
}

// Golden values pinned BEFORE the simulator hot-path refactor (timer wheel,
// pooled events/flights, flat tables): the refactor claims to be
// semantics-preserving, so the exact event count and end time of this
// workload must never move. If a legitimate *model* change (new event
// sources, cost-model changes) shifts them, re-pin deliberately in the same
// PR that changes the model and say so in its description.
inline constexpr std::uint64_t kMixedGoldenEvents = 1205;
inline constexpr Time kMixedGoldenEnd = 97650;

TEST(Determinism, MixedFaultWorkloadPinned) {
  const KernelPin a = run_mixed_workload(42);
  const KernelPin b = run_mixed_workload(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.events, kMixedGoldenEvents);
  EXPECT_EQ(a.end, kMixedGoldenEnd);
}

// ---------------------------------------------------------------------------
// Golden corpus: one generated fuzz workload per interface personality
// (Table II), run on the native channel, with its event count, virtual end
// time, and application-visible digest pinned. These are the same workloads
// the nightly fuzz sweep draws from (src/check/), so any timing-model or
// notification-path change that moves the simulation shows up here
// immediately — in tier 1, not at 3am. Re-pin deliberately (the failure
// output prints the new values) only in a PR that intentionally changes the
// model, and say so in its description.
struct GoldenPin {
  Interface iface;
  std::uint64_t seed;  // distinct per personality so each workload differs
  std::uint64_t events;
  Time end;
  std::uint64_t digest;
};

inline constexpr GoldenPin kGoldenCorpus[] = {
    {Interface::kGlex, 2026, 140, 2015238, 15776137241779103725ull},
    {Interface::kVerbs, 2027, 986, 2164072, 9072712369951878418ull},
    {Interface::kUtofu, 2028, 152, 2045572, 10922542496294661094ull},
    {Interface::kUgni, 2029, 644, 2059332, 5753888831682073803ull},
    {Interface::kPami, 2030, 119, 2019302, 1302273569689558915ull},
    {Interface::kPortals, 2031, 171, 2083644, 18003767250503377947ull},
};

TEST(Determinism, GoldenCorpusPerPersonality) {
  for (const GoldenPin& pin : kGoldenCorpus) {
    check::GenConfig gc;
    gc.iface = pin.iface;
    const check::WorkloadSpec spec = check::generate(pin.seed, gc);
    check::RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    opt.shards = 1;  // pins are defined by the single-shard kernel
    const check::RunResult r = check::run_workload(spec, opt);
    ASSERT_TRUE(r.ok) << check::iface_token(pin.iface) << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.events, pin.events) << check::iface_token(pin.iface);
    EXPECT_EQ(r.end_time, pin.end) << check::iface_token(pin.iface);
    EXPECT_EQ(r.digest, pin.digest)
        << check::iface_token(pin.iface) << " digest 0x" << std::hex << r.digest;
  }
}

// ---------------------------------------------------------------------------
// Scenario-pack traffic pins: every pattern in scenarios::patterns(), built
// at a fixed small topology (the same parameters the committed fuzz corpus
// uses) and run single-shard on the native channel. Like the golden corpus
// above, these catch timing-model or notification-path drift in tier 1;
// re-pin deliberately (the failure output has the new values) only in a PR
// that intentionally changes the model.
struct TrafficPin {
  const char* pattern;
  std::uint64_t events;
  Time end;
  std::uint64_t digest;
};

inline constexpr TrafficPin kTrafficPins[] = {
    {"ai_ring_allreduce", 1248, 2055528, 8989574799990096433ull},
    {"ai_tree_allreduce", 400, 2033784, 12067191026127495349ull},
    {"ai_pipeline", 928, 2053785, 8873455053576745039ull},
    {"ai_moe_alltoall", 719, 2026970, 2027165123038252694ull},
    {"sync_faa_tree", 404, 2025404, 12045923744769436573ull},
    {"sync_barrier_tree", 400, 2032334, 10622242693508522142ull},
    {"sync_work_steal", 826, 2031137, 11674555619523324971ull},
};

scenarios::TrafficParams traffic_pin_params() {
  scenarios::TrafficParams p;
  p.seed = 4242;
  p.nodes = 3;
  p.ranks_per_node = 2;
  p.rounds = 2;
  return p;
}

TEST(Determinism, TrafficPatternsPinned) {
  ASSERT_EQ(std::size(kTrafficPins), scenarios::patterns().size())
      << "pin table out of sync with scenarios::patterns()";
  for (const TrafficPin& pin : kTrafficPins) {
    const scenarios::Pattern* pat = scenarios::find_pattern(pin.pattern);
    ASSERT_NE(pat, nullptr) << pin.pattern;
    const check::WorkloadSpec spec = pat->make(traffic_pin_params());
    check::RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    opt.shards = 1;  // pins are defined by the single-shard kernel
    const check::RunResult r = check::run_workload(spec, opt);
    ASSERT_TRUE(r.ok) << pin.pattern << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.events, pin.events) << pin.pattern;
    EXPECT_EQ(r.end_time, pin.end) << pin.pattern;
    EXPECT_EQ(r.digest, pin.digest)
        << pin.pattern << " digest " << r.digest << "ull";
  }
}

// Digest invariance across shard counts for every traffic pattern, at a
// 4-node topology so K=4 is real sharding, not a clamp.
TEST(Determinism, TrafficShardCountPreservesDigest) {
  for (const scenarios::Pattern& pat : scenarios::patterns()) {
    scenarios::TrafficParams p = traffic_pin_params();
    p.nodes = 4;
    const check::WorkloadSpec spec = pat.make(p);
    ASSERT_EQ(check::validate(spec), "") << pat.name;
    std::optional<std::uint64_t> digest;
    for (const int k : {1, 2, 4}) {
      check::RunOptions opt;
      opt.channel = unrlib::ChannelKind::kNative;
      opt.shards = k;
      const check::RunResult r = check::run_workload(spec, opt);
      ASSERT_TRUE(r.ok) << pat.name << " shards=" << k << ": "
                        << (r.violations.empty() ? "" : r.violations.front());
      if (!digest) digest = r.digest;
      else EXPECT_EQ(r.digest, *digest) << pat.name << " shards=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded kernel (conservative-lookahead parallel simulation). Two contracts:
//   * fixed (seed, K) is fully reproducible — run twice, get the same event
//     count, end time, and digest, even with faults armed;
//   * the digest (application-visible bytes only, never timing) is invariant
//     across shard counts whenever the fault pattern is — always, for
//     fault-free specs, because per-shard RNG streams then never draw.

TEST(Determinism, ShardedMixedWorkloadReproducible) {
  const KernelPin a = run_mixed_workload(42, /*shards=*/2);
  const KernelPin b = run_mixed_workload(42, /*shards=*/2);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end, b.end);
}

TEST(Determinism, ShardCountPreservesDigest) {
  // A generated fault-free spec, widened to 4 nodes so K=4 is not clamped
  // (ops only ever reference ranks of the original, smaller machine, so
  // adding nodes keeps the spec valid — validate() confirms).
  check::GenConfig gc;
  gc.iface = Interface::kVerbs;
  check::WorkloadSpec spec = check::generate(3001, gc);
  spec.nodes = std::max(spec.nodes, 4);
  ASSERT_EQ(check::validate(spec), "");

  std::optional<check::RunResult> base;
  for (const int k : {1, 2, 4}) {
    check::RunOptions opt;
    opt.channel = unrlib::ChannelKind::kNative;
    opt.shards = k;
    const check::RunResult r = check::run_workload(spec, opt);
    ASSERT_TRUE(r.ok) << "shards=" << k << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
    if (!base) {
      base = r;
    } else {
      EXPECT_EQ(r.digest, base->digest) << "shards=" << k;
    }
  }
}

TEST(Determinism, PhysicsIndependentOfJitterSeed) {
  // Message timing varies with the seed, but the NUMERICS may not: the
  // solver must compute the same flow regardless of arrival order.
  const SolverRun a = run_solver(100);
  const SolverRun b = run_solver(200);
  EXPECT_EQ(a.ke, b.ke);
  EXPECT_EQ(a.div, b.div);
  EXPECT_NE(a.elapsed, b.elapsed);  // ...while the timelines differ
}

}  // namespace
}  // namespace unr
