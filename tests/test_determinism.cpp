// Determinism guarantees of the simulation: identical seeds must produce
// bit-identical virtual timelines across the whole stack (fabric, runtime,
// UNR, mini-PowerLLEL), and the seed must actually matter when adaptive
// routing jitter is on.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr {
namespace {

using powerllel::CommBackend;
using powerllel::Solver;
using powerllel::SolverConfig;
using powerllel::ZBc;
using runtime::Rank;
using runtime::World;
using unrlib::Blk;
using unrlib::MemHandle;
using unrlib::SigId;
using unrlib::Unr;

Time pingpong_elapsed(std::uint64_t seed, bool jitter) {
  World::Config wc;
  wc.profile = make_hpc_roce();  // largest jitter of the four platforms
  wc.seed = seed;
  wc.deterministic_routing = !jitter;
  World w(wc);
  Unr unr(w);
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(4096);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), 1);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, buf.size(), rsig);
    const int peer = 1 - r.id();
    Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, buf.size());
    for (int i = 0; i < 25; ++i) {
      if (r.id() == 0) {
        unr.put(0, send_blk, peer_blk);
        unr.sig_wait(0, rsig);
        unr.sig_reset(0, rsig);
      } else {
        unr.sig_wait(1, rsig);
        unr.sig_reset(1, rsig);
        unr.put(1, send_blk, peer_blk);
      }
    }
  });
  return w.elapsed();
}

TEST(Determinism, SameSeedSameTimeline) {
  EXPECT_EQ(pingpong_elapsed(7, true), pingpong_elapsed(7, true));
  EXPECT_EQ(pingpong_elapsed(123, false), pingpong_elapsed(123, false));
}

TEST(Determinism, SeedMattersWithAdaptiveRouting) {
  // With jitter on, different seeds must explore different timelines.
  EXPECT_NE(pingpong_elapsed(1, true), pingpong_elapsed(2, true));
  // With deterministic routing, the seed is irrelevant.
  EXPECT_EQ(pingpong_elapsed(1, false), pingpong_elapsed(2, false));
}

struct SolverRun {
  Time elapsed;
  double ke;
  double div;
};

SolverRun run_solver(std::uint64_t seed) {
  World::Config wc;
  wc.nodes = 4;
  wc.profile = make_th_xy();
  wc.seed = seed;
  World w(wc);
  Unr unr(w);
  SolverRun out{};
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = 16;
    sc.decomp.ny = 16;
    sc.decomp.nz = 8;
    sc.decomp.pr = 2;
    sc.decomp.pc = 2;
    sc.backend = CommBackend::kUnr;
    sc.unr = &unr;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * z * (2 - z) * std::cos(y); },
        [](double x, double y, double) { return 0.2 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(3);
    out.ke = s.global_kinetic_energy();
    out.div = s.global_max_divergence();
  });
  out.elapsed = w.elapsed();
  return out;
}

TEST(Determinism, FullApplicationIsReproducible) {
  const SolverRun a = run_solver(11);
  const SolverRun b = run_solver(11);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.ke, b.ke);
  EXPECT_EQ(a.div, b.div);
}

struct KernelPin {
  std::uint64_t events;
  Time end;
};

/// Mixed PUT/AM/fault workload: notified PUTs around a ring, two-sided eager
/// traffic (AMs with ordered companions) the other way, adaptive-routing
/// jitter on, injected drops, and a NIC dying mid-run. Exercises every event
/// source in the fabric at once.
KernelPin run_mixed_workload(std::uint64_t seed) {
  World::Config wc;
  wc.nodes = 4;
  wc.ranks_per_node = 2;
  wc.profile = make_th_xy();
  wc.profile.nics_per_node = 2;
  wc.seed = seed;
  wc.faults.drop_rate = 0.05;
  wc.faults.nic_faults.push_back({.node = 1, .index = 1, .at = 30 * kUs});
  World w(wc);
  Unr unr(w);
  const int iters = 20;
  w.run([&](Rank& r) {
    const int n = r.nranks();
    const int right = (r.id() + 1) % n;
    const int left = (r.id() + n - 1) % n;
    std::vector<std::byte> buf(4 * KiB);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), iters);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, buf.size(), rsig);
    Blk right_blk;
    r.sendrecv(right, 7, &my_blk, sizeof my_blk, left, 7, &right_blk, sizeof right_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, buf.size());
    std::uint64_t token = static_cast<std::uint64_t>(r.id());
    for (int i = 0; i < iters; ++i) {
      unr.put(r.id(), send_blk, right_blk);
      std::uint64_t got = 0;
      runtime::RequestPtr rr = r.irecv(right, 9, &got, sizeof got);
      r.send(left, 9, &token, sizeof token);
      r.wait(rr);
      token = got + 1;
    }
    unr.sig_wait(r.id(), rsig);
    r.barrier();
  });
  return {w.kernel().event_count(), w.elapsed()};
}

// Golden values pinned BEFORE the simulator hot-path refactor (timer wheel,
// pooled events/flights, flat tables): the refactor claims to be
// semantics-preserving, so the exact event count and end time of this
// workload must never move. If a legitimate *model* change (new event
// sources, cost-model changes) shifts them, re-pin deliberately in the same
// PR that changes the model and say so in its description.
inline constexpr std::uint64_t kMixedGoldenEvents = 1205;
inline constexpr Time kMixedGoldenEnd = 97650;

TEST(Determinism, MixedFaultWorkloadPinned) {
  const KernelPin a = run_mixed_workload(42);
  const KernelPin b = run_mixed_workload(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.events, kMixedGoldenEvents);
  EXPECT_EQ(a.end, kMixedGoldenEnd);
}

TEST(Determinism, PhysicsIndependentOfJitterSeed) {
  // Message timing varies with the seed, but the NUMERICS may not: the
  // solver must compute the same flow regardless of arrival order.
  const SolverRun a = run_solver(100);
  const SolverRun b = run_solver(200);
  EXPECT_EQ(a.ke, b.ke);
  EXPECT_EQ(a.div, b.div);
  EXPECT_NE(a.elapsed, b.elapsed);  // ...while the timelines differ
}

}  // namespace
}  // namespace unr
