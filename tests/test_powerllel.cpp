// Mini-PowerLLEL integration tests: halo exchange and transpose correctness
// over both backends, Poisson solver against a manufactured solution,
// divergence-free projection, Taylor-Green decay, and MPI/UNR backend
// equivalence (identical physics, different transport).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "powerllel/halo.hpp"
#include "powerllel/poisson.hpp"
#include "powerllel/solver.hpp"
#include "powerllel/transpose.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {
namespace {

using runtime::Rank;
using runtime::World;

World::Config world_for(int nranks) {
  World::Config wc;
  wc.nodes = nranks;
  wc.ranks_per_node = 1;
  wc.profile = unr::make_th_xy();
  wc.deterministic_routing = true;
  return wc;
}

Decomp decomp_for(std::size_t nx, std::size_t ny, std::size_t nz, int pr, int pc) {
  Decomp d;
  d.nx = nx;
  d.ny = ny;
  d.nz = nz;
  d.pr = pr;
  d.pc = pc;
  return d;
}

/// Encodes a unique value per (global i, j, k, field).
double coord_tag(std::size_t i, std::size_t jg, std::size_t kg, int field) {
  return static_cast<double>(i) + 1000.0 * static_cast<double>(jg) +
         1000000.0 * static_cast<double>(kg) + 1e9 * field;
}

struct BackendCase {
  const char* label;
  CommBackend backend;
  int pr, pc;
};

class HaloP : public ::testing::TestWithParam<BackendCase> {};

TEST_P(HaloP, FillsHalosWithNeighborValues) {
  const auto c = GetParam();
  const int p = c.pr * c.pc;
  World w(world_for(p));
  std::optional<unrlib::Unr> unr;
  if (c.backend == CommBackend::kUnr) unr.emplace(w);
  int bad = 0;
  w.run([&](Rank& r) {
    Decomp d = decomp_for(8, 8, 8, c.pr, c.pc);
    d.self = r.id();
    d.validate();
    Field a(d.nx, d.nyl(), d.nzl()), b(d.nx, d.nyl(), d.nzl());
    for (std::size_t k = 0; k < d.nzl(); ++k)
      for (std::size_t j = 0; j < d.nyl(); ++j)
        for (std::size_t i = 0; i < d.nx; ++i) {
          a.at(i, static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(k)) =
              coord_tag(i, d.y0() + j, d.z0() + k, 0);
          b.at(i, static_cast<std::ptrdiff_t>(j), static_cast<std::ptrdiff_t>(k)) =
              coord_tag(i, d.y0() + j, d.z0() + k, 1);
        }
    auto halo = c.backend == CommBackend::kUnr ? make_unr_halo(r, *unr, d, 2)
                                               : make_mpi_halo(r, d, 2);
    Field* fields[2] = {&a, &b};
    // Run twice: the UNR double buffering must recycle cleanly.
    for (int rep = 0; rep < 2; ++rep) halo->exchange(fields);

    auto check = [&](Field& f, int tag) {
      // y halos (periodic).
      for (std::size_t k = 0; k < d.nzl(); ++k)
        for (std::size_t i = 0; i < d.nx; ++i) {
          const std::size_t jm = (d.y0() + d.ny - 1) % d.ny;
          const std::size_t jp = (d.y0() + d.nyl()) % d.ny;
          if (f.at(i, -1, static_cast<std::ptrdiff_t>(k)) !=
              coord_tag(i, jm, d.z0() + k, tag))
            ++bad;
          if (f.at(i, static_cast<std::ptrdiff_t>(d.nyl()),
                   static_cast<std::ptrdiff_t>(k)) !=
              coord_tag(i, jp, d.z0() + k, tag))
            ++bad;
        }
      // z halos (walls have no source; interior only).
      for (std::size_t j = 0; j < d.nyl(); ++j)
        for (std::size_t i = 0; i < d.nx; ++i) {
          if (!d.at_bottom_wall() &&
              f.at(i, static_cast<std::ptrdiff_t>(j), -1) !=
                  coord_tag(i, d.y0() + j, d.z0() - 1, tag))
            ++bad;
          if (!d.at_top_wall() &&
              f.at(i, static_cast<std::ptrdiff_t>(j),
                   static_cast<std::ptrdiff_t>(d.nzl())) !=
                  coord_tag(i, d.y0() + j, d.z0() + d.nzl(), tag))
            ++bad;
        }
    };
    check(a, 0);
    check(b, 1);
  });
  EXPECT_EQ(bad, 0) << c.label;
}

class TransposeP : public ::testing::TestWithParam<BackendCase> {};

TEST_P(TransposeP, ForwardThenBackIsIdentityAndPlacesGlobally) {
  const auto c = GetParam();
  const int p = c.pr * c.pc;
  World w(world_for(p));
  std::optional<unrlib::Unr> unr;
  if (c.backend == CommBackend::kUnr) unr.emplace(w);
  int bad = 0;
  w.run([&](Rank& r) {
    Decomp d = decomp_for(8, 8, 4, c.pr, c.pc);
    d.self = r.id();
    d.validate();
    auto tr = c.backend == CommBackend::kUnr ? make_unr_transposer(r, *unr, d)
                                             : make_mpi_transposer(r, d);
    auto val = [](std::size_t ig, std::size_t jg, std::size_t kg) {
      return Complex(static_cast<double>(ig + 100 * jg + 10000 * kg),
                     -static_cast<double>(ig));
    };
    std::vector<Complex> xp(d.nx * d.nyl() * d.nzl());
    for (std::size_t k = 0; k < d.nzl(); ++k)
      for (std::size_t j = 0; j < d.nyl(); ++j)
        for (std::size_t i = 0; i < d.nx; ++i)
          xp[i + d.nx * (j + d.nyl() * k)] = val(i, d.y0() + j, d.z0() + k);
    const auto orig = xp;
    std::vector<Complex> yp(d.nxl() * d.ny * d.nzl());

    for (int rep = 0; rep < 2; ++rep) {
      tr->x_to_y(xp.data(), yp.data());
      // Check global placement in the y-pencil.
      for (std::size_t k = 0; k < d.nzl(); ++k)
        for (std::size_t j = 0; j < d.ny; ++j)
          for (std::size_t i = 0; i < d.nxl(); ++i)
            if (yp[i + d.nxl() * (j + d.ny * k)] != val(d.x0() + i, j, d.z0() + k))
              ++bad;
      std::fill(xp.begin(), xp.end(), Complex(0, 0));
      tr->y_to_x(yp.data(), xp.data());
      for (std::size_t i = 0; i < xp.size(); ++i)
        if (xp[i] != orig[i]) ++bad;
    }
  });
  EXPECT_EQ(bad, 0) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, HaloP,
    ::testing::Values(BackendCase{"mpi_2x2", CommBackend::kMpi, 2, 2},
                      BackendCase{"unr_2x2", CommBackend::kUnr, 2, 2},
                      BackendCase{"mpi_4x1", CommBackend::kMpi, 4, 1},
                      BackendCase{"unr_1x4", CommBackend::kUnr, 1, 4},
                      BackendCase{"mpi_1x1", CommBackend::kMpi, 1, 1},
                      BackendCase{"unr_1x1", CommBackend::kUnr, 1, 1},
                      BackendCase{"unr_2x1", CommBackend::kUnr, 2, 1}),
    [](const ::testing::TestParamInfo<BackendCase>& i) { return i.param.label; });

INSTANTIATE_TEST_SUITE_P(
    Backends, TransposeP,
    ::testing::Values(BackendCase{"mpi_2x2", CommBackend::kMpi, 2, 2},
                      BackendCase{"unr_2x2", CommBackend::kUnr, 2, 2},
                      BackendCase{"mpi_4x1", CommBackend::kMpi, 4, 1},
                      BackendCase{"unr_4x1", CommBackend::kUnr, 4, 1},
                      BackendCase{"mpi_1x2", CommBackend::kMpi, 1, 2},
                      BackendCase{"unr_1x1", CommBackend::kUnr, 1, 1}),
    [](const ::testing::TestParamInfo<BackendCase>& i) { return i.param.label; });

class PoissonP : public ::testing::TestWithParam<BackendCase> {};

TEST_P(PoissonP, ManufacturedSolution) {
  // p = cos(2pi x/Lx) * cos(4pi y/Ly) * cos(pi z/Lz) satisfies the Neumann
  // walls; feed the DISCRETE Laplacian of p as rhs and expect p back to
  // round-off (up to the pinned constant for the mean mode, which this p
  // does not contain).
  const auto c = GetParam();
  const int p = c.pr * c.pc;
  World w(world_for(p));
  std::optional<unrlib::Unr> unr;
  if (c.backend == CommBackend::kUnr) unr.emplace(w);
  double max_err = 0;
  w.run([&](Rank& r) {
    Decomp d = decomp_for(16, 16, 16, c.pr, c.pc);
    d.self = r.id();
    d.validate();
    const double lx = 2 * std::numbers::pi, ly = 2 * std::numbers::pi, lz = 2.0;
    const double dx = lx / static_cast<double>(d.nx);
    const double dy = ly / static_cast<double>(d.ny);
    const double dz = lz / static_cast<double>(d.nz);

    auto exact = [&](std::size_t ig, std::size_t jg, std::size_t kg) {
      const double x = (static_cast<double>(ig) + 0.5) * dx;
      const double y = (static_cast<double>(jg) + 0.5) * dy;
      const double z = (static_cast<double>(kg) + 0.5) * dz;
      return std::cos(2 * std::numbers::pi * x / lx) *
             std::cos(4 * std::numbers::pi * y / ly) *
             std::cos(std::numbers::pi * z / lz);
    };
    // Discrete Laplacian with Neumann ghosts in z, periodic x/y.
    auto lap = [&](std::size_t ig, std::size_t jg, std::size_t kg) {
      auto pv = [&](std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) {
        const auto n = static_cast<std::ptrdiff_t>(d.nx);
        const auto m = static_cast<std::ptrdiff_t>(d.ny);
        const auto q = static_cast<std::ptrdiff_t>(d.nz);
        if (k < 0) k = 0;
        if (k >= q) k = q - 1;  // Neumann mirror
        return exact(static_cast<std::size_t>(((i % n) + n) % n),
                     static_cast<std::size_t>(((j % m) + m) % m),
                     static_cast<std::size_t>(k));
      };
      const auto i = static_cast<std::ptrdiff_t>(ig);
      const auto j = static_cast<std::ptrdiff_t>(jg);
      const auto k = static_cast<std::ptrdiff_t>(kg);
      return (pv(i + 1, j, k) - 2 * pv(i, j, k) + pv(i - 1, j, k)) / (dx * dx) +
             (pv(i, j + 1, k) - 2 * pv(i, j, k) + pv(i, j - 1, k)) / (dy * dy) +
             (pv(i, j, k + 1) - 2 * pv(i, j, k) + pv(i, j, k - 1)) / (dz * dz);
    };

    PoissonSolver::Config pc2;
    pc2.decomp = d;
    pc2.dx = dx;
    pc2.dy = dy;
    pc2.dz = dz;
    pc2.backend = c.backend;
    pc2.unr = c.backend == CommBackend::kUnr ? &*unr : nullptr;
    PoissonSolver solver(r, pc2);

    std::vector<double> rhs(d.nx * d.nyl() * d.nzl());
    for (std::size_t k = 0; k < d.nzl(); ++k)
      for (std::size_t j = 0; j < d.nyl(); ++j)
        for (std::size_t i = 0; i < d.nx; ++i)
          rhs[i + d.nx * (j + d.nyl() * k)] = lap(i, d.y0() + j, d.z0() + k);
    solver.solve(rhs);
    double err = 0;
    for (std::size_t k = 0; k < d.nzl(); ++k)
      for (std::size_t j = 0; j < d.nyl(); ++j)
        for (std::size_t i = 0; i < d.nx; ++i)
          err = std::max(err, std::fabs(rhs[i + d.nx * (j + d.nyl() * k)] -
                                        exact(i, d.y0() + j, d.z0() + k)));
    max_err = std::max(max_err, err);
  });
  EXPECT_LT(max_err, 1e-9) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PoissonP,
    ::testing::Values(BackendCase{"mpi_1x1", CommBackend::kMpi, 1, 1},
                      BackendCase{"mpi_2x2", CommBackend::kMpi, 2, 2},
                      BackendCase{"unr_2x2", CommBackend::kUnr, 2, 2},
                      BackendCase{"mpi_1x4", CommBackend::kMpi, 1, 4},
                      BackendCase{"unr_4x1", CommBackend::kUnr, 4, 1}),
    [](const ::testing::TestParamInfo<BackendCase>& i) { return i.param.label; });

SolverConfig solver_cfg(std::size_t n, int pr, int pc, CommBackend backend,
                        unrlib::Unr* unr) {
  SolverConfig sc;
  sc.decomp = decomp_for(n, n, n, pr, pc);
  sc.lx = sc.ly = 2 * std::numbers::pi;
  sc.lz = 2 * std::numbers::pi;
  sc.nu = 0.02;
  sc.dt = 2e-3;
  sc.bc = ZBc::kFreeSlip;
  sc.backend = backend;
  sc.unr = unr;
  return sc;
}

TEST(Solver, ProjectionMakesVelocityDivergenceFree) {
  World w(world_for(4));
  double div = 1.0;
  w.run([&](Rank& r) {
    auto sc = solver_cfg(16, 2, 2, CommBackend::kMpi, nullptr);
    Solver s(r, sc);
    // A random-ish, very divergent initial field.
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) + 0.3 * std::cos(y * 2) + 0.1 * z; },
        [](double x, double y, double) { return std::cos(x + y); },
        [](double, double y, double z) { return 0.2 * std::sin(z) * std::cos(y); });
    s.step();
    div = s.global_max_divergence();
  });
  EXPECT_LT(div, 1e-10);
}

TEST(Solver, TaylorGreenDecaysAtTheViscousRate) {
  World w(world_for(4));
  double ke0 = 0, ke1 = 0, t_end = 0, nu = 0;
  w.run([&](Rank& r) {
    auto sc = solver_cfg(16, 2, 2, CommBackend::kMpi, nullptr);
    nu = sc.nu;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double) { return std::cos(x) * std::sin(y); },
        [](double x, double y, double) { return -std::sin(x) * std::cos(y); },
        [](double, double, double) { return 0.0; });
    ke0 = s.global_kinetic_energy();
    s.run(25);
    ke1 = s.global_kinetic_energy();
    t_end = s.time();
  });
  // KE ~ exp(-4 nu t) for the 2-D Taylor-Green vortex.
  const double expected = ke0 * std::exp(-4.0 * nu * t_end);
  EXPECT_NEAR(ke1 / expected, 1.0, 0.02);
}

TEST(Solver, UnrBackendReproducesMpiPhysicsExactly) {
  // The communication backend must not change the numerics at all: after N
  // steps, the fields must agree bit-for-bit (same operations, same order).
  auto run_backend = [&](CommBackend backend) {
    World w(world_for(4));
    std::optional<unrlib::Unr> unr;
    if (backend == CommBackend::kUnr) unr.emplace(w);
    std::vector<double> snapshot;
    double div = 0;
    w.run([&](Rank& r) {
      auto sc = solver_cfg(16, 2, 2, backend, backend == CommBackend::kUnr ? &*unr : nullptr);
      Solver s(r, sc);
      s.init_velocity(
          [](double x, double y, double z) { return std::cos(x) * std::sin(y) * (1 + 0.1 * std::cos(z)); },
          [](double x, double y, double) { return -std::sin(x) * std::cos(y); },
          [](double x, double, double z) { return 0.05 * std::sin(z) * std::cos(x); });
      s.run(5);
      div = s.global_max_divergence();
      if (r.id() == 0) {
        for (std::size_t k = 0; k < s.decomp().nzl(); ++k)
          for (std::size_t j = 0; j < s.decomp().nyl(); ++j)
            for (std::size_t i = 0; i < s.decomp().nx; ++i)
              snapshot.push_back(s.u().at(i, static_cast<std::ptrdiff_t>(j),
                                          static_cast<std::ptrdiff_t>(k)));
      }
    });
    EXPECT_LT(div, 1e-10);
    return snapshot;
  };
  const auto mpi = run_backend(CommBackend::kMpi);
  const auto unr = run_backend(CommBackend::kUnr);
  ASSERT_EQ(mpi.size(), unr.size());
  ASSERT_FALSE(mpi.empty());
  for (std::size_t i = 0; i < mpi.size(); ++i) ASSERT_EQ(mpi[i], unr[i]) << i;
}

TEST(Solver, NoSlipChannelRunsStably) {
  World w(world_for(4));
  double ke_start = 0, ke_end = 0, div = 1;
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp = decomp_for(16, 16, 16, 2, 2);
    sc.lz = 2.0;
    sc.nu = 0.05;
    sc.dt = 1e-3;
    sc.bc = ZBc::kNoSlip;
    Solver s(r, sc);
    s.init_velocity(
        [](double, double, double z) { return z * (2.0 - z); },  // plug-ish profile
        [](double x, double y, double) { return 0.05 * std::sin(x) * std::cos(y); },
        [](double, double, double) { return 0.0; });
    ke_start = s.global_kinetic_energy();
    s.run(10);
    ke_end = s.global_kinetic_energy();
    div = s.global_max_divergence();
  });
  EXPECT_LT(div, 1e-10);
  EXPECT_GT(ke_end, 0.0);
  EXPECT_LT(ke_end, ke_start);  // no forcing: the flow decays
}

TEST(Solver, TimingsBreakdownAccumulates) {
  World w(world_for(4));
  StepTimings t;
  w.run([&](Rank& r) {
    auto sc = solver_cfg(16, 2, 2, CommBackend::kMpi, nullptr);
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double) { return std::cos(x) * std::sin(y); },
        [](double x, double y, double) { return -std::sin(x) * std::cos(y); },
        [](double, double, double) { return 0.0; });
    s.run(2);
    t = s.reduce_timings();
  });
  EXPECT_GT(t.total, 0u);
  EXPECT_GT(t.velocity, 0u);
  EXPECT_GT(t.ppe, 0u);
  EXPECT_GT(t.halo, 0u);
  EXPECT_GE(t.ppe, t.ppe_fft);
  EXPECT_GE(t.total, t.velocity);
}

}  // namespace
}  // namespace unr::powerllel
