// svc::RunSpec: canonical text round-trip, digest stability, the one flag
// schema, and the workload-format compatibility contract ("unrfuzz v1" files
// keep parsing after the v2 rev).
#include "svc/runspec.hpp"

#include <gtest/gtest.h>

#include "check/workload.hpp"
#include "svc/run.hpp"

using namespace unr;
using namespace unr::svc;

namespace {

RunSpec rich_spec() {
  RunSpec s;
  s.scenario = "pingpong";
  s.profile = "TH-2A";
  s.channel = "level0";
  s.nodes = 4;
  s.ranks_per_node = 2;
  s.seed = 987654321;
  s.shards = 2;
  s.full = true;
  s.time_budget_sec = 12.5;
  s.faults.drop_rate = 0.02;
  s.faults.delay_rate = 0.05;
  s.faults.delay_max = 5 * kUs;
  s.faults.nic_faults.push_back({1, 0, 40 * kUs});
  s.faults.cq_bursts.push_back({0, 1, 7 * kUs, 16, 3 * kUs});
  s.trace = true;
  s.trace_ring = 1u << 10;
  s.metrics = false;
  s.params["iters"] = 64;
  s.params["size"] = 4096;
  return s;
}

TEST(RunSpecText, RoundTripRich) {
  const RunSpec s = rich_spec();
  const std::string text = to_text(s);
  RunSpec back;
  std::string err;
  ASSERT_TRUE(from_text(text, back, &err)) << err << "\n" << text;
  EXPECT_EQ(s, back) << text;
  // Canonical: serializing the parse reproduces the text byte for byte.
  EXPECT_EQ(text, to_text(back));
}

TEST(RunSpecText, RoundTripDefaults) {
  RunSpec s;
  RunSpec back;
  std::string err;
  ASSERT_TRUE(from_text(to_text(s), back, &err)) << err;
  EXPECT_EQ(s, back);
}

TEST(RunSpecText, RoundTripEmbeddedWorkloads) {
  // parse(serialize(spec)) == spec for generated workloads across seeds and
  // fault modes — the satellite's core acceptance test.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    check::GenConfig gc;
    gc.faults = (seed % 2) == 0;
    RunSpec s;
    s.workload = check::generate(seed, gc);
    s.seed = s.workload->seed;
    const std::string text = to_text(s);
    RunSpec back;
    std::string err;
    ASSERT_TRUE(from_text(text, back, &err)) << "seed " << seed << ": " << err;
    EXPECT_EQ(s, back) << "seed " << seed;
    EXPECT_EQ(text, to_text(back)) << "seed " << seed;
  }
}

TEST(RunSpecText, PartialDocumentsUseDefaults) {
  RunSpec back;
  std::string err;
  ASSERT_TRUE(
      from_text("unrspec v1\nscenario pingpong\nrun seed=7\nend\n", back, &err))
      << err;
  EXPECT_EQ(back.scenario, "pingpong");
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.nodes, 2);
  EXPECT_EQ(back.channel, "native");
}

TEST(RunSpecText, RejectsMalformed) {
  RunSpec s;
  std::string err;
  EXPECT_FALSE(from_text("not a spec\n", s, &err));
  EXPECT_FALSE(from_text("unrspec v1\n", s, &err));  // missing end
  EXPECT_FALSE(from_text("unrspec v1\nbogus line here\nend\n", s, &err));
  EXPECT_FALSE(from_text("unrspec v1\nrun seed=notanumber\nend\n", s, &err));
  EXPECT_FALSE(from_text("unrspec v1\nchannel warp\nend\n", s, &err));
  EXPECT_FALSE(
      from_text("unrspec v1\nworkload unrfuzz v2\nseed 1\n", s, &err))
      << "unterminated workload block must fail";
}

TEST(RunSpecDigest, StableAndDiscriminating) {
  const RunSpec a = rich_spec();
  RunSpec b = rich_spec();
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_EQ(digest_hex(a), digest_hex(b));
  b.seed += 1;
  EXPECT_NE(digest(a), digest(b));
  RunSpec c = rich_spec();
  c.params["iters"] = 65;
  EXPECT_NE(digest(a), digest(c));
}

TEST(RunSpecFlags, SchemaDrivesParsing) {
  RunSpec s;
  std::string err;
  const char* flags[] = {"--scenario=pingpong", "--system=TH-2A", "--nodes=4",
                         "--rpn=2",             "--seed=99",      "--shards=3",
                         "--channel=level0",    "--full",         "--drop-rate=0.01",
                         "--param=iters=32"};
  for (const char* f : flags)
    ASSERT_EQ(apply_flag(s, f, &err), FlagResult::kOk) << f << ": " << err;
  EXPECT_EQ(s.scenario, "pingpong");
  EXPECT_EQ(s.profile, "TH-2A");
  EXPECT_EQ(s.nodes, 4);
  EXPECT_EQ(s.ranks_per_node, 2);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.shards, 3);
  EXPECT_EQ(s.channel, "level0");
  EXPECT_TRUE(s.full);
  EXPECT_DOUBLE_EQ(s.faults.drop_rate, 0.01);
  EXPECT_EQ(s.param("iters", 0), 32u);
  // The flag-built spec round-trips like any other.
  RunSpec back;
  ASSERT_TRUE(from_text(to_text(s), back, &err)) << err;
  EXPECT_EQ(s, back);
}

TEST(RunSpecFlags, UnknownAndMalformed) {
  RunSpec s;
  std::string err;
  EXPECT_EQ(apply_flag(s, "--definitely-not-a-flag", &err),
            FlagResult::kNotMine);
  EXPECT_EQ(apply_flag(s, "--seed=banana", &err), FlagResult::kError);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(apply_flag(s, "--channel=warp", &err), FlagResult::kError);
  EXPECT_EQ(apply_flag(s, "--nic-fault=1,2", &err), FlagResult::kError);
}

TEST(RunSpecFlags, EverySchemaFlagHasHelp) {
  for (const FlagInfo& f : flag_schema()) {
    EXPECT_NE(f.flag, nullptr);
    EXPECT_NE(f.help, nullptr);
    EXPECT_EQ(std::string(f.flag).rfind("--", 0), 0u) << f.flag;
  }
  EXPECT_FALSE(flags_help().empty());
}

TEST(WorkloadFormat, V2EmittedV1Accepted) {
  check::GenConfig gc;
  const check::WorkloadSpec w = check::generate(5, gc);
  std::string text = check::to_text(w);
  ASSERT_EQ(text.rfind("unrfuzz v2\n", 0), 0u) << text.substr(0, 32);
  // Old repro files carry the v1 header over the same body grammar.
  text.replace(0, std::string("unrfuzz v2").size(), "unrfuzz v1");
  check::WorkloadSpec back;
  std::string err;
  ASSERT_TRUE(check::from_text(text, back, &err)) << err;
  EXPECT_EQ(w, back);
}

TEST(RunSpecWorldConfig, MapsTopologyFaultsTelemetry) {
  const RunSpec s = rich_spec();
  const runtime::World::Config wc = to_world_config(s, "TH-XY");
  EXPECT_EQ(wc.nodes, 4);
  EXPECT_EQ(wc.ranks_per_node, 2);
  EXPECT_EQ(wc.seed, 987654321u);
  EXPECT_EQ(wc.shards, 2);
  EXPECT_TRUE(wc.deterministic_routing);
  EXPECT_DOUBLE_EQ(wc.faults.drop_rate, 0.02);
  ASSERT_EQ(wc.faults.nic_faults.size(), 1u);
  EXPECT_TRUE(wc.telemetry.trace.enabled);
  EXPECT_EQ(wc.telemetry.trace.ring_capacity, 1u << 10);
  EXPECT_FALSE(wc.telemetry.metrics);
  EXPECT_EQ(wc.profile.name, "TH-2A");
  RunSpec noprofile;
  EXPECT_EQ(to_world_config(noprofile, "HPC-IB").profile.name, "HPC-IB");
}

}  // namespace
