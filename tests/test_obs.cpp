// The observability layer: metrics registry semantics (labels, dedup,
// histograms, disabled mode, reset) and virtual-time tracer behavior (ring
// bounding, Chrome-JSON shape, byte-determinism across identical seeds).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::obs {
namespace {

TEST(Registry, RegisterLookupAndDedup) {
  Registry reg;
  Counter a = reg.counter("mod.ops");
  Counter b = reg.counter("mod.ops");  // same metric, same slot
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.counter_value("mod.ops"), 5u);
  EXPECT_EQ(reg.size(), 1u);

  // Labeled variants are distinct metrics; label order is irrelevant.
  Counter l1 = reg.counter("mod.ops", {{"node", "0"}, {"nic", "1"}});
  Counter l2 = reg.counter("mod.ops", {{"nic", "1"}, {"node", "0"}});
  l1.inc();
  l2.inc();
  EXPECT_EQ(reg.counter_value("mod.ops", {{"node", "0"}, {"nic", "1"}}), 2u);
  EXPECT_EQ(reg.counter_value("mod.ops"), 5u);  // unlabeled untouched
  EXPECT_EQ(reg.size(), 2u);

  Gauge g = reg.gauge("mod.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(reg.gauge_value("mod.depth"), 5);
  // Wrong-kind and absent lookups are 0 / null, not errors.
  EXPECT_EQ(reg.counter_value("mod.depth"), 0u);
  EXPECT_EQ(reg.gauge_value("nope"), 0);
  EXPECT_EQ(reg.histogram_slot("nope"), nullptr);
}

TEST(Registry, HistogramBucketsAndPercentiles) {
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(4), 8u);

  Registry reg;
  Histogram h = reg.histogram("lat");
  for (std::uint64_t v : {0ull, 1ull, 100ull, 100ull, 1000ull}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1201u);
  // Percentiles are bucket-approximate but must be monotone and bounded by
  // the containing log2 bucket.
  const double p50 = h.percentile(50);
  const double p99 = h.percentile(99);
  EXPECT_GE(p50, 64.0);    // 100 lives in [64, 127]
  EXPECT_LE(p50, 127.0);
  EXPECT_GE(p99, 512.0);   // 1000 lives in [512, 1023]
  EXPECT_LE(p99, 1023.0);
  EXPECT_LE(h.percentile(10), p50);
  EXPECT_LE(p50, p99);
  EXPECT_EQ(h.percentile(0), 0.0);

  const detail::HistSlot* slot = reg.histogram_slot("lat");
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->count, 5u);
}

TEST(Registry, DisabledHandsOutWorkingUnregisteredHandles) {
  Registry reg(false);
  Counter c = reg.counter("mod.ops");
  Histogram h = reg.histogram("mod.lat");
  c.inc(9);
  h.observe(42);
  // Handles work (legacy Stats snapshot shims depend on it)...
  EXPECT_EQ(c.value(), 9u);
  EXPECT_EQ(h.count(), 1u);
  // ...but nothing is registered or exported.
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.counter_value("mod.ops"), 0u);
  EXPECT_EQ(reg.histogram_slot("mod.lat"), nullptr);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"metrics\": [\n  ]"), std::string::npos);
}

TEST(Registry, ResetZeroesEverySlotButKeepsRegistrations) {
  Registry reg;
  Counter c = reg.counter("a");
  Gauge g = reg.gauge("b");
  Histogram h = reg.histogram("c");
  c.inc(4);
  g.set(-3);
  h.observe(10);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(reg.size(), 3u);  // still registered
  c.inc();                    // handles stay live after reset
  EXPECT_EQ(reg.counter_value("a"), 1u);
}

TEST(Registry, JsonDumpShape) {
  Registry reg;
  reg.counter("mod.ops", {{"rank", "3"}}).inc(2);
  reg.histogram("mod.lat").observe(100);
  std::ostringstream os;
  reg.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\": \"unr-metrics-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"mod.ops\""), std::string::npos);
  EXPECT_NE(j.find("\"rank\":\"3\""), std::string::npos);
  EXPECT_NE(j.find("\"type\": \"counter\", \"value\": 2"), std::string::npos);
  EXPECT_NE(j.find("\"type\": \"histogram\", \"count\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"buckets\": [[64,1]]"), std::string::npos);
}

TEST(Tracer, RingKeepsLastEventsAndCountsDropped) {
  Tracer tr;
  TracerConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  tr.configure(cfg);
  Time clock = 0;
  tr.bind_clock(&clock);
  const StrId cat = tr.intern("t");
  const StrId name = tr.intern("e");
  for (int i = 0; i < 20; ++i) {
    clock = static_cast<Time>(i) * 10;
    tr.instant(0, 0, cat, name, {{tr.intern("i"), i}});
  }
  EXPECT_EQ(tr.recorded(), 8u);
  EXPECT_EQ(tr.dropped(), 12u);
  std::ostringstream os;
  tr.write_json(os);
  const std::string j = os.str();
  // Oldest surviving event is i=12 at ts 120 ns = "0.120" us; i=11 was
  // overwritten.
  EXPECT_NE(j.find("\"ts\":0.120"), std::string::npos);
  EXPECT_EQ(j.find("\"ts\":0.110"), std::string::npos);
  EXPECT_NE(j.find("\"dropped\":12"), std::string::npos);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  Time clock = 5;
  tr.bind_clock(&clock);
  const StrId s = tr.intern("x");  // interning is always allowed
  tr.instant(0, 0, s, s);
  tr.complete(0, 0, s, s, 0, 5);
  tr.async_begin(0, 0, s, s, 1);
  tr.set_thread_name(0, 0, "nope");
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

// --- End-to-end: a traced simulation ---------------------------------------

// One seeded notified-PUT ping-pong with tracing + metrics on; returns the
// trace JSON and metrics JSON.
std::pair<std::string, std::string> traced_run(std::uint64_t seed) {
  runtime::World::Config wc;
  wc.profile = unr::make_th_xy();
  wc.seed = seed;
  wc.telemetry.trace.enabled = true;
  runtime::World w(wc);
  unrlib::Unr lib(w);
  const std::size_t size = 4 * KiB;
  const int iters = 6;
  w.run([&](runtime::Rank& r) {
    std::vector<std::byte> buf(size);
    const unrlib::MemHandle mh = lib.mem_reg(r.id(), buf.data(), size);
    const unrlib::SigId rsig = lib.sig_init(r.id(), 1);
    const unrlib::Blk my_blk = lib.blk_init(r.id(), mh, 0, size, rsig);
    const int peer = 1 - r.id();
    unrlib::Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
    const unrlib::Blk send_blk = lib.blk_init(r.id(), mh, 0, size);
    for (int i = 0; i < iters; ++i) {
      if (r.id() == 0) {
        lib.put(0, send_blk, peer_blk);
        lib.sig_wait(0, rsig);
        lib.sig_reset(0, rsig);
      } else {
        lib.sig_wait(1, rsig);
        lib.sig_reset(1, rsig);
        lib.put(1, send_blk, peer_blk);
      }
    }
  });
  std::ostringstream trace, metrics;
  w.kernel().telemetry().tracer().write_json(trace);
  w.kernel().telemetry().registry().write_json(metrics);
  return {trace.str(), metrics.str()};
}

TEST(Telemetry, TraceHasExpectedSpanFamilies) {
  const auto [trace, metrics] = traced_run(1);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("unr-trace-v1"), std::string::npos);
  // Flight lifecycle spans (async b/e on the rank track)...
  EXPECT_NE(trace.find("\"name\":\"put\",\"cat\":\"flight\",\"ph\":\"b\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"put\",\"cat\":\"flight\",\"ph\":\"e\""),
            std::string::npos);
  // ...polling-engine wakeups on the engine track...
  EXPECT_NE(trace.find("\"name\":\"drain\""), std::string::npos);
  EXPECT_NE(trace.find("polling-engine"), std::string::npos);
  // ...and rendezvous handshakes from the two-sided runtime (the Blk
  // exchange rides eager; this workload's handshake traffic is eager-only).
  EXPECT_NE(trace.find("\"cat\":\"rdv\""), std::string::npos);

  // Metrics carry the library + fabric counters that replaced the old
  // per-module stats structs.
  EXPECT_NE(metrics.find("\"name\": \"fabric.puts\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\": \"unr.puts\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\": \"unr.engine.drains\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\": \"comm.eager_sends\""), std::string::npos);
}

TEST(Telemetry, IdenticalSeedsProduceByteIdenticalOutputs) {
  const auto [trace_a, metrics_a] = traced_run(7);
  const auto [trace_b, metrics_b] = traced_run(7);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);

  const auto [trace_c, metrics_c] = traced_run(8);
  // A different seed shifts fabric jitter, so the timeline differs (metrics
  // may or may not — the op counts are identical — so only the trace is
  // asserted).
  EXPECT_NE(trace_a, trace_c);
  (void)metrics_c;
}

TEST(Telemetry, StatsShimsMatchRegistry) {
  runtime::World::Config wc;
  wc.profile = unr::make_th_xy();
  runtime::World w(wc);
  unrlib::Unr lib(w);
  w.run([&](runtime::Rank& r) {
    std::vector<std::byte> buf(256);
    const unrlib::MemHandle mh = lib.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      const unrlib::SigId rsig = lib.sig_init(1, 3);
      const unrlib::Blk rblk = lib.blk_init(1, mh, 0, 256, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      lib.sig_wait(1, rsig);
    } else {
      unrlib::Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const unrlib::Blk sblk = lib.blk_init(0, mh, 0, 256);
      for (int i = 0; i < 3; ++i) lib.put(0, sblk, rblk);
    }
  });
  Registry& reg = w.kernel().telemetry().registry();
  EXPECT_EQ(lib.stats().puts, 3u);
  EXPECT_EQ(reg.counter_value("unr.puts"), 3u);
  EXPECT_EQ(w.fabric().stats().puts, reg.counter_value("fabric.puts"));
  // reset_stats zeroes the whole registry; the shims see it immediately.
  lib.reset_stats();
  EXPECT_EQ(lib.stats().puts, 0u);
  EXPECT_EQ(w.fabric().stats().puts, 0u);
  EXPECT_EQ(reg.counter_value("fabric.puts"), 0u);
}

// The XferOptions redesign keeps the directional names as interchangeable
// aliases of one options struct.
static_assert(std::is_same_v<unrlib::PutOptions, unrlib::XferOptions>);
static_assert(std::is_same_v<unrlib::GetOptions, unrlib::XferOptions>);

}  // namespace
}  // namespace unr::obs
