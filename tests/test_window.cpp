// MPI-RMA window tests: fence, PSCW and lock/unlock synchronization — the
// Figure-4 baselines. Each scheme must expose completed data with its
// documented semantics.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "runtime/window.hpp"
#include "runtime/world.hpp"

namespace unr::runtime {
namespace {

World::Config cfg2(int nodes = 2) {
  World::Config c;
  c.nodes = nodes;
  c.ranks_per_node = 1;
  c.profile = unr::make_hpc_ib();
  c.deterministic_routing = true;
  return c;
}

TEST(Window, FenceMakesPutVisible) {
  World w(cfg2());
  std::array<double, 2> results{};
  w.run([&](Rank& r) {
    std::vector<double> expo(16, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 16 * sizeof(double));
    win->fence(r.id());
    if (r.id() == 0) {
      const double v = 3.25;
      win->put(0, 1, 4 * sizeof(double), &v, sizeof v);
    }
    win->fence(r.id());
    results[static_cast<std::size_t>(r.id())] = expo[4];
  });
  EXPECT_EQ(results[1], 3.25);
  EXPECT_EQ(results[0], 0.0);
}

TEST(Window, FenceWaitsForAllOrigins) {
  World w(cfg2(4));
  bool ok = true;
  w.run([&](Rank& r) {
    std::vector<int> expo(static_cast<std::size_t>(r.nranks()), -1);
    auto win = Window::create(r.comm(), r.id(), expo.data(),
                              expo.size() * sizeof(int));
    win->fence(r.id());
    // Everyone writes its id into everyone's slot.
    for (int t = 0; t < r.nranks(); ++t) {
      const int v = r.id();
      win->put(r.id(), t, static_cast<std::size_t>(r.id()) * sizeof(int), &v,
               sizeof v);
    }
    win->fence(r.id());
    for (int i = 0; i < r.nranks(); ++i)
      if (expo[static_cast<std::size_t>(i)] != i) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(Window, GetReadsRemote) {
  World w(cfg2());
  double got = 0;
  w.run([&](Rank& r) {
    std::vector<double> expo(8, r.id() == 1 ? 7.5 : 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 8 * sizeof(double));
    win->fence(r.id());
    if (r.id() == 0) {
      win->get(0, 1, 0, &got, sizeof got);
      win->flush(0);
    }
    win->fence(r.id());
  });
  EXPECT_EQ(got, 7.5);
}

TEST(Window, PscwExposesOnlyToGroup) {
  World w(cfg2());
  double seen = -1.0;
  w.run([&](Rank& r) {
    std::vector<double> expo(4, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 4 * sizeof(double));
    const std::array<int, 1> peer{1 - r.id()};
    if (r.id() == 0) {
      win->start(0, peer);
      const double v = 9.5;
      win->put(0, 1, 0, &v, sizeof v);
      win->complete(0);
    } else {
      win->post(1, peer);
      win->wait(1);
      seen = expo[0];
    }
  });
  EXPECT_EQ(seen, 9.5);
}

TEST(Window, PscwMultipleOps) {
  World w(cfg2());
  std::vector<double> final(8, 0.0);
  w.run([&](Rank& r) {
    std::vector<double> expo(8, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 8 * sizeof(double));
    const std::array<int, 1> peer{1 - r.id()};
    if (r.id() == 0) {
      win->start(0, peer);
      for (int i = 0; i < 8; ++i) {
        const double v = i * 1.5;
        win->put(0, 1, static_cast<std::size_t>(i) * sizeof(double), &v, sizeof v);
      }
      win->complete(0);
    } else {
      win->post(1, peer);
      win->wait(1);
      final = expo;
    }
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(final[static_cast<std::size_t>(i)], i * 1.5);
}

TEST(Window, LockUnlockCompletesAtTarget) {
  World w(cfg2());
  double seen = 0.0;
  w.run([&](Rank& r) {
    std::vector<double> expo(2, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 2 * sizeof(double));
    if (r.id() == 0) {
      win->lock(0, 1);
      const double v = 2.25;
      win->put(0, 1, sizeof(double), &v, sizeof v);
      win->unlock(0, 1);
      // Tell the target it can look now.
      char tok = 1;
      r.send(1, 1, &tok, 1);
    } else {
      char tok;
      r.recv(0, 1, &tok, 1);
      seen = expo[1];
    }
  });
  EXPECT_EQ(seen, 2.25);
}

TEST(Window, LockIsExclusive) {
  // Two origins hammer the same target under a lock; each read-modify-write
  // must be atomic with respect to the other.
  World w(cfg2(3));
  double final_value = -1;
  w.run([&](Rank& r) {
    std::vector<double> expo(1, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), sizeof(double));
    if (r.id() != 0) {
      for (int i = 0; i < 5; ++i) {
        win->lock(r.id(), 0);
        double v = 0;
        win->get(r.id(), 0, 0, &v, sizeof v);
        win->flush(r.id());
        v += 1.0;
        win->put(r.id(), 0, 0, &v, sizeof v);
        win->unlock(r.id(), 0);
      }
      char tok = 1;
      r.send(0, 9, &tok, 1);
    } else {
      char tok;
      r.recv(1, 9, &tok, 1);
      r.recv(2, 9, &tok, 1);
      final_value = expo[0];
    }
  });
  EXPECT_EQ(final_value, 10.0);
}

TEST(Window, TwoWindowsDoNotInterfere) {
  World w(cfg2());
  double a_seen = 0, b_seen = 0;
  w.run([&](Rank& r) {
    std::vector<double> ea(2, 0.0), eb(2, 0.0);
    auto wa = Window::create(r.comm(), r.id(), ea.data(), 2 * sizeof(double));
    auto wb = Window::create(r.comm(), r.id(), eb.data(), 2 * sizeof(double));
    wa->fence(r.id());
    wb->fence(r.id());
    if (r.id() == 0) {
      const double va = 1.0, vb = 2.0;
      wa->put(0, 1, 0, &va, sizeof va);
      wb->put(0, 1, 0, &vb, sizeof vb);
    }
    wa->fence(r.id());
    wb->fence(r.id());
    if (r.id() == 1) {
      a_seen = ea[0];
      b_seen = eb[0];
    }
  });
  EXPECT_EQ(a_seen, 1.0);
  EXPECT_EQ(b_seen, 2.0);
}

TEST(Window, FenceLatencyExceedsPscwForOnePut) {
  // Fence is collective (alltoall + counters): for a single small put
  // between two ranks it costs more than the PSCW handshake. This cost
  // ordering is part of the Figure-4 story.
  World wf(cfg2());
  Time fence_time = 0;
  wf.run([&](Rank& r) {
    std::vector<double> expo(1, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), sizeof(double));
    r.barrier();
    const Time t0 = r.now();
    win->fence(r.id());
    if (r.id() == 0) {
      const double v = 1;
      win->put(0, 1, 0, &v, sizeof v);
    }
    win->fence(r.id());
    if (r.id() == 1) fence_time = r.now() - t0;
  });

  World wp(cfg2());
  Time pscw_time = 0;
  wp.run([&](Rank& r) {
    std::vector<double> expo(1, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), sizeof(double));
    const std::array<int, 1> peer{1 - r.id()};
    r.barrier();
    const Time t0 = r.now();
    if (r.id() == 0) {
      win->start(0, peer);
      const double v = 1;
      win->put(0, 1, 0, &v, sizeof v);
      win->complete(0);
    } else {
      win->post(1, peer);
      win->wait(1);
      pscw_time = r.now() - t0;
    }
  });
  EXPECT_GT(fence_time, pscw_time);
}

}  // namespace
}  // namespace unr::runtime
