// The RMA-collective acceleration library (Section IV-E-3): persistent
// barrier / bcast / allgather built purely on UNR notified PUTs.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"
#include "unr/collectives.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {
namespace {

using runtime::Rank;
using runtime::World;

World::Config cfg(int nranks) {
  World::Config c;
  c.nodes = nranks;
  c.ranks_per_node = 1;
  c.profile = unr::make_th_xy();
  c.deterministic_routing = true;
  return c;
}

class RmaCollP : public ::testing::TestWithParam<int> {};

TEST_P(RmaCollP, BarrierSynchronizesRepeatedly) {
  const int p = GetParam();
  World w(cfg(p));
  Unr unr(w);
  bool ok = true;
  w.run([&](Rank& r) {
    RmaBarrier barrier(unr, r);
    for (int iter = 0; iter < 6; ++iter) {
      // Stagger arrivals; everyone must leave at/after the last arrival.
      const Time stagger = static_cast<Time>((r.id() * 7 + iter) % p) * 5 * kUs;
      r.kernel().sleep_for(stagger);
      const Time before = r.now();
      barrier.run();
      // The slowest arrival this round is at least (p-1)*... — conservative
      // check: nobody can exit before its own arrival.
      if (r.now() < before) ok = false;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_P(RmaCollP, BarrierActuallyWaitsForSlowest) {
  const int p = GetParam();
  if (p < 2) return;
  World w(cfg(p));
  Unr unr(w);
  std::vector<Time> exit_time(static_cast<std::size_t>(p));
  const Time slow = 3 * kMs;
  w.run([&](Rank& r) {
    RmaBarrier barrier(unr, r);
    if (r.id() == p - 1) r.kernel().sleep_for(slow);
    barrier.run();
    exit_time[static_cast<std::size_t>(r.id())] = r.now();
  });
  for (Time t : exit_time) EXPECT_GE(t, slow);
}

TEST_P(RmaCollP, BcastFromEveryRootPosition) {
  const int p = GetParam();
  const int root = p / 2;
  World w(cfg(p));
  Unr unr(w);
  int good = 0;
  w.run([&](Rank& r) {
    std::vector<double> buf(32, -1.0);
    RmaBcast bcast(unr, r, root, buf.data(), buf.size() * sizeof(double));
    for (int iter = 0; iter < 4; ++iter) {
      if (r.id() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = iter * 100.0 + static_cast<double>(i);
      bcast.run();
      bool ok = true;
      for (std::size_t i = 0; i < buf.size(); ++i)
        if (buf[i] != iter * 100.0 + static_cast<double>(i)) ok = false;
      if (ok && r.id() != root) ++good;
    }
  });
  EXPECT_EQ(good, (p - 1) * 4);
}

TEST_P(RmaCollP, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  World w(cfg(p));
  Unr unr(w);
  int good = 0;
  w.run([&](Rank& r) {
    constexpr std::size_t kInts = 16;
    std::vector<int> buf(static_cast<std::size_t>(p) * kInts, -1);
    RmaAllgather ag(unr, r, buf.data(), kInts * sizeof(int));
    for (int iter = 0; iter < 4; ++iter) {
      // My own block, in place.
      for (std::size_t i = 0; i < kInts; ++i)
        buf[static_cast<std::size_t>(r.id()) * kInts + i] =
            iter * 1000 + r.id() * 10 + static_cast<int>(i % 7);
      ag.run();
      bool ok = true;
      for (int src = 0; src < p; ++src)
        for (std::size_t i = 0; i < kInts; ++i)
          if (buf[static_cast<std::size_t>(src) * kInts + i] !=
              iter * 1000 + src * 10 + static_cast<int>(i % 7))
            ok = false;
      if (ok) ++good;
    }
  });
  EXPECT_EQ(good, 4 * p);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RmaCollP, ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "p" + std::to_string(i.param);
                         });

TEST(RmaCollectives, Level4BarrierBeatsTwoSidedBarrier) {
  // With software polling, the RMA barrier's per-round notification pays
  // the polling phase delay and roughly ties the two-sided barrier. With
  // the level-4 hardware offload (no polling thread), it wins outright —
  // the acceleration-library version of the paper's co-design argument.
  const int p = 8;
  auto measure = [&](ChannelKind kind, bool rma) {
    World w(cfg(p));
    Unr::Config uc;
    uc.channel = kind;
    Unr unr(w, uc);
    Time elapsed = 0;
    w.run([&](Rank& r) {
      RmaBarrier barrier(unr, r);
      r.barrier();  // settle setup traffic
      const Time t0 = r.now();
      for (int i = 0; i < 10; ++i) {
        if (rma)
          barrier.run();
        else
          r.barrier();
      }
      if (r.id() == 0) elapsed = r.now() - t0;
    });
    return elapsed;
  };
  const Time two_sided = measure(ChannelKind::kNative, false);
  const Time rma_polled = measure(ChannelKind::kNative, true);
  const Time rma_hw = measure(ChannelKind::kLevel4, true);
  EXPECT_LT(rma_hw, two_sided);
  EXPECT_LT(rma_hw, rma_polled);
  // Polled RMA stays in the same ballpark as two-sided (within 25%).
  EXPECT_LT(static_cast<double>(rma_polled), 1.25 * static_cast<double>(two_sided));
}

}  // namespace
}  // namespace unr::unrlib
