// Unit and property tests of the MMAS signal (Section IV-B): counter layout,
// addend algebra, overflow-detect bit, reset diagnostics, and the
// encode/decode of addend codes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hpp"
#include "sim/kernel.hpp"
#include "unr/signal.hpp"

namespace unr::unrlib {
namespace {

class WarnCapture {
 public:
  WarnCapture() {
    set_log_level(LogLevel::kOff);
    set_warn_handler([this](const std::string& m) { messages_.push_back(m); });
  }
  ~WarnCapture() {
    set_warn_handler(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  std::size_t count() const { return messages_.size(); }
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

TEST(Signal, SingleEventTriggers) {
  Signal s(1, 32);
  EXPECT_FALSE(s.triggered());
  s.apply(Signal::single_addend());
  EXPECT_TRUE(s.triggered());
}

TEST(Signal, CountsDownNumEvents) {
  Signal s(5, 32);
  for (int i = 0; i < 4; ++i) {
    s.apply(-1);
    EXPECT_FALSE(s.triggered());
  }
  s.apply(-1);
  EXPECT_TRUE(s.triggered());
}

TEST(Signal, NumEventMustFitInN) {
  EXPECT_THROW(Signal(16, 4), std::logic_error);   // 16 needs 5 bits
  EXPECT_NO_THROW(Signal(15, 4));
  EXPECT_THROW(Signal(0, 4), std::logic_error);
  EXPECT_THROW(Signal(1, 0), std::logic_error);
  EXPECT_THROW(Signal(1, 62), std::logic_error);
}

TEST(Signal, MultiChannelAggregation) {
  // One message split into K=4 sub-messages: only when all four fragments
  // have arrived does the counter fall to zero (paper Fig. 2 algebra).
  const int n = 32;
  Signal s(1, n);
  const std::int64_t lead = Signal::lead_addend(4, n);
  const std::int64_t follow = Signal::follow_addend(n);
  EXPECT_EQ(lead, -1 + (std::int64_t{3} << 33));
  EXPECT_EQ(follow, -(std::int64_t{1} << 33));
  s.apply(follow);   // fragments may arrive in any order
  EXPECT_FALSE(s.triggered());
  s.apply(lead);
  EXPECT_FALSE(s.triggered());
  s.apply(follow);
  EXPECT_FALSE(s.triggered());
  s.apply(follow);
  EXPECT_TRUE(s.triggered());
}

TEST(Signal, Figure2Scenario) {
  // Receiver waits for 2 messages; sender 1 splits its message into four
  // sub-messages over four NICs, sender 2 sends over one channel.
  const int n = 32;
  Signal s(2, n);
  s.apply(Signal::single_addend());                 // sender 2's message
  EXPECT_FALSE(s.triggered());
  s.apply(Signal::lead_addend(4, n));               // sender 1, fragment 1
  for (int i = 0; i < 2; ++i) s.apply(Signal::follow_addend(n));
  EXPECT_FALSE(s.triggered());
  s.apply(Signal::follow_addend(n));                // last fragment
  EXPECT_TRUE(s.triggered());
  EXPECT_FALSE(s.overflow_detected());
}

TEST(Signal, OverflowBitSetByExtraEvent) {
  WarnCapture warns;
  Signal s(1, 16);
  s.apply(-1);
  EXPECT_TRUE(s.triggered());
  s.apply(-1);  // one event too many: the borrow flips bit N
  EXPECT_TRUE(s.overflow_detected());
  EXPECT_FALSE(s.triggered());
  EXPECT_TRUE(s.test() == false);
  EXPECT_GE(warns.count(), 1u);  // test() reports the overflow
}

TEST(Signal, TransientFragmentBorrowDoesNotLookLikeOverflow) {
  // A follower fragment arriving first drives the counter negative, but the
  // overflow-detect bit (bit N) must stay clear: the event field is intact.
  const int n = 16;
  Signal s(3, n);
  s.apply(Signal::follow_addend(n));
  EXPECT_LT(s.counter(), 0);
  EXPECT_FALSE(s.overflow_detected());
  s.apply(Signal::lead_addend(2, n));
  EXPECT_EQ(s.counter(), 2);  // one of three events consumed
  EXPECT_FALSE(s.overflow_detected());
}

TEST(Signal, ResetRearmsAndChecksEarlyArrival) {
  WarnCapture warns;
  Signal s(2, 32);
  s.apply(-1);
  s.apply(-1);
  EXPECT_TRUE(s.triggered());
  s.reset();
  EXPECT_EQ(warns.count(), 0u);  // clean reset: no warning
  EXPECT_EQ(s.counter(), 2);

  s.apply(-1);  // a message arrives "early" relative to the next reset
  s.reset();
  EXPECT_EQ(warns.count(), 1u);
  EXPECT_NE(warns.messages()[0].find("earlier than expected"), std::string::npos);
}

TEST(Signal, ResetAfterOverflowWarnsSpecifically) {
  WarnCapture warns;
  Signal s(1, 8);
  s.apply(-1);
  s.apply(-1);
  s.reset();
  ASSERT_GE(warns.count(), 1u);
  EXPECT_NE(warns.messages().back().find("overflow"), std::string::npos);
}

TEST(Signal, WaitReturnsImmediatelyWhenTriggered) {
  sim::Kernel k;
  k.run(1, [&](int) {
    Signal s(1, 32);
    s.apply(-1);
    s.wait();  // must not block
    EXPECT_EQ(sim::Kernel::current()->now(), 0u);
  });
}

TEST(Signal, WaitBlocksUntilApply) {
  sim::Kernel k;
  Signal s(1, 32);
  Time woke = 0;
  k.run(1, [&](int) {
    sim::Kernel::current()->post_in(750, [&] { s.apply(-1); });
    s.wait();
    woke = sim::Kernel::current()->now();
  });
  EXPECT_EQ(woke, 750u);
}

TEST(Signal, HwNotifyWakesWaiters) {
  // Level-4 path: the NIC adds to the raw counter, then calls hw_notify.
  sim::Kernel k;
  Signal s(1, 32);
  bool woke = false;
  k.run(1, [&](int) {
    sim::Kernel::current()->post_in(100, [&] {
      *s.raw_counter() += -1;
      s.hw_notify();
    });
    s.wait();
    woke = true;
  });
  EXPECT_TRUE(woke);
}

TEST(Signal, HwNotifyWakesWaiterOnOverflow) {
  // Regression: an over-arrival through the hardware path flips the overflow
  // bit and carries the counter past zero without ever equalling it. The
  // waiter must still wake (and see the overflow warning) — it used to hang.
  WarnCapture warns;
  sim::Kernel k;
  Signal s(1, 16);
  bool woke = false;
  k.run(1, [&](int) {
    sim::Kernel::current()->post_in(100, [&] {
      *s.raw_counter() += -2;  // two events against num_event = 1
      s.hw_notify();
    });
    s.wait();
    woke = true;
  });
  EXPECT_TRUE(woke);
  EXPECT_TRUE(s.overflow_detected());
  EXPECT_GE(warns.count(), 1u);
}

TEST(Signal, ApplyOverflowAlsoWakesWaiter) {
  // Same over-arrival through the software path.
  WarnCapture warns;
  sim::Kernel k;
  Signal s(1, 16);
  bool woke = false;
  k.run(1, [&](int) {
    sim::Kernel::current()->post_in(100, [&] { s.apply(-2); });
    s.wait();
    woke = true;
  });
  EXPECT_TRUE(woke);
  EXPECT_TRUE(s.overflow_detected());
}

TEST(Signal, WaitForTimesOutWithoutEvents) {
  sim::Kernel k;
  Signal s(1, 32);
  bool done = true;
  Time woke = 0;
  k.run(1, [&](int) {
    done = s.wait_for(5 * kUs);
    woke = sim::Kernel::current()->now();
  });
  EXPECT_FALSE(done);
  EXPECT_EQ(woke, 5 * kUs);
  EXPECT_FALSE(s.triggered());
}

TEST(Signal, WaitForReturnsEarlyOnTrigger) {
  sim::Kernel k;
  Signal s(1, 32);
  bool done = false;
  Time woke = 0;
  k.run(1, [&](int) {
    sim::Kernel::current()->post_in(750, [&] { s.apply(-1); });
    done = s.wait_for(5 * kUs);
    woke = sim::Kernel::current()->now();
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(woke, 750u);
}

TEST(Signal, AddendCodeRoundTrip) {
  for (int n : {4, 8, 16, 32, 48}) {
    EXPECT_EQ(Signal::encode_addend(-1, n), 0);
    EXPECT_EQ(Signal::decode_addend(0, n), -1);
    EXPECT_EQ(Signal::decode_addend(-1, n), Signal::follow_addend(n));
    EXPECT_EQ(Signal::encode_addend(Signal::follow_addend(n), n), -1);
    for (int k : {2, 3, 4, 7, 64}) {
      const std::int64_t lead = Signal::lead_addend(k, n);
      const std::int64_t code = Signal::encode_addend(lead, n);
      EXPECT_EQ(code, k - 1);
      EXPECT_EQ(Signal::decode_addend(code, n), lead);
    }
  }
}

// ---- Property sweep: any interleaving of M messages (some split into K
// fragments) must trigger exactly when everything arrived.
struct MmasCase {
  int n_bits;
  int messages;
  int split_k;  // every message split into this many fragments (1 = none)
};

class MmasProperty : public ::testing::TestWithParam<MmasCase> {};

TEST_P(MmasProperty, TriggersExactlyAtFullArrival) {
  const auto c = GetParam();
  Signal s(c.messages, c.n_bits);
  // Build the addend multiset.
  std::vector<std::int64_t> addends;
  for (int m = 0; m < c.messages; ++m) {
    if (c.split_k == 1) {
      addends.push_back(Signal::single_addend());
    } else {
      addends.push_back(Signal::lead_addend(c.split_k, c.n_bits));
      for (int f = 1; f < c.split_k; ++f)
        addends.push_back(Signal::follow_addend(c.n_bits));
    }
  }
  // A deterministic "shuffle": apply in stride order to mix leads/followers.
  const std::size_t sz = addends.size();
  const std::size_t stride = sz > 3 ? 3 : 1;
  std::size_t applied = 0;
  std::size_t i = 0;
  std::vector<bool> used(sz, false);
  while (applied < sz) {
    while (used[i]) i = (i + 1) % sz;
    s.apply(addends[i]);
    used[i] = true;
    ++applied;
    EXPECT_FALSE(s.overflow_detected());
    if (applied < sz)
      EXPECT_FALSE(s.triggered()) << "triggered early at " << applied << "/" << sz;
    i = (i + stride) % sz;
  }
  EXPECT_TRUE(s.triggered());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmasProperty,
    ::testing::Values(MmasCase{8, 1, 1}, MmasCase{8, 3, 1}, MmasCase{8, 1, 2},
                      MmasCase{8, 2, 4}, MmasCase{16, 5, 3}, MmasCase{32, 1, 4},
                      MmasCase{32, 7, 2}, MmasCase{32, 4, 8}, MmasCase{48, 2, 16},
                      MmasCase{4, 15, 1}, MmasCase{20, 9, 5}),
    [](const ::testing::TestParamInfo<MmasCase>& info) {
      return "N" + std::to_string(info.param.n_bits) + "_M" +
             std::to_string(info.param.messages) + "_K" +
             std::to_string(info.param.split_k);
    });

}  // namespace
}  // namespace unr::unrlib
