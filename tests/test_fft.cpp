// FFT kernel tests: agreement with a naive DFT, round-trip identity, strided
// batches, and the finite-difference Laplacian eigenvalues.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "powerllel/fft.hpp"

namespace unr::powerllel {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n);
  std::vector<Complex> ref(n);
  dft_reference(x.data(), ref.data(), n, false);
  fft_inplace(x.data(), n, false);
  EXPECT_LT(max_err(x, ref), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n + 1);
  const auto orig = x;
  fft_inplace(x.data(), n, false);
  fft_inplace(x.data(), n, true);
  EXPECT_LT(max_err(x, orig), 1e-12 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_THROW(fft_inplace(x.data(), 6, false), std::logic_error);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  const std::size_t k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k0 * i) /
                       static_cast<double>(n);
    x[i] = Complex(std::cos(ang), std::sin(ang));
  }
  fft_inplace(x.data(), n, false);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(x[k]);
    if (k == k0)
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(mag, 0.0, 1e-9);
  }
}

TEST(Fft, BatchTransformsEachLine) {
  const std::size_t n = 32, batch = 5;
  auto all = random_signal(n * batch, 7);
  auto expect = all;
  for (std::size_t b = 0; b < batch; ++b) fft_inplace(expect.data() + b * n, n, false);
  fft_batch(all.data(), n, batch, false);
  EXPECT_LT(max_err(all, expect), 1e-12);
}

TEST(Fft, StridedMatchesContiguous) {
  // Transform the "columns" of an 8 x 16 array (stride 8) and compare with
  // explicitly gathered lines.
  const std::size_t nx = 8, ny = 16;
  auto grid = random_signal(nx * ny, 11);
  auto copy = grid;
  fft_strided(grid.data(), ny, /*elem_stride=*/nx, /*batch=*/nx, /*line_stride=*/1,
              false);
  for (std::size_t i = 0; i < nx; ++i) {
    std::vector<Complex> line(ny);
    for (std::size_t j = 0; j < ny; ++j) line[j] = copy[i + nx * j];
    fft_inplace(line.data(), ny, false);
    for (std::size_t j = 0; j < ny; ++j)
      EXPECT_LT(std::abs(grid[i + nx * j] - line[j]), 1e-12);
  }
}

TEST(Fft, LaplacianEigenvalues) {
  // lambda_k = (2 - 2cos(2 pi k / n)) / h^2; check k=0 and the Nyquist mode,
  // and that the eigenvalue matches the actual FD operator on a pure tone.
  const std::size_t n = 32;
  const double h = 0.1;
  EXPECT_DOUBLE_EQ(laplacian_eigenvalue(0, n, h), 0.0);
  EXPECT_NEAR(laplacian_eigenvalue(n / 2, n, h), 4.0 / (h * h), 1e-12);

  const std::size_t k0 = 3;
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i)
    f[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(k0 * i) /
                    static_cast<double>(n));
  const double lam = laplacian_eigenvalue(k0, n, h);
  for (std::size_t i = 0; i < n; ++i) {
    const double lap =
        (f[(i + 1) % n] - 2.0 * f[i] + f[(i + n - 1) % n]) / (h * h);
    EXPECT_NEAR(lap, -lam * f[i], 1e-9);
  }
}

}  // namespace
}  // namespace unr::powerllel
