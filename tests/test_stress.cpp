// Stress and fuzz tests: randomized (but seeded and deterministic) traffic
// patterns that exercise matching, reordering, aggregation and epoch logic
// far beyond the directed tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "runtime/window.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr {
namespace {

using runtime::Rank;
using runtime::RequestPtr;
using runtime::Window;
using runtime::World;
using unrlib::Blk;
using unrlib::MemHandle;
using unrlib::SigId;
using unrlib::Unr;

TEST(Stress, RandomizedTwoSidedTrafficAllDelivered) {
  // Every rank sends a deterministic pseudo-random set of messages (peer,
  // tag, size); every rank posts the matching receives in a different
  // order. Jitter is ON: the matching logic must survive arbitrary
  // reordering between pairs.
  const int p = 6;
  const int msgs_per_pair = 8;
  World::Config wc;
  wc.nodes = p;
  wc.profile = make_hpc_roce();  // big jitter
  wc.seed = 77;
  World w(wc);

  auto size_of = [](int src, int dst, int k) {
    // Mix of eager and rendezvous sizes, deterministic per message.
    const std::uint64_t h = static_cast<std::uint64_t>(src * 131 + dst * 17 + k * 7);
    return 16 + (h * 2654435761u) % (40 * KiB);
  };
  auto fill_byte = [](int src, int dst, int k) {
    return static_cast<std::byte>((src * 5 + dst * 3 + k) & 0xFF);
  };

  int bad = 0;
  w.run([&](Rank& r) {
    std::vector<std::vector<std::byte>> sbufs, rbufs;
    std::vector<RequestPtr> reqs;
    // Post all receives in a scrambled order.
    struct RecvSlot {
      int src, k;
      std::size_t idx;
    };
    std::vector<RecvSlot> slots;
    for (int src = 0; src < p; ++src) {
      if (src == r.id()) continue;
      for (int k = 0; k < msgs_per_pair; ++k) {
        rbufs.emplace_back(size_of(src, r.id(), k));
        slots.push_back({src, k, rbufs.size() - 1});
      }
    }
    Rng rng(1000 + static_cast<std::uint64_t>(r.id()));
    for (std::size_t i = slots.size(); i > 1; --i)
      std::swap(slots[i - 1], slots[rng.below(i)]);
    for (const auto& s : slots)
      reqs.push_back(r.irecv(s.src, s.k, rbufs[s.idx].data(), rbufs[s.idx].size()));

    // Fire all sends, also scrambled.
    struct SendSlot {
      int dst, k;
    };
    std::vector<SendSlot> sends;
    for (int dst = 0; dst < p; ++dst) {
      if (dst == r.id()) continue;
      for (int k = 0; k < msgs_per_pair; ++k) sends.push_back({dst, k});
    }
    for (std::size_t i = sends.size(); i > 1; --i)
      std::swap(sends[i - 1], sends[rng.below(i)]);
    for (const auto& s : sends) {
      sbufs.emplace_back(size_of(r.id(), s.dst, s.k), fill_byte(r.id(), s.dst, s.k));
      reqs.push_back(
          r.isend(s.dst, s.k, sbufs.back().data(), sbufs.back().size()));
    }
    r.wait_all(reqs);

    for (const auto& s : slots) {
      const auto& buf = rbufs[s.idx];
      const std::byte want = fill_byte(s.src, r.id(), s.k);
      for (std::byte b : buf)
        if (b != want) {
          ++bad;
          break;
        }
    }
  });
  EXPECT_EQ(bad, 0);
}

TEST(Stress, ManySignalsManyMessagesInterleaved) {
  // 64 independent signals per rank, notified by interleaved puts from all
  // peers under jitter; each signal must trigger exactly on its own count.
  const int p = 4;
  const int sigs_per_rank = 64;
  World::Config wc;
  wc.nodes = p;
  wc.profile = make_th_xy();
  wc.seed = 5;
  World w(wc);
  Unr unr(w);
  int bad = 0;
  w.run([&](Rank& r) {
    // Each signal s on rank t is fed one byte by every other rank.
    std::vector<std::byte> inbox(static_cast<std::size_t>(sigs_per_rank * p));
    const MemHandle mh = unr.mem_reg(r.id(), inbox.data(), inbox.size());
    std::vector<SigId> sigs(sigs_per_rank);
    std::vector<Blk> my_slots(static_cast<std::size_t>(sigs_per_rank * p));
    for (int s = 0; s < sigs_per_rank; ++s) {
      sigs[static_cast<std::size_t>(s)] = unr.sig_init(r.id(), p - 1);
      for (int src = 0; src < p; ++src)
        my_slots[static_cast<std::size_t>(s * p + src)] =
            unr.blk_init(r.id(), mh, static_cast<std::size_t>(s * p + src), 1,
                         sigs[static_cast<std::size_t>(s)]);
    }
    // Ship each peer its column of slots.
    std::vector<Blk> targets(static_cast<std::size_t>(sigs_per_rank * p));
    {
      std::vector<RequestPtr> reqs;
      std::vector<std::vector<Blk>> cols(static_cast<std::size_t>(p));
      for (int peer = 0; peer < p; ++peer) {
        if (peer == r.id()) continue;
        auto& col = cols[static_cast<std::size_t>(peer)];
        col.resize(static_cast<std::size_t>(sigs_per_rank));
        for (int s = 0; s < sigs_per_rank; ++s)
          col[static_cast<std::size_t>(s)] =
              my_slots[static_cast<std::size_t>(s * p + peer)];
        reqs.push_back(r.irecv(peer, 1,
                               targets.data() + static_cast<std::size_t>(peer) *
                                                    sigs_per_rank,
                               sizeof(Blk) * static_cast<std::size_t>(sigs_per_rank)));
        reqs.push_back(r.isend(peer, 1, col.data(),
                               sizeof(Blk) * static_cast<std::size_t>(sigs_per_rank)));
      }
      r.wait_all(reqs);
    }

    // Fire all notifications in a scrambled order.
    std::byte one{1};
    std::vector<std::byte> src_byte(1, one);
    const MemHandle smh = unr.mem_reg(r.id(), src_byte.data(), 1);
    const Blk src = unr.blk_init(r.id(), smh, 0, 1);
    struct Shot {
      int peer, s;
    };
    std::vector<Shot> shots;
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r.id()) continue;
      for (int s = 0; s < sigs_per_rank; ++s) shots.push_back({peer, s});
    }
    Rng rng(42 + static_cast<std::uint64_t>(r.id()));
    for (std::size_t i = shots.size(); i > 1; --i)
      std::swap(shots[i - 1], shots[rng.below(i)]);
    for (const auto& shot : shots)
      unr.put(r.id(), src,
              targets[static_cast<std::size_t>(shot.peer) * sigs_per_rank +
                      static_cast<std::size_t>(shot.s)]);

    // Waiting order scrambled too.
    std::vector<int> order(static_cast<std::size_t>(sigs_per_rank));
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    for (int s : order) {
      unr.sig_wait(r.id(), sigs[static_cast<std::size_t>(s)]);
      if (unr.sig_counter(r.id(), sigs[static_cast<std::size_t>(s)]) != 0) ++bad;
    }
    // Everyone's byte arrived?
    for (int s = 0; s < sigs_per_rank; ++s)
      for (int srcr = 0; srcr < p; ++srcr)
        if (srcr != r.id() &&
            inbox[static_cast<std::size_t>(s * p + srcr)] != one)
          ++bad;
  });
  EXPECT_EQ(bad, 0);
}

TEST(Stress, SplitPutsUnderHeavyJitterAggregateCorrectly) {
  // Multi-NIC fragment aggregation with large adaptive-routing jitter: the
  // MMAS counter must tolerate every fragment interleaving.
  World::Config wc;
  wc.profile = make_th_xy();
  wc.profile.jitter = 5000;  // brutal reordering
  wc.seed = 31;
  World w(wc);
  Unr::Config uc;
  uc.split_threshold = 1 * KiB;
  uc.max_split = 8;  // more fragments than NICs: round-robin over both
  Unr unr(w, uc);
  int good = 0;
  const int iters = 10;
  w.run([&](Rank& r) {
    const std::size_t bytes = 64 * KiB;
    std::vector<std::byte> buf(bytes);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      for (int it = 0; it < iters; ++it) {
        unr.sig_wait(1, rsig);
        bool ok = true;
        for (std::size_t i = 0; i < bytes; i += 997)
          if (buf[i] != static_cast<std::byte>((i + static_cast<std::size_t>(it)) & 0xFF))
            ok = false;
        if (ok) ++good;
        unr.sig_reset(1, rsig);
        char ack = 1;
        r.send(0, 2, &ack, 1);
      }
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const SigId ssig = unr.sig_init(0, 1);
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < bytes; ++i)
          buf[i] = static_cast<std::byte>((i + static_cast<std::size_t>(it)) & 0xFF);
        unr.put(0, unr.blk_init(0, mh, 0, bytes, ssig), rblk);
        unr.sig_wait(0, ssig);
        unr.sig_reset(0, ssig);
        char ack;
        r.recv(1, 2, &ack, 1);
      }
    }
  });
  EXPECT_EQ(good, iters);
  EXPECT_EQ(unr.stats().fragments, static_cast<std::uint64_t>(iters * 7));
}

TEST(Stress, WindowEpochChurn) {
  // Alternating fence and PSCW epochs with varying op counts on the same
  // window: cumulative counters must never confuse epochs.
  const int p = 4;
  World::Config wc;
  wc.nodes = p;
  wc.profile = make_hpc_ib();
  wc.seed = 9;
  World w(wc);
  int bad = 0;
  w.run([&](Rank& r) {
    std::vector<double> expo(64, 0.0);
    auto win = Window::create(r.comm(), r.id(), expo.data(), 64 * sizeof(double));
    Rng rng(7);  // same stream everywhere: identical epoch structure
    for (int epoch = 0; epoch < 8; ++epoch) {
      const int writer = static_cast<int>(rng.below(p));
      const int nops = 1 + static_cast<int>(rng.below(5));
      win->fence(r.id());
      if (r.id() == writer) {
        for (int k = 0; k < nops; ++k) {
          const double v = epoch * 100 + k;
          win->put(r.id(), (writer + 1) % p, static_cast<std::size_t>(k) * sizeof(double),
                   &v, sizeof v);
        }
      }
      win->fence(r.id());
      if (r.id() == (writer + 1) % p) {
        for (int k = 0; k < nops; ++k)
          if (expo[static_cast<std::size_t>(k)] != epoch * 100 + k) ++bad;
      }
    }
  });
  EXPECT_EQ(bad, 0);
}

TEST(Stress, LargeWorldBarrierAndReduce) {
  // 96 ranks across 48 nodes: the actor scheduler, collectives and fabric
  // must handle a wide world.
  World::Config wc;
  wc.nodes = 48;
  wc.ranks_per_node = 2;
  wc.profile = make_th_xy();
  World w(wc);
  double result = 0;
  w.run([&](Rank& r) {
    double v = static_cast<double>(r.id());
    r.allreduce_sum(&v, 1);
    r.barrier();
    if (r.id() == 0) result = v;
  });
  EXPECT_DOUBLE_EQ(result, 96.0 * 95.0 / 2.0);
}

}  // namespace
}  // namespace unr
