// Quickstart: the paper's Code 1 -> Code 2 migration, runnable.
//
// A producer repeatedly sends a buffer to a consumer. First the classical
// two-sided version (Code 1), then the UNR version (Code 2): registered
// memory, transportable BLK handles instead of remote-offset arithmetic,
// notified PUT, and the bug-avoiding signal discipline
// (wait -> use -> reset after the buffer is ready again).
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

constexpr int kIters = 10;
constexpr std::size_t kCount = 1024;  // doubles per message

/// Code 1: plain MPI-style two-sided communication.
Time run_two_sided(const SystemProfile& prof) {
  World::Config wc;
  wc.profile = prof;
  World w(wc);
  w.run([&](Rank& r) {
    std::vector<double> buf(kCount);
    for (int it = 0; it < kIters; ++it) {
      if (r.id() == 0) {
        std::iota(buf.begin(), buf.end(), static_cast<double>(it));
        r.send(1, 0, buf.data(), buf.size() * sizeof(double));
        char ack;  // consumer paces the producer in both versions
        r.recv(1, 1, &ack, 1);
      } else {
        r.recv(0, 0, buf.data(), buf.size() * sizeof(double));
        char ack = 1;
        r.send(0, 1, &ack, 1);
      }
    }
  });
  return w.elapsed();
}

/// Code 2: the same exchange through UNR notified PUT.
Time run_unr(const SystemProfile& prof) {
  World::Config wc;
  wc.profile = prof;
  World w(wc);
  Unr unr(w);
  bool ok = true;
  w.run([&](Rank& r) {
    std::vector<double> buf(kCount);

    if (r.id() == 0) {  // sender
      const MemHandle mr = unr.mem_reg(0, buf.data(), kCount * sizeof(double));
      const SigId send_sig = unr.sig_init(0, 1);  // trigger after 1 event
      const Blk send_blk = unr.blk_init(0, mr, 0, kCount * sizeof(double), send_sig);
      Blk rmt_blk;  // the receiver ships its receive address once, up front
      r.recv(1, 0, &rmt_blk, sizeof rmt_blk);

      for (int it = 0; it < kIters; ++it) {
        std::iota(buf.begin(), buf.end(), static_cast<double>(it));
        unr.put(0, send_blk, rmt_blk);
        unr.sig_wait(0, send_sig);   // local completion: buffer reusable
        unr.sig_reset(0, send_sig);
        // Pre-synchronization for the next overwrite of the remote buffer
        // hides in the consumer's ack (Section V-A).
        char ack;
        r.recv(1, 1, &ack, 1);
      }
    } else {  // receiver
      const MemHandle mr = unr.mem_reg(1, buf.data(), kCount * sizeof(double));
      const SigId recv_sig = unr.sig_init(1, 1);
      const Blk recv_blk = unr.blk_init(1, mr, 0, kCount * sizeof(double), recv_sig);
      r.send(0, 0, &recv_blk, sizeof recv_blk);

      for (int it = 0; it < kIters; ++it) {
        unr.sig_wait(1, recv_sig);          // data is here, consume it
        if (buf[0] != it || buf[kCount - 1] != it + kCount - 1.0) ok = false;
        unr.sig_reset(1, recv_sig);         // AFTER the buffer is ready again
        char ack = 1;
        r.send(0, 1, &ack, 1);
      }
    }
  });
  std::printf("  data verified on every iteration: %s\n", ok ? "yes" : "NO");
  return w.elapsed();
}

}  // namespace

int main() {
  const SystemProfile prof = make_th_xy();
  std::printf("UNR quickstart on the %s profile (%d iterations, %zu KiB messages)\n\n",
              prof.name.c_str(), kIters, kCount * sizeof(double) / 1024);

  std::printf("Code 1 — two-sided MPI send/recv:\n");
  const Time t1 = run_two_sided(prof);
  std::printf("  virtual time: %s\n\n", format_time(t1).c_str());

  std::printf("Code 2 — UNR notified PUT with BLK handles and signals:\n");
  const Time t2 = run_unr(prof);
  std::printf("  virtual time: %s\n\n", format_time(t2).c_str());

  std::printf("(The UNR loop performs zero remote-offset arithmetic and no\n"
              " explicit post-synchronization; sig_reset doubles as the\n"
              " synchronization-error detector.)\n");
  return 0;
}
