// Example: pipelined all-to-all with the MPI conversion interfaces
// (paper Fig. 3e / Code 3).
//
// A group of ranks repeatedly transposes a distributed matrix (the
// communication core of an FFT pencil transpose). The setup phase calls
// alltoallv_convert once — it exchanges all BLK handles and records the
// PUTs into a Plan. The main loop is then just Plan::start() + two signal
// waits; no address arithmetic, no synchronization calls.
//
// Build & run:  ./examples/pipeline_transpose
#include <cstdio>
#include <vector>

#include "runtime/world.hpp"
#include "unr/convert.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {
constexpr int kRanks = 4;
constexpr std::size_t kBlockInts = 256;  // ints per (src, dst) block
constexpr int kIters = 6;
}  // namespace

int main() {
  World::Config wc;
  wc.nodes = kRanks;
  wc.profile = make_th_xy();
  World w(wc);
  Unr unr(w);

  int all_good = 0;
  w.run([&](Rank& r) {
    const auto p = static_cast<std::size_t>(kRanks);
    std::vector<int> send(p * kBlockInts), recv(p * kBlockInts);
    std::vector<std::size_t> counts(p, kBlockInts * sizeof(int)), displs(p);
    for (std::size_t d = 0; d < p; ++d) displs[d] = d * kBlockInts * sizeof(int);

    const MemHandle smh = unr.mem_reg(r.id(), send.data(), send.size() * sizeof(int));
    const MemHandle rmh = unr.mem_reg(r.id(), recv.data(), recv.size() * sizeof(int));
    // One aggregated signal each: "all my sends are out" / "all blocks are in".
    const SigId send_sig = unr.sig_init(r.id(), kRanks);
    const SigId recv_sig = unr.sig_init(r.id(), kRanks);

    // Setup once: exchange all BLK handles, record the transmissions.
    auto plan = unr.make_plan(r.id());
    alltoallv_convert(unr, r, smh, counts, displs, rmh, counts, displs, send_sig,
                      recv_sig, *plan);

    int good_iters = 0;
    for (int it = 0; it < kIters; ++it) {
      for (std::size_t d = 0; d < p; ++d)
        for (std::size_t i = 0; i < kBlockInts; ++i)
          send[d * kBlockInts + i] = it * 1000 + r.id() * 10 + static_cast<int>(d);

      plan->start();                 // replay every recorded PUT
      unr.sig_wait(r.id(), send_sig);
      unr.sig_wait(r.id(), recv_sig);

      bool good = true;
      for (std::size_t s = 0; s < p; ++s)
        for (std::size_t i = 0; i < kBlockInts; ++i)
          if (recv[s * kBlockInts + i] !=
              it * 1000 + static_cast<int>(s) * 10 + r.id())
            good = false;
      if (good) ++good_iters;

      unr.sig_reset(r.id(), send_sig);
      unr.sig_reset(r.id(), recv_sig);
      // The collective structure itself pre-synchronizes the next iteration:
      // everyone participated in this one (Section V-A).
      r.barrier();
    }
    if (r.id() == 0) all_good = good_iters;
  });

  std::printf("pipeline_transpose: %d ranks, %d iterations, %zu-int blocks\n", kRanks,
              kIters, kBlockInts);
  std::printf("  plan size per rank: %d puts + 1 local copy\n", kRanks - 1);
  std::printf("  verified iterations: %d/%d  -> %s\n", all_good, kIters,
              all_good == kIters ? "OK" : "MISMATCH");
  std::printf("  virtual time: %s\n", format_time(w.elapsed()).c_str());
  return all_good == kIters ? 0 : 1;
}
