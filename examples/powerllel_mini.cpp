// Example: the full mini-PowerLLEL application (paper Section V).
//
// Runs the incompressible Navier-Stokes solver on a chosen platform profile
// with either the MPI baseline or the UNR backend, and prints the physics
// checks plus the runtime breakdown the paper's Figures 6/7 are built from.
//
// Usage:  ./examples/powerllel_mini [--system=TH-XY] [--backend=unr|mpi]
//                                   [--nodes=4] [--steps=5]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::powerllel;
using namespace unr::runtime;
using namespace unr::unrlib;

int main(int argc, char** argv) {
  std::string system = "TH-XY", backend = "unr";
  int nodes = 4, steps = 5;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--system=", 0) == 0) system = a.substr(9);
    else if (a.rfind("--backend=", 0) == 0) backend = a.substr(10);
    else if (a.rfind("--nodes=", 0) == 0) nodes = std::stoi(a.substr(8));
    else if (a.rfind("--steps=", 0) == 0) steps = std::stoi(a.substr(8));
    else if (a == "--stats") stats = true;
    else {
      std::printf("usage: %s [--system=NAME] [--backend=unr|mpi] [--nodes=N] "
                  "[--steps=N] [--stats]\n", argv[0]);
      return 2;
    }
  }
  const SystemProfile prof = system_profile(system);
  const bool use_unr = backend == "unr";

  World::Config wc;
  wc.nodes = nodes;
  wc.ranks_per_node = 2;
  wc.profile = prof;
  World w(wc);
  std::optional<Unr> unr;
  if (use_unr) unr.emplace(w);

  const int ranks = nodes * 2;
  int pr = 1;
  for (int f = 1; f * f <= ranks; ++f)
    if (ranks % f == 0) pr = f;

  double div = -1, ke = -1;
  StepTimings t;
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = 64;
    sc.decomp.ny = 64;
    sc.decomp.nz = 32;
    sc.decomp.pr = pr;
    sc.decomp.pc = ranks / pr;
    sc.lz = 2.0;
    sc.nu = 0.02;
    sc.dt = 1e-3;
    sc.bc = ZBc::kNoSlip;
    sc.backend = use_unr ? CommBackend::kUnr : CommBackend::kMpi;
    sc.unr = use_unr ? &*unr : nullptr;
    sc.threads = std::max(1, (prof.cores_per_node - 2) / 2);
    Solver s(r, sc);
    // A decaying perturbed channel-like flow.
    s.init_velocity(
        [](double x, double y, double z) {
          return z * (2.0 - z) * (1.0 + 0.05 * std::sin(x) * std::cos(y));
        },
        [](double x, double y, double) { return 0.05 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(steps);
    div = s.global_max_divergence();
    ke = s.global_kinetic_energy();
    t = s.reduce_timings();
  });

  std::printf("mini-PowerLLEL on %s, %s backend, %d nodes x 2 ranks, %d steps\n",
              prof.name.c_str(), use_unr ? "UNR" : "MPI", nodes, steps);
  std::printf("  grid 64x64x32, process grid %dx%d\n", pr, ranks / pr);
  std::printf("  physics:   max|div(u)| = %.3e   kinetic energy = %.6f\n", div, ke);
  std::printf("  breakdown (virtual time, max over ranks):\n");
  std::printf("    velocity update : %s (halo %s)\n",
              format_time(t.velocity).c_str(), format_time(t.halo).c_str());
  std::printf("    PPE solver      : %s (fft %s, transpose %s, tridiag %s)\n",
              format_time(t.ppe).c_str(), format_time(t.ppe_fft).c_str(),
              format_time(t.ppe_transpose).c_str(),
              format_time(t.ppe_tridiag).c_str());
  std::printf("    correction      : %s\n", format_time(t.correction).c_str());
  std::printf("    total           : %s\n", format_time(t.total).c_str());
  if (stats && unr) {
    std::printf("\n");
    unr->print_stats(std::cout);
  }
  return div < 1e-8 ? 0 : 1;
}
