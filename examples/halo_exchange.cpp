// Example: synchronization-free stencil halo exchange (paper Fig. 3b/3d).
//
// A 2-D ring of ranks runs a 1-D heat-diffusion stencil; each rank owns a
// slab and exchanges one-cell halos with both neighbors every iteration.
// The UNR version uses double-buffered notified PUTs: iteration n and n+1
// use alternating buffer sets, so each iteration is the other's implicit
// pre-synchronization and the loop contains no synchronization call at all.
//
// Verifies against a serial reference computation.
//
// Build & run:  ./examples/halo_exchange
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

constexpr int kRanks = 8;
constexpr std::size_t kCellsPerRank = 64;
constexpr int kSteps = 40;
constexpr double kAlpha = 0.2;

std::vector<double> serial_reference() {
  const std::size_t n = kRanks * kCellsPerRank;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / static_cast<double>(n));
  for (int s = 0; s < kSteps; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const double left = a[(i + n - 1) % n];
      const double right = a[(i + 1) % n];
      b[i] = a[i] + kAlpha * (left - 2.0 * a[i] + right);
    }
    std::swap(a, b);
  }
  return a;
}

}  // namespace

int main() {
  World::Config wc;
  wc.nodes = kRanks;
  wc.ranks_per_node = 1;
  wc.profile = make_th_xy();
  World w(wc);
  Unr unr(w);

  const auto reference = serial_reference();
  double max_err = 0.0;

  w.run([&](Rank& r) {
    constexpr std::size_t kN = kCellsPerRank;
    // Two buffer sets, each with [halo_left | cells | halo_right].
    std::array<std::vector<double>, 2> field;
    for (auto& f : field) f.assign(kN + 2, 0.0);
    const std::size_t gbase = static_cast<std::size_t>(r.id()) * kN;
    for (std::size_t i = 0; i < kN; ++i)
      field[0][i + 1] = std::sin(2.0 * 3.14159265358979 *
                                 static_cast<double>(gbase + i) /
                                 static_cast<double>(kRanks * kN));

    // Register both sets once; expose the halo cells of each set as Blks.
    std::array<MemHandle, 2> mem;
    std::array<SigId, 2> recv_sig;
    std::array<std::array<Blk, 2>, 2> my_halo;  // [set][side: 0=left,1=right]
    for (int s = 0; s < 2; ++s) {
      mem[s] = unr.mem_reg(r.id(), field[s].data(), (kN + 2) * sizeof(double));
      recv_sig[s] = unr.sig_init(r.id(), 2);  // one signal, two neighbors (MMAS)
      my_halo[s][0] = unr.blk_init(r.id(), mem[s], 0, sizeof(double), recv_sig[s]);
      my_halo[s][1] =
          unr.blk_init(r.id(), mem[s], (kN + 1) * sizeof(double), sizeof(double),
                       recv_sig[s]);
    }
    const int left = (r.id() + kRanks - 1) % kRanks;
    const int right = (r.id() + 1) % kRanks;

    // One setup exchange. My first cell lands in the LEFT neighbor's right
    // halo; my last cell in the RIGHT neighbor's left halo. So each halo Blk
    // travels to the rank that will write it:
    //   peer[s][0] = left's right-halo Blk (target of my first cell)
    //   peer[s][1] = right's left-halo Blk (target of my last cell)
    std::array<std::array<Blk, 2>, 2> peer;
    for (int s = 0; s < 2; ++s) {
      std::vector<RequestPtr> reqs;
      reqs.push_back(r.irecv(left, 20 + s, &peer[s][0], sizeof(Blk)));
      reqs.push_back(r.irecv(right, 10 + s, &peer[s][1], sizeof(Blk)));
      reqs.push_back(r.isend(left, 10 + s, &my_halo[s][0], sizeof(Blk)));
      reqs.push_back(r.isend(right, 20 + s, &my_halo[s][1], sizeof(Blk)));
      r.wait_all(reqs);
    }

    int cur = 0;
    for (int step = 0; step < kSteps; ++step) {
      const int nxt = 1 - cur;
      auto& a = field[static_cast<std::size_t>(cur)];
      auto& b = field[static_cast<std::size_t>(nxt)];

      // Send my boundary cells of `cur` into the neighbors' halos.
      const Blk first_cell =
          unr.blk_init(r.id(), mem[cur], sizeof(double), sizeof(double));
      const Blk last_cell =
          unr.blk_init(r.id(), mem[cur], kN * sizeof(double), sizeof(double));
      unr.put(r.id(), first_cell, peer[static_cast<std::size_t>(cur)][0]);
      unr.put(r.id(), last_cell, peer[static_cast<std::size_t>(cur)][1]);

      // Wait for BOTH neighbor cells with one aggregated signal.
      unr.sig_wait(r.id(), recv_sig[static_cast<std::size_t>(cur)]);
      unr.sig_reset(r.id(), recv_sig[static_cast<std::size_t>(cur)]);

      for (std::size_t i = 1; i <= kN; ++i)
        b[i] = a[i] + kAlpha * (a[i - 1] - 2.0 * a[i] + a[i + 1]);
      r.compute(static_cast<Time>(kN * 2));  // cost model: ~2 ns per cell
      cur = nxt;
    }

    double err = 0;
    for (std::size_t i = 0; i < kN; ++i)
      err = std::max(err,
                     std::fabs(field[static_cast<std::size_t>(cur)][i + 1] -
                               reference[gbase + i]));
    allreduce_max(r.comm(), r.id(), &err, 1);
    if (r.id() == 0) max_err = err;
  });

  std::printf("halo_exchange: %d ranks x %zu cells, %d diffusion steps\n", kRanks,
              kCellsPerRank, kSteps);
  std::printf("  virtual time: %s\n", format_time(w.elapsed()).c_str());
  std::printf("  max error vs serial reference: %.3e  -> %s\n", max_err,
              max_err < 1e-12 ? "OK" : "MISMATCH");
  return max_err < 1e-12 ? 0 : 1;
}
