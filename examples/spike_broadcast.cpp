// Example: irregular spike broadcast (the paper's future-work workload).
//
// Section VIII of the paper mentions adopting UNR in a brain-simulation
// application "with many irregular broadcast operations in each time step
// for simulating spike broadcasts of neurons". This example sketches that
// pattern: every rank owns a population of neurons; each timestep a
// data-dependent subset fires, and each firing neuron's spike record must
// reach every rank whose population it synapses onto (an irregular,
// sparse, per-step varying communication graph).
//
// With UNR: each rank pre-exchanges one spike-inbox Blk per potential
// sender (setup, once). Per step, a sender PUTs its spike batch into every
// subscriber's inbox slot; one MMAS signal per receiver aggregates "one
// batch from every potential sender" (empty batches still notify), so the
// consumer wakes exactly once per step with all spikes in place — no
// alltoallv, no synchronization, no matching.
//
// Build & run:  ./examples/spike_broadcast
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

constexpr int kRanks = 8;
constexpr int kNeuronsPerRank = 64;
constexpr int kSteps = 20;
constexpr std::size_t kMaxSpikes = 32;  // per sender per step

struct SpikeBatch {
  std::uint32_t count;
  std::uint32_t step;
  std::uint32_t neuron[kMaxSpikes];  // global neuron ids
};

}  // namespace

int main() {
  World::Config wc;
  wc.nodes = kRanks;
  wc.profile = make_th_xy();
  World w(wc);
  Unr unr(w);

  long long total_spikes = 0;
  long long checksum = 0, expect_checksum = 0;

  w.run([&](Rank& r) {
    const int self = r.id();
    // Inboxes: one SpikeBatch slot per potential sender; a single signal
    // aggregates all of them (MMAS multi-message aggregation).
    std::vector<SpikeBatch> inbox(kRanks);
    const MemHandle inbox_mem =
        unr.mem_reg(self, inbox.data(), inbox.size() * sizeof(SpikeBatch));
    const SigId step_sig = unr.sig_init(self, kRanks - 1);

    SpikeBatch outbox{};
    const MemHandle out_mem = unr.mem_reg(self, &outbox, sizeof outbox);
    const SigId sent_sig = unr.sig_init(self, kRanks - 1);

    // Setup: ship each sender its inbox slot on my side.
    std::vector<Blk> subscriber_slots(kRanks);
    {
      std::vector<RequestPtr> reqs;
      std::vector<Blk> my_slots(kRanks);
      for (int s = 0; s < kRanks; ++s) {
        if (s == self) continue;
        my_slots[static_cast<std::size_t>(s)] = unr.blk_init(
            self, inbox_mem, static_cast<std::size_t>(s) * sizeof(SpikeBatch),
            sizeof(SpikeBatch), step_sig);
        reqs.push_back(r.irecv(s, 1, &subscriber_slots[static_cast<std::size_t>(s)],
                               sizeof(Blk)));
        reqs.push_back(
            r.isend(s, 1, &my_slots[static_cast<std::size_t>(s)], sizeof(Blk)));
      }
      r.wait_all(reqs);
    }

    Rng rng(1234 + static_cast<std::uint64_t>(self));
    std::vector<double> potential(kNeuronsPerRank, 0.0);
    long long my_sent = 0, my_sum = 0;

    for (int step = 0; step < kSteps; ++step) {
      // "Neuron dynamics": integrate a pseudo-potential; fire over threshold.
      outbox.count = 0;
      outbox.step = static_cast<std::uint32_t>(step);
      for (int n = 0; n < kNeuronsPerRank; ++n) {
        potential[static_cast<std::size_t>(n)] += rng.uniform();
        if (potential[static_cast<std::size_t>(n)] > 4.0 &&
            outbox.count < kMaxSpikes) {
          potential[static_cast<std::size_t>(n)] = 0.0;
          outbox.neuron[outbox.count++] =
              static_cast<std::uint32_t>(self * kNeuronsPerRank + n);
        }
      }
      r.compute(static_cast<Time>(kNeuronsPerRank * 4));  // ~4 ns per neuron

      // Reuse of the outbox requires the previous step's puts to be out.
      if (step > 0) {
        unr.sig_wait(self, sent_sig);
        unr.sig_reset(self, sent_sig);
      }
      // Broadcast the batch (possibly empty: the notification doubles as
      // the step marker, so receivers never block on a silent sender).
      const Blk src = unr.blk_init(self, out_mem, 0, sizeof(SpikeBatch), sent_sig);
      for (int s = 0; s < kRanks; ++s)
        if (s != self) unr.put(self, src, subscriber_slots[static_cast<std::size_t>(s)]);
      my_sent += outbox.count;

      // One wait: a batch from every peer has arrived.
      unr.sig_wait(self, step_sig);
      unr.sig_reset(self, step_sig);
      for (int s = 0; s < kRanks; ++s) {
        if (s == self) continue;
        const SpikeBatch& b = inbox[static_cast<std::size_t>(s)];
        if (b.step != static_cast<std::uint32_t>(step)) {
          std::printf("rank %d: stale batch from %d at step %d\n", self, s, step);
          continue;
        }
        for (std::uint32_t i = 0; i < b.count; ++i) my_sum += b.neuron[i];
      }
      r.compute(static_cast<Time>(200));  // synapse processing
    }
    // Drain the last step's local completions before the buffers die.
    unr.sig_wait(self, sent_sig);

    // Every rank saw every spike of every other rank: aggregate and check.
    double sums[2] = {static_cast<double>(my_sent), static_cast<double>(my_sum)};
    allreduce_sum(r.comm(), self, sums, 2);
    if (self == 0) {
      total_spikes = static_cast<long long>(sums[0]);
      checksum = static_cast<long long>(sums[1]);
    }
    // Independent reference: replay my deterministic dynamics and sum the
    // neuron ids I must have broadcast; every other rank received each one.
    double sent_ids = 0;
    {
      Rng rng2(1234 + static_cast<std::uint64_t>(self));
      std::vector<double> pot(kNeuronsPerRank, 0.0);
      for (int step = 0; step < kSteps; ++step) {
        std::uint32_t fired = 0;
        for (int n = 0; n < kNeuronsPerRank; ++n) {
          pot[static_cast<std::size_t>(n)] += rng2.uniform();
          if (pot[static_cast<std::size_t>(n)] > 4.0 && fired < kMaxSpikes) {
            pot[static_cast<std::size_t>(n)] = 0.0;
            ++fired;
            sent_ids += self * kNeuronsPerRank + n;
          }
        }
      }
    }
    double expect = sent_ids * (kRanks - 1);
    allreduce_sum(r.comm(), self, &expect, 1);
    if (self == 0) expect_checksum = static_cast<long long>(expect);
  });

  std::printf("spike_broadcast: %d ranks x %d neurons, %d steps\n", kRanks,
              kNeuronsPerRank, kSteps);
  std::printf("  total spikes fired: %lld\n", total_spikes);
  std::printf("  delivery checksum: %lld (expected %lld) -> %s\n", checksum,
              expect_checksum, checksum == expect_checksum ? "OK" : "MISMATCH");
  std::printf("  virtual time: %s\n", format_time(w.elapsed()).c_str());
  return checksum == expect_checksum ? 0 : 1;
}
