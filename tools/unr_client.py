#!/usr/bin/env python3
"""Reference client for the unr_service session server (docs/SERVICE.md).

Speaks the length-prefixed JSON frame protocol over loopback TCP:

    unr_client.py submit --port P SPECFILE      submit one RunSpec file
    unr_client.py submit --port P - < spec.txt  ... or from stdin
    unr_client.py stats  --port P               server/session/cache counters
    unr_client.py smoke  --port P               CI smoke: N concurrent
                                                sessions + cache byte-identity

`submit --expect-cache hit|miss` turns the reply's cache disposition into an
exit-code assertion (CI uses this). The smoke subcommand is the service CI
job: it drives `--sessions` concurrent sessions (default 8), each submitting
a distinct spec, then submits one spec twice and asserts the repeat is a
cache hit whose result body is BYTE-identical to the miss's.

Stdlib only.
"""

import argparse
import json
import socket
import struct
import sys
import threading

MAX_FRAME = 16 << 20


class ProtocolError(Exception):
    pass


def send_frame(sock, obj):
    payload = json.dumps(obj).encode("utf-8")
    if not payload or len(payload) > MAX_FRAME:
        raise ProtocolError(f"illegal frame size {len(payload)}")
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        buf += chunk
    return buf


def recv_frame_raw(sock):
    (length,) = struct.unpack(">I", recv_exact(sock, 4))
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"illegal frame length {length}")
    return recv_exact(sock, length)


def recv_frame(sock):
    return json.loads(recv_frame_raw(sock).decode("utf-8"))


def body_bytes(raw_result):
    """The raw bytes of the "body" value inside a result frame — the exact
    payload the server cached, for byte-identity assertions."""
    marker = b'"body":'
    i = raw_result.find(marker)
    if i < 0 or not raw_result.endswith(b"}"):
        raise ProtocolError("result frame has no body")
    return raw_result[i + len(marker):-1]


class Session:
    """One connected session: sequential request/reply over its socket."""

    def __init__(self, host, port, timeout=300.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)

    def close(self):
        try:
            send_frame(self.sock, {"op": "bye"})
            recv_frame(self.sock)
        except (OSError, ProtocolError):
            pass
        self.sock.close()

    def hello(self):
        send_frame(self.sock, {"op": "hello"})
        return recv_frame(self.sock)

    def stats(self):
        send_frame(self.sock, {"op": "stats"})
        return recv_frame(self.sock)

    def submit(self, spec_text):
        """Returns (status_frame_or_None, result_frame, raw_result_bytes)."""
        send_frame(self.sock, {"op": "submit", "spec": spec_text})
        raw = recv_frame_raw(self.sock)
        first = json.loads(raw.decode("utf-8"))
        if first.get("type") == "error":
            raise ProtocolError(first.get("error", "server error"))
        if first.get("type") == "result":
            return None, first, raw
        raw = recv_frame_raw(self.sock)
        result = json.loads(raw.decode("utf-8"))
        if result.get("type") != "result":
            raise ProtocolError(f"expected result frame, got {result}")
        return first, result, raw


def pingpong_spec(seed, size=4096, iters=50):
    return (
        "unrspec v1\n"
        "scenario pingpong\n"
        f"run seed={seed}\n"
        f"param iters={iters}\n"
        f"param size={size}\n"
        "end\n"
    )


def ai_traffic_spec(seed, scenario="ai_ring_allreduce", size=256, rounds=1):
    """A scenario-pack traffic spec (src/scenarios): the run is verified by
    the fuzz oracle server-side, so ok=true means oracle-clean, not just
    completed."""
    return (
        "unrspec v1\n"
        f"scenario {scenario}\n"
        "topo nodes=3 rpn=2\n"
        f"run seed={seed}\n"
        f"param rounds={rounds}\n"
        f"param size={size}\n"
        "end\n"
    )


def read_spec(path):
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as f:
        return f.read()


def cmd_submit(args):
    s = Session(args.host, args.port)
    try:
        status, result, _raw = s.submit(read_spec(args.spec))
        print(json.dumps(result, indent=2))
        body = result.get("body", {})
        if not body.get("ok", False):
            print(f"run failed: {body.get('error', body.get('violations'))}",
                  file=sys.stderr)
            return 1
        if args.expect_cache and result.get("cache") != args.expect_cache:
            print(f"expected cache={args.expect_cache}, got {result.get('cache')}",
                  file=sys.stderr)
            return 1
        return 0
    finally:
        s.close()


def cmd_stats(args):
    s = Session(args.host, args.port)
    try:
        print(json.dumps(s.stats(), indent=2))
        return 0
    finally:
        s.close()


def cmd_smoke(args):
    # Phase 1: N concurrent sessions, each its own spec (distinct seeds, so
    # every one is a cache miss and a real simulation).
    results = [None] * args.sessions
    errors = []

    def worker(i):
        try:
            s = Session(args.host, args.port)
            try:
                status, result, _raw = s.submit(pingpong_spec(seed=1000 + i))
                body = result["body"]
                if not body.get("ok"):
                    raise ProtocolError(f"session {i}: run failed: {body}")
                if result.get("cache") != "miss":
                    raise ProtocolError(
                        f"session {i}: expected miss, got {result.get('cache')}")
                results[i] = body
            finally:
                s.close()
        except Exception as e:  # collected, reported, failed loudly below
            errors.append(f"session {i}: {e}")

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(args.sessions)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"ok: {args.sessions} concurrent sessions, all ran")

    # Phase 2: identical spec twice — the repeat must be served from the
    # cache with a byte-identical result body (metrics and trace included).
    spec = pingpong_spec(seed=4242)
    s = Session(args.host, args.port)
    try:
        _, first, raw_first = s.submit(spec)
        _, second, raw_second = s.submit(spec)
    finally:
        s.close()
    if first.get("cache") != "miss":
        print(f"FAIL: first submission was {first.get('cache')}, want miss",
              file=sys.stderr)
        return 1
    if second.get("cache") != "hit":
        print(f"FAIL: repeat submission was {second.get('cache')}, want hit",
              file=sys.stderr)
        return 1
    # BYTE identity of the raw body payload (metrics and trace included) —
    # not just structural JSON equality.
    if body_bytes(raw_first) != body_bytes(raw_second):
        print("FAIL: cache hit body differs from the original run",
              file=sys.stderr)
        return 1
    print("ok: repeat submission was a cache hit, body byte-identical")

    # Phase 2b: same contract for an AI-traffic scenario (oracle-checked
    # server-side): first submission misses and runs clean, the repeat is a
    # byte-identical cache hit.
    spec = ai_traffic_spec(seed=4243)
    s = Session(args.host, args.port)
    try:
        _, first, raw_first = s.submit(spec)
        _, second, raw_second = s.submit(spec)
    finally:
        s.close()
    if not first["body"].get("ok"):
        print(f"FAIL: ai traffic run failed: {first['body']}", file=sys.stderr)
        return 1
    if first.get("cache") != "miss" or second.get("cache") != "hit":
        print(f"FAIL: ai traffic cache dispositions "
              f"{first.get('cache')}/{second.get('cache')}, want miss/hit",
              file=sys.stderr)
        return 1
    if body_bytes(raw_first) != body_bytes(raw_second):
        print("FAIL: ai traffic cache hit body differs from the original run",
              file=sys.stderr)
        return 1
    print("ok: ai traffic spec ran oracle-clean, repeat hit byte-identical")

    # Phase 3: the server's own accounting agrees.
    s = Session(args.host, args.port)
    try:
        st = s.stats()
    finally:
        s.close()
    cache = st.get("cache", {})
    if cache.get("hits", 0) < 1:
        print(f"FAIL: server reports no cache hits: {cache}", file=sys.stderr)
        return 1
    print(f"ok: server stats: sessions={st.get('sessions_opened')} "
          f"runs={st.get('runs')} cache={cache}")
    print("SMOKE PASS")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("submit", help="submit one RunSpec file (or - = stdin)")
    p.add_argument("spec")
    p.add_argument("--expect-cache", choices=("hit", "miss"))
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("stats", help="print server stats")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("smoke", help="concurrency + cache-identity smoke")
    p.add_argument("--sessions", type=int, default=8)
    p.set_defaults(fn=cmd_smoke)

    args = ap.parse_args()
    try:
        sys.exit(args.fn(args))
    except (ProtocolError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
