#!/usr/bin/env python3
"""Triage helper for unr_fuzz repro files (docs/TESTING.md).

A failing fuzz seed is dumped by `unr_fuzz` as a `.repro` file — a full
RunSpec document (`unrspec v1`, src/svc/runspec.cpp) embedding the workload
(`unrfuzz v2` body grammar, src/check/workload.cpp). Older bare-workload
repros (`unrfuzz v1`/`unrfuzz v2` as the first line) parse too. This tool
makes those files pleasant to work with:

    fuzz_triage.py show  FILE...          pretty-print spec(s): topology,
                                          config, per-round op table, with
                                          planted mutations highlighted
    fuzz_triage.py replay FILE            re-run the repro through unr_fuzz
                                          (differential channels by default),
                                          shrinking on failure
    fuzz_triage.py replay FILE --channels native --no-shrink
    fuzz_triage.py diff  A B              structural diff of two repro files
                                          (e.g. original vs shrunk)

Stdlib only; the heavy lifting stays in the C++ harness.
"""

import argparse
import os
import signal
import subprocess
import sys

# Die quietly when piped into `head` and friends.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

DEFAULT_BINARY_DIRS = (
    "build/tests/fuzz",
    "build-rel/tests/fuzz",
    "tests/fuzz",
)


def find_unr_fuzz(explicit):
    if explicit:
        if os.path.isfile(explicit) and os.access(explicit, os.X_OK):
            return explicit
        sys.exit(f"error: --unr-fuzz {explicit!r} is not an executable")
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(here)
    for d in DEFAULT_BINARY_DIRS:
        cand = os.path.join(repo, d, "unr_fuzz")
        if os.path.isfile(cand) and os.access(cand, os.X_OK):
            return cand
    sys.exit(
        "error: unr_fuzz binary not found; build it first "
        "(cmake --build build --target unr_fuzz) or pass --unr-fuzz PATH"
    )


def parse_repro(path):
    """Parse a repro file into a dict (loose, for display).

    Accepts every generation of the format: bare workloads ("unrfuzz v1",
    "unrfuzz v2" — identical body grammar) and the current full-RunSpec
    documents ("unrspec v1") that embed a workload block.
    """
    spec = {"header": {}, "rounds": [], "path": path, "runspec": {}}
    with open(path, encoding="utf-8") as f:
        lines = [ln.rstrip("\n") for ln in f]
    if lines and lines[0].startswith("unrspec"):
        # RunSpec wrapper: record the outer run-description lines, then
        # re-point `lines` at the embedded workload block (whose own "end"
        # terminates it; the wrapper's final "end" is dropped).
        spec["runspec"]["version"] = lines[0]
        wl_start = None
        for i, ln in enumerate(lines[1:], start=1):
            s = ln.strip()
            if s.startswith("workload "):
                wl_start = i
                break
            if s and s != "end":
                toks = s.split()
                spec["runspec"][toks[0]] = " ".join(toks[1:])
        if wl_start is None:
            sys.exit(f"error: {path}: unrspec repro embeds no workload block")
        body = [lines[wl_start].strip()[len("workload "):]]
        for ln in lines[wl_start + 1:]:
            body.append(ln)
            if ln.strip() == "end":
                break
        lines = body
    if not lines or not lines[0].startswith("unrfuzz"):
        sys.exit(f"error: {path}: not an unrfuzz/unrspec repro file")
    spec["version"] = lines[0]
    cur = None
    for ln in lines[1:]:
        stripped = ln.strip()
        if not stripped or stripped == "end":
            continue
        toks = stripped.split()
        if toks[0] == "round":
            cur = {"kind": toks[1], "ops": []}
            cur.update(kv_pairs(toks[2:]))
            spec["rounds"].append(cur)
        elif toks[0] == "op":
            if cur is None:
                sys.exit(f"error: {path}: op line before any round")
            op = {"kind": toks[1]}
            op.update(kv_pairs(toks[2:]))
            cur["ops"].append(op)
        elif toks[0] in ("seed", "profile", "iface"):
            spec["header"][toks[0]] = toks[1] if len(toks) > 1 else ""
        elif toks[0] in ("topo", "cfg"):
            spec["header"].update(kv_pairs(toks[1:]))
        else:
            sys.exit(f"error: {path}: unrecognised line: {ln!r}")
    return spec


def kv_pairs(tokens):
    out = {}
    for tok in tokens:
        if "=" not in tok:
            sys.exit(f"error: malformed key=value token {tok!r}")
        k, v = tok.split("=", 1)
        out[k] = v
    return out


def op_flags(op):
    flags = []
    if op.get("rn") == "1":
        flags.append("remote_notify")
    if op.get("ln") == "1":
        flags.append("local_notify")
    if op.get("split", "0") not in ("0", ""):
        flags.append(f"split={op['split']}")
    if op.get("nic", "-1") != "-1":
        flags.append(f"nic={op['nic']}")
    if op.get("corrupt") == "1":
        flags.append("CORRUPT")  # planted mutation — the bug to chase
    return ",".join(flags) or "-"


def show(spec):
    h = spec["header"]
    wrapper = spec.get("runspec", {}).get("version")
    tag = f"{wrapper} / {spec['version']}" if wrapper else spec["version"]
    print(f"== {spec['path']} ({tag})")
    print(
        f"   seed={h.get('seed')} profile={h.get('profile')} "
        f"iface={h.get('iface')}  "
        f"{h.get('nodes')}x{h.get('rpn')} ranks, {h.get('nics')} NIC(s)"
    )
    print(
        f"   sig_n_bits={h.get('sig_n_bits')} "
        f"split_threshold={h.get('split_threshold')} shm={h.get('shm')} "
        f"faults={h.get('faults')} nic_death={h.get('nic_death')} "
        f"region={h.get('region')}"
    )
    n_ops = sum(len(r["ops"]) for r in spec["rounds"])
    print(f"   {len(spec['rounds'])} round(s), {n_ops} transfer op(s)")
    for i, rnd in enumerate(spec["rounds"]):
        extra = ""
        if rnd["kind"] in ("bcast", "allgather", "allreduce", "window"):
            extra = f" root={rnd.get('root')} size={rnd.get('size')}"
        if rnd.get("stray", "-1") != "-1":
            extra += f" STRAY_SIGNAL@rank{rnd['stray']}"  # planted mutation
        print(f"   round {i}: {rnd['kind']}{extra}")
        for j, op in enumerate(rnd["ops"]):
            print(
                f"     [{j}] {op['kind']:<4} {op['a']:>3} -> {op['b']:>3}  "
                f"{op['size']:>8}B  src={op['src']} dst={op['dst']}  "
                f"{op_flags(op)}"
            )
    print()


def structural_diff(a, b):
    def describe(spec):
        rows = []
        for i, rnd in enumerate(spec["rounds"]):
            rows.append((i, rnd["kind"], None, None))
            for j, op in enumerate(rnd["ops"]):
                rows.append((i, rnd["kind"], j, tuple(sorted(op.items()))))
        return rows

    ra, rb = describe(a), describe(b)
    sa, sb = set(ra), set(rb)
    print(f"-- only in {a['path']}:")
    for row in ra:
        if row not in sb:
            print(f"   round {row[0]} {row[1]}" + (f" op[{row[2]}]" if row[2] is not None else ""))
    print(f"-- only in {b['path']}:")
    for row in rb:
        if row not in sa:
            print(f"   round {row[0]} {row[1]}" + (f" op[{row[2]}]" if row[2] is not None else ""))
    na = sum(len(r["ops"]) for r in a["rounds"])
    nb = sum(len(r["ops"]) for r in b["rounds"])
    print(f"-- op count: {na} -> {nb}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_show = sub.add_parser("show", help="pretty-print repro file(s)")
    p_show.add_argument("files", nargs="+")

    p_replay = sub.add_parser("replay", help="re-run a repro through unr_fuzz")
    p_replay.add_argument("file")
    p_replay.add_argument("--unr-fuzz", help="path to the unr_fuzz binary")
    p_replay.add_argument("--channels",
                          help="comma list: native,level0,fallback,level4,auto "
                               "(default: differential trio)")
    p_replay.add_argument("--no-shrink", action="store_true",
                          help="skip shrinking when the repro still fails")

    p_diff = sub.add_parser("diff", help="structural diff of two repro files")
    p_diff.add_argument("a")
    p_diff.add_argument("b")

    args = ap.parse_args()

    if args.cmd == "show":
        for f in args.files:
            show(parse_repro(f))
        return 0

    if args.cmd == "diff":
        structural_diff(parse_repro(args.a), parse_repro(args.b))
        return 0

    # replay
    parse_repro(args.file)  # validate + fail early with a good message
    binary = find_unr_fuzz(args.unr_fuzz)
    cmd = [binary, f"--repro={args.file}"]
    if args.channels:
        cmd.append(f"--channels={args.channels}")
    if args.no_shrink:
        cmd.append("--no-shrink")
    print("+ " + " ".join(cmd), file=sys.stderr)
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main())
