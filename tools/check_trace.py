#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs::Tracer.

Stdlib-only. Checks:
  * the file parses as JSON and has a traceEvents list,
  * every event carries name/ph/ts/pid/tid with sane types,
  * phases are limited to the set the tracer emits (X, i, b, e, M),
  * "X" events have a non-negative dur,
  * async "b"/"e" events match up per (cat, id) without going negative,
  * otherData declares the unr-trace-v1 schema.

Events are NOT required to be sorted by ts: the ring buffer interleaves
tracks, and Perfetto/chrome://tracing sort on load.

Usage: check_trace.py TRACE.json [--expect-name NAME ...] [--expect-cat CAT ...]
"""
import argparse
import collections
import json
import sys

ALLOWED_PHASES = {"X", "i", "b", "e", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--expect-name", action="append", default=[],
                    help="require at least one event with this name")
    ap.add_argument("--expect-cat", action="append", default=[],
                    help="require at least one event with this category")
    args = ap.parse_args()

    try:
        with open(args.trace, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents list")

    other = doc.get("otherData", {})
    if other.get("schema") != "unr-trace-v1":
        fail(f"otherData.schema is {other.get('schema')!r}, want 'unr-trace-v1'")

    names = collections.Counter()
    cats = collections.Counter()
    async_depth = collections.Counter()  # (cat, id) -> open spans
    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{where} missing {key!r}: {e}")
        ph = e["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"{where} has unexpected phase {ph!r}")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{where} has bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ('{e['name']}') has bad dur {dur!r}")
        if ph in ("b", "e"):
            key = (e.get("cat"), e.get("id"))
            if e.get("id") is None:
                fail(f"{where} async event without id")
            if ph == "b":
                async_depth[key] += 1
            else:
                async_depth[key] -= 1
                if async_depth[key] < 0:
                    fail(f"{where} async end without begin for {key}")
        names[e["name"]] += 1
        if "cat" in e:
            cats[e["cat"]] += 1

    # Spans still open at the end of the ring are fine (the ring may have
    # dropped their begins, or flush happened mid-flight) — only a negative
    # depth (end before begin, checked above) is a structural error.

    for want in args.expect_name:
        if names[want] == 0:
            fail(f"no event named {want!r} (have: {sorted(names)})")
    for want in args.expect_cat:
        if cats[want] == 0:
            fail(f"no event with category {want!r} (have: {sorted(cats)})")

    recorded = other.get("recorded")
    dropped = other.get("dropped", 0)
    print(f"check_trace: OK: {len(events)} events "
          f"(recorded={recorded}, dropped={dropped}), "
          f"{len(names)} distinct names, {len(cats)} categories")


if __name__ == "__main__":
    main()
