// Ablation: multi-channel message splitting (MMAS sub-messages).
//
// Sweep the fragment count K for a single large notified PUT over the two
// TH-XY NICs: K=1 uses one NIC; K=2 saturates both; larger K adds per-
// fragment posting overhead without more bandwidth (and exercises the
// addend encoding a = -1 + ((K-1) << (N+1))).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

double one_put_time(std::size_t bytes, int force_split) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = make_th_xy();
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr::Config uc;
  uc.split_threshold = 1;
  Unr unr(w, uc);
  Time done = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(bytes);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), bytes);
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, 1);
      const Blk rblk = unr.blk_init(1, mh, 0, bytes, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      done = r.now();
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      PutOptions opts;
      opts.force_split = force_split;
      const Time t0 = r.now();
      unr.put(0, unr.blk_init(0, mh, 0, bytes), rblk, opts);
      (void)t0;
    }
  });
  return static_cast<double>(done);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner("Ablation: fragment count K for one large PUT over 2 NICs",
                     "K=2 halves the serialization; beyond that only posting "
                     "overhead grows");
  std::vector<std::size_t> sizes{256 * KiB, 1 * MiB, 4 * MiB};
  if (opt.full) sizes.push_back(16 * MiB);
  TextTable t;
  std::vector<std::string> hdr{"size"};
  const std::vector<int> ks{1, 2, 4, 8, 16};
  for (int k : ks) hdr.push_back("K=" + std::to_string(k) + " (us)");
  t.header(hdr);
  for (std::size_t s : sizes) {
    std::vector<std::string> row{format_bytes(s)};
    for (int k : ks) row.push_back(unr::bench::us(one_put_time(s, k)));
    t.row(row);
  }
  std::cout << t;
  return 0;
}
