// Ablation: two-sided protocol crossover (eager vs rendezvous, Fig. 1a/1b).
//
// Sweep the eager threshold around a fixed message size to expose the
// protocol costs: eager pays two copies, rendezvous pays the RTS/CTS
// handshake but streams zero-copy. The crossover point depends on the
// platform's memcpy bandwidth vs wire latency — visible across profiles.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/world.hpp"

using namespace unr;
using namespace unr::runtime;

namespace {

double pingpong(const SystemProfile& base, std::size_t size, bool force_eager) {
  SystemProfile prof = base;
  prof.eager_threshold = force_eager ? size + 1 : 0;
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  const int iters = 20;
  Time window = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(size);
    const int peer = 1 - r.id();
    auto round = [&] {
      if (r.id() == 0) {
        r.send(peer, 1, buf.data(), size);
        r.recv(peer, 1, buf.data(), size);
      } else {
        r.recv(peer, 1, buf.data(), size);
        r.send(peer, 1, buf.data(), size);
      }
    };
    for (int i = 0; i < 3; ++i) round();
    r.barrier();
    const Time t0 = r.now();
    for (int i = 0; i < iters; ++i) round();
    if (r.id() == 0) window = r.now() - t0;
  });
  return static_cast<double>(window) / (2.0 * iters);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner("Ablation: eager vs rendezvous crossover",
                     "Fig. 1a/1b protocol costs: copies vs handshake");
  for (const auto& prof : opt.systems()) {
    std::cout << "--- " << prof.name << " ---\n";
    TextTable t;
    t.header({"size", "eager (us)", "rendezvous (us)", "winner"});
    for (std::size_t s :
         std::vector<std::size_t>{512, 4 * KiB, 16 * KiB, 64 * KiB, 512 * KiB}) {
      const double e = pingpong(prof, s, true);
      const double v = pingpong(prof, s, false);
      t.row({format_bytes(s), unr::bench::us(e), unr::bench::us(v),
             e < v ? "eager" : "rendezvous"});
    }
    std::cout << t << "\n";
  }
  return 0;
}
