// Ablation: fault injection x retry/backoff policy.
//
// The paper's evaluation runs on a healthy fabric; this ablation asks what
// the notifiable-RMA machinery costs when the fabric misbehaves:
//   * wire drop rate swept against three NACK/backoff policies (fixed delay,
//     capped exponential, capped exponential + jitter) on a workload that
//     overflows the remote CQ — the retry-storm scenario a fixed delay
//     provokes and jitter defuses,
//   * a K-way split transfer stream with one NIC failing mid-run: completion
//     time and failover counters of the degraded (K-1)-way fabric.
// All runs are seeded and deterministic; re-running reproduces every number.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

struct PolicyCase {
  const char* name;
  fabric::Fabric::RetryPolicy retry;
};

struct Result {
  double elapsed_ms = 0;
  fabric::Fabric::Stats fabric;
  std::uint64_t unr_failovers = 0;
};

/// Notified-put stream under CQ pressure: a small remote CQ and a slow
/// polling interval make NACKs routine; injected drops add retransmissions.
Result run_drop_case(double drop_rate, const fabric::Fabric::RetryPolicy& retry,
                     int iters) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = make_th_xy();
  wc.profile.cq_depth = 4;
  wc.deterministic_routing = true;
  wc.retry = retry;
  wc.faults.drop_rate = drop_rate;
  wc.seed = 12345;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr::Config uc;
  uc.engine.poll_interval = 10 * kUs;  // lazy drain: the CQ does overflow
  Unr unr(w, uc);

  const std::size_t msg = 4 * KiB;
  Result res;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(msg);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, iters);
      const Blk rblk = unr.blk_init(1, mh, 0, msg, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const Blk sblk = unr.blk_init(0, mh, 0, msg);
      for (int i = 0; i < iters; ++i) unr.put(0, sblk, rblk);
    }
  });
  res.elapsed_ms = static_cast<double>(w.elapsed()) / 1e6;
  res.fabric = w.fabric().stats();
  res.unr_failovers = unr.stats().failovers;
  return res;
}

/// K=4 split stream with NIC 1 of the sending node dying mid-run.
Result run_nic_fail_case(bool with_fault, int iters) {
  SystemProfile prof = make_th_xy();
  prof.nics_per_node = 4;
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  if (with_fault)
    wc.faults.nic_faults.push_back({.node = 0, .index = 1, .at = 100 * kUs});
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr unr(w);

  const std::size_t msg = 1 * MiB;
  Result res;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(r.id() == 1 ? static_cast<std::size_t>(iters) * msg
                                           : msg);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, iters);
      const Blk rblk = unr.blk_init(1, mh, 0, buf.size(), rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
    } else {
      Blk whole;
      r.recv(1, 1, &whole, sizeof whole);
      const SigId ssig = unr.sig_init(0, iters);
      const Blk sblk = unr.blk_init(0, mh, 0, msg, ssig);
      for (int i = 0; i < iters; ++i)
        unr.put(0, sblk, whole.sub(static_cast<std::size_t>(i) * msg, msg));
      unr.sig_wait(0, ssig);
    }
  });
  res.elapsed_ms = static_cast<double>(w.elapsed()) / 1e6;
  res.fabric = w.fabric().stats();
  res.unr_failovers = unr.stats().failovers;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Ablation: fault injection x retry/backoff policy",
      "beyond the paper's healthy-fabric evaluation: drop-rate sweep against "
      "NACK backoff policies, and a K-way split stream losing a NIC mid-run");

  const int iters = opts.full ? 400 : 100;

  const std::vector<PolicyCase> policies = {
      {"fixed delay", {.multiplier = 1.0, .jitter_frac = 0.0}},
      {"exp backoff", {.multiplier = 2.0, .jitter_frac = 0.0}},
      {"exp + jitter", {.multiplier = 2.0, .jitter_frac = 0.25}},
  };

  TextTable t;
  t.header({"drop rate", "backoff policy", "elapsed (ms)", "CQ retries",
            "retransmits", "backoff (ms)"});
  for (double drop : {0.0, 0.01, 0.05, 0.2}) {
    for (const auto& pc : policies) {
      const Result r = run_drop_case(drop, pc.retry, iters);
      t.row({TextTable::num(drop, 2), pc.name, TextTable::num(r.elapsed_ms, 3),
             std::to_string(r.fabric.cq_retries),
             std::to_string(r.fabric.resilience.retransmits),
             TextTable::num(static_cast<double>(r.fabric.resilience.backoff_ns) / 1e6,
                            3)});
    }
  }
  std::cout << t;

  TextTable t2;
  t2.header({"scenario", "elapsed (ms)", "NIC failures", "lost msgs", "failovers",
             "fragments re-issued"});
  const int halo_iters = opts.full ? 40 : 20;
  const Result healthy = run_nic_fail_case(false, halo_iters);
  const Result faulted = run_nic_fail_case(true, halo_iters);
  t2.row({"K=4 split, healthy", TextTable::num(healthy.elapsed_ms, 3), "0", "0", "0",
          "0"});
  t2.row({"K=4 split, NIC dies at 100us", TextTable::num(faulted.elapsed_ms, 3),
          std::to_string(faulted.fabric.resilience.nic_failures),
          std::to_string(faulted.fabric.resilience.lost_to_nic),
          std::to_string(faulted.fabric.resilience.failovers),
          std::to_string(faulted.unr_failovers)});
  std::cout << t2;
  return 0;
}
