// Ablation: polling-interval and core-reservation trade-off (Section VI-C).
//
// A small interval reacts quickly (low notification latency) but a polling
// thread without a reserved core steals compute capacity; level-4 hardware
// offload removes the trade-off entirely. This regenerates the paper's
// discussion quantitatively:
//   * notified-put latency vs poll interval,
//   * compute-kernel slowdown with an unreserved polling thread,
//   * the same two numbers under the level-4 channel.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

struct Result {
  double latency_ns = 0;
  double compute_ms = 0;
};

Result run_case(ChannelKind kind, Time poll_interval, bool reserved) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = make_th_xy();
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr::Config uc;
  uc.channel = kind;
  uc.engine.poll_interval = poll_interval;
  uc.engine.reserved_core = reserved;
  Unr unr(w, uc);

  const int iters = 40;
  Result res;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(256);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), 1);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, 256, rsig);
    const int peer = 1 - r.id();
    Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, 256);

    const Time t0 = r.now();
    for (int i = 0; i < iters; ++i) {
      if (r.id() == 0) {
        unr.put(0, send_blk, peer_blk);
        unr.sig_wait(0, rsig);
        unr.sig_reset(0, rsig);
      } else {
        unr.sig_wait(1, rsig);
        unr.sig_reset(1, rsig);
        unr.put(1, send_blk, peer_blk);
      }
    }
    if (r.id() == 0) res.latency_ns = static_cast<double>(r.now() - t0) / (2.0 * iters);

    // A compute kernel using every core of the node: how much does the
    // polling thread cost it?
    const Time c0 = r.now();
    r.compute(32 * kMs, wc.profile.cores_per_node);
    if (r.id() == 0) res.compute_ms = static_cast<double>(r.now() - c0) / 1e6;
  });
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  (void)unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Ablation: polling interval vs notification latency vs compute cost",
      "Section VI-C: small intervals cut latency but an unreserved polling "
      "thread slows compute; level-4 hardware removes the trade-off");

  TextTable t;
  t.header({"channel", "poll interval", "reserved core", "put latency (us)",
            "full-node compute (ms)"});
  for (Time interval : std::vector<Time>{200, 1 * kUs, 5 * kUs, 20 * kUs}) {
    for (bool reserved : {true, false}) {
      const Result r = run_case(ChannelKind::kNative, interval, reserved);
      t.row({"native (level-3)", format_time(interval), reserved ? "yes" : "no",
             unr::bench::us(r.latency_ns), TextTable::num(r.compute_ms, 3)});
    }
  }
  const Result hw = run_case(ChannelKind::kLevel4, 1 * kUs, false);
  t.row({"level-4 hw offload", "-", "n/a", unr::bench::us(hw.latency_ns),
         TextTable::num(hw.compute_ms, 3)});
  std::cout << t;
  return 0;
}
