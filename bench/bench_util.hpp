// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/profile.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace unr::bench {

/// Tiny flag parser: --quick (default scale), --full (paper-scale where
/// feasible), --system=NAME (restrict to one platform).
struct Options {
  bool full = false;
  std::string system;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--full") o.full = true;
      else if (a == "--quick") o.full = false;
      else if (a.rfind("--system=", 0) == 0) o.system = a.substr(9);
      else if (a == "--help" || a == "-h") {
        std::cout << "flags: --quick (default) | --full | --system=NAME\n";
        std::exit(0);
      }
    }
    return o;
  }

  std::vector<unr::SystemProfile> systems() const {
    if (system.empty()) return unr::all_system_profiles();
    return {unr::system_profile(system)};
  }
};

inline void banner(const std::string& title, const std::string& paper_note) {
  std::cout << "\n==== " << title << " ====\n";
  if (!paper_note.empty()) std::cout << "paper: " << paper_note << "\n";
  std::cout << "\n";
}

inline std::string us(double ns) { return TextTable::num(ns / 1000.0, 2); }

}  // namespace unr::bench
