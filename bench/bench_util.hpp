// Shared helpers for the benchmark harnesses.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/profile.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "runtime/world.hpp"
#include "svc/runspec.hpp"

namespace unr::bench {

/// Telemetry request parsed from --trace=FILE / --metrics=FILE /
/// --trace-ring=N. Process-global so every harness's own parser can feed it
/// and every World::Config construction site can consume it.
struct TelemetryFlags {
  std::string trace_path;    ///< Chrome trace JSON destination ("" = off)
  std::string metrics_path;  ///< metrics JSON destination ("" = off)
  std::size_t ring_capacity = 1u << 16;
};

inline TelemetryFlags& telemetry_flags() {
  static TelemetryFlags f;
  return f;
}

/// Recognize and record one telemetry flag; false = not a telemetry flag.
inline bool parse_telemetry_flag(const std::string& a) {
  TelemetryFlags& f = telemetry_flags();
  if (a.rfind("--trace=", 0) == 0) { f.trace_path = a.substr(8); return true; }
  if (a.rfind("--metrics=", 0) == 0) { f.metrics_path = a.substr(10); return true; }
  if (a.rfind("--trace-ring=", 0) == 0) {
    f.ring_capacity = std::stoul(a.substr(13));
    return true;
  }
  return false;
}

/// Route the requested telemetry outputs into a World::Config. Benches sweep
/// many Worlds; only the FIRST one asking gets the output files (the
/// representative run), so later Worlds don't overwrite them. No-op when no
/// telemetry flag was given.
inline void apply_telemetry(runtime::World::Config& wc) {
  const TelemetryFlags& f = telemetry_flags();
  if (f.trace_path.empty() && f.metrics_path.empty()) return;
  static bool claimed = false;
  if (claimed) return;
  claimed = true;
  wc.telemetry.trace.enabled = !f.trace_path.empty();
  wc.telemetry.trace.ring_capacity = f.ring_capacity;
  wc.telemetry.trace_path = f.trace_path;
  wc.telemetry.metrics_path = f.metrics_path;
}

/// Process-global kernel shard request (--shards=N), consumed by
/// apply_world_flags at every World::Config construction site. 0 = leave
/// World::Config's auto default (UNR_SHARDS env, else 1).
inline int& shard_request() {
  static int shards = 0;
  return shards;
}

/// Route both the telemetry outputs and the shard request into a
/// World::Config. Every bench builds its Worlds through this.
inline void apply_world_flags(runtime::World::Config& wc) {
  apply_telemetry(wc);
  wc.shards = shard_request();
}

/// Bench command lines ARE RunSpecs: every run-description flag comes from
/// the one svc::flag_schema() table (--full/--quick, --system=NAME,
/// --shards=N, --seed=N, --time-budget=SEC, fault knobs, --param=K=V, ...)
/// and parses into a svc::RunSpec; the fields below are a thin view over it
/// for the harness loops. Only the telemetry OUTPUT flags (--trace=FILE /
/// --metrics=FILE / --trace-ring=N) stay outside the spec — file paths are
/// an I/O concern, not part of the run.
///
/// Unknown flags are an error (exit 2), not a silent no-op: a typoed
/// --sytem=TH-XY used to run the full sweep as if nothing happened.
struct Options {
  svc::RunSpec spec;           ///< the canonical parse result
  bool full = false;           ///< view of spec.full
  std::string system;          ///< view of spec.profile ("" = all systems)
  double time_budget_sec = 0;  ///< view of spec.time_budget_sec; 0 = unlimited
  /// Kernel worker shards for every World the harness builds (--shards=N).
  /// 0 = World::Config's auto default (UNR_SHARDS env, else 1).
  int shards = 0;  ///< view of spec.shards

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (parse_telemetry_flag(a)) continue;
      if (a == "--help" || a == "-h") {
        std::cout << "run-description flags (one schema, all harnesses):\n"
                  << svc::flags_help()
                  << "telemetry outputs:\n"
                     "  --trace=FILE      Chrome trace JSON from the first World\n"
                     "  --metrics=FILE    metrics JSON from the first World\n"
                     "  --trace-ring=N    tracer ring capacity\n";
        std::exit(0);
      }
      std::string err;
      switch (svc::apply_flag(o.spec, a, &err)) {
        case svc::FlagResult::kOk: break;
        case svc::FlagResult::kError:
          std::cerr << "bad flag " << a << ": " << err << "\n";
          std::exit(2);
        case svc::FlagResult::kNotMine:
          std::cerr << "unknown flag: " << a << " (see --help)\n";
          std::exit(2);
      }
    }
    o.full = o.spec.full;
    o.system = o.spec.profile;
    o.time_budget_sec = o.spec.time_budget_sec;
    o.shards = o.spec.shards;
    shard_request() = o.spec.shards;
    return o;
  }

  std::vector<unr::SystemProfile> systems() const {
    if (system.empty()) return unr::all_system_profiles();
    return {unr::system_profile(system)};
  }
};

inline void banner(const std::string& title, const std::string& paper_note) {
  std::cout << "\n==== " << title << " ====\n";
  if (!paper_note.empty()) std::cout << "paper: " << paper_note << "\n";
  std::cout << "\n";
}

inline std::string us(double ns) { return TextTable::num(ns / 1000.0, 2); }

/// Peak resident-set size of this process so far, in MiB (Linux: ru_maxrss
/// is reported in KiB). Monotonic over the process lifetime.
inline double peak_rss_mib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Reset the kernel's resident-set high-water mark (Linux: writing "5" to
/// /proc/self/clear_refs zeroes VmHWM). Returns false where unsupported —
/// callers then only have the monotonic process-wide peak.
inline bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (!f) return false;
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
}

/// Current high-water mark (VmHWM) in MiB since the last reset_peak_rss(),
/// or -1 where /proc/self/status is unavailable. Unlike ru_maxrss this is
/// resettable, so per-scenario peaks don't inherit a bigger predecessor's.
inline double resettable_peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1.0;
  char line[256];
  double kib = -1.0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib < 0 ? -1.0 : kib / 1024.0;
}

/// Monotonic wall-clock stopwatch for perf harnesses (virtual time measures
/// the simulated machine; this measures the simulator itself).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Walk up from the current directory looking for the repo root (the
/// directory holding ROADMAP.md), so harnesses run from build/bench/ can
/// drop artifacts like BENCH_wallclock.json at the repo root. Falls back to
/// the current directory when not inside the repo.
inline std::string find_repo_root() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path p = fs::current_path(ec);
  if (ec) return ".";
  for (; !p.empty(); p = p.parent_path()) {
    if (fs::exists(p / "ROADMAP.md", ec)) return p.string();
    if (p == p.root_path()) break;
  }
  return ".";
}

}  // namespace unr::bench
