// Wall-clock performance of the SIMULATOR itself.
//
// Every other harness in bench/ reports virtual time — what the simulated
// machine would measure. This one measures the machine the simulator runs
// on: wall-clock seconds, dispatched events per second, and peak RSS for a
// set of representative scenarios (the Fig. 4 ping-pong sweep, the Fig. 7
// quick strong-scaling point, the fault-ablation drop sweep). Simulator
// throughput — events/sec — is what gates how much of the paper's parameter
// space a reproduction can cover, so it gets a tracked trajectory:
// the harness writes BENCH_wallclock.json at the repo root, and CI's perf
// smoke job fails when a scenario regresses against the committed baseline.
//
// Flags:
//   --smoke              run only the cheap smoke subset (CI perf job)
//   --scenario=NAME      run only the named scenario (repeatable)
//   --repeat=N           best-of-N wall timing per scenario (default 3)
//   --shards=N           kernel worker shards for every World (0 = auto)
//   --shard-sweep        also run the fig7 scenarios at K = 1/2/4/8 and
//                        record the sweep in the JSON (expensive; used when
//                        regenerating the committed baseline)
//   --out=PATH           where to write the JSON (default <repo>/BENCH_wallclock.json)
//   --baseline=PATH      compare against a previous BENCH_wallclock.json;
//                        embeds baseline/speedup per scenario in the output
//                        and exits nonzero on regression > tolerance OR on a
//                        measured scenario missing from the baseline file
//   --tolerance=FRAC     allowed events/sec regression (default 0.20)
//   --rss-ceiling-mib=N  fail if any scenario's peak RSS exceeds N MiB
//                        (the scale-smoke job's bounded-memory assertion)
//
// RSS accounting: each scenario resets the kernel's RSS high-water mark
// (/proc/self/clear_refs) before its first rep and reports the per-scenario
// peak (VmHWM) — NOT the monotonic process-wide ru_maxrss, which made every
// scenario after the biggest one report the same number (schema v1 bug).
//
// Timing accounting (schema v3): wall_sec covers ONLY the kernel run —
// World/Unr construction (actor stacks, NIC arrays, registries) is reported
// separately as setup_sec, so events/sec measures the event loop, not the
// allocator. At 1024 nodes the setup was a visible fraction of v2's number.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "bench_util.hpp"
#include "check/runner.hpp"
#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "scenarios/traffic.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

struct WallOptions {
  bool smoke = false;
  std::vector<std::string> only;  ///< --scenario= filters (empty = all)
  int repeat = 3;
  std::string out;
  std::string baseline;
  double tolerance = 0.20;
  double rss_ceiling_mib = 0;  ///< 0 = no ceiling
  int shards = 0;              ///< --shards=N for every World (0 = auto)
  bool shard_sweep = false;    ///< run fig7 scenarios at K = 1/2/4/8 too

  static WallOptions parse(int argc, char** argv) {
    WallOptions o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--smoke") o.smoke = true;
      else if (a.rfind("--scenario=", 0) == 0) o.only.push_back(a.substr(11));
      else if (a.rfind("--repeat=", 0) == 0) o.repeat = std::stoi(a.substr(9));
      else if (a.rfind("--shards=", 0) == 0) {
        o.shards = std::stoi(a.substr(9));
        unr::bench::shard_request() = o.shards;
      }
      else if (a == "--shard-sweep") o.shard_sweep = true;
      else if (a.rfind("--out=", 0) == 0) o.out = a.substr(6);
      else if (a.rfind("--baseline=", 0) == 0) o.baseline = a.substr(11);
      else if (a.rfind("--tolerance=", 0) == 0) o.tolerance = std::stod(a.substr(12));
      else if (a.rfind("--rss-ceiling-mib=", 0) == 0)
        o.rss_ceiling_mib = std::stod(a.substr(18));
      else if (unr::bench::parse_telemetry_flag(a)) {}
      else if (a == "--help" || a == "-h") {
        std::cout << "flags: --smoke | --scenario=NAME | --repeat=N | --shards=N | "
                     "--shard-sweep | --out=PATH | --baseline=PATH | "
                     "--tolerance=FRAC | --rss-ceiling-mib=N | --trace=FILE | "
                     "--metrics=FILE | --trace-ring=N\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << a << "\n";
        std::exit(2);
      }
    }
    return o;
  }

  bool selected(const std::string& name, bool in_smoke) const {
    if (!only.empty())
      return std::find(only.begin(), only.end(), name) != only.end();
    return !smoke || in_smoke;
  }
};

/// One measured run of a scenario: how many events the kernel dispatched,
/// how long that took in wall-clock, and how far virtual time advanced.
/// Scenarios fill wall_sec (kernel run only) and setup_sec (World/Unr
/// construction) themselves, so events/sec never charges the allocator.
struct RunSample {
  std::uint64_t events = 0;
  std::uint64_t virtual_ns = 0;
  double wall_sec = 0;
  double setup_sec = 0;
};

struct ScenarioResult {
  std::string name;
  RunSample best;                 ///< best-of-N by wall time
  double events_per_sec = 0;
  double rss_peak_mib = 0;  ///< THIS scenario's peak (max across its reps)
  std::optional<double> baseline_eps;  ///< from --baseline, when present
  bool baseline_missing = false;       ///< --baseline given, scenario absent
};

// --- Scenarios --------------------------------------------------------------
// Each returns the sample for ONE run; the driver repeats and keeps the best.

/// Fig. 4 shape: UNR notified-PUT ping-pong across a size sweep on TH-XY.
RunSample run_fig4_pingpong(const std::vector<std::size_t>& sizes, int iters) {
  RunSample s;
  for (std::size_t size : sizes) {
    unr::bench::WallTimer setup;
    World::Config wc;
    wc.nodes = 2;
    wc.ranks_per_node = 1;
    wc.profile = make_th_xy();
    wc.deterministic_routing = true;
    unr::bench::apply_world_flags(wc);
    World w(wc);
    Unr unr(w);
    s.setup_sec += setup.seconds();
    unr::bench::WallTimer timer;
    w.run([&](Rank& r) {
      std::vector<std::byte> buf(size);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
      const SigId rsig = unr.sig_init(r.id(), 1);
      const Blk my_blk = unr.blk_init(r.id(), mh, 0, size, rsig);
      const int peer = 1 - r.id();
      Blk peer_blk;
      r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
      const Blk send_blk = unr.blk_init(r.id(), mh, 0, size);
      for (int i = 0; i < iters; ++i) {
        if (r.id() == 0) {
          unr.put(0, send_blk, peer_blk);
          unr.sig_wait(0, rsig);
          unr.sig_reset(0, rsig);
        } else {
          unr.sig_wait(1, rsig);
          unr.sig_reset(1, rsig);
          unr.put(1, send_blk, peer_blk);
        }
      }
    });
    s.wall_sec += timer.seconds();
    s.events += w.kernel().event_count();
    s.virtual_ns += w.elapsed();
  }
  return s;
}

/// Fig. 7 shape: one strong-scaling point of mini-PowerLLEL on TH-XY with
/// the UNR backend. This is the scenario the tentpole's >=2x target is
/// measured on.
RunSample run_fig7_point(int nodes, int pr, int pc, std::size_t nx, std::size_t ny,
                         std::size_t nz, int steps) {
  RunSample s;
  unr::bench::WallTimer setup;
  World::Config wc;
  wc.nodes = nodes;
  wc.ranks_per_node = 2;
  wc.profile = make_th_xy();
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr unr(w);
  s.setup_sec = setup.seconds();
  const int threads = std::max(1, (wc.profile.cores_per_node - 2) / 2);
  unr::bench::WallTimer timer;
  w.run([&](Rank& r) {
    powerllel::SolverConfig sc;
    sc.decomp.nx = nx;
    sc.decomp.ny = ny;
    sc.decomp.nz = nz;
    sc.decomp.pr = pr;
    sc.decomp.pc = pc;
    sc.lz = 2.0;
    sc.bc = powerllel::ZBc::kNoSlip;
    sc.backend = powerllel::CommBackend::kUnr;
    sc.unr = &unr;
    sc.threads = threads;
    powerllel::Solver s(r, sc);
    s.init_velocity(
        [](double x, double /*y*/, double z) { return std::sin(x) * z * (2 - z); },
        [](double x, double y, double) { return 0.1 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(steps);
  });
  s.wall_sec = timer.seconds();
  s.events = w.kernel().event_count();
  s.virtual_ns = w.elapsed();
  return s;
}

/// Fault-ablation shape: notified-put stream under CQ pressure and injected
/// drops, swept over drop rates (NACK/backoff + retransmission machinery on
/// the hot path).
RunSample run_faults_sweep(const std::vector<double>& drop_rates, int iters) {
  RunSample s;
  for (double rate : drop_rates) {
    unr::bench::WallTimer setup;
    World::Config wc;
    wc.nodes = 2;
    wc.ranks_per_node = 1;
    wc.profile = make_th_xy();
    wc.profile.cq_depth = 4;
    wc.deterministic_routing = true;
    wc.faults.drop_rate = rate;
    wc.seed = 12345;
    unr::bench::apply_world_flags(wc);
    World w(wc);
    Unr::Config uc;
    uc.engine.poll_interval = 10 * kUs;  // lazy drain: the CQ does overflow
    Unr unr(w, uc);
    s.setup_sec += setup.seconds();
    const std::size_t msg = 4 * KiB;
    unr::bench::WallTimer timer;
    w.run([&](Rank& r) {
      std::vector<std::byte> buf(msg);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
      if (r.id() == 1) {
        const SigId rsig = unr.sig_init(1, iters);
        const Blk rblk = unr.blk_init(1, mh, 0, msg, rsig);
        r.send(0, 1, &rblk, sizeof rblk);
        unr.sig_wait(1, rsig);
      } else {
        Blk rblk;
        r.recv(1, 1, &rblk, sizeof rblk);
        const Blk sblk = unr.blk_init(0, mh, 0, msg);
        for (int i = 0; i < iters; ++i) unr.put(0, sblk, rblk);
      }
    });
    s.wall_sec += timer.seconds();
    s.events += w.kernel().event_count();
    s.virtual_ns += w.elapsed();
  }
  return s;
}

/// Scenario-pack traffic (src/scenarios): expand the named pattern and run it
/// through the oracle-checked runner. The whole run_workload call is timed —
/// World construction happens inside it — so setup_sec stays 0; at these
/// topologies setup is noise next to the event loop. A run that trips the
/// oracle invalidates the measurement and aborts the bench loudly.
RunSample run_traffic(const char* pattern, const scenarios::TrafficParams& p) {
  const scenarios::Pattern* pat = scenarios::find_pattern(pattern);
  if (pat == nullptr) {
    std::cerr << "unknown traffic pattern: " << pattern << "\n";
    std::exit(2);
  }
  const check::WorkloadSpec w = pat->make(p);
  check::RunOptions opt;
  opt.shards = unr::bench::shard_request();
  unr::bench::WallTimer timer;
  const check::RunResult res = check::run_workload(w, opt);
  RunSample s;
  s.wall_sec = timer.seconds();
  if (!res.ok) {
    std::cerr << "traffic pattern " << pattern << " failed its oracle check:\n";
    for (const std::string& v : res.violations) std::cerr << "  " << v << "\n";
    std::exit(2);
  }
  s.events = res.events;
  s.virtual_ns = res.end_time;
  return s;
}

// --- Driver -----------------------------------------------------------------

struct Scenario {
  std::string name;
  bool in_smoke;
  RunSample (*fn)();
  int repeat_override = 0;  ///< 0 = use --repeat; heavyweight points pin 1
};

// Scenario parameter sets are fixed constants shared by --smoke and the full
// run, so numbers stay comparable across modes and across PRs.
RunSample fig4_smoke() { return run_fig4_pingpong({8, 4 * KiB}, 30); }
RunSample fig4_full() {
  return run_fig4_pingpong({8, 256, 4 * KiB, 64 * KiB, 1 * MiB}, 60);
}
RunSample fig7_quick() { return run_fig7_point(8, 4, 4, 128, 128, 64, 3); }
RunSample fig7_16n() { return run_fig7_point(16, 8, 4, 128, 128, 64, 3); }
// The thread-per-rank ceiling breaker: 1024 simulated nodes x 2 ranks each
// = 2048 fiber actors in ONE process (the paper's full Fig. 7 machine is
// 1728 nodes). Feasible only because actors are pooled fibers now; the
// scale-smoke CI job runs exactly this point under a time budget and an RSS
// ceiling.
RunSample fig7_1024n() { return run_fig7_point(1024, 64, 32, 256, 128, 64, 1); }
RunSample faults_smoke() { return run_faults_sweep({0.02}, 150); }
RunSample faults_full() { return run_faults_sweep({0.0, 0.01, 0.05}, 300); }
// Scenario-pack traffic (ROADMAP item 3): distributed-training collectives
// and Ultracomputer-style sync ops, oracle-checked while timed.
RunSample ai_allreduce_smoke() {
  scenarios::TrafficParams p;
  p.seed = 42;
  p.nodes = 8;
  p.ranks_per_node = 2;
  p.size = 1024;  // doubles per rank
  p.rounds = 2;
  return run_traffic("ai_ring_allreduce", p);
}
// 256 simulated nodes of chunked ring allreduce: 510 pipeline steps, ~130k
// notified PUTs per round — the big-collective stress point.
RunSample ai_allreduce_256n() {
  scenarios::TrafficParams p;
  p.seed = 42;
  p.nodes = 256;
  p.ranks_per_node = 1;
  p.size = 2048;
  p.rounds = 1;
  return run_traffic("ai_ring_allreduce", p);
}
RunSample sync_faa() {
  scenarios::TrafficParams p;
  p.seed = 42;
  p.nodes = 8;
  p.ranks_per_node = 2;
  p.count = 4;
  p.depth = 2;
  p.rounds = 4;
  return run_traffic("sync_faa_tree", p);
}
// MoE all-to-all plus pipeline-parallel P2P at 32 ranks: the two
// distributed-training shapes whose cost is dominated by many concurrent
// notified transfers rather than one big collective.
RunSample ai_moe_pipeline() {
  scenarios::TrafficParams moe;
  moe.seed = 42;
  moe.nodes = 16;
  moe.ranks_per_node = 2;
  moe.size = 1024;
  moe.rounds = 2;
  RunSample s = run_traffic("ai_moe_alltoall", moe);
  scenarios::TrafficParams pipe = moe;
  pipe.size = 16 * KiB;
  pipe.count = 16;
  pipe.depth = 4;
  const RunSample ps = run_traffic("ai_pipeline", pipe);
  s.events += ps.events;
  s.virtual_ns += ps.virtual_ns;
  s.wall_sec += ps.wall_sec;
  s.setup_sec += ps.setup_sec;
  return s;
}

const std::vector<Scenario>& wall_scenarios() {
  static const std::vector<Scenario> all = {
      {"fig4_pingpong_smoke", true, &fig4_smoke},
      {"fig7_quick", true, &fig7_quick},
      {"faults_sweep_smoke", true, &faults_smoke},
      {"ai_allreduce_smoke", true, &ai_allreduce_smoke},
      {"sync_faa_tree", true, &sync_faa},
      {"fig4_pingpong", false, &fig4_full},
      {"fig7_scaling_16n", false, &fig7_16n},
      {"fig7_scaling_1024n", false, &fig7_1024n, 1},
      {"faults_sweep", false, &faults_full},
      {"ai_allreduce_256n", false, &ai_allreduce_256n, 1},
      {"ai_moe_pipeline", false, &ai_moe_pipeline},
  };
  return all;
}

/// Minimal extractor for the harness's own JSON: pulls
/// (scenario name -> events_per_sec) pairs out of a previous output file.
/// Not a general JSON parser — it only needs to read what emit_json writes.
std::map<std::string, double> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open baseline " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
    const std::size_t q1 = text.find('"', pos + 7);
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) break;
    const std::string name = text.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t eps = text.find("\"events_per_sec\":", q2);
    if (eps == std::string::npos) break;
    out[name] = std::stod(text.substr(eps + 17));
    pos = eps;
  }
  return out;
}

/// One point of the fig7 shard-count sweep (K = 1/2/4/8).
struct SweepPoint {
  int shards = 0;
  RunSample sample;
  double events_per_sec = 0;
};

struct SweepResult {
  std::string scenario;
  std::vector<SweepPoint> points;
};

std::string emit_json(const std::vector<ScenarioResult>& results,
                      const std::vector<SweepResult>& sweeps, bool smoke,
                      int shards_requested) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\n";
  // v3: "wall_sec" now covers only the kernel run; World/Unr construction is
  // the new per-scenario "setup_sec", so events/sec measures the event loop
  // (at 1024 nodes, setup was a visible slice of v2's wall time). Adds the
  // top-level "shards"/"host_hw_threads" fields and the optional
  // "shard_sweep" section (fig7 scenarios at K = 1/2/4/8). v2 introduced the
  // per-scenario resettable "rss_peak_mib" over v1's monotonic process peak.
  os << "  \"schema\": \"unr-bench-wallclock-v3\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"shards\": " << shards_requested << ",\n";
  os << "  \"host_hw_threads\": " << std::thread::hardware_concurrency() << ",\n";
  os.precision(1);
  // Per-scenario resets rewind the kernel's hiwater_rss counter, which also
  // feeds ru_maxrss — so the run-wide peak is the max over scenario peaks,
  // not a (no longer monotonic) getrusage call at emit time.
  double run_peak = 0;
  for (const ScenarioResult& r : results) run_peak = std::max(run_peak, r.rss_peak_mib);
  os << "  \"peak_rss_mib\": " << run_peak << ",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", ";
    os << "\"events\": " << r.best.events << ", ";
    os.precision(4);
    os << "\"wall_sec\": " << r.best.wall_sec << ", ";
    os << "\"setup_sec\": " << r.best.setup_sec << ", ";
    os.precision(0);
    os << "\"events_per_sec\": " << r.events_per_sec << ", ";
    os << "\"virtual_ns\": " << r.best.virtual_ns << ", ";
    os.precision(1);
    os << "\"rss_peak_mib\": " << r.rss_peak_mib;
    if (r.baseline_eps) {
      os.precision(0);
      os << ", \"baseline_events_per_sec\": " << *r.baseline_eps;
      os.precision(2);
      os << ", \"speedup_vs_baseline\": " << r.events_per_sec / *r.baseline_eps;
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!sweeps.empty()) {
    // Sweep entries deliberately use the key "scenario", not "name", so
    // load_baseline's minimal extractor (which scans for "name") never
    // mistakes a sweep point's events/sec for a scenario baseline.
    os << ",\n  \"shard_sweep\": [\n";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const SweepResult& sw = sweeps[i];
      os << "    {\"scenario\": \"" << sw.scenario << "\", \"points\": [\n";
      for (std::size_t j = 0; j < sw.points.size(); ++j) {
        const SweepPoint& p = sw.points[j];
        os << "      {\"shards\": " << p.shards << ", ";
        os.precision(4);
        os << "\"wall_sec\": " << p.sample.wall_sec << ", ";
        os << "\"setup_sec\": " << p.sample.setup_sec << ", ";
        os.precision(0);
        os << "\"events\": " << p.sample.events << ", ";
        os << "\"events_per_sec\": " << p.events_per_sec << "}"
           << (j + 1 < sw.points.size() ? "," : "") << "\n";
      }
      os << "    ]}" << (i + 1 < sweeps.size() ? "," : "") << "\n";
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const WallOptions opt = WallOptions::parse(argc, argv);
  // A --scenario= filter that matches nothing must fail LOUDLY: a typoed
  // name used to run zero scenarios and exit 0, which let CI's perf gate
  // pass vacuously.
  for (const std::string& name : opt.only) {
    const auto& all = wall_scenarios();
    const bool known = std::any_of(all.begin(), all.end(),
                                   [&](const Scenario& s) { return s.name == name; });
    if (!known) {
      std::cerr << "unknown scenario: " << name << " (known:";
      for (const Scenario& s : all) std::cerr << " " << s.name;
      std::cerr << ")\n";
      return 2;
    }
  }
  unr::bench::banner("Simulator wall-clock performance (events/sec)",
                     "the trajectory metric for how much of the paper's parameter "
                     "space this reproduction can cover");

  std::map<std::string, double> baseline;
  if (!opt.baseline.empty()) baseline = load_baseline(opt.baseline);

  std::vector<ScenarioResult> results;
  TextTable t;
  t.header({"scenario", "events", "wall (s)", "setup (s)", "events/sec", "virt time",
            "peak RSS (MiB)"});
  const bool rss_resettable = unr::bench::reset_peak_rss();
  for (const Scenario& sc : wall_scenarios()) {
    if (!opt.selected(sc.name, sc.in_smoke)) continue;
    ScenarioResult r;
    r.name = sc.name;
    // Per-scenario RSS: zero the kernel's high-water mark, run the reps,
    // read it back — the max over THIS scenario's reps, uncontaminated by
    // whatever ran before. Without clear_refs support, fall back to the
    // monotonic process peak (v1 behavior, better than nothing).
    if (rss_resettable) unr::bench::reset_peak_rss();
    const int reps = sc.repeat_override > 0 ? sc.repeat_override : std::max(1, opt.repeat);
    for (int rep = 0; rep < reps; ++rep) {
      // Scenarios time themselves: wall_sec is the kernel run only, setup
      // (World/Unr construction) lands in setup_sec (schema v3).
      const RunSample s = sc.fn();
      if (rep == 0 || s.wall_sec < r.best.wall_sec) r.best = s;
    }
    const double hwm = unr::bench::resettable_peak_rss_mib();
    r.rss_peak_mib = (rss_resettable && hwm >= 0) ? hwm : unr::bench::peak_rss_mib();
    r.events_per_sec = static_cast<double>(r.best.events) / r.best.wall_sec;
    auto it = baseline.find(r.name);
    if (it != baseline.end()) r.baseline_eps = it->second;
    else if (!opt.baseline.empty()) r.baseline_missing = true;
    results.push_back(r);
    t.row({r.name, std::to_string(r.best.events), TextTable::num(r.best.wall_sec, 3),
           TextTable::num(r.best.setup_sec, 3), TextTable::num(r.events_per_sec, 0),
           format_time(r.best.virtual_ns), TextTable::num(r.rss_peak_mib, 1)});
  }
  std::cout << t << "\n";

  // Shard-count sweep over the fig7 scenarios (the shard-parallel kernel's
  // target workload). One rep per point; K clamps to the node count inside
  // the World, so the recorded "shards" is the request, and
  // "host_hw_threads" in the JSON says how much real parallelism the host
  // could offer the sweep.
  std::vector<SweepResult> sweeps;
  if (opt.shard_sweep) {
    struct SweepTarget { const char* name; RunSample (*fn)(); };
    const SweepTarget targets[] = {{"fig7_quick", &fig7_quick},
                                   {"fig7_scaling_1024n", &fig7_1024n},
                                   {"ai_allreduce_256n", &ai_allreduce_256n}};
    const int saved_request = unr::bench::shard_request();
    for (const SweepTarget& tg : targets) {
      if (!opt.only.empty() && !opt.selected(tg.name, /*in_smoke=*/true)) continue;
      SweepResult sw;
      sw.scenario = tg.name;
      TextTable st;
      st.header({"shards", "events", "wall (s)", "setup (s)", "events/sec"});
      for (const int k : {1, 2, 4, 8}) {
        unr::bench::shard_request() = k;
        SweepPoint p;
        p.shards = k;
        p.sample = tg.fn();
        p.events_per_sec = static_cast<double>(p.sample.events) / p.sample.wall_sec;
        sw.points.push_back(p);
        st.row({std::to_string(k), std::to_string(p.sample.events),
                TextTable::num(p.sample.wall_sec, 3),
                TextTable::num(p.sample.setup_sec, 3),
                TextTable::num(p.events_per_sec, 0)});
      }
      std::cout << "shard sweep: " << sw.scenario << "\n" << st << "\n";
      sweeps.push_back(sw);
    }
    unr::bench::shard_request() = saved_request;
  }

  const std::string json = emit_json(results, sweeps, opt.smoke, opt.shards);
  std::cout << "BENCH_JSON " << "wallclock\n" << json;

  const std::string out_path =
      opt.out.empty() ? unr::bench::find_repo_root() + "/BENCH_wallclock.json" : opt.out;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << json;
  std::cout << "wrote " << out_path << "\n";

  // Regression gate for CI: any measured scenario that fell more than
  // `tolerance` below the committed baseline's events/sec fails the run. A
  // scenario absent from the baseline file fails LOUDLY instead of silently
  // passing ungated — otherwise adding a scenario (or typoing a name) would
  // quietly remove it from the perf gate forever.
  bool failed = false;
  for (const ScenarioResult& r : results) {
    if (r.baseline_missing) {
      std::cerr << "BASELINE MISSING: " << r.name << " not found in "
                << opt.baseline << " — regenerate the baseline file (run "
                << "bench_wallclock without --baseline and commit the JSON)\n";
      failed = true;
    }
    if (!r.baseline_eps) continue;
    const double floor = *r.baseline_eps * (1.0 - opt.tolerance);
    if (r.events_per_sec < floor) {
      std::cerr << "PERF REGRESSION: " << r.name << " at "
                << static_cast<std::uint64_t>(r.events_per_sec)
                << " events/sec, baseline "
                << static_cast<std::uint64_t>(*r.baseline_eps) << " (floor "
                << static_cast<std::uint64_t>(floor) << ")\n";
      failed = true;
    }
  }
  // Bounded-memory gate (scale-smoke): per-scenario peaks only, so a big
  // scenario earlier in the list cannot mask — or falsely trip — this.
  if (opt.rss_ceiling_mib > 0) {
    for (const ScenarioResult& r : results) {
      if (r.rss_peak_mib > opt.rss_ceiling_mib) {
        std::cerr << "RSS CEILING EXCEEDED: " << r.name << " peaked at "
                  << r.rss_peak_mib << " MiB, ceiling " << opt.rss_ceiling_mib
                  << " MiB\n";
        failed = true;
      }
    }
  }
  return failed ? 1 : 0;
}
