// Ablation: where does the Fig. 6 speedup come from?
//
// Decomposes the UNR gain over the MPI baseline into its two ingredients:
//   * transport  — notified PUTs instead of two-sided messages (no
//     rendezvous handshakes, no matching, aggregated signals), with the
//     halo exchange still blocking;
//   * + overlap  — additionally hiding the halo latency under the interior
//     stencils (the synchronization-free structure of Fig. 3d).
#include <cmath>
#include <iostream>
#include <optional>

#include "bench_util.hpp"
#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::powerllel;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

double run_ms(const SystemProfile& prof, bool use_unr, bool overlap) {
  World::Config wc;
  wc.nodes = 8;
  wc.ranks_per_node = 2;
  wc.profile = prof;
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  std::optional<Unr> unr;
  if (use_unr) unr.emplace(w);

  StepTimings t;
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = 64;
    sc.decomp.ny = 64;
    sc.decomp.nz = 32;
    sc.decomp.pr = 4;
    sc.decomp.pc = 4;
    sc.lz = 2.0;
    sc.bc = ZBc::kNoSlip;
    sc.backend = use_unr ? CommBackend::kUnr : CommBackend::kMpi;
    sc.unr = use_unr ? &*unr : nullptr;
    sc.threads = std::max(1, (prof.cores_per_node - 2) / 2);
    sc.overlap_halo = overlap;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * z * (2 - z) * std::cos(y); },
        [](double x, double y, double) { return 0.1 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(1);
    s.reset_timings();
    s.run(3);
    t = s.reduce_timings();
  });
  return static_cast<double>(t.total) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Ablation: decomposing the Fig. 6 speedup (transport vs overlap)",
      "UNR transport alone vs transport + halo/compute overlap (Fig. 3d)");
  TextTable t;
  t.header({"system", "MPI baseline (ms)", "UNR no overlap (ms)", "speedup",
            "UNR + overlap (ms)", "speedup"});
  for (const auto& prof : opt.systems()) {
    const double base = run_ms(prof, false, false);
    const double transport = run_ms(prof, true, false);
    const double full = run_ms(prof, true, true);
    t.row({prof.name, TextTable::num(base, 2), TextTable::num(transport, 2),
           TextTable::pct(base / transport - 1.0), TextTable::num(full, 2),
           TextTable::pct(base / full - 1.0)});
  }
  std::cout << t;
  return 0;
}
