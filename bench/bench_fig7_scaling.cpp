// Figure 7: PowerLLEL strong scalability on TH-2A and TH-XY.
//
// Strong scaling of mini-PowerLLEL with the UNR backend, with the time
// breakdown into velocity update and PPE solver. Node counts are scaled
// down from the paper's 12..192 (TH-2A) and 288..1728 (TH-XY); pass --full
// for larger sweeps.
//
// Paper shape to reproduce: high parallel efficiency overall (95% / 85%);
// the velocity update scales ~linearly (communication fully overlapped /
// cheap), while the PPE solver (all-to-all transposes) is the bottleneck
// (~73% efficiency).
#include <cmath>
#include <iostream>
#include <optional>

#include "bench_util.hpp"
#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::powerllel;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

struct ScalePoint {
  int nodes;
  int pr, pc;
};

StepTimings run_point(const SystemProfile& prof, const ScalePoint& sp, std::size_t nx,
                      std::size_t ny, std::size_t nz, int steps) {
  World::Config wc;
  wc.nodes = sp.nodes;
  wc.ranks_per_node = 2;
  wc.profile = prof;
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Unr unr(w);

  const int threads = std::max(1, (prof.cores_per_node - 2) / 2);
  StepTimings out;
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = nx;
    sc.decomp.ny = ny;
    sc.decomp.nz = nz;
    sc.decomp.pr = sp.pr;
    sc.decomp.pc = sp.pc;
    sc.lz = 2.0;
    sc.bc = ZBc::kNoSlip;
    sc.backend = CommBackend::kUnr;
    sc.unr = &unr;
    sc.threads = threads;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * z * (2 - z); },
        [](double x, double y, double) { return 0.1 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(1);
    s.reset_timings();
    s.run(steps);
    out = s.reduce_timings();
  });
  return out;
}

void scaling_table(const SystemProfile& prof, const std::vector<ScalePoint>& points,
                   std::size_t nx, std::size_t ny, std::size_t nz, int steps,
                   const unr::bench::WallTimer& budget_timer, double budget_sec) {
  std::cout << "--- " << prof.name << " strong scaling, grid " << nx << "x" << ny
            << "x" << nz << " (UNR backend) ---\n";
  TextTable t;
  t.header({"nodes", "ranks", "total (ms)", "velocity (ms)", "PPE (ms)",
            "efficiency", "vel. efficiency", "PPE efficiency"});
  double base_total = 0, base_vel = 0, base_ppe = 0;
  int base_nodes = 0;
  for (const auto& sp : points) {
    // Stop the sweep gracefully once the wall-clock budget is spent: the
    // points already measured still print, larger ones are skipped (the CI
    // perf job runs with a budget so a slow machine degrades coverage
    // instead of timing out).
    if (budget_sec > 0 && budget_timer.seconds() > budget_sec) {
      std::cout << "(time budget of " << budget_sec << "s spent — skipping "
                << sp.nodes << "+ node points)\n";
      break;
    }
    const StepTimings m = run_point(prof, sp, nx, ny, nz, steps);
    const double total = static_cast<double>(m.total) / 1e6;
    const double vel = static_cast<double>(m.velocity) / 1e6;
    const double ppe = static_cast<double>(m.ppe) / 1e6;
    if (base_nodes == 0) {
      base_nodes = sp.nodes;
      base_total = total;
      base_vel = vel;
      base_ppe = ppe;
    }
    const double scale = static_cast<double>(sp.nodes) / base_nodes;
    auto eff = [&](double base, double now) {
      return TextTable::num(100.0 * base / (now * scale), 1) + "%";
    };
    t.row({std::to_string(sp.nodes), std::to_string(sp.nodes * 2),
           TextTable::num(total, 2), TextTable::num(vel, 2), TextTable::num(ppe, 2),
           eff(base_total, total), eff(base_vel, vel), eff(base_ppe, ppe)});
  }
  std::cout << t << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Figure 7: PowerLLEL strong scalability (node counts scaled down)",
      "paper: 95% efficiency on TH-2A (12->192 nodes), 85% on TH-XY "
      "(288->1728); velocity update ~linear, PPE solver ~73%");

  // The per-rank block must stay compute-dominated for the halo overlap to
  // hide communication (the paper's per-rank grids are far larger still).
  const int steps = 3;
  const unr::bench::WallTimer budget_timer;
  {
    std::vector<ScalePoint> pts{{2, 2, 2}, {4, 4, 2}, {8, 4, 4}, {16, 8, 4}};
    if (opt.full) pts.push_back({32, 8, 8});
    scaling_table(make_th_2a(), pts, 128, 128, 64, steps, budget_timer,
                  opt.time_budget_sec);
  }
  {
    std::vector<ScalePoint> pts{{4, 4, 2}, {8, 4, 4}, {16, 8, 4}, {32, 8, 8}};
    if (opt.full) pts.push_back({64, 16, 8});
    const std::size_t n = opt.full ? 256 : 128;
    scaling_table(make_th_xy(), pts, n, n, 64, steps, budget_timer,
                  opt.time_budget_sec);
  }
  return 0;
}
