// Figure 6: PowerLLEL performance improvements on four HPC systems.
//
// Mini-PowerLLEL runs on each platform with:
//   * the MPI baseline (two-sided halo exchange + pairwise transposes),
//   * UNR with a reserved polling core,
//   * UNR with the polling thread sharing the compute cores,
//   * the UNR MPI-fallback channel.
// plus the paper's HPC-IB thread experiment (all cores + shared polling vs
// two cores reserved).
//
// Paper shape to reproduce: UNR accelerates on all four systems (+29..39%);
// the fallback helps on TH-XY (+20%) but hurts on TH-2A (-61%); reserving a
// core for polling on HPC-IB beats using every core.
#include <iostream>
#include <optional>

#include "bench_util.hpp"
#include "powerllel/solver.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::powerllel;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

struct Variant {
  std::string name;
  bool use_unr = false;
  ChannelKind channel = ChannelKind::kAuto;
  bool reserved_core = true;
  int reserved_cores_count = 2;  ///< cores not used for compute when reserved
};

struct RunCfg {
  SystemProfile prof;
  int nodes = 8;
  int rpn = 2;
  std::size_t nx = 64, ny = 64, nz = 32;
  int warmup = 1, steps = 3;
};

struct Measured {
  StepTimings t;
  double total_ms() const { return static_cast<double>(t.total) / 1e6; }
};

Measured run_variant(const RunCfg& rc, const Variant& v) {
  World::Config wc;
  wc.nodes = rc.nodes;
  wc.ranks_per_node = rc.rpn;
  wc.profile = rc.prof;
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);

  std::optional<Unr> unr;
  if (v.use_unr) {
    Unr::Config uc;
    uc.channel = v.channel;
    uc.engine.reserved_core = v.reserved_core;
    unr.emplace(w, uc);
  }

  const int ranks = rc.nodes * rc.rpn;
  // Factor the rank count into a near-square process grid.
  int pr = 1;
  for (int f = 1; f * f <= ranks; ++f)
    if (ranks % f == 0) pr = f;
  const int pc = ranks / pr;

  const int compute_cores = v.use_unr && v.reserved_core
                                ? rc.prof.cores_per_node - v.reserved_cores_count
                                : rc.prof.cores_per_node;
  const int threads = std::max(1, compute_cores / rc.rpn);

  Measured m;
  w.run([&](Rank& r) {
    SolverConfig sc;
    sc.decomp.nx = rc.nx;
    sc.decomp.ny = rc.ny;
    sc.decomp.nz = rc.nz;
    sc.decomp.pr = pr;
    sc.decomp.pc = pc;
    sc.lz = 2.0;
    sc.nu = 0.02;
    sc.dt = 1e-3;
    sc.bc = ZBc::kNoSlip;
    sc.backend = v.use_unr ? CommBackend::kUnr : CommBackend::kMpi;
    sc.unr = v.use_unr ? &*unr : nullptr;
    sc.threads = threads;
    Solver s(r, sc);
    s.init_velocity(
        [](double x, double y, double z) { return std::sin(x) * std::cos(y) * z * (2 - z); },
        [](double x, double y, double) { return 0.1 * std::cos(x + y); },
        [](double, double, double) { return 0.0; });
    s.run(rc.warmup);
    s.reset_timings();
    s.run(rc.steps);
    m.t = s.reduce_timings();
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Figure 6: PowerLLEL performance improvements (runtime breakdown)",
      "UNR speeds up all four systems (paper: +29..39%); fallback helps on "
      "TH-XY (+20%) but hurts on TH-2A (-61%); HPC-IB: reserved polling core "
      "beats sharing");

  for (const auto& prof : opt.systems()) {
    RunCfg rc;
    rc.prof = prof;
    if (opt.full) {
      rc.nx = rc.ny = 128;
      rc.nz = 64;
      rc.steps = 4;
    }
    std::vector<Variant> variants = {
        {"MPI baseline", false, ChannelKind::kAuto, true, 0},
        {"UNR (reserved core)", true, ChannelKind::kAuto, true, 2},
        {"UNR (shared core)", true, ChannelKind::kAuto, false, 0},
        {"UNR fallback", true, ChannelKind::kMpiFallback, true, 2},
    };
    // Extension beyond the paper: on the 128-bit interface, quantify the
    // application-level gain of the proposed level-4 hardware offload (no
    // polling thread at all -> all cores compute, no notification delay).
    if (prof.iface == Interface::kGlex)
      variants.push_back({"UNR level-4 (hw offload)", true, ChannelKind::kLevel4,
                          /*reserved (ignored: no engine)*/ false, 0});

    std::cout << "--- " << prof.name << " (" << rc.nodes << " nodes x " << rc.rpn
              << " ranks, grid " << rc.nx << "x" << rc.ny << "x" << rc.nz << ") ---\n";
    TextTable t;
    t.header({"variant", "total (ms)", "velocity (ms)", "PPE (ms)", "halo (ms)",
              "speedup vs MPI"});
    double base = 0;
    for (const auto& v : variants) {
      const Measured m = run_variant(rc, v);
      if (v.name == "MPI baseline") base = m.total_ms();
      t.row({v.name, TextTable::num(m.total_ms(), 2),
             TextTable::num(static_cast<double>(m.t.velocity) / 1e6, 2),
             TextTable::num(static_cast<double>(m.t.ppe) / 1e6, 2),
             TextTable::num(static_cast<double>(m.t.halo) / 1e6, 2),
             base > 0 ? TextTable::pct(base / m.total_ms() - 1.0) : "-"});
    }
    std::cout << t << "\n";
  }
  return 0;
}
