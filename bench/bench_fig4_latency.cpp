// Figure 4: latency test.
//
// Ping-pong latency of UNR notified PUT vs MPI-RMA with the three classical
// synchronization schemes (Fence, PSCW, Lock/Unlock + memory polling), on
// two nodes of each of the four platforms. Two-sided send/recv is included
// for reference (Fig. 1 protocols).
//
// Paper shape to reproduce: UNR below MPI-RMA in most cases; PSCW the
// closest contender; Fence the most expensive for small messages.
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/window.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

World::Config world_cfg(const SystemProfile& prof) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 1;
  wc.profile = prof;
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  return wc;
}

/// Per-iteration one-way latency in ns.
double unr_latency(const SystemProfile& prof, std::size_t size, int iters,
                   ChannelKind kind = ChannelKind::kAuto) {
  World w(world_cfg(prof));
  Unr::Config uc;
  uc.channel = kind;
  Unr unr(w, uc);
  Time window = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(size > 0 ? size : 1);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), 1);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, size, rsig);
    const int peer = 1 - r.id();
    Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, size);

    auto pingpong = [&](int n) {
      for (int i = 0; i < n; ++i) {
        if (r.id() == 0) {
          unr.put(0, send_blk, peer_blk);
          unr.sig_wait(0, rsig);
          unr.sig_reset(0, rsig);
        } else {
          unr.sig_wait(1, rsig);
          unr.sig_reset(1, rsig);
          unr.put(1, send_blk, peer_blk);
        }
      }
    };
    pingpong(4);  // warmup
    r.barrier();
    const Time t0 = r.now();
    pingpong(iters);
    if (r.id() == 0) window = r.now() - t0;
  });
  return static_cast<double>(window) / (2.0 * iters);
}

enum class RmaScheme { kFence, kPscw, kLock };

double rma_latency(const SystemProfile& prof, std::size_t size, int iters,
                   RmaScheme scheme) {
  World w(world_cfg(prof));
  Time window = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> expo(size + 1, std::byte{0});
    std::vector<std::byte> src(size + 1, std::byte{0});
    auto win = Window::create(r.comm(), r.id(), expo.data(), expo.size());
    const int peer = 1 - r.id();
    const std::array<int, 1> grp{peer};

    auto one_round = [&](int iter) {
      switch (scheme) {
        case RmaScheme::kFence:
          win->fence(r.id());
          if (r.id() == 0) win->put(0, 1, 0, src.data(), size);
          win->fence(r.id());
          if (r.id() == 1) win->put(1, 0, 0, src.data(), size);
          win->fence(r.id());
          break;
        case RmaScheme::kPscw:
          if (r.id() == 0) {
            win->start(0, grp);
            win->put(0, 1, 0, src.data(), size);
            win->complete(0);
            win->post(0, grp);
            win->wait(0);
          } else {
            win->post(1, grp);
            win->wait(1);
            win->start(1, grp);
            win->put(1, 0, 0, src.data(), size);
            win->complete(1);
          }
          break;
        case RmaScheme::kLock: {
          // Passive target: the peer learns of arrival by polling the flag
          // byte behind the payload (the classical pattern).
          const auto flag = static_cast<std::byte>((iter & 0x7F) + 1);
          src[size] = flag;
          auto send = [&](int target) {
            win->lock(r.id(), target);
            win->put(r.id(), target, 0, src.data(), size + 1);
            win->unlock(r.id(), target);
          };
          auto wait_flag = [&] {
            while (expo[size] != flag) r.kernel().sleep_for(200);
          };
          if (r.id() == 0) {
            send(1);
            wait_flag();
          } else {
            wait_flag();
            send(0);
          }
          break;
        }
      }
    };
    for (int i = 0; i < 4; ++i) one_round(i);  // warmup
    r.barrier();
    const Time t0 = r.now();
    for (int i = 4; i < 4 + iters; ++i) one_round(i);
    if (r.id() == 0) window = r.now() - t0;
  });
  return static_cast<double>(window) / (2.0 * iters);
}

double two_sided_latency(const SystemProfile& prof, std::size_t size, int iters) {
  World w(world_cfg(prof));
  Time window = 0;
  w.run([&](Rank& r) {
    std::vector<std::byte> buf(size > 0 ? size : 1);
    const int peer = 1 - r.id();
    auto round = [&] {
      if (r.id() == 0) {
        r.send(peer, 1, buf.data(), size);
        r.recv(peer, 1, buf.data(), size);
      } else {
        r.recv(peer, 1, buf.data(), size);
        r.send(peer, 1, buf.data(), size);
      }
    };
    for (int i = 0; i < 4; ++i) round();
    r.barrier();
    const Time t0 = r.now();
    for (int i = 0; i < iters; ++i) round();
    if (r.id() == 0) window = r.now() - t0;
  });
  return static_cast<double>(window) / (2.0 * iters);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  const int iters = opt.full ? 100 : 30;
  std::vector<std::size_t> sizes{8, 256, 4 * KiB, 64 * KiB, 1 * MiB};
  if (opt.full) sizes = {8, 64, 512, 4 * KiB, 32 * KiB, 256 * KiB, 1 * MiB, 4 * MiB};

  unr::bench::banner("Figure 4: Latency Test (ping-pong, 2 nodes)",
                     "UNR < MPI-RMA in most cases; PSCW closest; Fence worst for "
                     "small messages");
  for (const auto& prof : opt.systems()) {
    std::cout << "--- " << prof.name << " (" << prof.description << ") ---\n";
    TextTable t;
    t.header({"size", "UNR (us)", "Fence (us)", "PSCW (us)", "Lock (us)",
              "two-sided (us)"});
    for (std::size_t s : sizes) {
      t.row({format_bytes(s), unr::bench::us(unr_latency(prof, s, iters)),
             unr::bench::us(rma_latency(prof, s, iters, RmaScheme::kFence)),
             unr::bench::us(rma_latency(prof, s, iters, RmaScheme::kPscw)),
             unr::bench::us(rma_latency(prof, s, iters, RmaScheme::kLock)),
             unr::bench::us(two_sided_latency(prof, s, iters))});
    }
    std::cout << t << "\n";
  }

  // Extension: the UNR channel implementations themselves, on one system —
  // what each Table-I support level costs in latency.
  std::cout << "--- UNR channel comparison on TH-XY (extension) ---\n";
  TextTable tc;
  tc.header({"size", "native L3 (us)", "level-0 (us)", "level-4 hw (us)",
             "MPI fallback (us)"});
  const SystemProfile prof = make_th_xy();
  for (std::size_t s : sizes) {
    tc.row({format_bytes(s),
            unr::bench::us(unr_latency(prof, s, iters, ChannelKind::kNative)),
            unr::bench::us(unr_latency(prof, s, iters, ChannelKind::kLevel0)),
            unr::bench::us(unr_latency(prof, s, iters, ChannelKind::kLevel4)),
            unr::bench::us(unr_latency(prof, s, iters, ChannelKind::kMpiFallback))});
  }
  std::cout << tc << "\n";
  return 0;
}
