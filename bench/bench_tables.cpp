// Tables I and II of the paper, regenerated from the implementation:
//   Table I  — UNR support levels and their implementation specifications
//   Table II — the custom-bit survey of six interface families, with the
//              support level DERIVED by unrlib::classify (not hard-coded)
// plus Table III, the platform cost models used by every other benchmark.
#include <iostream>

#include "bench_util.hpp"
#include "fabric/personality.hpp"
#include "unr/support_level.hpp"

using namespace unr;
using namespace unr::unrlib;

namespace {

std::string bits_str(int b) { return b < 0 ? "Hash" : std::to_string(b); }

void print_table1() {
  bench::banner("Table I: UNR Support Levels", "levels 0-4 by remote-PUT custom bits");
  TextTable t;
  t.header({"Level", "PUT bits at remote", "Implementation specification",
            "Suggestion for users"});
  const char* widths[] = {"0", "8, 16", "32", "64, 128", "128 + hw add"};
  for (int l = 0; l <= 4; ++l) {
    const auto lvl = static_cast<SupportLevel>(l);
    t.row({support_level_name(lvl), widths[l], support_level_spec(lvl),
           support_level_suggestion(lvl)});
  }
  std::cout << t;
}

void print_table2() {
  bench::banner("Table II: UNR Support Level of High-Performance NICs",
                "support level derived from the custom-bit widths");
  TextTable t;
  t.header({"Interface", "HPC Interconnect", "PUT local", "PUT remote", "GET local",
            "GET remote", "UNR Support Level"});
  for (const auto& p : fabric::all_personalities()) {
    std::string put_local = bits_str(p.put_local_bits);
    std::string put_remote = bits_str(p.put_remote_bits);
    if (p.shared_put_bits) put_local = put_remote = std::to_string(p.put_local_bits) + " (shared)";
    t.row({interface_name(p.iface), p.hpc_interconnect, put_local, put_remote,
           bits_str(p.get_local_bits), bits_str(p.get_remote_bits),
           support_level_name(classify(p))});
  }
  std::cout << t;
}

void print_table3() {
  bench::banner("Table III: Experiment platform cost models",
                "simulator stand-ins for the four evaluation systems");
  TextTable t;
  t.header({"System", "NICs/node", "Gbps/NIC", "wire lat", "sw overhead",
            "memcpy Gbps", "cores", "Interface"});
  for (const auto& p : all_system_profiles()) {
    t.row({p.name, std::to_string(p.nics_per_node), TextTable::num(p.nic_gbps, 0),
           format_time(p.wire_latency), format_time(p.sw_overhead),
           TextTable::num(p.memcpy_gbps, 0), std::to_string(p.cores_per_node),
           interface_name(p.iface)});
  }
  std::cout << t;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::Options::parse(argc, argv);
  print_table1();
  print_table2();
  print_table3();
  return 0;
}
