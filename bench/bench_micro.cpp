// google-benchmark micro suite: real wall-time costs of UNR's hot data
// structures and numeric kernels (these run on the host CPU, independent of
// the virtual clock).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "fabric/completion.hpp"
#include "fabric/custom_bits.hpp"
#include "powerllel/fft.hpp"
#include "powerllel/tridiag.hpp"
#include "unr/channel.hpp"
#include "unr/signal.hpp"

namespace {

using unr::unrlib::Signal;

void BM_SignalApplySingle(benchmark::State& state) {
  Signal s(1u << 20, 32);
  std::int64_t n = 0;
  for (auto _ : state) {
    s.apply(-1);
    benchmark::DoNotOptimize(n += s.counter());
    if (s.triggered()) s.reset();
  }
}
BENCHMARK(BM_SignalApplySingle);

void BM_SignalApplyFragmented(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Signal s(1u << 20, 32);
  const std::int64_t lead = Signal::lead_addend(k, 32);
  const std::int64_t follow = Signal::follow_addend(32);
  for (auto _ : state) {
    s.apply(lead);
    for (int i = 1; i < k; ++i) s.apply(follow);
    if (s.triggered()) s.reset();
  }
}
BENCHMARK(BM_SignalApplyFragmented)->Arg(2)->Arg(4)->Arg(16);

void BM_AddendEncodeDecode(benchmark::State& state) {
  std::int64_t acc = 0;
  for (auto _ : state) {
    for (int k = 2; k <= 16; ++k) {
      const std::int64_t a = Signal::lead_addend(k, 32);
      acc += Signal::decode_addend(Signal::encode_addend(a, 32), 32);
    }
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AddendEncodeDecode);

void BM_NotificationWireEncode(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  unr::fabric::CustomBits bits;
  std::uint64_t idx = 0;
  std::int64_t code = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unr::unrlib::encode_notification(width, 20, 123, 3, bits));
    unr::unrlib::decode_notification(width, 20, bits, idx, code);
    benchmark::DoNotOptimize(idx + static_cast<std::uint64_t>(code));
  }
}
BENCHMARK(BM_NotificationWireEncode)->Arg(32)->Arg(64)->Arg(128);

void BM_CompletionQueue(benchmark::State& state) {
  unr::fabric::CompletionQueue q(4096);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) (void)q.push({});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_CompletionQueue);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  unr::Rng rng(1);
  std::vector<unr::powerllel::Complex> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    unr::powerllel::fft_inplace(x.data(), n, false);
    benchmark::DoNotOptimize(x[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(512)->Arg(4096);

void BM_Thomas(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> b(n, -3.0);
  unr::Rng rng(2);
  std::vector<unr::powerllel::Complex> d0(n);
  for (auto& v : d0) v = {rng.uniform(-1, 1), 0.0};
  for (auto _ : state) {
    auto d = d0;
    unr::powerllel::thomas_inplace(1.0, b, 1.0, d);
    benchmark::DoNotOptimize(d[0]);
  }
}
BENCHMARK(BM_Thomas)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
