// Ablation: distributed tridiagonal solver variants (PPE wall direction).
//
// The classic PDD (one down + one up message, decoupled 2x2 interface
// systems) versus the exact reduced sweep (serialized forward + backward
// elimination). PDD is faster — its messages are concurrent across blocks —
// but it is APPROXIMATE: the dropped couplings decay with the system's
// diagonal dominance to the power of the block size. The table shows both
// the virtual time and the max error against a sequential Thomas solve, for
// weakly and strongly dominant systems.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "powerllel/tridiag.hpp"
#include "powerllel/tridiag_port.hpp"
#include "runtime/world.hpp"

using namespace unr;
using namespace unr::powerllel;
using namespace unr::runtime;

namespace {

struct Result {
  Time elapsed = 0;
  double max_err = 0;
};

Result run_case(int nprocs, std::size_t m, std::size_t nlines, double dominance,
                TridiagMethod method) {
  const std::size_t n = m * static_cast<std::size_t>(nprocs);
  Rng rng(99);
  std::vector<TridiagLine> lines(nlines, TridiagLine{1.0, 1.0});
  std::vector<double> gdiag(nlines * n);
  std::vector<Complex> grhs(nlines * n);
  for (auto& x : gdiag) x = -(dominance + 0.2 * rng.uniform());
  for (auto& x : grhs) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<Complex> expect = grhs;
  reference_solve(lines, gdiag, expect.data(), nlines, n);

  World::Config wc;
  wc.nodes = nprocs;
  wc.profile = make_th_xy();
  wc.deterministic_routing = true;
  unr::bench::apply_world_flags(wc);
  World w(wc);
  Result res;
  std::vector<double> errs(static_cast<std::size_t>(nprocs), 0.0);
  w.run([&](Rank& r) {
    std::vector<int> group(static_cast<std::size_t>(nprocs));
    for (int i = 0; i < nprocs; ++i) group[static_cast<std::size_t>(i)] = i;
    auto port = make_mpi_tridiag_port(r, group, r.id(), 100);
    const std::size_t s = static_cast<std::size_t>(r.id()) * m;
    std::vector<double> diag(nlines * m);
    std::vector<Complex> rhs(nlines * m);
    for (std::size_t l = 0; l < nlines; ++l)
      for (std::size_t i = 0; i < m; ++i) {
        diag[l * m + i] = gdiag[l * n + s + i];
        rhs[l * m + i] = grhs[l * n + s + i];
      }
    DistTridiag solver(r.id(), nprocs, m);
    r.barrier();
    const Time t0 = r.now();
    solver.solve(lines, diag, rhs.data(), nlines, port->port(), method);
    r.barrier();
    if (r.id() == 0) res.elapsed = r.now() - t0;
    double err = 0;
    for (std::size_t l = 0; l < nlines; ++l)
      for (std::size_t i = 0; i < m; ++i)
        err = std::max(err, std::abs(rhs[l * m + i] - expect[l * n + s + i]));
    errs[static_cast<std::size_t>(r.id())] = err;
  });
  for (double e : errs) res.max_err = std::max(res.max_err, e);
  return res;
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1e", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  unr::bench::banner(
      "Ablation: distributed tridiagonal — exact reduced sweep vs PDD",
      "PDD trades a serialized two-sweep for decoupled neighbor exchanges; "
      "its error decays with dominance^block-size");

  const std::size_t nlines = 256;
  const std::size_t m = opt.full ? 64 : 32;
  TextTable t;
  t.header({"blocks", "dominance", "exact time (us)", "exact err", "PDD time (us)",
            "PDD err"});
  for (int p : {2, 4, 8}) {
    for (double dom : {2.05, 2.5, 4.0}) {
      const Result ex = run_case(p, m, nlines, dom, TridiagMethod::kReducedExact);
      const Result pdd = run_case(p, m, nlines, dom, TridiagMethod::kPddApprox);
      t.row({std::to_string(p), TextTable::num(dom, 2),
             unr::bench::us(static_cast<double>(ex.elapsed)), sci(ex.max_err),
             unr::bench::us(static_cast<double>(pdd.elapsed)), sci(pdd.max_err)});
    }
  }
  std::cout << t;
  std::cout << "\n(The PPE solver uses the exact sweep by default; PDD is safe\n"
               " once kx^2+ky^2 lifts the dominance — every mode but (0,0).)\n";
  return 0;
}
