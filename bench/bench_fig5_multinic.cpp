// Figure 5: UNR ping-pong tests with calculation (multi-NIC aggregation).
//
// Two process pairs across two TH-XY nodes (2 NICs per node).
//
// (a) Synchronous ping-pong with a fixed calculation equal to the one-NIC
//     transfer time after every reception. Sharing both NICs halves the
//     transfer, so messages are "received and calculated in advance":
//     round trip 4T -> 3T, i.e. up to +33% throughput at large sizes.
// (b) Pipelined stream (credit window of 2) where the receiver computes per
//     message. With a FIXED calculation equal to the transfer time, CPUs
//     and NICs are already saturated — sharing cannot help. With
//     calc ~ N(T, 0.3T), sharing absorbs the imbalance (~+10% at large
//     sizes): a pair that stalls on a long computation catches up at 2x
//     bandwidth afterwards.
#include <array>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

using namespace unr;
using namespace unr::runtime;
using namespace unr::unrlib;

namespace {

enum class Mode { kSync, kStream };

/// Aggregate throughput (bytes per virtual us) of the two pairs.
/// Pair layout: rank 0 (node0) <-> rank 2 (node1), rank 1 <-> rank 3.
double run_pairs(std::size_t size, int iters, bool shared_nics, Mode mode,
                 double calc_stddev_factor, std::uint64_t seed) {
  World::Config wc;
  wc.nodes = 2;
  wc.ranks_per_node = 2;
  wc.profile = make_th_xy();
  wc.deterministic_routing = true;
  wc.seed = seed;
  unr::bench::apply_world_flags(wc);
  World w(wc);

  Unr::Config uc;
  uc.multi_channel = shared_nics;
  uc.split_threshold = 1 * KiB;
  Unr unr(w, uc);

  // One-NIC transfer time: the calculation baseline T.
  const Time t_single = serialize_ns(size, wc.profile.nic_gbps) +
                        wc.profile.wire_latency + wc.profile.nic_overhead;

  Time elapsed = 0;
  w.run([&](Rank& r) {
    Rng rng(seed * 977 + static_cast<std::uint64_t>(r.id()));
    const int peer = (r.id() + 2) % 4;
    PutOptions opts;
    if (!shared_nics) opts.nic = r.id() % 2;  // pin: one NIC per process

    auto calc = [&] {
      double t = static_cast<double>(t_single);
      if (calc_stddev_factor > 0) t = rng.normal(t, calc_stddev_factor * t);
      if (t < 0) t = 0;
      r.compute(static_cast<Time>(t), 1);
    };

    if (mode == Mode::kSync) {
      std::vector<std::byte> buf(size);
      const MemHandle mh = unr.mem_reg(r.id(), buf.data(), size);
      const SigId rsig = unr.sig_init(r.id(), 1);
      const Blk my_blk = unr.blk_init(r.id(), mh, 0, size, rsig);
      Blk peer_blk;
      r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk, sizeof peer_blk);
      const Blk send_blk = unr.blk_init(r.id(), mh, 0, size);
      auto rounds = [&](int n) {
        for (int i = 0; i < n; ++i) {
          if (r.id() < 2) {
            unr.put(r.id(), send_blk, peer_blk, opts);
            unr.sig_wait(r.id(), rsig);
            unr.sig_reset(r.id(), rsig);
            calc();
          } else {
            unr.sig_wait(r.id(), rsig);
            unr.sig_reset(r.id(), rsig);
            calc();
            unr.put(r.id(), send_blk, peer_blk, opts);
          }
        }
      };
      rounds(2);
      r.barrier();
      const Time t0 = r.now();
      rounds(iters);
      r.barrier();
      if (r.id() == 0) elapsed = r.now() - t0;
      return;
    }

    // kStream: rank<2 produce, rank>=2 consume; credit window of 2 slots.
    constexpr int kSlots = 2;
    std::vector<std::byte> data(kSlots * size);
    std::vector<std::byte> credits(kSlots);
    const MemHandle dmh = unr.mem_reg(r.id(), data.data(), data.size());
    const MemHandle cmh = unr.mem_reg(r.id(), credits.data(), credits.size());
    std::array<SigId, kSlots> dsig{}, csig{};
    std::array<Blk, kSlots> my_data{}, my_credit{}, peer_data{}, peer_credit{};
    for (int s = 0; s < kSlots; ++s) {
      dsig[s] = unr.sig_init(r.id(), 1);
      csig[s] = unr.sig_init(r.id(), 1);
      my_data[s] = unr.blk_init(r.id(), dmh, static_cast<std::size_t>(s) * size, size,
                                dsig[s]);
      my_credit[s] = unr.blk_init(r.id(), cmh, static_cast<std::size_t>(s), 1, csig[s]);
    }
    // Exchange handles (data blks to the producer, credit blks to the consumer).
    std::vector<RequestPtr> reqs;
    reqs.push_back(r.irecv(peer, 2, peer_data.data(), sizeof peer_data));
    reqs.push_back(r.irecv(peer, 3, peer_credit.data(), sizeof peer_credit));
    reqs.push_back(r.isend(peer, 2, my_data.data(), sizeof my_data));
    reqs.push_back(r.isend(peer, 3, my_credit.data(), sizeof my_credit));
    r.wait_all(reqs);

    r.barrier();
    const Time t0 = r.now();
    if (r.id() < 2) {  // producer
      for (int i = 0; i < iters; ++i) {
        const int s = i % kSlots;
        if (i >= kSlots) {
          unr.sig_wait(r.id(), csig[s]);
          unr.sig_reset(r.id(), csig[s]);
        }
        unr.put(r.id(), unr.blk_init(r.id(), dmh, static_cast<std::size_t>(s) * size,
                                     size),
                peer_data[static_cast<std::size_t>(s)], opts);
      }
    } else {  // consumer
      for (int i = 0; i < iters; ++i) {
        const int s = i % kSlots;
        unr.sig_wait(r.id(), dsig[s]);
        unr.sig_reset(r.id(), dsig[s]);
        calc();
        unr.put(r.id(), unr.blk_init(r.id(), cmh, static_cast<std::size_t>(s), 1),
                peer_credit[static_cast<std::size_t>(s)], PutOptions{});
      }
    }
    r.barrier();
    if (r.id() == 0) elapsed = r.now() - t0;
  });

  const std::uint64_t moved = mode == Mode::kSync
                                  ? static_cast<std::uint64_t>(iters) * 2 * 2 * size
                                  : static_cast<std::uint64_t>(iters) * 2 * size;
  return static_cast<double>(moved) / (static_cast<double>(elapsed) / 1000.0);
}

std::string mib_s(double bytes_per_us) {
  return TextTable::num(bytes_per_us * 1e6 / (1024.0 * 1024.0), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = unr::bench::Options::parse(argc, argv);
  const int iters = opt.full ? 80 : 30;
  std::vector<std::size_t> sizes{16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB};
  if (opt.full) sizes.push_back(16 * MiB);

  unr::bench::banner(
      "Figure 5: UNR ping-pong with calculation on TH-XY (2 nodes x 2 NICs)",
      "(a) sync ping-pong, calc = T: sharing -> up to +33%; (b) pipelined "
      "stream: fixed calc ~ 0%, calc ~ N(T,0.3T) -> ~+10% at large sizes");

  std::cout << "--- (a) synchronous ping-pong, fixed calc = one-NIC transfer time ---\n";
  TextTable ta;
  ta.header({"size", "exclusive (MiB/s)", "shared (MiB/s)", "improvement"});
  for (std::size_t s : sizes) {
    const double e = run_pairs(s, iters, false, Mode::kSync, 0.0, 1);
    const double h = run_pairs(s, iters, true, Mode::kSync, 0.0, 1);
    ta.row({format_bytes(s), mib_s(e), mib_s(h), TextTable::pct(h / e - 1.0)});
  }
  std::cout << ta << "\n";

  std::cout << "--- (b) pipelined stream, window 2 ---\n";
  TextTable tb;
  tb.header({"size", "fixed calc: excl", "fixed: shared", "fixed improv.",
             "noisy calc: excl", "noisy: shared", "noisy improv."});
  for (std::size_t s : sizes) {
    const double fe = run_pairs(s, iters, false, Mode::kStream, 0.0, 3);
    const double fh = run_pairs(s, iters, true, Mode::kStream, 0.0, 3);
    const double ne = run_pairs(s, iters, false, Mode::kStream, 0.3, 3);
    const double nh = run_pairs(s, iters, true, Mode::kStream, 0.3, 3);
    tb.row({format_bytes(s), mib_s(fe), mib_s(fh), TextTable::pct(fh / fe - 1.0),
            mib_s(ne), mib_s(nh), TextTable::pct(nh / ne - 1.0)});
  }
  std::cout << tb << "\n";
  return 0;
}
