#include "scenarios/traffic.hpp"

#include <algorithm>

namespace unr::scenarios {

namespace {

using check::RoundSpec;
using check::WorkloadSpec;

std::uint64_t clamp_u64(std::uint64_t v, std::uint64_t lo, std::uint64_t hi) {
  return std::min(std::max(v, lo), hi);
}

int clamp_int(int v, int lo, int hi) { return std::min(std::max(v, lo), hi); }

/// Topology + fabric knobs shared by every pattern. sig_n_bits = 16 keeps all
/// armed counts (P-1 alltoall arrivals, combined FAA addends, robbery tallies)
/// far below the event-field capacity at any topology the builders accept.
WorkloadSpec base_spec(const TrafficParams& p) {
  WorkloadSpec s;
  s.seed = p.seed;
  s.profile = p.profile;
  s.iface = p.iface;
  s.nodes = std::max(p.nodes, 1);
  s.ranks_per_node = std::max(p.ranks_per_node, 1);
  if (s.nodes * s.ranks_per_node < 2) s.nodes = 2;  // all patterns need a peer
  s.sig_n_bits = 16;
  s.faults = p.faults;
  return s;
}

int round_count(const TrafficParams& p) { return clamp_int(p.rounds, 1, 64); }

void repeat(WorkloadSpec& s, const RoundSpec& proto, int n) {
  for (int i = 0; i < n; ++i) s.rounds.push_back(proto);
}

}  // namespace

WorkloadSpec ai_ring_allreduce(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kAllreduceRing;
  r.size = clamp_u64(p.size ? p.size : 1024, 1, 4096);  // doubles per rank
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec ai_tree_allreduce(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kAllreduceTree;
  r.root = 0;
  r.size = clamp_u64(p.size ? p.size : 512, 1, 4096);  // doubles per rank
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec ai_pipeline(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kPipeline;
  r.size = clamp_u64(p.size ? p.size : 4096, 1, 64 * KiB);  // µbatch bytes
  r.count = clamp_int(p.count ? p.count : 8, 1, 64);        // micro-batches
  r.depth = clamp_int(p.depth ? p.depth : 2, 1, 32);        // overlap window
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec ai_moe_alltoall(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kAlltoall;
  r.size = clamp_u64(p.size ? p.size : 256, 1, 4096);  // base bytes per pair
  // Skewed expert routing: one rank is the 4x-hot expert; derive it from the
  // seed so different seeds stress different destinations.
  r.root = static_cast<int>(p.seed % static_cast<std::uint64_t>(s.nranks()));
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec sync_faa_tree(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kFaaCombine;
  r.root = 0;
  r.depth = clamp_int(p.depth ? p.depth : 2, 2, 8);  // tree arity
  // Max per-rank addend; the grand total (<= P * count) must stay under the
  // validate() combining budget of 4096.
  const int total_cap = std::max(4096 / s.nranks(), 1);
  r.count = clamp_int(p.count ? p.count : 4, 1, std::min(64, total_cap));
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec sync_barrier_tree(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kBarrierTree;
  r.root = 0;
  r.depth = clamp_int(p.depth ? p.depth : 2, 2, 8);  // tree arity
  repeat(s, r, round_count(p));
  return s;
}

WorkloadSpec sync_work_steal(const TrafficParams& p) {
  WorkloadSpec s = base_spec(p);
  RoundSpec r;
  r.kind = RoundSpec::Kind::kSteal;
  r.size = clamp_u64(p.size ? p.size : 64, 1, 4096);  // bytes per work item
  // Items (and steals) per rank; the steal tag plane budgets P * count <= 4096.
  const int tag_cap = std::max(4096 / s.nranks(), 1);
  r.count = clamp_int(p.count ? p.count : 4, 1, std::min(16, tag_cap));
  repeat(s, r, round_count(p));
  return s;
}

namespace {

constexpr Pattern kPatterns[] = {
    {"ai_ring_allreduce", &ai_ring_allreduce},
    {"ai_tree_allreduce", &ai_tree_allreduce},
    {"ai_pipeline", &ai_pipeline},
    {"ai_moe_alltoall", &ai_moe_alltoall},
    {"sync_faa_tree", &sync_faa_tree},
    {"sync_barrier_tree", &sync_barrier_tree},
    {"sync_work_steal", &sync_work_steal},
};

}  // namespace

std::span<const Pattern> patterns() { return kPatterns; }

const Pattern* find_pattern(std::string_view name) {
  for (const Pattern& p : kPatterns)
    if (name == p.name) return &p;
  return nullptr;
}

}  // namespace unr::scenarios
