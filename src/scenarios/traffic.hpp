// Scenario pack: named distributed-AI and scalable-synchronization traffic
// generators (ROADMAP item 3).
//
// Each builder expands a small parameter set into an explicit
// check::WorkloadSpec made of the scenario-pack round kinds, so one
// definition serves the whole stack: the fuzz oracle verifies it, the
// differential runner replays it across channel levels and shard counts,
// svc::RunSpec serves it over TCP (cacheable by digest), and
// bench_wallclock measures it under the CI perf gate.
//
// Patterns:
//   ai_ring_allreduce   chunked ring allreduce (reduce-scatter + allgather)
//   ai_tree_allreduce   binary-tree reduce + broadcast-down
//   ai_pipeline         pipeline-parallel micro-batch relay with overlap cap
//   ai_moe_alltoall     MoE all-to-all with a 4x-hot expert rank
//   sync_faa_tree       combining fetch-and-add tree (MMAS addends)
//   sync_barrier_tree   software barrier tree over signals
//   sync_work_steal     work-queue steal traffic (GET + robbery notify)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "check/workload.hpp"

namespace unr::scenarios {

/// Common knobs; every field a builder ignores is simply unused. Zero
/// `size` / `count` / `depth` mean "the pattern's default".
struct TrafficParams {
  std::uint64_t seed = 1;
  int nodes = 4;
  int ranks_per_node = 2;
  std::string profile = "TH-XY";
  Interface iface = Interface::kVerbs;
  std::uint64_t size = 0;  ///< payload knob (doubles or bytes, per pattern)
  int count = 0;           ///< micro-batches / items / addend cap
  int depth = 0;           ///< tree arity or pipeline overlap window
  int rounds = 2;          ///< how many rounds of the pattern to run
  bool faults = false;
};

check::WorkloadSpec ai_ring_allreduce(const TrafficParams& p);
check::WorkloadSpec ai_tree_allreduce(const TrafficParams& p);
check::WorkloadSpec ai_pipeline(const TrafficParams& p);
check::WorkloadSpec ai_moe_alltoall(const TrafficParams& p);
check::WorkloadSpec sync_faa_tree(const TrafficParams& p);
check::WorkloadSpec sync_barrier_tree(const TrafficParams& p);
check::WorkloadSpec sync_work_steal(const TrafficParams& p);

struct Pattern {
  const char* name;
  check::WorkloadSpec (*make)(const TrafficParams&);
};

/// All seven patterns, in registry order.
std::span<const Pattern> patterns();
/// nullptr when no pattern has that name.
const Pattern* find_pattern(std::string_view name);

}  // namespace unr::scenarios
