// UNR: Unified Notifiable RMA library — public interface (Section IV).
//
// One Unr instance serves every rank of a World (the simulator equivalent of
// linking the library into each process). All interfaces take the calling
// rank as their first argument, mirroring the per-process state of a real
// deployment.
//
// Quick tour (paper names in parentheses):
//   mem_reg     (UNR_Mem_Reg)    register a memory region
//   sig_init    (UNR_Sig_Init)   create a signal triggering after n events
//   sig_reset   (UNR_Sig_Reset)  re-arm + synchronization-error check
//   sig_wait    (UNR_Sig_Wait)   block until triggered + overflow check
//   blk_init    (UNR_Blk_Init)   make a transportable data handle
//   put / get   (UNR_Put/Get)    notifiable RMA between Blks
//   make_plan   (UNR_RMA_Plan)   record puts/gets, replay with Plan::start
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "runtime/world.hpp"
#include "unr/channel.hpp"
#include "unr/engine.hpp"
#include "unr/ids.hpp"
#include "unr/signal.hpp"
#include "unr/support_level.hpp"

namespace unr::unrlib {

/// Per-transfer options, shared by PUT and GET (the knobs — local-signal
/// override, forced split, NIC pinning — are direction-agnostic).
struct XferOptions {
  /// Override the local-completion signal (defaults to the local Blk's).
  SigId local_sig = kNoSig;
  bool use_local_blk_sig = true;
  /// Force a specific fragment count (0 = let the scheduler decide).
  int force_split = 0;
  /// Pin to one NIC (-1 = scheduler's choice).
  int nic = -1;
};
/// Directional aliases. `get()` historically took PutOptions; both names
/// stay valid and interchangeable.
using PutOptions = XferOptions;
using GetOptions = XferOptions;

class Plan;

class Unr {
 public:
  struct Config {
    ChannelKind channel = ChannelKind::kAuto;
    int default_sig_n = 32;       ///< default event-field width N
    bool multi_channel = true;    ///< split large messages over the node's NICs
    std::size_t split_threshold = 64 * KiB;
    int max_split = 0;            ///< max fragments per message (0 = #NICs)
    int level2_index_bits = 20;   ///< mode-2 split of a 32-bit immediate
    int level2_mode = 2;          ///< 1: index-only; 2: index+addend split
    bool enable_hw_offload = false;  ///< model the proposed level-4 hardware
    /// KNEM/XPMEM-style intra-node fast path (Section IV-E-2): same-node
    /// transfers bypass the NIC entirely — a kernel-assisted single copy at
    /// host memory bandwidth, notified through the software queue.
    bool shm_intra_node = false;
    Time shm_latency = 350;  ///< page-pin + syscall cost of the assisted copy
    Engine::Config engine;
  };

  explicit Unr(runtime::World& world);  ///< default configuration
  Unr(runtime::World& world, Config cfg);
  ~Unr();

  Unr(const Unr&) = delete;
  Unr& operator=(const Unr&) = delete;

  // --- Memory registration ---
  MemHandle mem_reg(int self, void* buf, std::size_t size);
  void mem_dereg(int self, const MemHandle& h);

  // --- Signals ---
  /// Create a signal that triggers after `num_event` completion events.
  /// `n_bits` < 0 uses the configured default N.
  SigId sig_init(int self, std::int64_t num_event, int n_bits = -1);
  void sig_reset(int self, SigId sig);
  void sig_wait(int self, SigId sig);
  bool sig_test(int self, SigId sig);
  /// sig_wait with a deadline: false = `timeout` virtual ns passed without
  /// the signal triggering (e.g. the transfer wedged on a failed fabric).
  bool sig_wait_for(int self, SigId sig, Time timeout);
  /// Block until ANY of `sigs` triggers; returns its index within `sigs`.
  /// Lets consumers process completions in arrival order (e.g. the
  /// pipelined transpose of Fig. 3e). Triggered entries the caller has
  /// already consumed should be removed or reset first. A SigId appearing
  /// more than once is waited on once; the FIRST occurrence's index is
  /// returned when it triggers.
  std::size_t sig_wait_any(int self, std::span<const SigId> sigs);
  /// sig_wait_any with a deadline. Returns the index of a triggered signal,
  /// or kWaitAnyTimeout if `timeout` virtual ns passed with none triggered.
  /// Boundary semantics match Cond::wait_for: timeout == 0 polls each
  /// signal exactly once and returns; a trigger landing exactly at the
  /// deadline wins over the timeout.
  std::size_t sig_wait_any_for(int self, std::span<const SigId> sigs, Time timeout);
  static constexpr std::size_t kWaitAnyTimeout = static_cast<std::size_t>(-1);
  std::int64_t sig_counter(int self, SigId sig) const;

  // --- Blocks ---
  Blk blk_init(int self, const MemHandle& mem, std::size_t offset, std::size_t size,
               SigId sig = kNoSig);

  // --- RMA ---
  /// PUT the local block into the remote block. The remote Blk's bound
  /// signal is notified at the receiver on delivery; the local signal (the
  /// local Blk's, or opts.local_sig) on local completion.
  void put(int self, const Blk& local, const Blk& remote, const PutOptions& opts = {});
  /// GET the remote block into the local block. The local signal fires when
  /// the data lands; the remote Blk's signal notifies the owner.
  void get(int self, const Blk& local, const Blk& remote, const GetOptions& opts = {});

  // --- Plans ---
  std::unique_ptr<Plan> make_plan(int self);

  // --- Introspection ---
  SupportLevel support_level() const { return channel_->level(); }
  const char* channel_name() const { return channel_->name(); }
  Channel& channel() { return *channel_; }
  runtime::World& world() { return world_; }
  fabric::Fabric& fabric() { return world_.fabric(); }
  const Config& config() const { return cfg_; }
  Engine& engine(int node) { return *engines_[static_cast<std::size_t>(node)]; }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t fragments = 0;       ///< extra sub-messages from splitting
    std::uint64_t companions = 0;      ///< ordered companion notifications
    std::uint64_t encode_fallbacks = 0;///< (p,a) did not fit in the custom bits
    std::uint64_t shm_fastpath = 0;    ///< intra-node kernel-assisted copies
    std::uint64_t failovers = 0;       ///< fragments re-issued after a NIC died
  };
  /// DEPRECATED shim (one PR): snapshot of the registry's "unr.*" counters.
  Stats stats() const;
  /// Zero EVERY metric of this simulation's registry — library, engine,
  /// fabric and solver counters alike — so benches that loop configurations
  /// over one World start each run from a clean slate.
  void reset_stats();

  /// Human-readable dump of library + engine + fabric counters (operations,
  /// fragments, companion messages, CQEs drained, CQ overflow retries).
  void print_stats(std::ostream& os) const;

  // --- Internal (channels and engines) ---
  Signal& sig_at(int node, SigId id) const;
  /// Apply a decoded (index, code) notification on `node`'s signal table.
  void apply_notification(int node, SigId id, std::int64_t code);
  int node_of(int rank) const { return world_.fabric().node_of(rank); }
  /// Re-issue a fragment whose first transmission died with a failed NIC.
  /// Channels install this (via PutArgs::on_lost) when the notification can
  /// be re-encoded safely; the fragment is re-put on a surviving NIC, so a
  /// K-way split degrades to (K-1)-way instead of hanging the signal.
  void handle_fragment_failover(const XferOp& op);
  /// Pre-resolved registry handles for the library's own counters; channels
  /// bump companions / encode_fallbacks through this.
  struct Metrics {
    obs::Counter puts, gets, fragments, companions, encode_fallbacks;
    obs::Counter shm_fastpath, failovers;
  };
  Metrics& metrics() { return m_; }

 private:
  friend class Plan;

  struct FragPlan {
    int count;
    std::int64_t r_lead, r_follow, l_lead, l_follow;  // raw addends
  };
  void init_telemetry();
  int decide_split(int self, const Blk& remote, std::size_t size,
                   const XferOptions& opts) const;
  void do_xfer(bool is_put, int self, const Blk& local, const Blk& remote,
               const XferOptions& opts);
  void do_shm_xfer(bool is_put, int self, void* lptr, const Blk& remote,
                   std::size_t size, SigId lsig, SigId rsig);

  runtime::World& world_;
  Config cfg_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Engine>> engines_;              // per node
  std::vector<std::vector<std::unique_ptr<Signal>>> sigs_;    // per node
  Metrics m_;
  struct TraceIds {
    bool on = false;
    obs::StrId cat, sig_apply, k_sig, k_code;
  };
  TraceIds tr_;
};

/// A recorded series of RMA operations (UNR_RMA_Plan / UNR_Plan_Start).
/// Record the transfers once, outside the application's main loop; replay
/// them every iteration with start(). Completion is observed through the
/// signals bound to the Blks.
class Plan {
 public:
  void add_put(const Blk& local, const Blk& remote, const PutOptions& opts = {});
  void add_get(const Blk& local, const Blk& remote, const GetOptions& opts = {});
  /// A node-local copy executed at start() (e.g. the self-block of an
  /// all-to-all); applies the given signals with a = -1 when done.
  void add_local_copy(void* dst, const void* src, std::size_t size,
                      SigId sig_a = kNoSig, SigId sig_b = kNoSig);

  /// Post every recorded operation (non-blocking; wait on the signals).
  void start();

  std::size_t size() const { return ops_.size(); }
  int owner() const { return self_; }

 private:
  friend class Unr;
  Plan(Unr& unr, int self) : unr_(unr), self_(self) {}

  struct Op {
    enum class Kind { kPut, kGet, kCopy } kind;
    Blk local, remote;
    XferOptions opts;
    void* copy_dst = nullptr;
    const void* copy_src = nullptr;
    std::size_t copy_size = 0;
    SigId copy_sig_a = kNoSig, copy_sig_b = kNoSig;
  };

  Unr& unr_;
  int self_;
  std::vector<Op> ops_;
};

}  // namespace unr::unrlib
