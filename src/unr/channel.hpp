// UNR Transport Layer: the channel abstraction over Notifiable RMA
// Primitives (Section IV-A).
//
// A channel moves one fragment and arranges for the bound signals to be
// notified. How the (p, a) pair travels — inside the custom bits, in an
// ordered companion message, through an MPI-like two-sided path, or applied
// by hardware — is what distinguishes the implementations.
#pragma once

#include <cstdint>
#include <memory>

#include "fabric/completion.hpp"
#include "fabric/memory.hpp"
#include "unr/ids.hpp"
#include "unr/support_level.hpp"

namespace unr::unrlib {

class Unr;

/// One fragment transfer with fully-computed notification bookkeeping.
/// The Context's splitter fills the addends (raw + compressed code).
struct XferOp {
  int src_rank = -1;
  void* local = nullptr;  ///< put: source buffer; get: destination buffer
  fabric::MemRef remote;
  std::size_t size = 0;
  int nic = -1;

  SigId rsig = kNoSig;  ///< signal at the remote side's node
  std::int64_t r_addend = 0;
  std::int64_t r_code = 0;
  int r_nbits = 0;

  SigId lsig = kNoSig;  ///< signal at the caller's node
  std::int64_t l_addend = 0;
  std::int64_t l_code = 0;
  int l_nbits = 0;
};

enum class ChannelKind {
  kAuto,         ///< native channel configured from the system's interface
  kNative,       ///< levels 1-3, notification in the custom bits
  kLevel0,       ///< no custom bits: ordered companion message
  kLevel4,       ///< proposed hardware offload: NIC applies *p += a
  kMpiFallback,  ///< two-sided emulation (portability fallback)
};

const char* channel_kind_name(ChannelKind k);

class Channel {
 public:
  explicit Channel(Unr& ctx) : ctx_(ctx) {}
  virtual ~Channel() = default;

  virtual const char* name() const = 0;
  virtual SupportLevel level() const = 0;
  /// Can fragments of one message safely aggregate into one signal?
  virtual bool multi_channel() const = 0;

  virtual void put(const XferOp& op) = 0;
  virtual void get(const XferOp& op) = 0;

  /// Decode and apply a completion-queue entry drained by the polling
  /// engine on `node`. Channels that never produce CQEs ignore this.
  virtual void process_cqe(int node, const fabric::Cqe& cqe);

 protected:
  /// Register the companion-notification AM handler on every rank. Used when
  /// (p, a) cannot travel in the custom bits: level 0, level-1 overflow, and
  /// GET-remote notification on interfaces with 0 GET bits (Verbs).
  void register_companion_handler();
  /// Send a companion notification to `dst_rank`'s node. `ordered` keeps it
  /// behind the data it notifies for (FIFO per rank pair).
  void send_companion(int src_rank, int dst_rank, SigId idx, std::int64_t code,
                      bool ordered, int nic = -1);

  Unr& ctx_;
};

/// AM channel ids used by the UNR transport layer (the runtime's two-sided
/// protocol owns 0..7, windows own 8+; UNR starts at 17).
inline constexpr int kAmCompanion = 17;
inline constexpr int kAmFallbackPut = 18;
inline constexpr int kAmFallbackGetReq = 19;
inline constexpr int kAmFallbackGetRep = 20;

std::unique_ptr<Channel> make_channel(ChannelKind kind, Unr& ctx);

// --- Wire encoding of (signal index, addend code) into W custom bits ---
//
// W >= 128 : index in the low 64, raw code in the high 64
// W == 64  : index in bits 0..31, code (signed) in bits 32..63
// 17..63   : mode-2 split: index in the low x bits, code in the rest
// 1..16    : index only; code must be 0 (a = -1)
// W == 0   : nothing fits
//
// Returns false when (index, code) does not fit in W bits with the given
// split — the caller falls back to a companion message.
bool encode_notification(int width, int index_bits, std::uint64_t index,
                         std::int64_t code, fabric::CustomBits& out);
void decode_notification(int width, int index_bits, const fabric::CustomBits& in,
                         std::uint64_t& index, std::int64_t& code);

}  // namespace unr::unrlib
