// Collective operations built ON TOP of UNR notified RMA.
//
// The paper deliberately keeps collectives out of the core library
// (Section IV-E-3) and suggests implementing them as acceleration libraries
// over UNR — citing prior RMA-collective work [56][57]. This module is that
// library: persistent collectives whose setup phase exchanges Blk handles
// once and whose execution phase is pure notified PUTs + MMAS signals, with
// no tag matching and no handshakes.
//
// All collectives here are persistent objects: construct them collectively
// (every rank, same order), then call run() any number of times. Buffers
// are fixed at construction (the usual trade of RMA collectives).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

/// Dissemination barrier over notified 1-byte PUTs.
/// ceil(log2 P) rounds; round k signals rank (self + 2^k) mod P.
class RmaBarrier {
 public:
  /// Collective constructor (uses the two-sided runtime once, for setup).
  RmaBarrier(Unr& unr, runtime::Rank& rank);
  void run();

 private:
  Unr& unr_;
  runtime::Rank& rank_;
  int rounds_;
  // Sequence-stamped mailbox slots: one per round, double-buffered so
  // consecutive barriers cannot interfere.
  static constexpr int kSets = 2;
  std::vector<std::byte> mailbox_;
  MemHandle mem_;
  std::vector<SigId> sigs_;          // [set * rounds + round]
  std::vector<Blk> peer_slots_;      // where I signal in round k, per set
  int current_set_ = 0;
};

/// Binomial-tree broadcast of a fixed buffer via notified PUTs.
class RmaBcast {
 public:
  /// Every rank passes its buffer of `size` bytes; `root`'s contents are
  /// distributed on each run().
  RmaBcast(Unr& unr, runtime::Rank& rank, int root, void* buf, std::size_t size);
  /// Quiesces: drains the children's final consumption credits, which target
  /// this object's staging memory (the RDMA rule: registered memory must
  /// outlive every operation aimed at it). Must run on the owning rank,
  /// inside the simulation.
  ~RmaBcast();
  void run();

 private:
  Unr& unr_;
  runtime::Rank& rank_;
  int root_;
  std::size_t size_ = 0;
  MemHandle mem_;
  SigId recv_sig_ = kNoSig;   // parent's put landed
  SigId send_sig_ = kNoSig;   // my puts to children completed locally
  Blk my_blk_;
  std::vector<Blk> child_blks_;
  int vrank_ = 0;  // rank relative to root
  bool first_use_ = true;
  // Consumption credits: the pre-synchronization for buffer reuse across
  // runs (children put one byte back once they have consumed the data).
  std::vector<std::byte> credit_bytes_;
  MemHandle credit_mem_;
  SigId credit_sig_ = kNoSig;
  Blk parent_credit_slot_;
};

/// Ring allgather: every rank contributes `size` bytes; after run(),
/// everyone holds all P blocks in rank order.
class RmaAllgather {
 public:
  RmaAllgather(Unr& unr, runtime::Rank& rank, void* buf, std::size_t block_size);
  void run();

 private:
  Unr& unr_;
  runtime::Rank& rank_;
  std::size_t block_ = 0;
  MemHandle mem_;
  // One signal per ring step (the block forwarded in step s), double-buffered.
  static constexpr int kSets = 2;
  std::vector<SigId> step_sigs_;  // [set * (P-1) + step]
  std::vector<Blk> right_slots_;  // the right neighbor's slot for step s, per set
  SigId send_sig_ = kNoSig;
  int current_set_ = 0;
  bool first_use_ = true;
};

}  // namespace unr::unrlib
