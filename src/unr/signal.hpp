// MMAS: Multi-channel Multi-message Aggregated Signal (Section IV-B).
//
// A signal aggregates completion events from one or more peers and from the
// sub-messages of multi-NIC transfers into a single waitable condition.
//
// Layout of the signed 64-bit `counter` (N = event-field width):
//
//    63 ............ N+1 |  N  | N-1 ............ 0
//    remaining sub-msgs  | OVF |  remaining events
//
// Addends (applied when one completion arrives):
//   * message on one channel:             a = -1
//   * K sub-messages, the "lead" one:     a = -1 + ((K-1) << (N+1))
//   * K sub-messages, each "follower":    a = -(1 << (N+1))
//
// counter == 0  <=>  all expected events arrived and no fragment is still
// in flight. If MORE than num_event events arrive, the event field borrows
// and bit N (the overflow-detect bit) flips to 1 — two's complement gives
// the error detector for free, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cond.hpp"

namespace unr::unrlib {

class Signal {
 public:
  /// A signal that triggers after `num_event` completion events.
  /// `n_bits` is N, the event-field width; num_event must fit in it.
  Signal(std::int64_t num_event, int n_bits);

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  std::int64_t num_event() const { return num_event_; }
  int n_bits() const { return n_; }
  std::int64_t counter() const { return counter_; }

  /// True once all expected events (and fragments) have arrived.
  bool triggered() const { return counter_ == 0; }

  /// Overflow-detect bit: more events arrived than num_event.
  bool overflow_detected() const { return (counter_ >> n_) & 1; }

  /// Apply one completion's addend; wakes waiters when the signal triggers.
  void apply(std::int64_t addend);

  /// Re-arm: set counter back to num_event. Per the paper's bug-avoiding
  /// contract this must be called after the corresponding buffers are ready;
  /// if the counter is not zero, a message arrived earlier than expected (a
  /// synchronization error) and a warning is emitted.
  void reset();

  /// Block the calling actor until the signal triggers. Emits a warning if
  /// the overflow bit is set. Returns the number of waits performed so far.
  void wait();

  /// Nonblocking variant of wait(): true if triggered (with the same
  /// overflow check).
  bool test();

  /// Like wait(), but gives up after `timeout` virtual ns. Returns true when
  /// the signal triggered (or overflowed — with the usual warning), false on
  /// timeout. Lets applications detect a wedged transfer (e.g. every NIC on
  /// the peer's node failed) instead of hanging.
  bool wait_for(Time timeout);

  /// The wait queue (used by Unr::sig_wait_any to block on several signals;
  /// wakeups may be spurious, callers re-check their predicate).
  sim::Cond& cond() { return cond_; }

  // --- Addend encodings ---
  static std::int64_t single_addend() { return -1; }
  static std::int64_t lead_addend(int k, int n_bits) {
    return -1 + (static_cast<std::int64_t>(k - 1) << (n_bits + 1));
  }
  static std::int64_t follow_addend(int n_bits) {
    return -(static_cast<std::int64_t>(1) << (n_bits + 1));
  }

  /// Compressed wire form of an addend ("code"): 0 -> single (-1);
  /// v > 0 -> lead with K-1 = v; -1 -> follower. Keeps notifications small
  /// enough for narrow custom-bit widths (Table I level 2 mode 2).
  static std::int64_t encode_addend(std::int64_t addend, int n_bits);
  static std::int64_t decode_addend(std::int64_t code, int n_bits);

  // --- Level-4 hardware offload hooks ---
  /// Raw counter storage: the simulated NIC's atomic-add offload writes it
  /// directly (the paper's proposed hardware feature).
  std::int64_t* raw_counter() { return &counter_; }
  /// Called by the NIC after a hardware add; performs the trigger check
  /// that Signal::apply would have done in software.
  void hw_notify();

  /// Diagnostics.
  std::uint64_t warnings() const { return warnings_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

 private:
  void warn(const std::string& what);

  std::int64_t num_event_;
  int n_;
  std::int64_t counter_;
  sim::Cond cond_;
  std::uint64_t warnings_ = 0;
  std::string name_;
};

}  // namespace unr::unrlib
