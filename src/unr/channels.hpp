// Internal: constructors of the concrete channel implementations.
#pragma once

#include <memory>

#include "unr/channel.hpp"

namespace unr::unrlib {

std::unique_ptr<Channel> make_native_channel(Unr& ctx);
std::unique_ptr<Channel> make_level0_channel(Unr& ctx);
std::unique_ptr<Channel> make_level4_channel(Unr& ctx);
std::unique_ptr<Channel> make_fallback_channel(Unr& ctx);

}  // namespace unr::unrlib
