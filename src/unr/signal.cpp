#include "unr/signal.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"

namespace unr::unrlib {

Signal::Signal(std::int64_t num_event, int n_bits) : num_event_(num_event), n_(n_bits) {
  UNR_CHECK_MSG(n_bits >= 1 && n_bits <= 61, "signal N out of range: " << n_bits);
  UNR_CHECK_MSG(num_event >= 1 && num_event < (std::int64_t{1} << n_bits),
                "num_event " << num_event << " does not fit in N=" << n_bits << " bits");
  counter_ = num_event_;
}

void Signal::apply(std::int64_t addend) {
  counter_ += addend;
  // Also wake waiters when the overflow bit flips on: the counter will never
  // return to zero, and a silent hang would hide the synchronization bug
  // that the bit exists to expose.
  if (counter_ == 0 || overflow_detected()) cond_.notify_all();
}

void Signal::hw_notify() {
  // The hardware already performed the add; replicate apply()'s wakeup —
  // INCLUDING the overflow case. An over-arrival flips the overflow bit and
  // carries the counter past zero without ever equalling it; waiters must
  // still wake (to warn and return), or sig_wait blocks forever on a
  // synchronization bug the overflow bit exists to expose.
  if (counter_ == 0 || overflow_detected()) cond_.notify_all();
}

void Signal::warn(const std::string& what) {
  ++warnings_;
  std::ostringstream os;
  os << "UNR signal" << (name_.empty() ? "" : " '" + name_ + "'") << ": " << what
     << " (counter=" << counter_ << ", num_event=" << num_event_ << ", N=" << n_ << ")";
  log_warn(os.str());
}

void Signal::reset() {
  if (counter_ != 0) {
    if (overflow_detected())
      warn("reset with overflow bit set — more events arrived than num_event");
    else
      warn("reset before trigger — a message arrived earlier than expected, "
           "check the application's pre-synchronization");
  }
  counter_ = num_event_;
}

void Signal::wait() {
  if (overflow_detected()) {
    warn("overflow bit set in wait — more events arrived than num_event");
    return;  // the counter cannot reach zero any more
  }
  cond_.wait([&] { return counter_ == 0 || overflow_detected(); });
  if (overflow_detected())
    warn("overflow bit set in wait — more events arrived than num_event");
}

bool Signal::wait_for(Time timeout) {
  if (overflow_detected()) {
    warn("overflow bit set in wait — more events arrived than num_event");
    return true;  // the counter cannot reach zero any more
  }
  const bool done =
      cond_.wait_for([&] { return counter_ == 0 || overflow_detected(); }, timeout);
  if (overflow_detected())
    warn("overflow bit set in wait — more events arrived than num_event");
  return done;
}

bool Signal::test() {
  if (overflow_detected())
    warn("overflow bit set in test — more events arrived than num_event");
  return counter_ == 0;
}

std::int64_t Signal::encode_addend(std::int64_t addend, int n_bits) {
  if (addend == -1) return 0;
  if (addend == follow_addend(n_bits)) return -1;
  // Must be a lead addend: -1 + (K-1 << (N+1)).
  const std::int64_t k_minus_1 = (addend + 1) >> (n_bits + 1);
  UNR_CHECK_MSG(k_minus_1 > 0 && lead_addend(static_cast<int>(k_minus_1 + 1), n_bits) ==
                                     addend,
                "addend " << addend << " is not a valid MMAS addend for N=" << n_bits);
  return k_minus_1;
}

std::int64_t Signal::decode_addend(std::int64_t code, int n_bits) {
  if (code == 0) return -1;
  if (code < 0) return follow_addend(n_bits);
  return lead_addend(static_cast<int>(code + 1), n_bits);
}

}  // namespace unr::unrlib
