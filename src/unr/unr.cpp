#include "unr/unr.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/check.hpp"
#include "unr/channels.hpp"

namespace unr::unrlib {

namespace {

ChannelKind resolve_kind(const Unr::Config& cfg) {
  if (cfg.channel != ChannelKind::kAuto) return cfg.channel;
  return cfg.enable_hw_offload ? ChannelKind::kLevel4 : ChannelKind::kNative;
}

}  // namespace

std::unique_ptr<Channel> make_channel(ChannelKind kind, Unr& ctx) {
  switch (kind) {
    case ChannelKind::kNative: return make_native_channel(ctx);
    case ChannelKind::kLevel0: return make_level0_channel(ctx);
    case ChannelKind::kLevel4: return make_level4_channel(ctx);
    case ChannelKind::kMpiFallback: return make_fallback_channel(ctx);
    case ChannelKind::kAuto: break;
  }
  UNR_CHECK_MSG(false, "unresolved channel kind");
  __builtin_unreachable();
}

Unr::Unr(runtime::World& world) : Unr(world, Config{}) {}

Unr::Unr(runtime::World& world, Config cfg) : world_(world), cfg_(cfg) {
  init_telemetry();
  const ChannelKind kind = resolve_kind(cfg_);
  sigs_.resize(static_cast<std::size_t>(world_.fabric().node_count()));
  channel_ = make_channel(kind, *this);

  // Level 4 applies addends in hardware: no polling engine, no stolen core.
  const bool engine_active = kind != ChannelKind::kLevel4;
  for (int n = 0; n < world_.fabric().node_count(); ++n)
    engines_.push_back(std::make_unique<Engine>(*this, n, cfg_.engine, engine_active));

  if (engine_active) {
    for (int n = 0; n < world_.fabric().node_count(); ++n) {
      Engine* eng = engines_[static_cast<std::size_t>(n)].get();
      for (int i = 0; i < world_.fabric().nics_per_node(); ++i) {
        fabric::Nic& nic = world_.fabric().nic(n, i);
        nic.set_remote_cqe_hook([eng] { eng->notify_work(); });
        nic.set_local_cqe_hook([eng] { eng->notify_work(); });
      }
    }
  }
}

Unr::~Unr() = default;

void Unr::init_telemetry() {
  obs::Telemetry& tel = world_.kernel().telemetry();
  obs::Registry& reg = tel.registry();
  m_.puts = reg.counter("unr.puts");
  m_.gets = reg.counter("unr.gets");
  m_.fragments = reg.counter("unr.fragments");
  m_.companions = reg.counter("unr.companions");
  m_.encode_fallbacks = reg.counter("unr.encode_fallbacks");
  m_.shm_fastpath = reg.counter("unr.shm_fastpath");
  m_.failovers = reg.counter("unr.failovers");
  tr_.on = tel.tracer().enabled();
  tr_.cat = tel.tracer().intern("unr");
  tr_.sig_apply = tel.tracer().intern("sig_apply");
  tr_.k_sig = tel.tracer().intern("sig");
  tr_.k_code = tel.tracer().intern("code");
}

Unr::Stats Unr::stats() const {
  Stats s;
  s.puts = m_.puts.value();
  s.gets = m_.gets.value();
  s.fragments = m_.fragments.value();
  s.companions = m_.companions.value();
  s.encode_fallbacks = m_.encode_fallbacks.value();
  s.shm_fastpath = m_.shm_fastpath.value();
  s.failovers = m_.failovers.value();
  return s;
}

void Unr::reset_stats() { world_.kernel().telemetry().registry().reset(); }

MemHandle Unr::mem_reg(int self, void* buf, std::size_t size) {
  const fabric::MrId mr = world_.fabric().memory().register_region(self, buf, size);
  return MemHandle{self, mr, size};
}

void Unr::mem_dereg(int self, const MemHandle& h) {
  world_.fabric().memory().deregister_region(self, h.mr);
}

SigId Unr::sig_init(int self, std::int64_t num_event, int n_bits) {
  const int n = n_bits < 0 ? cfg_.default_sig_n : n_bits;
  const int node = node_of(self);
  auto& table = sigs_[static_cast<std::size_t>(node)];
  auto sig = std::make_unique<Signal>(num_event, n);
  sig->set_name("r" + std::to_string(self) + "/s" + std::to_string(table.size()));
  table.push_back(std::move(sig));
  return table.size() - 1;
}

Signal& Unr::sig_at(int node, SigId id) const {
  const auto& table = sigs_[static_cast<std::size_t>(node)];
  UNR_CHECK_MSG(id < table.size(), "bad signal id " << id << " on node " << node);
  return *table[id];
}

void Unr::sig_reset(int self, SigId sig) { sig_at(node_of(self), sig).reset(); }
void Unr::sig_wait(int self, SigId sig) { sig_at(node_of(self), sig).wait(); }
bool Unr::sig_test(int self, SigId sig) { return sig_at(node_of(self), sig).test(); }
bool Unr::sig_wait_for(int self, SigId sig, Time timeout) {
  return sig_at(node_of(self), sig).wait_for(timeout);
}

std::size_t Unr::sig_wait_any(int self, std::span<const SigId> sigs) {
  UNR_CHECK(!sigs.empty());
  const int node = node_of(self);
  sim::Kernel* k = &world_.kernel();
  const int me = sim::Kernel::current_actor_id();
  UNR_CHECK_MSG(me >= 0, "sig_wait_any outside an actor");
  for (;;) {
    for (std::size_t i = 0; i < sigs.size(); ++i)
      if (sig_at(node, sigs[i]).triggered()) return i;
    // Register on EVERY signal's wait queue, then block once. Nothing can
    // trigger between the check above and the block (single-entity
    // execution); non-winning registrations surface as spurious wakeups
    // later, which every wait tolerates. A SigId listed twice registers
    // once: duplicate registrations on one wait queue would wake this actor
    // twice for one trigger, and the second wake could steal a wakeup a
    // different signal owed us after the first consumed it.
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      bool dup = false;
      for (std::size_t j = 0; j < i && !dup; ++j) dup = sigs[j] == sigs[i];
      if (!dup) sig_at(node, sigs[i]).cond().add_waiter(me);
    }
    k->block_current();
  }
}
std::size_t Unr::sig_wait_any_for(int self, std::span<const SigId> sigs, Time timeout) {
  UNR_CHECK(!sigs.empty());
  const int node = node_of(self);
  sim::Kernel* k = &world_.kernel();
  const int me = sim::Kernel::current_actor_id();
  UNR_CHECK_MSG(me >= 0, "sig_wait_any_for outside an actor");
  auto poll = [&]() -> std::size_t {
    for (std::size_t i = 0; i < sigs.size(); ++i)
      if (sig_at(node, sigs[i]).triggered()) return i;
    return kWaitAnyTimeout;
  };
  if (const std::size_t hit = poll(); hit != kWaitAnyTimeout) return hit;
  if (timeout == 0) return kWaitAnyTimeout;  // poll once, post nothing
  const std::uint64_t token = k->arm_timed_wait(k->now() + timeout);
  for (;;) {
    if (const std::size_t hit = poll(); hit != kWaitAnyTimeout) {
      k->disarm_timed_wait(token);
      return hit;
    }
    if (k->timed_wait_expired(token)) {
      k->disarm_timed_wait(token);
      // Final poll: an apply() exactly at the deadline may have queued our
      // expiry check behind it — at-deadline triggers win, as in wait_for.
      return poll();
    }
    // Same registration discipline as sig_wait_any (see above).
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      bool dup = false;
      for (std::size_t j = 0; j < i && !dup; ++j) dup = sigs[j] == sigs[i];
      if (!dup) sig_at(node, sigs[i]).cond().add_waiter(me);
    }
    k->block_current();
  }
}
std::int64_t Unr::sig_counter(int self, SigId sig) const {
  return sig_at(node_of(self), sig).counter();
}

void Unr::apply_notification(int node, SigId id, std::int64_t code) {
  Signal& s = sig_at(node, id);
  if (tr_.on)
    world_.kernel().telemetry().tracer().instant(
        node, obs::kEngineTid, tr_.cat, tr_.sig_apply,
        {{tr_.k_sig, static_cast<std::int64_t>(id)}, {tr_.k_code, code}});
  s.apply(Signal::decode_addend(code, s.n_bits()));
}

Blk Unr::blk_init(int self, const MemHandle& mem, std::size_t offset, std::size_t size,
                  SigId sig) {
  UNR_CHECK_MSG(mem.rank == self, "blk_init with a foreign memory handle");
  UNR_CHECK_MSG(offset + size <= mem.size,
                "block [" << offset << ", " << offset + size
                          << ") exceeds the registered region of " << mem.size
                          << " bytes");
  Blk b;
  b.rank = self;
  b.mr = mem.mr;
  b.offset = offset;
  b.size = size;
  b.sig = sig;
  b.sig_n_bits = sig == kNoSig ? 0 : sig_at(node_of(self), sig).n_bits();
  return b;
}

int Unr::decide_split(int self, const Blk& remote, std::size_t size,
                      const XferOptions& opts) const {
  if (opts.force_split > 0) return opts.force_split;
  if (!cfg_.multi_channel || !channel_->multi_channel()) return 1;
  if (size < cfg_.split_threshold) return 1;
  int k = cfg_.max_split > 0 ? cfg_.max_split : world_.fabric().nics_per_node();
  // A dead NIC is not worth a fragment: once failures strike, degrade a
  // K-way split to the node's surviving NIC count rather than queueing
  // traffic on hardware that will only fail over anyway. (Without failures
  // k may intentionally exceed the NIC count — fragments then share NICs.)
  const int healthy = world_.fabric().healthy_nic_count(node_of(self));
  if (healthy < world_.fabric().nics_per_node()) k = std::min(k, std::max(1, healthy));
  k = std::min<int>(k, static_cast<int>(size));  // at least one byte per fragment
  // Splitting without a destination signal has no aggregation to pay for,
  // but also nothing to gain for small k; still allowed.
  (void)remote;
  return std::max(1, k);
}

void Unr::do_xfer(bool is_put, int self, const Blk& local, const Blk& remote,
                  const XferOptions& opts) {
  UNR_CHECK_MSG(local.rank == self, "local Blk does not belong to the calling rank");
  UNR_CHECK_MSG(remote.valid(), "remote Blk is invalid (was it exchanged?)");
  UNR_CHECK_MSG(local.size == remote.size, "Blk size mismatch: local "
                                               << local.size << " vs remote "
                                               << remote.size);
  const std::size_t size = local.size;
  const auto& prof = world_.fabric().profile();

  SigId lsig = opts.local_sig != kNoSig ? opts.local_sig
                                        : (opts.use_local_blk_sig ? local.sig : kNoSig);
  const SigId rsig = remote.sig;
  const int r_n = remote.sig_n_bits;
  const int l_n = lsig == kNoSig ? 0 : sig_at(node_of(self), lsig).n_bits();

  void* lptr =
      world_.fabric().memory().resolve({self, local.mr, local.offset}, size);

  // Intra-node fast path (Section IV-E-2): a kernel-assisted copy instead
  // of a NIC loopback. One hop, host memory bandwidth, software notification.
  if (cfg_.shm_intra_node && node_of(self) == node_of(remote.rank)) {
    sim::busy(prof.rma_post_overhead / 2);
    do_shm_xfer(is_put, self, lptr, remote, size, lsig, rsig);
    if (is_put)
      m_.puts.inc();
    else
      m_.gets.inc();
    m_.shm_fastpath.inc();
    return;
  }

  const int k = is_put ? decide_split(self, remote, size, opts) : 1;
  sim::busy(prof.rma_post_overhead +
            static_cast<Time>(k - 1) * (prof.rma_post_overhead / 2));

  if (is_put)
    m_.puts.inc();
  else
    m_.gets.inc();
  m_.fragments.inc(static_cast<std::uint64_t>(k - 1));

  // Round-robin fragments over the node's SURVIVING NICs. With no failures
  // this is identical to round-robin over all NICs (healthy is [0, nics)).
  const std::vector<int> healthy = world_.fabric().healthy_nics(node_of(self));
  const int nh = static_cast<int>(healthy.size());
  UNR_CHECK_MSG(nh > 0, "every NIC on node " << node_of(self) << " has failed");
  std::size_t off = 0;
  for (int i = 0; i < k; ++i) {
    const std::size_t chunk =
        size / static_cast<std::size_t>(k) +
        (static_cast<std::size_t>(i) < size % static_cast<std::size_t>(k) ? 1 : 0);
    XferOp op;
    op.src_rank = self;
    op.local = static_cast<std::byte*>(lptr) + off;
    op.remote = fabric::MemRef{remote.rank, remote.mr, remote.offset + off};
    op.size = chunk;
    op.nic = opts.nic >= 0
                 ? opts.nic
                 : healthy[static_cast<std::size_t>(
                       (world_.fabric().default_nic(self) + i) % nh)];
    if (rsig != kNoSig) {
      op.rsig = rsig;
      op.r_nbits = r_n;
      op.r_addend = k == 1 ? Signal::single_addend()
                           : (i == 0 ? Signal::lead_addend(k, r_n)
                                     : Signal::follow_addend(r_n));
      op.r_code = Signal::encode_addend(op.r_addend, r_n);
    }
    if (lsig != kNoSig) {
      op.lsig = lsig;
      op.l_nbits = l_n;
      op.l_addend = k == 1 ? Signal::single_addend()
                           : (i == 0 ? Signal::lead_addend(k, l_n)
                                     : Signal::follow_addend(l_n));
      op.l_code = Signal::encode_addend(op.l_addend, l_n);
    }
    if (is_put)
      channel_->put(op);
    else
      channel_->get(op);
    off += chunk;
  }
  UNR_CHECK(off == size);
}

void Unr::do_shm_xfer(bool is_put, int self, void* lptr, const Blk& remote,
                      std::size_t size, SigId lsig, SigId rsig) {
  fabric::Fabric& f = world_.fabric();
  const Time done = f.kernel().now() + cfg_.shm_latency + f.profile().memcpy_time(size);
  const int node = node_of(self);  // same node as remote.rank by construction
  const fabric::MemRef rref{remote.rank, remote.mr, remote.offset};
  Unr* ctx = this;
  f.kernel().post_at(done, [ctx, is_put, lptr, rref, size, lsig, rsig, node] {
    std::byte* rptr = ctx->fabric().memory().resolve(rref, size);
    if (size > 0) {
      if (is_put)
        std::memcpy(rptr, lptr, size);
      else
        std::memcpy(lptr, rptr, size);
    }
    // The copy is CPU-driven; both completions are visible at once and are
    // delivered through the software queue like any other notification
    // (applied directly under the level-4 channel, which has no engine).
    Engine& eng = ctx->engine(node);
    const Time now = ctx->fabric().kernel().now();
    auto notify = [&](SigId sig) {
      if (sig == kNoSig) return;
      if (eng.active())
        eng.enqueue(now, [ctx, node, sig] { ctx->apply_notification(node, sig, 0); });
      else
        ctx->apply_notification(node, sig, 0);
    };
    notify(rsig);
    notify(lsig);
  });
}

void Unr::handle_fragment_failover(const XferOp& op) {
  m_.failovers.inc();
  XferOp re = op;
  const int node = node_of(op.src_rank);
  const int preferred = re.nic < 0 ? world_.fabric().default_nic(op.src_rank) : re.nic;
  re.nic = world_.fabric().pick_healthy_nic(node, preferred);
  // Re-put through the channel: the (p, a) addends are unchanged — the
  // fragment was never delivered, so the signal is still owed exactly this
  // addend — only the NIC (and hence the wire path) moves.
  channel_->put(re);
}

void Unr::put(int self, const Blk& local, const Blk& remote, const PutOptions& opts) {
  do_xfer(true, self, local, remote, opts);
}

void Unr::get(int self, const Blk& local, const Blk& remote, const GetOptions& opts) {
  do_xfer(false, self, local, remote, opts);
}

std::unique_ptr<Plan> Unr::make_plan(int self) {
  return std::unique_ptr<Plan>(new Plan(*this, self));
}

void Unr::print_stats(std::ostream& os) const {
  // A human-readable view over the registry (the same counters --metrics
  // dumps as JSON); everything below reads registry-backed snapshots.
  const Stats us = stats();
  os << "UNR stats (channel: " << channel_->name()
     << ", level: " << support_level_name(channel_->level()) << ")\n";
  os << "  puts: " << us.puts << "  gets: " << us.gets
     << "  extra fragments: " << us.fragments << "\n";
  os << "  companion notifications: " << us.companions
     << "  encode fallbacks: " << us.encode_fallbacks << "\n";
  std::uint64_t drains = 0, cqes = 0, sw = 0;
  for (const auto& e : engines_) {
    const Engine::Stats es = e->stats();
    drains += es.drains;
    cqes += es.cqes;
    sw += es.sw_tasks;
  }
  os << "  engine drains: " << drains << "  CQEs processed: " << cqes
     << "  software tasks: " << sw << "\n";
  const fabric::Fabric::Stats fs = world_.fabric().stats();
  os << "  fabric: puts " << fs.puts << " (" << fs.put_bytes << " B), gets "
     << fs.gets << " (" << fs.get_bytes << " B), AMs " << fs.ams
     << ", CQ retries " << fs.cq_retries << "\n";
  const auto& rs = fs.resilience;
  if (rs.injected_drops + rs.injected_delays + rs.nic_failures + rs.failovers +
          rs.retransmits + us.failovers >
      0) {
    os << "  resilience: drops " << rs.injected_drops << ", delays "
       << rs.injected_delays << ", retransmits " << rs.retransmits
       << ", NIC failures " << rs.nic_failures << ", lost-to-NIC " << rs.lost_to_nic
       << ", failovers " << rs.failovers << " (fragments re-issued: "
       << us.failovers << "), backoff " << rs.backoff_ns << " ns\n";
  }
  std::size_t signals = 0;
  for (const auto& table : sigs_) signals += table.size();
  os << "  signals allocated: " << signals << "\n";
}

void Plan::add_put(const Blk& local, const Blk& remote, const PutOptions& opts) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.local = local;
  op.remote = remote;
  op.opts = opts;
  ops_.push_back(op);
}

void Plan::add_get(const Blk& local, const Blk& remote, const GetOptions& opts) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.local = local;
  op.remote = remote;
  op.opts = opts;
  ops_.push_back(op);
}

void Plan::add_local_copy(void* dst, const void* src, std::size_t size, SigId sig_a,
                          SigId sig_b) {
  Op op;
  op.kind = Op::Kind::kCopy;
  op.copy_dst = dst;
  op.copy_src = src;
  op.copy_size = size;
  op.copy_sig_a = sig_a;
  op.copy_sig_b = sig_b;
  ops_.push_back(op);
}

void Plan::start() {
  const int node = unr_.node_of(self_);
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kPut:
        unr_.put(self_, op.local, op.remote, op.opts);
        break;
      case Op::Kind::kGet:
        unr_.get(self_, op.local, op.remote, op.opts);
        break;
      case Op::Kind::kCopy: {
        std::memcpy(op.copy_dst, op.copy_src, op.copy_size);
        sim::busy(unr_.fabric().profile().memcpy_time(op.copy_size));
        if (op.copy_sig_a != kNoSig)
          unr_.sig_at(node, op.copy_sig_a).apply(Signal::single_addend());
        if (op.copy_sig_b != kNoSig)
          unr_.sig_at(node, op.copy_sig_b).apply(Signal::single_addend());
        break;
      }
    }
  }
}

}  // namespace unr::unrlib
