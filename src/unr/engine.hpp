// The UNR progress engine: one polling "thread" per node (Section IV-C).
//
// At support levels 0-3 somebody must drain the NIC completion queues and
// apply the addends to the signal counters. The engine models the paper's
// dedicated polling thread:
//   * it drains with a phase delay of poll_interval/2 (the expected wait for
//     a polling loop to come around),
//   * if it has no reserved core it consumes a fraction of one core as
//     background load and inflates compute under oversubscription — the
//     effect measured in Fig. 6 (HPC-IB, 16 vs 18 threads),
//   * software notifications (level-0 companions, fallback messages) go
//     through the same queue.
// At level 4 the engine is idle: the NIC applies the addends itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace unr::unrlib {

class Unr;

class Engine {
 public:
  struct Config {
    Time poll_interval = 1 * kUs;
    bool reserved_core = true;
    /// Core fraction the polling thread consumes when it has no reserved
    /// core, and the extra compute inflation it causes under oversubscription.
    double unreserved_core_fraction = 0.75;
    double unreserved_penalty = 0.08;
    /// Additional drain delay when sharing cores (the polling loop gets
    /// descheduled by the compute threads).
    Time unreserved_extra_delay = 4 * kUs;
  };

  Engine(Unr& ctx, int node, Config cfg, bool active);
  ~Engine();

  /// Hook: a CQE landed on one of this node's NICs (or a software task was
  /// queued); make sure a drain is scheduled.
  void notify_work();

  /// Queue a software notification task, runnable at `ready` at the earliest.
  void enqueue(Time ready, std::function<void()> task);

  bool active() const { return active_; }

  struct Stats {
    std::uint64_t drains = 0;
    std::uint64_t cqes = 0;
    std::uint64_t sw_tasks = 0;
  };
  /// DEPRECATED shim (one PR): snapshot of the registry's
  /// "unr.engine.*"{node=N} counters.
  Stats stats() const;

 private:
  void schedule_drain(Time at);
  void drain();
  Time phase_delay() const;

  Unr& ctx_;
  int node_;
  Config cfg_;
  bool active_;
  bool scheduled_ = false;
  struct SwTask {
    Time ready;
    std::function<void()> run;
  };
  std::deque<SwTask> sw_q_;
  struct Metrics {
    obs::Counter drains, cqes, sw_tasks;
  };
  Metrics m_;
  struct TraceIds {
    bool on = false;
    obs::StrId cat, drain;
    obs::StrId k_cqes, k_sw;
  };
  TraceIds tr_;
};

}  // namespace unr::unrlib
