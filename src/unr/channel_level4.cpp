// Level-4 channel: the paper's hardware-software co-design proposal
// (Section IV-C). The NIC carries 64 bits of p and 64 bits of a and applies
// *p += a itself after the PUT/GET — no polling thread, no CQ to drain, no
// core stolen from the application.
//
// No shipped NIC supports this; the simulator models the proposed feature so
// that its benefit (Fig. 6's polling-thread discussion) can be quantified.
#include "common/check.hpp"
#include "unr/channels.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

namespace {

class Level4Channel final : public Channel {
 public:
  explicit Level4Channel(Unr& ctx) : Channel(ctx) {
    const auto& pers = ctx.fabric().iface();
    UNR_CHECK_MSG(pers.effective_put_remote() >= 128,
                  "level-4 requires 128 custom bits (128-bit interface like GLEX)");
  }

  const char* name() const override { return "level4-hw"; }
  SupportLevel level() const override { return SupportLevel::kLevel4; }
  bool multi_channel() const override { return true; }

  void put(const XferOp& op) override {
    fabric::Fabric::PutArgs a;
    a.src_rank = op.src_rank;
    a.src = op.local;
    a.dst = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;

    if (op.rsig != kNoSig) {
      Signal& sig = ctx_.sig_at(ctx_.node_of(op.remote.rank), op.rsig);
      a.hw_add_target = sig.raw_counter();
      a.hw_addend = op.r_addend;
      Signal* s = &sig;
      a.hw_notify = [s] { s->hw_notify(); };
    }
    if (op.lsig != kNoSig) {
      // Local completion is applied by the sender's NIC the same way.
      Signal& sig = ctx_.sig_at(ctx_.node_of(op.src_rank), op.lsig);
      Signal* s = &sig;
      const std::int64_t addend = op.l_addend;
      a.on_local_complete = [s, addend] { s->apply(addend); };
    }
    // Hardware notification rides with the data, so a fragment lost to a NIC
    // failure can always be re-put with identical addends.
    Unr* ctx = &ctx_;
    a.on_lost = [ctx, op] { ctx->handle_fragment_failover(op); };
    ctx_.fabric().put(std::move(a));
  }

  void get(const XferOp& op) override {
    fabric::Fabric::GetArgs a;
    a.src_rank = op.src_rank;
    a.dst = op.local;
    a.src = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;

    if (op.lsig != kNoSig) {
      Signal& sig = ctx_.sig_at(ctx_.node_of(op.src_rank), op.lsig);
      a.hw_add_target = sig.raw_counter();
      a.hw_addend = op.l_addend;
      Signal* s = &sig;
      a.hw_notify = [s] { s->hw_notify(); };
    }
    if (op.rsig != kNoSig) {
      Signal& sig = ctx_.sig_at(ctx_.node_of(op.remote.rank), op.rsig);
      a.owner_hw_add_target = sig.raw_counter();
      a.owner_hw_addend = op.r_addend;
      Signal* s = &sig;
      a.owner_hw_notify = [s] { s->hw_notify(); };
    }
    ctx_.fabric().get(std::move(a));
  }
};

}  // namespace

std::unique_ptr<Channel> make_level4_channel(Unr& ctx) {
  return std::make_unique<Level4Channel>(ctx);
}

}  // namespace unr::unrlib
