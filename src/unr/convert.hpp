// MPI conversion interfaces (Code 3 of the paper, Section V-C).
//
// These helpers let an application migrate hot two-sided MPI calls to UNR
// without computing a single remote offset: at setup time each function
// exchanges the Blk handles with the peer(s) over the two-sided runtime and
// records the transmission into a Plan; in the main loop the application
// just calls Plan::start() and waits on the finish signals.
#pragma once

#include <cstddef>
#include <span>

#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

/// Sender side of an Isend/Irecv pair: receives the peer's receive-Blk for
/// this (dst, tag) and records `PUT(my block -> peer block)` into the plan.
/// `send_finish_sig` is notified on local completion (buffer reusable).
void isend_convert(Unr& unr, runtime::Rank& rank, const MemHandle& mem,
                   std::size_t offset, std::size_t bytes, int dst, int tag,
                   SigId send_finish_sig, Plan& plan);

/// Receiver side: exposes [offset, offset+bytes) of `mem` to the sender and
/// ships the Blk (bound to `recv_finish_sig`) to `src`. Nothing is recorded
/// into the plan — delivery happens when the sender's plan runs.
void irecv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& mem,
                   std::size_t offset, std::size_t bytes, int src, int tag,
                   SigId recv_finish_sig, Plan& plan);

/// Bidirectional neighbor exchange (MPI_Sendrecv): send to `dst`, receive
/// from `src`, both recorded/exposed at once.
void sendrecv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& send_mem,
                      std::size_t send_off, std::size_t send_bytes, int dst,
                      const MemHandle& recv_mem, std::size_t recv_off,
                      std::size_t recv_bytes, int src, int tag, SigId send_finish_sig,
                      SigId recv_finish_sig, Plan& plan);

/// MPI_Alltoallv conversion: counts/displacements in BYTES relative to the
/// registered regions. The self block becomes a local copy in the plan.
/// Typical signal sizing: both finish signals with num_event = nranks.
void alltoallv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& send_mem,
                       std::span<const std::size_t> send_counts,
                       std::span<const std::size_t> send_displs,
                       const MemHandle& recv_mem,
                       std::span<const std::size_t> recv_counts,
                       std::span<const std::size_t> recv_displs,
                       SigId send_finish_sig, SigId recv_finish_sig, Plan& plan);

}  // namespace unr::unrlib
