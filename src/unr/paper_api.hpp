// The paper's exact interface names (Section IV / Code 2 / Code 3), as thin
// wrappers over unrlib::Unr. Useful when porting code written against the
// paper's pseudo-API, or when comparing a port line by line with Code 2.
//
//   UNR_Handle h{&unr, rank};
//   auto mr       = UNR_Mem_Reg(h, send_buf, buf_size);
//   auto send_sig = UNR_Sig_Init(h, 1);            // trigger after 1 event
//   auto send_blk = UNR_Blk_Init(h, mr, f_x, size, send_sig);
//   UNR_Put(h, send_blk, rmt_blk);
//   UNR_Sig_Wait(h, send_sig);
//   UNR_Sig_Reset(h, send_sig);
#pragma once

#include <memory>

#include "unr/convert.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

/// The per-process view of the library: context + calling rank.
struct UNR_Handle {
  Unr* unr = nullptr;
  int rank = -1;
};

inline MemHandle UNR_Mem_Reg(UNR_Handle h, void* buf, std::size_t size) {
  return h.unr->mem_reg(h.rank, buf, size);
}

inline void UNR_Mem_Dereg(UNR_Handle h, const MemHandle& m) {
  h.unr->mem_dereg(h.rank, m);
}

inline SigId UNR_Sig_Init(UNR_Handle h, std::int64_t num_event, int n_bits = -1) {
  return h.unr->sig_init(h.rank, num_event, n_bits);
}

inline void UNR_Sig_Wait(UNR_Handle h, SigId sig) { h.unr->sig_wait(h.rank, sig); }
inline void UNR_Sig_Reset(UNR_Handle h, SigId sig) { h.unr->sig_reset(h.rank, sig); }
inline bool UNR_Sig_Test(UNR_Handle h, SigId sig) { return h.unr->sig_test(h.rank, sig); }
/// Bounded wait: false = `timeout` virtual ns elapsed without a trigger.
inline bool UNR_Sig_Wait_For(UNR_Handle h, SigId sig, Time timeout) {
  return h.unr->sig_wait_for(h.rank, sig, timeout);
}
/// Wait until ANY of `sigs` triggers; returns the index within `sigs`.
inline std::size_t UNR_Sig_Wait_Any(UNR_Handle h, std::span<const SigId> sigs) {
  return h.unr->sig_wait_any(h.rank, sigs);
}
/// Bounded wait-any: Unr::kWaitAnyTimeout = `timeout` virtual ns elapsed
/// with no trigger. timeout == 0 polls once; at-deadline triggers win.
inline std::size_t UNR_Sig_Wait_Any_For(UNR_Handle h, std::span<const SigId> sigs,
                                        Time timeout) {
  return h.unr->sig_wait_any_for(h.rank, sigs, timeout);
}

inline Blk UNR_Blk_Init(UNR_Handle h, const MemHandle& mem, std::size_t offset,
                        std::size_t size, SigId sig = kNoSig) {
  return h.unr->blk_init(h.rank, mem, offset, size, sig);
}

inline void UNR_Put(UNR_Handle h, const Blk& local, const Blk& remote,
                    const PutOptions& opts = {}) {
  h.unr->put(h.rank, local, remote, opts);
}

inline void UNR_Get(UNR_Handle h, const Blk& local, const Blk& remote,
                    const GetOptions& opts = {}) {
  h.unr->get(h.rank, local, remote, opts);
}

/// UNR_RMA_Plan(): start recording; UNR_Plan_Start(): replay.
inline std::unique_ptr<Plan> UNR_RMA_Plan(UNR_Handle h) {
  return h.unr->make_plan(h.rank);
}
inline void UNR_Plan_Start(Plan& plan) { plan.start(); }

/// Code 3: MPI conversion interfaces.
inline void MPI_Isend_Convert(UNR_Handle h, runtime::Rank& r, const MemHandle& mem,
                              std::size_t offset, std::size_t bytes, int dst, int tag,
                              SigId send_finish_sig, Plan& plan) {
  isend_convert(*h.unr, r, mem, offset, bytes, dst, tag, send_finish_sig, plan);
}
inline void MPI_Irecv_Convert(UNR_Handle h, runtime::Rank& r, const MemHandle& mem,
                              std::size_t offset, std::size_t bytes, int src, int tag,
                              SigId recv_finish_sig, Plan& plan) {
  irecv_convert(*h.unr, r, mem, offset, bytes, src, tag, recv_finish_sig, plan);
}
inline void MPI_Sendrecv_Convert(UNR_Handle h, runtime::Rank& r,
                                 const MemHandle& send_mem, std::size_t send_off,
                                 std::size_t send_bytes, int dst,
                                 const MemHandle& recv_mem, std::size_t recv_off,
                                 std::size_t recv_bytes, int src, int tag,
                                 SigId send_finish_sig, SigId recv_finish_sig,
                                 Plan& plan) {
  sendrecv_convert(*h.unr, r, send_mem, send_off, send_bytes, dst, recv_mem, recv_off,
                   recv_bytes, src, tag, send_finish_sig, recv_finish_sig, plan);
}
inline void MPI_Alltoallv_Convert(UNR_Handle h, runtime::Rank& r,
                                  const MemHandle& send_mem,
                                  std::span<const std::size_t> send_counts,
                                  std::span<const std::size_t> send_displs,
                                  const MemHandle& recv_mem,
                                  std::span<const std::size_t> recv_counts,
                                  std::span<const std::size_t> recv_displs,
                                  SigId send_finish_sig, SigId recv_finish_sig,
                                  Plan& plan) {
  alltoallv_convert(*h.unr, r, send_mem, send_counts, send_displs, recv_mem,
                    recv_counts, recv_displs, send_finish_sig, recv_finish_sig, plan);
}

}  // namespace unr::unrlib
