#include "unr/convert.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace unr::unrlib {

namespace {
/// Exchange tags share the user's tag space only during setup (before the
/// main loop), mirroring the paper's usage; offset them to reduce collision
/// risk with concurrent application traffic.
int exchange_tag(int user_tag) { return (user_tag & 0x0FFFFFFF) | (1 << 27); }
}  // namespace

void irecv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& mem,
                   std::size_t offset, std::size_t bytes, int src, int tag,
                   SigId recv_finish_sig, Plan& plan) {
  (void)plan;  // delivery is driven by the sender's plan
  const Blk blk = unr.blk_init(rank.id(), mem, offset, bytes, recv_finish_sig);
  rank.send(src, exchange_tag(tag), &blk, sizeof blk);
}

void isend_convert(Unr& unr, runtime::Rank& rank, const MemHandle& mem,
                   std::size_t offset, std::size_t bytes, int dst, int tag,
                   SigId send_finish_sig, Plan& plan) {
  Blk remote;
  rank.recv(dst, exchange_tag(tag), &remote, sizeof remote);
  UNR_CHECK_MSG(remote.size == bytes, "isend/irecv convert size mismatch: sending "
                                          << bytes << " into a " << remote.size
                                          << "-byte block");
  const Blk local = unr.blk_init(rank.id(), mem, offset, bytes, send_finish_sig);
  plan.add_put(local, remote);
}

void sendrecv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& send_mem,
                      std::size_t send_off, std::size_t send_bytes, int dst,
                      const MemHandle& recv_mem, std::size_t recv_off,
                      std::size_t recv_bytes, int src, int tag, SigId send_finish_sig,
                      SigId recv_finish_sig, Plan& plan) {
  const Blk my_recv =
      unr.blk_init(rank.id(), recv_mem, recv_off, recv_bytes, recv_finish_sig);
  Blk remote;
  rank.sendrecv(src, exchange_tag(tag), &my_recv, sizeof my_recv, dst,
                exchange_tag(tag), &remote, sizeof remote);
  UNR_CHECK_MSG(remote.size == send_bytes, "sendrecv convert size mismatch");
  const Blk local =
      unr.blk_init(rank.id(), send_mem, send_off, send_bytes, send_finish_sig);
  plan.add_put(local, remote);
}

void alltoallv_convert(Unr& unr, runtime::Rank& rank, const MemHandle& send_mem,
                       std::span<const std::size_t> send_counts,
                       std::span<const std::size_t> send_displs,
                       const MemHandle& recv_mem,
                       std::span<const std::size_t> recv_counts,
                       std::span<const std::size_t> recv_displs,
                       SigId send_finish_sig, SigId recv_finish_sig, Plan& plan) {
  const int p = rank.nranks();
  const int self = rank.id();
  UNR_CHECK(static_cast<int>(send_counts.size()) == p &&
            static_cast<int>(recv_counts.size()) == p);

  // My receive block for source r, bound to the aggregated receive signal.
  std::vector<Blk> my_recv_blks(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    my_recv_blks[ri] =
        unr.blk_init(self, recv_mem, recv_displs[ri], recv_counts[ri], recv_finish_sig);
  }
  // Blk[r] after the exchange = where *I* must put my data at rank r.
  std::vector<Blk> remote_blks(static_cast<std::size_t>(p));
  rank.alltoall(my_recv_blks.data(), remote_blks.data(), sizeof(Blk));

  for (int r = 0; r < p; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (r == self) continue;
    UNR_CHECK_MSG(remote_blks[ri].size == send_counts[ri],
                  "alltoallv convert: rank " << self << " sends " << send_counts[ri]
                                             << "B to rank " << r << " which expects "
                                             << remote_blks[ri].size << "B");
    const Blk local =
        unr.blk_init(self, send_mem, send_displs[ri], send_counts[ri], send_finish_sig);
    plan.add_put(local, remote_blks[ri]);
  }

  // The self block: a plain local copy, still counted by both signals so
  // num_event can be nranks on every rank.
  const auto si = static_cast<std::size_t>(self);
  UNR_CHECK(send_counts[si] == recv_counts[si]);
  std::byte* dst = unr.fabric().memory().resolve(
      {self, recv_mem.mr, recv_displs[si]}, recv_counts[si]);
  const std::byte* src = unr.fabric().memory().resolve(
      {self, send_mem.mr, send_displs[si]}, send_counts[si]);
  plan.add_local_copy(dst, src, send_counts[si], send_finish_sig, recv_finish_sig);
}

}  // namespace unr::unrlib
