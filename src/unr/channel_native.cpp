// Native channel: notifications ride inside the interface's custom bits.
//
// Covers support levels 1-3 (Table I): the level is derived from the
// interface personality's remote-PUT width. Whenever a (p, a) pair does not
// fit — too many signals at level 1, a multi-channel addend at level-2
// mode 1, GETs on Verbs (0 remote bits) — the channel degrades gracefully
// to an ordered companion message, exactly the "performance may degrade"
// escape hatch the paper describes.
#include "unr/channels.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

namespace {

class NativeChannel final : public Channel {
 public:
  explicit NativeChannel(Unr& ctx) : Channel(ctx), pers_(ctx.fabric().iface()) {
    level_ = classify(pers_);
    register_companion_handler();
  }

  const char* name() const override { return "native"; }
  SupportLevel level() const override { return level_; }

  bool multi_channel() const override {
    // Needs an expressible addend: level 3 always; level 2 only in mode 2.
    if (level_ == SupportLevel::kLevel3) return true;
    if (level_ == SupportLevel::kLevel2) return ctx_.config().level2_mode == 2;
    return false;
  }

  void put(const XferOp& op) override {
    fabric::Fabric::PutArgs a;
    a.src_rank = op.src_rank;
    a.src = op.local;
    a.dst = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;

    bool need_companion = false;
    if (op.rsig != kNoSig) {
      fabric::CustomBits imm;
      if (encode_notification(remote_put_width(), index_bits(remote_put_width()),
                              op.rsig, op.r_code, imm)) {
        a.want_remote_cqe = true;
        a.remote_imm = imm;
      } else {
        need_companion = true;
        ctx_.metrics().encode_fallbacks.inc();
      }
    }

    bool local_sw = false;
    if (op.lsig != kNoSig) {
      fabric::CustomBits imm;
      if (encode_notification(local_put_width(), index_bits(local_put_width()),
                              op.lsig, op.l_code, imm)) {
        a.want_local_cqe = true;
        a.local_imm = imm;
      } else {
        local_sw = true;
        ctx_.metrics().encode_fallbacks.inc();
      }
    }
    if (local_sw) {
      Unr* ctx = &ctx_;
      const int node = ctx_.node_of(op.src_rank);
      const SigId lsig = op.lsig;
      const std::int64_t code = op.l_code;
      a.on_local_complete = [ctx, node, lsig, code] {
        ctx->engine(node).enqueue(ctx->fabric().kernel().now(), [ctx, node, lsig, code] {
          ctx->apply_notification(node, lsig, code);
        });
      };
    }

    // The companion must not overtake the data.
    a.ordered = need_companion;
    // NIC-failure recovery: when the notification travels entirely with the
    // data, the fragment can be re-put on a surviving NIC with the same
    // addends. With a companion in flight re-putting would notify twice, so
    // those fragments keep the fabric's transparent retransmission instead.
    if (!need_companion) {
      Unr* ctx = &ctx_;
      a.on_lost = [ctx, op] { ctx->handle_fragment_failover(op); };
    }
    const int dst_rank = op.remote.rank;
    ctx_.fabric().put(std::move(a));
    if (need_companion)
      send_companion(op.src_rank, dst_rank, op.rsig, op.r_code, /*ordered=*/true,
                     op.nic);
  }

  void get(const XferOp& op) override {
    fabric::Fabric::GetArgs a;
    a.src_rank = op.src_rank;
    a.dst = op.local;
    a.src = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;

    // Owner-side notification: only if the interface has GET-remote bits
    // (Verbs has none — Table II); otherwise notify the owner with a
    // software message once the data has landed at the reader.
    bool owner_companion = false;
    if (op.rsig != kNoSig) {
      fabric::CustomBits imm;
      if (pers_.get_remote_bits != 0 &&
          encode_notification(pers_.effective_get_remote(),
                              index_bits(pers_.effective_get_remote()), op.rsig,
                              op.r_code, imm)) {
        a.want_remote_cqe = true;
        a.remote_imm = imm;
      } else {
        owner_companion = true;
        ctx_.metrics().encode_fallbacks.inc();
      }
    }

    bool local_sw = false;
    if (op.lsig != kNoSig) {
      fabric::CustomBits imm;
      if (encode_notification(pers_.effective_get_local(),
                              index_bits(pers_.effective_get_local()), op.lsig,
                              op.l_code, imm)) {
        a.want_local_cqe = true;
        a.local_imm = imm;
      } else {
        local_sw = true;
      }
    }

    if (owner_companion || local_sw) {
      Unr* ctx = &ctx_;
      const int node = ctx_.node_of(op.src_rank);
      const int reader = op.src_rank;
      const int owner = op.remote.rank;
      const SigId lsig = local_sw ? op.lsig : kNoSig;
      const std::int64_t lcode = op.l_code;
      const SigId rsig = owner_companion ? op.rsig : kNoSig;
      const std::int64_t rcode = op.r_code;
      NativeChannel* self = this;
      a.on_complete = [ctx, self, node, reader, owner, lsig, lcode, rsig, rcode] {
        if (lsig != kNoSig)
          ctx->engine(node).enqueue(ctx->fabric().kernel().now(), [ctx, node, lsig, lcode] {
            ctx->apply_notification(node, lsig, lcode);
          });
        if (rsig != kNoSig)
          self->send_companion(reader, owner, rsig, rcode, /*ordered=*/false);
      };
    }
    ctx_.fabric().get(std::move(a));
  }

  void process_cqe(int node, const fabric::Cqe& cqe) override {
    int width = 0;
    switch (cqe.kind) {
      case fabric::CqeKind::kPutDelivered: width = remote_put_width(); break;
      case fabric::CqeKind::kPutComplete: width = local_put_width(); break;
      case fabric::CqeKind::kGetDelivered: width = pers_.effective_get_remote(); break;
      case fabric::CqeKind::kGetComplete: width = pers_.effective_get_local(); break;
    }
    std::uint64_t index = 0;
    std::int64_t code = 0;
    decode_notification(width, index_bits(width), cqe.imm, index, code);
    ctx_.apply_notification(node, index, code);
  }

 private:
  int remote_put_width() const { return effective_remote_put_bits(pers_); }
  int local_put_width() const { return pers_.effective_put_local(); }

  int index_bits(int width) const {
    if (width >= 64) return 32;  // handled by the fixed 32/32 layout
    if (width == 32 && ctx_.config().level2_mode == 1) return 32;
    return std::min(ctx_.config().level2_index_bits, width);
  }

  const fabric::Personality& pers_;
  SupportLevel level_ = SupportLevel::kLevel0;
};

}  // namespace

std::unique_ptr<Channel> make_native_channel(Unr& ctx) {
  return std::make_unique<NativeChannel>(ctx);
}

}  // namespace unr::unrlib
