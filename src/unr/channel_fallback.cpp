// MPI fallback channel (Section IV-A / Fig. 6).
//
// Guarantees that UNR-powered applications run on any system with a working
// message layer, at the cost of emulating notified RMA over two-sided
// semantics: every PUT is staged (pack copy at the sender, unpack copy at
// the receiver performed by the polling engine) and every notification is a
// software event. Whether this beats or loses to plain two-sided code
// depends on the system's copy bandwidth and software overhead — the paper
// measures +20% on TH-XY and -61% on TH-2A for PowerLLEL.
#include <cstring>

#include "common/check.hpp"
#include "unr/channels.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

namespace {

struct FallbackPutHeader {
  fabric::MrId mr;
  std::uint64_t offset;
  std::uint64_t size;
  std::uint64_t rsig;  // kNoSig if none
  std::int64_t rcode;
};

struct FallbackGetReq {
  fabric::MrId mr;        // at the owner
  std::uint64_t offset;
  std::uint64_t size;
  std::uint64_t rsig;     // owner-side signal
  std::int64_t rcode;
  std::uint64_t token;    // reader-side pending-get id
};

struct FallbackGetRepHeader {
  std::uint64_t token;
};

class FallbackChannel final : public Channel {
 public:
  explicit FallbackChannel(Unr& ctx) : Channel(ctx) {
    fabric::Fabric& f = ctx_.fabric();
    pending_gets_.resize(static_cast<std::size_t>(f.nranks()));
    token_seq_.assign(static_cast<std::size_t>(f.nranks()), 0);
    for (int r = 0; r < f.nranks(); ++r) {
      f.set_am_handler(r, kAmFallbackPut, [this, r](int src, const auto& p) {
        on_put_msg(r, src, p);
      });
      f.set_am_handler(r, kAmFallbackGetReq, [this, r](int src, const auto& p) {
        on_get_req(r, src, p);
      });
      f.set_am_handler(r, kAmFallbackGetRep, [this, r](int src, const auto& p) {
        on_get_rep(r, src, p);
      });
    }
  }

  const char* name() const override { return "mpi-fallback"; }
  SupportLevel level() const override { return SupportLevel::kLevel0; }
  bool multi_channel() const override { return false; }

  void put(const XferOp& op) override {
    const auto& prof = ctx_.fabric().profile();
    // Sender side: software stack + emulation-path overhead + pack copy
    // into the staging message.
    sim::busy(prof.sw_overhead + prof.fallback_extra_sw / 2 +
              prof.memcpy_time(op.size));

    FallbackPutHeader h{op.remote.mr, op.remote.offset, op.size,
                        op.rsig == kNoSig ? kNoSig : op.rsig, op.r_code};
    std::vector<std::byte> msg(sizeof h + op.size);
    std::memcpy(msg.data(), &h, sizeof h);
    if (op.size > 0) std::memcpy(msg.data() + sizeof h, op.local, op.size);
    ctx_.fabric().send_am(op.src_rank, op.remote.rank, kAmFallbackPut, std::move(msg),
                          op.nic, /*ordered=*/true);

    // Buffered-send semantics: the local buffer is reusable immediately.
    if (op.lsig != kNoSig)
      ctx_.apply_notification(ctx_.node_of(op.src_rank), op.lsig, op.l_code);
  }

  void get(const XferOp& op) override {
    const auto& prof = ctx_.fabric().profile();
    sim::busy(prof.sw_overhead);
    // Tokens only need per-reader uniqueness: the reply comes back to this
    // rank and is looked up in this rank's own pending map, so no rank ever
    // touches another rank's (= possibly another kernel shard's) state.
    const std::uint64_t token = ++token_seq_[static_cast<std::size_t>(op.src_rank)];
    pending_gets_[static_cast<std::size_t>(op.src_rank)][token] =
        PendingGet{op.local, op.size, op.lsig, op.l_code,
                   ctx_.node_of(op.src_rank)};
    FallbackGetReq rq{op.remote.mr, op.remote.offset, op.size,
                      op.rsig == kNoSig ? kNoSig : op.rsig, op.r_code, token};
    std::vector<std::byte> msg(sizeof rq);
    std::memcpy(msg.data(), &rq, sizeof rq);
    ctx_.fabric().send_am(op.src_rank, op.remote.rank, kAmFallbackGetReq,
                          std::move(msg), op.nic);
  }

 private:
  struct PendingGet {
    void* dst;
    std::size_t size;
    SigId lsig;
    std::int64_t lcode;
    int node;
  };

  void on_put_msg(int self, int /*src*/, const std::vector<std::byte>& payload) {
    FallbackPutHeader h;
    UNR_CHECK(payload.size() >= sizeof h);
    std::memcpy(&h, payload.data(), sizeof h);
    // The polling engine runs the receive-side software stack (tag-matching
    // emulation) and performs the unpack copy; the data is usable (and the
    // signal fires) only after both have elapsed.
    auto data = std::make_shared<std::vector<std::byte>>(
        payload.begin() + sizeof h, payload.end());
    const int node = ctx_.node_of(self);
    const Time ready = ctx_.fabric().kernel().now() +
                       ctx_.fabric().profile().sw_overhead +
                       ctx_.fabric().profile().fallback_extra_sw / 2 +
                       ctx_.fabric().profile().memcpy_time(h.size);
    Unr* ctx = &ctx_;
    ctx_.engine(node).enqueue(ready, [ctx, self, node, h, data] {
      if (h.size > 0) {
        std::byte* dst = ctx->fabric().memory().resolve(
            {self, h.mr, static_cast<std::size_t>(h.offset)}, h.size);
        std::memcpy(dst, data->data(), h.size);
      }
      if (h.rsig != kNoSig) ctx->apply_notification(node, h.rsig, h.rcode);
    });
  }

  void on_get_req(int self, int src, const std::vector<std::byte>& payload) {
    FallbackGetReq rq;
    UNR_CHECK(payload.size() == sizeof rq);
    std::memcpy(&rq, payload.data(), sizeof rq);

    FallbackGetRepHeader rh{rq.token};
    std::vector<std::byte> msg(sizeof rh + rq.size);
    std::memcpy(msg.data(), &rh, sizeof rh);
    if (rq.size > 0) {
      const std::byte* p = ctx_.fabric().memory().resolve(
          {self, rq.mr, static_cast<std::size_t>(rq.offset)}, rq.size);
      std::memcpy(msg.data() + sizeof rh, p, rq.size);
    }
    ctx_.fabric().send_am(self, src, kAmFallbackGetRep, std::move(msg));

    if (rq.rsig != kNoSig) {
      const int node = ctx_.node_of(self);
      Unr* ctx = &ctx_;
      const SigId rsig = rq.rsig;
      const std::int64_t rcode = rq.rcode;
      ctx_.engine(node).enqueue(ctx_.fabric().kernel().now(), [ctx, node, rsig, rcode] {
        ctx->apply_notification(node, rsig, rcode);
      });
    }
  }

  void on_get_rep(int self, int /*src*/, const std::vector<std::byte>& payload) {
    FallbackGetRepHeader rh;
    UNR_CHECK(payload.size() >= sizeof rh);
    std::memcpy(&rh, payload.data(), sizeof rh);
    auto& pend = pending_gets_[static_cast<std::size_t>(self)];
    auto it = pend.find(rh.token);
    UNR_CHECK_MSG(it != pend.end(), "fallback GET reply with unknown token");
    PendingGet pg = it->second;
    pend.erase(it);

    auto data = std::make_shared<std::vector<std::byte>>(payload.begin() + sizeof rh,
                                                         payload.end());
    const Time ready =
        ctx_.fabric().kernel().now() + ctx_.fabric().profile().memcpy_time(pg.size);
    Unr* ctx = &ctx_;
    ctx_.engine(pg.node).enqueue(ready, [ctx, pg, data] {
      if (pg.size > 0) std::memcpy(pg.dst, data->data(), pg.size);
      if (pg.lsig != kNoSig) ctx->apply_notification(pg.node, pg.lsig, pg.lcode);
    });
  }

  std::vector<std::unordered_map<std::uint64_t, PendingGet>> pending_gets_;  // [reader]
  std::vector<std::uint64_t> token_seq_;                                     // [reader]
};

}  // namespace

std::unique_ptr<Channel> make_fallback_channel(Unr& ctx) {
  return std::make_unique<FallbackChannel>(ctx);
}

}  // namespace unr::unrlib
