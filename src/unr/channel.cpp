#include "unr/channel.hpp"

#include <cstring>

#include "common/check.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

const char* channel_kind_name(ChannelKind k) {
  switch (k) {
    case ChannelKind::kAuto: return "auto";
    case ChannelKind::kNative: return "native";
    case ChannelKind::kLevel0: return "level0";
    case ChannelKind::kLevel4: return "level4-hw";
    case ChannelKind::kMpiFallback: return "mpi-fallback";
  }
  return "?";
}

void Channel::process_cqe(int /*node*/, const fabric::Cqe& /*cqe*/) {
  UNR_CHECK_MSG(false, "channel received a CQE it never produces");
}

namespace {
struct CompanionMsg {
  std::uint64_t index;
  std::int64_t code;
};
}  // namespace

void Channel::register_companion_handler() {
  fabric::Fabric& f = ctx_.fabric();
  for (int r = 0; r < f.nranks(); ++r) {
    const int node = f.node_of(r);
    f.set_am_handler(r, kAmCompanion, [this, node](int /*src*/, const auto& payload) {
      UNR_CHECK(payload.size() == sizeof(CompanionMsg));
      CompanionMsg m;
      std::memcpy(&m, payload.data(), sizeof m);
      // Companion notifications are software events: the polling engine
      // applies them, like any other drained completion.
      Engine& eng = ctx_.engine(node);
      eng.enqueue(ctx_.fabric().kernel().now(),
                  [this, node, m] { ctx_.apply_notification(node, m.index, m.code); });
    });
  }
}

void Channel::send_companion(int src_rank, int dst_rank, SigId idx, std::int64_t code,
                             bool ordered, int nic) {
  CompanionMsg m{idx, code};
  std::vector<std::byte> payload(sizeof m);
  std::memcpy(payload.data(), &m, sizeof m);
  ctx_.metrics().companions.inc();
  ctx_.fabric().send_am(src_rank, dst_rank, kAmCompanion, std::move(payload), nic,
                        ordered);
}

bool encode_notification(int width, int index_bits, std::uint64_t index,
                         std::int64_t code, fabric::CustomBits& out) {
  if (width <= 0) return false;
  if (width >= 128) {
    out = {index, static_cast<std::uint64_t>(code)};
    return true;
  }
  if (width >= 64) {
    // 32 bits of index, 32 bits of code.
    if (index >= (1ull << 32)) return false;
    if (code < INT32_MIN || code > INT32_MAX) return false;
    const auto c32 = static_cast<std::uint32_t>(static_cast<std::int32_t>(code));
    out = {index | (static_cast<std::uint64_t>(c32) << 32), 0};
    return true;
  }
  const int ib = std::min(index_bits, width);
  const int cb = width - ib;
  if (ib < 64 && index >= (1ull << ib)) return false;
  if (cb == 0) {
    if (code != 0) return false;  // only a = -1 expressible
    out = {index, 0};
    return true;
  }
  if (code < -(std::int64_t{1} << (cb - 1)) || code >= (std::int64_t{1} << (cb - 1)))
    return false;
  const std::uint64_t cfield =
      static_cast<std::uint64_t>(code) & ((std::uint64_t{1} << cb) - 1);
  out = {index | (cfield << ib), 0};
  return true;
}

void decode_notification(int width, int index_bits, const fabric::CustomBits& in,
                         std::uint64_t& index, std::int64_t& code) {
  UNR_CHECK(width > 0);
  if (width >= 128) {
    index = in.lo;
    code = static_cast<std::int64_t>(in.hi);
    return;
  }
  if (width >= 64) {
    index = in.lo & 0xFFFFFFFFull;
    code = static_cast<std::int32_t>(static_cast<std::uint32_t>(in.lo >> 32));
    return;
  }
  const int ib = std::min(index_bits, width);
  const int cb = width - ib;
  index = ib >= 64 ? in.lo : (in.lo & ((std::uint64_t{1} << ib) - 1));
  if (cb == 0) {
    code = 0;
    return;
  }
  std::uint64_t cfield = (in.lo >> ib) & ((std::uint64_t{1} << cb) - 1);
  // Sign-extend the code field.
  if (cfield & (std::uint64_t{1} << (cb - 1)))
    cfield |= ~((std::uint64_t{1} << cb) - 1);
  code = static_cast<std::int64_t>(cfield);
}

}  // namespace unr::unrlib
