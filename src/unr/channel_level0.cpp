// Level-0 channel: the interface offers NO custom bits (Table I, level 0).
//
// Every notification travels as an additional order-preserving message
// behind its data. Correctness-only; the extra message and the forced FIFO
// routing (no adaptive-routing spread) are the documented performance cost.
#include "unr/channels.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

namespace {

class Level0Channel final : public Channel {
 public:
  explicit Level0Channel(Unr& ctx) : Channel(ctx) { register_companion_handler(); }

  const char* name() const override { return "level0"; }
  SupportLevel level() const override { return SupportLevel::kLevel0; }
  bool multi_channel() const override { return false; }

  void put(const XferOp& op) override {
    fabric::Fabric::PutArgs a;
    a.src_rank = op.src_rank;
    a.src = op.local;
    a.dst = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;
    a.ordered = true;  // the companion must stay behind the data

    if (op.lsig != kNoSig) {
      Unr* ctx = &ctx_;
      const int node = ctx_.node_of(op.src_rank);
      const SigId lsig = op.lsig;
      const std::int64_t code = op.l_code;
      a.on_local_complete = [ctx, node, lsig, code] {
        ctx->engine(node).enqueue(ctx->fabric().kernel().now(), [ctx, node, lsig, code] {
          ctx->apply_notification(node, lsig, code);
        });
      };
    }
    const int dst_rank = op.remote.rank;
    ctx_.fabric().put(std::move(a));
    if (op.rsig != kNoSig)
      send_companion(op.src_rank, dst_rank, op.rsig, op.r_code, /*ordered=*/true,
                     op.nic);
  }

  void get(const XferOp& op) override {
    fabric::Fabric::GetArgs a;
    a.src_rank = op.src_rank;
    a.dst = op.local;
    a.src = op.remote;
    a.size = op.size;
    a.nic_index = op.nic;

    Unr* ctx = &ctx_;
    Level0Channel* self = this;
    const int node = ctx_.node_of(op.src_rank);
    const int reader = op.src_rank;
    const int owner = op.remote.rank;
    const SigId lsig = op.lsig;
    const std::int64_t lcode = op.l_code;
    const SigId rsig = op.rsig;
    const std::int64_t rcode = op.r_code;
    a.on_complete = [ctx, self, node, reader, owner, lsig, lcode, rsig, rcode] {
      if (lsig != kNoSig)
        ctx->engine(node).enqueue(ctx->fabric().kernel().now(), [ctx, node, lsig, lcode] {
          ctx->apply_notification(node, lsig, lcode);
        });
      if (rsig != kNoSig) self->send_companion(reader, owner, rsig, rcode, false);
    };
    ctx_.fabric().get(std::move(a));
  }
};

}  // namespace

std::unique_ptr<Channel> make_level0_channel(Unr& ctx) {
  return std::make_unique<Level0Channel>(ctx);
}

}  // namespace unr::unrlib
