// UNR support levels (Table I) and their derivation from an interface's
// custom-bit widths (Table II).
#pragma once

#include <string>

#include "fabric/personality.hpp"

namespace unr::unrlib {

/// Support level 0..4 per Table I. Levels 0..3 are derived from the width of
/// PUT custom bits *at remote*; level 4 additionally requires the hardware
/// atomic-add-after-RMA offload (proposed, not shipped — the simulator can
/// enable it to model the paper's co-design proposal).
enum class SupportLevel : int {
  kLevel0 = 0,  ///< no custom bits: companion ordered message carries (p, a)
  kLevel1 = 1,  ///< 8/16 bits: index only, a = -1, limited signal count
  kLevel2 = 2,  ///< 32 bits: mode 1 (index only) or mode 2 (x bits p, 32-x bits a)
  kLevel3 = 3,  ///< 64/128 bits: full MMAS (p and a each get half)
  kLevel4 = 4,  ///< 128 bits + hardware *p += a: no polling thread needed
};

/// Classify an interface by its remote-PUT custom-bit width (Table I rule;
/// PAMI's shared 64-bit pool counts as 32 effective remote bits).
SupportLevel classify(const fabric::Personality& p);

/// Effective remote-PUT width used for classification.
int effective_remote_put_bits(const fabric::Personality& p);

const char* support_level_name(SupportLevel l);

/// The "Implementation Specifications" column of Table I.
std::string support_level_spec(SupportLevel l);

/// The "Suggestion for Users" column of Table I.
std::string support_level_suggestion(SupportLevel l);

}  // namespace unr::unrlib
