#include "unr/collectives.hpp"

#include "common/check.hpp"

namespace unr::unrlib {

namespace {
constexpr int kSetupTagBase = 5000;

int ceil_log2(int p) {
  int r = 0;
  while ((1 << r) < p) ++r;
  return r;
}
}  // namespace

// ---------------------------------------------------------------- RmaBarrier

RmaBarrier::RmaBarrier(Unr& unr, runtime::Rank& rank)
    : unr_(unr), rank_(rank), rounds_(ceil_log2(rank.nranks())) {
  const int p = rank_.nranks();
  const int self = rank_.id();
  const int slots = kSets * std::max(rounds_, 1);
  mailbox_.assign(static_cast<std::size_t>(slots), std::byte{0});
  mem_ = unr_.mem_reg(self, mailbox_.data(), mailbox_.size());
  sigs_.resize(static_cast<std::size_t>(slots), kNoSig);
  peer_slots_.resize(static_cast<std::size_t>(slots));

  for (int s = 0; s < kSets; ++s) {
    for (int k = 0; k < rounds_; ++k) {
      const auto idx = static_cast<std::size_t>(s * rounds_ + k);
      sigs_[idx] = unr_.sig_init(self, 1);
      const Blk my_slot = unr_.blk_init(self, mem_, idx, 1, sigs_[idx]);
      // In round k I am signalled by (self - 2^k) and I signal (self + 2^k).
      const int src = (self - (1 << k) + p) % p;
      const int dst = (self + (1 << k)) % p;
      const int tag = kSetupTagBase + s * 64 + k;
      std::vector<runtime::RequestPtr> reqs;
      reqs.push_back(rank_.irecv(dst, tag, &peer_slots_[idx], sizeof(Blk)));
      reqs.push_back(rank_.isend(src, tag, &my_slot, sizeof(Blk)));
      rank_.wait_all(reqs);
    }
  }
}

void RmaBarrier::run() {
  const int self = rank_.id();
  if (rounds_ == 0) return;  // single rank
  const int set = current_set_;
  current_set_ = (current_set_ + 1) % kSets;
  for (int k = 0; k < rounds_; ++k) {
    const auto idx = static_cast<std::size_t>(set * rounds_ + k);
    // Reuse my own mailbox byte as the put source (any registered byte works).
    const Blk src = unr_.blk_init(self, mem_, idx, 1);
    unr_.put(self, src, peer_slots_[idx]);
    unr_.sig_wait(self, sigs_[idx]);
    unr_.sig_reset(self, sigs_[idx]);
  }
}

// ------------------------------------------------------------------ RmaBcast

RmaBcast::RmaBcast(Unr& unr, runtime::Rank& rank, int root, void* buf,
                   std::size_t size)
    : unr_(unr), rank_(rank), root_(root), size_(size) {
  const int p = rank_.nranks();
  const int self = rank_.id();
  UNR_CHECK(root >= 0 && root < p && size > 0);
  vrank_ = (self - root + p) % p;
  mem_ = unr_.mem_reg(self, buf, size);

  // Binomial tree: parent strips the lowest set bit of vrank; children are
  // vrank + mask for masks above my lowest set bit (root: all powers of 2).
  int parent_vr = -1;
  std::vector<int> children_vr;
  {
    int mask = 1;
    while (mask < p) {
      if (vrank_ & mask) {
        parent_vr = vrank_ ^ mask;
        break;
      }
      if (vrank_ + mask < p) children_vr.push_back(vrank_ + mask);
      mask <<= 1;
    }
    // Root has no set bits: the loop above collected all children already.
  }
  auto to_rank = [&](int vr) { return (vr + root_) % p; };

  if (parent_vr >= 0) recv_sig_ = unr_.sig_init(self, 1);
  if (!children_vr.empty())
    send_sig_ = unr_.sig_init(self, static_cast<std::int64_t>(children_vr.size()));
  my_blk_ = unr_.blk_init(self, mem_, 0, size_, recv_sig_);

  // Credits: children tell the parent "consumed, buffer ready again".
  credit_bytes_.assign(std::max<std::size_t>(children_vr.size(), 1), std::byte{0});
  credit_mem_ = unr_.mem_reg(self, credit_bytes_.data(), credit_bytes_.size());
  if (!children_vr.empty())
    credit_sig_ = unr_.sig_init(self, static_cast<std::int64_t>(children_vr.size()));

  // Handle exchange: child -> parent: my data Blk; parent -> child: a credit
  // slot Blk for that child.
  if (parent_vr >= 0) {
    const int pr = to_rank(parent_vr);
    std::vector<runtime::RequestPtr> reqs;
    reqs.push_back(rank_.isend(pr, kSetupTagBase + 200, &my_blk_, sizeof(Blk)));
    reqs.push_back(rank_.irecv(pr, kSetupTagBase + 201, &parent_credit_slot_,
                               sizeof(Blk)));
    rank_.wait_all(reqs);
  }
  child_blks_.resize(children_vr.size());
  for (std::size_t c = 0; c < children_vr.size(); ++c) {
    const int cr = to_rank(children_vr[c]);
    const Blk credit_slot = unr_.blk_init(self, credit_mem_, c, 1, credit_sig_);
    std::vector<runtime::RequestPtr> reqs;
    reqs.push_back(rank_.irecv(cr, kSetupTagBase + 200, &child_blks_[c], sizeof(Blk)));
    reqs.push_back(rank_.isend(cr, kSetupTagBase + 201, &credit_slot, sizeof(Blk)));
    rank_.wait_all(reqs);
  }
}

RmaBcast::~RmaBcast() {
  // Drain the final run's inbound credits before credit_bytes_ is freed.
  if (child_blks_.empty() || first_use_) return;
  try {
    unr_.sig_wait(rank_.id(), credit_sig_);
    unr_.sig_wait(rank_.id(), send_sig_);
  } catch (...) {
    // Tear-down during an aborting simulation: nothing left to drain.
  }
}

void RmaBcast::run() {
  const int self = rank_.id();
  if (rank_.nranks() == 1) return;

  if (vrank_ != 0) {
    unr_.sig_wait(self, recv_sig_);
    unr_.sig_reset(self, recv_sig_);
  }
  if (!child_blks_.empty()) {
    if (!first_use_) {
      // Children must have consumed the previous run before we overwrite.
      unr_.sig_wait(self, credit_sig_);
      unr_.sig_reset(self, credit_sig_);
      unr_.sig_wait(self, send_sig_);
      unr_.sig_reset(self, send_sig_);
    }
    const Blk src = unr_.blk_init(self, mem_, 0, size_, send_sig_);
    for (const Blk& child : child_blks_) unr_.put(self, src, child);
  }
  if (vrank_ != 0) {
    // Consumed: credit the parent (the pre-synchronization for its next run).
    const Blk credit_src = unr_.blk_init(self, credit_mem_, 0, 1);
    unr_.put(self, credit_src, parent_credit_slot_);
  }
  first_use_ = false;
}

// -------------------------------------------------------------- RmaAllgather

RmaAllgather::RmaAllgather(Unr& unr, runtime::Rank& rank, void* buf,
                           std::size_t block_size)
    : unr_(unr), rank_(rank), block_(block_size) {
  const int p = rank_.nranks();
  const int self = rank_.id();
  UNR_CHECK(block_size > 0);
  mem_ = unr_.mem_reg(self, buf, static_cast<std::size_t>(p) * block_);
  if (p == 1) return;

  const int steps = p - 1;
  step_sigs_.resize(static_cast<std::size_t>(kSets * steps), kNoSig);
  right_slots_.resize(static_cast<std::size_t>(kSets * steps));
  send_sig_ = unr_.sig_init(self, steps);

  const int left = (self - 1 + p) % p;
  const int right = (self + 1) % p;
  for (int s = 0; s < kSets; ++s) {
    for (int st = 0; st < steps; ++st) {
      const auto idx = static_cast<std::size_t>(s * steps + st);
      step_sigs_[idx] = unr_.sig_init(self, 1);
      // In step st, my LEFT neighbor writes block (self - st - 1) into me.
      const int blk_idx = (self - st - 1 + p) % p;
      const Blk my_slot =
          unr_.blk_init(self, mem_, static_cast<std::size_t>(blk_idx) * block_,
                        block_, step_sigs_[idx]);
      const int tag = kSetupTagBase + 400 + s * 64 + st;
      std::vector<runtime::RequestPtr> reqs;
      reqs.push_back(rank_.irecv(right, tag, &right_slots_[idx], sizeof(Blk)));
      reqs.push_back(rank_.isend(left, tag, &my_slot, sizeof(Blk)));
      rank_.wait_all(reqs);
    }
  }
}

void RmaAllgather::run() {
  const int p = rank_.nranks();
  const int self = rank_.id();
  if (p == 1) return;
  const int steps = p - 1;
  const int set = current_set_;
  current_set_ = (current_set_ + 1) % kSets;

  if (!first_use_) {
    unr_.sig_wait(self, send_sig_);  // previous run's puts fully out
    unr_.sig_reset(self, send_sig_);
  }
  for (int st = 0; st < steps; ++st) {
    const auto idx = static_cast<std::size_t>(set * steps + st);
    const int send_blk_idx = (self - st + p) % p;
    const Blk src =
        unr_.blk_init(self, mem_, static_cast<std::size_t>(send_blk_idx) * block_,
                      block_, send_sig_);
    unr_.put(self, src, right_slots_[idx]);
    unr_.sig_wait(self, step_sigs_[idx]);
    unr_.sig_reset(self, step_sigs_[idx]);
  }
  first_use_ = false;
}

}  // namespace unr::unrlib
