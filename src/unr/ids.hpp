// Public handle types of the UNR library.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fabric/memory.hpp"

namespace unr::unrlib {

/// Identifier of a Signal within its owner *node's* signal table.
///
/// On real hardware, the custom bits carry a pointer (or table index) that
/// the owner process resolves; in the simulator, NICs are per node, so the
/// table is node-scoped and the id is a node-local slot number. This is
/// exactly the `p` of the paper's MMAS design.
using SigId = std::uint64_t;
inline constexpr SigId kNoSig = ~static_cast<SigId>(0);

/// A registered memory region, as returned by UNR_Mem_Reg.
struct MemHandle {
  int rank = -1;
  fabric::MrId mr = fabric::kInvalidMr;
  std::size_t size = 0;
  bool valid() const { return mr != fabric::kInvalidMr; }
};

/// BLK: the transportable data handle of Section IV-D.
///
/// Identifies a block of data inside a registered memory region together
/// with the signal (if any) bound to completions touching the block. A BLK
/// is plain data: send it to a peer once during setup and the peer can PUT
/// into / GET from the block without ever computing a remote address offset.
struct Blk {
  int rank = -1;                       ///< owning rank
  fabric::MrId mr = fabric::kInvalidMr;
  std::size_t offset = 0;
  std::size_t size = 0;
  SigId sig = kNoSig;                  ///< signal at the OWNER's side
  std::int32_t sig_n_bits = 0;         ///< the signal's event-field width N

  bool valid() const { return rank >= 0 && mr != fabric::kInvalidMr; }
  fabric::MemRef ref() const { return {rank, mr, offset}; }
  /// A sub-block (relative to this block); keeps the same bound signal.
  Blk sub(std::size_t rel_offset, std::size_t sub_size) const {
    Blk b = *this;
    b.offset += rel_offset;
    b.size = sub_size;
    return b;
  }
};

}  // namespace unr::unrlib
