#include "unr/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

Engine::Engine(Unr& ctx, int node, Config cfg, bool active)
    : ctx_(ctx), node_(node), cfg_(cfg), active_(active) {
  if (!active_) return;
  sim::Node& n = ctx_.fabric().machine().node(node_);
  if (cfg_.reserved_core) {
    // A dedicated core: full capacity loss, but no interference penalty and
    // no extra drain delay.
    n.add_background_load(1.0, 0.0);
  } else {
    n.add_background_load(cfg_.unreserved_core_fraction, cfg_.unreserved_penalty);
  }
}

Engine::~Engine() = default;

Time Engine::phase_delay() const {
  Time d = cfg_.poll_interval / 2;
  if (!cfg_.reserved_core) d += cfg_.unreserved_extra_delay;
  return std::max<Time>(d, 1);
}

void Engine::notify_work() {
  UNR_CHECK_MSG(active_, "progress engine notified while inactive (level-4 channel?)");
  if (scheduled_) return;
  schedule_drain(ctx_.fabric().kernel().now() + phase_delay());
}

void Engine::enqueue(Time ready, std::function<void()> task) {
  sw_q_.push_back(SwTask{ready, std::move(task)});
  notify_work();
}

void Engine::schedule_drain(Time at) {
  scheduled_ = true;
  ctx_.fabric().kernel().post_at(at, [this] {
    scheduled_ = false;
    drain();
  });
}

void Engine::drain() {
  stats_.drains++;
  fabric::Fabric& f = ctx_.fabric();
  for (int i = 0; i < f.nics_per_node(); ++i) {
    fabric::Nic& nic = f.nic(node_, i);
    while (!nic.remote_cq().empty()) {
      const fabric::Cqe e = nic.remote_cq().pop();
      stats_.cqes++;
      ctx_.channel().process_cqe(node_, e);
    }
    while (!nic.local_cq().empty()) {
      const fabric::Cqe e = nic.local_cq().pop();
      stats_.cqes++;
      ctx_.channel().process_cqe(node_, e);
    }
  }

  const Time now = f.kernel().now();
  Time next_ready = 0;
  for (std::size_t i = 0; i < sw_q_.size();) {
    if (sw_q_[i].ready <= now) {
      auto task = std::move(sw_q_[i].run);
      sw_q_.erase(sw_q_.begin() + static_cast<std::ptrdiff_t>(i));
      stats_.sw_tasks++;
      task();
    } else {
      next_ready = next_ready == 0 ? sw_q_[i].ready : std::min(next_ready, sw_q_[i].ready);
      ++i;
    }
  }
  if (!sw_q_.empty() && !scheduled_)
    schedule_drain(std::max(next_ready, now + cfg_.poll_interval));
}

}  // namespace unr::unrlib
