#include "unr/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "unr/unr.hpp"

namespace unr::unrlib {

Engine::Engine(Unr& ctx, int node, Config cfg, bool active)
    : ctx_(ctx), node_(node), cfg_(cfg), active_(active) {
  obs::Telemetry& tel = ctx_.fabric().kernel().telemetry();
  const obs::Labels node_label{{"node", std::to_string(node_)}};
  m_.drains = tel.registry().counter("unr.engine.drains", node_label);
  m_.cqes = tel.registry().counter("unr.engine.cqes", node_label);
  m_.sw_tasks = tel.registry().counter("unr.engine.sw_tasks", node_label);
  tr_.on = tel.tracer().enabled();
  tr_.cat = tel.tracer().intern("engine");
  tr_.drain = tel.tracer().intern("drain");
  tr_.k_cqes = tel.tracer().intern("cqes");
  tr_.k_sw = tel.tracer().intern("sw_tasks");
  if (!active_) return;
  if (tr_.on)
    tel.tracer().set_thread_name(node_, obs::kEngineTid, "polling-engine");
  sim::Node& n = ctx_.fabric().machine().node(node_);
  if (cfg_.reserved_core) {
    // A dedicated core: full capacity loss, but no interference penalty and
    // no extra drain delay.
    n.add_background_load(1.0, 0.0);
  } else {
    n.add_background_load(cfg_.unreserved_core_fraction, cfg_.unreserved_penalty);
  }
}

Engine::~Engine() = default;

Engine::Stats Engine::stats() const {
  return Stats{m_.drains.value(), m_.cqes.value(), m_.sw_tasks.value()};
}

Time Engine::phase_delay() const {
  Time d = cfg_.poll_interval / 2;
  if (!cfg_.reserved_core) d += cfg_.unreserved_extra_delay;
  return std::max<Time>(d, 1);
}

void Engine::notify_work() {
  UNR_CHECK_MSG(active_, "progress engine notified while inactive (level-4 channel?)");
  if (scheduled_) return;
  schedule_drain(ctx_.fabric().kernel().now() + phase_delay());
}

void Engine::enqueue(Time ready, std::function<void()> task) {
  sw_q_.push_back(SwTask{ready, std::move(task)});
  notify_work();
}

void Engine::schedule_drain(Time at) {
  scheduled_ = true;
  ctx_.fabric().kernel().post_at(at, [this] {
    scheduled_ = false;
    drain();
  });
}

void Engine::drain() {
  m_.drains.inc();
  std::uint64_t drained_cqes = 0;
  std::uint64_t ran_sw = 0;
  fabric::Fabric& f = ctx_.fabric();
  for (int i = 0; i < f.nics_per_node(); ++i) {
    fabric::Nic& nic = f.nic(node_, i);
    while (!nic.remote_cq().empty()) {
      const fabric::Cqe e = nic.remote_cq().pop();
      ++drained_cqes;
      ctx_.channel().process_cqe(node_, e);
    }
    while (!nic.local_cq().empty()) {
      const fabric::Cqe e = nic.local_cq().pop();
      ++drained_cqes;
      ctx_.channel().process_cqe(node_, e);
    }
  }

  const Time now = f.kernel().now();
  Time next_ready = 0;
  for (std::size_t i = 0; i < sw_q_.size();) {
    if (sw_q_[i].ready <= now) {
      auto task = std::move(sw_q_[i].run);
      sw_q_.erase(sw_q_.begin() + static_cast<std::ptrdiff_t>(i));
      ++ran_sw;
      task();
    } else {
      next_ready = next_ready == 0 ? sw_q_[i].ready : std::min(next_ready, sw_q_[i].ready);
      ++i;
    }
  }
  m_.cqes.inc(drained_cqes);
  m_.sw_tasks.inc(ran_sw);
  // A drain executes at one virtual instant, so its trace record is an
  // instant on the engine track carrying the work it found.
  if (tr_.on)
    ctx_.fabric().kernel().telemetry().tracer().instant(
        node_, obs::kEngineTid, tr_.cat, tr_.drain,
        {{tr_.k_cqes, static_cast<std::int64_t>(drained_cqes)},
         {tr_.k_sw, static_cast<std::int64_t>(ran_sw)}});
  if (!sw_q_.empty() && !scheduled_)
    schedule_drain(std::max(next_ready, now + cfg_.poll_interval));
}

}  // namespace unr::unrlib
