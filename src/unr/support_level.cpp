#include "unr/support_level.hpp"

#include "common/check.hpp"

namespace unr::unrlib {

int effective_remote_put_bits(const fabric::Personality& p) {
  int bits = p.effective_put_remote();
  // PAMI shares one 64-bit pool between local and remote completions: only
  // half of it is effectively available at the remote.
  if (p.shared_put_bits) bits /= 2;
  return bits;
}

SupportLevel classify(const fabric::Personality& p) {
  const int bits = effective_remote_put_bits(p);
  if (bits == 0) return SupportLevel::kLevel0;
  if (bits <= 16) return SupportLevel::kLevel1;
  if (bits < 64) return SupportLevel::kLevel2;
  return SupportLevel::kLevel3;
}

const char* support_level_name(SupportLevel l) {
  switch (l) {
    case SupportLevel::kLevel0: return "Level-0";
    case SupportLevel::kLevel1: return "Level-1";
    case SupportLevel::kLevel2: return "Level-2";
    case SupportLevel::kLevel3: return "Level-3";
    case SupportLevel::kLevel4: return "Level-4";
  }
  return "?";
}

std::string support_level_spec(SupportLevel l) {
  switch (l) {
    case SupportLevel::kLevel0:
      return "Additional order-preserving message transfers p and a.";
    case SupportLevel::kLevel1:
      return "All bits used for p; a = -1 assumed.";
    case SupportLevel::kLevel2:
      return "Mode1: all bits for p, a = -1. Mode2: x bits for p, 32-x for a.";
    case SupportLevel::kLevel3:
      return "p and a each use half of the bits.";
    case SupportLevel::kLevel4:
      return "64 bits p, 64 bits a; hardware atomic add after PUT/GET — no "
             "polling thread required.";
  }
  return "?";
}

std::string support_level_suggestion(SupportLevel l) {
  switch (l) {
    case SupportLevel::kLevel0:
      return "Correctness verification only; no performance guarantee.";
    case SupportLevel::kLevel1:
      return "Signal count limited; performance may degrade past the limit. "
             "No multi-channel.";
    case SupportLevel::kLevel2:
      return "Mode1: no multi-channel. Mode2: multi-channel with limited "
             "signals and events.";
    case SupportLevel::kLevel3:
      return "MMAS completely supported.";
    case SupportLevel::kLevel4:
      return "No performance degradation from polling threads.";
  }
  return "?";
}

}  // namespace unr::unrlib
