#include "obs/trace.hpp"

#include <cassert>
#include <ostream>

namespace unr::obs {

namespace {

void write_json_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

// Chrome expects `ts`/`dur` in microseconds; our clock is integer ns.
// Print fixed-point µs with exactly three fractionals: byte-deterministic,
// no floating point involved.
void write_us(std::ostream& os, Time ns) {
  os << (ns / 1000) << '.';
  const auto frac = ns % 1000;
  if (frac < 100) os << '0';
  if (frac < 10) os << '0';
  os << frac;
}

}  // namespace

void Tracer::configure(const TracerConfig& cfg) {
  enabled_ = cfg.enabled;
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  if (enabled_) {
    std::size_t cap = cfg.ring_capacity == 0 ? 1 : cfg.ring_capacity;
    ring_.resize(cap);
  } else {
    ring_.shrink_to_fit();
  }
}

StrId Tracer::intern(std::string_view s) {
  auto it = intern_.find(std::string(s));
  if (it != intern_.end()) return it->second;
  const StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  intern_.emplace(strings_.back(), id);
  return id;
}

void Tracer::set_process_name(int pid, std::string_view name) {
  if (!enabled_) return;
  for (auto& [p, n] : process_names_) {
    if (p == pid) {
      n = std::string(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::string(name));
}

void Tracer::set_thread_name(int pid, int tid, std::string_view name) {
  if (!enabled_) return;
  for (auto& [key, n] : thread_names_) {
    if (key.first == pid && key.second == tid) {
      n = std::string(name);
      return;
    }
  }
  thread_names_.emplace_back(std::make_pair(pid, tid), std::string(name));
}

void Tracer::push(char ph, int pid, int tid, StrId cat, StrId name, Time ts,
                  Time dur, std::uint64_t id,
                  std::initializer_list<TraceArg> args) {
  Event& e = ring_[head_];
  if (count_ == ring_.size()) {
    ++dropped_;  // overwriting the oldest event
  } else {
    ++count_;
  }
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  e.ts = ts;
  e.dur = dur;
  e.id = id;
  e.cat = cat;
  e.name = name;
  e.pid = pid;
  e.tid = tid;
  e.ph = ph;
  e.nargs = 0;
  for (const TraceArg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
}

void Tracer::complete(int pid, int tid, StrId cat, StrId name, Time start,
                      Time dur, std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  push('X', pid, tid, cat, name, start, dur, 0, args);
}

void Tracer::instant(int pid, int tid, StrId cat, StrId name,
                     std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  push('i', pid, tid, cat, name, now(), 0, 0, args);
}

void Tracer::async_begin(int pid, int tid, StrId cat, StrId name,
                         std::uint64_t id,
                         std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  push('b', pid, tid, cat, name, now(), 0, id, args);
}

void Tracer::async_end(int pid, int tid, StrId cat, StrId name,
                       std::uint64_t id,
                       std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  push('e', pid, tid, cat, name, now(), 0, id, args);
}

void Tracer::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void Tracer::write_event(std::ostream& os, const Event& e) const {
  os << "{\"name\":\"";
  write_json_escaped(os, strings_[e.name]);
  os << "\",\"cat\":\"";
  write_json_escaped(os, strings_[e.cat]);
  os << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
  write_us(os, e.ts);
  if (e.ph == 'X') {
    os << ",\"dur\":";
    write_us(os, e.dur);
  }
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (e.ph == 'b' || e.ph == 'e') {
    char buf[19] = "0x";
    static const char* hex = "0123456789abcdef";
    int n = 2;
    std::uint64_t v = e.id;
    char tmp[16];
    int t = 0;
    do {
      tmp[t++] = hex[v & 0xf];
      v >>= 4;
    } while (v);
    while (t) buf[n++] = tmp[--t];
    os << ",\"id\":\"" << std::string_view(buf, n) << '"';
  }
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  if (e.nargs) {
    os << ",\"args\":{";
    for (int i = 0; i < e.nargs; ++i) {
      if (i) os << ',';
      os << '"';
      write_json_escaped(os, strings_[e.args[i].key]);
      os << "\":" << e.args[i].value;
    }
    os << '}';
  }
  os << '}';
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    write_json_escaped(os, name);
    os << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    write_json_escaped(os, name);
    os << "\"}}";
  }
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t idx =
        start + i >= ring_.size() ? start + i - ring_.size() : start + i;
    sep();
    write_event(os, ring_[idx]);
  }
  os << "\n],\"otherData\":{\"schema\":\"unr-trace-v1\",\"recorded\":" << count_
     << ",\"dropped\":" << dropped_ << "}}\n";
}

}  // namespace unr::obs
