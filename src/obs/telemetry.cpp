#include "obs/telemetry.hpp"

#include <fstream>
#include <iostream>

namespace unr::obs {

void Telemetry::configure(const TelemetryConfig& cfg) {
  cfg_ = cfg;
  registry_.set_enabled(cfg.metrics);
  tracer_.configure(cfg.trace);
}

void Telemetry::flush() {
  if (!cfg_.trace_path.empty()) {
    std::ofstream os(cfg_.trace_path, std::ios::binary | std::ios::trunc);
    if (os) {
      tracer_.write_json(os);
    } else {
      std::cerr << "[obs] cannot open trace file " << cfg_.trace_path << "\n";
    }
  }
  if (!cfg_.metrics_path.empty()) {
    std::ofstream os(cfg_.metrics_path, std::ios::binary | std::ios::trunc);
    if (os) {
      registry_.write_json(os);
    } else {
      std::cerr << "[obs] cannot open metrics file " << cfg_.metrics_path << "\n";
    }
  }
}

}  // namespace unr::obs
