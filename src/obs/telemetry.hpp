// obs::Telemetry — the single entry point to the observability layer.
//
// One Telemetry instance lives inside sim::Kernel (next to the virtual
// clock), so every component that can reach the kernel can reach the
// registry and the tracer:
//
//   kernel.telemetry().registry().counter("fabric.puts").inc();
//   kernel.telemetry().tracer().instant(...);
//
// Configure it BEFORE constructing instrumented components (Fabric, Unr,
// Comm, Solver cache handles and the tracer's enabled flag at construction);
// runtime::World does this first thing in its constructor from
// World::Config::telemetry. flush() writes the configured output files; the
// kernel destructor calls it, so benches get their --trace/--metrics files
// without any explicit teardown code.
#pragma once

#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace unr::obs {

struct TelemetryConfig {
  /// Export metrics (register names, enable lookups/dumps). Handles keep
  /// counting either way; this only gates the registry's visible surface.
  bool metrics = true;
  TracerConfig trace;
  std::string trace_path;    ///< Chrome trace JSON written by flush(); "" = off
  std::string metrics_path;  ///< metrics JSON written by flush(); "" = off
};

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  void configure(const TelemetryConfig& cfg);
  void bind_clock(const Time* now) { tracer_.bind_clock(now); }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Write trace_path / metrics_path if configured. Idempotent (re-writes);
  /// warns to stderr on I/O failure instead of throwing — telemetry must
  /// never take down a run that already produced its result.
  void flush();

 private:
  TelemetryConfig cfg_;
  Registry registry_{true};
  Tracer tracer_;
};

}  // namespace unr::obs
