// obs::Registry — the simulation-wide metrics registry.
//
// One registry serves one simulation (it lives inside sim::Kernel, next to
// the virtual clock). Components register named counters/gauges/histograms
// once at construction time — optionally with labels such as {rank=3} or
// {node=0, nic=1} — and keep the returned handle. A handle is a pre-resolved
// pointer to the metric's slot, so hot-path updates are a single add with no
// lookup, no lock (the sim kernel runs one entity at a time) and no
// allocation.
//
// The legacy per-module stats structs (Fabric::Stats, Unr::Stats,
// Engine::Stats) are retained as deprecated snapshot views materialized from
// this registry; new code should read the registry directly (value lookups,
// or the JSON dump written by Telemetry::flush).
//
// Disabled mode: a disabled registry still hands out fully functional
// handles (they count into private unregistered slots, so module snapshot
// views keep working), but registers nothing — size() is 0, lookups return
// 0, and write_json emits an empty metric list. The hot-path cost is one
// pointer-indirect add either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace unr::obs {

struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

namespace detail {
/// True while the sharded sim kernel has worker threads running; metric
/// updates switch to atomic read-modify-writes. Toggled only while the
/// process is single-threaded (before spawning / after joining the
/// workers), so a plain bool is race-free: the thread fork/join provides
/// the happens-before edges.
inline bool g_concurrent = false;
}  // namespace detail

/// Enter/leave concurrent-update mode (see detail::g_concurrent). Called by
/// the sharded kernel around its worker-thread lifetime.
inline void set_concurrent(bool on) { detail::g_concurrent = on; }

namespace detail {

struct CounterSlot {
  std::uint64_t v = 0;
};

struct GaugeSlot {
  std::int64_t v = 0;
};

/// Log2-bucketed histogram: bucket i holds values whose bit width is i
/// (bucket 0 holds only 0), i.e. [2^(i-1), 2^i - 1] for i >= 1.
struct HistSlot {
  static constexpr int kBuckets = 65;
  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

}  // namespace detail

/// Monotonically increasing event count. Copyable; copies share the slot.
class Counter {
 public:
  Counter();  ///< a detached counter backed by a private static sink
  void inc(std::uint64_t d = 1) {
    if (detail::g_concurrent)
      std::atomic_ref<std::uint64_t>(s_->v).fetch_add(d, std::memory_order_relaxed);
    else
      s_->v += d;
  }
  std::uint64_t value() const { return s_->v; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterSlot* s) : s_(s) {}
  detail::CounterSlot* s_;
};

/// Point-in-time signed value (queue depth, end-of-run totals).
class Gauge {
 public:
  Gauge();
  void set(std::int64_t v) {
    if (detail::g_concurrent)
      std::atomic_ref<std::int64_t>(s_->v).store(v, std::memory_order_relaxed);
    else
      s_->v = v;
  }
  void add(std::int64_t d) {
    if (detail::g_concurrent)
      std::atomic_ref<std::int64_t>(s_->v).fetch_add(d, std::memory_order_relaxed);
    else
      s_->v += d;
  }
  std::int64_t value() const { return s_->v; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeSlot* s) : s_(s) {}
  detail::GaugeSlot* s_;
};

/// Log2-bucketed distribution with approximate percentiles.
class Histogram {
 public:
  Histogram();
  void observe(std::uint64_t v);
  std::uint64_t count() const { return s_->count; }
  std::uint64_t sum() const { return s_->sum; }
  /// Approximate percentile (p in [0, 100]): linear interpolation inside the
  /// containing log2 bucket. Exact for values that are powers of two minus
  /// one apart; never off by more than the bucket width.
  double percentile(double p) const;
  /// Lower bound of bucket i (0 for bucket 0, else 2^(i-1)).
  static std::uint64_t bucket_floor(int i);

 private:
  friend class Registry;
  explicit Histogram(detail::HistSlot* s) : s_(s) {}
  detail::HistSlot* s_;
};

class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }
  /// Enable/disable registration of future metrics. Existing handles are
  /// unaffected. Configure before constructing instrumented components
  /// (World does this in its constructor).
  void set_enabled(bool on) { enabled_ = on; }

  /// Register (or re-acquire) a metric. Re-registering the same name+labels
  /// returns a handle to the same slot. Handles stay valid for the
  /// registry's lifetime.
  Counter counter(std::string_view name, const Labels& labels = {});
  Gauge gauge(std::string_view name, const Labels& labels = {});
  Histogram histogram(std::string_view name, const Labels& labels = {});

  /// Zero every slot (registered or not). Well-defined at any point between
  /// events; benches that loop configurations call this between runs.
  void reset();

  /// Number of registered metrics (0 when disabled).
  std::size_t size() const { return metrics_.size(); }

  /// Lookup by name+labels; 0 when absent (or when the registry is disabled).
  std::uint64_t counter_value(std::string_view name, const Labels& labels = {}) const;
  std::int64_t gauge_value(std::string_view name, const Labels& labels = {}) const;
  /// nullptr when absent.
  const detail::HistSlot* histogram_slot(std::string_view name,
                                         const Labels& labels = {}) const;

  /// Deterministic JSON dump (registration order): schema "unr-metrics-v1".
  void write_json(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Meta {
    std::string name;
    Labels labels;
    Kind kind;
    std::size_t index;  ///< into the kind's slot deque
  };

  static std::string key_of(std::string_view name, const Labels& labels);
  /// Registered metric index for name+labels of `kind`, or -1.
  std::ptrdiff_t find(std::string_view name, const Labels& labels, Kind kind) const;

  bool enabled_;
  // Guards registration (deque growth + index maps) against concurrent
  // lazily-registering shards; handles and slot reads stay lock-free
  // (deque addresses are stable).
  mutable std::mutex reg_mu_;
  // Deques: slot addresses are stable across growth.
  std::deque<detail::CounterSlot> counters_;
  std::deque<detail::GaugeSlot> gauges_;
  std::deque<detail::HistSlot> hists_;
  std::vector<Meta> metrics_;                       ///< registration order
  std::unordered_map<std::string, std::size_t> by_key_;  ///< key -> metrics_ index
};

}  // namespace unr::obs
