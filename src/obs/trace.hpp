// obs::Tracer — virtual-time tracing to Chrome trace-event JSON.
//
// Events are timestamped in virtual nanoseconds read through a bound clock
// pointer (sim::Kernel binds its `now_`). Emission is a push into a fixed
// ring buffer of POD events — no allocation, no formatting — so the sim
// hot path pays a single `enabled` branch when tracing is off and a few
// stores when it is on. JSON rendering happens once, at flush.
//
// Event kinds map to Chrome trace phases:
//   complete()    -> "X"  (span with explicit start + duration)
//   instant()     -> "i"  (point event)
//   async_begin/  -> "b"/"e" (async nestable span; overlapping flights on
//   async_end()              one track, matched by category + id)
//   set_process_name / set_thread_name -> "M" metadata records
//
// Names and categories are interned once (cache the StrId at component
// construction); per-event args carry interned keys + int64 values.
//
// The ring keeps the LAST `ring_capacity` events: tracing a long run stays
// bounded and you see the end of the timeline; `dropped()` reports how many
// older events were overwritten (also recorded in the JSON's otherData).
//
// Determinism: timestamps are integer virtual ns printed as fixed-point
// microseconds ("12.345"), so identical seeds produce byte-identical files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace unr::obs {

using StrId = std::uint32_t;

struct TraceArg {
  StrId key = 0;
  std::int64_t value = 0;
};

struct TracerConfig {
  bool enabled = false;
  std::size_t ring_capacity = 1u << 16;  ///< events kept (last N)
};

// Track (tid) conventions shared by instrumented components. Ranks use
// their global rank id as tid; infrastructure tracks sit far above any
// plausible rank count and get thread_name metadata.
inline constexpr int kEngineTid = 1'000'000;    ///< per-node polling engine
inline constexpr int kNicTidBase = 1'000'100;   ///< + local NIC index

class Tracer {
 public:
  static constexpr int kMaxArgs = 4;

  bool enabled() const { return enabled_; }
  /// Reconfigure; clears any recorded events. Do this before constructing
  /// instrumented components (they cache `enabled()` at construction).
  void configure(const TracerConfig& cfg);
  /// Bind the virtual clock all events are stamped from.
  void bind_clock(const Time* now) { now_ = now; }

  /// Intern a string; stable for the tracer's lifetime. Safe (and cheap) to
  /// call when disabled so components can cache ids unconditionally.
  StrId intern(std::string_view s);

  void set_process_name(int pid, std::string_view name);
  void set_thread_name(int pid, int tid, std::string_view name);

  void complete(int pid, int tid, StrId cat, StrId name, Time start, Time dur,
                std::initializer_list<TraceArg> args = {});
  void instant(int pid, int tid, StrId cat, StrId name,
               std::initializer_list<TraceArg> args = {});
  void async_begin(int pid, int tid, StrId cat, StrId name, std::uint64_t id,
                   std::initializer_list<TraceArg> args = {});
  void async_end(int pid, int tid, StrId cat, StrId name, std::uint64_t id,
                 std::initializer_list<TraceArg> args = {});

  Time now() const { return now_ ? *now_ : 0; }
  std::size_t recorded() const { return count_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Chrome trace JSON ("unr-trace-v1"): metadata first, then ring events
  /// oldest-to-newest. Deterministic for a deterministic event stream.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    Time ts;
    Time dur;
    std::uint64_t id;
    StrId cat;
    StrId name;
    std::int32_t pid;
    std::int32_t tid;
    char ph;
    std::uint8_t nargs;
    TraceArg args[kMaxArgs];
  };

  void push(char ph, int pid, int tid, StrId cat, StrId name, Time ts, Time dur,
            std::uint64_t id, std::initializer_list<TraceArg> args);
  void write_event(std::ostream& os, const Event& e) const;

  bool enabled_ = false;
  const Time* now_ = nullptr;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> intern_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::vector<std::pair<std::pair<int, int>, std::string>> thread_names_;
};

}  // namespace unr::obs
