#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

namespace unr::obs {

namespace {

// Detached-handle sinks: a default-constructed Counter/Gauge/Histogram is
// usable (so instrumented structs can be default-constructed before their
// owner registers them) but counts into a shared throwaway slot.
detail::CounterSlot g_counter_sink;
detail::GaugeSlot g_gauge_sink;
detail::HistSlot g_hist_sink;

void write_json_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters never appear in metric names; keep it simple.
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

void write_labels(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ',';
    os << '"';
    write_json_escaped(os, labels[i].key);
    os << "\":\"";
    write_json_escaped(os, labels[i].value);
    os << '"';
  }
  os << '}';
}

int bucket_of(std::uint64_t v) { return std::bit_width(v); }

}  // namespace

Counter::Counter() : s_(&g_counter_sink) {}
Gauge::Gauge() : s_(&g_gauge_sink) {}
Histogram::Histogram() : s_(&g_hist_sink) {}

void Histogram::observe(std::uint64_t v) {
  if (detail::g_concurrent) {
    std::atomic_ref<std::uint64_t>(s_->buckets[bucket_of(v)])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(s_->count).fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(s_->sum).fetch_add(v, std::memory_order_relaxed);
    return;
  }
  s_->buckets[bucket_of(v)]++;
  s_->count++;
  s_->sum += v;
}

std::uint64_t Histogram::bucket_floor(int i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

double Histogram::percentile(double p) const {
  if (s_->count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(s_->count);
  std::uint64_t cum = 0;
  for (int i = 0; i < detail::HistSlot::kBuckets; ++i) {
    const std::uint64_t n = s_->buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      const double lo = static_cast<double>(bucket_floor(i));
      const double hi = i == 0 ? 0.0 : static_cast<double>(bucket_floor(i)) * 2.0 - 1.0;
      const double frac = n ? (target - static_cast<double>(cum)) / static_cast<double>(n) : 0.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += n;
  }
  return static_cast<double>(bucket_floor(detail::HistSlot::kBuckets - 1));
}

std::string Registry::key_of(std::string_view name, const Labels& labels) {
  // Canonical identity: name + labels sorted by key, so {a=1,b=2} and
  // {b=2,a=1} resolve to the same metric.
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string key(name);
  for (const Label& l : sorted) {
    key += '\x1f';
    key += l.key;
    key += '\x1e';
    key += l.value;
  }
  return key;
}

Counter Registry::counter(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (!enabled_) {
    counters_.emplace_back();
    return Counter(&counters_.back());
  }
  const std::string key = key_of(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return Counter(&counters_[metrics_[it->second].index]);
  counters_.emplace_back();
  by_key_.emplace(key, metrics_.size());
  metrics_.push_back({std::string(name), labels, Kind::kCounter, counters_.size() - 1});
  return Counter(&counters_.back());
}

Gauge Registry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (!enabled_) {
    gauges_.emplace_back();
    return Gauge(&gauges_.back());
  }
  const std::string key = key_of(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return Gauge(&gauges_[metrics_[it->second].index]);
  gauges_.emplace_back();
  by_key_.emplace(key, metrics_.size());
  metrics_.push_back({std::string(name), labels, Kind::kGauge, gauges_.size() - 1});
  return Gauge(&gauges_.back());
}

Histogram Registry::histogram(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (!enabled_) {
    hists_.emplace_back();
    return Histogram(&hists_.back());
  }
  const std::string key = key_of(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return Histogram(&hists_[metrics_[it->second].index]);
  hists_.emplace_back();
  by_key_.emplace(key, metrics_.size());
  metrics_.push_back({std::string(name), labels, Kind::kHistogram, hists_.size() - 1});
  return Histogram(&hists_.back());
}

void Registry::reset() {
  for (auto& s : counters_) s.v = 0;
  for (auto& s : gauges_) s.v = 0;
  for (auto& s : hists_) s = detail::HistSlot{};
}

std::ptrdiff_t Registry::find(std::string_view name, const Labels& labels,
                              Kind kind) const {
  auto it = by_key_.find(key_of(name, labels));
  if (it == by_key_.end()) return -1;
  if (metrics_[it->second].kind != kind) return -1;
  return static_cast<std::ptrdiff_t>(it->second);
}

std::uint64_t Registry::counter_value(std::string_view name, const Labels& labels) const {
  const std::ptrdiff_t i = find(name, labels, Kind::kCounter);
  return i < 0 ? 0 : counters_[metrics_[i].index].v;
}

std::int64_t Registry::gauge_value(std::string_view name, const Labels& labels) const {
  const std::ptrdiff_t i = find(name, labels, Kind::kGauge);
  return i < 0 ? 0 : gauges_[metrics_[i].index].v;
}

const detail::HistSlot* Registry::histogram_slot(std::string_view name,
                                                 const Labels& labels) const {
  const std::ptrdiff_t i = find(name, labels, Kind::kHistogram);
  return i < 0 ? nullptr : &hists_[metrics_[i].index];
}

void Registry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"unr-metrics-v1\",\n  \"metrics\": [";
  bool first = true;
  for (const Meta& m : metrics_) {
    if (!first) os << ',';
    first = false;
    os << "\n    {\"name\": \"";
    write_json_escaped(os, m.name);
    os << "\", \"labels\": ";
    write_labels(os, m.labels);
    switch (m.kind) {
      case Kind::kCounter:
        os << ", \"type\": \"counter\", \"value\": " << counters_[m.index].v << '}';
        break;
      case Kind::kGauge:
        os << ", \"type\": \"gauge\", \"value\": " << gauges_[m.index].v << '}';
        break;
      case Kind::kHistogram: {
        const detail::HistSlot& h = hists_[m.index];
        os << ", \"type\": \"histogram\", \"count\": " << h.count
           << ", \"sum\": " << h.sum;
        // Percentiles as integers (values are virtual ns / bytes — integer
        // domains), keeping the dump byte-deterministic across libcs.
        const Histogram view(const_cast<detail::HistSlot*>(&h));
        os << ", \"p50\": " << static_cast<std::uint64_t>(view.percentile(50))
           << ", \"p90\": " << static_cast<std::uint64_t>(view.percentile(90))
           << ", \"p99\": " << static_cast<std::uint64_t>(view.percentile(99));
        os << ", \"buckets\": [";
        bool bfirst = true;
        for (int i = 0; i < detail::HistSlot::kBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          if (!bfirst) os << ',';
          bfirst = false;
          os << '[' << Histogram::bucket_floor(i) << ',' << h.buckets[i] << ']';
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace unr::obs
