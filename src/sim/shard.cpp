#include "sim/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace unr::sim::detail {

thread_local ShardRt* tl_shard = nullptr;

namespace {
/// Min-heap on (t, seq): std::*_heap build a max-heap, so the comparator is
/// "greater" lexicographically.
struct HeapAfter {
  bool operator()(const ShardRt::HeapEntry& a, const ShardRt::HeapEntry& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};
}  // namespace

ShardRt::~ShardRt() {
  // Destroy the callables of never-dispatched events (deadline timers may
  // legitimately outlive a run) and of anything stranded in a channel by an
  // aborted run. Node memory is freed by the slab vector itself.
  for (HeapEntry& e : heap)
    if (e.n->vtbl) e.n->vtbl->destroy(*e.n);
  heap.clear();
  for (Channel& ch : out) {
    EventNode* n = ch.take();
    while (n) {
      EventNode* nx = n->next;
      if (n->vtbl) n->vtbl->destroy(*n);
      n = nx;
    }
  }
}

void ShardRt::heap_insert(EventNode* n) {
  n->next = nullptr;
  heap.push_back(HeapEntry{n->t, heap_seq++, n});
  std::push_heap(heap.begin(), heap.end(), HeapAfter{});
}

EventNode* ShardRt::heap_pop() {
  std::pop_heap(heap.begin(), heap.end(), HeapAfter{});
  EventNode* n = heap.back().n;
  heap.pop_back();
  return n;
}

void ShardRt::grow_pool() {
  auto slab = std::make_unique<EventNode[]>(Kernel::kEventSlabNodes);
  for (std::size_t i = 0; i < Kernel::kEventSlabNodes; ++i) {
    slab[i].next = free_nodes;
    free_nodes = &slab[i];
  }
  free_count += Kernel::kEventSlabNodes;
  slabs.push_back(std::move(slab));
}

EventNode* ShardRt::alloc_node() {
  if (!free_nodes) grow_pool();
  EventNode* n = free_nodes;
  free_nodes = n->next;
  --free_count;
  return n;
}

void ShardRt::free_node(EventNode* n) {
  n->vtbl = nullptr;
  n->next = free_nodes;
  free_nodes = n;
  ++free_count;
}

}  // namespace unr::sim::detail
