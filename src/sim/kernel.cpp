#include "sim/kernel.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "sim/shard.hpp"

namespace unr::sim {

namespace {
thread_local Kernel* tl_kernel = nullptr;
thread_local int tl_actor = -1;
}  // namespace

namespace detail {

EventNode* TimerWheel::pop_earliest() {
  if (size_ == 0) return nullptr;
  for (;;) {
    // Level 0 first: the current slot (inclusive) onward holds events whose
    // upper 56 bits match cur_, i.e. the next kSlots nanoseconds.
    int idx = find_first(0, static_cast<unsigned>(cur_ & 0xff));
    if (idx >= 0) {
      Slot& s = slots_[0][static_cast<unsigned>(idx)];
      EventNode* n = s.head;
      s.head = n->next;
      if (!s.head) {
        s.tail = nullptr;
        occupied_[0][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
      }
      cur_ = (cur_ & ~Time{0xff}) | static_cast<Time>(idx);
      --size_;
      n->next = nullptr;
      return n;
    }
    // Level 0 dry: find the next occupied slot on the lowest non-empty
    // level strictly ahead of cur_'s position there, advance cur_ to that
    // slot's start, and redistribute its chain downward. Chain order is
    // preserved, so equal-time events stay FIFO through the cascade.
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      const unsigned pos = static_cast<unsigned>((cur_ >> (8 * l)) & 0xff);
      const int next = find_first(l, pos + 1);
      if (next < 0) continue;
      const Time slot_base = static_cast<Time>(next) << (8 * l);
      if (l == kLevels - 1) {
        cur_ = slot_base;  // top level: slot start IS the full prefix
      } else {
        const Time upper = cur_ & ~((Time{1} << (8 * (l + 1))) - 1);
        cur_ = upper | slot_base;
      }
      EventNode* chain = take_slot(l, static_cast<unsigned>(next));
      while (chain) {
        EventNode* nx = chain->next;
        --size_;  // insert() re-counts it
        insert(chain);
        chain = nx;
      }
      cascaded = true;
      break;
    }
    UNR_CHECK_MSG(cascaded, "timer wheel corrupt: " << size_ << " events unreachable");
  }
}

EventNode* TimerWheel::drain() {
  EventNode* out = nullptr;
  for (int l = 0; l < kLevels; ++l) {
    for (unsigned idx = 0; idx < kSlots; ++idx) {
      EventNode* chain = take_slot(l, idx);
      while (chain) {
        EventNode* nx = chain->next;
        chain->next = out;
        out = chain;
        chain = nx;
      }
    }
  }
  size_ = 0;
  return out;
}

}  // namespace detail

Kernel* Kernel::current() { return tl_kernel; }
int Kernel::current_actor_id() { return tl_actor; }

Kernel::Kernel() { telemetry_.bind_clock(&now_); }

Kernel::~Kernel() {
  // Write any configured --trace/--metrics output files while the clock and
  // registry are still alive.
  telemetry_.flush();
  // Destroy the callables of any never-dispatched events (their side effects
  // are simply lost, as with the old priority_queue). Slab memory is freed
  // by the slabs_ vector itself; fiber stack slabs by the StackPool.
  detail::EventNode* n = wheel_.drain();
  while (n) {
    detail::EventNode* nx = n->next;
    if (n->vtbl) n->vtbl->destroy(*n);
    n = nx;
  }
}

void Kernel::grow_pool() {
  auto slab = std::make_unique<detail::EventNode[]>(kEventSlabNodes);
  for (std::size_t i = 0; i < kEventSlabNodes; ++i) {
    slab[i].next = free_nodes_;
    free_nodes_ = &slab[i];
  }
  free_count_ += kEventSlabNodes;
  slabs_.push_back(std::move(slab));
}

Kernel::PoolDebug Kernel::pool_debug() const {
  PoolDebug d;
  d.total = slabs_.size() * kEventSlabNodes;
  d.free = free_count_;
  d.pending = wheel_.size();
  if (stacks_) {
    d.stacks_total = stacks_->total();
    d.stacks_free = stacks_->free_count();
  }
  if (engine_) {
    // Event nodes and stacks migrate between shards (a cross-shard event is
    // allocated on its source and freed on its destination), so conservation
    // only holds for the global sums, which is what callers check.
    for (const auto& rt : engine_->shards) {
      d.total += rt->slabs.size() * kEventSlabNodes;
      d.free += rt->free_count;
      d.pending += rt->heap.size();
      if (rt->stacks) {
        d.stacks_total += rt->stacks->total();
        d.stacks_free += rt->stacks->free_count();
      }
    }
  }
  return d;
}

// First switch into a fresh fiber lands here (via the trampoline), on the
// fiber's own stack. Must never return: the final act is a dying switch
// back to the scheduler. Everything — including exceptions — is contained
// on this side of the switch so the unwinder never walks off a fiber stack.
void Kernel::fiber_entry(void* arg) {
  detail::finish_switch_on_entry();
  Actor* a = static_cast<Actor*>(arg);
  Kernel* k = a->kernel;
  if (!k->aborting_.load(std::memory_order_relaxed)) {
    try {
      (*k->body_)(a->id);
    } catch (const AbortError&) {
      // Torn down by the kernel; nothing to record.
    } catch (...) {
      // Errors are recorded shard-locally (single writer); the unsharded
      // kernel writes first_error_ directly as before.
      if (a->home) {
        if (!a->home->err) a->home->err = std::current_exception();
      } else if (!k->first_error_) {
        k->first_error_ = std::current_exception();
      }
    }
  }
  a->state = State::kDone;
  if (a->home) --a->home->live; else --k->live_;
  detail::FiberContext& sched = a->home ? a->home->sched_ctx : k->sched_ctx_;
  detail::switch_context(a->ctx, sched, /*from_dying=*/true);
  UNR_CHECK_MSG(false, "resumed a completed fiber");  // unreachable
}

void Kernel::resume(Actor* a) {
  detail::ShardRt* rt = a->home;
  a->state = State::kRunning;
  tl_actor = a->id;
  detail::switch_context(rt ? rt->sched_ctx : sched_ctx_, a->ctx, /*from_dying=*/false);
  tl_actor = -1;
  if (a->state == State::kDone && a->stack.base) {
    (rt ? *rt->stacks : *stacks_).release(a->stack);
    a->stack = {};
  }
}

void Kernel::block_current() {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "block_current() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  a->state = State::kBlocked;
  detail::switch_context(a->ctx, a->home ? a->home->sched_ctx : sched_ctx_,
                         /*from_dying=*/false);
  if (aborting_.load(std::memory_order_relaxed)) throw AbortError{};
}

void Kernel::wake(int actor) {
  UNR_CHECK(actor >= 0 && actor < static_cast<int>(actors_.size()));
  Actor* a = actors_[static_cast<std::size_t>(actor)].get();
  if (a->home) {
    // Cross-shard wakes are impossible by construction: all cross-node
    // traffic flows through fabric events, which dispatch on the woken
    // actor's own shard. Enforce it — a violation here is a sharding bug.
    UNR_CHECK_MSG(detail::tl_shard == a->home,
                  "cross-shard wake of actor " << actor);
    if (a->state == State::kBlocked) {
      a->state = State::kReady;
      a->home->ready.push_back(a);
    }
    return;
  }
  if (a->state == State::kBlocked) {
    a->state = State::kReady;
    ready_.push_back(a);
  }
}

void Kernel::sleep_for(Time dt) {
  if (dt == 0) return;
  const int self = tl_actor;
  // The flag lives on this (parked) fiber's stack: the timer either fires
  // while we are parked below, or — if the run aborts first — is destroyed
  // unrun, in which case block_current() has already unwound us via
  // AbortError and the dangling pointer is never dereferenced.
  bool fired = false;
  bool* fired_p = &fired;
  post_in(dt, [this, self, fired_p] {
    *fired_p = true;
    wake(self);
  });
  while (!fired) block_current();
}

std::uint64_t Kernel::arm_timed_wait(Time deadline) {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "arm_timed_wait() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  UNR_CHECK_MSG(a->timed_token == 0,
                "actor " << a->id << " armed a timed wait inside a timed wait");
  // Tokens only need to be unique per actor; sharded mode draws them from a
  // shard-local sequence (tagged with the shard id) to avoid a shared
  // counter race.
  detail::ShardRt* rt = detail::tl_shard;
  const std::uint64_t token =
      rt ? ((static_cast<std::uint64_t>(rt->id) + 1) << 48) | ++rt->timed_seq
         : ++timed_wait_seq_;
  a->timed_token = token;
  a->timed_expired = false;
  const int self = a->id;
  post_at(deadline, [this, self, token] {
    Actor* w = actors_[static_cast<std::size_t>(self)].get();
    if (w->timed_token != token) {
      // The wait already completed: this timer is the usual spurious wakeup
      // (identical to the pre-token design, including the event count).
      wake(self);
      return;
    }
    // Still armed at the deadline. A notify event queued at this very
    // timestamp must win, so expire via a re-posted check that lands BEHIND
    // everything already queued here; any wake it triggers preempts the
    // check (ready actors run before events) and disarms first.
    post_at(now(), [this, self, token] {
      Actor* w2 = actors_[static_cast<std::size_t>(self)].get();
      if (w2->timed_token == token) w2->timed_expired = true;
      wake(self);
    });
  });
  return token;
}

bool Kernel::timed_wait_expired(std::uint64_t token) const {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "timed_wait_expired() outside an actor fiber");
  const Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  return a->timed_token == token && a->timed_expired;
}

void Kernel::disarm_timed_wait(std::uint64_t token) {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "disarm_timed_wait() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  UNR_CHECK_MSG(a->timed_token == token, "timed-wait token mismatch");
  a->timed_token = 0;
  a->timed_expired = false;
}

std::string Kernel::blocked_report() const {
  std::ostringstream os;
  os << "blocked actors:";
  for (const auto& a : actors_)
    if (a->state == State::kBlocked) os << ' ' << a->id;
  return os.str();
}

void Kernel::run(int n_actors, std::function<void(int)> body) {
  UNR_CHECK_MSG(actors_.empty(), "Kernel::run() may only be called once per kernel");
  UNR_CHECK(n_actors >= 0);
  if (n_actors == 0) return;

  if (engine_) {
    body_ = &body;
    run_sharded(n_actors);
    return;
  }

  // Actors and event handlers all execute on this OS thread; both find the
  // kernel via Kernel::current().
  tl_kernel = this;
  tl_actor = -1;
  body_ = &body;
  detail::bind_thread_context(sched_ctx_);
  if (!stacks_)
    stacks_ = std::make_unique<detail::StackPool>(
        actor_stack_bytes_ ? actor_stack_bytes_ : detail::default_stack_bytes());

  actors_.reserve(static_cast<std::size_t>(n_actors));
  for (int i = 0; i < n_actors; ++i) {
    auto a = std::make_unique<Actor>();
    a->id = i;
    a->state = State::kReady;
    a->kernel = this;
    a->stack = stacks_->acquire();
    detail::init_fiber_context(a->ctx, a->stack, &Kernel::fiber_entry, a.get());
    actors_.push_back(std::move(a));
  }
  live_ = n_actors;
  for (auto& a : actors_) ready_.push_back(a.get());

  // Single-exit scheduler loop. The decision structure is EXACTLY the old
  // thread-based kernel's — drain the ready queue FIFO, then dispatch the
  // earliest event (FIFO among equal timestamps), else deadlock — so
  // virtual timelines are bit-identical across the fiber swap. Every
  // termination path (normal completion, actor exception, event-handler
  // exception, deadlock, wheel-invariant failure) funnels through the abort
  // sweep below, so no fiber is ever left mid-frame when run() exits.
  bool need_abort = false;
  while (live_ > 0) {
    if (!ready_.empty()) {
      Actor* a = ready_.front();
      ready_.pop_front();
      resume(a);
    } else if (!wheel_.empty()) {
      detail::EventNode* n = wheel_.pop_earliest();
      if (n->t < now_) {  // wheel invariant violated; fail loud but unwound
        n->vtbl->destroy(*n);
        free_node(n);
        if (!first_error_)
          first_error_ = std::make_exception_ptr(
              std::logic_error("kernel event dispatched out of order"));
        need_abort = true;
        break;
      }
      now_ = n->t;
      ++events_dispatched_;
      bool threw = false;
      try {
        n->vtbl->invoke(*n);
      } catch (...) {
        threw = true;
        if (!first_error_) first_error_ = std::current_exception();
      }
      n->vtbl->destroy(*n);
      free_node(n);
      if (threw) {
        need_abort = true;
        break;
      }
    } else {
      if (!first_error_)
        first_error_ = std::make_exception_ptr(DeadlockError(
            "simulation deadlock at t=" + std::to_string(now_) + "ns; " + blocked_report()));
      need_abort = true;
      break;
    }
  }
  if (need_abort) {
    // Resume every unfinished fiber until it completes: fresh fibers see
    // aborting_ and skip their body; parked ones unwind via the AbortError
    // thrown out of block_current(). Either way each fiber runs to its
    // dying switch and returns its stack to the pool.
    aborting_ = true;
    ready_.clear();
    for (auto& a : actors_)
      while (a->state != State::kDone) resume(a.get());
  }
  end_time_ = now_;
  telemetry_.registry().gauge("sim.events_dispatched").set(static_cast<std::int64_t>(events_dispatched_));
  telemetry_.registry().gauge("sim.end_time_ns").set(static_cast<std::int64_t>(end_time_));
  body_ = nullptr;
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

// --- Sharded mode ---------------------------------------------------------

void Kernel::configure_shards(ShardPlan plan) {
  UNR_CHECK_MSG(actors_.empty(), "configure_shards() after run()");
  UNR_CHECK_MSG(!engine_, "configure_shards() called twice");
  UNR_CHECK_MSG(wheel_.empty(), "configure_shards() after events were posted");
  if (plan.shards <= 1) return;
  UNR_CHECK_MSG(plan.lookahead > 0, "sharded plan needs a positive lookahead");
  for (int s : plan.node_shard) UNR_CHECK(s >= 0 && s < plan.shards);
  for (int s : plan.actor_shard) UNR_CHECK(s >= 0 && s < plan.shards);
  engine_ = std::make_unique<detail::ShardEngine>(std::move(plan));
}

int Kernel::shard_count() const { return engine_ ? engine_->plan.shards : 1; }

int Kernel::shard_of_node(int node) const {
  if (!engine_) return 0;
  const auto& map = engine_->plan.node_shard;
  UNR_CHECK(node >= 0 && node < static_cast<int>(map.size()));
  return map[static_cast<std::size_t>(node)];
}

int Kernel::current_shard() const {
  detail::ShardRt* rt = detail::tl_shard;
  return rt ? rt->id : 0;
}

Time Kernel::sharded_now() const {
  detail::ShardRt* rt = detail::tl_shard;
  return rt ? rt->now : now_;
}

detail::EventNode* Kernel::sharded_alloc_node() {
  detail::ShardRt* rt = detail::tl_shard;
  // Pre-run posts (World/Fabric construction) draw from the kernel's own
  // pool; the node is freed into whichever shard dispatches it — pool
  // conservation is checked over the global sums.
  return rt ? rt->alloc_node() : alloc_node();
}

void Kernel::sharded_commit_local(detail::EventNode* n) {
  detail::ShardRt* rt = detail::tl_shard;
  UNR_CHECK_MSG(rt,
                "post_at() on a sharded kernel outside a run; use "
                "post_at_node() so the event can be routed to its shard");
  rt->heap_insert(n);
}

void Kernel::sharded_commit_node(int node, detail::EventNode* n) {
  detail::ShardEngine& eng = *engine_;
  const int dst = shard_of_node(node);
  detail::ShardRt* self = detail::tl_shard;
  if (!self) {
    // Construction-time post from the coordinator thread: the workers have
    // not started, so inserting into the owner's heap directly is safe.
    eng.shards[static_cast<std::size_t>(dst)]->heap_insert(n);
    return;
  }
  if (self->id == dst) {
    UNR_CHECK_MSG(n->t >= self->now, "event posted into the past: t=" << n->t
                                     << " now=" << self->now);
    self->heap_insert(n);
    return;
  }
  // Conservative lookahead makes every cross-shard post land at or beyond
  // the current window's end; the destination merges it before deciding its
  // next window, so it can never miss it. During an abort unwind the window
  // bound is meaningless — stranded channel nodes are drained after join.
  UNR_CHECK_MSG(n->t >= self->wend || aborting_.load(std::memory_order_relaxed),
                "cross-shard event inside the lookahead window: t=" << n->t
                << " window_end=" << self->wend << " (lookahead too large?)");
  self->out[static_cast<std::size_t>(dst)].push(n);
}

// One window-synchronized worker loop per shard; shard 0 runs on the
// coordinating (main) thread. The decision after bar_sync uses only the
// snapshots every shard published BEFORE the barrier, so all shards compute
// identical stop/abort/window decisions with no leader and no extra
// synchronization.
void Kernel::shard_worker(detail::ShardRt* rt) {
  tl_kernel = this;
  tl_actor = -1;
  detail::tl_shard = rt;
  detail::bind_thread_context(rt->sched_ctx);
  detail::ShardEngine& eng = *engine_;
  const int nshards = eng.plan.shards;
  const Time lookahead = eng.plan.lookahead;
  bool do_abort = false;
  for (;;) {
    // Publish: the earliest virtual time this shard could run anything.
    rt->horizon = !rt->ready.empty() ? rt->now
                  : rt->heap_empty() ? detail::kShardTimeInf
                                     : rt->top_time();
    rt->live_pub = rt->live;
    rt->err_pub = rt->err != nullptr;
    eng.bar_sync.arrive_and_wait();

    // Decide (identical on every shard, from the published snapshots).
    Time lo = detail::kShardTimeInf;
    std::size_t live = 0;
    bool any_err = false;
    for (int q = 0; q < nshards; ++q) {
      const detail::ShardRt& o = *eng.shards[static_cast<std::size_t>(q)];
      lo = std::min(lo, o.horizon);
      live += o.live_pub;
      any_err = any_err || o.err_pub;
    }
    if (any_err) {
      do_abort = true;
      break;
    }
    if (live == 0) break;  // every actor completed (pending timers may remain)
    if (lo == detail::kShardTimeInf) {
      rt->saw_deadlock = true;
      do_abort = true;
      break;
    }
    rt->wend = lo > detail::kShardTimeInf - lookahead ? detail::kShardTimeInf
                                                      : lo + lookahead;

    // Process: same decision structure as the K=1 loop (ready FIFO first,
    // then earliest event, FIFO among equal timestamps), bounded by the
    // window. Actors may run with now >= wend — they execute at a time the
    // window already proved safe; only EVENT dispatch is window-bounded.
    for (;;) {
      if (!rt->ready.empty()) {
        Actor* a = rt->ready.front();
        rt->ready.pop_front();
        resume(a);
        continue;
      }
      if (!rt->heap_empty() && rt->top_time() < rt->wend) {
        detail::EventNode* n = rt->heap_pop();
        if (n->t < rt->now) {  // heap invariant violated; fail loud but unwound
          n->vtbl->destroy(*n);
          rt->free_node(n);
          if (!rt->err)
            rt->err = std::make_exception_ptr(
                std::logic_error("kernel event dispatched out of order"));
          break;
        }
        rt->now = n->t;
        ++rt->events;
        bool threw = false;
        try {
          n->vtbl->invoke(*n);
        } catch (...) {
          threw = true;
          if (!rt->err) rt->err = std::current_exception();
        }
        n->vtbl->destroy(*n);
        rt->free_node(n);
        if (threw) break;
        continue;
      }
      break;
    }
    eng.bar_pub.arrive_and_wait();

    // Merge: drain the channels addressed to this shard in source-shard
    // order. Channel contents are deterministic, so the merged (t, seq)
    // order is too. Sources cannot touch these channels again until they
    // pass the next bar_sync, which this shard also has to reach first.
    for (int src = 0; src < nshards; ++src) {
      detail::EventNode* n =
          eng.shards[static_cast<std::size_t>(src)]->out[static_cast<std::size_t>(rt->id)].take();
      while (n) {
        detail::EventNode* nx = n->next;
        rt->heap_insert(n);
        n = nx;
      }
    }
  }
  if (do_abort) {
    // Same contract as the K=1 abort sweep, per shard: every unfinished
    // fiber owned by this shard runs to its dying switch so no stack leaks.
    aborting_.store(true, std::memory_order_relaxed);
    rt->ready.clear();
    for (auto& a : actors_)
      if (a->home == rt)
        while (a->state != State::kDone) resume(a.get());
  }
  detail::tl_shard = nullptr;
  if (rt->id != 0) tl_kernel = nullptr;
}

void Kernel::run_sharded(int n_actors) {
  detail::ShardEngine& eng = *engine_;
  const int nshards = eng.plan.shards;
  UNR_CHECK_MSG(static_cast<int>(eng.plan.actor_shard.size()) >= n_actors,
                "shard plan covers " << eng.plan.actor_shard.size()
                << " actors, run() asked for " << n_actors);
  tl_kernel = this;
  tl_actor = -1;
  const std::size_t stack_bytes =
      actor_stack_bytes_ ? actor_stack_bytes_ : detail::default_stack_bytes();
  for (auto& rt : eng.shards)
    if (!rt->stacks) rt->stacks = std::make_unique<detail::StackPool>(stack_bytes);

  actors_.reserve(static_cast<std::size_t>(n_actors));
  for (int i = 0; i < n_actors; ++i) {
    auto a = std::make_unique<Actor>();
    a->id = i;
    a->state = State::kReady;
    a->kernel = this;
    a->home = eng.shards[static_cast<std::size_t>(
        eng.plan.actor_shard[static_cast<std::size_t>(i)])].get();
    a->stack = a->home->stacks->acquire();
    detail::init_fiber_context(a->ctx, a->stack, &Kernel::fiber_entry, a.get());
    a->home->ready.push_back(a.get());
    ++a->home->live;
    actors_.push_back(std::move(a));
  }
  live_ = n_actors;  // diagnostics only; per-shard counts drive termination

  // Metrics may now be bumped from several workers at once; the registry
  // switches counters to atomic updates for the workers' lifetime.
  obs::set_concurrent(true);
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nshards - 1));
    for (int s = 1; s < nshards; ++s)
      workers.emplace_back(
          [this, rt = eng.shards[static_cast<std::size_t>(s)].get()] { shard_worker(rt); });
    shard_worker(eng.shards[0].get());
    for (auto& w : workers) w.join();
  }
  obs::set_concurrent(false);

  // An abort unwind can strand staged cross-shard nodes (their windows never
  // merged); destroy the callables and return the nodes so pool conservation
  // holds at teardown.
  for (auto& rt : eng.shards)
    for (auto& ch : rt->out) {
      detail::EventNode* n = ch.take();
      while (n) {
        detail::EventNode* nx = n->next;
        if (n->vtbl) n->vtbl->destroy(*n);
        rt->free_node(n);
        n = nx;
      }
    }

  Time end = 0;
  std::uint64_t dispatched = 0;
  for (auto& rt : eng.shards) {
    end = std::max(end, rt->now);
    dispatched += rt->events;
  }
  live_ = 0;  // the sweep above guarantees every fiber completed
  now_ = end;
  end_time_ = end;
  events_dispatched_ += dispatched;
  for (auto& rt : eng.shards)
    if (rt->err) {
      first_error_ = rt->err;
      break;
    }
  if (!first_error_ && eng.shards[0]->saw_deadlock)
    first_error_ = std::make_exception_ptr(DeadlockError(
        "simulation deadlock at t=" + std::to_string(end) + "ns; " + blocked_report()));
  telemetry_.registry().gauge("sim.events_dispatched").set(static_cast<std::int64_t>(events_dispatched_));
  telemetry_.registry().gauge("sim.end_time_ns").set(static_cast<std::int64_t>(end_time_));
  body_ = nullptr;
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace unr::sim
