#include "sim/kernel.hpp"

#include <sstream>

#include "common/check.hpp"

namespace unr::sim {

namespace {
thread_local Kernel* tl_kernel = nullptr;
thread_local int tl_actor = -1;
}  // namespace

Kernel* Kernel::current() { return tl_kernel; }
int Kernel::current_actor_id() { return tl_actor; }

void Kernel::post_at(Time t, std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  UNR_CHECK_MSG(t >= now_, "event posted into the past: t=" << t << " now=" << now_);
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

void Kernel::actor_main(Actor* a, const std::function<void(int)>& body) {
  tl_kernel = this;
  tl_actor = a->id;
  {
    std::unique_lock<std::mutex> lk(mu_);
    a->cv.wait(lk, [&] { return a->state == State::kRunning || aborting_; });
    if (aborting_ && a->state != State::kRunning) {
      a->state = State::kDone;
      --live_;
      sched_cv_.notify_one();
      return;
    }
  }
  try {
    body(a->id);
  } catch (const AbortError&) {
    // Torn down by the kernel; nothing to record.
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  a->state = State::kDone;
  --live_;
  if (running_ == a) running_ = nullptr;
  sched_cv_.notify_one();
}

void Kernel::block_current() {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "block_current() outside an actor thread");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  std::unique_lock<std::mutex> lk(mu_);
  a->state = State::kBlocked;
  running_ = nullptr;
  sched_cv_.notify_one();
  a->cv.wait(lk, [&] { return a->state == State::kRunning || aborting_; });
  if (aborting_) throw AbortError{};
}

void Kernel::wake(int actor) {
  std::lock_guard<std::mutex> lk(mu_);
  UNR_CHECK(actor >= 0 && actor < static_cast<int>(actors_.size()));
  Actor* a = actors_[static_cast<std::size_t>(actor)].get();
  if (a->state == State::kBlocked) {
    a->state = State::kReady;
    ready_.push_back(a);
  }
}

void Kernel::sleep_for(Time dt) {
  if (dt == 0) return;
  const int self = tl_actor;
  auto fired = std::make_shared<bool>(false);
  post_in(dt, [this, self, fired] {
    *fired = true;
    wake(self);
  });
  while (!*fired) block_current();
}

std::string Kernel::blocked_report() const {
  std::ostringstream os;
  os << "blocked actors:";
  for (const auto& a : actors_)
    if (a->state == State::kBlocked) os << ' ' << a->id;
  return os.str();
}

void Kernel::abort_all_locked(std::unique_lock<std::mutex>& lk, const std::string& why) {
  aborting_ = true;
  for (auto& a : actors_) a->cv.notify_all();
  sched_cv_.wait(lk, [&] { return live_ == 0; });
  lk.unlock();
  for (auto& a : actors_)
    if (a->thread.joinable()) a->thread.join();
  end_time_ = now_;
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
  throw DeadlockError(why);
}

void Kernel::run(int n_actors, std::function<void(int)> body) {
  UNR_CHECK_MSG(actors_.empty(), "Kernel::run() may only be called once per kernel");
  UNR_CHECK(n_actors >= 0);
  if (n_actors == 0) return;

  // Event handlers execute on this (scheduler) thread; they must see the
  // kernel via Kernel::current() just like actor threads do.
  tl_kernel = this;
  tl_actor = -1;

  actors_.reserve(static_cast<std::size_t>(n_actors));
  for (int i = 0; i < n_actors; ++i) {
    auto a = std::make_unique<Actor>();
    a->id = i;
    a->state = State::kReady;
    actors_.push_back(std::move(a));
  }
  live_ = n_actors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& a : actors_) ready_.push_back(a.get());
  }
  for (auto& a : actors_) {
    Actor* raw = a.get();
    raw->thread = std::thread([this, raw, &body] { actor_main(raw, body); });
  }

  std::unique_lock<std::mutex> lk(mu_);
  while (live_ > 0) {
    if (!ready_.empty()) {
      Actor* a = ready_.front();
      ready_.pop_front();
      a->state = State::kRunning;
      running_ = a;
      a->cv.notify_one();
      sched_cv_.wait(lk, [&] { return running_ == nullptr; });
    } else if (!events_.empty()) {
      // const_cast: priority_queue::top() is const but we need to move the
      // handler out before popping.
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      UNR_CHECK(ev.t >= now_);
      now_ = ev.t;
      ++events_dispatched_;
      lk.unlock();
      try {
        ev.fn();
        lk.lock();
      } catch (...) {
        lk.lock();
        if (!first_error_) first_error_ = std::current_exception();
        abort_all_locked(lk, "aborting after event-handler exception");
      }
    } else {
      if (first_error_)
        abort_all_locked(lk, "aborting after actor exception");
      abort_all_locked(lk, "simulation deadlock at t=" + std::to_string(now_) + "ns; " +
                               blocked_report());
    }
  }
  lk.unlock();
  for (auto& a : actors_)
    if (a->thread.joinable()) a->thread.join();
  end_time_ = now_;
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace unr::sim
