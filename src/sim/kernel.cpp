#include "sim/kernel.hpp"

#include <sstream>

#include "common/check.hpp"

namespace unr::sim {

namespace {
thread_local Kernel* tl_kernel = nullptr;
thread_local int tl_actor = -1;
}  // namespace

namespace detail {

EventNode* TimerWheel::pop_earliest() {
  if (size_ == 0) return nullptr;
  for (;;) {
    // Level 0 first: the current slot (inclusive) onward holds events whose
    // upper 56 bits match cur_, i.e. the next kSlots nanoseconds.
    int idx = find_first(0, static_cast<unsigned>(cur_ & 0xff));
    if (idx >= 0) {
      Slot& s = slots_[0][static_cast<unsigned>(idx)];
      EventNode* n = s.head;
      s.head = n->next;
      if (!s.head) {
        s.tail = nullptr;
        occupied_[0][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
      }
      cur_ = (cur_ & ~Time{0xff}) | static_cast<Time>(idx);
      --size_;
      n->next = nullptr;
      return n;
    }
    // Level 0 dry: find the next occupied slot on the lowest non-empty
    // level strictly ahead of cur_'s position there, advance cur_ to that
    // slot's start, and redistribute its chain downward. Chain order is
    // preserved, so equal-time events stay FIFO through the cascade.
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      const unsigned pos = static_cast<unsigned>((cur_ >> (8 * l)) & 0xff);
      const int next = find_first(l, pos + 1);
      if (next < 0) continue;
      const Time slot_base = static_cast<Time>(next) << (8 * l);
      if (l == kLevels - 1) {
        cur_ = slot_base;  // top level: slot start IS the full prefix
      } else {
        const Time upper = cur_ & ~((Time{1} << (8 * (l + 1))) - 1);
        cur_ = upper | slot_base;
      }
      EventNode* chain = take_slot(l, static_cast<unsigned>(next));
      while (chain) {
        EventNode* nx = chain->next;
        --size_;  // insert() re-counts it
        insert(chain);
        chain = nx;
      }
      cascaded = true;
      break;
    }
    UNR_CHECK_MSG(cascaded, "timer wheel corrupt: " << size_ << " events unreachable");
  }
}

EventNode* TimerWheel::drain() {
  EventNode* out = nullptr;
  for (int l = 0; l < kLevels; ++l) {
    for (unsigned idx = 0; idx < kSlots; ++idx) {
      EventNode* chain = take_slot(l, idx);
      while (chain) {
        EventNode* nx = chain->next;
        chain->next = out;
        out = chain;
        chain = nx;
      }
    }
  }
  size_ = 0;
  return out;
}

}  // namespace detail

Kernel* Kernel::current() { return tl_kernel; }
int Kernel::current_actor_id() { return tl_actor; }

Kernel::~Kernel() {
  // Write any configured --trace/--metrics output files while the clock and
  // registry are still alive.
  telemetry_.flush();
  // Destroy the callables of any never-dispatched events (their side effects
  // are simply lost, as with the old priority_queue). Slab memory is freed
  // by the slabs_ vector itself.
  detail::EventNode* n = wheel_.drain();
  while (n) {
    detail::EventNode* nx = n->next;
    if (n->vtbl) n->vtbl->destroy(*n);
    n = nx;
  }
}

void Kernel::grow_pool_locked() {
  auto slab = std::make_unique<detail::EventNode[]>(kEventSlabNodes);
  for (std::size_t i = 0; i < kEventSlabNodes; ++i) {
    slab[i].next = free_nodes_;
    free_nodes_ = &slab[i];
  }
  free_count_ += kEventSlabNodes;
  slabs_.push_back(std::move(slab));
}

Kernel::PoolDebug Kernel::pool_debug() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {slabs_.size() * kEventSlabNodes, free_count_, wheel_.size()};
}

void Kernel::actor_main(Actor* a, const std::function<void(int)>& body) {
  tl_kernel = this;
  tl_actor = a->id;
  {
    std::unique_lock<std::mutex> lk(mu_);
    a->cv.wait(lk, [&] { return a->state == State::kRunning || aborting_; });
    if (aborting_ && a->state != State::kRunning) {
      a->state = State::kDone;
      --live_;
      sched_cv_.notify_one();
      return;
    }
  }
  try {
    body(a->id);
  } catch (const AbortError&) {
    // Torn down by the kernel; nothing to record.
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  a->state = State::kDone;
  --live_;
  if (running_ == a) running_ = nullptr;
  sched_cv_.notify_one();
}

void Kernel::block_current() {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "block_current() outside an actor thread");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  std::unique_lock<std::mutex> lk(mu_);
  a->state = State::kBlocked;
  running_ = nullptr;
  sched_cv_.notify_one();
  a->cv.wait(lk, [&] { return a->state == State::kRunning || aborting_; });
  if (aborting_) throw AbortError{};
}

void Kernel::wake(int actor) {
  std::lock_guard<std::mutex> lk(mu_);
  UNR_CHECK(actor >= 0 && actor < static_cast<int>(actors_.size()));
  Actor* a = actors_[static_cast<std::size_t>(actor)].get();
  if (a->state == State::kBlocked) {
    a->state = State::kReady;
    ready_.push_back(a);
  }
}

void Kernel::sleep_for(Time dt) {
  if (dt == 0) return;
  const int self = tl_actor;
  // The flag lives on this (blocked) actor's stack: the timer either fires
  // while we are parked below, or — if the run aborts first — is destroyed
  // unrun, in which case block_current() has already unwound us via
  // AbortError and the dangling pointer is never dereferenced.
  bool fired = false;
  bool* fired_p = &fired;
  post_in(dt, [this, self, fired_p] {
    *fired_p = true;
    wake(self);
  });
  while (!fired) block_current();
}

std::string Kernel::blocked_report() const {
  std::ostringstream os;
  os << "blocked actors:";
  for (const auto& a : actors_)
    if (a->state == State::kBlocked) os << ' ' << a->id;
  return os.str();
}

void Kernel::run(int n_actors, std::function<void(int)> body) {
  UNR_CHECK_MSG(actors_.empty(), "Kernel::run() may only be called once per kernel");
  UNR_CHECK(n_actors >= 0);
  if (n_actors == 0) return;

  // Event handlers execute on this (scheduler) thread; they must see the
  // kernel via Kernel::current() just like actor threads do.
  tl_kernel = this;
  tl_actor = -1;

  actors_.reserve(static_cast<std::size_t>(n_actors));
  for (int i = 0; i < n_actors; ++i) {
    auto a = std::make_unique<Actor>();
    a->id = i;
    a->state = State::kReady;
    actors_.push_back(std::move(a));
  }
  live_ = n_actors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& a : actors_) ready_.push_back(a.get());
  }
  for (auto& a : actors_) {
    Actor* raw = a.get();
    raw->thread = std::thread([this, raw, &body] { actor_main(raw, body); });
  }

  // Single-exit scheduler loop: every termination path — normal completion,
  // actor exception, event-handler exception, deadlock, internal-invariant
  // failure — funnels through the join below, so no exception can ever
  // propagate past run() with actor threads still attached (std::thread's
  // destructor would call std::terminate).
  std::unique_lock<std::mutex> lk(mu_);
  bool need_abort = false;
  while (live_ > 0) {
    if (!ready_.empty()) {
      Actor* a = ready_.front();
      ready_.pop_front();
      a->state = State::kRunning;
      running_ = a;
      a->cv.notify_one();
      sched_cv_.wait(lk, [&] { return running_ == nullptr; });
    } else if (!wheel_.empty()) {
      detail::EventNode* n = wheel_.pop_earliest();
      if (n->t < now_) {  // wheel invariant violated; fail loud but joined
        n->vtbl->destroy(*n);
        free_node_locked(n);
        if (!first_error_)
          first_error_ = std::make_exception_ptr(
              std::logic_error("kernel event dispatched out of order"));
        need_abort = true;
        break;
      }
      now_ = n->t;
      ++events_dispatched_;
      lk.unlock();
      bool threw = false;
      try {
        n->vtbl->invoke(*n);
      } catch (...) {
        threw = true;
        lk.lock();
        if (!first_error_) first_error_ = std::current_exception();
        lk.unlock();
      }
      n->vtbl->destroy(*n);
      lk.lock();
      free_node_locked(n);
      if (threw) {
        need_abort = true;
        break;
      }
    } else {
      if (!first_error_)
        first_error_ = std::make_exception_ptr(DeadlockError(
            "simulation deadlock at t=" + std::to_string(now_) + "ns; " + blocked_report()));
      need_abort = true;
      break;
    }
  }
  if (need_abort) {
    aborting_ = true;
    for (auto& a : actors_) a->cv.notify_all();
    sched_cv_.wait(lk, [&] { return live_ == 0; });
  }
  lk.unlock();
  for (auto& a : actors_)
    if (a->thread.joinable()) a->thread.join();
  end_time_ = now_;
  telemetry_.registry().gauge("sim.events_dispatched").set(static_cast<std::int64_t>(events_dispatched_));
  telemetry_.registry().gauge("sim.end_time_ns").set(static_cast<std::int64_t>(end_time_));
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace unr::sim
