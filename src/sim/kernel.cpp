#include "sim/kernel.hpp"

#include <sstream>

#include "common/check.hpp"

namespace unr::sim {

namespace {
thread_local Kernel* tl_kernel = nullptr;
thread_local int tl_actor = -1;
}  // namespace

namespace detail {

EventNode* TimerWheel::pop_earliest() {
  if (size_ == 0) return nullptr;
  for (;;) {
    // Level 0 first: the current slot (inclusive) onward holds events whose
    // upper 56 bits match cur_, i.e. the next kSlots nanoseconds.
    int idx = find_first(0, static_cast<unsigned>(cur_ & 0xff));
    if (idx >= 0) {
      Slot& s = slots_[0][static_cast<unsigned>(idx)];
      EventNode* n = s.head;
      s.head = n->next;
      if (!s.head) {
        s.tail = nullptr;
        occupied_[0][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
      }
      cur_ = (cur_ & ~Time{0xff}) | static_cast<Time>(idx);
      --size_;
      n->next = nullptr;
      return n;
    }
    // Level 0 dry: find the next occupied slot on the lowest non-empty
    // level strictly ahead of cur_'s position there, advance cur_ to that
    // slot's start, and redistribute its chain downward. Chain order is
    // preserved, so equal-time events stay FIFO through the cascade.
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      const unsigned pos = static_cast<unsigned>((cur_ >> (8 * l)) & 0xff);
      const int next = find_first(l, pos + 1);
      if (next < 0) continue;
      const Time slot_base = static_cast<Time>(next) << (8 * l);
      if (l == kLevels - 1) {
        cur_ = slot_base;  // top level: slot start IS the full prefix
      } else {
        const Time upper = cur_ & ~((Time{1} << (8 * (l + 1))) - 1);
        cur_ = upper | slot_base;
      }
      EventNode* chain = take_slot(l, static_cast<unsigned>(next));
      while (chain) {
        EventNode* nx = chain->next;
        --size_;  // insert() re-counts it
        insert(chain);
        chain = nx;
      }
      cascaded = true;
      break;
    }
    UNR_CHECK_MSG(cascaded, "timer wheel corrupt: " << size_ << " events unreachable");
  }
}

EventNode* TimerWheel::drain() {
  EventNode* out = nullptr;
  for (int l = 0; l < kLevels; ++l) {
    for (unsigned idx = 0; idx < kSlots; ++idx) {
      EventNode* chain = take_slot(l, idx);
      while (chain) {
        EventNode* nx = chain->next;
        chain->next = out;
        out = chain;
        chain = nx;
      }
    }
  }
  size_ = 0;
  return out;
}

}  // namespace detail

Kernel* Kernel::current() { return tl_kernel; }
int Kernel::current_actor_id() { return tl_actor; }

Kernel::~Kernel() {
  // Write any configured --trace/--metrics output files while the clock and
  // registry are still alive.
  telemetry_.flush();
  // Destroy the callables of any never-dispatched events (their side effects
  // are simply lost, as with the old priority_queue). Slab memory is freed
  // by the slabs_ vector itself; fiber stack slabs by the StackPool.
  detail::EventNode* n = wheel_.drain();
  while (n) {
    detail::EventNode* nx = n->next;
    if (n->vtbl) n->vtbl->destroy(*n);
    n = nx;
  }
}

void Kernel::grow_pool() {
  auto slab = std::make_unique<detail::EventNode[]>(kEventSlabNodes);
  for (std::size_t i = 0; i < kEventSlabNodes; ++i) {
    slab[i].next = free_nodes_;
    free_nodes_ = &slab[i];
  }
  free_count_ += kEventSlabNodes;
  slabs_.push_back(std::move(slab));
}

Kernel::PoolDebug Kernel::pool_debug() const {
  PoolDebug d;
  d.total = slabs_.size() * kEventSlabNodes;
  d.free = free_count_;
  d.pending = wheel_.size();
  if (stacks_) {
    d.stacks_total = stacks_->total();
    d.stacks_free = stacks_->free_count();
  }
  return d;
}

// First switch into a fresh fiber lands here (via the trampoline), on the
// fiber's own stack. Must never return: the final act is a dying switch
// back to the scheduler. Everything — including exceptions — is contained
// on this side of the switch so the unwinder never walks off a fiber stack.
void Kernel::fiber_entry(void* arg) {
  detail::finish_switch_on_entry();
  Actor* a = static_cast<Actor*>(arg);
  Kernel* k = a->kernel;
  if (!k->aborting_) {
    try {
      (*k->body_)(a->id);
    } catch (const AbortError&) {
      // Torn down by the kernel; nothing to record.
    } catch (...) {
      if (!k->first_error_) k->first_error_ = std::current_exception();
    }
  }
  a->state = State::kDone;
  --k->live_;
  detail::switch_context(a->ctx, k->sched_ctx_, /*from_dying=*/true);
  UNR_CHECK_MSG(false, "resumed a completed fiber");  // unreachable
}

void Kernel::resume(Actor* a) {
  a->state = State::kRunning;
  tl_actor = a->id;
  detail::switch_context(sched_ctx_, a->ctx, /*from_dying=*/false);
  tl_actor = -1;
  if (a->state == State::kDone && a->stack.base) {
    stacks_->release(a->stack);
    a->stack = {};
  }
}

void Kernel::block_current() {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "block_current() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  a->state = State::kBlocked;
  detail::switch_context(a->ctx, sched_ctx_, /*from_dying=*/false);
  if (aborting_) throw AbortError{};
}

void Kernel::wake(int actor) {
  UNR_CHECK(actor >= 0 && actor < static_cast<int>(actors_.size()));
  Actor* a = actors_[static_cast<std::size_t>(actor)].get();
  if (a->state == State::kBlocked) {
    a->state = State::kReady;
    ready_.push_back(a);
  }
}

void Kernel::sleep_for(Time dt) {
  if (dt == 0) return;
  const int self = tl_actor;
  // The flag lives on this (parked) fiber's stack: the timer either fires
  // while we are parked below, or — if the run aborts first — is destroyed
  // unrun, in which case block_current() has already unwound us via
  // AbortError and the dangling pointer is never dereferenced.
  bool fired = false;
  bool* fired_p = &fired;
  post_in(dt, [this, self, fired_p] {
    *fired_p = true;
    wake(self);
  });
  while (!fired) block_current();
}

std::uint64_t Kernel::arm_timed_wait(Time deadline) {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "arm_timed_wait() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  UNR_CHECK_MSG(a->timed_token == 0,
                "actor " << a->id << " armed a timed wait inside a timed wait");
  const std::uint64_t token = ++timed_wait_seq_;
  a->timed_token = token;
  a->timed_expired = false;
  const int self = a->id;
  post_at(deadline, [this, self, token] {
    Actor* w = actors_[static_cast<std::size_t>(self)].get();
    if (w->timed_token != token) {
      // The wait already completed: this timer is the usual spurious wakeup
      // (identical to the pre-token design, including the event count).
      wake(self);
      return;
    }
    // Still armed at the deadline. A notify event queued at this very
    // timestamp must win, so expire via a re-posted check that lands BEHIND
    // everything already queued here; any wake it triggers preempts the
    // check (ready actors run before events) and disarms first.
    post_at(now_, [this, self, token] {
      Actor* w2 = actors_[static_cast<std::size_t>(self)].get();
      if (w2->timed_token == token) w2->timed_expired = true;
      wake(self);
    });
  });
  return token;
}

bool Kernel::timed_wait_expired(std::uint64_t token) const {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "timed_wait_expired() outside an actor fiber");
  const Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  return a->timed_token == token && a->timed_expired;
}

void Kernel::disarm_timed_wait(std::uint64_t token) {
  UNR_CHECK_MSG(tl_kernel == this && tl_actor >= 0,
                "disarm_timed_wait() outside an actor fiber");
  Actor* a = actors_[static_cast<std::size_t>(tl_actor)].get();
  UNR_CHECK_MSG(a->timed_token == token, "timed-wait token mismatch");
  a->timed_token = 0;
  a->timed_expired = false;
}

std::string Kernel::blocked_report() const {
  std::ostringstream os;
  os << "blocked actors:";
  for (const auto& a : actors_)
    if (a->state == State::kBlocked) os << ' ' << a->id;
  return os.str();
}

void Kernel::run(int n_actors, std::function<void(int)> body) {
  UNR_CHECK_MSG(actors_.empty(), "Kernel::run() may only be called once per kernel");
  UNR_CHECK(n_actors >= 0);
  if (n_actors == 0) return;

  // Actors and event handlers all execute on this OS thread; both find the
  // kernel via Kernel::current().
  tl_kernel = this;
  tl_actor = -1;
  body_ = &body;
  detail::bind_thread_context(sched_ctx_);
  if (!stacks_)
    stacks_ = std::make_unique<detail::StackPool>(
        actor_stack_bytes_ ? actor_stack_bytes_ : detail::default_stack_bytes());

  actors_.reserve(static_cast<std::size_t>(n_actors));
  for (int i = 0; i < n_actors; ++i) {
    auto a = std::make_unique<Actor>();
    a->id = i;
    a->state = State::kReady;
    a->kernel = this;
    a->stack = stacks_->acquire();
    detail::init_fiber_context(a->ctx, a->stack, &Kernel::fiber_entry, a.get());
    actors_.push_back(std::move(a));
  }
  live_ = n_actors;
  for (auto& a : actors_) ready_.push_back(a.get());

  // Single-exit scheduler loop. The decision structure is EXACTLY the old
  // thread-based kernel's — drain the ready queue FIFO, then dispatch the
  // earliest event (FIFO among equal timestamps), else deadlock — so
  // virtual timelines are bit-identical across the fiber swap. Every
  // termination path (normal completion, actor exception, event-handler
  // exception, deadlock, wheel-invariant failure) funnels through the abort
  // sweep below, so no fiber is ever left mid-frame when run() exits.
  bool need_abort = false;
  while (live_ > 0) {
    if (!ready_.empty()) {
      Actor* a = ready_.front();
      ready_.pop_front();
      resume(a);
    } else if (!wheel_.empty()) {
      detail::EventNode* n = wheel_.pop_earliest();
      if (n->t < now_) {  // wheel invariant violated; fail loud but unwound
        n->vtbl->destroy(*n);
        free_node(n);
        if (!first_error_)
          first_error_ = std::make_exception_ptr(
              std::logic_error("kernel event dispatched out of order"));
        need_abort = true;
        break;
      }
      now_ = n->t;
      ++events_dispatched_;
      bool threw = false;
      try {
        n->vtbl->invoke(*n);
      } catch (...) {
        threw = true;
        if (!first_error_) first_error_ = std::current_exception();
      }
      n->vtbl->destroy(*n);
      free_node(n);
      if (threw) {
        need_abort = true;
        break;
      }
    } else {
      if (!first_error_)
        first_error_ = std::make_exception_ptr(DeadlockError(
            "simulation deadlock at t=" + std::to_string(now_) + "ns; " + blocked_report()));
      need_abort = true;
      break;
    }
  }
  if (need_abort) {
    // Resume every unfinished fiber until it completes: fresh fibers see
    // aborting_ and skip their body; parked ones unwind via the AbortError
    // thrown out of block_current(). Either way each fiber runs to its
    // dying switch and returns its stack to the pool.
    aborting_ = true;
    ready_.clear();
    for (auto& a : actors_)
      while (a->state != State::kDone) resume(a.get());
  }
  end_time_ = now_;
  telemetry_.registry().gauge("sim.events_dispatched").set(static_cast<std::int64_t>(events_dispatched_));
  telemetry_.registry().gauge("sim.end_time_ns").set(static_cast<std::int64_t>(end_time_));
  body_ = nullptr;
  tl_kernel = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace unr::sim
