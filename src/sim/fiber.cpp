#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

#ifdef UNR_FIBER_ASAN
#include <pthread.h>
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace unr::sim::detail {

namespace {

#ifndef UNR_FIBER_UCONTEXT
extern "C" {
void unr_fiber_switch(void** save_sp, void* restore_sp);
void unr_fiber_trampoline();
}
#endif

#ifdef UNR_FIBER_ASAN
// Sanitizer handshake around a stack switch. The save slot passed to
// start_switch_fiber is the OUTGOING context's — ASan parks the current
// fake stack there. A dying fiber passes nullptr instead so ASan frees its
// fake-stack allocations rather than keeping them live for a resume that
// never comes. The finish half runs on the destination stack and must
// restore the fake stack the DESTINATION parked when it last switched away
// (its own slot) — not the suspender's; mixing those up resurrects
// destroyed fake stacks and eventually faults on an unmapped frame.
void asan_before_switch(FiberContext& from, FiberContext& to, bool from_dying) {
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from.asan_fake_stack,
                                 to.asan_stack_bottom, to.asan_stack_size);
}

void asan_after_switch(FiberContext& resumed) {
  __sanitizer_finish_switch_fiber(resumed.asan_fake_stack, nullptr, nullptr);
}
#endif

}  // namespace

void bind_thread_context(FiberContext& ctx) {
#ifdef UNR_FIBER_ASAN
  pthread_attr_t attr;
  void* stack_addr = nullptr;
  std::size_t stack_size = 0;
  UNR_CHECK(pthread_getattr_np(pthread_self(), &attr) == 0);
  UNR_CHECK(pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0);
  pthread_attr_destroy(&attr);
  ctx.asan_stack_bottom = stack_addr;
  ctx.asan_stack_size = stack_size;
#else
  (void)ctx;
#endif
}

void finish_switch_on_entry() {
#ifdef UNR_FIBER_ASAN
  // A fresh fiber has no parked fake stack; ASan creates one lazily.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

#ifdef UNR_FIBER_UCONTEXT

namespace {
// makecontext only forwards ints; smuggle the two pointers through in halves.
void uc_entry_shim(unsigned fn_hi, unsigned fn_lo, unsigned arg_hi, unsigned arg_lo) {
  auto join = [](unsigned hi, unsigned lo) {
    return (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  };
  auto* fn = reinterpret_cast<void (*)(void*)>(join(fn_hi, fn_lo));
  fn(reinterpret_cast<void*>(join(arg_hi, arg_lo)));
  UNR_CHECK_MSG(false, "fiber entry function returned");
}
}  // namespace

void init_fiber_context(FiberContext& ctx, FiberStack stack,
                        void (*entry)(void*), void* arg) {
  UNR_CHECK(getcontext(&ctx.uc) == 0);
  ctx.uc.uc_stack.ss_sp = stack.base;
  ctx.uc.uc_stack.ss_size = stack.size;
  ctx.uc.uc_link = nullptr;
  const auto fn = reinterpret_cast<std::uintptr_t>(entry);
  const auto a = reinterpret_cast<std::uintptr_t>(arg);
  makecontext(&ctx.uc, reinterpret_cast<void (*)()>(uc_entry_shim), 4,
              static_cast<unsigned>(fn >> 32), static_cast<unsigned>(fn),
              static_cast<unsigned>(a >> 32), static_cast<unsigned>(a));
#ifdef UNR_FIBER_ASAN
  ctx.asan_fake_stack = nullptr;  // fresh fiber: nothing parked yet
  ctx.asan_stack_bottom = stack.base;
  ctx.asan_stack_size = stack.size;
#endif
}

void switch_context(FiberContext& from, FiberContext& to, bool from_dying) {
#ifdef UNR_FIBER_ASAN
  asan_before_switch(from, to, from_dying);
#else
  (void)from_dying;
#endif
  UNR_CHECK(swapcontext(&from.uc, &to.uc) == 0);
#ifdef UNR_FIBER_ASAN
  asan_after_switch(from);  // control is back: `from` is the resumed context
#endif
}

#else  // x86-64 assembly path

void init_fiber_context(FiberContext& ctx, FiberStack stack,
                        void (*entry)(void*), void* arg) {
  // Seed the stack with the frame unr_fiber_switch restores: FP control
  // words, r15..r12, rbx, rbp, then the return address (the trampoline).
  // The r12/r13 slots carry the entry function and its argument.
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  auto top = reinterpret_cast<std::uintptr_t>(stack.base + stack.size) & ~std::uintptr_t{15};
  auto* p = reinterpret_cast<std::uint64_t*>(top);
  *--p = reinterpret_cast<std::uint64_t>(&unr_fiber_trampoline);  // ret target
  *--p = 0;                                                       // rbp
  *--p = 0;                                                       // rbx
  *--p = reinterpret_cast<std::uint64_t>(entry);                  // r12
  *--p = reinterpret_cast<std::uint64_t>(arg);                    // r13
  *--p = 0;                                                       // r14
  *--p = 0;                                                       // r15
  *--p = static_cast<std::uint64_t>(mxcsr) |
         (static_cast<std::uint64_t>(fcw) << 32);  // [sp]=mxcsr, [sp+4]=fcw
  ctx.sp = p;
#ifdef UNR_FIBER_ASAN
  ctx.asan_fake_stack = nullptr;  // fresh fiber: nothing parked yet
  ctx.asan_stack_bottom = stack.base;
  ctx.asan_stack_size = stack.size;
#endif
}

void switch_context(FiberContext& from, FiberContext& to, bool from_dying) {
#ifdef UNR_FIBER_ASAN
  asan_before_switch(from, to, from_dying);
#else
  (void)from_dying;
#endif
  unr_fiber_switch(&from.sp, to.sp);
#ifdef UNR_FIBER_ASAN
  asan_after_switch(from);  // control is back: `from` is the resumed context
#endif
}

#endif  // UNR_FIBER_UCONTEXT

std::size_t default_stack_bytes() {
#ifdef UNR_FIBER_ASAN
  std::size_t kib = 1024;  // ASan redzones inflate every frame ~3x
#else
  std::size_t kib = 256;
#endif
  if (const char* env = std::getenv("UNR_SIM_STACK_KIB")) {
    const long v = std::atol(env);
    if (v >= 16) kib = static_cast<std::size_t>(v);
  }
  return kib * 1024;
}

StackPool::StackPool(std::size_t stack_bytes) {
  const long ps = sysconf(_SC_PAGESIZE);
  page_ = ps > 0 ? static_cast<std::size_t>(ps) : 4096;
  stack_bytes_ = (stack_bytes + page_ - 1) & ~(page_ - 1);
  if (stack_bytes_ < 2 * page_) stack_bytes_ = 2 * page_;
  if (const char* env = std::getenv("UNR_SIM_STACK_GUARD"))
    guard_mode_ = std::atoi(env) != 0 ? 1 : 0;
}

StackPool::~StackPool() {
  for (const Slab& s : slabs_) munmap(s.map, s.bytes);
}

void StackPool::grow() {
  // One mmap holds many stacks: at 100k fibers, per-stack mmaps would blow
  // through vm.max_map_count (~65530 VMAs) long before memory runs out.
  // Guard pages (mprotect) split a slab's VMA, so they get the same budget
  // treatment: on by default while the pool is small, dropped for huge pools
  // unless UNR_SIM_STACK_GUARD=1 insists.
  constexpr std::size_t kTargetSlabBytes = std::size_t{16} << 20;
  constexpr std::size_t kMaxGuardedStacks = 16384;
  const bool guard =
      guard_mode_ == 1 || (guard_mode_ == -1 && total_ < kMaxGuardedStacks);
  const std::size_t stride = stack_bytes_ + (guard ? page_ : 0);
  std::size_t count = kTargetSlabBytes / stride;
  if (count < 1) count = 1;
  if (count > 256) count = 256;
  const std::size_t bytes = count * stride;
  void* map = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK, -1, 0);
  UNR_CHECK_MSG(map != MAP_FAILED, "fiber stack slab mmap(" << bytes << ") failed");
  slabs_.push_back({map, bytes});
  free_.reserve(free_.size() + count);
  auto* base = static_cast<unsigned char*>(map);
  for (std::size_t i = 0; i < count; ++i) {
    unsigned char* lo = base + i * stride;
    if (guard) {
      UNR_CHECK(mprotect(lo, page_, PROT_NONE) == 0);
      lo += page_;
      ++guarded_;
    }
    free_.push_back(lo);
  }
  total_ += count;
}

FiberStack StackPool::acquire() {
  if (free_.empty()) grow();
  unsigned char* base = free_.back();
  free_.pop_back();
  return {base, stack_bytes_};
}

void StackPool::release(FiberStack s) {
#ifdef UNR_FIBER_ASAN
  // Scrub stale redzone poison (e.g. frames unwound by a terminating
  // exception) so the next fiber starts on a clean stack.
  __asan_unpoison_memory_region(s.base, s.size);
#endif
  free_.push_back(s.base);
}

}  // namespace unr::sim::detail
