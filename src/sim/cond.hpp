// Condition variables for the simulation domain.
//
// Because exactly one entity runs at a time (see kernel.hpp), there is no
// race between checking a predicate and registering as a waiter: the pattern
//
//   cond.wait([&]{ return ready; });        // actor side
//   ready = true; cond.notify_all();        // event-handler side
//
// is always correct without locks.
#pragma once

#include <vector>

#include "sim/kernel.hpp"

namespace unr::sim {

class Cond {
 public:
  Cond() = default;
  Cond(const Cond&) = delete;
  Cond& operator=(const Cond&) = delete;

  /// Block the current actor until a notify arrives. Wakeups may be
  /// spurious; prefer the predicate overload.
  void wait();

  /// Block until `pred()` returns true.
  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) wait();
  }

  /// Register an actor as a waiter WITHOUT blocking. Used to wait on the
  /// union of several conditions: register on each, then block once via
  /// Kernel::block_current(). Leftover registrations surface as spurious
  /// wakeups later; every wait re-checks its predicate, so that is safe.
  void add_waiter(int actor) { waiters_.push_back(actor); }

  /// Wake all currently-registered waiters.
  void notify_all();

  bool has_waiters() const { return !waiters_.empty(); }

 private:
  std::vector<int> waiters_;
};

}  // namespace unr::sim
