// Condition variables for the simulation domain.
//
// Because exactly one entity runs at a time (see kernel.hpp), there is no
// race between checking a predicate and registering as a waiter: the pattern
//
//   cond.wait([&]{ return ready; });        // actor side
//   ready = true; cond.notify_all();        // event-handler side
//
// is always correct without locks.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "sim/kernel.hpp"

namespace unr::sim {

class Cond {
 public:
  Cond() = default;
  Cond(const Cond&) = delete;
  Cond& operator=(const Cond&) = delete;

  /// Block the current actor until a notify arrives. Wakeups may be
  /// spurious; prefer the predicate overload.
  void wait();

  /// Block until `pred()` returns true.
  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) wait();
  }

  /// Block until `pred()` returns true or `timeout` virtual ns pass.
  /// Returns the final pred() value (false = timed out). Boundary semantics:
  ///   * timeout == 0 polls the predicate exactly once and returns — no
  ///     event is posted and no virtual time passes;
  ///   * a notify arriving exactly AT the deadline wins over the timeout
  ///     (the kernel's timed-wait machinery re-checks behind any notify
  ///     events already queued at the deadline timestamp — see
  ///     Kernel::arm_timed_wait).
  /// If the predicate is satisfied before the deadline, the armed timer
  /// fires later as a plain spurious wakeup, which every wait in the
  /// simulation domain tolerates by design.
  template <typename Pred>
  bool wait_for(Pred pred, Time timeout) {
    if (pred()) return true;
    if (timeout == 0) return false;  // poll once, post nothing
    Kernel* k = Kernel::current();
    const int self = Kernel::current_actor_id();
    UNR_CHECK_MSG(k != nullptr && self >= 0, "Cond::wait_for() outside an actor");
    const std::uint64_t token = k->arm_timed_wait(k->now() + timeout);
    while (!pred() && !k->timed_wait_expired(token)) wait();
    k->disarm_timed_wait(token);
    return pred();
  }

  /// Register an actor as a waiter WITHOUT blocking. Used to wait on the
  /// union of several conditions: register on each, then block once via
  /// Kernel::block_current(). Leftover registrations surface as spurious
  /// wakeups later; every wait re-checks its predicate, so that is safe.
  void add_waiter(int actor) { waiters_.push_back(actor); }

  /// Wake all currently-registered waiters.
  void notify_all();

  bool has_waiters() const { return !waiters_.empty(); }

 private:
  std::vector<int> waiters_;
};

}  // namespace unr::sim
