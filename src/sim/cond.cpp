#include "sim/cond.hpp"

#include <utility>

#include "common/check.hpp"

namespace unr::sim {

void Cond::wait() {
  Kernel* k = Kernel::current();
  const int self = Kernel::current_actor_id();
  UNR_CHECK_MSG(k != nullptr && self >= 0, "Cond::wait() outside an actor");
  waiters_.push_back(self);
  k->block_current();
}

void Cond::notify_all() {
  if (waiters_.empty()) return;
  Kernel* k = Kernel::current();
  UNR_CHECK_MSG(k != nullptr, "Cond::notify_all() outside a simulation");
  std::vector<int> ws = std::exchange(waiters_, {});
  for (int w : ws) k->wake(w);
}

}  // namespace unr::sim
