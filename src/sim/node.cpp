#include "sim/node.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace unr::sim {

void Node::add_background_load(double core_fraction, double oversub_penalty) {
  UNR_CHECK(core_fraction >= 0.0 && oversub_penalty >= 0.0);
  background_ += core_fraction;
  penalty_ += oversub_penalty;
}

void Node::remove_background_load(double core_fraction, double oversub_penalty) {
  background_ = std::max(0.0, background_ - core_fraction);
  penalty_ = std::max(0.0, penalty_ - oversub_penalty);
}

Time Node::compute_time(Time work_ns, int threads) const {
  UNR_CHECK(threads >= 1);
  const double avail = std::max(0.25, static_cast<double>(cores_) - background_);
  const double eff = std::min(static_cast<double>(threads), avail);
  double t = static_cast<double>(work_ns) / eff;
  if (static_cast<double>(threads) > avail + 1e-9) t *= 1.0 + penalty_;
  return static_cast<Time>(t);
}

void Node::compute(Time work_ns, int threads) const {
  Kernel::current()->sleep_for(compute_time(work_ns, threads));
}

Machine::Machine(int n_nodes, int cores_per_node) {
  UNR_CHECK(n_nodes >= 1 && cores_per_node >= 1);
  nodes_.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) nodes_.emplace_back(i, cores_per_node);
}

}  // namespace unr::sim
