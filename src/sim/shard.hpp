// Sharded execution runtime for the DES kernel: conservative-lookahead
// parallel simulation across worker shards.
//
// The kernel's single-threaded scheduler (kernel.hpp) dispatches one entity
// at a time, so a multi-core host simulates a 1024-node fabric no faster
// than one core allows. Virtual time gives a natural conservative bound:
// every event crossing between two simulated nodes takes at least the
// minimum wire latency, so two groups of nodes can advance independently
// inside a bounded window without ever needing an event from each other.
//
// Structure: each shard owns a disjoint subset of simulated nodes and their
// actor fibers, with its own event queue, ready FIFO, event-node pool and
// fiber stack pool — the hot intra-shard post/dispatch/block/wake cycle
// touches no shared state and takes no locks. Shards synchronize only at
// window boundaries:
//
//   publish:  horizon[s] = earliest time shard s could run anything
//             (its clock if an actor is ready, else its earliest event)
//   barrier   (bar_sync)
//   decide:   L = min horizon; window end = L + lookahead. Every shard
//             computes the same decision from the same published snapshot,
//             so stop/abort/deadlock choices are deterministic and need no
//             coordinator thread.
//   process:  drain ready actors; dispatch local events with t < window
//             end. Cross-shard posts are staged into per-(src,dst) channels
//             — by construction their timestamps are >= window end, which
//             the post path asserts.
//   barrier   (bar_pub)
//   merge:    each shard drains the channels addressed to it, in source-
//             shard order, into its event queue.
//
// Why the sharded queue is a binary heap and not the timer wheel: popping
// the wheel advances its internal current-time cursor, after which a merged
// cross-shard event below the cursor would be unreachable. The heap is
// keyed (t, insertion sequence) — the same FIFO-per-timestamp total order —
// peeks in O(1), and accepts any t >= the shard's clock. K=1 never builds
// any of this: the kernel's wheel and scheduler loop run untouched, which
// is what keeps single-shard runs bit-identical to the golden pins.
//
// Determinism for fixed (seed, K): merge order is (timestamp, source shard,
// per-channel FIFO), decided by data, never by thread arrival; termination
// is decided only from barrier-published snapshots.
#pragma once

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "sim/fiber.hpp"
#include "sim/kernel.hpp"

namespace unr::sim::detail {

inline constexpr Time kShardTimeInf = std::numeric_limits<Time>::max();

/// Per-shard scheduler state. Everything here is owned by exactly one
/// worker thread during a run; the `horizon`/`live_pub`/`err_pub` snapshot
/// fields are published before bar_sync and read by other shards only
/// after it (the barrier provides the happens-before edge), and the `out`
/// channels are written during the process phase and drained by their
/// destination only after bar_pub.
struct ShardRt {
  /// Intrusive FIFO of staged cross-shard event nodes (links via
  /// EventNode::next, which is unused while a node is off the heap).
  struct Channel {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
    void push(EventNode* n) {
      n->next = nullptr;
      if (tail) tail->next = n; else head = n;
      tail = n;
    }
    EventNode* take() {
      EventNode* h = head;
      head = tail = nullptr;
      return h;
    }
  };

  /// Min-heap entry ordered by (t, seq): seq is assigned at insertion, so
  /// equal-time events dispatch in insertion order — the same
  /// FIFO-per-timestamp total order the timer wheel gives the K=1 path.
  struct HeapEntry {
    Time t = 0;
    std::uint64_t seq = 0;
    EventNode* n = nullptr;
  };

  explicit ShardRt(int shard_id, int nshards)
      : id(shard_id), out(static_cast<std::size_t>(nshards)) {}
  ~ShardRt();
  ShardRt(const ShardRt&) = delete;
  ShardRt& operator=(const ShardRt&) = delete;

  // --- event heap ---
  bool heap_empty() const { return heap.empty(); }
  Time top_time() const { return heap.front().t; }
  void heap_insert(EventNode* n);
  EventNode* heap_pop();

  // --- event-node pool (mirrors the kernel's slab/free-list pool) ---
  EventNode* alloc_node();
  void free_node(EventNode* n);
  void grow_pool();

  const int id;
  Time now = 0;
  Time wend = 0;  ///< current window end (exclusive); cross-posts assert >= it

  // Published snapshot (written pre-bar_sync, read post-bar_sync).
  Time horizon = 0;
  std::size_t live_pub = 0;
  bool err_pub = false;

  std::vector<HeapEntry> heap;
  std::uint64_t heap_seq = 0;

  std::vector<std::unique_ptr<EventNode[]>> slabs;
  EventNode* free_nodes = nullptr;
  std::size_t free_count = 0;

  std::deque<Kernel::Actor*> ready;
  std::size_t live = 0;  ///< this shard's not-yet-done actors
  std::unique_ptr<StackPool> stacks;
  FiberContext sched_ctx;  ///< this worker thread's scheduler context
  std::uint64_t timed_seq = 0;
  std::uint64_t events = 0;
  std::exception_ptr err;
  bool saw_deadlock = false;

  std::vector<Channel> out;  ///< out[dst]: staged events bound for shard dst
};

/// The whole sharded runtime: one ShardRt per worker plus the two window
/// barriers. Built by Kernel::configure_shards (only for plans with more
/// than one shard) and owned by the kernel.
class ShardEngine {
 public:
  explicit ShardEngine(ShardPlan p)
      : plan(std::move(p)),
        bar_sync(plan.shards),
        bar_pub(plan.shards) {
    shards.reserve(static_cast<std::size_t>(plan.shards));
    for (int s = 0; s < plan.shards; ++s)
      shards.push_back(std::make_unique<ShardRt>(s, plan.shards));
  }

  ShardPlan plan;
  std::vector<std::unique_ptr<ShardRt>> shards;
  std::barrier<> bar_sync;  ///< after horizon publish, before the decision
  std::barrier<> bar_pub;   ///< after the process phase, before the merge
};

/// Worker thread -> its shard (nullptr on non-worker threads and between
/// runs). Lives in shard.cpp; kernel.cpp routes posts and clocks through it.
extern thread_local ShardRt* tl_shard;

}  // namespace unr::sim::detail
