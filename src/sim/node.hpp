// Per-node core accounting.
//
// Models the paper's Section VI-C observation: a UNR polling thread that is
// not given a reserved core competes with the application's OpenMP threads.
// Services (the polling engine) register a background load in "cores"; when
// the application then asks for more threads than the remaining capacity,
// its compute charges are inflated by a context-switch penalty on top of the
// capacity loss.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "sim/kernel.hpp"

namespace unr::sim {

class Node {
 public:
  Node(int id, int cores) : id_(id), cores_(cores) {}

  int id() const { return id_; }
  int cores() const { return cores_; }

  /// Register a background service consuming `core_fraction` of one core
  /// (e.g. a polling thread). `oversub_penalty` is the extra multiplicative
  /// compute slowdown applied when the node is oversubscribed because of it
  /// (models context-switch and cache-pollution cost, not just capacity).
  void add_background_load(double core_fraction, double oversub_penalty);
  void remove_background_load(double core_fraction, double oversub_penalty);

  double background_load() const { return background_; }

  /// Virtual duration of `work_ns` nanoseconds of single-core work executed
  /// with `threads` threads on this node.
  Time compute_time(Time work_ns, int threads) const;

  /// Blocking helper for actor code: charge the compute time on the clock.
  void compute(Time work_ns, int threads) const;

 private:
  int id_;
  int cores_;
  double background_ = 0.0;
  double penalty_ = 0.0;
};

/// The set of nodes in one simulated machine.
class Machine {
 public:
  Machine(int n_nodes, int cores_per_node);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<Node> nodes_;
};

}  // namespace unr::sim
