// Discrete-event simulation kernel with blocking-style actors.
//
// Why this exists: the paper's measurements (latency, multi-NIC bandwidth
// aggregation, compute/communication overlap, polling-thread interference)
// are about *parallel* resources. This reproduction runs on arbitrary hosts
// — including single-core ones — so real wall-clock timing of real threads
// cannot express "two NICs transfer twice as fast". Instead, everything runs
// against a virtual clock:
//
//   * Each simulated process (rank) is an OS thread, but EXACTLY ONE entity
//     (one actor, or one event handler) executes at a time. Application code
//     is written in normal blocking style (send, recv, wait on a signal) and
//     yields to the kernel whenever it blocks or charges compute time.
//   * Hardware (NIC engines, the wire, polling threads) is modeled as events
//     on the virtual clock.
//
// Because only one entity runs at a time, NO simulation-domain data structure
// needs locking: fabric queues, matching lists and UNR signal tables are all
// plain containers. The single mutex in this file only sequences the
// hand-off between threads. Runs are bit-reproducible given a seed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"

namespace unr::sim {

using unr::Time;

/// Thrown inside actor bodies when the kernel tears a run down (after another
/// actor failed, or on deadlock). Actor code should not catch it.
struct AbortError {};

/// All actors blocked, no events pending — the simulated program hung.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Kernel {
 public:
  Kernel() = default;
  ~Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current virtual time. Valid from actors and event handlers.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  /// Events with equal time run in posting order.
  void post_at(Time t, std::function<void()> fn);
  void post_in(Time dt, std::function<void()> fn) { post_at(now_ + dt, std::move(fn)); }

  /// Run `n_actors` copies of `body` (argument = actor id, 0-based) to
  /// completion. Blocks the calling thread; rethrows the first actor
  /// exception; throws DeadlockError if the simulation hangs.
  void run(int n_actors, std::function<void(int)> body);

  /// Kernel owning the calling actor thread (nullptr outside a run).
  static Kernel* current();
  /// Id of the calling actor (-1 outside an actor).
  static int current_actor_id();

  // --- Blocking primitives (callable only from actor threads) ---

  /// Advance this actor's virtual time by `dt` (models compute / busy time).
  void sleep_for(Time dt);
  /// Block until some event or actor calls wake() on this actor. Callers
  /// must loop on their predicate: wakeups may be spurious.
  void block_current();
  /// Make a blocked actor runnable (no-op if it is not blocked).
  void wake(int actor);

  /// Total events dispatched so far (diagnostics).
  std::uint64_t event_count() const { return events_dispatched_; }
  /// Virtual time at which the last run() finished.
  Time end_time() const { return end_time_; }

 private:
  enum class State { kReady, kRunning, kBlocked, kDone };

  struct Actor {
    int id = -1;
    State state = State::kReady;
    std::condition_variable cv;
    std::thread thread;
  };

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void actor_main(Actor* a, const std::function<void(int)>& body);
  void schedule_loop();
  [[noreturn]] void abort_all_locked(std::unique_lock<std::mutex>& lk,
                                     const std::string& why);
  std::string blocked_report() const;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;
  Time now_ = 0;
  Time end_time_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::deque<Actor*> ready_;
  Actor* running_ = nullptr;
  int live_ = 0;
  bool aborting_ = false;
  std::exception_ptr first_error_;
};

/// Convenience: charge `dt` of virtual time on the current actor.
inline void busy(Time dt) { Kernel::current()->sleep_for(dt); }

}  // namespace unr::sim
