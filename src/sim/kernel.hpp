// Discrete-event simulation kernel with blocking-style actors on pooled
// fibers (stackful coroutines).
//
// Why this exists: the paper's measurements (latency, multi-NIC bandwidth
// aggregation, compute/communication overlap, polling-thread interference)
// are about *parallel* resources. This reproduction runs on arbitrary hosts
// — including single-core ones — so real wall-clock timing of real threads
// cannot express "two NICs transfer twice as fast". Instead, everything runs
// against a virtual clock:
//
//   * Each simulated process (rank) is a FIBER — a pooled, lazily-committed
//     stack plus a saved context (sim/fiber.hpp) — multiplexed with the
//     scheduler on ONE OS thread. Application code is written in normal
//     blocking style (send, recv, wait on a signal); "blocking" parks the
//     fiber on a wait queue or the timer wheel and switches back to the
//     scheduler in a couple dozen instructions. EXACTLY ONE entity (one
//     actor, or one event handler) executes at a time.
//   * Hardware (NIC engines, the wire, polling threads) is modeled as events
//     on the virtual clock.
//
// Because everything runs on one OS thread, NO simulation-domain data
// structure needs locking — fabric queues, matching lists and UNR signal
// tables are all plain containers — and there is no mutex/condvar handoff
// per block/wake like the retired thread-per-rank design had (two futex
// round trips each, and an 8 MiB kernel stack per rank that capped Worlds
// at a few hundred ranks; fibers hold 100k+ ranks in one process). Wake
// order is the kernel's explicit choice (FIFO ready queue, FIFO-per-
// timestamp events), never the OS scheduler's, so runs are bit-reproducible
// given a seed by construction.
//
// Event storage (hot path): events live in a slab-allocated, free-listed
// pool of fixed-size nodes; the callable is constructed in-place inside the
// node when it fits (all kernel-internal and fabric callbacks do), so the
// common post/dispatch cycle performs no heap allocation at all. Pending
// events are kept in a hierarchical timer wheel (8 levels x 256 slots, one
// byte of the 64-bit virtual-time key per level) with intrusive FIFO slot
// lists and per-level occupancy bitmaps: insert is O(1), pop is O(1)
// amortized, and events with equal timestamps dispatch in posting order —
// the same total order the old priority_queue<Event>-with-seq gave, which
// keeps virtual timelines bit-identical across the swap.
//
// Sharded mode (shard.hpp): configure_shards() partitions actors and
// simulated nodes across K worker shards synchronized by conservative
// lookahead windows. K=1 never constructs the shard engine — the wheel and
// the scheduler loop below run exactly as before, bit-identical.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "obs/telemetry.hpp"
#include "sim/fiber.hpp"

namespace unr::sim {

using unr::Time;

/// Thrown inside actor bodies when the kernel tears a run down (after another
/// actor failed, or on deadlock). Actor code should not catch it.
struct AbortError {};

/// All actors blocked, no events pending — the simulated program hung.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How a World partitions the simulation across kernel worker shards.
/// Built at World construction from the fabric topology; `lookahead` is the
/// minimum virtual latency of any cross-shard event post (so a shard
/// processing events below min(horizons) + lookahead can never need an
/// event another shard has yet to send). shards <= 1 means the classic
/// single-threaded kernel.
struct ShardPlan {
  int shards = 1;
  Time lookahead = 0;           ///< must be > 0 when shards > 1
  std::vector<int> node_shard;  ///< simulated node id -> owning shard
  std::vector<int> actor_shard; ///< actor id -> owning shard
};

namespace detail {

/// Callables up to this size (and max_align_t alignment) are stored inline
/// in the event node; larger ones fall back to a single heap allocation.
/// 72 bytes covers every callback the simulator itself posts (the largest,
/// UNR's shm-window completion lambda, captures ~56 bytes).
inline constexpr std::size_t kInlineCallbackBytes = 72;

struct EventNode;

/// Per-callable-type dispatch: one static vtable instead of the
/// std::function control block, so invoking an event is two indirect calls
/// and no allocation.
struct EventVtbl {
  void (*invoke)(EventNode&);
  void (*destroy)(EventNode&) noexcept;
};

struct EventNode {
  Time t = 0;
  EventNode* next = nullptr;  ///< slot list when pending, free list when idle
  const EventVtbl* vtbl = nullptr;
  alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
};

struct ShardRt;
class ShardEngine;

template <class D>
struct InlineEventOps {
  static D* self(EventNode& n) {
    return std::launder(reinterpret_cast<D*>(n.storage));
  }
  static void invoke(EventNode& n) { (*self(n))(); }
  static void destroy(EventNode& n) noexcept { self(n)->~D(); }
  static constexpr EventVtbl vtbl{&invoke, &destroy};
};

template <class D>
struct HeapEventOps {
  static D* self(EventNode& n) {
    return *std::launder(reinterpret_cast<D**>(n.storage));
  }
  static void invoke(EventNode& n) { (*self(n))(); }
  static void destroy(EventNode& n) noexcept { delete self(n); }
  static constexpr EventVtbl vtbl{&invoke, &destroy};
};

/// Hierarchical timer wheel over the full 64-bit virtual-time domain.
/// Level l holds events whose timestamp first differs from the wheel's
/// current time in byte l; slot index is that byte's value. Popping scans
/// level 0 forward from the current slot, and when it runs dry cascades the
/// next occupied higher-level slot down. Equal-time events always land in
/// the same slot in posting order (appends at the tail), and a cascade
/// re-inserts a slot's chain in list order, so FIFO-per-timestamp survives
/// every redistribution.
class TimerWheel {
 public:
  static constexpr int kLevels = 8;
  static constexpr int kSlots = 256;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Insert a node with n->t >= the time of the last pop.
  void insert(EventNode* n) {
    const int l = level_of(n->t);
    const unsigned idx = slot_of(n->t, l);
    Slot& s = slots_[l][idx];
    n->next = nullptr;
    if (s.tail) {
      s.tail->next = n;
      s.tail = n;
    } else {
      s.head = s.tail = n;
      occupied_[l][idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }
    ++size_;
  }

  /// Detach and return the earliest pending node (FIFO among equal times),
  /// or nullptr when empty. Advances the wheel's notion of current time.
  EventNode* pop_earliest();

  /// Detach every remaining node into a single list (destruction path).
  EventNode* drain();

 private:
  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  int level_of(Time t) const {
    const Time diff = t ^ cur_;
    if (diff == 0) return 0;
    return (63 - std::countl_zero(diff)) >> 3;
  }
  static unsigned slot_of(Time t, int level) {
    return static_cast<unsigned>((t >> (8 * level)) & 0xff);
  }
  /// First occupied slot index >= `from` at `level`, or -1.
  int find_first(int level, unsigned from) const {
    if (from >= kSlots) return -1;
    unsigned w = from >> 6;
    std::uint64_t word = occupied_[level][w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (word) return static_cast<int>(w * 64 + static_cast<unsigned>(std::countr_zero(word)));
      if (++w == kSlots / 64) return -1;
      word = occupied_[level][w];
    }
  }
  EventNode* take_slot(int level, unsigned idx) {
    Slot& s = slots_[level][idx];
    EventNode* head = s.head;
    s.head = s.tail = nullptr;
    occupied_[level][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    return head;
  }

  Slot slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kSlots / 64] = {};
  Time cur_ = 0;  ///< time of the last pop (lower bound on all pending t)
  std::size_t size_ = 0;
};

}  // namespace detail

class Kernel {
 public:
  Kernel();  // out of line: members include a unique_ptr to the shard engine
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current virtual time. Valid from actors and event handlers. In
  /// sharded mode this is the calling shard's clock (shards advance
  /// independently inside a lookahead window).
  Time now() const { return engine_ ? sharded_now() : now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now(); posting
  /// into the past fails loudly). Events with equal time run in posting
  /// order. No heap allocation when the callable fits the node's inline
  /// storage. In sharded mode this posts to the CALLING shard (the common
  /// intra-shard case, lock-free); use post_at_node() for anything that may
  /// land on another simulated node.
  template <class F>
  void post_at(Time t, F&& fn) {
    static_assert(std::is_invocable_v<std::decay_t<F>&>,
                  "event callback must be invocable with no arguments");
    if (engine_) {
      UNR_CHECK_MSG(t >= now(), "event posted into the past: t=" << t << " now=" << now());
      detail::EventNode* n = sharded_alloc_node();
      n->t = t;
      attach_callback(n, std::forward<F>(fn));
      sharded_commit_local(n);
      return;
    }
    UNR_CHECK_MSG(t >= now_, "event posted into the past: t=" << t << " now=" << now_);
    detail::EventNode* n = alloc_node();
    n->t = t;
    attach_callback(n, std::forward<F>(fn));
    wheel_.insert(n);
  }
  template <class F>
  void post_in(Time dt, F&& fn) {
    post_at(now() + dt, std::forward<F>(fn));
  }

  /// Schedule `fn` at time `t` on the shard owning simulated node `node`.
  /// Identical to post_at() on an unsharded kernel. Cross-shard posts are
  /// staged into a per-(src,dst) channel merged at the next window
  /// boundary; conservative lookahead guarantees (and this path asserts)
  /// that their timestamps are at or beyond the current window's end.
  template <class F>
  void post_at_node(int node, Time t, F&& fn) {
    static_assert(std::is_invocable_v<std::decay_t<F>&>,
                  "event callback must be invocable with no arguments");
    if (!engine_) {
      post_at(t, std::forward<F>(fn));
      return;
    }
    detail::EventNode* n = sharded_alloc_node();
    n->t = t;
    attach_callback(n, std::forward<F>(fn));
    sharded_commit_node(node, n);
  }

  /// Run `n_actors` copies of `body` (argument = actor id, 0-based) to
  /// completion. Each actor is a fiber; all of them and the scheduler share
  /// the calling OS thread. Rethrows the first actor exception; throws
  /// DeadlockError if the simulation hangs. Every actor fiber completes (and
  /// returns its stack to the pool) before any exception propagates,
  /// including on the abort paths.
  void run(int n_actors, std::function<void(int)> body);

  /// Kernel owning the calling fiber/thread (nullptr outside a run).
  static Kernel* current();
  /// Id of the calling actor (-1 outside an actor, e.g. in event handlers).
  static int current_actor_id();

  // --- Sharded mode (see shard.hpp) ---

  /// Install a shard plan. Must be called before any event is posted and
  /// before run(); plans with shards <= 1 are a no-op (the kernel stays the
  /// classic single-threaded one, bit-identical to the golden pins).
  void configure_shards(ShardPlan plan);
  /// True when a multi-shard plan is installed.
  bool sharded() const { return engine_ != nullptr; }
  /// Number of worker shards (1 when unsharded).
  int shard_count() const;
  /// Shard owning simulated node `node` (0 when unsharded).
  int shard_of_node(int node) const;
  /// Shard the calling thread executes on (0 when unsharded or outside a
  /// run). Components keeping per-shard state index it with this.
  int current_shard() const;

  // --- Blocking primitives (callable only from actor fibers) ---

  /// Advance this actor's virtual time by `dt` (models compute / busy time).
  void sleep_for(Time dt);
  /// Park this fiber until some event or actor calls wake() on it. Callers
  /// must loop on their predicate: wakeups may be spurious.
  void block_current();
  /// Make a blocked actor runnable (no-op if it is not blocked).
  void wake(int actor);

  // --- Timed waits ---
  // One timer event is posted at the deadline. If the wait completes first
  // (disarm), that timer degenerates into the usual spurious wakeup — the
  // exact behavior, event count and schedule of the pre-token design. Only
  // a wait still armed AT its deadline takes the new path: the timer
  // re-posts a check at the same timestamp, behind any notify events already
  // queued there, so a wake arriving exactly at the deadline WINS and only
  // a genuinely unanswered deadline expires the wait.

  /// Arm a timed wait for the current actor, expiring at absolute time
  /// `deadline`. Returns a token; at most one may be armed per actor.
  std::uint64_t arm_timed_wait(Time deadline);
  /// True once the armed wait's deadline passed without a disarm.
  bool timed_wait_expired(std::uint64_t token) const;
  /// Release the token (after success OR after observing expiry).
  void disarm_timed_wait(std::uint64_t token);

  /// Per-fiber stack size for this kernel's actors (address-space
  /// reservation; pages commit on touch). Must be set before run().
  /// Default: detail::default_stack_bytes() (UNR_SIM_STACK_KIB env).
  void set_actor_stack_bytes(std::size_t bytes) {
    UNR_CHECK_MSG(actors_.empty(), "set_actor_stack_bytes() after run()");
    actor_stack_bytes_ = bytes;
  }

  /// Total events dispatched so far (diagnostics).
  std::uint64_t event_count() const { return events_dispatched_; }
  /// Virtual time at which the last run() finished.
  Time end_time() const { return end_time_; }

  /// Conservation snapshot for the pooled resources. Every event node
  /// carved from the slabs is either on the free list or pending in the
  /// timer wheel; `leaked()` > 0 means a node escaped the
  /// alloc/dispatch/free cycle. Valid from actor context and between runs
  /// (never from inside an event handler, where the node being dispatched
  /// is intentionally in neither set). Fiber stacks obey the same
  /// discipline: each is either free in the pool or owned by a live actor,
  /// so after run() returns — normally or via abort — `live_stacks()` must
  /// equal zero.
  struct PoolDebug {
    std::size_t total = 0;         ///< event nodes carved from slabs so far
    std::size_t free = 0;          ///< event nodes on the free list
    std::size_t pending = 0;       ///< event nodes queued in the timer wheel
    std::size_t stacks_total = 0;  ///< fiber stacks carved from the pool
    std::size_t stacks_free = 0;   ///< fiber stacks back in the pool
    std::size_t leaked() const { return total - free - pending; }
    /// Coroutine frames still held by not-yet-completed actors.
    std::size_t live_stacks() const { return stacks_total - stacks_free; }
  };
  PoolDebug pool_debug() const;

  /// The simulation's observability surface (metrics registry + virtual-time
  /// tracer). Configure before constructing instrumented components; the
  /// destructor flushes any configured output files.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

 private:
  friend struct detail::ShardRt;
  friend class detail::ShardEngine;

  enum class State { kReady, kRunning, kBlocked, kDone };

  struct Actor {
    int id = -1;
    State state = State::kReady;
    Kernel* kernel = nullptr;
    detail::ShardRt* home = nullptr;  ///< owning shard (nullptr unsharded)
    detail::FiberContext ctx;
    detail::FiberStack stack;
    std::uint64_t timed_token = 0;  ///< armed timed-wait token (0 = none)
    bool timed_expired = false;
  };

  static constexpr std::size_t kEventSlabNodes = 512;

  static void fiber_entry(void* arg);  ///< runs the actor body on its fiber
  void resume(Actor* a);               ///< scheduler -> fiber -> scheduler
  std::string blocked_report() const;

  // Sharded-mode internals (kernel.cpp; non-template so the post templates
  // above stay free of shard.hpp types).
  Time sharded_now() const;
  detail::EventNode* sharded_alloc_node();
  void sharded_commit_local(detail::EventNode* n);
  void sharded_commit_node(int node, detail::EventNode* n);
  void run_sharded(int n_actors);
  void shard_worker(detail::ShardRt* rt);

  detail::EventNode* alloc_node() {
    if (!free_nodes_) grow_pool();
    detail::EventNode* n = free_nodes_;
    free_nodes_ = n->next;
    --free_count_;
    return n;
  }
  void free_node(detail::EventNode* n) {
    n->vtbl = nullptr;
    n->next = free_nodes_;
    free_nodes_ = n;
    ++free_count_;
  }
  void grow_pool();

  template <class F>
  static void attach_callback(detail::EventNode* n, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= detail::kInlineCallbackBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n->storage)) D(std::forward<F>(fn));
      n->vtbl = &detail::InlineEventOps<D>::vtbl;
    } else {
      ::new (static_cast<void*>(n->storage)) D*(new D(std::forward<F>(fn)));
      n->vtbl = &detail::HeapEventOps<D>::vtbl;
    }
  }

  obs::Telemetry telemetry_;
  Time now_ = 0;
  Time end_time_ = 0;
  std::uint64_t events_dispatched_ = 0;
  detail::TimerWheel wheel_;
  std::vector<std::unique_ptr<detail::EventNode[]>> slabs_;
  detail::EventNode* free_nodes_ = nullptr;
  std::size_t free_count_ = 0;  ///< length of the free list (pool accounting)
  std::size_t actor_stack_bytes_ = 0;  ///< 0 = default_stack_bytes()
  std::unique_ptr<detail::StackPool> stacks_;
  detail::FiberContext sched_ctx_;  ///< the scheduler's own (OS-thread) context
  const std::function<void(int)>* body_ = nullptr;  ///< valid during run()
  std::vector<std::unique_ptr<Actor>> actors_;
  std::deque<Actor*> ready_;
  int live_ = 0;
  // Set once when a run aborts; atomic because in sharded mode every worker
  // observes it (fiber_entry / block_current) and each sets it before its
  // own abort sweep. Single-threaded K=1 semantics are unchanged.
  std::atomic<bool> aborting_{false};
  std::uint64_t timed_wait_seq_ = 0;
  std::exception_ptr first_error_;
  std::unique_ptr<detail::ShardEngine> engine_;  ///< nullptr unless sharded
};

/// Convenience: charge `dt` of virtual time on the current actor.
inline void busy(Time dt) { Kernel::current()->sleep_for(dt); }

}  // namespace unr::sim
