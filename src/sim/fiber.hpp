// Pooled stackful coroutines ("fibers") for the simulation kernel.
//
// Why fibers and not OS threads: the kernel runs EXACTLY ONE entity at a
// time, so a thread per simulated rank buys no parallelism — it only buys a
// mutex/condvar handoff (two futex round trips) per block/wake and an 8 MiB
// kernel-managed stack per rank, which capped Worlds at a few hundred ranks.
// A fiber is just a saved stack pointer plus a lazily-committed stack slab:
// switching is a couple dozen instructions on the same OS thread, and a
// parked rank costs only the stack pages it actually touched. That is what
// lets one World hold 100k+ ranks in one process.
//
// Why not C++20 stackless coroutines: actor bodies are ordinary blocking
// call chains (solver -> halo -> comm -> Cond::wait -> Kernel), arbitrarily
// deep. A stackless coroutine can only suspend in its own frame, so every
// function on every such chain would need to become a coroutine and every
// call a co_await — a viral rewrite of the entire runtime and all
// applications for no semantic gain. Stackful fibers keep the blocking
// programming model bit-for-bit and move only the suspension mechanism.
//
// Mechanics (x86-64): unr_fiber_switch (fiber_x86_64.S) saves the SysV
// callee-saved registers + FP control words on the current stack, stores the
// stack pointer, and restores the target's. A fresh fiber's stack is seeded
// with a frame whose return address is unr_fiber_trampoline, which forwards
// a pointer argument (pre-loaded into r13) to the entry function (r12).
// Other architectures fall back to ucontext (UNR_FIBER_UCONTEXT).
//
// Stacks come from a pool of large anonymous mmaps (MAP_NORESERVE: address
// space is reserved up front, pages are committed only when touched).
// Freed stacks are recycled in LIFO order — "pooled fibers". Each stack gets
// a PROT_NONE guard page below it while the pool is small enough for the
// kernel's VMA budget (vm.max_map_count); gigantic pools (100k+ ranks) drop
// the guards rather than the ranks. UNR_SIM_STACK_GUARD=0/1 forces either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if !defined(__x86_64__) && !defined(UNR_FIBER_UCONTEXT)
#define UNR_FIBER_UCONTEXT 1
#endif

#ifdef UNR_FIBER_UCONTEXT
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define UNR_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define UNR_FIBER_ASAN 1
#endif
#endif

namespace unr::sim::detail {

/// One fiber stack carved from the pool. `base` is the lowest usable
/// address; the stack grows downward from `base + size`.
struct FiberStack {
  unsigned char* base = nullptr;
  std::size_t size = 0;
};

/// A switchable execution context: either a fiber (owns a FiberStack) or
/// the scheduler's borrowed OS-thread stack (sp-only save slot).
struct FiberContext {
#ifdef UNR_FIBER_UCONTEXT
  ucontext_t uc;
#else
  void* sp = nullptr;
#endif
#ifdef UNR_FIBER_ASAN
  void* asan_fake_stack = nullptr;       ///< fake-stack token while suspended
  const void* asan_stack_bottom = nullptr;
  std::size_t asan_stack_size = 0;
#endif
};

/// Record the OS-thread stack bounds in `ctx` (the scheduler context) so
/// sanitizer fiber switching can re-enter it. No-op without ASan.
void bind_thread_context(FiberContext& ctx);

/// Seed a fresh fiber: the first switch_context() into `ctx` calls
/// `entry(arg)` on `stack`. `entry` must never return (it must switch away
/// with `from_dying = true` instead).
void init_fiber_context(FiberContext& ctx, FiberStack stack,
                        void (*entry)(void*), void* arg);

/// Transfer control from `from` (the running context) to `to`. Returns when
/// something switches back into `from`. `from_dying` marks `from` as
/// terminating: it will never be resumed, and its sanitizer fake stack is
/// released.
void switch_context(FiberContext& from, FiberContext& to, bool from_dying);

/// Must be called first thing inside a fiber entry function (completes the
/// sanitizer's stack switch bookkeeping). No-op without ASan.
void finish_switch_on_entry();

/// Slab-allocating, free-listed pool of fixed-size fiber stacks.
class StackPool {
 public:
  /// `stack_bytes` is rounded up to the page size.
  explicit StackPool(std::size_t stack_bytes);
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  FiberStack acquire();
  void release(FiberStack s);

  std::size_t stack_bytes() const { return stack_bytes_; }
  std::size_t total() const { return total_; }     ///< stacks carved so far
  std::size_t free_count() const { return free_.size(); }

  /// Stacks checked out and not yet released (live coroutine frames).
  std::size_t live() const { return total_ - free_.size(); }

 private:
  struct Slab {
    void* map = nullptr;
    std::size_t bytes = 0;
  };

  void grow();

  std::size_t stack_bytes_ = 0;
  std::size_t page_ = 4096;
  int guard_mode_ = -1;  ///< -1 auto, 0 off, 1 on (from UNR_SIM_STACK_GUARD)
  std::size_t guarded_ = 0;
  std::vector<Slab> slabs_;
  // The free list lives OUTSIDE the stacks (not intrusive): writing even one
  // word into each carved stack would commit its bottom page, defeating the
  // lazy-commit design (100k stacks x 4 KiB = 400 MiB of pure bookkeeping).
  std::vector<unsigned char*> free_;
  std::size_t total_ = 0;
};

/// Default per-fiber stack size: UNR_SIM_STACK_KIB (min 16) if set, else
/// 256 KiB — 1 MiB under ASan, whose redzones inflate every frame. Address
/// space only: untouched pages are never committed.
std::size_t default_stack_bytes();

}  // namespace unr::sim::detail
