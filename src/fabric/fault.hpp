// Fault injection for the simulated fabric.
//
// Real interconnects hide most of their failure modes from benchmarks: link
// CRC errors become silent retransmissions, a flaky NIC becomes a slow NIC,
// and a congested completion queue becomes a retry storm. A DES earns its
// keep by making those events explicit, schedulable and — given a seed —
// exactly reproducible. The injector can:
//   * drop a one-way delivery with a configured probability (the fabric
//     retransmits it, like a reliable link layer),
//   * hold a delivery up by a uniform extra delay,
//   * fail a NIC at a virtual timestamp (traffic fails over to the node's
//     surviving NICs),
//   * put artificial pressure on a remote completion queue for a while,
//     forcing the NACK/backoff path without corrupting queue contents.
//
// Determinism contract: the injector owns a private RNG forked from the
// fabric seed, and draws from it ONLY when the corresponding fault class is
// enabled. With a default FaultConfig every stream in the simulation is
// bit-identical to a build without the injector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace unr::fabric {

struct FaultConfig {
  /// Probability that a one-way delivery (PUT data, active message) is lost
  /// on the wire. Lost deliveries are retransmitted after the fabric's
  /// detection timeout, up to the retry-policy attempt cap.
  double drop_rate = 0.0;
  /// Probability that a delivery is held up by an extra uniform delay.
  double delay_rate = 0.0;
  /// Maximum extra delay for a held-up delivery (uniform in [0, delay_max]).
  Time delay_max = 20 * kUs;

  /// Fail one NIC at a virtual timestamp. A failed NIC never recovers;
  /// traffic posted to it (and traffic it had not yet injected) fails over
  /// to the node's surviving NICs.
  struct NicFault {
    int node = 0;
    int index = 0;
    Time at = 0;

    bool operator==(const NicFault&) const = default;
  };
  std::vector<NicFault> nic_faults;

  /// Occupy `entries` slots of a remote completion queue for `duration`
  /// (0 = forever). Deliveries that need a CQE slot are NACKed and enter the
  /// backoff loop, reproducing an overflow burst without fabricating CQEs.
  struct CqBurst {
    int node = 0;
    int index = 0;
    Time at = 0;
    std::size_t entries = 0;
    Time duration = 0;

    bool operator==(const CqBurst&) const = default;
  };
  std::vector<CqBurst> cq_bursts;

  bool any_enabled() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || !nic_faults.empty() ||
           !cq_bursts.empty();
  }

  bool operator==(const FaultConfig&) const = default;
};

class FaultInjector {
 public:
  FaultInjector(FaultConfig cfg, std::uint64_t seed);

  const FaultConfig& config() const { return cfg_; }

  /// Should this wire traversal be dropped? Draws from the private RNG only
  /// when drop_rate > 0.
  bool drop_delivery();

  /// Extra delivery delay for this traversal (0 when delay injection is off
  /// or the draw misses). Draws only when delay_rate > 0.
  Time extra_delay();

  std::uint64_t drops_injected() const { return drops_; }
  std::uint64_t delays_injected() const { return delays_; }

 private:
  FaultConfig cfg_;
  Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t delays_ = 0;
};

}  // namespace unr::fabric
