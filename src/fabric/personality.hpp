// Interface personalities: the custom-bit capabilities of each low-level
// network programming interface surveyed in Table II of the paper.
#pragma once

#include <string>
#include <vector>

#include "common/profile.hpp"

namespace unr::fabric {

/// Capability sheet of one Notifiable-RMA interface family.
struct Personality {
  unr::Interface iface;
  std::string hpc_interconnect;       ///< e.g. "TH Express network"
  std::string representative_systems; ///< e.g. "Tianhe-2A(1), Tianhe-Xingyi"

  // Custom-bit widths, in bits, as in Table II. -1 encodes the Portals
  // "Hash" entry: no direct local bits, but the (memory region, offset) pair
  // can be hashed to recover (p, a) — usable as if 64 bits were available.
  int put_local_bits = 0;
  int put_remote_bits = 0;
  int get_local_bits = 0;
  int get_remote_bits = 0;

  bool shared_put_bits = false;  ///< PAMI: one 64-bit pool shared local/remote

  /// Effective width usable for UNR bookkeeping at each completion point
  /// (resolves the Portals hash case to 64).
  int effective_put_local() const { return put_local_bits < 0 ? 64 : put_local_bits; }
  int effective_put_remote() const { return put_remote_bits < 0 ? 64 : put_remote_bits; }
  int effective_get_local() const { return get_local_bits < 0 ? 64 : get_local_bits; }
  int effective_get_remote() const { return get_remote_bits < 0 ? 64 : get_remote_bits; }
};

/// The personality of one interface family (Table II row).
const Personality& personality(unr::Interface iface);

/// All of Table II, in the paper's row order.
const std::vector<Personality>& all_personalities();

}  // namespace unr::fabric
