// Completion events and completion queues.
//
// A simulated NIC reports finished operations by pushing completion queue
// entries (CQEs). The remote CQ is bounded: if nobody drains it (the job of
// UNR's polling engine at support levels 0-3), deliveries are NACKed and
// retried with capped exponential backoff, which is the performance cliff
// the paper's level-4 hardware proposal removes. The retry policy — base
// delay, growth, cap, jitter and the fail-loud attempt limit — lives in
// Fabric::Config::RetryPolicy (fabric.hpp), so tests can lower the cap
// instead of spinning through the production default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/check.hpp"
#include "common/units.hpp"
#include "fabric/custom_bits.hpp"

namespace unr::fabric {

enum class CqeKind : std::uint8_t {
  kPutDelivered,   ///< remote side of a PUT
  kPutComplete,    ///< local (sender) side of a PUT
  kGetDelivered,   ///< remote (data owner) side of a GET
  kGetComplete,    ///< local (reader) side of a GET
};

struct Cqe {
  CqeKind kind;
  int peer_rank = -1;       ///< the other side of the operation
  std::size_t bytes = 0;
  CustomBits imm;           ///< already truncated to the interface width
  Time timestamp = 0;       ///< virtual time the event was generated
};

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity) : capacity_(capacity) {}

  bool full() const { return q_.size() + pressure_ >= capacity_; }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Returns false (and counts an overflow) when the queue is full.
  bool push(const Cqe& e) {
    if (full()) {
      ++overflows_;
      return false;
    }
    q_.push_back(e);
    ++pushed_;
    return true;
  }

  Cqe pop() {
    UNR_CHECK_MSG(!q_.empty(), "pop() on an empty completion queue");
    Cqe e = q_.front();
    q_.pop_front();
    return e;
  }

  /// Fault injection: occupy `n` slots without inserting CQEs. Pushes NACK
  /// while the pressure holds; pops and the drain loop are unaffected.
  void add_pressure(std::size_t n) { pressure_ += n; }
  void release_pressure(std::size_t n) { pressure_ -= n > pressure_ ? pressure_ : n; }
  std::size_t pressure() const { return pressure_; }

  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t overflows() const { return overflows_; }

 private:
  std::size_t capacity_;
  std::deque<Cqe> q_;
  std::size_t pressure_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace unr::fabric
