#include "fabric/custom_bits.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace unr::fabric {

CustomBits CustomBits::truncated(int width) const {
  UNR_CHECK(width >= 0 && width <= 128);
  CustomBits r = *this;
  if (width == 0) return {0, 0};
  if (width < 64) {
    r.lo &= (1ull << width) - 1;
    r.hi = 0;
  } else if (width < 128) {
    r.hi &= (width == 64) ? 0ull : ((1ull << (width - 64)) - 1);
  }
  return r;
}

bool CustomBits::fits(int width) const { return truncated(width) == *this; }

std::string CustomBits::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "0x%016llx%016llx",
                static_cast<unsigned long long>(hi), static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace unr::fabric
