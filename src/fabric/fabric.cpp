#include "fabric/fabric.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace unr::fabric {

namespace {
/// Intra-node traffic does not cross the switch fabric.
constexpr double kIntraLatencyFactor = 0.25;

/// Recycled AM payload buffers kept beyond this are returned to the heap;
/// steady-state traffic needs roughly (in-flight AMs) buffers, far below it.
constexpr std::size_t kAmArenaMax = 64;

/// Ordered-stream sequence numbers are assigned once, at first launch;
/// retransmissions keep theirs. The sentinel marks a not-yet-sequenced
/// (or unordered) flight.
constexpr std::uint64_t kNoOrderSeq = ~std::uint64_t{0};
}  // namespace

/// One PUT in transit: the caller's arguments, the payload snapshot, and the
/// attempt bookkeeping the resilience layer needs to retransmit or fail over.
/// Pooled: acquired in put(), released by the terminal handler of whichever
/// event chain finishes the flight.
struct Fabric::Flight {
  PutArgs args;
  std::vector<std::byte> data;
  std::uint64_t id = 0;    ///< stable per-flight identity (keys backoff jitter)
  Time tx_done = 0;        ///< when the source NIC finished injecting
  int wire_attempts = 0;   ///< wire traversals (first send + retransmissions)
  int cq_attempts = 0;     ///< consecutive NACKs at the destination CQ
  bool redirect_counted = false;  ///< dst/local CQE redirect already counted
  std::uint64_t order_seq = kNoOrderSeq;  ///< position in the (src,dst) ordered stream
};

/// One active message in transit (payload + retransmission count). Pooled
/// like Flight; its payload buffer is recycled into the AM arena.
struct Fabric::AmFlight {
  int src_rank = -1;
  int dst_rank = -1;
  int channel = 0;
  std::vector<std::byte> payload;
  int nic_index = 0;
  bool ordered = false;
  Time tx_done = 0;  ///< when the source NIC finished injecting
  int attempts = 1;
  std::uint64_t id = 0;  ///< trace-span identity (separate from flight ids)
  std::uint64_t order_seq = kNoOrderSeq;  ///< position in the (src,dst) ordered stream
};

Fabric::Fabric(sim::Kernel& kernel, Config cfg)
    : kernel_(kernel),
      cfg_(std::move(cfg)),
      iface_(personality(cfg_.profile.iface)),
      machine_(cfg_.nodes, cfg_.profile.cores_per_node),
      memory_(cfg_.max_regions_per_rank, cfg_.nodes * cfg_.ranks_per_node) {
  UNR_CHECK(cfg_.nodes >= 1 && cfg_.ranks_per_node >= 1);
  UNR_CHECK(cfg_.profile.nics_per_node >= 1);
  UNR_CHECK(cfg_.retry.max_attempts >= 1 && cfg_.retry.multiplier >= 1.0);
  // One mutable-state context per kernel shard. Shard 0 is seeded exactly
  // like the pre-shard single-context fabric; higher shards fork
  // decorrelated RNG/fault streams from the same configuration seed.
  const int nshards = kernel_.shard_count();
  shard_ctx_.reserve(static_cast<std::size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    const std::uint64_t fork =
        s == 0 ? cfg_.seed
               : mix64(cfg_.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(s));
    shard_ctx_.push_back(std::make_unique<ShardCtx>(fork, cfg_.faults, fork));
  }
  nics_.reserve(static_cast<std::size_t>(cfg_.nodes * cfg_.profile.nics_per_node));
  for (int n = 0; n < cfg_.nodes; ++n) {
    for (int i = 0; i < cfg_.profile.nics_per_node; ++i) {
      nics_.emplace_back(n, i, cfg_.profile.nic_gbps, cfg_.profile.nic_overhead,
                         cfg_.profile.cq_depth);
    }
  }
  am_handlers_.resize(static_cast<std::size_t>(nranks()));
  init_telemetry();

  // Schedule the configured fault timeline. The events sit in the kernel's
  // queue until the run reaches their virtual timestamps; each is routed to
  // the shard owning the target NIC's node (a no-op routing when unsharded).
  for (const auto& nf : cfg_.faults.nic_faults) {
    UNR_CHECK_MSG(nf.node >= 0 && nf.node < cfg_.nodes && nf.index >= 0 &&
                      nf.index < nics_per_node(),
                  "NIC fault targets nonexistent NIC (" << nf.node << ", " << nf.index
                                                        << ")");
    // The immutable schedule backs cross-shard loss checks (nic_lost_in_tx).
    nic(nf.node, nf.index).schedule_fail(nf.at);
    kernel_.post_at_node(nf.node, nf.at, [this, nf] {
      Nic& n = nic(nf.node, nf.index);
      if (n.failed()) return;
      n.fail(kernel_.now());
      m_.nic_failures.inc();
      if (tr_.on)
        kernel_.telemetry().tracer().instant(nf.node, obs::kNicTidBase + nf.index,
                                             tr_.cat_fault, tr_.nic_failure);
    });
  }
  for (const auto& b : cfg_.faults.cq_bursts) {
    UNR_CHECK_MSG(b.node >= 0 && b.node < cfg_.nodes && b.index >= 0 &&
                      b.index < nics_per_node(),
                  "CQ burst targets nonexistent NIC (" << b.node << ", " << b.index
                                                       << ")");
    kernel_.post_at_node(b.node, b.at, [this, b] {
      if (tr_.on)
        kernel_.telemetry().tracer().instant(b.node, obs::kNicTidBase + b.index,
                                             tr_.cat_fault, tr_.cq_burst);
      nic(b.node, b.index).remote_cq().add_pressure(b.entries);
      if (b.duration > 0)
        kernel_.post_in(b.duration, [this, b] {
          nic(b.node, b.index).remote_cq().release_pressure(b.entries);
        });
    });
  }
}

Fabric::~Fabric() = default;

Fabric::ShardCtx::ShardCtx(std::uint64_t rng_seed, const FaultConfig& faults,
                           std::uint64_t fault_seed)
    : rng(rng_seed), injector(faults, fault_seed) {}

Fabric::ShardCtx::~ShardCtx() = default;

void Fabric::init_telemetry() {
  obs::Registry& reg = kernel_.telemetry().registry();
  m_.puts = reg.counter("fabric.puts");
  m_.gets = reg.counter("fabric.gets");
  m_.ams = reg.counter("fabric.ams");
  m_.put_bytes = reg.counter("fabric.put_bytes");
  m_.get_bytes = reg.counter("fabric.get_bytes");
  m_.cq_retries = reg.counter("fabric.cq_retries");
  m_.backoff_ns = reg.counter("fabric.resilience.backoff_ns");
  m_.injected_drops = reg.counter("fabric.resilience.injected_drops");
  m_.injected_delays = reg.counter("fabric.resilience.injected_delays");
  m_.retransmits = reg.counter("fabric.resilience.retransmits");
  m_.nic_failures = reg.counter("fabric.resilience.nic_failures");
  m_.lost_to_nic = reg.counter("fabric.resilience.lost_to_nic");
  m_.failovers = reg.counter("fabric.resilience.failovers");
  const int npn = nics_per_node();
  m_.nic_cqes.reserve(static_cast<std::size_t>(cfg_.nodes * npn));
  for (int n = 0; n < cfg_.nodes; ++n)
    for (int i = 0; i < npn; ++i)
      m_.nic_cqes.push_back(reg.counter(
          "fabric.nic.remote_cqes",
          {{"node", std::to_string(n)}, {"nic", std::to_string(i)}}));
  m_.rank_puts.reserve(static_cast<std::size_t>(nranks()));
  for (int r = 0; r < nranks(); ++r)
    m_.rank_puts.push_back(
        reg.counter("fabric.rank.puts", {{"rank", std::to_string(r)}}));

  obs::Tracer& trc = kernel_.telemetry().tracer();
  tr_.on = trc.enabled();
  tr_.cat_flight = trc.intern("flight");
  tr_.cat_am = trc.intern("am");
  tr_.cat_get = trc.intern("get");
  tr_.cat_fault = trc.intern("fault");
  tr_.put = trc.intern("put");
  tr_.get = trc.intern("get");
  tr_.am = trc.intern("am");
  tr_.nack = trc.intern("cq_nack");
  tr_.retransmit = trc.intern("retransmit");
  tr_.lost = trc.intern("lost_to_nic");
  tr_.failover = trc.intern("failover");
  tr_.nic_failure = trc.intern("nic_failure");
  tr_.cq_burst = trc.intern("cq_burst");
  tr_.k_src = trc.intern("src");
  tr_.k_dst = trc.intern("dst");
  tr_.k_size = trc.intern("size");
  tr_.k_nic = trc.intern("nic");
  tr_.k_attempt = trc.intern("attempt");
  tr_.k_delay_ns = trc.intern("delay_ns");
  if (tr_.on) {
    for (int n = 0; n < cfg_.nodes; ++n) {
      trc.set_process_name(n, "node " + std::to_string(n));
      for (int i = 0; i < npn; ++i)
        trc.set_thread_name(n, obs::kNicTidBase + i, "nic " + std::to_string(i));
    }
  }
}

Fabric::Stats Fabric::stats() const {
  Stats s;
  s.puts = m_.puts.value();
  s.gets = m_.gets.value();
  s.ams = m_.ams.value();
  s.put_bytes = m_.put_bytes.value();
  s.get_bytes = m_.get_bytes.value();
  s.cq_retries = m_.cq_retries.value();
  s.resilience.backoff_ns = m_.backoff_ns.value();
  s.resilience.injected_drops = m_.injected_drops.value();
  s.resilience.injected_delays = m_.injected_delays.value();
  s.resilience.retransmits = m_.retransmits.value();
  s.resilience.nic_failures = m_.nic_failures.value();
  s.resilience.lost_to_nic = m_.lost_to_nic.value();
  s.resilience.failovers = m_.failovers.value();
  return s;
}

Nic& Fabric::nic(int node, int index) {
  UNR_CHECK(node >= 0 && node < cfg_.nodes);
  UNR_CHECK(index >= 0 && index < nics_per_node());
  return nic_at(node, index);
}

const Nic& Fabric::nic(int node, int index) const {
  UNR_CHECK(node >= 0 && node < cfg_.nodes);
  UNR_CHECK(index >= 0 && index < nics_per_node());
  return nic_at(node, index);
}

int Fabric::pick_healthy_nic(int node, int preferred) const {
  const int n = nics_per_node();
  for (int k = 0; k < n; ++k) {
    const int idx = (preferred + k) % n;
    if (!nic(node, idx).failed()) return idx;
  }
  UNR_CHECK_MSG(false, "every NIC on node " << node << " has failed — unreachable");
  __builtin_unreachable();
}

std::vector<int> Fabric::healthy_nics(int node) const {
  std::vector<int> out;
  for (int i = 0; i < nics_per_node(); ++i)
    if (!nic(node, i).failed()) out.push_back(i);
  return out;
}

int Fabric::healthy_nic_count(int node) const {
  int n = 0;
  for (int i = 0; i < nics_per_node(); ++i)
    if (!nic(node, i).failed()) ++n;
  return n;
}

// --- Flight pools -----------------------------------------------------------

// Pools are per shard; a flight acquired on one shard may be released into
// another's free list when its terminal handler runs there (AM flights
// complete at the receiver). Objects migrate between free lists exactly like
// the kernel's event nodes; pool_debug() conserves over the global sums.

Fabric::Flight* Fabric::acquire_flight() {
  ShardCtx& c = sctx();
  if (!c.flight_free.empty()) {
    Flight* f = c.flight_free.back();
    c.flight_free.pop_back();
    return f;
  }
  c.flight_pool.push_back(std::make_unique<Flight>());
  return c.flight_pool.back().get();
}

void Fabric::release_flight(Flight* f) {
  f->args = PutArgs{};  // drop the callbacks (they may pin caller state)
  f->data.clear();      // keep capacity for the next payload snapshot
  f->id = 0;
  f->tx_done = 0;
  f->wire_attempts = 0;
  f->cq_attempts = 0;
  f->redirect_counted = false;
  f->order_seq = kNoOrderSeq;
  sctx().flight_free.push_back(f);
}

Fabric::AmFlight* Fabric::acquire_am_flight() {
  ShardCtx& c = sctx();
  if (!c.am_free.empty()) {
    AmFlight* m = c.am_free.back();
    c.am_free.pop_back();
    return m;
  }
  c.am_pool.push_back(std::make_unique<AmFlight>());
  return c.am_pool.back().get();
}

void Fabric::release_am_flight(AmFlight* m) {
  m->payload.clear();
  m->tx_done = 0;
  m->attempts = 1;
  m->id = 0;
  m->order_seq = kNoOrderSeq;
  sctx().am_free.push_back(m);
}

std::vector<std::byte> Fabric::acquire_am_buffer(std::size_t size) {
  ShardCtx& c = sctx();
  std::vector<std::byte> buf;
  if (!c.am_arena.empty()) {
    buf = std::move(c.am_arena.back());
    c.am_arena.pop_back();
  }
  buf.resize(size);
  return buf;
}

void Fabric::recycle_am_buffer(std::vector<std::byte>&& buf) {
  ShardCtx& c = sctx();
  if (buf.capacity() == 0 || c.am_arena.size() >= kAmArenaMax) return;
  buf.clear();
  c.am_arena.push_back(std::move(buf));
}

// ----------------------------------------------------------------------------

Time Fabric::one_way_latency(int src_node, int dst_node) const {
  Time lat = cfg_.profile.wire_latency;
  if (src_node == dst_node)
    lat = static_cast<Time>(static_cast<double>(lat) * kIntraLatencyFactor);
  return lat;
}

Time Fabric::wire_arrival(int src_node, int dst_node, Time tx_done, bool ordered,
                          int src_rank, int dst_rank, Time extra) {
  // `extra` (injected delay, folded-in retransmission cost) is added BEFORE
  // the FIFO slot is reserved: an ordered delivery that is held up pushes
  // the whole (src,dst) channel back with it, so a companion launched later
  // can never overtake it.
  Time arrival = tx_done + one_way_latency(src_node, dst_node) + extra;
  if (!ordered && !cfg_.deterministic_routing && cfg_.profile.jitter > 0)
    arrival += static_cast<Time>(sctx().rng.below(cfg_.profile.jitter + 1));
  if (ordered) {
    Time& tail = sctx().fifo_tail.get_or_insert(pack_pair(src_rank, dst_rank));
    if (arrival <= tail) arrival = tail + 1;
    tail = arrival;
  }
  return arrival;
}

Time Fabric::nack_backoff_delay(int attempt, std::uint64_t stream) const {
  const Time base = std::max<Time>(cfg_.profile.cq_retry_delay, 1);
  const Time cap = cfg_.retry.max_delay > 0
                       ? cfg_.retry.max_delay
                       : 32 * base;
  double d = static_cast<double>(base);
  const int growth_steps = std::min(attempt - 1, 64);
  for (int i = 0; i < growth_steps && d < static_cast<double>(cap); ++i)
    d *= cfg_.retry.multiplier;
  Time delay = static_cast<Time>(std::min(d, static_cast<double>(cap)));
  // The first retry keeps the exact base delay (bit-compatible with the
  // pre-backoff fabric for single NACKs); later retries add deterministic
  // jitter so that simultaneously-NACKed senders fan out instead of
  // hammering the CQ in lockstep. The jitter is a pure hash of
  // (seed, stream, attempt) — distinct flights retrying the same attempt
  // number desynchronize, and previewing delays never shifts the sequence
  // the simulation itself sees.
  if (attempt > 1 && cfg_.retry.jitter_frac > 0.0) {
    const Time window =
        static_cast<Time>(static_cast<double>(delay) * cfg_.retry.jitter_frac);
    if (window > 0) {
      const std::uint64_t h =
          mix64(cfg_.seed ^ mix64(stream + 1) ^
                (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt)));
      delay += static_cast<Time>(h % (static_cast<std::uint64_t>(window) + 1));
    }
  }
  return delay;
}

void Fabric::put(PutArgs args) {
  UNR_CHECK(args.src_rank >= 0 && args.src_rank < nranks());
  UNR_CHECK(args.dst.valid() && args.dst.rank < nranks());
  UNR_CHECK(args.src != nullptr || args.size == 0);
  // Resolve the destination now so that addressing errors surface at the
  // call site, not inside an event handler later. Another shard's registry
  // may be mid-registration, so cross-shard destinations skip the early
  // check — deliver_put performs the same resolve on the owning shard.
  if (shard_local(args.dst.rank)) (void)memory_.resolve(args.dst, args.size);
  if (args.nic_index >= 0) UNR_CHECK(args.nic_index < nics_per_node());

  args.remote_imm = args.remote_imm.truncated(iface_.effective_put_remote());
  args.local_imm = args.local_imm.truncated(iface_.effective_put_local());

  m_.puts.inc();
  m_.put_bytes.inc(args.size);
  m_.rank_puts[static_cast<std::size_t>(args.src_rank)].inc();

  Flight* f = acquire_flight();
  f->id = shard_id_tag() | ++sctx().flight_seq;
  if (tr_.on)
    kernel_.telemetry().tracer().async_begin(
        node_of(args.src_rank), args.src_rank, tr_.cat_flight, tr_.put, f->id,
        {{tr_.k_dst, args.dst.rank}, {tr_.k_size, static_cast<std::int64_t>(args.size)}});
  // Snapshot the payload at post time: RMA semantics require the source
  // buffer to stay unchanged until local completion, and the snapshot makes
  // the simulator robust even if callers violate that.
  f->data.resize(args.size);
  if (args.size > 0) std::memcpy(f->data.data(), args.src, args.size);
  f->args = std::move(args);
  launch_put(f);
}

void Fabric::launch_put(Flight* f) {
  PutArgs& a = f->args;
  const int src_node = node_of(a.src_rank);
  const int dst_node = node_of(a.dst.rank);
  if (a.ordered && f->order_seq == kNoOrderSeq) {
    // An ordered flight must keep its stream slot across recoveries: an
    // on_lost handler would abandon the sequence (the re-issue is a brand-new
    // flight) and wedge the reorder buffer behind the hole.
    UNR_CHECK_MSG(!a.on_lost, "ordered flights cannot use on_lost recovery");
    f->order_seq =
        sctx().order_next_send.get_or_insert(pack_pair(a.src_rank, a.dst.rank))++;
  }
  int nic_idx = a.nic_index < 0 ? default_nic(a.src_rank) : a.nic_index;
  if (nic(src_node, nic_idx).failed()) {
    nic_idx = pick_healthy_nic(src_node, nic_idx);
    m_.failovers.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(src_node, a.src_rank, tr_.cat_flight,
                                           tr_.failover, {{tr_.k_nic, nic_idx}});
  }
  a.nic_index = nic_idx;

  f->wire_attempts++;
  UNR_CHECK_MSG(f->wire_attempts <= cfg_.retry.max_attempts,
                "delivery to rank " << a.dst.rank << " exceeded "
                                    << cfg_.retry.max_attempts << " wire attempts");

  Nic& snic = nic(src_node, nic_idx);
  Time tx_done = snic.reserve_tx(kernel_.now(), a.size);
  const Time held = sctx().injector.extra_delay();
  if (held > 0) m_.injected_delays.inc();
  if (a.ordered) {
    // Ordered traffic rides an in-order reliable link: a dropped traversal
    // stalls the channel until the link layer retransmits it — nothing
    // queued behind it (a companion notification in particular) may
    // overtake. Evaluate the drops up front and fold each retransmission's
    // cost into the arrival that reserves the FIFO slot.
    const Time lat = one_way_latency(src_node, dst_node);
    while (sctx().injector.drop_delivery()) {
      f->wire_attempts++;
      UNR_CHECK_MSG(f->wire_attempts <= cfg_.retry.max_attempts,
                    "delivery to rank " << a.dst.rank << " exceeded "
                                        << cfg_.retry.max_attempts << " wire attempts");
      m_.injected_drops.inc();
      m_.retransmits.inc();
      if (tr_.on)
        kernel_.telemetry().tracer().instant(src_node, a.src_rank, tr_.cat_flight,
                                             tr_.retransmit,
                                             {{tr_.k_attempt, f->wire_attempts}});
      // The loss would have landed at tx_done + lat; the sender detects it
      // fault_detect_delay later and re-serializes the payload.
      tx_done = snic.reserve_tx(tx_done + lat + cfg_.fault_detect_delay, a.size);
    }
  }
  f->tx_done = tx_done;
  const Time arrival = wire_arrival(src_node, dst_node, tx_done, a.ordered, a.src_rank,
                                    a.dst.rank, held);
  // Arrival runs on the destination node's shard (where the payload lands
  // and the remote CQE fires); the wire latency covers the lookahead.
  kernel_.post_at_node(dst_node, arrival, [this, f, arrival] { arrive_put(f, arrival); });
}

void Fabric::arrive_put(Flight* f, Time arrival) {
  // Wire-level faults are evaluated once per traversal, at the instant the
  // message would have landed. This runs on the destination's shard, so the
  // source NIC's health is read through the immutable fault schedule.
  const Nic& snic = nic(node_of(f->args.src_rank), f->args.nic_index);
  const int src_node = node_of(f->args.src_rank);
  if (nic_lost_in_tx(snic, arrival, f->tx_done)) {
    m_.lost_to_nic.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(node_of(f->args.src_rank), f->args.src_rank,
                                           tr_.cat_flight, tr_.lost,
                                           {{tr_.k_nic, f->args.nic_index}});
    // Recovery re-launches from the source: route it back to the source's
    // shard (fault_detect_delay bounds the lookahead when faults are armed).
    kernel_.post_at_node(src_node, kernel_.now() + cfg_.fault_detect_delay,
                         [this, f] { recover_lost_put(f); });
    return;
  }
  // Ordered flights evaluated their drops at launch (see launch_put) so the
  // retransmissions could keep their FIFO slot.
  if (!f->args.ordered && sctx().injector.drop_delivery()) {
    m_.injected_drops.inc();
    m_.retransmits.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(node_of(f->args.src_rank), f->args.src_rank,
                                           tr_.cat_flight, tr_.retransmit,
                                           {{tr_.k_attempt, f->wire_attempts}});
    kernel_.post_at_node(src_node, kernel_.now() + cfg_.fault_detect_delay,
                         [this, f] { launch_put(f); });
    return;
  }
  if (f->args.ordered)
    ordered_ready_put(f, arrival);
  else
    deliver_put(f, arrival);
}

void Fabric::recover_lost_put(Flight* f) {
  m_.failovers.inc();
  if (tr_.on)
    kernel_.telemetry().tracer().instant(node_of(f->args.src_rank), f->args.src_rank,
                                         tr_.cat_flight, tr_.failover,
                                         {{tr_.k_nic, f->args.nic_index}});
  if (f->args.on_lost) {
    // The upper layer (UNR's splitter) re-issues the sub-message on a
    // surviving NIC, re-encoding its notification — this flight's span ends
    // here; the re-issue begins a new one. Detach the callback before
    // releasing the flight: recovery may immediately acquire it.
    if (tr_.on)
      kernel_.telemetry().tracer().async_end(node_of(f->args.src_rank),
                                             f->args.src_rank, tr_.cat_flight,
                                             tr_.put, f->id);
    auto on_lost = std::move(f->args.on_lost);
    release_flight(f);
    on_lost();
    return;
  }
  // No handler: the fabric retransmits itself; launch_put routes the flight
  // off the failed NIC.
  m_.retransmits.inc();
  launch_put(f);
}

void Fabric::deliver_put(Flight* f, Time arrival) {
  PutArgs& a = f->args;
  const int dst_node = node_of(a.dst.rank);
  // A CQE cannot land on a dead NIC; redirect it to a surviving one on the
  // destination node (adaptive routing re-steers the delivery).
  int dst_idx = a.nic_index;
  if (nic(dst_node, dst_idx).failed()) {
    dst_idx = pick_healthy_nic(dst_node, dst_idx);
    if (!f->redirect_counted) {
      f->redirect_counted = true;
      m_.failovers.inc();
    }
  }
  Nic& dnic = nic(dst_node, dst_idx);

  if (a.want_remote_cqe && dnic.remote_cq().full()) {
    f->cq_attempts++;
    UNR_CHECK_MSG(f->cq_attempts <= cfg_.retry.max_attempts,
                  "remote CQ on node " << dst_node << " never drained ("
                                       << f->cq_attempts << " NACKs)");
    (void)dnic.remote_cq().push({});  // records the overflow in CQ stats
    m_.cq_retries.inc();
    const Time delay = nack_backoff_delay(f->cq_attempts, f->id);
    m_.backoff_ns.inc(static_cast<std::uint64_t>(delay));
    if (tr_.on)
      kernel_.telemetry().tracer().instant(
          dst_node, obs::kNicTidBase + dst_idx, tr_.cat_flight, tr_.nack,
          {{tr_.k_src, a.src_rank},
           {tr_.k_attempt, f->cq_attempts},
           {tr_.k_delay_ns, static_cast<std::int64_t>(delay)}});
    const Time retry = kernel_.now() + delay;
    kernel_.post_at(retry, [this, f, retry] { deliver_put(f, retry); });
    return;
  }

  if (a.size > 0) {
    std::byte* dst = memory_.resolve(a.dst, a.size);
    std::memcpy(dst, f->data.data(), a.size);
  }

  // Level-4 hardware offload: atomic add applied by the NIC itself.
  if (a.hw_add_target != nullptr) {
    *a.hw_add_target += a.hw_addend;
    if (a.hw_notify) a.hw_notify();
  }

  if (a.want_remote_cqe) {
    // Width invariant: the immediate was truncated to the interface's
    // remote-PUT width at post time; no recovery/failover path may widen it.
    UNR_CHECK_MSG(a.remote_imm.fits(iface_.effective_put_remote()),
                  "remote CQE immediate exceeds the interface's "
                      << iface_.effective_put_remote() << "-bit width: "
                      << a.remote_imm.to_string());
    const bool ok = dnic.remote_cq().push(
        {CqeKind::kPutDelivered, a.src_rank, a.size, a.remote_imm, kernel_.now()});
    UNR_CHECK(ok);
    m_.nic_cqes[static_cast<std::size_t>(dst_node * nics_per_node() + dst_idx)].inc();
    dnic.fire_remote_cqe_hook();
  }
  if (a.on_delivered) a.on_delivered();

  // Local completion: the sender learns of completion one ACK later; the
  // ACK handler is the flight's terminal owner and returns it to the pool.
  // It runs on the source's shard (local CQ + caller completion hooks); the
  // ACK's wire crossing covers the lookahead.
  const int src_node = node_of(a.src_rank);
  const Time ack_lat = one_way_latency(src_node, dst_node);
  kernel_.post_at_node(src_node, arrival + ack_lat, [this, f, src_node] {
    PutArgs& args = f->args;
    int lidx = args.nic_index;
    if (nic(src_node, lidx).failed()) {
      lidx = pick_healthy_nic(src_node, lidx);
      if (!f->redirect_counted) {
        f->redirect_counted = true;
        m_.failovers.inc();
      }
    }
    Nic& snic = nic(src_node, lidx);
    if (args.want_local_cqe) {
      UNR_CHECK_MSG(args.local_imm.fits(iface_.effective_put_local()),
                    "local CQE immediate exceeds the interface's "
                        << iface_.effective_put_local() << "-bit width: "
                        << args.local_imm.to_string());
      // The local CQ is drained by the owner's progress engine; treat
      // overflow as fatal (real stacks size the send CQ to the SQ depth).
      const bool ok = snic.local_cq().push(
          {CqeKind::kPutComplete, args.dst.rank, args.size, args.local_imm, kernel_.now()});
      UNR_CHECK_MSG(ok, "local CQ overflow on node " << src_node);
      snic.fire_local_cqe_hook();
    }
    if (args.on_local_complete) args.on_local_complete();
    if (tr_.on)
      kernel_.telemetry().tracer().async_end(src_node, args.src_rank,
                                             tr_.cat_flight, tr_.put, f->id);
    release_flight(f);
  });
}

void Fabric::get(GetArgs args) {
  UNR_CHECK(args.src_rank >= 0 && args.src_rank < nranks());
  UNR_CHECK(args.src.valid() && args.src.rank < nranks());
  UNR_CHECK(args.dst != nullptr || args.size == 0);
  // Early validation only against shard-local registries (see put()); the
  // owner-side response event performs the same resolve otherwise.
  if (shard_local(args.src.rank)) (void)memory_.resolve(args.src, args.size);

  const int reader_node = node_of(args.src_rank);
  const int owner_node = node_of(args.src.rank);
  int nic_idx = args.nic_index < 0 ? default_nic(args.src_rank) : args.nic_index;
  UNR_CHECK(nic_idx < nics_per_node());
  if (nic(reader_node, nic_idx).failed()) {
    nic_idx = pick_healthy_nic(reader_node, nic_idx);
    m_.failovers.inc();
  }
  args.nic_index = nic_idx;

  args.remote_imm = args.remote_imm.truncated(iface_.effective_get_remote());
  args.local_imm = args.local_imm.truncated(iface_.effective_get_local());

  m_.gets.inc();
  m_.get_bytes.inc(args.size);
  const std::uint64_t get_id = shard_id_tag() | ++sctx().get_seq;
  if (tr_.on)
    kernel_.telemetry().tracer().async_begin(
        reader_node, args.src_rank, tr_.cat_get, tr_.get, get_id,
        {{tr_.k_src, args.src.rank}, {tr_.k_size, static_cast<std::int64_t>(args.size)}});

  // Request: a small descriptor travels to the data owner.
  Nic& rnic = nic(reader_node, nic_idx);
  const Time req_tx = rnic.reserve_tx(kernel_.now(), 64);
  const Time req_arrival = wire_arrival(reader_node, owner_node, req_tx, false,
                                        args.src_rank, args.src.rank);

  auto a = std::make_shared<GetArgs>(std::move(args));
  // The request descriptor lands at the data owner; its wire crossing covers
  // the lookahead when owner and reader live on different shards.
  kernel_.post_at_node(owner_node, req_arrival,
                       [this, a, reader_node, owner_node, get_id] {
    // The owner's NIC serializes the response; a dead NIC hands the request
    // to a surviving one.
    int oidx = a->nic_index;
    if (nic(owner_node, oidx).failed()) {
      oidx = pick_healthy_nic(owner_node, oidx);
      m_.failovers.inc();
    }
    Nic& onic = nic(owner_node, oidx);
    const Time resp_tx = onic.reserve_tx(kernel_.now(), a->size);

    // Snapshot the data at response time (this is when the NIC reads memory).
    auto data = std::make_shared<std::vector<std::byte>>(a->size);
    kernel_.post_at(resp_tx, [this, a, data, owner_node, reader_node, resp_tx, oidx,
                              get_id] {
      if (a->size > 0) {
        const std::byte* src = memory_.resolve(a->src, a->size);
        std::memcpy(data->data(), src, a->size);
      }
      // Remote (owner-side) completion, if the interface can express it:
      // Verbs offers 0 GET custom bits at remote — the CQE is silently
      // unavailable and upper layers must compensate (Table II).
      if (a->want_remote_cqe && iface_.get_remote_bits != 0) {
        UNR_CHECK_MSG(a->remote_imm.fits(iface_.effective_get_remote()),
                      "GET owner CQE immediate exceeds the interface's "
                          << iface_.effective_get_remote() << "-bit width: "
                          << a->remote_imm.to_string());
        Nic& onic2 = nic(owner_node, oidx);
        (void)onic2.remote_cq().push(
            {CqeKind::kGetDelivered, a->src_rank, a->size, a->remote_imm, kernel_.now()});
        onic2.fire_remote_cqe_hook();
      }
      if (a->owner_hw_add_target != nullptr) {
        *a->owner_hw_add_target += a->owner_hw_addend;
        if (a->owner_hw_notify) a->owner_hw_notify();
      }
      const Time arrival = wire_arrival(owner_node, reader_node, resp_tx, false,
                                        a->src.rank, a->src_rank);
      // The response returns to the reader's shard (local CQE + completion).
      kernel_.post_at_node(reader_node, arrival, [this, a, data, reader_node, get_id] {
        if (a->size > 0) std::memcpy(a->dst, data->data(), a->size);
        if (a->hw_add_target != nullptr) {
          *a->hw_add_target += a->hw_addend;
          if (a->hw_notify) a->hw_notify();
        }
        if (a->want_local_cqe) {
          UNR_CHECK_MSG(a->local_imm.fits(iface_.effective_get_local()),
                        "GET reader CQE immediate exceeds the interface's "
                            << iface_.effective_get_local() << "-bit width: "
                            << a->local_imm.to_string());
          int ridx = a->nic_index;
          if (nic(reader_node, ridx).failed()) {
            ridx = pick_healthy_nic(reader_node, ridx);
            m_.failovers.inc();
          }
          Nic& rnic2 = nic(reader_node, ridx);
          const bool ok = rnic2.local_cq().push(
              {CqeKind::kGetComplete, a->src.rank, a->size, a->local_imm, kernel_.now()});
          UNR_CHECK_MSG(ok, "local CQ overflow on node " << reader_node);
          rnic2.fire_local_cqe_hook();
        }
        if (a->on_complete) a->on_complete();
        if (tr_.on)
          kernel_.telemetry().tracer().async_end(reader_node, a->src_rank,
                                                 tr_.cat_get, tr_.get, get_id);
      });
    });
  });
}

void Fabric::set_am_handler(int rank, int channel, AmHandler h) {
  UNR_CHECK(rank >= 0 && rank < nranks());
  UNR_CHECK(channel >= 0);
  auto& chans = am_handlers_[static_cast<std::size_t>(rank)];
  if (static_cast<std::size_t>(channel) >= chans.size())
    chans.resize(static_cast<std::size_t>(channel) + 1);
  chans[static_cast<std::size_t>(channel)] = std::move(h);
}

void Fabric::send_am(int src_rank, int dst_rank, int channel,
                     std::vector<std::byte> payload, int nic_index, bool ordered) {
  UNR_CHECK(src_rank >= 0 && src_rank < nranks());
  UNR_CHECK(dst_rank >= 0 && dst_rank < nranks());
  m_.ams.inc();

  AmFlight* m = acquire_am_flight();
  m->src_rank = src_rank;
  m->dst_rank = dst_rank;
  m->channel = channel;
  m->payload = std::move(payload);
  m->nic_index = nic_index < 0 ? default_nic(src_rank) : nic_index;
  m->ordered = ordered;
  m->id = shard_id_tag() | ++sctx().am_seq;
  if (tr_.on)
    kernel_.telemetry().tracer().async_begin(
        node_of(src_rank), src_rank, tr_.cat_am, tr_.am, m->id,
        {{tr_.k_dst, dst_rank},
         {tr_.k_size, static_cast<std::int64_t>(m->payload.size())}});
  launch_am(m);
}

void Fabric::launch_am(AmFlight* m) {
  const int src_node = node_of(m->src_rank);
  const int dst_node = node_of(m->dst_rank);
  if (m->ordered && m->order_seq == kNoOrderSeq)
    m->order_seq =
        sctx().order_next_send.get_or_insert(pack_pair(m->src_rank, m->dst_rank))++;
  int nic_idx = m->nic_index;
  if (nic(src_node, nic_idx).failed()) {
    // Control traffic reroutes transparently: an AM carries protocol state
    // (rendezvous, companions) that must not die with one NIC.
    nic_idx = pick_healthy_nic(src_node, nic_idx);
    m_.failovers.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(src_node, m->src_rank, tr_.cat_am,
                                           tr_.failover, {{tr_.k_nic, nic_idx}});
  }
  m->nic_index = nic_idx;

  Nic& snic = nic(src_node, nic_idx);
  const std::size_t bytes =
      m->payload.size() + static_cast<std::size_t>(am_header_bytes());
  Time tx_done = snic.reserve_tx(kernel_.now(), bytes);
  const Time held = sctx().injector.extra_delay();
  if (held > 0) m_.injected_delays.inc();
  if (m->ordered) {
    // Same launch-time drop evaluation as ordered PUTs: the retransmission
    // cost is folded into the FIFO slot, so an ordered companion stalls the
    // channel instead of being overtaken by traffic queued behind it.
    const Time lat = one_way_latency(src_node, dst_node);
    while (sctx().injector.drop_delivery()) {
      m->attempts++;
      UNR_CHECK_MSG(m->attempts <= cfg_.retry.max_attempts,
                    "AM to rank " << m->dst_rank << " exceeded "
                                  << cfg_.retry.max_attempts << " attempts");
      m_.injected_drops.inc();
      m_.retransmits.inc();
      if (tr_.on)
        kernel_.telemetry().tracer().instant(src_node, m->src_rank, tr_.cat_am,
                                             tr_.retransmit,
                                             {{tr_.k_attempt, m->attempts}});
      tx_done = snic.reserve_tx(tx_done + lat + cfg_.fault_detect_delay, bytes);
    }
  }
  m->tx_done = tx_done;
  const Time arrival =
      wire_arrival(src_node, dst_node, tx_done, m->ordered, m->src_rank, m->dst_rank, held);
  // Delivery runs on the receiver's shard (handler + arena recycle there).
  kernel_.post_at_node(dst_node, arrival, [this, m] { deliver_am(m); });
}

void Fabric::deliver_am(AmFlight* m) {
  // An AM still in a dying NIC's send engine is lost with it, exactly like a
  // PUT — critically, this loses a companion TOGETHER with its data, so the
  // recovery (data re-launches first, companion after) re-reserves FIFO
  // slots in the original order. Like arrive_put, this runs on the
  // receiver's shard and reads the source NIC's immutable fault schedule.
  const Nic& snic = nic(node_of(m->src_rank), m->nic_index);
  const int src_node = node_of(m->src_rank);
  if (nic_lost_in_tx(snic, kernel_.now(), m->tx_done)) {
    m_.lost_to_nic.inc();
    m_.retransmits.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(node_of(m->src_rank), m->src_rank,
                                           tr_.cat_am, tr_.lost,
                                           {{tr_.k_nic, m->nic_index}});
    m->attempts++;
    UNR_CHECK_MSG(m->attempts <= cfg_.retry.max_attempts,
                  "AM to rank " << m->dst_rank << " exceeded "
                                << cfg_.retry.max_attempts << " attempts");
    kernel_.post_at_node(src_node, kernel_.now() + cfg_.fault_detect_delay,
                         [this, m] { launch_am(m); });
    return;
  }
  // Link-level retransmission on injected drops: control traffic (rendezvous,
  // companions) must eventually arrive or the protocol wedges. Ordered AMs
  // evaluated their drops at launch (see launch_am) to keep their FIFO slot.
  if (!m->ordered && sctx().injector.drop_delivery()) {
    m_.injected_drops.inc();
    m_.retransmits.inc();
    if (tr_.on)
      kernel_.telemetry().tracer().instant(node_of(m->src_rank), m->src_rank,
                                           tr_.cat_am, tr_.retransmit,
                                           {{tr_.k_attempt, m->attempts}});
    m->attempts++;
    UNR_CHECK_MSG(m->attempts <= cfg_.retry.max_attempts,
                  "AM to rank " << m->dst_rank << " exceeded "
                                << cfg_.retry.max_attempts << " attempts");
    // Re-enter the launch path: the retransmission consumes send-engine
    // bandwidth and pays the (intra-node-scaled) wire latency again.
    kernel_.post_at_node(src_node, kernel_.now() + cfg_.fault_detect_delay,
                         [this, m] { launch_am(m); });
    return;
  }
  if (m->ordered)
    ordered_ready_am(m);
  else
    deliver_am_payload(m);
}

void Fabric::deliver_am_payload(AmFlight* m) {
  const auto& chans = am_handlers_[static_cast<std::size_t>(m->dst_rank)];
  const bool have = m->channel >= 0 &&
                    static_cast<std::size_t>(m->channel) < chans.size() &&
                    static_cast<bool>(chans[static_cast<std::size_t>(m->channel)]);
  UNR_CHECK_MSG(have, "no AM handler for rank " << m->dst_rank << " channel "
                                                << m->channel);
  chans[static_cast<std::size_t>(m->channel)](m->src_rank, m->payload);
  if (tr_.on)
    kernel_.telemetry().tracer().async_end(node_of(m->dst_rank), m->dst_rank,
                                           tr_.cat_am, tr_.am, m->id);
  recycle_am_buffer(std::move(m->payload));
  release_am_flight(m);
}

// --- Ordered-stream release: a traversal that survived its faults is only
// *eligible* to deliver; it lands when every predecessor on its (src,dst)
// stream has. In the fault-free (and drop-only) world sequence order equals
// arrival order and these release inline with zero extra state; only a
// NIC-death recovery — which re-enters the launch path and takes a fresh
// FIFO slot — populates the hold-back map.

void Fabric::ordered_ready_put(Flight* f, Time arrival) {
  const std::uint64_t key = pack_pair(f->args.src_rank, f->args.dst.rank);
  OrderedStream& st = sctx().order_recv.get_or_insert(key);
  if (f->order_seq != st.next_release) {
    st.held.emplace(f->order_seq, HeldOrdered{/*am=*/false, f});
    return;
  }
  deliver_put(f, arrival);
  advance_ordered(key);
}

void Fabric::ordered_ready_am(AmFlight* m) {
  const std::uint64_t key = pack_pair(m->src_rank, m->dst_rank);
  OrderedStream& st = sctx().order_recv.get_or_insert(key);
  if (m->order_seq != st.next_release) {
    st.held.emplace(m->order_seq, HeldOrdered{/*am=*/true, m});
    return;
  }
  deliver_am_payload(m);
  advance_ordered(key);
}

void Fabric::advance_ordered(std::uint64_t key) {
  // A delivery can issue new traffic and grow the stream table (invalidating
  // references), so the entry is re-fetched every iteration.
  while (true) {
    OrderedStream* st = sctx().order_recv.find(key);
    st->next_release++;
    const auto it = st->held.find(st->next_release);
    if (it == st->held.end()) return;
    const HeldOrdered h = it->second;
    st->held.erase(it);
    if (h.am)
      deliver_am_payload(static_cast<AmFlight*>(h.flight));
    else
      deliver_put(static_cast<Flight*>(h.flight), kernel_.now());
  }
}

Fabric::PoolDebug Fabric::pool_debug() const {
  // Flights migrate between shard pools (released into the handling shard's
  // free list), so conservation only holds over the global sums.
  PoolDebug d;
  for (const auto& sc : shard_ctx_) {
    d.flights_total += sc->flight_pool.size();
    d.flights_free += sc->flight_free.size();
    d.am_total += sc->am_pool.size();
    d.am_free += sc->am_free.size();
  }
  return d;
}

std::uint64_t Fabric::total_cq_overflows() const {
  std::uint64_t n = 0;
  for (const Nic& nc : nics_)
    n += nc.remote_cq().overflows() + nc.local_cq().overflows();
  return n;
}

}  // namespace unr::fabric
