#include "fabric/fabric.hpp"

#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace unr::fabric {

namespace {
/// Hard cap on delivery retries after remote-CQ overflow: if nothing drains
/// the CQ for this long, the configuration is broken and we fail loudly
/// instead of spinning the event loop forever.
constexpr int kMaxDeliveryAttempts = 100000;
/// Intra-node traffic does not cross the switch fabric.
constexpr double kIntraLatencyFactor = 0.25;
}  // namespace

Fabric::Fabric(sim::Kernel& kernel, Config cfg)
    : kernel_(kernel),
      cfg_(std::move(cfg)),
      iface_(personality(cfg_.profile.iface)),
      machine_(cfg_.nodes, cfg_.profile.cores_per_node),
      memory_(cfg_.max_regions_per_rank),
      rng_(cfg_.seed) {
  UNR_CHECK(cfg_.nodes >= 1 && cfg_.ranks_per_node >= 1);
  UNR_CHECK(cfg_.profile.nics_per_node >= 1);
  nics_.resize(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    for (int i = 0; i < cfg_.profile.nics_per_node; ++i) {
      nics_[static_cast<std::size_t>(n)].push_back(std::make_unique<Nic>(
          n, i, cfg_.profile.nic_gbps, cfg_.profile.nic_overhead, cfg_.profile.cq_depth));
    }
  }
}

Nic& Fabric::nic(int node, int index) {
  UNR_CHECK(node >= 0 && node < cfg_.nodes);
  UNR_CHECK(index >= 0 && index < nics_per_node());
  return *nics_[static_cast<std::size_t>(node)][static_cast<std::size_t>(index)];
}

Time Fabric::wire_arrival(int src_node, int dst_node, Time tx_done, bool ordered,
                          int src_rank, int dst_rank) {
  Time lat = cfg_.profile.wire_latency;
  if (src_node == dst_node)
    lat = static_cast<Time>(static_cast<double>(lat) * kIntraLatencyFactor);
  Time arrival = tx_done + lat;
  if (!ordered && !cfg_.deterministic_routing && cfg_.profile.jitter > 0)
    arrival += static_cast<Time>(rng_.below(cfg_.profile.jitter + 1));
  if (ordered) {
    Time& tail = fifo_tail_[{src_rank, dst_rank}];
    if (arrival <= tail) arrival = tail + 1;
    tail = arrival;
  }
  return arrival;
}

void Fabric::put(PutArgs args) {
  UNR_CHECK(args.src_rank >= 0 && args.src_rank < nranks());
  UNR_CHECK(args.dst.valid() && args.dst.rank < nranks());
  UNR_CHECK(args.src != nullptr || args.size == 0);
  // Resolve the destination now so that addressing errors surface at the
  // call site, not inside an event handler later.
  (void)memory_.resolve(args.dst, args.size);

  const int src_node = node_of(args.src_rank);
  const int dst_node = node_of(args.dst.rank);
  int nic_idx = args.nic_index < 0 ? default_nic(args.src_rank) : args.nic_index;
  UNR_CHECK(nic_idx < nics_per_node());
  args.nic_index = nic_idx;

  args.remote_imm = args.remote_imm.truncated(iface_.effective_put_remote());
  args.local_imm = args.local_imm.truncated(iface_.effective_put_local());

  // Snapshot the payload at post time: RMA semantics require the source
  // buffer to stay unchanged until local completion, and the snapshot makes
  // the simulator robust even if callers violate that.
  std::vector<std::byte> data(args.size);
  if (args.size > 0) std::memcpy(data.data(), args.src, args.size);

  Nic& snic = nic(src_node, nic_idx);
  const Time tx_done = snic.reserve_tx(kernel_.now(), args.size);
  const Time arrival =
      wire_arrival(src_node, dst_node, tx_done, args.ordered, args.src_rank, args.dst.rank);

  stats_.puts++;
  stats_.put_bytes += args.size;

  auto shared = std::make_shared<PutArgs>(std::move(args));
  kernel_.post_at(arrival, [this, shared, d = std::move(data), arrival]() mutable {
    deliver_put(shared, std::move(d), arrival, 1);
  });
}

void Fabric::deliver_put(std::shared_ptr<PutArgs> a, std::vector<std::byte> data,
                         Time arrival, int attempts) {
  const int dst_node = node_of(a->dst.rank);
  Nic& dnic = nic(dst_node, a->nic_index);

  if (a->want_remote_cqe && dnic.remote_cq().full()) {
    UNR_CHECK_MSG(attempts < kMaxDeliveryAttempts,
                  "remote CQ on node " << dst_node << " never drained");
    (void)dnic.remote_cq().push({});  // records the overflow in CQ stats
    stats_.cq_retries++;
    const Time retry = kernel_.now() + cfg_.profile.cq_retry_delay;
    kernel_.post_at(retry, [this, a, d = std::move(data), retry, attempts]() mutable {
      deliver_put(a, std::move(d), retry, attempts + 1);
    });
    return;
  }

  if (a->size > 0) {
    std::byte* dst = memory_.resolve(a->dst, a->size);
    std::memcpy(dst, data.data(), a->size);
  }

  // Level-4 hardware offload: atomic add applied by the NIC itself.
  if (a->hw_add_target != nullptr) {
    *a->hw_add_target += a->hw_addend;
    if (a->hw_notify) a->hw_notify();
  }

  if (a->want_remote_cqe) {
    const bool ok = dnic.remote_cq().push(
        {CqeKind::kPutDelivered, a->src_rank, a->size, a->remote_imm, kernel_.now()});
    UNR_CHECK(ok);
    dnic.fire_remote_cqe_hook();
  }
  if (a->on_delivered) a->on_delivered();

  // Local completion: the sender learns of completion one ACK later.
  const int src_node = node_of(a->src_rank);
  Time ack_lat = cfg_.profile.wire_latency;
  if (src_node == dst_node)
    ack_lat = static_cast<Time>(static_cast<double>(ack_lat) * kIntraLatencyFactor);
  kernel_.post_at(arrival + ack_lat, [this, a, src_node] {
    Nic& snic = nic(src_node, a->nic_index);
    if (a->want_local_cqe) {
      // The local CQ is drained by the owner's progress engine; treat
      // overflow as fatal (real stacks size the send CQ to the SQ depth).
      const bool ok = snic.local_cq().push(
          {CqeKind::kPutComplete, a->dst.rank, a->size, a->local_imm, kernel_.now()});
      UNR_CHECK_MSG(ok, "local CQ overflow on node " << src_node);
      snic.fire_local_cqe_hook();
    }
    if (a->on_local_complete) a->on_local_complete();
  });
}

void Fabric::get(GetArgs args) {
  UNR_CHECK(args.src_rank >= 0 && args.src_rank < nranks());
  UNR_CHECK(args.src.valid() && args.src.rank < nranks());
  UNR_CHECK(args.dst != nullptr || args.size == 0);
  (void)memory_.resolve(args.src, args.size);

  const int reader_node = node_of(args.src_rank);
  const int owner_node = node_of(args.src.rank);
  int nic_idx = args.nic_index < 0 ? default_nic(args.src_rank) : args.nic_index;
  UNR_CHECK(nic_idx < nics_per_node());
  args.nic_index = nic_idx;

  args.remote_imm = args.remote_imm.truncated(iface_.effective_get_remote());
  args.local_imm = args.local_imm.truncated(iface_.effective_get_local());

  stats_.gets++;
  stats_.get_bytes += args.size;

  // Request: a small descriptor travels to the data owner.
  Nic& rnic = nic(reader_node, nic_idx);
  const Time req_tx = rnic.reserve_tx(kernel_.now(), 64);
  const Time req_arrival = wire_arrival(reader_node, owner_node, req_tx, false,
                                        args.src_rank, args.src.rank);

  auto a = std::make_shared<GetArgs>(std::move(args));
  kernel_.post_at(req_arrival, [this, a, reader_node, owner_node] {
    // The owner's NIC serializes the response.
    Nic& onic = nic(owner_node, a->nic_index);
    const Time resp_tx = onic.reserve_tx(kernel_.now(), a->size);

    // Snapshot the data at response time (this is when the NIC reads memory).
    auto data = std::make_shared<std::vector<std::byte>>(a->size);
    kernel_.post_at(resp_tx, [this, a, data, owner_node, reader_node, resp_tx] {
      if (a->size > 0) {
        const std::byte* src = memory_.resolve(a->src, a->size);
        std::memcpy(data->data(), src, a->size);
      }
      // Remote (owner-side) completion, if the interface can express it:
      // Verbs offers 0 GET custom bits at remote — the CQE is silently
      // unavailable and upper layers must compensate (Table II).
      if (a->want_remote_cqe && iface_.get_remote_bits != 0) {
        Nic& onic2 = nic(owner_node, a->nic_index);
        (void)onic2.remote_cq().push(
            {CqeKind::kGetDelivered, a->src_rank, a->size, a->remote_imm, kernel_.now()});
        onic2.fire_remote_cqe_hook();
      }
      if (a->owner_hw_add_target != nullptr) {
        *a->owner_hw_add_target += a->owner_hw_addend;
        if (a->owner_hw_notify) a->owner_hw_notify();
      }
      const Time arrival = wire_arrival(owner_node, reader_node, resp_tx, false,
                                        a->src.rank, a->src_rank);
      kernel_.post_at(arrival, [this, a, data, reader_node] {
        if (a->size > 0) std::memcpy(a->dst, data->data(), a->size);
        if (a->hw_add_target != nullptr) {
          *a->hw_add_target += a->hw_addend;
          if (a->hw_notify) a->hw_notify();
        }
        if (a->want_local_cqe) {
          Nic& rnic2 = nic(reader_node, a->nic_index);
          const bool ok = rnic2.local_cq().push(
              {CqeKind::kGetComplete, a->src.rank, a->size, a->local_imm, kernel_.now()});
          UNR_CHECK_MSG(ok, "local CQ overflow on node " << reader_node);
          rnic2.fire_local_cqe_hook();
        }
        if (a->on_complete) a->on_complete();
      });
    });
  });
}

void Fabric::set_am_handler(int rank, int channel, AmHandler h) {
  UNR_CHECK(rank >= 0 && rank < nranks());
  am_handlers_[{rank, channel}] = std::move(h);
}

void Fabric::send_am(int src_rank, int dst_rank, int channel,
                     std::vector<std::byte> payload, int nic_index, bool ordered) {
  UNR_CHECK(src_rank >= 0 && src_rank < nranks());
  UNR_CHECK(dst_rank >= 0 && dst_rank < nranks());
  const int src_node = node_of(src_rank);
  const int dst_node = node_of(dst_rank);
  const int nic_idx = nic_index < 0 ? default_nic(src_rank) : nic_index;

  stats_.ams++;

  Nic& snic = nic(src_node, nic_idx);
  const Time tx_done =
      snic.reserve_tx(kernel_.now(), payload.size() + static_cast<std::size_t>(am_header_bytes()));
  const Time arrival = wire_arrival(src_node, dst_node, tx_done, ordered, src_rank, dst_rank);

  kernel_.post_at(arrival, [this, src_rank, dst_rank, channel, p = std::move(payload)] {
    auto it = am_handlers_.find({dst_rank, channel});
    UNR_CHECK_MSG(it != am_handlers_.end(), "no AM handler for rank "
                                                << dst_rank << " channel " << channel);
    it->second(src_rank, p);
  });
}

std::uint64_t Fabric::total_cq_overflows() const {
  std::uint64_t n = 0;
  for (const auto& node_nics : nics_)
    for (const auto& nic : node_nics)
      n += nic->remote_cq().overflows() + nic->local_cq().overflows();
  return n;
}

}  // namespace unr::fabric
