#include "fabric/memory.hpp"

#include "common/check.hpp"

namespace unr::fabric {

MrId MemRegistry::register_region(int rank, void* base, std::size_t size) {
  UNR_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < regions_.size() &&
            base != nullptr && size > 0);
  if (max_per_rank_ != 0) {
    UNR_CHECK_MSG(live_count_[static_cast<std::size_t>(rank)] < max_per_rank_,
                  "rank " << rank << " exceeded the registered-region limit ("
                          << max_per_rank_ << ")");
  }
  auto& mine = regions_[static_cast<std::size_t>(rank)];
  mine.push_back(Region{static_cast<std::byte*>(base), size, true});
  live_count_[static_cast<std::size_t>(rank)]++;
  return static_cast<MrId>(mine.size());  // ids are per-rank 1-based; 0 = invalid
}

const MemRegistry::Region& MemRegistry::lookup(int rank, MrId id) const {
  UNR_CHECK_MSG(rank >= 0 && static_cast<std::size_t>(rank) < regions_.size(),
                "bad rank " << rank << " in memory reference");
  const auto& mine = regions_[static_cast<std::size_t>(rank)];
  UNR_CHECK_MSG(id != kInvalidMr && id <= mine.size(),
                "bad memory region id " << id << " for rank " << rank);
  const Region& r = mine[id - 1];
  UNR_CHECK_MSG(r.live, "access to deregistered region " << id);
  return r;
}

void MemRegistry::deregister_region(int rank, MrId id) {
  const Region& r = lookup(rank, id);
  const_cast<Region&>(r).live = false;
  live_count_[static_cast<std::size_t>(rank)]--;
}

std::byte* MemRegistry::resolve(const MemRef& ref, std::size_t len) const {
  const Region& r = lookup(ref.rank, ref.mr);
  UNR_CHECK_MSG(ref.offset + len <= r.size,
                "RMA access out of bounds: offset " << ref.offset << " + len " << len
                                                    << " > region size " << r.size);
  return r.base + ref.offset;
}

std::size_t MemRegistry::region_size(int rank, MrId id) const {
  return lookup(rank, id).size;
}

std::size_t MemRegistry::count(int rank) const {
  return live_count_[static_cast<std::size_t>(rank)];
}

}  // namespace unr::fabric
