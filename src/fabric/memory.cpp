#include "fabric/memory.hpp"

#include "common/check.hpp"

namespace unr::fabric {

MrId MemRegistry::register_region(int rank, void* base, std::size_t size) {
  UNR_CHECK(rank >= 0 && base != nullptr && size > 0);
  if (max_per_rank_ != 0) {
    UNR_CHECK_MSG(live_count_[rank] < max_per_rank_,
                  "rank " << rank << " exceeded the registered-region limit ("
                          << max_per_rank_ << ")");
  }
  regions_.push_back(Region{rank, static_cast<std::byte*>(base), size, true});
  live_count_[rank]++;
  return static_cast<MrId>(regions_.size());  // ids are 1-based; 0 = invalid
}

const MemRegistry::Region& MemRegistry::lookup(int rank, MrId id) const {
  UNR_CHECK_MSG(id != kInvalidMr && id <= regions_.size(), "bad memory region id " << id);
  const Region& r = regions_[id - 1];
  UNR_CHECK_MSG(r.live, "access to deregistered region " << id);
  UNR_CHECK_MSG(r.rank == rank, "region " << id << " belongs to rank " << r.rank
                                          << ", not rank " << rank);
  return r;
}

void MemRegistry::deregister_region(int rank, MrId id) {
  const Region& r = lookup(rank, id);
  const_cast<Region&>(r).live = false;
  live_count_[rank]--;
}

std::byte* MemRegistry::resolve(const MemRef& ref, std::size_t len) const {
  const Region& r = lookup(ref.rank, ref.mr);
  UNR_CHECK_MSG(ref.offset + len <= r.size,
                "RMA access out of bounds: offset " << ref.offset << " + len " << len
                                                    << " > region size " << r.size);
  return r.base + ref.offset;
}

std::size_t MemRegistry::region_size(int rank, MrId id) const {
  return lookup(rank, id).size;
}

std::size_t MemRegistry::count(int rank) const {
  auto it = live_count_.find(rank);
  return it == live_count_.end() ? 0 : it->second;
}

}  // namespace unr::fabric
