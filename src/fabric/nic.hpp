// A simulated RMA-capable NIC.
//
// The NIC owns a send-engine timeline (messages serialize at link bandwidth,
// one after another — this is what makes two NICs genuinely twice as fast as
// one) and two completion queues. Delivery logic lives in Fabric; the NIC is
// the resource.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "fabric/completion.hpp"
#include "fabric/personality.hpp"

namespace unr::fabric {

class Nic {
 public:
  Nic(int node, int index, double gbps, Time overhead, std::size_t cq_depth)
      : node_(node),
        index_(index),
        gbps_(gbps),
        overhead_(overhead),
        local_cq_(cq_depth),
        remote_cq_(cq_depth) {}

  int node() const { return node_; }
  int index() const { return index_; }
  double gbps() const { return gbps_; }

  /// Reserve the send engine for `bytes` starting no earlier than `earliest`;
  /// returns the time serialization finishes (wire-injection complete).
  Time reserve_tx(Time earliest, std::size_t bytes) {
    const Time start = std::max(earliest + overhead_, busy_until_);
    busy_until_ = start + serialize_ns(bytes, gbps_);
    tx_messages_++;
    tx_bytes_ += bytes;
    return busy_until_;
  }

  Time busy_until() const { return busy_until_; }

  // --- Failure state (fault injection) ---
  /// Mark the NIC as failed at virtual time `when`. A failed NIC never
  /// recovers; messages it had not finished injecting by `when` are lost and
  /// the fabric fails them over to the node's surviving NICs.
  void fail(Time when) {
    if (failed_) return;
    failed_ = true;
    failed_at_ = when;
  }
  bool failed() const { return failed_; }
  Time failed_at() const { return failed_at_; }
  /// Was the message whose injection finishes at `tx_done` lost to this
  /// NIC's failure? (It was still in the send engine when the NIC died.)
  bool lost_in_tx(Time tx_done) const { return failed_ && failed_at_ < tx_done; }

  /// No failure scheduled for this NIC.
  static constexpr Time kNeverFails = ~Time{0};
  /// Record the fault schedule's earliest failure time for this NIC.
  /// Written once at Fabric construction (before any worker thread exists)
  /// and immutable afterwards, so any kernel shard may read it — unlike the
  /// mutable failed()/failed_at() pair, which only the owning shard's fault
  /// event writes (see Fabric::nic_lost_in_tx).
  void schedule_fail(Time at) { scheduled_fail_ = std::min(scheduled_fail_, at); }
  Time scheduled_fail() const { return scheduled_fail_; }

  CompletionQueue& local_cq() { return local_cq_; }
  CompletionQueue& remote_cq() { return remote_cq_; }
  const CompletionQueue& local_cq() const { return local_cq_; }
  const CompletionQueue& remote_cq() const { return remote_cq_; }

  /// Invoked whenever a CQE lands in the remote CQ (lets a progress engine
  /// wake waiters without busy-polling the virtual clock).
  void set_remote_cqe_hook(std::function<void()> hook) { remote_hook_ = std::move(hook); }
  void set_local_cqe_hook(std::function<void()> hook) { local_hook_ = std::move(hook); }
  void fire_remote_cqe_hook() const { if (remote_hook_) remote_hook_(); }
  void fire_local_cqe_hook() const { if (local_hook_) local_hook_(); }

  std::uint64_t tx_messages() const { return tx_messages_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  int node_;
  int index_;
  double gbps_;
  Time overhead_;
  Time busy_until_ = 0;
  bool failed_ = false;
  Time failed_at_ = 0;
  Time scheduled_fail_ = kNeverFails;
  std::uint64_t tx_messages_ = 0;
  std::uint64_t tx_bytes_ = 0;
  CompletionQueue local_cq_;
  CompletionQueue remote_cq_;
  std::function<void()> remote_hook_;
  std::function<void()> local_hook_;
};

}  // namespace unr::fabric
