#include "fabric/personality.hpp"

#include "common/check.hpp"

namespace unr::fabric {

const std::vector<Personality>& all_personalities() {
  // Table II of the paper, row by row.
  static const std::vector<Personality> table = {
      {unr::Interface::kGlex, "TH Express network", "Tianhe-2A(1), Tianhe-Xingyi",
       /*put_local*/ 128, /*put_remote*/ 128, /*get_local*/ 128, /*get_remote*/ 128,
       /*shared*/ false},
      {unr::Interface::kVerbs, "Slingshot, Infiniband, RoCE", "Frontier(1), Summit(1)",
       64, 32, 64, 0, false},
      {unr::Interface::kUtofu, "Tofu Interconnect", "Fugaku(1), K(1)",
       64, 8, 64, 8, false},
      {unr::Interface::kUgni, "Aries Interconnect", "Piz Daint(3), Trinity(6)",
       32, 32, 32, 32, false},
      {unr::Interface::kPami, "Blue Gene/Q Interconnection", "Sequoia(1), Mira(3)",
       64, 64, 64, 0, true},
      {unr::Interface::kPortals, "SeaStar Interconnect", "Kraken(3), Jaguar(6)",
       /*put_local: Hash*/ -1, 64, /*get_local: Hash*/ -1, 0, false},
  };
  return table;
}

const Personality& personality(unr::Interface iface) {
  for (const auto& p : all_personalities())
    if (p.iface == iface) return p;
  UNR_CHECK_MSG(false, "no personality for interface");
  __builtin_unreachable();
}

}  // namespace unr::fabric
