// Custom bits: the per-operation immediate data that Notifiable RMA
// Primitives deliver with a completion event (Section II / Table II of the
// paper). Different interfaces expose different widths (0..128 bits); UNR's
// whole portability story is about what fits into them.
#pragma once

#include <cstdint>
#include <string>

namespace unr::fabric {

/// Up to 128 bits of immediate data. Stored as two 64-bit words
/// (lo = bits 0..63, hi = bits 64..127).
struct CustomBits {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static CustomBits from_u64(std::uint64_t v) { return {v, 0}; }
  static CustomBits from_pair(std::uint64_t lo, std::uint64_t hi) { return {lo, hi}; }

  bool operator==(const CustomBits&) const = default;

  /// Truncate to the low `width` bits (what a narrower interface would
  /// actually deliver). width in [0, 128].
  CustomBits truncated(int width) const;

  /// True if the value fits in `width` bits without loss.
  bool fits(int width) const;

  std::string to_string() const;
};

}  // namespace unr::fabric
