#include "fabric/fault.hpp"

#include <utility>

#include "common/check.hpp"

namespace unr::fabric {

FaultInjector::FaultInjector(FaultConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      // A fixed offset keeps the injector's stream independent of the
      // fabric's routing-jitter stream: enabling faults must not perturb
      // the arrival jitter of messages that are NOT faulted.
      rng_(seed ^ 0xFA017EC7ull) {
  UNR_CHECK_MSG(cfg_.drop_rate >= 0.0 && cfg_.drop_rate < 1.0,
                "drop_rate must be in [0, 1): " << cfg_.drop_rate);
  UNR_CHECK_MSG(cfg_.delay_rate >= 0.0 && cfg_.delay_rate <= 1.0,
                "delay_rate must be in [0, 1]: " << cfg_.delay_rate);
}

bool FaultInjector::drop_delivery() {
  if (cfg_.drop_rate <= 0.0) return false;
  if (rng_.uniform() >= cfg_.drop_rate) return false;
  ++drops_;
  return true;
}

Time FaultInjector::extra_delay() {
  if (cfg_.delay_rate <= 0.0) return 0;
  if (rng_.uniform() >= cfg_.delay_rate) return 0;
  ++delays_;
  return static_cast<Time>(rng_.below(static_cast<std::uint64_t>(cfg_.delay_max) + 1));
}

}  // namespace unr::fabric
