// The simulated interconnect: topology, RMA verbs (PUT/GET with immediate
// data), and small active messages for control traffic.
//
// This is the stand-in for GLEX / ibverbs / uTofu / uGNI / PAMI / Portals in
// the paper's UNR Transport Layer. It reproduces the properties UNR's design
// is built around:
//   * per-NIC serialization (multi-NIC aggregation pays off),
//   * per-message custom bits truncated to the interface's width (Table II),
//   * bounded remote completion queues that someone must drain,
//   * adaptive-routing jitter (fragments may arrive out of order),
//   * an optional hardware addend offload (the paper's proposed level 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/flat_table.hpp"
#include "common/profile.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fabric/custom_bits.hpp"
#include "fabric/fault.hpp"
#include "fabric/memory.hpp"
#include "fabric/nic.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"
#include "sim/node.hpp"

namespace unr::fabric {

class Fabric {
 public:
  /// NACK/backoff policy for deliveries that find the remote CQ full, and
  /// the retransmission cap for injected drops. The first retry waits the
  /// profile's cq_retry_delay (the backoff base); subsequent retries grow by
  /// `multiplier` up to `max_delay`, with a deterministic per-retry jitter
  /// that desynchronizes retriers (a fixed delay marches every NACKed sender
  /// in lockstep, turning one overflow into a retry storm).
  struct RetryPolicy {
    double multiplier = 2.0;  ///< backoff growth per consecutive NACK
    Time max_delay = 0;       ///< delay cap; 0 = 32x the backoff base
    double jitter_frac = 0.25;  ///< jitter window as a fraction of the delay
    /// Hard cap on delivery attempts (NACK retries + drop retransmissions),
    /// interpreted identically on every path: attempts up to and including
    /// max_attempts are allowed, attempt max_attempts + 1 fails loudly. If
    /// nothing drains the CQ for this long, the configuration is broken and
    /// we fail loudly instead of spinning the event loop forever.
    int max_attempts = 100000;
  };

  struct Config {
    int nodes = 2;
    int ranks_per_node = 1;
    unr::SystemProfile profile;
    std::size_t max_regions_per_rank = 0;  ///< 0 = unlimited
    std::uint64_t seed = 1;
    bool deterministic_routing = false;    ///< disable jitter entirely
    RetryPolicy retry;
    FaultConfig faults;
    /// Sender-side timeout before a delivery lost to a NIC failure or an
    /// injected drop is detected and re-issued.
    Time fault_detect_delay = 10 * kUs;
  };

  Fabric(sim::Kernel& kernel, Config cfg);
  ~Fabric();  // out-of-line: owns pools of the private Flight/AmFlight types
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- Topology ---
  int nranks() const { return cfg_.nodes * cfg_.ranks_per_node; }
  int node_count() const { return cfg_.nodes; }
  int ranks_per_node() const { return cfg_.ranks_per_node; }
  int node_of(int rank) const { return rank / cfg_.ranks_per_node; }
  int nics_per_node() const { return cfg_.profile.nics_per_node; }
  /// The NIC a rank uses by default (ranks round-robin over the node's NICs).
  int default_nic(int rank) const { return rank % nics_per_node(); }

  Nic& nic(int node, int index);
  const Nic& nic(int node, int index) const;
  /// The first healthy NIC on `node` at or after `preferred` (round-robin);
  /// fails loudly when every NIC on the node is dead.
  int pick_healthy_nic(int node, int preferred) const;
  /// Indices of the node's NICs that have not failed, in ascending order.
  std::vector<int> healthy_nics(int node) const;
  int healthy_nic_count(int node) const;
  sim::Machine& machine() { return machine_; }
  sim::Node& node_of_rank(int rank) { return machine_.node(node_of(rank)); }
  MemRegistry& memory() { return memory_; }
  const unr::SystemProfile& profile() const { return cfg_.profile; }
  const Personality& iface() const { return iface_; }
  sim::Kernel& kernel() { return kernel_; }

  // --- RMA verbs (non-blocking; they only schedule events) ---
  struct PutArgs {
    int src_rank = -1;
    const void* src = nullptr;  ///< local source buffer
    MemRef dst;                 ///< remote destination
    std::size_t size = 0;
    int nic_index = -1;         ///< -1: the source rank's default NIC

    CustomBits remote_imm;      ///< delivered with the remote CQE
    bool want_remote_cqe = false;
    CustomBits local_imm;       ///< delivered with the local CQE
    bool want_local_cqe = false;

    bool ordered = false;  ///< FIFO w.r.t. other ordered traffic on (src,dst)

    /// Level-4 hardware offload: the NIC applies *hw_add_target += hw_addend
    /// at delivery time (no software on the critical path) and then invokes
    /// hw_notify. This is the paper's proposed RMA+atomic combination.
    std::int64_t* hw_add_target = nullptr;
    std::int64_t hw_addend = 0;
    std::function<void()> hw_notify;

    /// Zero-cost hooks for the runtime layer (window counters, rendezvous).
    std::function<void()> on_delivered;
    std::function<void()> on_local_complete;

    /// Resilience hook: invoked (after fault_detect_delay) when the message
    /// was lost to a NIC that failed mid-flight. When set, the CALLER owns
    /// recovery — UNR's splitter re-issues the sub-message on a surviving
    /// NIC with the MMAS addends re-encoded. When unset, the fabric
    /// retransmits on a surviving NIC itself.
    std::function<void()> on_lost;
  };
  void put(PutArgs a);

  struct GetArgs {
    int src_rank = -1;          ///< the rank issuing the GET
    void* dst = nullptr;        ///< local destination buffer
    MemRef src;                 ///< remote source
    std::size_t size = 0;
    int nic_index = -1;

    CustomBits remote_imm;      ///< CQE at the data owner (if iface supports it)
    bool want_remote_cqe = false;
    CustomBits local_imm;       ///< CQE at the reader when data lands
    bool want_local_cqe = false;

    std::int64_t* hw_add_target = nullptr;  ///< applied at the READER on landing
    std::int64_t hw_addend = 0;
    std::function<void()> hw_notify;

    /// Owner-side hardware offload, applied when the response leaves the
    /// data owner's NIC (level-4 GET notification at the remote).
    std::int64_t* owner_hw_add_target = nullptr;
    std::int64_t owner_hw_addend = 0;
    std::function<void()> owner_hw_notify;

    std::function<void()> on_complete;  ///< runtime hook at the reader
  };
  void get(GetArgs a);

  // --- Active messages (small control traffic for the runtime layer) ---
  using AmHandler =
      std::function<void(int src_rank, const std::vector<std::byte>& payload)>;
  /// One handler per (rank, channel); channel is a small caller-chosen id.
  void set_am_handler(int rank, int channel, AmHandler h);
  void send_am(int src_rank, int dst_rank, int channel, std::vector<std::byte> payload,
               int nic_index = -1, bool ordered = false);

  /// A reusable payload buffer from the fabric's AM arena, sized to `size`.
  /// Buffers handed to send_am() are recycled into the arena after their
  /// handler returns, so steady-state AM traffic allocates nothing: callers
  /// that pack payloads per message (the runtime's eager path) should start
  /// from here instead of a fresh std::vector.
  std::vector<std::byte> acquire_am_buffer(std::size_t size);

  /// Health and recovery counters for the resilience layer.
  struct ResilienceStats {
    std::uint64_t backoff_ns = 0;       ///< virtual time spent in NACK backoff
    std::uint64_t injected_drops = 0;   ///< deliveries dropped by the injector
    std::uint64_t injected_delays = 0;  ///< deliveries held up by the injector
    std::uint64_t retransmits = 0;      ///< wire traversals repeated after a drop
    std::uint64_t nic_failures = 0;     ///< NICs failed by the fault schedule
    std::uint64_t lost_to_nic = 0;      ///< messages lost inside a dying NIC
    std::uint64_t failovers = 0;        ///< deliveries moved to a surviving NIC
  };

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t ams = 0;
    std::uint64_t put_bytes = 0;
    std::uint64_t get_bytes = 0;
    std::uint64_t cq_retries = 0;  ///< deliveries NACKed on a full remote CQ
    ResilienceStats resilience;
  };
  /// DEPRECATED shim (one PR): a snapshot materialized from the kernel's
  /// obs::Registry, which now owns all fabric counters (names under
  /// "fabric.*" — see docs/OBSERVABILITY.md). Prefer reading the registry.
  Stats stats() const;

  /// Total remote-CQ overflow events across all NICs.
  std::uint64_t total_cq_overflows() const;

  /// Flight-pool conservation snapshot. A live flight is pool-owned but not
  /// on the free list; after a quiesced run every event chain's terminal
  /// handler has returned its flight, so nonzero live counts at teardown
  /// mean a chain leaked its pooled Flight/AmFlight.
  struct PoolDebug {
    std::size_t flights_total = 0, flights_free = 0;
    std::size_t am_total = 0, am_free = 0;
    std::size_t live_flights() const { return flights_total - flights_free; }
    std::size_t live_am_flights() const { return am_total - am_free; }
  };
  PoolDebug pool_debug() const;

  /// Backoff delay before NACK retry number `attempt` (1-based). `stream`
  /// selects the deterministic jitter sequence — the fabric keys it by
  /// flight identity so simultaneously-NACKed senders desynchronize. A pure
  /// function of the configuration, exposed for tests and the fault-ablation
  /// bench: previewing delays cannot perturb simulation state.
  Time nack_backoff_delay(int attempt, std::uint64_t stream = 0) const;

 private:
  struct Flight;    // one PUT in transit (args + payload + attempt bookkeeping)
  struct AmFlight;  // one active message in transit

  /// Pre-resolved registry handles: hot-path accounting is one pointer-
  /// indirect add, no name lookup ever happens after construction.
  struct Metrics {
    obs::Counter puts, gets, ams, put_bytes, get_bytes, cq_retries;
    obs::Counter backoff_ns, injected_drops, injected_delays, retransmits;
    obs::Counter nic_failures, lost_to_nic, failovers;
    /// Per-NIC delivered remote CQEs, flat [node * nics_per_node + index].
    std::vector<obs::Counter> nic_cqes;
    /// Per-rank PUT issue counts (label rank=R).
    std::vector<obs::Counter> rank_puts;
  };

  /// Interned trace strings + cached enabled flag. The tracer's configure()
  /// happens before the Fabric exists (World does it first), so caching the
  /// flag here keeps every disabled-path check a single member-bool test.
  struct TraceIds {
    bool on = false;
    obs::StrId cat_flight, cat_am, cat_get, cat_fault;
    obs::StrId put, get, am, nack, retransmit, lost, failover, nic_failure, cq_burst;
    obs::StrId k_src, k_dst, k_size, k_nic, k_attempt, k_delay_ns;
  };
  void init_telemetry();

  /// One-way wire+switch latency between two nodes (intra-node traffic does
  /// not cross the switch fabric and pays a scaled-down cost).
  Time one_way_latency(int src_node, int dst_node) const;
  Time wire_arrival(int src_node, int dst_node, Time tx_done, bool ordered, int src_rank,
                    int dst_rank, Time extra = 0);
  void launch_put(Flight* f);
  void arrive_put(Flight* f, Time arrival);
  void deliver_put(Flight* f, Time arrival);
  void recover_lost_put(Flight* f);
  void launch_am(AmFlight* m);
  void deliver_am(AmFlight* m);
  void deliver_am_payload(AmFlight* m);
  void ordered_ready_put(Flight* f, Time arrival);
  void ordered_ready_am(AmFlight* m);
  void advance_ordered(std::uint64_t key);
  Time am_header_bytes() const { return 64; }

  // --- Flight pools: one PUT/AM in transit is a pooled object, not a
  // shared_ptr-per-message. The fabric owns every flight; the event chain
  // carries a raw pointer and the terminal handler of each chain returns the
  // flight to its free list. Steady-state traffic therefore allocates
  // nothing per message (the payload vectors keep their capacity too).
  Flight* acquire_flight();
  void release_flight(Flight* f);
  AmFlight* acquire_am_flight();
  void release_am_flight(AmFlight* m);
  void recycle_am_buffer(std::vector<std::byte>&& buf);

  Nic& nic_at(int node, int index) {
    return nics_[static_cast<std::size_t>(node * cfg_.profile.nics_per_node + index)];
  }
  const Nic& nic_at(int node, int index) const {
    return nics_[static_cast<std::size_t>(node * cfg_.profile.nics_per_node + index)];
  }

  /// True when `rank`'s simulated node is owned by the calling kernel shard
  /// (always true on an unsharded kernel). Optional early validation against
  /// another shard's state is skipped and left to the owning shard's
  /// delivery event, which performs the same checks.
  bool shard_local(int rank) const {
    return !kernel_.sharded() ||
           kernel_.current_shard() == kernel_.shard_of_node(node_of(rank));
  }

  /// Shard-safe variant of Nic::lost_in_tx for the delivery side. The
  /// receiver's shard may evaluate a delivery concurrently with the sender's
  /// shard running the fault event that flips the NIC's mutable failed flag,
  /// so under sharding the predicate is computed from the immutable fault
  /// schedule instead: the failure is visible once the caller's clock (`at`)
  /// has reached it, and the message was lost if it was still in the send
  /// engine then. Unsharded, the legacy flag path runs bit-identically.
  bool nic_lost_in_tx(const Nic& n, Time at, Time tx_done) const {
    if (!kernel_.sharded()) return n.lost_in_tx(tx_done);
    const Time planned = n.scheduled_fail();
    return planned <= at && planned < tx_done;
  }

  sim::Kernel& kernel_;
  Config cfg_;
  Personality iface_;
  sim::Machine machine_;
  MemRegistry memory_;
  std::vector<Nic> nics_;  ///< flat [node * nics_per_node + index]
  Metrics m_;
  TraceIds tr_;
  /// One entry of a stream's reorder buffer: a flight whose traversal
  /// succeeded but whose predecessor is still recovering.
  struct HeldOrdered {
    bool am = false;
    void* flight = nullptr;  ///< Flight* or AmFlight* according to `am`
  };
  /// Receiver-side release state of one (src,dst) ordered stream. The FIFO
  /// tail (ShardCtx::fifo_tail) orders arrival *events* for healthy traffic,
  /// but a NIC-death failover re-enters the launch path and reserves a fresh
  /// (later) slot, letting traffic queued behind the lost message overtake
  /// it. The receiver therefore sequences ordered deliveries and holds back
  /// any that lands ahead of a recovering predecessor — a reorder buffer,
  /// exactly as in a reliable in-order transport. Send-side sequence numbers
  /// live separately in ShardCtx::order_next_send (the sender's shard).
  struct OrderedStream {
    std::uint64_t next_release = 0;  ///< next sequence allowed to deliver
    std::map<std::uint64_t, HeldOrdered> held;  ///< out-of-order arrivals
  };
  /// Mutable launch/delivery state, one instance per kernel worker shard
  /// (exactly one on an unsharded kernel). Every field is only touched by
  /// the shard the current event or actor runs on: send-side state (RNG,
  /// injector, id sequences, FIFO tails, send cursors) belongs to the
  /// sender's shard, receive-side state (reorder buffers) to the receiver's,
  /// and the flight pools recycle into whichever shard releases the flight —
  /// objects migrate between free lists exactly like the kernel's event
  /// nodes, and pool_debug() conserves over the global sums. Shard 0 is
  /// seeded exactly like the pre-shard fabric, so a single-shard run is
  /// bit-identical to the golden pins; higher shards fork decorrelated
  /// streams, making multi-shard runs reproducible per (seed, K).
  struct ShardCtx {
    // Out-of-line (fabric.cpp): the pools hold the incomplete Flight types.
    ShardCtx(std::uint64_t rng_seed, const FaultConfig& faults,
             std::uint64_t fault_seed);
    ~ShardCtx();
    Rng rng;
    FaultInjector injector;
    std::uint64_t flight_seq = 0;  // per-flight identity (keys backoff jitter)
    // Trace-span ids for AMs/GETs are separate sequences: flight_seq keys
    // the NACK-backoff jitter streams, so sharing it would shift PUT flight
    // ids and perturb seeded timelines.
    std::uint64_t am_seq = 0;
    std::uint64_t get_seq = 0;
    /// Ordered-traffic FIFO tail per (src,dst) rank pair, key-packed flat.
    FlatU64Map<Time> fifo_tail;
    FlatU64Map<std::uint64_t> order_next_send;  ///< send-side stream cursors
    FlatU64Map<OrderedStream> order_recv;       ///< reorder buffers (receiver)
    std::vector<std::unique_ptr<Flight>> flight_pool;
    std::vector<Flight*> flight_free;
    std::vector<std::unique_ptr<AmFlight>> am_pool;
    std::vector<AmFlight*> am_free;
    std::vector<std::vector<std::byte>> am_arena;  ///< recycled payload buffers
  };
  /// The calling shard's context (index 0 unsharded / outside a run).
  ShardCtx& sctx() {
    return *shard_ctx_[static_cast<std::size_t>(kernel_.current_shard())];
  }
  /// Flight/AM ids carry the allocating shard in the top bits so per-shard
  /// sequences never collide; shard 0 produces the legacy id values.
  std::uint64_t shard_id_tag() const {
    return static_cast<std::uint64_t>(kernel_.current_shard()) << 48;
  }
  std::vector<std::unique_ptr<ShardCtx>> shard_ctx_;
  /// Dense handler table [rank][channel] (channels are small caller ids).
  std::vector<std::vector<AmHandler>> am_handlers_;
};

}  // namespace unr::fabric
