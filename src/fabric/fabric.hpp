// The simulated interconnect: topology, RMA verbs (PUT/GET with immediate
// data), and small active messages for control traffic.
//
// This is the stand-in for GLEX / ibverbs / uTofu / uGNI / PAMI / Portals in
// the paper's UNR Transport Layer. It reproduces the properties UNR's design
// is built around:
//   * per-NIC serialization (multi-NIC aggregation pays off),
//   * per-message custom bits truncated to the interface's width (Table II),
//   * bounded remote completion queues that someone must drain,
//   * adaptive-routing jitter (fragments may arrive out of order),
//   * an optional hardware addend offload (the paper's proposed level 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/profile.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fabric/custom_bits.hpp"
#include "fabric/memory.hpp"
#include "fabric/nic.hpp"
#include "sim/kernel.hpp"
#include "sim/node.hpp"

namespace unr::fabric {

class Fabric {
 public:
  struct Config {
    int nodes = 2;
    int ranks_per_node = 1;
    unr::SystemProfile profile;
    std::size_t max_regions_per_rank = 0;  ///< 0 = unlimited
    std::uint64_t seed = 1;
    bool deterministic_routing = false;    ///< disable jitter entirely
  };

  Fabric(sim::Kernel& kernel, Config cfg);

  // --- Topology ---
  int nranks() const { return cfg_.nodes * cfg_.ranks_per_node; }
  int node_count() const { return cfg_.nodes; }
  int ranks_per_node() const { return cfg_.ranks_per_node; }
  int node_of(int rank) const { return rank / cfg_.ranks_per_node; }
  int nics_per_node() const { return cfg_.profile.nics_per_node; }
  /// The NIC a rank uses by default (ranks round-robin over the node's NICs).
  int default_nic(int rank) const { return rank % nics_per_node(); }

  Nic& nic(int node, int index);
  sim::Machine& machine() { return machine_; }
  sim::Node& node_of_rank(int rank) { return machine_.node(node_of(rank)); }
  MemRegistry& memory() { return memory_; }
  const unr::SystemProfile& profile() const { return cfg_.profile; }
  const Personality& iface() const { return iface_; }
  sim::Kernel& kernel() { return kernel_; }

  // --- RMA verbs (non-blocking; they only schedule events) ---
  struct PutArgs {
    int src_rank = -1;
    const void* src = nullptr;  ///< local source buffer
    MemRef dst;                 ///< remote destination
    std::size_t size = 0;
    int nic_index = -1;         ///< -1: the source rank's default NIC

    CustomBits remote_imm;      ///< delivered with the remote CQE
    bool want_remote_cqe = false;
    CustomBits local_imm;       ///< delivered with the local CQE
    bool want_local_cqe = false;

    bool ordered = false;  ///< FIFO w.r.t. other ordered traffic on (src,dst)

    /// Level-4 hardware offload: the NIC applies *hw_add_target += hw_addend
    /// at delivery time (no software on the critical path) and then invokes
    /// hw_notify. This is the paper's proposed RMA+atomic combination.
    std::int64_t* hw_add_target = nullptr;
    std::int64_t hw_addend = 0;
    std::function<void()> hw_notify;

    /// Zero-cost hooks for the runtime layer (window counters, rendezvous).
    std::function<void()> on_delivered;
    std::function<void()> on_local_complete;
  };
  void put(PutArgs a);

  struct GetArgs {
    int src_rank = -1;          ///< the rank issuing the GET
    void* dst = nullptr;        ///< local destination buffer
    MemRef src;                 ///< remote source
    std::size_t size = 0;
    int nic_index = -1;

    CustomBits remote_imm;      ///< CQE at the data owner (if iface supports it)
    bool want_remote_cqe = false;
    CustomBits local_imm;       ///< CQE at the reader when data lands
    bool want_local_cqe = false;

    std::int64_t* hw_add_target = nullptr;  ///< applied at the READER on landing
    std::int64_t hw_addend = 0;
    std::function<void()> hw_notify;

    /// Owner-side hardware offload, applied when the response leaves the
    /// data owner's NIC (level-4 GET notification at the remote).
    std::int64_t* owner_hw_add_target = nullptr;
    std::int64_t owner_hw_addend = 0;
    std::function<void()> owner_hw_notify;

    std::function<void()> on_complete;  ///< runtime hook at the reader
  };
  void get(GetArgs a);

  // --- Active messages (small control traffic for the runtime layer) ---
  using AmHandler =
      std::function<void(int src_rank, const std::vector<std::byte>& payload)>;
  /// One handler per (rank, channel); channel is a small caller-chosen id.
  void set_am_handler(int rank, int channel, AmHandler h);
  void send_am(int src_rank, int dst_rank, int channel, std::vector<std::byte> payload,
               int nic_index = -1, bool ordered = false);

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t ams = 0;
    std::uint64_t put_bytes = 0;
    std::uint64_t get_bytes = 0;
    std::uint64_t cq_retries = 0;  ///< deliveries NACKed on a full remote CQ
  };
  const Stats& stats() const { return stats_; }

  /// Total remote-CQ overflow events across all NICs.
  std::uint64_t total_cq_overflows() const;

 private:
  Time wire_arrival(int src_node, int dst_node, Time tx_done, bool ordered, int src_rank,
                    int dst_rank);
  void deliver_put(std::shared_ptr<PutArgs> a, std::vector<std::byte> data, Time arrival,
                   int attempts);
  Time am_header_bytes() const { return 64; }

  sim::Kernel& kernel_;
  Config cfg_;
  Personality iface_;
  sim::Machine machine_;
  MemRegistry memory_;
  std::vector<std::vector<std::unique_ptr<Nic>>> nics_;  // [node][index]
  Rng rng_;
  Stats stats_;
  std::map<std::pair<int, int>, Time> fifo_tail_;  // ordered-traffic FIFO per (src,dst)
  std::map<std::pair<int, int>, AmHandler> am_handlers_;  // (rank, channel)
};

}  // namespace unr::fabric
