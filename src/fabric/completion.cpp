// CompletionQueue is header-only; this TU anchors the library and keeps a
// single definition point for future out-of-line growth.
#include "fabric/completion.hpp"
