// Nic is header-only; this TU anchors the library.
#include "fabric/nic.hpp"
