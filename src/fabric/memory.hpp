// Memory registration, as required before any RMA operation.
//
// Real NICs translate and pin registered regions; the simulator's registry
// provides the same contract: remote peers can only address (rank, mr_id,
// offset) triples inside a registered region, every access is bounds-checked,
// and the number of regions per rank can be capped (some systems limit it —
// the reason UNR's BLK design sub-divides few large regions rather than
// registering many small ones).
//
// Sharding: all registration and deregistration for a rank happens on the
// rank's own kernel shard (register/deregister are called from fiber code or
// from AM handlers running on the owner node), so the per-rank tables below
// are single-shard-mutated with no locking. Cross-shard *reads* never happen
// either: the fabric gates its send-side early validation with
// Fabric::shard_local() and re-resolves at delivery time on the owner shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unr::fabric {

using MrId = std::uint32_t;
inline constexpr MrId kInvalidMr = 0;

/// A remote-addressable location: (rank, registered region, byte offset).
struct MemRef {
  int rank = -1;
  MrId mr = kInvalidMr;
  std::size_t offset = 0;

  MemRef plus(std::size_t delta) const { return {rank, mr, offset + delta}; }
  bool valid() const { return rank >= 0 && mr != kInvalidMr; }
};

class MemRegistry {
 public:
  /// `max_regions_per_rank` == 0 means unlimited. Ids are per-rank and
  /// 1-based: rank 3's region 1 and rank 7's region 1 are distinct regions.
  MemRegistry(std::size_t max_regions_per_rank, int nranks)
      : max_per_rank_(max_regions_per_rank),
        regions_(static_cast<std::size_t>(nranks)),
        live_count_(static_cast<std::size_t>(nranks), 0) {}

  /// Register [base, base+size) for `rank`. Throws if the per-rank region
  /// limit is exceeded.
  MrId register_region(int rank, void* base, std::size_t size);

  /// Deregister. Outstanding operations against the region become invalid.
  void deregister_region(int rank, MrId id);

  /// Resolve a reference to a host pointer; bounds-checks [offset, offset+len).
  std::byte* resolve(const MemRef& ref, std::size_t len) const;

  /// Size of a registered region.
  std::size_t region_size(int rank, MrId id) const;

  std::size_t count(int rank) const;

 private:
  struct Region {
    std::byte* base;
    std::size_t size;
    bool live;
  };

  const Region& lookup(int rank, MrId id) const;

  std::size_t max_per_rank_;
  std::vector<std::vector<Region>> regions_;  // [rank][MrId - 1]
  std::vector<std::size_t> live_count_;       // [rank]
};

}  // namespace unr::fabric
