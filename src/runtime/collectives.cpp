#include "runtime/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace unr::runtime {

namespace {

// Tags: kInternalTagBase | (sequence << 4) | opcode. The per-rank sequence
// counter advances identically on every rank because collectives must be
// called in the same order everywhere.
enum CollOp : int { kOpBarrier = 1, kOpBcast = 2, kOpReduce = 3, kOpGather = 4,
                    kOpAllgather = 5, kOpAlltoall = 6 };

int next_tag(Comm& comm, int self, CollOp op) {
  const int s = comm.coll_seq()[static_cast<std::size_t>(self)]++;
  return kInternalTagBase | ((s & 0xFFFFF) << 4) | op;
}

}  // namespace

void barrier(Comm& comm, int self) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpBarrier);
  char token = 0;
  for (int k = 1; k < p; k <<= 1) {
    const int dst = (self + k) % p;
    const int src = (self - k + p) % p;
    comm.sendrecv(self, dst, tag, &token, 1, src, tag, &token, 1);
  }
}

void bcast(Comm& comm, int self, int root, void* buf, std::size_t size) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpBcast);
  if (p == 1) return;
  const int vr = (self - root + p) % p;  // rank relative to root
  // Binomial tree: receive from parent, then forward to children.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const int parent = (vr - mask + root) % p;
      comm.recv(self, parent, tag, buf, size);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int child = (vr + mask + root) % p;
      comm.send(self, child, tag, buf, size);
    }
    mask >>= 1;
  }
}

void allreduce_bytes(Comm& comm, int self, void* buf, std::size_t count,
                     std::size_t elem_size,
                     const std::function<void(void*, const void*)>& combine_vec) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpReduce);
  if (p == 1) return;
  const std::size_t bytes = count * elem_size;
  std::vector<std::byte> tmp(bytes);

  // Reduce to rank 0 over a binomial tree, then broadcast back.
  int mask = 1;
  while (mask < p) {
    if (self & mask) {
      comm.send(self, self - mask, tag, buf, bytes);
      break;
    }
    if (self + mask < p) {
      comm.recv(self, self + mask, tag, tmp.data(), bytes);
      combine_vec(buf, tmp.data());
    }
    mask <<= 1;
  }
  bcast(comm, self, 0, buf, bytes);
}

void allreduce_sum(Comm& comm, int self, double* buf, std::size_t count) {
  allreduce_bytes(comm, self, buf, count, sizeof(double),
                  [count](void* into, const void* from) {
                    auto* a = static_cast<double*>(into);
                    auto* b = static_cast<const double*>(from);
                    for (std::size_t i = 0; i < count; ++i) a[i] += b[i];
                  });
}

void allreduce_max(Comm& comm, int self, double* buf, std::size_t count) {
  allreduce_bytes(comm, self, buf, count, sizeof(double),
                  [count](void* into, const void* from) {
                    auto* a = static_cast<double*>(into);
                    auto* b = static_cast<const double*>(from);
                    for (std::size_t i = 0; i < count; ++i) a[i] = std::max(a[i], b[i]);
                  });
}

void gather(Comm& comm, int self, int root, const void* send, void* recv,
            std::size_t size) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpGather);
  if (self == root) {
    auto* out = static_cast<std::byte*>(recv);
    std::memcpy(out + static_cast<std::size_t>(self) * size, send, size);
    std::vector<RequestPtr> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(comm.irecv(self, r, tag, out + static_cast<std::size_t>(r) * size,
                                size));
    }
    comm.wait_all(self, reqs);
  } else {
    comm.send(self, root, tag, send, size);
  }
}

void allgather(Comm& comm, int self, const void* send, void* recv, std::size_t size) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpAllgather);
  auto* out = static_cast<std::byte*>(recv);
  std::memcpy(out + static_cast<std::size_t>(self) * size, send, size);
  // Ring: in step s, pass along the block that originated s hops upstream.
  const int right = (self + 1) % p;
  const int left = (self - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (self - s + p) % p;
    const int recv_block = (self - s - 1 + p) % p;
    comm.sendrecv(self, right, tag, out + static_cast<std::size_t>(send_block) * size,
                  size, left, tag, out + static_cast<std::size_t>(recv_block) * size,
                  size);
  }
}

void alltoall(Comm& comm, int self, const void* send, void* recv, std::size_t size) {
  const int p = comm.nranks();
  const int tag = next_tag(comm, self, kOpAlltoall);
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);
  std::memcpy(out + static_cast<std::size_t>(self) * size,
              in + static_cast<std::size_t>(self) * size, size);
  for (int s = 1; s < p; ++s) {
    const int dst = (self + s) % p;
    const int src = (self - s + p) % p;
    comm.sendrecv(self, dst, tag, in + static_cast<std::size_t>(dst) * size, size, src,
                  tag, out + static_cast<std::size_t>(src) * size, size);
  }
}

void alltoallv(Comm& comm, int self, const void* send,
               std::span<const std::size_t> send_counts,
               std::span<const std::size_t> send_displs, void* recv,
               std::span<const std::size_t> recv_counts,
               std::span<const std::size_t> recv_displs) {
  const int p = comm.nranks();
  UNR_CHECK(static_cast<int>(send_counts.size()) == p &&
            static_cast<int>(recv_counts.size()) == p);
  const int tag = next_tag(comm, self, kOpAlltoall);
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);
  const auto s_self = static_cast<std::size_t>(self);
  std::memcpy(out + recv_displs[s_self], in + send_displs[s_self], send_counts[s_self]);
  for (int s = 1; s < p; ++s) {
    const auto dst = static_cast<std::size_t>((self + s) % p);
    const auto src = static_cast<std::size_t>((self - s + p) % p);
    comm.sendrecv(self, static_cast<int>(dst), tag, in + send_displs[dst],
                  send_counts[dst], static_cast<int>(src), tag, out + recv_displs[src],
                  recv_counts[src]);
  }
}

}  // namespace unr::runtime
