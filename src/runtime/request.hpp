// Nonblocking-operation handles for the MPI-like runtime.
#pragma once

#include <memory>

#include "common/units.hpp"
#include "sim/cond.hpp"

namespace unr::runtime {

/// Shared completion state of one nonblocking operation. Completed either
/// by an event handler (message arrival) or by the issuing actor.
struct Request {
  bool done = false;
  /// CPU time the waiter still owes (e.g. the receive-side eager copy);
  /// charged exactly once, by whoever waits.
  Time cpu_charge = 0;
  sim::Cond cond;

  void complete() {
    done = true;
    cond.notify_all();
  }
};

using RequestPtr = std::shared_ptr<Request>;

inline RequestPtr make_request() { return std::make_shared<Request>(); }

/// A request that is already complete (e.g. an eager send that buffered).
inline RequestPtr make_done_request() {
  auto r = make_request();
  r->done = true;
  return r;
}

}  // namespace unr::runtime
