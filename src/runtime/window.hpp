// MPI-RMA style windows with the three classical synchronization schemes:
// Fence (active, collective), PSCW (active, group), and Lock/Unlock
// (passive). These are the baselines UNR is compared against in Figure 4 of
// the paper — none of them lets the *target* observe the completion of an
// individual operation, which is exactly the gap UNR fills.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "runtime/collectives.hpp"
#include "runtime/comm.hpp"
#include "sim/cond.hpp"

namespace unr::runtime {

class Window {
 public:
  /// Collective: every rank calls create() with its local exposure buffer.
  /// All ranks obtain a handle to the same distributed window.
  static std::shared_ptr<Window> create(Comm& comm, int self, void* base,
                                        std::size_t size);

  /// Origin-side RMA. `target_disp` is a byte displacement into the
  /// target's exposure buffer.
  void put(int self, int target, std::size_t target_disp, const void* src,
           std::size_t size);
  void get(int self, int target, std::size_t target_disp, void* dst,
           std::size_t size);

  /// Block until all operations issued by `self` have completed at their
  /// targets (our fabric acks local completion only after remote placement).
  void flush(int self);

  // --- Fence synchronization (collective) ---
  void fence(int self);

  // --- PSCW (generalized active target) ---
  void post(int self, std::span<const int> origins);
  void start(int self, std::span<const int> targets);
  void complete(int self);  ///< closes the epoch opened by start()
  void wait(int self);      ///< closes the epoch opened by post()

  // --- Passive target ---
  void lock(int self, int target);
  void unlock(int self, int target);

  std::size_t size_of(int rank) const {
    return sizes_[static_cast<std::size_t>(rank)];
  }

 private:
  explicit Window(Comm& comm);

  struct RankState {
    // Cumulative counters: never reset, so late arrivals can't be confused
    // across epochs.
    std::uint64_t arrived = 0;        ///< puts delivered into my exposure buffer
    std::uint64_t expected = 0;       ///< cumulative arrivals all epochs owe me
    sim::Cond arrived_cond;

    std::uint64_t outstanding_local = 0;  ///< my puts/gets not yet completed
    sim::Cond local_cond;

    std::vector<std::uint64_t> sent_epoch;  ///< ops issued per target, this epoch

    std::vector<int> start_targets;  ///< PSCW: targets of my access epoch
    std::vector<int> post_origins;   ///< PSCW: origins of my exposure epoch

    // Passive-target lock manager state (this rank as the target).
    bool locked = false;
    int lock_holder = -1;
    std::deque<int> lock_waiters;
    bool lock_granted = false;  ///< this rank as origin, waiting for a grant
    sim::Cond lock_cond;
  };

  void bump_arrived(int target);
  void grant_next_locked(int target);

  Comm& comm_;
  std::vector<fabric::MrId> mrs_;
  std::vector<std::size_t> sizes_;
  std::vector<RankState> state_;
  int pscw_tag_base_ = 0;
};

}  // namespace unr::runtime
