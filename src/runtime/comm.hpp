// Two-sided communication over the simulated fabric.
//
// Implements the classical MPI point-to-point protocols of Figure 1 in the
// paper: Eager (one extra copy each side, sender completes on buffering) and
// Rendezvous (RTS/CTS handshake, then a zero-copy RDMA PUT straight into the
// posted receive buffer). Tag matching with wildcards, unexpected-message
// queue, and nonblocking requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/request.hpp"

namespace unr::runtime {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags with this bit set are reserved for the runtime itself (collectives,
/// window synchronization). User code must keep tags below it.
inline constexpr int kInternalTagBase = 1 << 28;

class Comm {
 public:
  explicit Comm(fabric::Fabric& fabric);

  int nranks() const { return fabric_.nranks(); }
  fabric::Fabric& fabric() { return fabric_; }

  // --- Blocking point-to-point (actor context only) ---
  void send(int self, int dst, int tag, const void* data, std::size_t size);
  void recv(int self, int src, int tag, void* buf, std::size_t size);
  void sendrecv(int self, int dst, int send_tag, const void* send_buf,
                std::size_t send_size, int src, int recv_tag, void* recv_buf,
                std::size_t recv_size);

  // --- Nonblocking ---
  RequestPtr isend(int self, int dst, int tag, const void* data, std::size_t size);
  RequestPtr irecv(int self, int src, int tag, void* buf, std::size_t size);
  void wait(int self, const RequestPtr& req);
  void wait_all(int self, std::span<const RequestPtr> reqs);
  bool test(const RequestPtr& req) const { return req->done; }

  /// Count of unexpected messages currently queued at `rank` (diagnostics).
  std::size_t unexpected_count(int rank) const;

  /// Per-rank collective sequence counters (used by collectives.cpp to keep
  /// internal tags unique; advances identically on every rank).
  std::vector<int>& coll_seq() { return coll_seq_; }

  /// Registry of collectively-created objects (windows). Ranks creating the
  /// n-th object all receive the same instance; see Window::create. The
  /// create-or-get step is the one place where ranks on different kernel
  /// shards touch shared runtime state, so it must run under object_mutex().
  std::vector<std::shared_ptr<void>>& object_registry() { return obj_registry_; }
  std::vector<int>& object_seq() { return obj_seq_; }
  std::mutex& object_mutex() { return obj_mu_; }

 private:
  struct PostedRecv {
    int src;  // may be kAnySource
    int tag;  // may be kAnyTag
    void* buf;
    std::size_t size;
    RequestPtr req;
  };

  struct UnexpectedMsg {
    int src;
    int tag;
    bool rendezvous;
    std::vector<std::byte> payload;  // eager: the data; rdv: empty
    std::size_t size;                // full message size
    std::uint64_t rdv_id;            // sender-side handle for the CTS
  };

  struct RankState {
    std::deque<PostedRecv> posted;
    std::deque<UnexpectedMsg> unexpected;
  };

  /// Sender-side state of one rendezvous in flight.
  struct RdvSend {
    const void* data;
    std::size_t size;
    RequestPtr req;
    int dst;
  };

  /// Receiver-side state of one rendezvous awaiting the sender's PUT.
  struct PendingRdvRecv {
    int rank;
    fabric::MrId mr;
    RequestPtr req;
  };

  static bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  void handle_eager(int dst, int src, const std::vector<std::byte>& payload);
  void handle_rts(int dst, int src, const std::vector<std::byte>& payload);
  void handle_cts(int dst, int src, const std::vector<std::byte>& payload);
  /// Issue the rendezvous CTS for a matched RTS (callable from both actor
  /// and event context).
  void accept_rts(int self, int src, std::uint64_t rdv_id, void* buf, std::size_t size,
                  const RequestPtr& req);

  fabric::Fabric& fabric_;
  /// Protocol counters (registry handles resolved once at construction).
  struct Metrics {
    obs::Counter eager_sends, rts_sends, cts_sends, unexpected_msgs;
  };
  Metrics m_;
  /// Interned trace ids; `on` caches the tracer's enabled flag.
  struct TraceIds {
    bool on = false;
    obs::StrId cat, rdv, eager, rts, k_src, k_dst, k_size, k_tag;
  };
  TraceIds tr_;
  std::vector<RankState> ranks_;
  std::vector<std::unordered_map<std::uint64_t, RdvSend>> rdv_sends_;  // per src rank
  /// Receiver-side rendezvous state, indexed by the receiving rank so every
  /// entry is only touched from that rank's kernel shard.
  std::vector<std::unordered_map<std::uint64_t, PendingRdvRecv>> pending_rdv_recvs_;
  /// Per-sender rendezvous sequence numbers; ids embed the sender rank so
  /// they stay globally unique without a shared counter. They travel in
  /// RTS/CTS headers only and never reach application-visible bytes.
  std::vector<std::uint64_t> rdv_seq_;
  std::vector<int> coll_seq_;
  std::vector<std::shared_ptr<void>> obj_registry_;
  std::vector<int> obj_seq_;
  std::mutex obj_mu_;
};

}  // namespace unr::runtime
