#include "runtime/world.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"

namespace unr::runtime {

namespace {

/// Minimum virtual delta of any cross-shard event post, derived from the
/// fabric model. Shards own whole simulated nodes, so only inter-node event
/// chains ever cross a shard:
///   * every wire crossing between distinct nodes costs at least
///     profile.wire_latency (NIC overhead, jitter and injected delays only
///     add to it) — this covers PUT/GET/AM arrivals and the ACK back;
///   * loss-recovery paths (NIC death, injected drops) re-post on the source
///     shard fault_detect_delay after the failed arrival, so when either
///     fault class is armed the recovery delay bounds the lookahead too.
Time shard_lookahead(const World::Config& cfg) {
  Time la = cfg.profile.wire_latency;
  if (cfg.faults.drop_rate > 0.0 || !cfg.faults.nic_faults.empty())
    la = std::min(la, cfg.fault_detect_delay);
  return la;
}

int resolve_shards(const World::Config& cfg) {
  int k = cfg.shards;
  if (k == 0) {
    if (const char* env = std::getenv("UNR_SHARDS")) k = std::atoi(env);
  }
  if (k <= 1) return 1;
  k = std::min(k, cfg.nodes);
  if (k <= 1) return 1;
  // The tracer binds the kernel's scalar clock and is not shard-aware;
  // tracing runs fall back to the bit-identical single-threaded kernel.
  if (cfg.telemetry.trace.enabled) return 1;
  if (shard_lookahead(cfg) == 0) return 1;
  return k;
}

}  // namespace

World::World(Config cfg) : cfg_(std::move(cfg)) {
  // First thing, before the Fabric (or anything else instrumented) exists:
  // components cache registry handles and the tracer's enabled flag at
  // construction time.
  kernel_.telemetry().configure(cfg_.telemetry);

  // Shard plan next, still before the Fabric: the fabric keeps per-shard
  // state (RNG streams, flight pools, FIFO tails) sized off the final count,
  // and its constructor posts the fault timeline into the kernel.
  const int k = resolve_shards(cfg_);
  if (k > 1) {
    sim::ShardPlan plan;
    plan.shards = k;
    plan.lookahead = shard_lookahead(cfg_);
    plan.node_shard.resize(static_cast<std::size_t>(cfg_.nodes));
    for (int n = 0; n < cfg_.nodes; ++n)
      plan.node_shard[static_cast<std::size_t>(n)] =
          static_cast<int>(static_cast<std::int64_t>(n) * k / cfg_.nodes);
    const int nranks = cfg_.nodes * cfg_.ranks_per_node;
    plan.actor_shard.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      plan.actor_shard[static_cast<std::size_t>(r)] =
          plan.node_shard[static_cast<std::size_t>(r / cfg_.ranks_per_node)];
    kernel_.configure_shards(std::move(plan));
  }

  fabric::Fabric::Config fc;
  fc.nodes = cfg_.nodes;
  fc.ranks_per_node = cfg_.ranks_per_node;
  fc.profile = cfg_.profile;
  fc.max_regions_per_rank = cfg_.max_regions_per_rank;
  fc.seed = cfg_.seed;
  fc.deterministic_routing = cfg_.deterministic_routing;
  fc.retry = cfg_.retry;
  fc.faults = cfg_.faults;
  fc.fault_detect_delay = cfg_.fault_detect_delay;
  fabric_ = std::make_unique<fabric::Fabric>(kernel_, fc);
  comm_ = std::make_unique<Comm>(*fabric_);
}

World::~World() = default;

void World::run(std::function<void(Rank&)> body) {
  kernel_.run(nranks(), [this, &body](int id) {
    Rank rank(*this, id);
    body(rank);
  });
}

}  // namespace unr::runtime
