#include "runtime/world.hpp"

#include "common/check.hpp"

namespace unr::runtime {

World::World(Config cfg) : cfg_(std::move(cfg)) {
  // First thing, before the Fabric (or anything else instrumented) exists:
  // components cache registry handles and the tracer's enabled flag at
  // construction time.
  kernel_.telemetry().configure(cfg_.telemetry);
  fabric::Fabric::Config fc;
  fc.nodes = cfg_.nodes;
  fc.ranks_per_node = cfg_.ranks_per_node;
  fc.profile = cfg_.profile;
  fc.max_regions_per_rank = cfg_.max_regions_per_rank;
  fc.seed = cfg_.seed;
  fc.deterministic_routing = cfg_.deterministic_routing;
  fc.retry = cfg_.retry;
  fc.faults = cfg_.faults;
  fc.fault_detect_delay = cfg_.fault_detect_delay;
  fabric_ = std::make_unique<fabric::Fabric>(kernel_, fc);
  comm_ = std::make_unique<Comm>(*fabric_);
}

World::~World() = default;

void World::run(std::function<void(Rank&)> body) {
  kernel_.run(nranks(), [this, &body](int id) {
    Rank rank(*this, id);
    body(rank);
  });
}

}  // namespace unr::runtime
