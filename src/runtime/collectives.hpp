// Collective operations over Comm.
//
// Textbook algorithms (dissemination barrier, binomial bcast/reduce,
// ring allgather, shifted-pairwise alltoall(v)). Collectives must be called
// by every rank in the same order; an internal per-rank sequence number
// keeps their tags from colliding with each other or with user traffic.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "runtime/comm.hpp"

namespace unr::runtime {

void barrier(Comm& comm, int self);

void bcast(Comm& comm, int self, int root, void* buf, std::size_t size);

/// Element-wise combine `count` doubles from all ranks; result everywhere.
void allreduce_sum(Comm& comm, int self, double* buf, std::size_t count);
void allreduce_max(Comm& comm, int self, double* buf, std::size_t count);

/// Gather `size` bytes from every rank into recv (nranks*size bytes) at root.
void gather(Comm& comm, int self, int root, const void* send, void* recv,
            std::size_t size);

/// All ranks end with everyone's block: recv holds nranks*size bytes.
void allgather(Comm& comm, int self, const void* send, void* recv, std::size_t size);

/// Personalized all-to-all: rank r sends send+d*size to rank d.
void alltoall(Comm& comm, int self, const void* send, void* recv, std::size_t size);

/// Vector all-to-all with per-peer counts and displacements (in bytes).
void alltoallv(Comm& comm, int self, const void* send,
               std::span<const std::size_t> send_counts,
               std::span<const std::size_t> send_displs, void* recv,
               std::span<const std::size_t> recv_counts,
               std::span<const std::size_t> recv_displs);

/// Generic reduction used by the typed wrappers; `combine(into, from)` folds
/// one full vector of `count` elements of `elem_size` bytes.
void allreduce_bytes(Comm& comm, int self, void* buf, std::size_t count,
                     std::size_t elem_size,
                     const std::function<void(void*, const void*)>& combine_vec);

}  // namespace unr::runtime
