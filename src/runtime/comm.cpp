#include "runtime/comm.hpp"

#include <cstring>

#include "common/check.hpp"

namespace unr::runtime {

namespace {

// AM channel ids used by the two-sided protocol. UNR channels use ids >= 16.
enum AmChannel : int { kChanEager = 0, kChanRts = 1, kChanCts = 2 };

struct EagerHeader {
  std::int32_t tag;
  std::uint64_t size;
};

struct RtsHeader {
  std::int32_t tag;
  std::uint64_t size;
  std::uint64_t rdv_id;
};

struct CtsHeader {
  std::uint64_t rdv_id;
  std::uint32_t mr;
};

// Payload buffers come from the fabric's AM arena: the fabric recycles them
// after the handler runs, so the eager path allocates nothing at steady state.
template <typename H>
std::vector<std::byte> pack(fabric::Fabric& f, const H& h, const void* data = nullptr,
                            std::size_t n = 0) {
  std::vector<std::byte> v = f.acquire_am_buffer(sizeof(H) + n);
  std::memcpy(v.data(), &h, sizeof(H));
  if (n > 0) std::memcpy(v.data() + sizeof(H), data, n);
  return v;
}

template <typename H>
H unpack(const std::vector<std::byte>& v) {
  UNR_CHECK(v.size() >= sizeof(H));
  H h;
  std::memcpy(&h, v.data(), sizeof(H));
  return h;
}

void charge(fabric::Fabric& f, Time t) {
  // Only actors have a clock to charge; event handlers model NIC/firmware
  // work that is already accounted in the wire model.
  if (sim::Kernel::current_actor_id() >= 0) f.kernel().sleep_for(t);
}

}  // namespace

Comm::Comm(fabric::Fabric& fabric) : fabric_(fabric) {
  obs::Telemetry& tel = fabric_.kernel().telemetry();
  m_.eager_sends = tel.registry().counter("comm.eager_sends");
  m_.rts_sends = tel.registry().counter("comm.rts_sends");
  m_.cts_sends = tel.registry().counter("comm.cts_sends");
  m_.unexpected_msgs = tel.registry().counter("comm.unexpected_msgs");
  tr_.on = tel.tracer().enabled();
  tr_.cat = tel.tracer().intern("rdv");
  tr_.rdv = tel.tracer().intern("rendezvous");
  tr_.eager = tel.tracer().intern("eager");
  tr_.rts = tel.tracer().intern("rts");
  tr_.k_src = tel.tracer().intern("src");
  tr_.k_dst = tel.tracer().intern("dst");
  tr_.k_size = tel.tracer().intern("size");
  tr_.k_tag = tel.tracer().intern("tag");
  ranks_.resize(static_cast<std::size_t>(fabric_.nranks()));
  rdv_sends_.resize(static_cast<std::size_t>(fabric_.nranks()));
  pending_rdv_recvs_.resize(static_cast<std::size_t>(fabric_.nranks()));
  rdv_seq_.assign(static_cast<std::size_t>(fabric_.nranks()), 0);
  coll_seq_.assign(static_cast<std::size_t>(fabric_.nranks()), 0);
  obj_seq_.assign(static_cast<std::size_t>(fabric_.nranks()), 0);
  for (int r = 0; r < fabric_.nranks(); ++r) {
    fabric_.set_am_handler(r, kChanEager, [this, r](int src, const auto& p) {
      handle_eager(r, src, p);
    });
    fabric_.set_am_handler(r, kChanRts, [this, r](int src, const auto& p) {
      handle_rts(r, src, p);
    });
    fabric_.set_am_handler(r, kChanCts, [this, r](int src, const auto& p) {
      handle_cts(r, src, p);
    });
  }
}

RequestPtr Comm::isend(int self, int dst, int tag, const void* data, std::size_t size) {
  UNR_CHECK(dst >= 0 && dst < nranks());
  const auto& prof = fabric_.profile();
  charge(fabric_, prof.sw_overhead);

  if (size <= prof.eager_threshold) {
    // Eager: pack into the wire message (the sender-side extra copy of
    // Fig. 1a) and complete immediately — the data is buffered.
    charge(fabric_, prof.memcpy_time(size));
    m_.eager_sends.inc();
    if (tr_.on)
      fabric_.kernel().telemetry().tracer().instant(
          fabric_.node_of(self), self, tr_.cat, tr_.eager,
          {{tr_.k_dst, dst}, {tr_.k_size, static_cast<std::int64_t>(size)}});
    EagerHeader h{tag, size};
    fabric_.send_am(self, dst, kChanEager, pack(fabric_, h, data, size), /*nic*/ -1,
                    /*ordered=*/true);
    return make_done_request();
  }

  // Rendezvous: RTS now; the PUT happens when the CTS comes back.
  auto req = make_request();
  const std::uint64_t id = ((static_cast<std::uint64_t>(self) + 1) << 40) |
                           ++rdv_seq_[static_cast<std::size_t>(self)];
  rdv_sends_[static_cast<std::size_t>(self)][id] = RdvSend{data, size, req, dst};
  m_.rts_sends.inc();
  // The handshake span covers RTS departure to CTS arrival back at the
  // sender (handle_cts); the data PUT itself is traced by the fabric.
  if (tr_.on)
    fabric_.kernel().telemetry().tracer().async_begin(
        fabric_.node_of(self), self, tr_.cat, tr_.rdv, id,
        {{tr_.k_dst, dst}, {tr_.k_size, static_cast<std::int64_t>(size)}});
  RtsHeader h{tag, size, id};
  fabric_.send_am(self, dst, kChanRts, pack(fabric_, h), -1, /*ordered=*/true);
  return req;
}

RequestPtr Comm::irecv(int self, int src, int tag, void* buf, std::size_t size) {
  const auto& prof = fabric_.profile();
  charge(fabric_, prof.sw_overhead);
  auto& st = ranks_[static_cast<std::size_t>(self)];

  // Check the unexpected queue first.
  for (auto it = st.unexpected.begin(); it != st.unexpected.end(); ++it) {
    if (!matches(src, tag, it->src, it->tag)) continue;
    UNR_CHECK_MSG(it->size <= size, "receive buffer too small: message of "
                                        << it->size << " bytes into " << size);
    auto req = make_request();
    if (it->rendezvous) {
      accept_rts(self, it->src, it->rdv_id, buf, it->size, req);
    } else {
      if (it->size > 0) std::memcpy(buf, it->payload.data(), it->size);
      charge(fabric_, prof.memcpy_time(it->size));
      req->done = true;
    }
    st.unexpected.erase(it);
    return req;
  }

  auto req = make_request();
  st.posted.push_back(PostedRecv{src, tag, buf, size, req});
  return req;
}

void Comm::wait(int self, const RequestPtr& req) {
  (void)self;
  req->cond.wait([&] { return req->done; });
  if (req->cpu_charge > 0) {
    charge(fabric_, req->cpu_charge);
    req->cpu_charge = 0;
  }
}

void Comm::wait_all(int self, std::span<const RequestPtr> reqs) {
  for (const auto& r : reqs) wait(self, r);
}

void Comm::send(int self, int dst, int tag, const void* data, std::size_t size) {
  wait(self, isend(self, dst, tag, data, size));
}

void Comm::recv(int self, int src, int tag, void* buf, std::size_t size) {
  wait(self, irecv(self, src, tag, buf, size));
}

void Comm::sendrecv(int self, int dst, int send_tag, const void* send_buf,
                    std::size_t send_size, int src, int recv_tag, void* recv_buf,
                    std::size_t recv_size) {
  RequestPtr rr = irecv(self, src, recv_tag, recv_buf, recv_size);
  RequestPtr sr = isend(self, dst, send_tag, send_buf, send_size);
  wait(self, sr);
  wait(self, rr);
}

void Comm::handle_eager(int dst, int src, const std::vector<std::byte>& payload) {
  const auto h = unpack<EagerHeader>(payload);
  auto& st = ranks_[static_cast<std::size_t>(dst)];
  for (auto it = st.posted.begin(); it != st.posted.end(); ++it) {
    if (!matches(it->src, it->tag, src, h.tag)) continue;
    UNR_CHECK_MSG(h.size <= it->size, "receive buffer too small: message of "
                                          << h.size << " bytes into " << it->size);
    if (h.size > 0)  // zero-byte recv may legally post a null buffer
      std::memcpy(it->buf, payload.data() + sizeof(EagerHeader), h.size);
    it->req->cpu_charge += fabric_.profile().memcpy_time(h.size);
    it->req->complete();
    st.posted.erase(it);
    return;
  }
  m_.unexpected_msgs.inc();
  UnexpectedMsg m;
  m.src = src;
  m.tag = h.tag;
  m.rendezvous = false;
  m.size = h.size;
  m.payload.assign(payload.begin() + sizeof(EagerHeader), payload.end());
  st.unexpected.push_back(std::move(m));
}

void Comm::handle_rts(int dst, int src, const std::vector<std::byte>& payload) {
  const auto h = unpack<RtsHeader>(payload);
  if (tr_.on)
    fabric_.kernel().telemetry().tracer().instant(
        fabric_.node_of(dst), dst, tr_.cat, tr_.rts,
        {{tr_.k_src, src}, {tr_.k_size, static_cast<std::int64_t>(h.size)}});
  auto& st = ranks_[static_cast<std::size_t>(dst)];
  for (auto it = st.posted.begin(); it != st.posted.end(); ++it) {
    if (!matches(it->src, it->tag, src, h.tag)) continue;
    UNR_CHECK_MSG(h.size <= it->size, "receive buffer too small: message of "
                                          << h.size << " bytes into " << it->size);
    PostedRecv pr = *it;
    st.posted.erase(it);
    accept_rts(dst, src, h.rdv_id, pr.buf, h.size, pr.req);
    return;
  }
  UnexpectedMsg m;
  m.src = src;
  m.tag = h.tag;
  m.rendezvous = true;
  m.size = h.size;
  m.rdv_id = h.rdv_id;
  m_.unexpected_msgs.inc();
  st.unexpected.push_back(std::move(m));
}

void Comm::accept_rts(int self, int src, std::uint64_t rdv_id, void* buf,
                      std::size_t size, const RequestPtr& req) {
  // Expose the receive buffer for the sender's zero-copy PUT. The CTS
  // carries the registration; delivery of the PUT completes the request
  // (handled in handle_cts on the sender, which owns the put descriptor).
  const fabric::MrId mr = fabric_.memory().register_region(self, buf, size == 0 ? 1 : size);
  // Remember how to finish this receive when the data lands. Keyed by the
  // receiving rank: the PUT delivers on this rank's shard, so the map is
  // never touched cross-shard.
  pending_rdv_recvs_[static_cast<std::size_t>(self)][rdv_id] =
      PendingRdvRecv{self, mr, req};
  m_.cts_sends.inc();
  CtsHeader h{rdv_id, mr};
  fabric_.send_am(self, src, kChanCts, pack(fabric_, h));
}

void Comm::handle_cts(int dst, int src, const std::vector<std::byte>& payload) {
  // `dst` is the original sender; `src` the receiver granting the CTS.
  const auto h = unpack<CtsHeader>(payload);
  auto& pending = rdv_sends_[static_cast<std::size_t>(dst)];
  auto it = pending.find(h.rdv_id);
  UNR_CHECK_MSG(it != pending.end(), "CTS for unknown rendezvous id " << h.rdv_id);
  RdvSend rs = it->second;
  pending.erase(it);
  // CTS back at the original sender: the handshake opened in isend is done.
  if (tr_.on)
    fabric_.kernel().telemetry().tracer().async_end(fabric_.node_of(dst), dst,
                                                    tr_.cat, tr_.rdv, h.rdv_id);

  fabric::Fabric::PutArgs put;
  put.src_rank = dst;
  put.src = rs.data;
  put.dst = fabric::MemRef{src, h.mr, 0};
  put.size = rs.size;
  const std::uint64_t rdv_id = h.rdv_id;
  const int receiver = src;  // delivery runs on the receiver's shard
  put.on_delivered = [this, rdv_id, receiver] {
    auto& pend = pending_rdv_recvs_[static_cast<std::size_t>(receiver)];
    auto itp = pend.find(rdv_id);
    UNR_CHECK(itp != pend.end());
    PendingRdvRecv pr = itp->second;
    pend.erase(itp);
    fabric_.memory().deregister_region(pr.rank, pr.mr);
    pr.req->complete();
  };
  RequestPtr send_req = rs.req;
  put.on_local_complete = [send_req] { send_req->complete(); };
  fabric_.put(std::move(put));
}

std::size_t Comm::unexpected_count(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].unexpected.size();
}

}  // namespace unr::runtime
