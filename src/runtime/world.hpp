// World: one simulated machine + runtime, running N ranks to completion.
//
// This is the reproduction's stand-in for `mpirun`: it wires the sim kernel,
// the fabric and the two-sided runtime together and exposes a per-rank
// context object with MPI-flavoured conveniences.
#pragma once

#include <functional>
#include <memory>

#include "common/profile.hpp"
#include "fabric/fabric.hpp"
#include "obs/telemetry.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm.hpp"
#include "sim/kernel.hpp"

namespace unr::runtime {

class Rank;

class World {
 public:
  struct Config {
    int nodes = 2;
    int ranks_per_node = 1;
    unr::SystemProfile profile = unr::make_hpc_ib();
    std::uint64_t seed = 1;
    std::size_t max_regions_per_rank = 0;
    bool deterministic_routing = false;
    fabric::Fabric::RetryPolicy retry;   ///< NACK backoff + attempt cap
    fabric::FaultConfig faults;          ///< fault-injection schedule
    Time fault_detect_delay = 10 * kUs;  ///< loss-detection timeout
    /// Kernel worker shards for conservative-lookahead parallel simulation.
    /// 0 = auto (the UNR_SHARDS environment variable, else 1); 1 = the
    /// classic single-threaded kernel, bit-identical to the golden pins.
    /// Clamped to the node count; forced to 1 when tracing is enabled (the
    /// tracer binds the scalar virtual clock) or when the derived lookahead
    /// is zero. Simulated nodes are partitioned contiguously, so intra-node
    /// traffic never crosses a shard.
    int shards = 0;
    /// Observability: metrics registry + virtual-time tracer + output files.
    /// Applied to the kernel BEFORE any instrumented component is built, so
    /// cached handles/flags see the final configuration.
    obs::TelemetryConfig telemetry;
  };

  explicit World(Config cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int nranks() const { return fabric_->nranks(); }

  /// Worker shards the kernel actually runs with (after auto-resolution and
  /// the safety clamps described at Config::shards).
  int shards() const { return kernel_.shard_count(); }

  /// Run `body` on every rank; returns when all ranks finish. May be called
  /// once per World.
  void run(std::function<void(Rank&)> body);

  /// Virtual time at which the last rank finished.
  Time elapsed() const { return kernel_.end_time(); }

  sim::Kernel& kernel() { return kernel_; }
  fabric::Fabric& fabric() { return *fabric_; }
  Comm& comm() { return *comm_; }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  sim::Kernel kernel_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<Comm> comm_;
};

/// Per-rank context handed to the body function. Thin forwarding layer over
/// Comm/Fabric that fills in the rank id.
class Rank {
 public:
  Rank(World& world, int id) : world_(world), id_(id) {}

  int id() const { return id_; }
  int nranks() const { return world_.nranks(); }
  int node_id() const { return world_.fabric().node_of(id_); }
  World& world() { return world_; }
  Comm& comm() { return world_.comm(); }
  fabric::Fabric& fabric() { return world_.fabric(); }
  sim::Kernel& kernel() { return world_.kernel(); }
  Time now() const { return world_.kernel().now(); }

  // --- Point-to-point ---
  void send(int dst, int tag, const void* p, std::size_t n) {
    comm().send(id_, dst, tag, p, n);
  }
  void recv(int src, int tag, void* p, std::size_t n) {
    comm().recv(id_, src, tag, p, n);
  }
  RequestPtr isend(int dst, int tag, const void* p, std::size_t n) {
    return comm().isend(id_, dst, tag, p, n);
  }
  RequestPtr irecv(int src, int tag, void* p, std::size_t n) {
    return comm().irecv(id_, src, tag, p, n);
  }
  void wait(const RequestPtr& r) { comm().wait(id_, r); }
  void wait_all(std::span<const RequestPtr> rs) { comm().wait_all(id_, rs); }
  void sendrecv(int dst, int stag, const void* sp, std::size_t sn, int src, int rtag,
                void* rp, std::size_t rn) {
    comm().sendrecv(id_, dst, stag, sp, sn, src, rtag, rp, rn);
  }

  // --- Collectives ---
  void barrier() { runtime::barrier(comm(), id_); }
  void bcast(int root, void* p, std::size_t n) { runtime::bcast(comm(), id_, root, p, n); }
  void allreduce_sum(double* p, std::size_t count) {
    runtime::allreduce_sum(comm(), id_, p, count);
  }
  void allgather(const void* s, void* r, std::size_t n) {
    runtime::allgather(comm(), id_, s, r, n);
  }
  void alltoall(const void* s, void* r, std::size_t n) {
    runtime::alltoall(comm(), id_, s, r, n);
  }

  // --- Compute model ---
  /// Charge `single_core_work` ns of work executed with `threads` threads on
  /// this rank's node (the node may inflate it under oversubscription).
  void compute(Time single_core_work, int threads = 1) {
    world_.fabric().node_of_rank(id_).compute(single_core_work, threads);
  }

 private:
  World& world_;
  int id_;
};

}  // namespace unr::runtime
