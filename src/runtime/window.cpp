#include "runtime/window.hpp"

#include <cstring>
#include <mutex>

#include "common/check.hpp"

namespace unr::runtime {

namespace {

// AM channel for the passive-target lock manager: one per window instance,
// starting above the point-to-point protocol channels.
constexpr int kWinAmBase = 8;

enum LockMsg : std::uint8_t { kLockReq = 1, kLockGrant = 2, kUnlockMsg = 3 };

// PSCW control tags (see collectives.cpp for the internal tag layout; the
// opcodes 7 and 8 are reserved for windows).
int pscw_post_tag(int win_index) { return kInternalTagBase | (win_index << 4) | 7; }
int pscw_complete_tag(int win_index) { return kInternalTagBase | (win_index << 4) | 8; }

}  // namespace

Window::Window(Comm& comm) : comm_(comm) {
  const auto n = static_cast<std::size_t>(comm.nranks());
  mrs_.assign(n, fabric::kInvalidMr);
  sizes_.assign(n, 0);
  state_ = std::vector<RankState>(n);
  for (auto& st : state_)
    st.sent_epoch.assign(n, 0);
}

std::shared_ptr<Window> Window::create(Comm& comm, int self, void* base,
                                       std::size_t size) {
  auto& registry = comm.object_registry();
  const auto index =
      static_cast<std::size_t>(comm.object_seq()[static_cast<std::size_t>(self)]++);
  std::shared_ptr<Window> win;
  {
    // Ranks on different kernel shards may reach the create-or-get step
    // concurrently; the first to arrive constructs the shared instance.
    std::lock_guard<std::mutex> lk(comm.object_mutex());
    if (index == registry.size()) {
      auto fresh = std::shared_ptr<Window>(new Window(comm));
      fresh->pscw_tag_base_ = static_cast<int>(index);
      registry.push_back(fresh);
    }
    UNR_CHECK_MSG(index < registry.size(),
                  "collective Window::create called out of order");
    win = std::static_pointer_cast<Window>(registry[index]);
  }

  win->mrs_[static_cast<std::size_t>(self)] =
      comm.fabric().memory().register_region(self, base, size == 0 ? 1 : size);
  win->sizes_[static_cast<std::size_t>(self)] = size;

  // The window's lock manager listens on a dedicated AM channel.
  const int chan = kWinAmBase + static_cast<int>(index);
  Window* raw = win.get();
  comm.fabric().set_am_handler(self, chan, [raw, self](int src, const auto& payload) {
    UNR_CHECK(payload.size() == 1);
    auto& st = raw->state_[static_cast<std::size_t>(self)];
    switch (static_cast<LockMsg>(std::to_integer<std::uint8_t>(payload[0]))) {
      case kLockReq:
        if (!st.locked) {
          st.locked = true;
          st.lock_holder = src;
          raw->comm_.fabric().send_am(self, src,
                                      kWinAmBase + raw->pscw_tag_base_ + (1 << 20),
                                      {std::byte{kLockGrant}});
        } else {
          st.lock_waiters.push_back(src);
        }
        break;
      case kUnlockMsg:
        UNR_CHECK_MSG(st.locked && st.lock_holder == src,
                      "unlock from rank " << src << " which does not hold the lock");
        st.locked = false;
        st.lock_holder = -1;
        raw->grant_next_locked(self);
        break;
      case kLockGrant:
        UNR_CHECK_MSG(false, "grant on the request channel");
    }
  });
  // Grants arrive on a separate channel so that a rank acting as both origin
  // and target never confuses the two roles.
  comm.fabric().set_am_handler(
      self, kWinAmBase + static_cast<int>(index) + (1 << 20),
      [raw, self](int /*src*/, const auto& payload) {
        UNR_CHECK(payload.size() == 1 &&
                  std::to_integer<std::uint8_t>(payload[0]) == kLockGrant);
        auto& st = raw->state_[static_cast<std::size_t>(self)];
        st.lock_granted = true;
        st.lock_cond.notify_all();
      });

  barrier(comm, self);  // every rank attached before anyone issues RMA
  return win;
}

void Window::grant_next_locked(int target) {
  auto& st = state_[static_cast<std::size_t>(target)];
  if (st.locked || st.lock_waiters.empty()) return;
  const int next = st.lock_waiters.front();
  st.lock_waiters.pop_front();
  st.locked = true;
  st.lock_holder = next;
  comm_.fabric().send_am(target, next, kWinAmBase + pscw_tag_base_ + (1 << 20),
                         {std::byte{kLockGrant}});
}

void Window::bump_arrived(int target) {
  auto& st = state_[static_cast<std::size_t>(target)];
  st.arrived++;
  st.arrived_cond.notify_all();
}

void Window::put(int self, int target, std::size_t target_disp, const void* src,
                 std::size_t size) {
  auto& st = state_[static_cast<std::size_t>(self)];
  comm_.fabric().kernel().sleep_for(comm_.fabric().profile().rma_post_overhead);
  st.sent_epoch[static_cast<std::size_t>(target)]++;
  st.outstanding_local++;

  fabric::Fabric::PutArgs a;
  a.src_rank = self;
  a.src = src;
  a.dst = fabric::MemRef{target, mrs_[static_cast<std::size_t>(target)], target_disp};
  a.size = size;
  Window* w = this;
  a.on_delivered = [w, target] { w->bump_arrived(target); };
  a.on_local_complete = [w, self] {
    auto& s = w->state_[static_cast<std::size_t>(self)];
    UNR_CHECK(s.outstanding_local > 0);
    s.outstanding_local--;
    s.local_cond.notify_all();
  };
  comm_.fabric().put(std::move(a));
}

void Window::get(int self, int target, std::size_t target_disp, void* dst,
                 std::size_t size) {
  auto& st = state_[static_cast<std::size_t>(self)];
  comm_.fabric().kernel().sleep_for(comm_.fabric().profile().rma_post_overhead);
  st.outstanding_local++;

  fabric::Fabric::GetArgs a;
  a.src_rank = self;
  a.dst = dst;
  a.src = fabric::MemRef{target, mrs_[static_cast<std::size_t>(target)], target_disp};
  a.size = size;
  Window* w = this;
  a.on_complete = [w, self] {
    auto& s = w->state_[static_cast<std::size_t>(self)];
    UNR_CHECK(s.outstanding_local > 0);
    s.outstanding_local--;
    s.local_cond.notify_all();
  };
  comm_.fabric().get(std::move(a));
}

void Window::flush(int self) {
  auto& st = state_[static_cast<std::size_t>(self)];
  st.local_cond.wait([&] { return st.outstanding_local == 0; });
}

void Window::fence(int self) {
  const int p = comm_.nranks();
  auto& st = state_[static_cast<std::size_t>(self)];
  flush(self);

  // Everyone learns how many puts were aimed at it this epoch.
  std::vector<std::uint64_t> sent = st.sent_epoch;
  std::vector<std::uint64_t> owed(static_cast<std::size_t>(p));
  alltoall(comm_, self, sent.data(), owed.data(), sizeof(std::uint64_t));
  std::fill(st.sent_epoch.begin(), st.sent_epoch.end(), 0);

  std::uint64_t total = 0;
  for (auto v : owed) total += v;
  st.expected += total;
  st.arrived_cond.wait([&] { return st.arrived >= st.expected; });
}

void Window::post(int self, std::span<const int> origins) {
  auto& st = state_[static_cast<std::size_t>(self)];
  UNR_CHECK_MSG(st.post_origins.empty(), "nested exposure epoch");
  st.post_origins.assign(origins.begin(), origins.end());
  char token = 0;
  for (int o : origins)
    comm_.send(self, o, pscw_post_tag(pscw_tag_base_), &token, 1);
}

void Window::start(int self, std::span<const int> targets) {
  auto& st = state_[static_cast<std::size_t>(self)];
  UNR_CHECK_MSG(st.start_targets.empty(), "nested access epoch");
  st.start_targets.assign(targets.begin(), targets.end());
  char token = 0;
  for (int t : targets)
    comm_.recv(self, t, pscw_post_tag(pscw_tag_base_), &token, 1);
}

void Window::complete(int self) {
  auto& st = state_[static_cast<std::size_t>(self)];
  flush(self);
  for (int t : st.start_targets) {
    const std::uint64_t count = st.sent_epoch[static_cast<std::size_t>(t)];
    st.sent_epoch[static_cast<std::size_t>(t)] = 0;
    comm_.send(self, t, pscw_complete_tag(pscw_tag_base_), &count, sizeof count);
  }
  st.start_targets.clear();
}

void Window::wait(int self) {
  auto& st = state_[static_cast<std::size_t>(self)];
  std::uint64_t total = 0;
  for (int o : st.post_origins) {
    std::uint64_t count = 0;
    comm_.recv(self, o, pscw_complete_tag(pscw_tag_base_), &count, sizeof count);
    total += count;
  }
  st.post_origins.clear();
  st.expected += total;
  st.arrived_cond.wait([&] { return st.arrived >= st.expected; });
}

void Window::lock(int self, int target) {
  auto& st = state_[static_cast<std::size_t>(self)];
  comm_.fabric().send_am(self, target, kWinAmBase + pscw_tag_base_,
                         {std::byte{kLockReq}});
  st.lock_cond.wait([&] { return st.lock_granted; });
  st.lock_granted = false;
}

void Window::unlock(int self, int target) {
  // Our fabric's local completion implies remote placement, so a local
  // flush gives passive-target completion semantics.
  flush(self);
  comm_.fabric().send_am(self, target, kWinAmBase + pscw_tag_base_,
                         {std::byte{kUnlockMsg}});
}

}  // namespace unr::runtime
