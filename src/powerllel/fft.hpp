// Radix-2 complex FFT used by the Pressure Poisson solver.
//
// PowerLLEL solves the PPE with an FFT-based direct method: forward FFT
// along the two periodic directions, a tridiagonal solve along the wall
// direction, inverse FFTs back. The solver only needs power-of-two sizes,
// batched 1-D transforms, and the modified wavenumbers of the second-order
// finite-difference Laplacian.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace unr::powerllel {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT. n must be a power of two.
/// `inverse` applies the conjugate transform and scales by 1/n.
void fft_inplace(Complex* data, std::size_t n, bool inverse);

/// Batched transform: `batch` contiguous lines of length n each.
void fft_batch(Complex* data, std::size_t n, std::size_t batch, bool inverse);

/// Strided batched transform: line i starts at data + i*line_stride and its
/// elements are `elem_stride` apart (for transforming the y direction of an
/// (x, y) plane stored x-fastest).
void fft_strided(Complex* data, std::size_t n, std::size_t elem_stride,
                 std::size_t batch, std::size_t line_stride, bool inverse);

/// Modified squared wavenumber of mode k for the 2nd-order central Laplacian
/// on n points with spacing h: (2 - 2cos(2*pi*k/n)) / h^2.
double laplacian_eigenvalue(std::size_t k, std::size_t n, double h);

bool is_power_of_two(std::size_t n);

/// Naive O(n^2) DFT for validation.
void dft_reference(const Complex* in, Complex* out, std::size_t n, bool inverse);

}  // namespace unr::powerllel
