// Tridiagonal solvers for the Pressure Poisson Equation's wall direction.
//
// Sequential Thomas for reference and for the per-block local solves, plus
// a distributed block solver over the z-decomposition in the spirit of the
// Parallel Diagonal Dominant (PDD) algorithm PowerLLEL uses:
//
//   * kPddApprox    — the classic PDD: each block solves three local systems
//                     (w, v, u), neighbors exchange one interface pair, and
//                     the off-interface couplings are dropped. One message
//                     down + one up, fully parallel; the approximation error
//                     decays with diagonal dominance ^ block-size.
//   * kReducedExact — same local solves, but the interface chain is
//                     eliminated exactly with a forward sweep (down->up) and
//                     resolved with a backward sweep (up->down). Same
//                     neighbor-only communication pattern (the paper's
//                     Pipeline 2: "transmission to the bottom neighbor and a
//                     transmission to the top neighbor"), exact for any
//                     system; the sweeps serialize across the column group.
//
// Communication is injected through NeighborPort so the same solver runs
// over the MPI-like runtime or over UNR notified puts.
#pragma once

#include <complex>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace unr::powerllel {

using Complex = std::complex<double>;

/// Per-line coefficients: constant sub/super diagonals, per-row diagonal
/// values supplied by the caller (global rows; boundary rows differ).
struct TridiagLine {
  double a = 0.0;  ///< sub-diagonal (coupling to row i-1)
  double c = 0.0;  ///< super-diagonal (coupling to row i+1)
};

/// Solve tridiag(a, b[i], c) x = d in place. b has n entries; a/c constant.
/// The matrix must be non-singular.
void thomas_inplace(double a, std::span<const double> b, double c,
                    std::span<Complex> d);

/// Real-valued variant used for the PDD correction vectors.
void thomas_inplace_real(double a, std::span<const double> b, double c,
                         std::span<double> d);

/// Transport-agnostic neighbor exchange within an ordered 1-D group.
/// "down" = towards index 0 (bottom), "up" = towards index P-1 (top).
/// recv_* block until data from that neighbor is available.
struct NeighborPort {
  std::function<void(const void* data, std::size_t bytes)> send_down;
  std::function<void(const void* data, std::size_t bytes)> send_up;
  std::function<void(void* data, std::size_t bytes)> recv_down;  ///< from below
  std::function<void(void* data, std::size_t bytes)> recv_up;    ///< from above
};

enum class TridiagMethod { kReducedExact, kPddApprox };

/// Distributed batched tridiagonal solver.
///
/// The group has `nprocs` blocks; this process is block `my_index` and owns
/// `n_local` contiguous rows of each line's `n_global`-row system.
class DistTridiag {
 public:
  DistTridiag(int my_index, int nprocs, std::size_t n_local);

  /// Solve `nlines` independent systems in place.
  ///   rhs:   [line][local row], line stride = n_local
  ///   diag:  per line, the LOCAL diagonal entries ([line][local row])
  ///   lines: per-line constant off-diagonals
  /// All blocks must call with the same nlines and method.
  void solve(std::span<const TridiagLine> lines, std::span<const double> diag,
             Complex* rhs, std::size_t nlines, const NeighborPort& port,
             TridiagMethod method);

  int my_index() const { return my_index_; }
  int nprocs() const { return nprocs_; }
  std::size_t n_local() const { return n_local_; }

 private:
  void solve_exact(std::span<const TridiagLine> lines, std::span<const double> diag,
                   Complex* rhs, std::size_t nlines, const NeighborPort& port);
  void solve_pdd(std::span<const TridiagLine> lines, std::span<const double> diag,
                 Complex* rhs, std::size_t nlines, const NeighborPort& port);
  /// Local Thomas solves for w (in rhs), v and u correction vectors.
  void local_solves(std::span<const TridiagLine> lines, std::span<const double> diag,
                    Complex* rhs, std::size_t nlines, std::vector<double>& v,
                    std::vector<double>& u);

  int my_index_;
  int nprocs_;
  std::size_t n_local_;
};

/// Single-rank reference: solve the full n-row system for each line (used by
/// tests to validate the distributed variants).
void reference_solve(std::span<const TridiagLine> lines, std::span<const double> diag,
                     Complex* rhs, std::size_t nlines, std::size_t n);

}  // namespace unr::powerllel
