// 2-D pencil decomposition (PowerLLEL's layout).
//
// The global (nx, ny, nz) grid is split over a pr x pc process grid:
//   x-pencil: (nx,      ny/pr,  nz/pc)   — velocity update, FFT in x
//   y-pencil: (nx/pr,   ny,     nz/pc)   — FFT in y
// z is always split over pc: the tridiagonal solver runs along z across the
// "column group". Transposes x<->y happen within a "row group" (the pr ranks
// sharing a z slab).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace unr::powerllel {

struct Decomp {
  std::size_t nx = 0, ny = 0, nz = 0;
  int pr = 1, pc = 1;
  int self = 0;

  void validate() const {
    UNR_CHECK_MSG(nx % static_cast<std::size_t>(pr) == 0 &&
                      ny % static_cast<std::size_t>(pr) == 0,
                  "nx and ny must divide by pr");
    UNR_CHECK_MSG(nz % static_cast<std::size_t>(pc) == 0, "nz must divide by pc");
    UNR_CHECK(self >= 0 && self < pr * pc);
    UNR_CHECK(nyl() >= 1 && nzl() >= 2 && nxl() >= 1);
  }

  int row() const { return self / pc; }  ///< index along pr (y split in x-pencil)
  int col() const { return self % pc; }  ///< index along pc (z split)
  int rank_of(int r, int c) const { return r * pc + c; }

  // Local extents.
  std::size_t nyl() const { return ny / static_cast<std::size_t>(pr); }
  std::size_t nzl() const { return nz / static_cast<std::size_t>(pc); }
  std::size_t nxl() const { return nx / static_cast<std::size_t>(pr); }
  // Global offsets of the local block.
  std::size_t y0() const { return static_cast<std::size_t>(row()) * nyl(); }
  std::size_t z0() const { return static_cast<std::size_t>(col()) * nzl(); }
  std::size_t x0() const { return static_cast<std::size_t>(row()) * nxl(); }

  /// Neighbor in +y/-y (periodic ring over pr). May be self when pr == 1.
  int y_neighbor(int dir) const {
    const int r = (row() + (dir > 0 ? 1 : pr - 1)) % pr;
    return rank_of(r, col());
  }
  /// Neighbor in +z/-z; -1 at the walls (z is never periodic here).
  int z_neighbor(int dir) const {
    const int c = col() + (dir > 0 ? 1 : -1);
    if (c < 0 || c >= pc) return -1;
    return rank_of(row(), c);
  }

  /// Transpose partners: ranks sharing my z slab, ordered by row.
  std::vector<int> row_group() const {
    std::vector<int> g;
    g.reserve(static_cast<std::size_t>(pr));
    for (int r = 0; r < pr; ++r) g.push_back(rank_of(r, col()));
    return g;
  }
  /// Tridiagonal partners: ranks sharing my (x-pencil) y slab, ordered by
  /// col — i.e. bottom (z=0) to top.
  std::vector<int> col_group() const {
    std::vector<int> g;
    g.reserve(static_cast<std::size_t>(pc));
    for (int c = 0; c < pc; ++c) g.push_back(rank_of(row(), c));
    return g;
  }

  bool at_bottom_wall() const { return col() == 0; }
  bool at_top_wall() const { return col() == pc - 1; }
};

}  // namespace unr::powerllel
