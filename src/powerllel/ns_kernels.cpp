#include "powerllel/ns_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace unr::powerllel {

void apply_velocity_z_bc(const Decomp& d, ZBc bc, Field& u, Field& v, Field& w) {
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());
  const double mirror = bc == ZBc::kNoSlip ? -1.0 : 1.0;

  if (d.at_bottom_wall()) {
    for (std::ptrdiff_t j = -1; j <= nyl; ++j)
      for (std::size_t i = 0; i < d.nx; ++i) {
        u.at(i, j, -1) = mirror * u.at(i, j, 0);
        v.at(i, j, -1) = mirror * v.at(i, j, 0);
        w.at(i, j, -1) = 0.0;  // the bottom wall face itself
      }
  }
  if (d.at_top_wall()) {
    for (std::ptrdiff_t j = -1; j <= nyl; ++j)
      for (std::size_t i = 0; i < d.nx; ++i) {
        u.at(i, j, nzl) = mirror * u.at(i, j, nzl - 1);
        v.at(i, j, nzl) = mirror * v.at(i, j, nzl - 1);
        w.at(i, j, nzl - 1) = 0.0;  // the top wall face
        w.at(i, j, nzl) = 0.0;      // beyond the wall (never read, kept sane)
      }
  }
}

void apply_pressure_z_bc(const Decomp& d, Field& p) {
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());
  if (d.at_bottom_wall())
    for (std::ptrdiff_t j = -1; j <= nyl; ++j)
      for (std::size_t i = 0; i < d.nx; ++i) p.at(i, j, -1) = p.at(i, j, 0);
  if (d.at_top_wall())
    for (std::ptrdiff_t j = -1; j <= nyl; ++j)
      for (std::size_t i = 0; i < d.nx; ++i) p.at(i, j, nzl) = p.at(i, j, nzl - 1);
}

double interior_fraction(const Decomp& d) {
  const auto nyl = static_cast<double>(d.nyl());
  const auto nzl = static_cast<double>(d.nzl());
  const double iy = std::max(0.0, nyl - 2.0);
  const double iz = std::max(0.0, nzl - 2.0);
  return (iy * iz) / (nyl * nzl);
}

void momentum_rhs(const Decomp& d, double dx, double dy, double dz, double nu,
                  const Field& u, const Field& v, const Field& w, Field& fu,
                  Field& fv, Field& fw, Region region) {
  const auto nx = static_cast<std::ptrdiff_t>(d.nx);
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());
  const double idx = 1.0 / dx, idy = 1.0 / dy, idz = 1.0 / dz;
  const double idx2 = idx * idx, idy2 = idy * idy, idz2 = idz * idz;

  for (std::ptrdiff_t k = 0; k < nzl; ++k) {
    for (std::ptrdiff_t j = 0; j < nyl; ++j) {
      const bool interior_jk = j >= 1 && j < nyl - 1 && k >= 1 && k < nzl - 1;
      if (region == Region::kInterior && !interior_jk) continue;
      if (region == Region::kBoundary && interior_jk) continue;
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const auto iu = static_cast<std::size_t>(i);

        // ---- u momentum at the x-face right of cell i ----
        {
          // d(uu)/dx with u^2 at the two adjacent cell centers.
          const double uc_r = 0.5 * (u.atp(i, j, k) + u.atp(i + 1, j, k));
          const double uc_l = 0.5 * (u.atp(i - 1, j, k) + u.atp(i, j, k));
          const double duu = (uc_r * uc_r - uc_l * uc_l) * idx;
          // d(uv)/dy at the two xy-edges of the face.
          const double u_jp = 0.5 * (u.atp(i, j, k) + u.atp(i, j + 1, k));
          const double u_jm = 0.5 * (u.atp(i, j - 1, k) + u.atp(i, j, k));
          const double v_jp = 0.5 * (v.atp(i, j, k) + v.atp(i + 1, j, k));
          const double v_jm = 0.5 * (v.atp(i, j - 1, k) + v.atp(i + 1, j - 1, k));
          const double duv = (u_jp * v_jp - u_jm * v_jm) * idy;
          // d(uw)/dz at the two xz-edges.
          const double u_kp = 0.5 * (u.atp(i, j, k) + u.atp(i, j, k + 1));
          const double u_km = 0.5 * (u.atp(i, j, k - 1) + u.atp(i, j, k));
          const double w_kp = 0.5 * (w.atp(i, j, k) + w.atp(i + 1, j, k));
          const double w_km = 0.5 * (w.atp(i, j, k - 1) + w.atp(i + 1, j, k - 1));
          const double duw = (u_kp * w_kp - u_km * w_km) * idz;

          const double lap =
              (u.atp(i + 1, j, k) - 2.0 * u.atp(i, j, k) + u.atp(i - 1, j, k)) * idx2 +
              (u.atp(i, j + 1, k) - 2.0 * u.atp(i, j, k) + u.atp(i, j - 1, k)) * idy2 +
              (u.atp(i, j, k + 1) - 2.0 * u.atp(i, j, k) + u.atp(i, j, k - 1)) * idz2;
          fu.at(iu, j, k) = -(duu + duv + duw) + nu * lap;
        }

        // ---- v momentum at the y-face above cell j ----
        {
          const double v_ip = 0.5 * (v.atp(i, j, k) + v.atp(i + 1, j, k));
          const double v_im = 0.5 * (v.atp(i - 1, j, k) + v.atp(i, j, k));
          const double u_ip = 0.5 * (u.atp(i, j, k) + u.atp(i, j + 1, k));
          const double u_im = 0.5 * (u.atp(i - 1, j, k) + u.atp(i - 1, j + 1, k));
          const double dvu = (v_ip * u_ip - v_im * u_im) * idx;

          const double vc_p = 0.5 * (v.atp(i, j, k) + v.atp(i, j + 1, k));
          const double vc_m = 0.5 * (v.atp(i, j - 1, k) + v.atp(i, j, k));
          const double dvv = (vc_p * vc_p - vc_m * vc_m) * idy;

          const double v_kp = 0.5 * (v.atp(i, j, k) + v.atp(i, j, k + 1));
          const double v_km = 0.5 * (v.atp(i, j, k - 1) + v.atp(i, j, k));
          const double w_kp = 0.5 * (w.atp(i, j, k) + w.atp(i, j + 1, k));
          const double w_km = 0.5 * (w.atp(i, j, k - 1) + w.atp(i, j + 1, k - 1));
          const double dvw = (v_kp * w_kp - v_km * w_km) * idz;

          const double lap =
              (v.atp(i + 1, j, k) - 2.0 * v.atp(i, j, k) + v.atp(i - 1, j, k)) * idx2 +
              (v.atp(i, j + 1, k) - 2.0 * v.atp(i, j, k) + v.atp(i, j - 1, k)) * idy2 +
              (v.atp(i, j, k + 1) - 2.0 * v.atp(i, j, k) + v.atp(i, j, k - 1)) * idz2;
          fv.at(iu, j, k) = -(dvu + dvv + dvw) + nu * lap;
        }

        // ---- w momentum at the z-face above cell k ----
        {
          // The wall faces themselves never accelerate.
          const bool top_wall_face = d.at_top_wall() && k == nzl - 1;
          if (top_wall_face) {
            fw.at(iu, j, k) = 0.0;
          } else {
            const double w_ip = 0.5 * (w.atp(i, j, k) + w.atp(i + 1, j, k));
            const double w_im = 0.5 * (w.atp(i - 1, j, k) + w.atp(i, j, k));
            const double u_ip = 0.5 * (u.atp(i, j, k) + u.atp(i, j, k + 1));
            const double u_im = 0.5 * (u.atp(i - 1, j, k) + u.atp(i - 1, j, k + 1));
            const double dwu = (w_ip * u_ip - w_im * u_im) * idx;

            const double w_jp = 0.5 * (w.atp(i, j, k) + w.atp(i, j + 1, k));
            const double w_jm = 0.5 * (w.atp(i, j - 1, k) + w.atp(i, j, k));
            const double v_jp = 0.5 * (v.atp(i, j, k) + v.atp(i, j, k + 1));
            const double v_jm = 0.5 * (v.atp(i, j - 1, k) + v.atp(i, j - 1, k + 1));
            const double dwv = (w_jp * v_jp - w_jm * v_jm) * idy;

            const double wc_p = 0.5 * (w.atp(i, j, k) + w.atp(i, j, k + 1));
            const double wc_m = 0.5 * (w.atp(i, j, k - 1) + w.atp(i, j, k));
            const double dww = (wc_p * wc_p - wc_m * wc_m) * idz;

            const double lap =
                (w.atp(i + 1, j, k) - 2.0 * w.atp(i, j, k) + w.atp(i - 1, j, k)) * idx2 +
                (w.atp(i, j + 1, k) - 2.0 * w.atp(i, j, k) + w.atp(i, j - 1, k)) * idy2 +
                (w.atp(i, j, k + 1) - 2.0 * w.atp(i, j, k) + w.atp(i, j, k - 1)) * idz2;
            fw.at(iu, j, k) = -(dwu + dwv + dww) + nu * lap;
          }
        }
      }
    }
  }
}

void divergence(const Decomp& d, double dx, double dy, double dz, const Field& u,
                const Field& v, const Field& w, std::span<double> out) {
  const auto nx = static_cast<std::ptrdiff_t>(d.nx);
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());
  UNR_CHECK(out.size() == d.nx * d.nyl() * d.nzl());
  const double idx = 1.0 / dx, idy = 1.0 / dy, idz = 1.0 / dz;
  std::size_t o = 0;
  for (std::ptrdiff_t k = 0; k < nzl; ++k)
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::ptrdiff_t i = 0; i < nx; ++i)
        out[o++] = (u.atp(i, j, k) - u.atp(i - 1, j, k)) * idx +
                   (v.atp(i, j, k) - v.atp(i, j - 1, k)) * idy +
                   (w.atp(i, j, k) - w.atp(i, j, k - 1)) * idz;
}

void project_velocity(const Decomp& d, double dx, double dy, double dz, double dt,
                      const Field& p, Field& u, Field& v, Field& w) {
  const auto nx = static_cast<std::ptrdiff_t>(d.nx);
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());
  const double cdx = dt / dx, cdy = dt / dy, cdz = dt / dz;
  for (std::ptrdiff_t k = 0; k < nzl; ++k)
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        u.at(iu, j, k) -= cdx * (p.atp(i + 1, j, k) - p.atp(i, j, k));
        v.at(iu, j, k) -= cdy * (p.atp(i, j + 1, k) - p.atp(i, j, k));
        const bool top_wall_face = d.at_top_wall() && k == nzl - 1;
        if (!top_wall_face)
          w.at(iu, j, k) -= cdz * (p.atp(i, j, k + 1) - p.atp(i, j, k));
      }
}

double max_abs_divergence(const Decomp& d, double dx, double dy, double dz,
                          const Field& u, const Field& v, const Field& w) {
  std::vector<double> div(d.nx * d.nyl() * d.nzl());
  divergence(d, dx, dy, dz, u, v, w, div);
  double m = 0.0;
  for (double x : div) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace unr::powerllel
