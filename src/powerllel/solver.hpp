// Mini-PowerLLEL: an incompressible Navier-Stokes solver with the same
// computational and communication structure as the paper's application
// (Section V): RK2 velocity update with halo exchanges, FFT+PDD Pressure
// Poisson solver with pencil transposes, fractional-step projection.
//
// Two communication backends share all numerics:
//   kMpi — two-sided isend/irecv + pairwise collectives (the baseline)
//   kUnr — UNR notified RMA with synchronization-free double buffering
//          (Fig. 3d/3e optimizations)
#pragma once

#include <functional>
#include <memory>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "powerllel/decomp.hpp"
#include "powerllel/field.hpp"
#include "powerllel/halo.hpp"
#include "powerllel/ns_kernels.hpp"
#include "powerllel/poisson.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {

struct SolverConfig {
  Decomp decomp;  ///< `self` is filled in by the constructor
  double lx = 6.283185307179586, ly = 6.283185307179586, lz = 2.0;
  double nu = 0.01;
  double dt = 1e-3;
  ZBc bc = ZBc::kNoSlip;
  CommBackend backend = CommBackend::kMpi;
  unrlib::Unr* unr = nullptr;  ///< required for kUnr
  TridiagMethod tridiag_method = TridiagMethod::kReducedExact;
  int threads = 1;                    ///< OpenMP-style threads per rank (cost model)
  double compute_ns_per_cell = 0.0;   ///< 0: take the system profile's value
  /// UNR backend only: overlap halo transfers with the interior stencils
  /// (Fig. 3d). Disable to isolate the pure transport gain in ablations.
  bool overlap_halo = true;
};

/// Virtual-time breakdown of one rank's run, in the paper's categories
/// (Fig. 6 / Fig. 7 stack the same bars).
struct StepTimings {
  Time velocity = 0;     ///< RK substeps: halo exchange + RHS + update
  Time halo = 0;         ///< communication share of `velocity`
  Time ppe = 0;          ///< whole PPE solve (incl. the pieces below)
  Time ppe_fft = 0;
  Time ppe_transpose = 0;
  Time ppe_tridiag = 0;
  Time correction = 0;   ///< divergence, pressure halo, velocity correction
  Time total = 0;
  void reset() { *this = StepTimings{}; }
};

class Solver {
 public:
  Solver(runtime::Rank& rank, SolverConfig cfg);

  /// Initialize the velocity from a callback evaluated at each component's
  /// staggered position (global coordinates).
  using InitFn = std::function<double(double x, double y, double z)>;
  void init_velocity(const InitFn& fu, const InitFn& fv, const InitFn& fw);

  void step();
  void run(int steps);

  Field& u() { return u_; }
  Field& v() { return v_; }
  Field& w() { return w_; }
  Field& p() { return p_; }
  const Decomp& decomp() const { return cfg_.decomp; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double dz() const { return dz_; }
  double time() const { return t_; }

  /// Global max |div(u)| (collective).
  double global_max_divergence();
  /// Global kinetic energy sum(u^2+v^2+w^2)/2 * cell volume (collective).
  double global_kinetic_energy();

  const StepTimings& timings() const { return timings_; }
  void reset_timings();
  /// Collective: element-wise max of the breakdown across ranks.
  StepTimings reduce_timings();

 private:
  void exchange_velocity(Field& a, Field& b, Field& c);
  void charge(double factor);

  runtime::Rank& rank_;
  SolverConfig cfg_;
  double dx_, dy_, dz_;
  double t_ = 0.0;
  double ns_per_cell_;

  Field u_, v_, w_, p_;
  Field u1_, v1_, w1_;   // RK stage
  Field fu_, fv_, fw_;   // RHS
  std::vector<double> rhs_;

  std::unique_ptr<HaloExchange> vel_halo_;
  std::unique_ptr<HaloExchange> p_halo_;
  std::unique_ptr<PoissonSolver> poisson_;
  StepTimings timings_;
  /// Per-rank distribution of whole-step virtual durations.
  obs::Histogram step_ns_;
  /// Interned trace ids for the per-phase spans; `on` caches enablement.
  struct TraceIds {
    bool on = false;
    obs::StrId cat, velocity, ppe, correction;
    obs::StrId k_fft, k_transpose, k_tridiag;
  };
  TraceIds tr_;
};

}  // namespace unr::powerllel
