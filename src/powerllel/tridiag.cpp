#include "powerllel/tridiag.hpp"

#include <cstring>

#include "common/check.hpp"

namespace unr::powerllel {

void thomas_inplace(double a, std::span<const double> b, double c,
                    std::span<Complex> d) {
  const std::size_t n = b.size();
  UNR_CHECK(d.size() == n && n >= 1);
  // Scratch for the modified super-diagonal.
  static thread_local std::vector<double> cp;
  cp.resize(n);
  UNR_CHECK_MSG(b[0] != 0.0, "singular tridiagonal system");
  cp[0] = c / b[0];
  d[0] /= b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = b[i] - a * cp[i - 1];
    UNR_CHECK_MSG(denom != 0.0, "singular tridiagonal system at row " << i);
    cp[i] = c / denom;
    d[i] = (d[i] - a * d[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= cp[i] * d[i + 1];
}

void thomas_inplace_real(double a, std::span<const double> b, double c,
                         std::span<double> d) {
  const std::size_t n = b.size();
  UNR_CHECK(d.size() == n && n >= 1);
  static thread_local std::vector<double> cp;
  cp.resize(n);
  UNR_CHECK(b[0] != 0.0);
  cp[0] = c / b[0];
  d[0] /= b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = b[i] - a * cp[i - 1];
    UNR_CHECK(denom != 0.0);
    cp[i] = c / denom;
    d[i] = (d[i] - a * d[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= cp[i] * d[i + 1];
}

DistTridiag::DistTridiag(int my_index, int nprocs, std::size_t n_local)
    : my_index_(my_index), nprocs_(nprocs), n_local_(n_local) {
  UNR_CHECK(my_index >= 0 && my_index < nprocs && n_local >= 2);
}

void DistTridiag::local_solves(std::span<const TridiagLine> lines,
                               std::span<const double> diag, Complex* rhs,
                               std::size_t nlines, std::vector<double>& v,
                               std::vector<double>& u) {
  const std::size_t m = n_local_;
  v.assign(nlines * m, 0.0);
  u.assign(nlines * m, 0.0);
  for (std::size_t l = 0; l < nlines; ++l) {
    const TridiagLine& ln = lines[l];
    const std::span<const double> b = diag.subspan(l * m, m);
    thomas_inplace(ln.a, b, ln.c, std::span<Complex>(rhs + l * m, m));
    if (my_index_ > 0) {
      std::span<double> vl(v.data() + l * m, m);
      vl[0] = ln.a;  // A_p v = a e_0
      thomas_inplace_real(ln.a, b, ln.c, vl);
    }
    if (my_index_ < nprocs_ - 1) {
      std::span<double> ul(u.data() + l * m, m);
      ul[m - 1] = ln.c;  // A_p u = c e_{m-1}
      thomas_inplace_real(ln.a, b, ln.c, ul);
    }
  }
}

void DistTridiag::solve(std::span<const TridiagLine> lines,
                        std::span<const double> diag, Complex* rhs,
                        std::size_t nlines, const NeighborPort& port,
                        TridiagMethod method) {
  UNR_CHECK(lines.size() == nlines);
  UNR_CHECK(diag.size() == nlines * n_local_);
  if (nprocs_ == 1) {
    // No interfaces: the local solve IS the global solve.
    for (std::size_t l = 0; l < nlines; ++l)
      thomas_inplace(lines[l].a, diag.subspan(l * n_local_, n_local_), lines[l].c,
                     std::span<Complex>(rhs + l * n_local_, n_local_));
    return;
  }
  if (method == TridiagMethod::kReducedExact)
    solve_exact(lines, diag, rhs, nlines, port);
  else
    solve_pdd(lines, diag, rhs, nlines, port);
}

void DistTridiag::solve_exact(std::span<const TridiagLine> lines,
                              std::span<const double> diag, Complex* rhs,
                              std::size_t nlines, const NeighborPort& port) {
  const std::size_t m = n_local_;
  std::vector<double> v, u;
  local_solves(lines, diag, rhs, nlines, v, u);

  // Forward sweep (bottom -> top): eliminate L_p = alpha + beta * F_{p+1}.
  // Wire format per line: {alpha.re, alpha.im, beta}.
  std::vector<double> prev(nlines * 3, 0.0), mine(nlines * 3, 0.0);
  std::vector<Complex> gamma(nlines, 0.0);
  std::vector<double> delta(nlines, 0.0);
  if (my_index_ > 0) port.recv_down(prev.data(), prev.size() * sizeof(double));
  for (std::size_t l = 0; l < nlines; ++l) {
    const Complex* w = rhs + l * m;
    const double* vl = v.data() + l * m;
    const double* ul = u.data() + l * m;
    Complex alpha;
    double beta;
    if (my_index_ == 0) {
      alpha = w[m - 1];
      beta = -ul[m - 1];
    } else {
      const Complex alpha_prev(prev[l * 3], prev[l * 3 + 1]);
      const double beta_prev = prev[l * 3 + 2];
      const double d = 1.0 + beta_prev * vl[0];
      UNR_CHECK_MSG(d != 0.0, "reduced interface system singular");
      gamma[l] = (w[0] - alpha_prev * vl[0]) / d;
      delta[l] = -ul[0] / d;
      alpha = w[m - 1] - alpha_prev * vl[m - 1] - beta_prev * vl[m - 1] * gamma[l];
      beta = -beta_prev * vl[m - 1] * delta[l] - ul[m - 1];
    }
    mine[l * 3] = alpha.real();
    mine[l * 3 + 1] = alpha.imag();
    mine[l * 3 + 2] = beta;
  }
  if (my_index_ < nprocs_ - 1)
    port.send_up(mine.data(), mine.size() * sizeof(double));

  // Backward sweep (top -> bottom): resolve the F values.
  std::vector<double> fnext(nlines * 2, 0.0), fmine(nlines * 2, 0.0);
  if (my_index_ < nprocs_ - 1)
    port.recv_up(fnext.data(), fnext.size() * sizeof(double));
  for (std::size_t l = 0; l < nlines; ++l) {
    const Complex f_above(fnext[l * 2], fnext[l * 2 + 1]);
    Complex f_here(0.0, 0.0);
    if (my_index_ > 0) f_here = gamma[l] + delta[l] * f_above;
    fmine[l * 2] = f_here.real();
    fmine[l * 2 + 1] = f_here.imag();

    // Apply the corrections: x = w - xi*v - eta*u.
    const Complex alpha_prev(prev[l * 3], prev[l * 3 + 1]);
    const double beta_prev = prev[l * 3 + 2];
    const Complex xi = my_index_ > 0 ? alpha_prev + beta_prev * f_here : Complex(0.0);
    const Complex eta = my_index_ < nprocs_ - 1 ? f_above : Complex(0.0);
    Complex* w = rhs + l * m;
    const double* vl = v.data() + l * m;
    const double* ul = u.data() + l * m;
    for (std::size_t i = 0; i < m; ++i) w[i] -= xi * vl[i] + eta * ul[i];
  }
  if (my_index_ > 0) port.send_down(fmine.data(), fmine.size() * sizeof(double));
}

void DistTridiag::solve_pdd(std::span<const TridiagLine> lines,
                            std::span<const double> diag, Complex* rhs,
                            std::size_t nlines, const NeighborPort& port) {
  const std::size_t m = n_local_;
  std::vector<double> v, u;
  local_solves(lines, diag, rhs, nlines, v, u);

  // Step 1: everyone (except block 0) ships its first-row data downwards.
  // Wire format per line: {w0.re, w0.im, v0}.
  std::vector<double> down_msg(nlines * 3, 0.0), from_up(nlines * 3, 0.0);
  if (my_index_ > 0) {
    for (std::size_t l = 0; l < nlines; ++l) {
      const Complex w0 = rhs[l * m];
      down_msg[l * 3] = w0.real();
      down_msg[l * 3 + 1] = w0.imag();
      down_msg[l * 3 + 2] = v[l * m];
    }
    port.send_down(down_msg.data(), down_msg.size() * sizeof(double));
  }

  // Step 2: solve the decoupled 2x2 interface systems and ship L_p upwards.
  std::vector<Complex> eta(nlines, 0.0);
  std::vector<double> up_msg(nlines * 2, 0.0), from_down(nlines * 2, 0.0);
  if (my_index_ < nprocs_ - 1) {
    port.recv_up(from_up.data(), from_up.size() * sizeof(double));
    for (std::size_t l = 0; l < nlines; ++l) {
      const Complex w1n(from_up[l * 3], from_up[l * 3 + 1]);
      const double v1n = from_up[l * 3 + 2];
      const Complex wm = rhs[l * m + m - 1];
      const double um = u[l * m + m - 1];
      const double det = 1.0 - um * v1n;
      UNR_CHECK_MSG(det != 0.0, "PDD interface system singular");
      const Complex lp = (wm - um * w1n) / det;  // x at my last row
      eta[l] = (w1n - v1n * wm) / det;           // x at the neighbor's first row
      up_msg[l * 2] = lp.real();
      up_msg[l * 2 + 1] = lp.imag();
    }
    port.send_up(up_msg.data(), up_msg.size() * sizeof(double));
  }

  // Step 3: receive xi (the block below's last x) and apply corrections.
  if (my_index_ > 0)
    port.recv_down(from_down.data(), from_down.size() * sizeof(double));
  for (std::size_t l = 0; l < nlines; ++l) {
    const Complex xi = my_index_ > 0
                           ? Complex(from_down[l * 2], from_down[l * 2 + 1])
                           : Complex(0.0);
    const Complex et = my_index_ < nprocs_ - 1 ? eta[l] : Complex(0.0);
    Complex* w = rhs + l * m;
    const double* vl = v.data() + l * m;
    const double* ul = u.data() + l * m;
    for (std::size_t i = 0; i < m; ++i) w[i] -= xi * vl[i] + et * ul[i];
  }
}

void reference_solve(std::span<const TridiagLine> lines, std::span<const double> diag,
                     Complex* rhs, std::size_t nlines, std::size_t n) {
  for (std::size_t l = 0; l < nlines; ++l)
    thomas_inplace(lines[l].a, diag.subspan(l * n, n), lines[l].c,
                   std::span<Complex>(rhs + l * n, n));
}

}  // namespace unr::powerllel
