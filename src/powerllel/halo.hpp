// Halo exchange for the velocity update (Fig. 3b of the paper).
//
// Two backends with identical semantics:
//   * MPI backend — nonblocking isend/irecv of packed planes + waitall,
//     exactly the baseline PowerLLEL communication.
//   * UNR backend — notified PUTs into pre-exchanged staging Blks with
//     double-buffered signals (Fig. 3d): RK1 and RK2 alternate buffer sets,
//     each acting as the other's implicit pre-synchronization, so no
//     explicit synchronization remains in the loop.
#pragma once

#include <memory>
#include <span>

#include "powerllel/decomp.hpp"
#include "powerllel/field.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {

class HaloExchange {
 public:
  virtual ~HaloExchange() = default;
  /// Fill the y and z halos of `fields` from the neighbors. The number of
  /// fields must match the count given at construction.
  virtual void exchange(std::span<Field* const> fields) = 0;

  /// Split-phase variant for computation/communication overlap: start()
  /// packs and fires the transfers; finish() blocks until the halos are
  /// filled. Interior stencil work can run between the two calls — the
  /// synchronization-free structure of Fig. 3d.
  virtual void start(std::span<Field* const> fields) = 0;
  virtual void finish(std::span<Field* const> fields) = 0;
};

/// `threads`: staging pack/unpack copies are OpenMP-parallel in real codes;
/// their time charge is divided by this count.
std::unique_ptr<HaloExchange> make_mpi_halo(runtime::Rank& rank, const Decomp& d,
                                            int n_fields, int threads = 1);
std::unique_ptr<HaloExchange> make_unr_halo(runtime::Rank& rank, unrlib::Unr& unr,
                                            const Decomp& d, int n_fields,
                                            int threads = 1);

}  // namespace unr::powerllel
