// NeighborPort implementations over the two communication backends.
//
// The distributed tridiagonal solver only needs "send/recv to the block
// below/above" (the paper's Pipeline 2). The MPI port maps this to tagged
// two-sided messages; the UNR port maps it to notified PUTs into
// pre-exchanged staging Blks with one signal per direction.
#pragma once

#include <memory>
#include <vector>

#include "powerllel/tridiag.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {

/// Holds the port's closures plus whatever state (buffers, signals) they
/// capture; keep it alive as long as the port is in use.
class TridiagPort {
 public:
  virtual ~TridiagPort() = default;
  const NeighborPort& port() const { return port_; }

 protected:
  NeighborPort port_;
};

/// `group` is the column group ordered bottom (z=0) to top; `my_index` is
/// this rank's position in it. `tag_base` must be unique per concurrent port.
std::unique_ptr<TridiagPort> make_mpi_tridiag_port(runtime::Rank& rank,
                                                   std::vector<int> group,
                                                   int my_index, int tag_base);

/// `max_bytes` bounds any single message (staging buffer size).
std::unique_ptr<TridiagPort> make_unr_tridiag_port(runtime::Rank& rank,
                                                   unrlib::Unr& unr,
                                                   std::vector<int> group,
                                                   int my_index, int tag_base,
                                                   std::size_t max_bytes);

}  // namespace unr::powerllel
