#include "powerllel/tridiag_port.hpp"

#include <cstring>

#include "common/check.hpp"

namespace unr::powerllel {

namespace {

class MpiTridiagPort final : public TridiagPort {
 public:
  MpiTridiagPort(runtime::Rank& rank, std::vector<int> group, int my_index,
                 int tag_base)
      : group_(std::move(group)) {
    const int up_tag = tag_base;        // messages travelling upwards
    const int down_tag = tag_base + 1;  // messages travelling downwards
    const int below = my_index > 0 ? group_[static_cast<std::size_t>(my_index - 1)] : -1;
    const int above = my_index + 1 < static_cast<int>(group_.size())
                          ? group_[static_cast<std::size_t>(my_index + 1)]
                          : -1;
    runtime::Rank* r = &rank;
    port_.send_up = [r, above, up_tag](const void* p, std::size_t n) {
      UNR_CHECK(above >= 0);
      r->send(above, up_tag, p, n);
    };
    port_.recv_down = [r, below, up_tag](void* p, std::size_t n) {
      UNR_CHECK(below >= 0);
      r->recv(below, up_tag, p, n);
    };
    port_.send_down = [r, below, down_tag](const void* p, std::size_t n) {
      UNR_CHECK(below >= 0);
      r->send(below, down_tag, p, n);
    };
    port_.recv_up = [r, above, down_tag](void* p, std::size_t n) {
      UNR_CHECK(above >= 0);
      r->recv(above, down_tag, p, n);
    };
  }

 private:
  std::vector<int> group_;
};

class UnrTridiagPort final : public TridiagPort {
 public:
  UnrTridiagPort(runtime::Rank& rank, unrlib::Unr& unr, std::vector<int> group,
                 int my_index, int tag_base, std::size_t max_bytes)
      : rank_(rank), unr_(unr) {
    const int self = rank.id();
    const int below = my_index > 0 ? group[static_cast<std::size_t>(my_index - 1)] : -1;
    const int above = my_index + 1 < static_cast<int>(group.size())
                          ? group[static_cast<std::size_t>(my_index + 1)]
                          : -1;

    // One Link per neighbor. A link's `in` staging is written by the peer's
    // sends towards me; its `out` staging feeds my puts towards the peer
    // (which land in the peer's `in` on its matching link).
    //
    // Blk exchange tags: the blk of an "in" buffer that receives UPWARD
    // traffic travels DOWN to its writer, and vice versa. Between a pair
    // (p, p+1): p+1 sends its below-link in-blk down with tag U (it receives
    // up-traffic); p sends its above-link in-blk up with tag D.
    auto setup = [&](Link& l, int peer, int send_tag, int recv_tag) {
      if (peer < 0) return;
      l.peer_rank = peer;
      l.in.assign(max_bytes, std::byte{0});
      l.out.assign(max_bytes, std::byte{0});
      l.in_mem = unr_.mem_reg(self, l.in.data(), max_bytes);
      l.out_mem = unr_.mem_reg(self, l.out.data(), max_bytes);
      l.in_sig = unr_.sig_init(self, 1);
      l.out_sig = unr_.sig_init(self, 1);
      const unrlib::Blk my_in = unr_.blk_init(self, l.in_mem, 0, max_bytes, l.in_sig);
      std::vector<runtime::RequestPtr> reqs;
      reqs.push_back(rank_.irecv(peer, recv_tag, &l.peer_blk, sizeof(unrlib::Blk)));
      reqs.push_back(rank_.isend(peer, send_tag, &my_in, sizeof(unrlib::Blk)));
      rank_.wait_all(reqs);
    };
    const int tag_u = tag_base + 2;  // blks for buffers carrying upward data
    const int tag_d = tag_base + 3;  // blks for buffers carrying downward data
    setup(link_below_, below, /*send my up-in blk*/ tag_u, /*recv peer down-in*/ tag_d);
    setup(link_above_, above, /*send my down-in blk*/ tag_d, /*recv peer up-in*/ tag_u);

    port_.send_up = sender(link_above_);
    port_.recv_up = receiver(link_above_);
    port_.send_down = sender(link_below_);
    port_.recv_down = receiver(link_below_);
  }

 private:
  struct Link {
    int peer_rank = -1;
    std::vector<std::byte> in, out;
    unrlib::MemHandle in_mem, out_mem;
    unrlib::SigId in_sig = unrlib::kNoSig;
    unrlib::SigId out_sig = unrlib::kNoSig;
    unrlib::Blk peer_blk;
    bool out_used = false;
  };

  std::function<void(const void*, std::size_t)> sender(Link& l) {
    unrlib::Unr* u = &unr_;
    runtime::Rank* r = &rank_;
    const int self = rank_.id();
    return [u, r, self, &l](const void* p, std::size_t n) {
      UNR_CHECK(l.peer_rank >= 0 && n <= l.out.size());
      if (l.out_used) {
        u->sig_wait(self, l.out_sig);
        u->sig_reset(self, l.out_sig);
      }
      std::memcpy(l.out.data(), p, n);
      r->kernel().sleep_for(r->fabric().profile().memcpy_time(n));
      const unrlib::Blk local = u->blk_init(self, l.out_mem, 0, n, l.out_sig);
      unrlib::Blk remote = l.peer_blk;
      remote.size = n;
      u->put(self, local, remote);
      l.out_used = true;
    };
  }

  std::function<void(void*, std::size_t)> receiver(Link& l) {
    unrlib::Unr* u = &unr_;
    runtime::Rank* r = &rank_;
    const int self = rank_.id();
    return [u, r, self, &l](void* p, std::size_t n) {
      UNR_CHECK(l.peer_rank >= 0 && n <= l.in.size());
      u->sig_wait(self, l.in_sig);
      u->sig_reset(self, l.in_sig);
      std::memcpy(p, l.in.data(), n);
      r->kernel().sleep_for(r->fabric().profile().memcpy_time(n));
    };
  }

  runtime::Rank& rank_;
  unrlib::Unr& unr_;
  Link link_below_, link_above_;
};

}  // namespace

std::unique_ptr<TridiagPort> make_mpi_tridiag_port(runtime::Rank& rank,
                                                   std::vector<int> group,
                                                   int my_index, int tag_base) {
  return std::make_unique<MpiTridiagPort>(rank, std::move(group), my_index, tag_base);
}

std::unique_ptr<TridiagPort> make_unr_tridiag_port(runtime::Rank& rank,
                                                   unrlib::Unr& unr,
                                                   std::vector<int> group,
                                                   int my_index, int tag_base,
                                                   std::size_t max_bytes) {
  return std::make_unique<UnrTridiagPort>(rank, unr, std::move(group), my_index,
                                          tag_base, max_bytes);
}

}  // namespace unr::powerllel
