#include "powerllel/solver.hpp"

#include <cmath>

#include "common/check.hpp"

namespace unr::powerllel {

Solver::Solver(runtime::Rank& rank, SolverConfig cfg)
    : rank_(rank),
      cfg_([&] {
        cfg.decomp.self = rank.id();
        cfg.decomp.validate();
        UNR_CHECK(cfg.decomp.pr * cfg.decomp.pc == rank.nranks());
        return cfg;
      }()),
      dx_(cfg_.lx / static_cast<double>(cfg_.decomp.nx)),
      dy_(cfg_.ly / static_cast<double>(cfg_.decomp.ny)),
      dz_(cfg_.lz / static_cast<double>(cfg_.decomp.nz)),
      ns_per_cell_(cfg_.compute_ns_per_cell > 0.0
                       ? cfg_.compute_ns_per_cell
                       : rank.fabric().profile().compute_ns_per_cell),
      u_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      v_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      w_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      p_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      u1_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      v1_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      w1_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      fu_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      fv_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      fw_(cfg_.decomp.nx, cfg_.decomp.nyl(), cfg_.decomp.nzl()),
      rhs_(cfg_.decomp.nx * cfg_.decomp.nyl() * cfg_.decomp.nzl(), 0.0) {
  if (cfg_.backend == CommBackend::kUnr) {
    UNR_CHECK_MSG(cfg_.unr != nullptr, "UNR backend requires a Unr instance");
    vel_halo_ = make_unr_halo(rank_, *cfg_.unr, cfg_.decomp, 3, cfg_.threads);
    p_halo_ = make_unr_halo(rank_, *cfg_.unr, cfg_.decomp, 1, cfg_.threads);
  } else {
    vel_halo_ = make_mpi_halo(rank_, cfg_.decomp, 3, cfg_.threads);
    p_halo_ = make_mpi_halo(rank_, cfg_.decomp, 1, cfg_.threads);
  }
  PoissonSolver::Config pc;
  pc.decomp = cfg_.decomp;
  pc.dx = dx_;
  pc.dy = dy_;
  pc.dz = dz_;
  pc.backend = cfg_.backend;
  pc.unr = cfg_.unr;
  pc.method = cfg_.tridiag_method;
  pc.threads = cfg_.threads;
  pc.compute_ns_per_point = ns_per_cell_;
  poisson_ = std::make_unique<PoissonSolver>(rank_, pc);

  obs::Telemetry& tel = rank_.kernel().telemetry();
  step_ns_ = tel.registry().histogram("solver.step_ns",
                                      {{"rank", std::to_string(rank_.id())}});
  obs::Tracer& tr = tel.tracer();
  tr_.on = tr.enabled();
  tr_.cat = tr.intern("solver");
  tr_.velocity = tr.intern("velocity");
  tr_.ppe = tr.intern("ppe");
  tr_.correction = tr.intern("correction");
  tr_.k_fft = tr.intern("fft_ns");
  tr_.k_transpose = tr.intern("transpose_ns");
  tr_.k_tridiag = tr.intern("tridiag_ns");
  if (tr_.on)
    tr.set_thread_name(rank_.node_id(), rank_.id(),
                       "rank " + std::to_string(rank_.id()));
}

void Solver::charge(double factor) {
  const double cells =
      static_cast<double>(cfg_.decomp.nx * cfg_.decomp.nyl() * cfg_.decomp.nzl());
  rank_.compute(static_cast<Time>(cells * factor * ns_per_cell_), cfg_.threads);
}

void Solver::init_velocity(const InitFn& fu, const InitFn& fv, const InitFn& fw) {
  const Decomp& d = cfg_.decomp;
  for (std::size_t k = 0; k < d.nzl(); ++k) {
    const double zc = (static_cast<double>(d.z0() + k) + 0.5) * dz_;
    const double zf = static_cast<double>(d.z0() + k + 1) * dz_;
    for (std::size_t j = 0; j < d.nyl(); ++j) {
      const double yc = (static_cast<double>(d.y0() + j) + 0.5) * dy_;
      const double yf = static_cast<double>(d.y0() + j + 1) * dy_;
      for (std::size_t i = 0; i < d.nx; ++i) {
        const double xc = (static_cast<double>(i) + 0.5) * dx_;
        const double xf = static_cast<double>(i + 1) * dx_;
        const auto js = static_cast<std::ptrdiff_t>(j);
        const auto ks = static_cast<std::ptrdiff_t>(k);
        u_.at(i, js, ks) = fu(xf, yc, zc);
        v_.at(i, js, ks) = fv(xc, yf, zc);
        w_.at(i, js, ks) = fw(xc, yc, zf);
      }
    }
  }
  apply_velocity_z_bc(cfg_.decomp, cfg_.bc, u_, v_, w_);
}

void Solver::exchange_velocity(Field& a, Field& b, Field& c) {
  const Time t0 = rank_.now();
  Field* fields[3] = {&a, &b, &c};
  vel_halo_->exchange(fields);
  apply_velocity_z_bc(cfg_.decomp, cfg_.bc, a, b, c);
  timings_.halo += rank_.now() - t0;
}

void Solver::step() {
  const Time t_step = rank_.now();
  const double dt = cfg_.dt;
  const Decomp& d = cfg_.decomp;
  const auto nx = static_cast<std::ptrdiff_t>(d.nx);
  const auto nyl = static_cast<std::ptrdiff_t>(d.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(d.nzl());

  // Compute the momentum RHS of (a, b, c) into fu_/fv_/fw_, exchanging the
  // halos along the way. The UNR backend overlaps: halo puts fly while the
  // interior stencils (which read no halo) run; only the boundary cells wait
  // (the Fig. 3d synchronization-free structure). The MPI baseline keeps the
  // original blocking exchange-then-compute order.
  auto rhs_with_halo = [&](Field& a, Field& b, Field& c) {
    Field* fields[3] = {&a, &b, &c};
    if (cfg_.backend == CommBackend::kUnr && cfg_.overlap_halo) {
      const double frac = interior_fraction(d);
      Time t0 = rank_.now();
      vel_halo_->start(fields);
      timings_.halo += rank_.now() - t0;
      momentum_rhs(d, dx_, dy_, dz_, cfg_.nu, a, b, c, fu_, fv_, fw_,
                   Region::kInterior);
      charge(8.0 * frac);
      t0 = rank_.now();
      vel_halo_->finish(fields);
      apply_velocity_z_bc(d, cfg_.bc, a, b, c);
      timings_.halo += rank_.now() - t0;
      momentum_rhs(d, dx_, dy_, dz_, cfg_.nu, a, b, c, fu_, fv_, fw_,
                   Region::kBoundary);
      charge(8.0 * (1.0 - frac));
    } else {
      exchange_velocity(a, b, c);
      momentum_rhs(d, dx_, dy_, dz_, cfg_.nu, a, b, c, fu_, fv_, fw_);
      charge(8.0);
    }
  };

  // ---- Velocity update: RK1 then RK2 (Fig. 3d) ----
  rhs_with_halo(u_, v_, w_);
  for (std::ptrdiff_t k = 0; k < nzl; ++k)
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        u1_.at(iu, j, k) = u_.at(iu, j, k) + dt * fu_.at(iu, j, k);
        v1_.at(iu, j, k) = v_.at(iu, j, k) + dt * fv_.at(iu, j, k);
        w1_.at(iu, j, k) = w_.at(iu, j, k) + dt * fw_.at(iu, j, k);
      }
  charge(1.0);

  rhs_with_halo(u1_, v1_, w1_);
  for (std::ptrdiff_t k = 0; k < nzl; ++k)
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        u_.at(iu, j, k) = 0.5 * (u_.at(iu, j, k) + u1_.at(iu, j, k) + dt * fu_.at(iu, j, k));
        v_.at(iu, j, k) = 0.5 * (v_.at(iu, j, k) + v1_.at(iu, j, k) + dt * fv_.at(iu, j, k));
        w_.at(iu, j, k) = 0.5 * (w_.at(iu, j, k) + w1_.at(iu, j, k) + dt * fw_.at(iu, j, k));
      }
  charge(1.0);
  // The divergence stencil needs the lower halos of the provisional field.
  exchange_velocity(u_, v_, w_);
  timings_.velocity += rank_.now() - t_step;
  if (tr_.on)
    rank_.kernel().telemetry().tracer().complete(rank_.node_id(), rank_.id(), tr_.cat,
                                                 tr_.velocity, t_step,
                                                 rank_.now() - t_step);

  // ---- Pressure Poisson solve (Fig. 3e) ----
  const Time t_ppe = rank_.now();
  divergence(d, dx_, dy_, dz_, u_, v_, w_, rhs_);
  for (double& r : rhs_) r /= dt;
  charge(1.0);
  const PoissonTimings before = poisson_->timings();
  poisson_->solve(rhs_);
  const PoissonTimings& after = poisson_->timings();
  timings_.ppe_fft += after.fft - before.fft;
  timings_.ppe_transpose += after.transpose - before.transpose;
  timings_.ppe_tridiag += after.tridiag - before.tridiag;
  timings_.ppe += rank_.now() - t_ppe;
  if (tr_.on)
    rank_.kernel().telemetry().tracer().complete(
        rank_.node_id(), rank_.id(), tr_.cat, tr_.ppe, t_ppe, rank_.now() - t_ppe,
        {{tr_.k_fft, static_cast<std::int64_t>(after.fft - before.fft)},
         {tr_.k_transpose, static_cast<std::int64_t>(after.transpose - before.transpose)},
         {tr_.k_tridiag, static_cast<std::int64_t>(after.tridiag - before.tridiag)}});

  // ---- Velocity correction ----
  const Time t_corr = rank_.now();
  std::size_t o = 0;
  for (std::ptrdiff_t k = 0; k < nzl; ++k)
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::ptrdiff_t i = 0; i < nx; ++i)
        p_.at(static_cast<std::size_t>(i), j, k) = rhs_[o++];
  Field* pf[1] = {&p_};
  p_halo_->exchange(pf);
  apply_pressure_z_bc(d, p_);
  project_velocity(d, dx_, dy_, dz_, dt, p_, u_, v_, w_);
  apply_velocity_z_bc(d, cfg_.bc, u_, v_, w_);
  charge(1.5);
  timings_.correction += rank_.now() - t_corr;
  if (tr_.on)
    rank_.kernel().telemetry().tracer().complete(rank_.node_id(), rank_.id(), tr_.cat,
                                                 tr_.correction, t_corr,
                                                 rank_.now() - t_corr);

  step_ns_.observe(rank_.now() - t_step);
  timings_.total += rank_.now() - t_step;
  t_ += dt;
}

void Solver::run(int steps) {
  for (int s = 0; s < steps; ++s) step();
}

double Solver::global_max_divergence() {
  // The divergence stencil reads the lower halos: refresh them first.
  exchange_velocity(u_, v_, w_);
  double m = max_abs_divergence(cfg_.decomp, dx_, dy_, dz_, u_, v_, w_);
  runtime::allreduce_max(rank_.comm(), rank_.id(), &m, 1);
  return m;
}

double Solver::global_kinetic_energy() {
  const Decomp& d = cfg_.decomp;
  double e = 0.0;
  for (std::size_t k = 0; k < d.nzl(); ++k)
    for (std::size_t j = 0; j < d.nyl(); ++j)
      for (std::size_t i = 0; i < d.nx; ++i) {
        const auto js = static_cast<std::ptrdiff_t>(j);
        const auto ks = static_cast<std::ptrdiff_t>(k);
        e += u_.at(i, js, ks) * u_.at(i, js, ks) + v_.at(i, js, ks) * v_.at(i, js, ks) +
             w_.at(i, js, ks) * w_.at(i, js, ks);
      }
  e *= 0.5 * dx_ * dy_ * dz_;
  runtime::allreduce_sum(rank_.comm(), rank_.id(), &e, 1);
  return e;
}

void Solver::reset_timings() {
  timings_.reset();
  poisson_->reset_timings();
}

StepTimings Solver::reduce_timings() {
  double vals[8] = {
      static_cast<double>(timings_.velocity), static_cast<double>(timings_.halo),
      static_cast<double>(timings_.ppe),      static_cast<double>(timings_.ppe_fft),
      static_cast<double>(timings_.ppe_transpose),
      static_cast<double>(timings_.ppe_tridiag),
      static_cast<double>(timings_.correction), static_cast<double>(timings_.total)};
  runtime::allreduce_max(rank_.comm(), rank_.id(), vals, 8);
  StepTimings r;
  r.velocity = static_cast<Time>(vals[0]);
  r.halo = static_cast<Time>(vals[1]);
  r.ppe = static_cast<Time>(vals[2]);
  r.ppe_fft = static_cast<Time>(vals[3]);
  r.ppe_transpose = static_cast<Time>(vals[4]);
  r.ppe_tridiag = static_cast<Time>(vals[5]);
  r.correction = static_cast<Time>(vals[6]);
  r.total = static_cast<Time>(vals[7]);
  return r;
}

}  // namespace unr::powerllel
