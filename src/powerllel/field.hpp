// A real-valued x-pencil field with one halo layer in y and z.
//
// x is fully local (and periodic: stencils wrap the index); y and z halos
// are filled by HaloExchange or by the wall boundary conditions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace unr::powerllel {

class Field {
 public:
  Field(std::size_t nx, std::size_t nyl, std::size_t nzl)
      : nx_(nx), nyl_(nyl), nzl_(nzl),
        data_((nyl + 2) * (nzl + 2) * nx, 0.0) {}

  std::size_t nx() const { return nx_; }
  std::size_t nyl() const { return nyl_; }
  std::size_t nzl() const { return nzl_; }

  /// j in [-1, nyl], k in [-1, nzl]; i in [0, nx).
  double& at(std::size_t i, std::ptrdiff_t j, std::ptrdiff_t k) {
    return data_[index(i, j, k)];
  }
  double at(std::size_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
    return data_[index(i, j, k)];
  }

  /// x-periodic accessor: i may be -1 or nx.
  double& atp(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) {
    return data_[index(wrap_x(i), j, k)];
  }
  double atp(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
    return data_[index(wrap_x(i), j, k)];
  }

  double* raw() { return data_.data(); }
  const double* raw() const { return data_.data(); }
  std::size_t raw_size() const { return data_.size(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  // Stencil callers only ever step one cell past either end, so a pair of
  // branches beats the general double-modulo wrap (this runs ~100x per grid
  // cell per RHS evaluation and is the simulator's hottest scalar code).
  std::size_t wrap_x(std::ptrdiff_t i) const {
    const auto n = static_cast<std::ptrdiff_t>(nx_);
    if (i < 0) i += n;
    if (i >= n) i -= n;
    UNR_DCHECK(i >= 0 && i < n);
    return static_cast<std::size_t>(i);
  }
  std::size_t index(std::size_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
    UNR_DCHECK(i < nx_);
    UNR_DCHECK(j >= -1 && j <= static_cast<std::ptrdiff_t>(nyl_));
    UNR_DCHECK(k >= -1 && k <= static_cast<std::ptrdiff_t>(nzl_));
    const auto ju = static_cast<std::size_t>(j + 1);
    const auto ku = static_cast<std::size_t>(k + 1);
    return i + nx_ * (ju + (nyl_ + 2) * ku);
  }

  std::size_t nx_, nyl_, nzl_;
  std::vector<double> data_;
};

}  // namespace unr::powerllel
