#include "powerllel/transpose.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace unr::powerllel {

namespace {

constexpr int kTransposeTagBase = 2000;

/// Pack the x-block destined for row `q` out of my x-pencil array.
/// Buffer layout: (i local in [0,nxl), j in [0,nyl), k in [0,nzl)), i fastest.
void pack_fwd(const Decomp& d, int q, const Complex* in, Complex* buf) {
  const std::size_t nxl = d.nxl(), nyl = d.nyl(), nzl = d.nzl(), nx = d.nx;
  const std::size_t xoff = static_cast<std::size_t>(q) * nxl;
  std::size_t o = 0;
  for (std::size_t k = 0; k < nzl; ++k)
    for (std::size_t j = 0; j < nyl; ++j) {
      const Complex* src = in + xoff + nx * (j + nyl * k);
      std::memcpy(buf + o, src, nxl * sizeof(Complex));
      o += nxl;
    }
}

/// Unpack row `q`'s block into my y-pencil array (q's y range).
void unpack_fwd(const Decomp& d, int q, const Complex* buf, Complex* out) {
  const std::size_t nxl = d.nxl(), nyl = d.nyl(), nzl = d.nzl(), ny = d.ny;
  const std::size_t yoff = static_cast<std::size_t>(q) * nyl;
  std::size_t o = 0;
  for (std::size_t k = 0; k < nzl; ++k)
    for (std::size_t j = 0; j < nyl; ++j) {
      Complex* dst = out + nxl * ((yoff + j) + ny * k);
      std::memcpy(dst, buf + o, nxl * sizeof(Complex));
      o += nxl;
    }
}

/// Pack the y-block destined for row `q` out of my y-pencil array.
void pack_bwd(const Decomp& d, int q, const Complex* in, Complex* buf) {
  const std::size_t nxl = d.nxl(), nyl = d.nyl(), nzl = d.nzl(), ny = d.ny;
  const std::size_t yoff = static_cast<std::size_t>(q) * nyl;
  std::size_t o = 0;
  for (std::size_t k = 0; k < nzl; ++k)
    for (std::size_t j = 0; j < nyl; ++j) {
      const Complex* src = in + nxl * ((yoff + j) + ny * k);
      std::memcpy(buf + o, src, nxl * sizeof(Complex));
      o += nxl;
    }
}

/// Unpack row `q`'s block into my x-pencil array (q's x range).
void unpack_bwd(const Decomp& d, int q, const Complex* buf, Complex* out) {
  const std::size_t nxl = d.nxl(), nyl = d.nyl(), nzl = d.nzl(), nx = d.nx;
  const std::size_t xoff = static_cast<std::size_t>(q) * nxl;
  std::size_t o = 0;
  for (std::size_t k = 0; k < nzl; ++k)
    for (std::size_t j = 0; j < nyl; ++j) {
      Complex* dst = out + xoff + nx * (j + nyl * k);
      std::memcpy(dst, buf + o, nxl * sizeof(Complex));
      o += nxl;
    }
}

std::size_t block_elems(const Decomp& d) { return d.nxl() * d.nyl() * d.nzl(); }

class MpiTransposer final : public Transposer {
 public:
  MpiTransposer(runtime::Rank& rank, const Decomp& d, int threads)
      : rank_(rank), d_(d), threads_(threads) {
    const std::size_t b = block_elems(d_);
    send_.resize(static_cast<std::size_t>(d_.pr) * b);
    recv_.resize(static_cast<std::size_t>(d_.pr) * b);
  }

  void x_to_y(const Complex* in, Complex* out) override { run(in, out, true); }
  void y_to_x(const Complex* in, Complex* out) override { run(in, out, false); }

 private:
  void run(const Complex* in, Complex* out, bool fwd) {
    const std::size_t b = block_elems(d_);
    const int my_row = d_.row();
    const auto& prof = rank_.fabric().profile();
    const int tag = kTransposeTagBase + (fwd ? 0 : 1);

    // MPI_Alltoallv-like baseline: pack everything, then a pairwise
    // shifted exchange in lockstep (each step completes before the next).
    for (int q = 0; q < d_.pr; ++q) {
      Complex* buf = send_.data() + static_cast<std::size_t>(q) * b;
      if (fwd)
        pack_fwd(d_, q, in, buf);
      else
        pack_bwd(d_, q, in, buf);
    }
    rank_.kernel().sleep_for(
        prof.memcpy_time(static_cast<std::size_t>(d_.pr) * b * sizeof(Complex)) /
        static_cast<Time>(threads_));
    for (int s = 1; s < d_.pr; ++s) {
      const int dst = (my_row + s) % d_.pr;
      const int src = (my_row - s + d_.pr) % d_.pr;
      rank_.sendrecv(d_.rank_of(dst, d_.col()), tag,
                     send_.data() + static_cast<std::size_t>(dst) * b,
                     b * sizeof(Complex), d_.rank_of(src, d_.col()), tag,
                     recv_.data() + static_cast<std::size_t>(src) * b,
                     b * sizeof(Complex));
    }

    // Self block straight from the send staging.
    std::memcpy(recv_.data() + static_cast<std::size_t>(my_row) * b,
                send_.data() + static_cast<std::size_t>(my_row) * b,
                b * sizeof(Complex));
    for (int q = 0; q < d_.pr; ++q) {
      const Complex* buf = recv_.data() + static_cast<std::size_t>(q) * b;
      if (fwd)
        unpack_fwd(d_, q, buf, out);
      else
        unpack_bwd(d_, q, buf, out);
    }
    rank_.kernel().sleep_for(
        prof.memcpy_time(static_cast<std::size_t>(d_.pr) * b * sizeof(Complex)) /
        static_cast<Time>(threads_));
  }

  runtime::Rank& rank_;
  Decomp d_;
  int threads_;
  std::vector<Complex> send_, recv_;
};

class UnrTransposer final : public Transposer {
 public:
  UnrTransposer(runtime::Rank& rank, unrlib::Unr& unr, const Decomp& d, int threads)
      : rank_(rank), unr_(unr), d_(d), threads_(threads) {
    for (int dir = 0; dir < 2; ++dir) setup_direction(dir);
  }

  void x_to_y(const Complex* in, Complex* out) override { run(in, out, true); }
  void y_to_x(const Complex* in, Complex* out) override { run(in, out, false); }

 private:
  struct Side {
    std::vector<Complex> send, recv;        // pr blocks each
    unrlib::MemHandle send_mem, recv_mem;
    std::vector<unrlib::SigId> recv_sigs;   // one per source: per-block consumption
    unrlib::SigId send_sig = unrlib::kNoSig;
    std::vector<unrlib::Blk> peer;          // where my block for row q lives at q
    bool used = false;
  };

  void setup_direction(int dir) {
    Side& s = sides_[static_cast<std::size_t>(dir)];
    const std::size_t b = block_elems(d_);
    const auto npr = static_cast<std::size_t>(d_.pr);
    s.send.resize(npr * b);
    s.recv.resize(npr * b);
    s.send_mem = unr_.mem_reg(rank_.id(), s.send.data(), npr * b * sizeof(Complex));
    s.recv_mem = unr_.mem_reg(rank_.id(), s.recv.data(), npr * b * sizeof(Complex));
    s.recv_sigs.resize(npr, unrlib::kNoSig);
    s.peer.resize(npr);
    if (d_.pr > 1) s.send_sig = unr_.sig_init(rank_.id(), d_.pr - 1);

    // Exchange blks: my recv slot q (bound to its own signal so blocks can
    // be consumed per source as they land) goes to row q.
    std::vector<unrlib::Blk> my_blks(npr);
    std::vector<runtime::RequestPtr> reqs;
    for (int q = 0; q < d_.pr; ++q) {
      if (q == d_.row()) continue;
      const auto qi = static_cast<std::size_t>(q);
      s.recv_sigs[qi] = unr_.sig_init(rank_.id(), 1);
      my_blks[qi] = unr_.blk_init(rank_.id(), s.recv_mem, qi * b * sizeof(Complex),
                                  b * sizeof(Complex), s.recv_sigs[qi]);
      const int nb = d_.rank_of(q, d_.col());
      const int tag = kTransposeTagBase + 100 + dir;
      reqs.push_back(rank_.irecv(nb, tag, &s.peer[qi], sizeof(unrlib::Blk)));
      reqs.push_back(rank_.isend(nb, tag, &my_blks[qi], sizeof(unrlib::Blk)));
    }
    rank_.wait_all(reqs);
  }

  void run(const Complex* in, Complex* out, bool fwd) {
    Side& s = sides_[fwd ? 0 : 1];
    const std::size_t b = block_elems(d_);
    const int my_row = d_.row();
    const auto& prof = rank_.fabric().profile();

    if (s.used && s.send_sig != unrlib::kNoSig) {
      unr_.sig_wait(rank_.id(), s.send_sig);
      unr_.sig_reset(rank_.id(), s.send_sig);
    }

    // Pipelined sends: pack one block, fire it, pack the next (Fig. 3e).
    for (int off = 0; off < d_.pr; ++off) {
      const int q = (my_row + off) % d_.pr;
      const auto qi = static_cast<std::size_t>(q);
      Complex* buf = s.send.data() + qi * b;
      if (fwd)
        pack_fwd(d_, q, in, buf);
      else
        pack_bwd(d_, q, in, buf);
      rank_.kernel().sleep_for(prof.memcpy_time(b * sizeof(Complex)) /
                               static_cast<Time>(threads_));
      if (q == my_row) {
        if (fwd)
          unpack_fwd(d_, q, buf, out);
        else
          unpack_bwd(d_, q, buf, out);
        rank_.kernel().sleep_for(prof.memcpy_time(b * sizeof(Complex)) /
                                 static_cast<Time>(threads_));
        continue;
      }
      const unrlib::Blk local = unr_.blk_init(rank_.id(), s.send_mem,
                                              qi * b * sizeof(Complex),
                                              b * sizeof(Complex), s.send_sig);
      unr_.put(rank_.id(), local, s.peer[qi]);
    }

    // Consume blocks in ARRIVAL order (Fig. 3e pipelining): wait on the
    // union of the per-source signals and unpack whichever block landed.
    std::vector<unrlib::SigId> pending_sigs;
    std::vector<int> pending_rows;
    for (int off = 1; off < d_.pr; ++off) {
      const int q = (my_row + off) % d_.pr;
      pending_sigs.push_back(s.recv_sigs[static_cast<std::size_t>(q)]);
      pending_rows.push_back(q);
    }
    while (!pending_sigs.empty()) {
      const std::size_t hit = unr_.sig_wait_any(rank_.id(), pending_sigs);
      const int q = pending_rows[hit];
      const auto qi = static_cast<std::size_t>(q);
      unr_.sig_reset(rank_.id(), s.recv_sigs[qi]);
      const Complex* buf = s.recv.data() + qi * b;
      if (fwd)
        unpack_fwd(d_, q, buf, out);
      else
        unpack_bwd(d_, q, buf, out);
      rank_.kernel().sleep_for(prof.memcpy_time(b * sizeof(Complex)) /
                               static_cast<Time>(threads_));
      pending_sigs.erase(pending_sigs.begin() + static_cast<std::ptrdiff_t>(hit));
      pending_rows.erase(pending_rows.begin() + static_cast<std::ptrdiff_t>(hit));
    }
    s.used = true;
  }

  runtime::Rank& rank_;
  unrlib::Unr& unr_;
  Decomp d_;
  int threads_;
  std::array<Side, 2> sides_;
};

}  // namespace

std::unique_ptr<Transposer> make_mpi_transposer(runtime::Rank& rank, const Decomp& d,
                                                int threads) {
  return std::make_unique<MpiTransposer>(rank, d, threads);
}

std::unique_ptr<Transposer> make_unr_transposer(runtime::Rank& rank, unrlib::Unr& unr,
                                                const Decomp& d, int threads) {
  return std::make_unique<UnrTransposer>(rank, unr, d, threads);
}

}  // namespace unr::powerllel
