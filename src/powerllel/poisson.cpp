#include "powerllel/poisson.hpp"

#include <cmath>

#include "common/check.hpp"

namespace unr::powerllel {

namespace {
constexpr int kTridiagTagBase = 3000;
/// Pin value for the singular (0,0) mode's first row: effectively replaces
/// that row with "p = 0" while keeping the system tridiagonal.
constexpr double kPinDiag = 1e30;
}  // namespace

PoissonSolver::PoissonSolver(runtime::Rank& rank, Config cfg)
    : rank_(rank), cfg_(std::move(cfg)) {
  const Decomp& d = cfg_.decomp;
  d.validate();
  UNR_CHECK_MSG(is_power_of_two(d.nx) && is_power_of_two(d.ny),
                "nx and ny must be powers of two for the radix-2 FFT");
  ns_per_point_ = cfg_.compute_ns_per_point > 0.0
                      ? cfg_.compute_ns_per_point
                      : rank_.fabric().profile().compute_ns_per_cell;

  if (cfg_.backend == CommBackend::kUnr) {
    UNR_CHECK_MSG(cfg_.unr != nullptr, "UNR backend requires a Unr instance");
    transposer_ = make_unr_transposer(rank_, *cfg_.unr, d, cfg_.threads);
  } else {
    transposer_ = make_mpi_transposer(rank_, d, cfg_.threads);
  }

  const std::size_t nlines = d.nxl() * d.ny;
  const std::size_t m = d.nzl();
  // Largest tridiag sweep message: 3 doubles per line.
  const std::size_t max_bytes = nlines * 3 * sizeof(double);
  if (cfg_.backend == CommBackend::kUnr)
    port_ = make_unr_tridiag_port(rank_, *cfg_.unr, d.col_group(), d.col(),
                                  kTridiagTagBase, max_bytes);
  else
    port_ = make_mpi_tridiag_port(rank_, d.col_group(), d.col(), kTridiagTagBase);
  tridiag_ = std::make_unique<DistTridiag>(d.col(), d.pc, m);

  // Precompute the per-line systems. Line order: l = i + nxl * j.
  const double idz2 = 1.0 / (cfg_.dz * cfg_.dz);
  lines_.resize(nlines);
  diag_.resize(nlines * m);
  for (std::size_t j = 0; j < d.ny; ++j) {
    const double ky2 = laplacian_eigenvalue(j, d.ny, cfg_.dy);
    for (std::size_t i = 0; i < d.nxl(); ++i) {
      const std::size_t ig = d.x0() + i;
      const double kx2 = laplacian_eigenvalue(ig, d.nx, cfg_.dx);
      const double k2 = kx2 + ky2;
      const std::size_t l = i + d.nxl() * j;
      lines_[l] = TridiagLine{idz2, idz2};
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t kg = d.z0() + k;
        // Neumann walls: the missing neighbor's coupling folds back into
        // the diagonal (ghost p equals interior p).
        const bool at_bottom = kg == 0;
        const bool at_top = kg == d.nz - 1;
        double b = -2.0 * idz2 - k2;
        if (at_bottom || at_top) b = -idz2 - k2;
        if (k2 == 0.0 && at_bottom) b = kPinDiag;  // pin the singular mode
        diag_[l * m + k] = b;
      }
    }
  }

  cx_.resize(d.nx * d.nyl() * d.nzl());
  cy_.resize(d.nxl() * d.ny * d.nzl());
  cz_.resize(nlines * m);
}

void PoissonSolver::charge(double points, double factor) {
  rank_.compute(static_cast<Time>(points * factor * ns_per_point_), cfg_.threads);
}

void PoissonSolver::solve(std::span<double> rhs) {
  const Decomp& d = cfg_.decomp;
  const std::size_t nloc = d.nx * d.nyl() * d.nzl();
  UNR_CHECK(rhs.size() == nloc);
  const std::size_t nlines = d.nxl() * d.ny;
  const std::size_t m = d.nzl();
  const Time t_start = rank_.now();

  // -> complex
  for (std::size_t i = 0; i < nloc; ++i) cx_[i] = Complex(rhs[i], 0.0);
  charge(static_cast<double>(nloc), 0.25);

  // FFT in x.
  Time t0 = rank_.now();
  fft_batch(cx_.data(), d.nx, d.nyl() * d.nzl(), false);
  charge(static_cast<double>(nloc) * std::log2(static_cast<double>(d.nx)), 0.6);
  timings_.fft += rank_.now() - t0;

  // Transpose to the y-pencil.
  t0 = rank_.now();
  transposer_->x_to_y(cx_.data(), cy_.data());
  timings_.transpose += rank_.now() - t0;

  // FFT in y.
  t0 = rank_.now();
  for (std::size_t k = 0; k < d.nzl(); ++k)
    fft_strided(cy_.data() + d.nxl() * d.ny * k, d.ny, d.nxl(), d.nxl(), 1, false);
  charge(static_cast<double>(nloc) * std::log2(static_cast<double>(d.ny)), 0.6);
  timings_.fft += rank_.now() - t0;

  // Repack to line-major z and solve the tridiagonal systems.
  t0 = rank_.now();
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t l = 0; l < nlines; ++l)
      cz_[l * m + k] = cy_[l + nlines * k];
  charge(static_cast<double>(nlines * m), 0.25);
  tridiag_->solve(lines_, diag_, cz_.data(), nlines, port_->port(), cfg_.method);
  charge(static_cast<double>(nlines * m), 3.0);  // the 3 local Thomas passes
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t l = 0; l < nlines; ++l)
      cy_[l + nlines * k] = cz_[l * m + k];
  charge(static_cast<double>(nlines * m), 0.25);
  timings_.tridiag += rank_.now() - t0;

  // Inverse FFT y.
  t0 = rank_.now();
  for (std::size_t k = 0; k < d.nzl(); ++k)
    fft_strided(cy_.data() + d.nxl() * d.ny * k, d.ny, d.nxl(), d.nxl(), 1, true);
  charge(static_cast<double>(nloc) * std::log2(static_cast<double>(d.ny)), 0.6);
  timings_.fft += rank_.now() - t0;

  // Transpose back to the x-pencil.
  t0 = rank_.now();
  transposer_->y_to_x(cy_.data(), cx_.data());
  timings_.transpose += rank_.now() - t0;

  // Inverse FFT x, extract the real part.
  t0 = rank_.now();
  fft_batch(cx_.data(), d.nx, d.nyl() * d.nzl(), true);
  charge(static_cast<double>(nloc) * std::log2(static_cast<double>(d.nx)), 0.6);
  timings_.fft += rank_.now() - t0;
  for (std::size_t i = 0; i < nloc; ++i) rhs[i] = cx_[i].real();
  charge(static_cast<double>(nloc), 0.25);

  timings_.total += rank_.now() - t_start;
}

}  // namespace unr::powerllel
