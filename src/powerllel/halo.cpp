#include "powerllel/halo.hpp"

#include <array>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace unr::powerllel {

namespace {

constexpr int kHaloTagBase = 1000;

// Direction indices: 0 = y-, 1 = y+, 2 = z-, 3 = z+.
struct Dir {
  bool is_y;
  int sign;  // -1 or +1
};
constexpr std::array<Dir, 4> kDirs{{{true, -1}, {true, 1}, {false, -1}, {false, 1}}};

std::size_t plane_doubles(const Decomp& d, bool is_y) {
  return is_y ? d.nx * d.nzl() : d.nx * d.nyl();
}

/// Pack the interior plane that travels in direction `dir` for one field.
void pack_plane(const Field& f, const Dir& dir, double* out) {
  const auto nyl = static_cast<std::ptrdiff_t>(f.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(f.nzl());
  std::size_t o = 0;
  if (dir.is_y) {
    const std::ptrdiff_t j = dir.sign < 0 ? 0 : nyl - 1;
    for (std::ptrdiff_t k = 0; k < nzl; ++k)
      for (std::size_t i = 0; i < f.nx(); ++i) out[o++] = f.at(i, j, k);
  } else {
    const std::ptrdiff_t k = dir.sign < 0 ? 0 : nzl - 1;
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::size_t i = 0; i < f.nx(); ++i) out[o++] = f.at(i, j, k);
  }
}

/// Unpack a received plane into the halo on the `dir` side.
void unpack_plane(Field& f, const Dir& dir, const double* in) {
  const auto nyl = static_cast<std::ptrdiff_t>(f.nyl());
  const auto nzl = static_cast<std::ptrdiff_t>(f.nzl());
  std::size_t o = 0;
  if (dir.is_y) {
    const std::ptrdiff_t j = dir.sign < 0 ? -1 : nyl;
    for (std::ptrdiff_t k = 0; k < nzl; ++k)
      for (std::size_t i = 0; i < f.nx(); ++i) f.at(i, j, k) = in[o++];
  } else {
    const std::ptrdiff_t k = dir.sign < 0 ? -1 : nzl;
    for (std::ptrdiff_t j = 0; j < nyl; ++j)
      for (std::size_t i = 0; i < f.nx(); ++i) f.at(i, j, k) = in[o++];
  }
}

int neighbor_of(const Decomp& d, int dir_index) {
  const Dir& dir = kDirs[static_cast<std::size_t>(dir_index)];
  return dir.is_y ? d.y_neighbor(dir.sign) : d.z_neighbor(dir.sign);
}

/// The opposite direction (data sent in dir `i` lands in the peer's halo on
/// the opposite side).
int opposite(int dir_index) { return dir_index ^ 1; }

class MpiHalo final : public HaloExchange {
 public:
  MpiHalo(runtime::Rank& rank, const Decomp& d, int n_fields, int threads)
      : rank_(rank), d_(d), n_fields_(n_fields), threads_(threads) {
    for (int dir = 0; dir < 4; ++dir) {
      const std::size_t n =
          plane_doubles(d_, kDirs[static_cast<std::size_t>(dir)].is_y) *
          static_cast<std::size_t>(n_fields);
      send_[static_cast<std::size_t>(dir)].resize(n);
      recv_[static_cast<std::size_t>(dir)].resize(n);
    }
  }

  void start(std::span<Field* const> fields) override {
    UNR_CHECK(static_cast<int>(fields.size()) == n_fields_);
    UNR_CHECK_MSG(reqs_.empty(), "halo start() while an exchange is in flight");
    const auto& prof = rank_.fabric().profile();

    // Post all receives first.
    for (int dir = 0; dir < 4; ++dir) {
      const int nb = neighbor_of(d_, dir);
      if (nb < 0 || nb == rank_.id()) continue;
      auto& buf = recv_[static_cast<std::size_t>(dir)];
      reqs_.push_back(rank_.irecv(nb, kHaloTagBase + opposite(dir), buf.data(),
                                  buf.size() * sizeof(double)));
    }
    // Pack and send.
    std::size_t packed_bytes = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const int nb = neighbor_of(d_, dir);
      if (nb < 0) continue;
      auto& buf = send_[static_cast<std::size_t>(dir)];
      const std::size_t per_field =
          plane_doubles(d_, kDirs[static_cast<std::size_t>(dir)].is_y);
      for (int f = 0; f < n_fields_; ++f)
        pack_plane(*fields[static_cast<std::size_t>(f)],
                   kDirs[static_cast<std::size_t>(dir)],
                   buf.data() + static_cast<std::size_t>(f) * per_field);
      packed_bytes += buf.size() * sizeof(double);
      if (nb == rank_.id()) {
        // pr == 1: periodic y wraps onto this rank.
        recv_[static_cast<std::size_t>(opposite(dir))] = buf;
        continue;
      }
      reqs_.push_back(
          rank_.isend(nb, kHaloTagBase + dir, buf.data(), buf.size() * sizeof(double)));
    }
    rank_.kernel().sleep_for(prof.memcpy_time(packed_bytes) /
                             static_cast<Time>(threads_));
  }

  void finish(std::span<Field* const> fields) override {
    const auto& prof = rank_.fabric().profile();
    rank_.wait_all(reqs_);
    reqs_.clear();

    // Unpack everything that has a source.
    std::size_t unpacked_bytes = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const int nb = neighbor_of(d_, dir);
      if (nb < 0) continue;
      auto& buf = recv_[static_cast<std::size_t>(dir)];
      const std::size_t per_field =
          plane_doubles(d_, kDirs[static_cast<std::size_t>(dir)].is_y);
      for (int f = 0; f < n_fields_; ++f)
        unpack_plane(*fields[static_cast<std::size_t>(f)],
                     kDirs[static_cast<std::size_t>(dir)],
                     buf.data() + static_cast<std::size_t>(f) * per_field);
      unpacked_bytes += buf.size() * sizeof(double);
    }
    rank_.kernel().sleep_for(prof.memcpy_time(unpacked_bytes) /
                             static_cast<Time>(threads_));
  }

  void exchange(std::span<Field* const> fields) override {
    start(fields);
    finish(fields);
  }

 private:
  runtime::Rank& rank_;
  Decomp d_;
  int n_fields_;
  int threads_;
  std::array<std::vector<double>, 4> send_, recv_;
  std::vector<runtime::RequestPtr> reqs_;
};

class UnrHalo final : public HaloExchange {
 public:
  static constexpr int kSets = 2;  // RK1 / RK2 double buffering (Fig. 3d)

  UnrHalo(runtime::Rank& rank, unrlib::Unr& unr, const Decomp& d, int n_fields,
          int threads)
      : rank_(rank), unr_(unr), d_(d), n_fields_(n_fields), threads_(threads) {
    // Per-direction staging layout inside one contiguous registered store
    // (the paper: register few large regions, subdivide into BLKs).
    std::size_t total = 0;
    int remote_neighbors = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const auto di = static_cast<std::size_t>(dir);
      count_[di] = plane_doubles(d_, kDirs[di].is_y) * static_cast<std::size_t>(n_fields);
      offset_[di] = total;
      total += count_[di];
      const int nb = neighbor_of(d_, dir);
      remote_[di] = nb >= 0 && nb != rank_.id();
      if (remote_[di]) ++remote_neighbors;
    }

    for (int s = 0; s < kSets; ++s) {
      auto& set = sets_[static_cast<std::size_t>(s)];
      set.send_store.assign(total, 0.0);
      set.recv_store.assign(total, 0.0);
      set.send_mem =
          unr_.mem_reg(rank_.id(), set.send_store.data(), total * sizeof(double));
      set.recv_mem =
          unr_.mem_reg(rank_.id(), set.recv_store.data(), total * sizeof(double));
      if (remote_neighbors > 0) {
        set.recv_sig = unr_.sig_init(rank_.id(), remote_neighbors);
        set.send_sig = unr_.sig_init(rank_.id(), remote_neighbors);
      }

      // Exchange Blks: my receive staging for direction `dir` is filled by
      // the neighbor on that side (who sends in the opposite direction).
      // All sends/recvs are posted before any wait: with pr == 2 both y
      // neighbors are the same rank and a blocking pairwise exchange would
      // deadlock.
      std::vector<unrlib::Blk> my_blks(4);
      std::vector<runtime::RequestPtr> reqs;
      for (int dir = 0; dir < 4; ++dir) {
        const auto di = static_cast<std::size_t>(dir);
        if (!remote_[di]) continue;
        const int nb = neighbor_of(d_, dir);
        my_blks[di] =
            unr_.blk_init(rank_.id(), set.recv_mem, offset_[di] * sizeof(double),
                          count_[di] * sizeof(double), set.recv_sig);
        const int tag = kHaloTagBase + 100 + s * 8 + dir;
        // My `dir`-side staging pairs with the peer's opposite-side one; the
        // tags must agree on both ends of the same physical link.
        const int peer_tag = kHaloTagBase + 100 + s * 8 + opposite(dir);
        reqs.push_back(rank_.irecv(nb, peer_tag, &set.peer[di], sizeof(unrlib::Blk)));
        reqs.push_back(rank_.isend(nb, tag, &my_blks[di], sizeof(unrlib::Blk)));
      }
      rank_.wait_all(reqs);
    }
  }

  void start(std::span<Field* const> fields) override {
    UNR_CHECK(static_cast<int>(fields.size()) == n_fields_);
    UNR_CHECK_MSG(inflight_ == nullptr, "halo start() while an exchange is in flight");
    const auto& prof = rank_.fabric().profile();
    Set& set = sets_[static_cast<std::size_t>(current_)];
    current_ = (current_ + 1) % kSets;
    inflight_ = &set;

    // Reuse of this set's send staging requires the previous puts from it to
    // have completed locally.
    if (set.used && set.send_sig != unrlib::kNoSig) {
      unr_.sig_wait(rank_.id(), set.send_sig);
      unr_.sig_reset(rank_.id(), set.send_sig);
    }

    // Pack and fire the notified puts. No pre-synchronization: the buffer-set
    // alternation guarantees the peer's staging is free (Fig. 3d).
    std::size_t packed_bytes = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const auto di = static_cast<std::size_t>(dir);
      const int nb = neighbor_of(d_, dir);
      if (nb < 0) continue;
      double* out = set.send_store.data() + offset_[di];
      const std::size_t per_field = count_[di] / static_cast<std::size_t>(n_fields_);
      for (int f = 0; f < n_fields_; ++f)
        pack_plane(*fields[static_cast<std::size_t>(f)], kDirs[di],
                   out + static_cast<std::size_t>(f) * per_field);
      packed_bytes += count_[di] * sizeof(double);
      if (nb == rank_.id()) {
        // pr == 1: periodic y wraps onto this rank.
        const auto oi = static_cast<std::size_t>(opposite(dir));
        std::memcpy(set.recv_store.data() + offset_[oi], out,
                    count_[di] * sizeof(double));
        continue;
      }
      const unrlib::Blk local =
          unr_.blk_init(rank_.id(), set.send_mem, offset_[di] * sizeof(double),
                        count_[di] * sizeof(double), set.send_sig);
      unr_.put(rank_.id(), local, set.peer[di]);
    }
    rank_.kernel().sleep_for(prof.memcpy_time(packed_bytes) /
                             static_cast<Time>(threads_));
  }

  void finish(std::span<Field* const> fields) override {
    UNR_CHECK(inflight_ != nullptr);
    const auto& prof = rank_.fabric().profile();
    Set& set = *inflight_;
    inflight_ = nullptr;

    // One aggregated MMAS signal covers all neighbors.
    if (set.recv_sig != unrlib::kNoSig) {
      unr_.sig_wait(rank_.id(), set.recv_sig);
      unr_.sig_reset(rank_.id(), set.recv_sig);
    }

    std::size_t unpacked_bytes = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const auto di = static_cast<std::size_t>(dir);
      if (neighbor_of(d_, dir) < 0) continue;
      const double* in = set.recv_store.data() + offset_[di];
      const std::size_t per_field = count_[di] / static_cast<std::size_t>(n_fields_);
      for (int f = 0; f < n_fields_; ++f)
        unpack_plane(*fields[static_cast<std::size_t>(f)], kDirs[di],
                     in + static_cast<std::size_t>(f) * per_field);
      unpacked_bytes += count_[di] * sizeof(double);
    }
    rank_.kernel().sleep_for(prof.memcpy_time(unpacked_bytes) /
                             static_cast<Time>(threads_));
    set.used = true;
  }

  void exchange(std::span<Field* const> fields) override {
    start(fields);
    finish(fields);
  }

 private:
  struct Set {
    std::vector<double> send_store, recv_store;
    unrlib::MemHandle send_mem, recv_mem;
    unrlib::SigId recv_sig = unrlib::kNoSig;
    unrlib::SigId send_sig = unrlib::kNoSig;
    std::array<unrlib::Blk, 4> peer{};
    bool used = false;
  };

  runtime::Rank& rank_;
  unrlib::Unr& unr_;
  Decomp d_;
  int n_fields_;
  int threads_;
  std::array<std::size_t, 4> offset_{}, count_{};
  std::array<bool, 4> remote_{};
  std::array<Set, kSets> sets_;
  int current_ = 0;
  Set* inflight_ = nullptr;
};

}  // namespace

std::unique_ptr<HaloExchange> make_mpi_halo(runtime::Rank& rank, const Decomp& d,
                                            int n_fields, int threads) {
  return std::make_unique<MpiHalo>(rank, d, n_fields, threads);
}

std::unique_ptr<HaloExchange> make_unr_halo(runtime::Rank& rank, unrlib::Unr& unr,
                                            const Decomp& d, int n_fields,
                                            int threads) {
  return std::make_unique<UnrHalo>(rank, unr, d, n_fields, threads);
}

}  // namespace unr::powerllel
