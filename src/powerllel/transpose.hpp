// Pencil transposes for the PPE solver (Fig. 3c of the paper).
//
// x-pencil (nx, ny/pr, nz/pc) <-> y-pencil (nx/pr, ny, nz/pc), redistributed
// within the row group (the pr ranks sharing a z slab). Both layouts store x
// fastest, then y, then z.
//
// Backends:
//   * MPI — pack everything, pairwise nonblocking exchange, unpack (the
//     baseline Alltoall structure).
//   * UNR — pipelined notified PUTs (Fig. 3e): each peer's block is packed
//     and fired immediately; the receiver consumes blocks per-source as
//     their individual signals trigger. Back-to-back transposes act as each
//     other's pre-synchronization, so no explicit sync remains.
#pragma once

#include <memory>

#include "powerllel/decomp.hpp"
#include "powerllel/fft.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {

class Transposer {
 public:
  virtual ~Transposer() = default;
  /// x-pencil -> y-pencil. in: (nx, nyl, nzl); out: (nxl, ny, nzl).
  virtual void x_to_y(const Complex* in, Complex* out) = 0;
  /// y-pencil -> x-pencil. in: (nxl, ny, nzl); out: (nx, nyl, nzl).
  virtual void y_to_x(const Complex* in, Complex* out) = 0;
};

/// `threads`: pack/unpack copies are thread-parallel; time charge divided.
std::unique_ptr<Transposer> make_mpi_transposer(runtime::Rank& rank, const Decomp& d,
                                                int threads = 1);
std::unique_ptr<Transposer> make_unr_transposer(runtime::Rank& rank, unrlib::Unr& unr,
                                                const Decomp& d, int threads = 1);

}  // namespace unr::powerllel
