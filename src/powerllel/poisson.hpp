// FFT-based Pressure Poisson Equation solver (PowerLLEL's PPE, Fig. 3c/3e).
//
// Pipeline: FFT(x) -> transpose to y-pencil -> FFT(y) -> distributed
// tridiagonal solve along z -> inverse FFT(y) -> transpose back -> inverse
// FFT(x). Periodic in x and y; Neumann (wall) boundaries in z. The singular
// (kx=ky=0) mode is pinned at one cell.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "powerllel/decomp.hpp"
#include "powerllel/fft.hpp"
#include "powerllel/transpose.hpp"
#include "powerllel/tridiag.hpp"
#include "powerllel/tridiag_port.hpp"
#include "runtime/world.hpp"
#include "unr/unr.hpp"

namespace unr::powerllel {

enum class CommBackend { kMpi, kUnr };

struct PoissonTimings {
  Time fft = 0;
  Time transpose = 0;
  Time tridiag = 0;
  Time total = 0;
  void reset() { *this = PoissonTimings{}; }
};

class PoissonSolver {
 public:
  struct Config {
    Decomp decomp;
    double dx = 1.0, dy = 1.0, dz = 1.0;
    CommBackend backend = CommBackend::kMpi;
    unrlib::Unr* unr = nullptr;  ///< required when backend == kUnr
    TridiagMethod method = TridiagMethod::kReducedExact;
    int threads = 1;             ///< compute threads for time charging
    double compute_ns_per_point = 0.0;  ///< 0: use the profile's value
  };

  PoissonSolver(runtime::Rank& rank, Config cfg);

  /// Solve lap(p) = rhs in place. `rhs` is the local x-pencil block
  /// (nx * nyl * nzl reals, x fastest, no halo); on return it holds p.
  void solve(std::span<double> rhs);

  const PoissonTimings& timings() const { return timings_; }
  void reset_timings() { timings_.reset(); }

 private:
  void charge(double points, double factor);

  runtime::Rank& rank_;
  Config cfg_;
  std::unique_ptr<Transposer> transposer_;
  std::unique_ptr<TridiagPort> port_;
  std::unique_ptr<DistTridiag> tridiag_;

  // Precomputed per-line tridiagonal systems (line = (i_local, j_global) in
  // the y-pencil; nlines = nxl * ny).
  std::vector<TridiagLine> lines_;
  std::vector<double> diag_;

  std::vector<Complex> cx_;   // x-pencil complex work array
  std::vector<Complex> cy_;   // y-pencil complex work array
  std::vector<Complex> cz_;   // line-major z work array
  PoissonTimings timings_;
  double ns_per_point_ = 2.0;
};

}  // namespace unr::powerllel
