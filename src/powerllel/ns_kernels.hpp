// Finite-difference kernels of the mini-PowerLLEL solver.
//
// Staggered MAC grid, 2nd-order central differences:
//   u(i,j,k) — x-face right of cell i        v(i,j,k) — y-face above cell j
//   w(i,j,k) — z-face above cell k           p(i,j,k) — cell center
// Periodic in x (index wrap) and y (halo exchange); walls in z (no-slip or
// free-slip). The staggering makes the projection exactly divergence-free
// for the compact 7-point Laplacian solved by the PPE.
#pragma once

#include <span>

#include "powerllel/decomp.hpp"
#include "powerllel/field.hpp"

namespace unr::powerllel {

enum class ZBc { kNoSlip, kFreeSlip };

/// Fill the wall-side z halos (ghost cells / wall faces) of the velocity.
/// Interior z halos must already be exchanged. Only the bottom/top ranks of
/// the column group touch anything.
void apply_velocity_z_bc(const Decomp& d, ZBc bc, Field& u, Field& v, Field& w);

/// Neumann ghost values for the pressure at the walls.
void apply_pressure_z_bc(const Decomp& d, Field& p);

/// Cell subsets for computation/communication overlap: kInterior cells never
/// read a halo value, so their stencils can run while the halo exchange is
/// still in flight; kBoundary is the complement.
enum class Region { kAll, kInterior, kBoundary };

/// Momentum right-hand side: advection (divergence form) + viscous
/// diffusion, written into fu/fv/fw for the local faces of `region`.
/// Wall w-faces get 0.
void momentum_rhs(const Decomp& d, double dx, double dy, double dz, double nu,
                  const Field& u, const Field& v, const Field& w, Field& fu,
                  Field& fv, Field& fw, Region region = Region::kAll);

/// Fraction of local cells in the interior region (for cost accounting).
double interior_fraction(const Decomp& d);

/// out[i + nx*(j + nyl*k)] = div(u,v,w) at cell (i,j,k).
void divergence(const Decomp& d, double dx, double dy, double dz, const Field& u,
                const Field& v, const Field& w, std::span<double> out);

/// u -= dt * grad(p). Wall w-faces are left untouched (they stay 0).
void project_velocity(const Decomp& d, double dx, double dy, double dz, double dt,
                      const Field& p, Field& u, Field& v, Field& w);

/// Local maximum |div|.
double max_abs_divergence(const Decomp& d, double dx, double dy, double dz,
                          const Field& u, const Field& v, const Field& w);

}  // namespace unr::powerllel
