#include "powerllel/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace unr::powerllel {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(Complex* data, std::size_t n, bool inverse) {
  UNR_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two, got " << n);
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex a = data[i + k];
        const Complex b = data[i + k + len / 2] * w;
        data[i + k] = a + b;
        data[i + k + len / 2] = a - b;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= inv_n;
  }
}

void fft_batch(Complex* data, std::size_t n, std::size_t batch, bool inverse) {
  for (std::size_t b = 0; b < batch; ++b) fft_inplace(data + b * n, n, inverse);
}

void fft_strided(Complex* data, std::size_t n, std::size_t elem_stride,
                 std::size_t batch, std::size_t line_stride, bool inverse) {
  std::vector<Complex> line(n);
  for (std::size_t b = 0; b < batch; ++b) {
    Complex* base = data + b * line_stride;
    for (std::size_t i = 0; i < n; ++i) line[i] = base[i * elem_stride];
    fft_inplace(line.data(), n, inverse);
    for (std::size_t i = 0; i < n; ++i) base[i * elem_stride] = line[i];
  }
}

double laplacian_eigenvalue(std::size_t k, std::size_t n, double h) {
  const double theta = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
  return (2.0 - 2.0 * std::cos(theta)) / (h * h);
}

void dft_reference(const Complex* in, Complex* out, std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
}

}  // namespace unr::powerllel
