#include "svc/frame.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <unistd.h>

namespace unr::svc {

namespace {

/// Read exactly `n` bytes; distinguishes EOF-at-a-boundary (first byte)
/// from EOF mid-buffer.
FrameStatus read_exact(int fd, void* buf, std::size_t n, bool at_boundary) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      return (at_boundary && got == 0) ? FrameStatus::kClosed
                                       : FrameStatus::kTruncated;
    }
    if (errno == EINTR) continue;
    return FrameStatus::kIoError;
  }
  return FrameStatus::kOk;
}

FrameStatus write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a client that vanished mid-run must surface as an error
    // on THIS session, not a SIGPIPE that kills the whole server.
    const ssize_t w = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (w >= 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return FrameStatus::kIoError;
  }
  return FrameStatus::kOk;
}

}  // namespace

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kTooLarge: return "too-large";
    case FrameStatus::kEmpty: return "empty";
    case FrameStatus::kIoError: return "io-error";
  }
  return "?";
}

FrameStatus read_frame(int fd, std::string& payload) {
  unsigned char hdr[4];
  FrameStatus st = read_exact(fd, hdr, sizeof hdr, /*at_boundary=*/true);
  if (st != FrameStatus::kOk) return st;
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len == 0) return FrameStatus::kEmpty;
  if (len > kMaxFrameBytes) return FrameStatus::kTooLarge;
  payload.resize(len);
  return read_exact(fd, payload.data(), len, /*at_boundary=*/false);
}

FrameStatus write_frame(int fd, const std::string& payload) {
  if (payload.empty()) return FrameStatus::kEmpty;
  if (payload.size() > kMaxFrameBytes) return FrameStatus::kTooLarge;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  FrameStatus st = write_all(fd, hdr, sizeof hdr);
  if (st != FrameStatus::kOk) return st;
  return write_all(fd, payload.data(), payload.size());
}

bool encode_frame(const std::string& payload, std::string& wire) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  wire.clear();
  wire.reserve(4 + payload.size());
  wire.push_back(static_cast<char>(len >> 24));
  wire.push_back(static_cast<char>(len >> 16));
  wire.push_back(static_cast<char>(len >> 8));
  wire.push_back(static_cast<char>(len));
  wire += payload;
  return true;
}

}  // namespace unr::svc
