#include "svc/run.hpp"

#include <cstdio>
#include <sstream>

#include "check/runner.hpp"
#include "svc/json.hpp"
#include "svc/scenarios.hpp"

namespace unr::svc {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void run_workload_spec(const RunSpec& spec, RunOutcome& out) {
  const std::string invalid = check::validate(*spec.workload);
  if (!invalid.empty()) {
    out.error = "invalid workload: " + invalid;
    return;
  }
  check::RunOptions opt;
  if (!check::channel_from_token(spec.channel, opt.channel)) {
    out.error = "unknown channel '" + spec.channel + "'";
    return;
  }
  opt.shards = spec.shards;
  if (spec.trace) {
    opt.trace_out = &out.trace_json;
    opt.trace_ring = spec.trace_ring;
  }
  if (spec.metrics) opt.metrics_out = &out.metrics_json;
  const check::RunResult r = check::run_workload(*spec.workload, opt);
  out.ok = r.ok;
  out.violations = r.violations;
  out.result_digest = r.digest;
  out.events = r.events;
  out.virtual_ns = r.end_time;
}

}  // namespace

RunOutcome run_runspec(const RunSpec& spec) {
  RunOutcome out;
  try {
    if (spec.workload) {
      run_workload_spec(spec, out);
    } else if (spec.scenario.empty() || spec.scenario == "-") {
      out.error = "spec names neither a scenario nor a workload";
    } else if (!run_scenario(spec, out)) {
      std::string names;
      for (const std::string& n : scenario_names())
        names += (names.empty() ? "" : ", ") + n;
      out.error = "unknown scenario '" + spec.scenario + "' (known: " + names + ")";
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = std::string("run aborted: ") + e.what();
  }
  if (!out.error.empty()) out.ok = false;
  return out;
}

std::string render_body(const RunSpec& spec, const RunOutcome& outcome) {
  std::ostringstream os;
  os << "{\"schema\":\"unr-svc-result-v1\"";
  os << ",\"spec_digest\":\"" << digest_hex(spec) << "\"";
  os << ",\"ok\":" << (outcome.ok ? "true" : "false");
  if (!outcome.error.empty())
    os << ",\"error\":\"" << json_escape(outcome.error) << "\"";
  os << ",\"digest\":\"" << hex16(outcome.result_digest) << "\"";
  os << ",\"events\":" << outcome.events;
  os << ",\"virtual_ns\":" << outcome.virtual_ns;
  os << ",\"violations\":[";
  for (std::size_t i = 0; i < outcome.violations.size(); ++i) {
    os << (i ? "," : "") << "\"" << json_escape(outcome.violations[i]) << "\"";
  }
  os << "]";
  // metrics/trace are themselves canonical JSON documents; embed verbatim so
  // a cache hit replays the exact bytes the original run produced.
  os << ",\"metrics\":";
  if (outcome.metrics_json.empty()) os << "null";
  else os << outcome.metrics_json;
  os << ",\"trace\":";
  if (outcome.trace_json.empty()) os << "null";
  else os << outcome.trace_json;
  os << "}";
  return os.str();
}

}  // namespace unr::svc
