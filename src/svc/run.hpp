// Execute one RunSpec and render its deterministic result payload.
//
// run_runspec is the single execution path behind the session server (and
// anything else that wants to run a spec in-process): an embedded workload
// goes through check::run_workload against the reference oracle; a named
// scenario goes through the svc scenario registry. Either way the outcome is
// rendered ONCE into a canonical JSON body (render_body) — the string the
// cache stores and every repeat submission is served from, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "svc/runspec.hpp"

namespace unr::svc {

struct RunOutcome {
  bool ok = false;
  std::string error;  ///< pre-run rejection (unknown scenario, bad spec)
  std::vector<std::string> violations;  ///< oracle/invariant findings
  std::uint64_t result_digest = 0;      ///< application-visible result fold
  std::uint64_t events = 0;             ///< kernel events dispatched
  Time virtual_ns = 0;                  ///< virtual completion time
  std::string metrics_json;  ///< "unr-metrics-v1" registry dump ("" = off)
  std::string trace_json;    ///< "unr-trace-v1" Chrome trace ("" = off)
};

/// Run the spec to completion in the calling thread. Never throws: failures
/// land in outcome.error / outcome.violations.
RunOutcome run_runspec(const RunSpec& spec);

/// Deterministic JSON body for a completed run ("unr-svc-result-v1"). A pure
/// function of (spec, outcome) — the cacheable, byte-stable payload.
std::string render_body(const RunSpec& spec, const RunOutcome& outcome);

}  // namespace unr::svc
