#include "svc/runspec.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "check/runner.hpp"
#include "common/profile.hpp"
#include "common/units.hpp"

namespace unr::svc {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Shortest round-tripping decimal form of a double ("0.02", not
/// "2.0000000000000004e-02") — the canonical text must satisfy
/// parse(serialize(x)) == x bit for bit.
std::string fmt_double(double v) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, p) : std::string("0");
}

bool parse_double(const std::string& s, double& out) {
  const char* b = s.c_str();
  char* e = nullptr;
  out = std::strtod(b, &e);
  return e == b + s.size() && !s.empty();
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool parse_i(const std::string& s, int& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool parse_bool(const std::string& s, bool& out) {
  if (s == "0") out = false;
  else if (s == "1") out = true;
  else return false;
  return true;
}

/// "-" stands for the empty string in single-token fields (the line grammar
/// has no quoting).
std::string opt_token(const std::string& s) { return s.empty() ? "-" : s; }
std::string from_opt_token(const std::string& s) { return s == "-" ? "" : s; }

bool split_kv(const std::string& tok, std::string& key, std::string& val) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = tok.substr(0, eq);
  val = tok.substr(eq + 1);
  return !val.empty();
}

}  // namespace

std::string to_text(const RunSpec& s) {
  std::ostringstream os;
  os << kRunSpecFormat << "\n";
  os << "scenario " << opt_token(s.scenario) << "\n";
  os << "profile " << opt_token(s.profile) << "\n";
  os << "channel " << s.channel << "\n";
  os << "topo nodes=" << s.nodes << " rpn=" << s.ranks_per_node << "\n";
  os << "run seed=" << s.seed << " shards=" << s.shards
     << " full=" << (s.full ? 1 : 0)
     << " time_budget=" << fmt_double(s.time_budget_sec) << "\n";
  os << "faults drop=" << fmt_double(s.faults.drop_rate)
     << " delay=" << fmt_double(s.faults.delay_rate)
     << " delay_max=" << s.faults.delay_max << "\n";
  for (const fabric::FaultConfig::NicFault& nf : s.faults.nic_faults) {
    os << "nicfault node=" << nf.node << " nic=" << nf.index << " at=" << nf.at
       << "\n";
  }
  for (const fabric::FaultConfig::CqBurst& cb : s.faults.cq_bursts) {
    os << "cqburst node=" << cb.node << " cq=" << cb.index << " at=" << cb.at
       << " entries=" << cb.entries << " dur=" << cb.duration << "\n";
  }
  os << "telemetry trace=" << (s.trace ? 1 : 0) << " ring=" << s.trace_ring
     << " metrics=" << (s.metrics ? 1 : 0) << "\n";
  // std::map iterates in key order — the canonical param order.
  for (const auto& [k, v] : s.params) os << "param " << k << "=" << v << "\n";
  if (s.workload) os << "workload " << check::to_text(*s.workload);
  os << "end\n";
  return os.str();
}

bool from_text(const std::string& text, RunSpec& out, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  RunSpec s;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kRunSpecFormat)
    return fail(std::string("missing '") + kRunSpecFormat + "' header");
  bool saw_end = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line
    if (word == "end") {
      saw_end = true;
      break;
    }
    if (word == "scenario") {
      std::string tok;
      if (!(ls >> tok)) return fail("bad scenario line");
      s.scenario = from_opt_token(tok);
    } else if (word == "profile") {
      std::string tok;
      if (!(ls >> tok)) return fail("bad profile line");
      s.profile = from_opt_token(tok);
    } else if (word == "channel") {
      unrlib::ChannelKind ck{};
      if (!(ls >> s.channel) || !check::channel_from_token(s.channel, ck))
        return fail("bad channel line: " + line);
    } else if (word == "workload") {
      // The rest of this line is the sub-format header; the block runs
      // verbatim to the workload's OWN "end" line (the body grammar never
      // emits another).
      std::string sub;
      std::getline(ls, sub);
      if (!sub.empty() && sub.front() == ' ') sub.erase(0, 1);
      std::string wtext = sub + "\n";
      bool wdone = false;
      while (std::getline(is, line)) {
        wtext += line;
        wtext += "\n";
        if (line == "end") {
          wdone = true;
          break;
        }
      }
      if (!wdone) return fail("unterminated workload block");
      check::WorkloadSpec w;
      std::string werr;
      if (!check::from_text(wtext, w, &werr))
        return fail("bad embedded workload: " + werr);
      s.workload = std::move(w);
    } else {
      // key=value lines; which keys are legal depends on the leading word.
      std::string tok, key, val;
      fabric::FaultConfig::NicFault nf;
      fabric::FaultConfig::CqBurst cb;
      while (ls >> tok) {
        if (!split_kv(tok, key, val)) return fail("bad token '" + tok + "'");
        bool ok = false;
        if (word == "topo") {
          if (key == "nodes") ok = parse_i(val, s.nodes);
          else if (key == "rpn") ok = parse_i(val, s.ranks_per_node);
        } else if (word == "run") {
          if (key == "seed") ok = parse_u64(val, s.seed);
          else if (key == "shards") ok = parse_i(val, s.shards);
          else if (key == "full") ok = parse_bool(val, s.full);
          else if (key == "time_budget") ok = parse_double(val, s.time_budget_sec);
        } else if (word == "faults") {
          if (key == "drop") ok = parse_double(val, s.faults.drop_rate);
          else if (key == "delay") ok = parse_double(val, s.faults.delay_rate);
          else if (key == "delay_max") ok = parse_u64(val, s.faults.delay_max);
        } else if (word == "nicfault") {
          if (key == "node") ok = parse_i(val, nf.node);
          else if (key == "nic") ok = parse_i(val, nf.index);
          else if (key == "at") ok = parse_u64(val, nf.at);
        } else if (word == "cqburst") {
          if (key == "node") ok = parse_i(val, cb.node);
          else if (key == "cq") ok = parse_i(val, cb.index);
          else if (key == "at") ok = parse_u64(val, cb.at);
          else if (key == "entries") ok = parse_u64(val, cb.entries);
          else if (key == "dur") ok = parse_u64(val, cb.duration);
        } else if (word == "telemetry") {
          if (key == "trace") ok = parse_bool(val, s.trace);
          else if (key == "ring") ok = parse_u64(val, s.trace_ring);
          else if (key == "metrics") ok = parse_bool(val, s.metrics);
        } else if (word == "param") {
          std::uint64_t v = 0;
          ok = parse_u64(val, v);
          if (ok) s.params[key] = v;
        } else {
          return fail("unknown line: " + line);
        }
        if (!ok) return fail("bad key '" + key + "' in: " + line);
      }
      if (word == "nicfault") s.faults.nic_faults.push_back(nf);
      if (word == "cqburst") s.faults.cq_bursts.push_back(cb);
    }
  }
  if (!saw_end) return fail("missing 'end' line");
  if (s.nodes < 1 || s.ranks_per_node < 1) return fail("bad topology");
  out = std::move(s);
  return true;
}

std::uint64_t digest(const RunSpec& spec) {
  const std::string text = to_text(spec);
  std::uint64_t h = kFnvBasis;
  for (const unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string digest_hex(const RunSpec& spec) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest(spec)));
  return buf;
}

// --- Flag schema ------------------------------------------------------------

namespace {

constexpr FlagInfo kSchema[] = {
    {"--scenario=NAME", "named scenario / bench scenario filter"},
    {"--profile=NAME", "system profile (TH-XY, TH-2A, HPC-IB, HPC-RoCE)"},
    {"--system=NAME", "alias of --profile (legacy bench spelling)"},
    {"--nodes=N", "simulated nodes"},
    {"--rpn=N", "ranks per node"},
    {"--seed=N", "run seed (routing jitter + fault injection)"},
    {"--shards=N", "kernel worker shards for every World (0 = auto)"},
    {"--channel=TOK", "UNR channel: native|level0|level4|fallback|auto"},
    {"--full", "paper-scale sweep (default is --quick)"},
    {"--quick", "quick sweep scale (the default)"},
    {"--time-budget=SEC", "sweeps stop early instead of blowing a budget"},
    {"--drop-rate=F", "fault timeline: wire drop probability"},
    {"--delay-rate=F", "fault timeline: delivery delay probability"},
    {"--delay-max-us=N", "fault timeline: max injected delay (microseconds)"},
    {"--nic-fault=NODE,NIC,AT_US", "fault timeline: kill a NIC (repeatable)"},
    {"--trace-on", "enable the virtual-time tracer (no output file)"},
    {"--trace-ring=N", "tracer ring capacity"},
    {"--param=K=V", "scenario parameter (repeatable)"},
};

}  // namespace

std::span<const FlagInfo> flag_schema() { return kSchema; }

std::string flags_help() {
  std::ostringstream os;
  for (const FlagInfo& f : kSchema) {
    os << "  " << f.flag;
    for (std::size_t n = std::string(f.flag).size(); n < 30; ++n) os << ' ';
    os << f.help << "\n";
  }
  return os.str();
}

FlagResult apply_flag(RunSpec& spec, const std::string& arg, std::string* err) {
  const auto bad = [&](const std::string& why) {
    if (err) *err = why;
    return FlagResult::kError;
  };
  const auto val = [&](const char* prefix) -> const char* {
    const std::size_t n = std::char_traits<char>::length(prefix);
    return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
  };
  if (arg == "--full") { spec.full = true; return FlagResult::kOk; }
  if (arg == "--quick") { spec.full = false; return FlagResult::kOk; }
  if (arg == "--trace-on") { spec.trace = true; return FlagResult::kOk; }
  if (const char* v = val("--scenario=")) { spec.scenario = v; return FlagResult::kOk; }
  if (const char* v = val("--profile=")) { spec.profile = v; return FlagResult::kOk; }
  if (const char* v = val("--system=")) { spec.profile = v; return FlagResult::kOk; }
  if (const char* v = val("--nodes=")) {
    return parse_i(v, spec.nodes) ? FlagResult::kOk : bad("bad --nodes");
  }
  if (const char* v = val("--rpn=")) {
    return parse_i(v, spec.ranks_per_node) ? FlagResult::kOk : bad("bad --rpn");
  }
  if (const char* v = val("--seed=")) {
    return parse_u64(v, spec.seed) ? FlagResult::kOk : bad("bad --seed");
  }
  if (const char* v = val("--shards=")) {
    return parse_i(v, spec.shards) ? FlagResult::kOk : bad("bad --shards");
  }
  if (const char* v = val("--channel=")) {
    unrlib::ChannelKind ck{};
    if (!check::channel_from_token(v, ck)) return bad("bad --channel token");
    spec.channel = v;
    return FlagResult::kOk;
  }
  if (const char* v = val("--time-budget=")) {
    return parse_double(v, spec.time_budget_sec) ? FlagResult::kOk
                                                 : bad("bad --time-budget");
  }
  if (const char* v = val("--drop-rate=")) {
    return parse_double(v, spec.faults.drop_rate) ? FlagResult::kOk
                                                  : bad("bad --drop-rate");
  }
  if (const char* v = val("--delay-rate=")) {
    return parse_double(v, spec.faults.delay_rate) ? FlagResult::kOk
                                                   : bad("bad --delay-rate");
  }
  if (const char* v = val("--delay-max-us=")) {
    std::uint64_t us = 0;
    if (!parse_u64(v, us)) return bad("bad --delay-max-us");
    spec.faults.delay_max = us * kUs;
    return FlagResult::kOk;
  }
  if (const char* v = val("--nic-fault=")) {
    // NODE,NIC,AT_US
    const std::string t = v;
    const std::size_t c1 = t.find(',');
    const std::size_t c2 = c1 == std::string::npos ? c1 : t.find(',', c1 + 1);
    fabric::FaultConfig::NicFault nf;
    std::uint64_t at_us = 0;
    if (c1 == std::string::npos || c2 == std::string::npos ||
        !parse_i(t.substr(0, c1), nf.node) ||
        !parse_i(t.substr(c1 + 1, c2 - c1 - 1), nf.index) ||
        !parse_u64(t.substr(c2 + 1), at_us)) {
      return bad("bad --nic-fault (want NODE,NIC,AT_US)");
    }
    nf.at = at_us * kUs;
    spec.faults.nic_faults.push_back(nf);
    return FlagResult::kOk;
  }
  if (const char* v = val("--trace-ring=")) {
    return parse_u64(v, spec.trace_ring) ? FlagResult::kOk
                                         : bad("bad --trace-ring");
  }
  if (const char* v = val("--param=")) {
    std::string key, sval;
    std::uint64_t pv = 0;
    if (!split_kv(v, key, sval) || !parse_u64(sval, pv))
      return bad("bad --param (want --param=KEY=U64)");
    spec.params[key] = pv;
    return FlagResult::kOk;
  }
  return FlagResult::kNotMine;
}

runtime::World::Config to_world_config(const RunSpec& spec,
                                       const std::string& fallback_profile) {
  runtime::World::Config wc;
  wc.nodes = spec.nodes;
  wc.ranks_per_node = spec.ranks_per_node;
  wc.profile = system_profile(spec.profile.empty() ? fallback_profile
                                                   : spec.profile);
  wc.seed = spec.seed;
  // Service/scenario runs always pin routing: the result must be a pure
  // function of the spec, and the cache serves repeats byte-identically.
  wc.deterministic_routing = true;
  wc.faults = spec.faults;
  wc.shards = spec.shards;
  wc.telemetry.trace.enabled = spec.trace;
  wc.telemetry.trace.ring_capacity = spec.trace_ring;
  wc.telemetry.metrics = spec.metrics;
  return wc;
}

}  // namespace unr::svc
