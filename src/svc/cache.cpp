#include "svc/cache.hpp"

namespace unr::svc {

std::optional<std::string> ResultCache::get(const std::string& spec_text) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(spec_text);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->body;
}

void ResultCache::put(const std::string& spec_text, const std::string& body) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t cost = spec_text.size() + body.size();
  if (cost > cfg_.max_bytes) return;
  const auto it = index_.find(spec_text);
  if (it != index_.end()) {
    bytes_ -= it->second->key.size() + it->second->body.size();
    it->second->body = body;
    bytes_ += cost;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{spec_text, body});
    index_[spec_text] = lru_.begin();
    bytes_ += cost;
  }
  evict_locked();
}

void ResultCache::evict_locked() {
  while (lru_.size() > cfg_.max_entries ||
         (bytes_ > cfg_.max_bytes && lru_.size() > 1)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.body.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}
std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}
std::uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}
std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}
std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

}  // namespace unr::svc
