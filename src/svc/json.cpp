#include "svc/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace unr::svc {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* err;
  int depth = 0;
  static constexpr int kMaxDepth = 32;

  bool fail(const char* why) {
    if (err) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s at offset %zu", why, pos);
      *err = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view w) {
    if (text.compare(pos, w.size(), w) != 0) return false;
    pos += w.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("truncated escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // UTF-8 encode the BMP code point (surrogate pairs in protocol
            // strings are not expected; a lone surrogate encodes as-is).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    if (++depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    const char c = text[pos];
    bool ok = false;
    if (c == '{') ok = parse_object(out);
    else if (c == '[') ok = parse_array(out);
    else if (c == '"') {
      out.type = Json::Type::kString;
      ok = parse_string(out.string);
    } else if (literal("true")) {
      out.type = Json::Type::kBool;
      out.boolean = true;
      ok = true;
    } else if (literal("false")) {
      out.type = Json::Type::kBool;
      out.boolean = false;
      ok = true;
    } else if (literal("null")) {
      out.type = Json::Type::kNull;
      ok = true;
    } else {
      ok = parse_number(out);
    }
    --depth;
    return ok;
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    out.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("bad number");
    out.type = Json::Type::kNumber;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out.integer);
    out.integral = ec == std::errc() && p == tok.data() + tok.size();
    return true;
  }

  bool parse_object(Json& out) {
    out.type = Json::Type::kObject;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      Json v;
      if (!parse_value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json& out) {
    out.type = Json::Type::kArray;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json v;
      if (!parse_value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool Json::parse(std::string_view text, Json& out, std::string* err) {
  Parser p{text, 0, err};
  out = Json{};
  if (!p.parse_value(out)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return p.fail("trailing garbage");
  return true;
}

const Json* Json::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::str(std::string_view key, const std::string& fallback) const {
  const Json* v = find(key);
  return v && v->type == Type::kString ? v->string : fallback;
}

std::int64_t Json::num(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  if (!v || v->type != Type::kNumber) return fallback;
  return v->integral ? v->integer : static_cast<std::int64_t>(v->number);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace unr::svc
