// unr_service — the simulation-as-a-service session server binary.
//
// Binds loopback TCP (ephemeral port by default), prints "LISTENING <port>"
// on stdout once ready (CI and tools/unr_client.py key off that line), and
// serves sessions until SIGINT/SIGTERM. See docs/SERVICE.md for the wire
// protocol and tools/unr_client.py for a reference client.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  unr::svc::Server::Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--port=", 0) == 0) cfg.port = std::stoi(a.substr(7));
    else if (a.rfind("--cache-entries=", 0) == 0)
      cfg.cache_entries = static_cast<std::size_t>(std::stoul(a.substr(16)));
    else if (a.rfind("--cache-mib=", 0) == 0)
      cfg.cache_bytes = static_cast<std::size_t>(std::stoul(a.substr(12))) << 20;
    else if (a == "--verbose") cfg.verbose = true;
    else if (a == "--help" || a == "-h") {
      std::cout << "flags: --port=N (0 = ephemeral) | --cache-entries=N | "
                   "--cache-mib=N | --verbose\n";
      return 0;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }

  unr::svc::Server server(cfg);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "unr_service: " << err << "\n";
    return 1;
  }
  std::cout << "LISTENING " << server.port() << std::endl;  // flushes

  struct sigaction sa{};
  sa.sa_handler = &on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  sigset_t empty;
  ::sigemptyset(&empty);
  while (!g_stop) ::sigsuspend(&empty);

  server.stop();
  return 0;
}
