// (seed, config)-keyed result cache for completed service runs.
//
// Keyed by the FULL canonical RunSpec text — the digest is the display /
// lookup fingerprint, but the text is the key so a 64-bit collision can
// never alias two different runs. Values are the rendered result bodies
// ("unr-svc-result-v1" JSON): a hit replays the original run's bytes
// exactly. Bounded LRU on both entry count and total cached bytes.
//
// Thread-safe: every method takes the internal mutex (session threads race
// on it). Hit/miss/eviction tallies are plain counters read through the
// accessors; the Server mirrors them into its obs::Registry under ITS lock
// (obs handles assume single-threaded updates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace unr::svc {

class ResultCache {
 public:
  struct Config {
    std::size_t max_entries = 128;
    std::size_t max_bytes = 256u << 20;  ///< bodies can embed whole traces
  };

  explicit ResultCache(Config cfg) : cfg_(cfg) {}

  /// Rendered body for a previously completed identical spec, or nullopt.
  /// A hit promotes the entry to most-recently-used.
  std::optional<std::string> get(const std::string& spec_text);

  /// Insert (or refresh) the body for a spec; evicts LRU entries as needed.
  /// Bodies larger than max_bytes are not cached at all.
  void put(const std::string& spec_text, const std::string& body);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::size_t entries() const;
  std::size_t bytes() const;

 private:
  struct Entry {
    std::string key;
    std::string body;
  };

  void evict_locked();

  Config cfg_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace unr::svc
