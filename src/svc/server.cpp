#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "svc/frame.hpp"
#include "svc/json.hpp"
#include "svc/run.hpp"
#include "svc/runspec.hpp"
#include "svc/scenarios.hpp"

namespace unr::svc {

namespace {

int parse_auto_shards() {
  const char* e = std::getenv("UNR_SHARDS");
  if (!e || !*e) return 1;
  const int v = std::atoi(e);
  return v > 0 ? v : 1;
}

std::string error_frame(const std::string& what) {
  return "{\"type\":\"error\",\"error\":\"" + json_escape(what) + "\"}";
}

}  // namespace

Server::Server(Config cfg)
    : cfg_(cfg),
      cache_(ResultCache::Config{cfg.cache_entries, cfg.cache_bytes}),
      auto_shards_(parse_auto_shards()),
      m_sessions_(registry_.counter("svc.sessions")),
      m_runs_(registry_.counter("svc.runs")),
      m_hits_(registry_.counter("svc.cache.hits")),
      m_misses_(registry_.counter("svc.cache.misses")),
      m_active_(registry_.gauge("svc.sessions.active")),
      m_cache_entries_(registry_.gauge("svc.cache.entries")),
      m_cache_bytes_(registry_.gauge("svc.cache.bytes")) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (err) *err = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, cfg_.backlog) < 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick every live session off its blocking read; a session mid-simulation
  // finishes the (bounded) run, fails its final write, and exits.
  std::vector<Session*> live;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
      live.push_back(s.get());
    }
  }
  for (Session* s : live) {
    if (s->thread.joinable()) s->thread.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  reap_finished_locked();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t plen = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (stop()) or fatal
    }
    std::lock_guard<std::mutex> lk(mu_);
    reap_finished_locked();
    auto s = std::make_unique<Session>();
    s->id = next_session_id_++;
    s->fd = fd;
    ++sessions_opened_;
    m_sessions_.inc();
    Session* raw = s.get();
    sessions_.push_back(std::move(s));
    raw->thread = std::thread([this, raw] { session_loop(*raw); });
    if (cfg_.verbose)
      std::cerr << "[svc] session " << raw->id << " open\n";
  }
}

void Server::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& s = **it;
    if (!s.done.load()) {
      ++it;
      continue;
    }
    if (s.thread.joinable()) s.thread.join();
    if (s.fd >= 0) ::close(s.fd);
    closed_bytes_in_ += s.bytes_in;
    closed_bytes_out_ += s.bytes_out;
    ++sessions_closed_;
    if (cfg_.verbose) std::cerr << "[svc] session " << s.id << " closed\n";
    it = sessions_.erase(it);
  }
}

void Server::session_loop(Session& s) {
  std::string payload;
  bool alive = true;
  while (alive && !stopping_.load()) {
    const FrameStatus st = read_frame(s.fd, payload);
    if (st == FrameStatus::kClosed) break;
    if (st == FrameStatus::kEmpty || st == FrameStatus::kTooLarge) {
      // The stream is desynced past this point: answer, then hang up.
      const std::string e =
          error_frame(std::string("bad frame: ") + frame_status_name(st));
      if (write_frame(s.fd, e) == FrameStatus::kOk) s.bytes_out += 4 + e.size();
      break;
    }
    if (st != FrameStatus::kOk) break;  // truncated / io error
    s.bytes_in += 4 + payload.size();

    std::vector<std::string> replies;
    alive = handle(s, payload, replies);
    for (const std::string& r : replies) {
      if (write_frame(s.fd, r) != FrameStatus::kOk) {
        alive = false;  // client vanished (mid-run disconnect lands here)
        break;
      }
      s.bytes_out += 4 + r.size();
    }
  }
  ::shutdown(s.fd, SHUT_RDWR);
  s.done.store(true);
}

bool Server::handle(Session& s, const std::string& payload,
                    std::vector<std::string>& replies) {
  Json req;
  std::string jerr;
  if (!Json::parse(payload, req, &jerr)) {
    replies.push_back(error_frame("bad json: " + jerr));
    return true;
  }
  const std::string op = req.str("op", "");
  if (op == "hello") {
    std::ostringstream os;
    os << "{\"type\":\"hello\",\"proto\":\"unr-svc-v1\",\"scenarios\":[";
    const auto& names = scenario_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      os << (i ? "," : "") << "\"" << names[i] << "\"";
    os << "]}";
    replies.push_back(os.str());
    return true;
  }
  if (op == "submit") {
    const Json* spec = req.find("spec");
    if (!spec || spec->type != Json::Type::kString) {
      replies.push_back(error_frame("submit needs a string 'spec'"));
      return true;
    }
    submit(s, spec->string, replies);
    return true;
  }
  if (op == "stats") {
    replies.push_back(render_stats());
    return true;
  }
  if (op == "bye") {
    replies.push_back("{\"type\":\"bye\"}");
    return false;
  }
  replies.push_back(error_frame("unknown op '" + op + "'"));
  return true;
}

void Server::submit(Session& s, const std::string& spec_text,
                    std::vector<std::string>& replies) {
  RunSpec spec;
  std::string perr;
  if (!from_text(spec_text, spec, &perr)) {
    replies.push_back(error_frame("bad spec: " + perr));
    return;
  }
  // Canonical key: re-serialize, so formatting quirks in the submitted text
  // can't split one run across two cache entries.
  const std::string key = to_text(spec);
  const std::string dhex = digest_hex(spec);

  if (auto body = cache_.get(key)) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      m_hits_.inc();
    }
    replies.push_back("{\"type\":\"status\",\"state\":\"done\",\"cache\":\"hit\","
                      "\"digest\":\"" + dhex + "\"}");
    replies.push_back("{\"type\":\"result\",\"cache\":\"hit\",\"digest\":\"" +
                      dhex + "\",\"body\":" + *body + "}");
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    m_misses_.inc();
    ++runs_;
    m_runs_.inc();
  }
  // Stream the acknowledgement BEFORE simulating so the client sees the
  // session advance while the run executes.
  const std::string status =
      "{\"type\":\"status\",\"state\":\"running\",\"cache\":\"miss\","
      "\"digest\":\"" + dhex + "\"}";
  if (write_frame(s.fd, status) == FrameStatus::kOk)
    s.bytes_out += 4 + status.size();

  // Shard arbitration: the sharded kernel flips a process-global flag around
  // its workers, so a run that will shard must not overlap any other run.
  // Tracing pins the kernel to one shard, so traced runs stay shared.
  const int effective = spec.shards == 0 ? auto_shards_ : spec.shards;
  const bool exclusive = effective > 1 && !spec.trace;
  std::string body;
  if (exclusive) {
    std::unique_lock<std::shared_mutex> gate(run_gate_);
    body = render_body(spec, run_runspec(spec));
  } else {
    std::shared_lock<std::shared_mutex> gate(run_gate_);
    body = render_body(spec, run_runspec(spec));
  }
  cache_.put(key, body);
  replies.push_back("{\"type\":\"result\",\"cache\":\"miss\",\"digest\":\"" +
                    dhex + "\",\"body\":" + body + "}");
}

std::string Server::render_stats() {
  const Stats st = stats();
  std::ostringstream os;
  os << "{\"type\":\"stats\"";
  os << ",\"sessions_opened\":" << st.sessions_opened;
  os << ",\"sessions_closed\":" << st.sessions_closed;
  os << ",\"active_sessions\":" << st.active_sessions;
  os << ",\"runs\":" << st.runs;
  os << ",\"cache\":{\"hits\":" << st.cache_hits
     << ",\"misses\":" << st.cache_misses
     << ",\"entries\":" << cache_.entries() << ",\"bytes\":" << cache_.bytes()
     << "}";
  os << ",\"bytes_in\":" << st.bytes_in;
  os << ",\"bytes_out\":" << st.bytes_out;
  {
    // Mirror the cache gauges, then dump the registry — all handle updates
    // happen under mu_, matching the registry's single-writer fast path.
    std::lock_guard<std::mutex> lk(mu_);
    m_active_.set(static_cast<std::int64_t>(st.active_sessions));
    m_cache_entries_.set(static_cast<std::int64_t>(cache_.entries()));
    m_cache_bytes_.set(static_cast<std::int64_t>(cache_.bytes()));
    std::ostringstream reg;
    registry_.write_json(reg);
    os << ",\"metrics\":" << reg.str();
  }
  os << "}";
  return os.str();
}

Server::Stats Server::stats() const {
  Stats st;
  std::lock_guard<std::mutex> lk(mu_);
  st.sessions_opened = sessions_opened_;
  st.sessions_closed = sessions_closed_;
  st.runs = runs_;
  st.cache_hits = cache_.hits();
  st.cache_misses = cache_.misses();
  st.bytes_in = closed_bytes_in_;
  st.bytes_out = closed_bytes_out_;
  for (const auto& s : sessions_) {
    if (!s->done.load()) ++st.active_sessions;
    st.bytes_in += s->bytes_in;
    st.bytes_out += s->bytes_out;
  }
  return st;
}

}  // namespace unr::svc
