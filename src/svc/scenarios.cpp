#include "svc/scenarios.hpp"

#include <cstring>
#include <sstream>
#include <vector>

#include "check/runner.hpp"
#include "runtime/world.hpp"
#include "scenarios/traffic.hpp"
#include "unr/unr.hpp"

namespace unr::svc {

namespace {

using runtime::Rank;
using runtime::World;
using unrlib::Blk;
using unrlib::MemHandle;
using unrlib::SigId;
using unrlib::Unr;

/// FNV-1a fold, shared with the RunSpec digest so every "digest" the service
/// reports speaks the same hash.
std::uint64_t fold(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

/// Capture telemetry + kernel counters BEFORE the World tears down.
void finish(World& w, const RunSpec& spec, RunOutcome& out) {
  out.events = w.kernel().event_count();
  out.virtual_ns = w.elapsed();
  if (spec.trace) {
    std::ostringstream ts;
    w.kernel().telemetry().tracer().write_json(ts);
    out.trace_json = ts.str();
  }
  if (spec.metrics) {
    std::ostringstream ms;
    w.kernel().telemetry().registry().write_json(ms);
    out.metrics_json = ms.str();
  }
}

unrlib::ChannelKind channel_of(const RunSpec& spec, RunOutcome& out) {
  unrlib::ChannelKind k = unrlib::ChannelKind::kNative;
  if (!check::channel_from_token(spec.channel, k)) {
    out.error = "unknown channel '" + spec.channel + "'";
  }
  return k;
}

/// Notified-PUT ping-pong between ranks 0 and 1 (the Fig. 4 shape).
/// params: size (bytes, default 4096), iters (default 100).
void scn_pingpong(const RunSpec& spec, RunOutcome& out) {
  World::Config wc = to_world_config(spec, "TH-XY");
  if (wc.nodes * wc.ranks_per_node < 2) {
    out.error = "pingpong needs at least 2 ranks";
    return;
  }
  const unrlib::ChannelKind ch = channel_of(spec, out);
  if (!out.error.empty()) return;
  const std::size_t size =
      static_cast<std::size_t>(spec.param("size", 4096));
  const int iters = static_cast<int>(spec.param("iters", 100));
  World w(wc);
  Unr::Config uc;
  uc.channel = ch;
  Unr unr(w, uc);
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(w.nranks()), 0);
  w.run([&](Rank& r) {
    if (r.id() > 1) return;
    std::vector<std::byte> buf(size);
    // Seed the payload so the fold below sees data, not zeroes: rank 0's
    // pattern round-trips through rank 1 and back.
    for (std::size_t i = 0; i < size; ++i)
      buf[i] = static_cast<std::byte>((i * 131u + spec.seed) & 0xFF);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    const SigId rsig = unr.sig_init(r.id(), 1);
    const Blk my_blk = unr.blk_init(r.id(), mh, 0, size, rsig);
    const int peer = 1 - r.id();
    Blk peer_blk;
    r.sendrecv(peer, 1, &my_blk, sizeof my_blk, peer, 1, &peer_blk,
               sizeof peer_blk);
    const Blk send_blk = unr.blk_init(r.id(), mh, 0, size);
    for (int i = 0; i < iters; ++i) {
      if (r.id() == 0) {
        unr.put(0, send_blk, peer_blk);
        unr.sig_wait(0, rsig);
        unr.sig_reset(0, rsig);
      } else {
        unr.sig_wait(1, rsig);
        unr.sig_reset(1, rsig);
        unr.put(1, send_blk, peer_blk);
      }
    }
    digests[static_cast<std::size_t>(r.id())] =
        fold(kFnvOffset, buf.data(), buf.size());
  });
  out.result_digest = kFnvOffset;
  for (const std::uint64_t d : digests)
    out.result_digest = fold(out.result_digest, &d, sizeof d);
  finish(w, spec, out);
  out.ok = true;
}

/// One-sided notified-PUT stream 0 -> 1 under the spec's fault timeline —
/// the faults-ablation shape, exercising NACK/backoff and retransmission.
/// params: size (default 4096), iters (default 200).
void scn_put_stream(const RunSpec& spec, RunOutcome& out) {
  World::Config wc = to_world_config(spec, "TH-XY");
  if (wc.nodes * wc.ranks_per_node < 2) {
    out.error = "put_stream needs at least 2 ranks";
    return;
  }
  const unrlib::ChannelKind ch = channel_of(spec, out);
  if (!out.error.empty()) return;
  const std::size_t size =
      static_cast<std::size_t>(spec.param("size", 4096));
  const int iters = static_cast<int>(spec.param("iters", 200));
  World w(wc);
  Unr::Config uc;
  uc.channel = ch;
  uc.engine.poll_interval = 10 * kUs;
  Unr unr(w, uc);
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(w.nranks()), 0);
  w.run([&](Rank& r) {
    if (r.id() > 1) return;
    std::vector<std::byte> buf(size);
    for (std::size_t i = 0; i < size; ++i)
      buf[i] = static_cast<std::byte>((i * 31u + 7u * spec.seed) & 0xFF);
    const MemHandle mh = unr.mem_reg(r.id(), buf.data(), buf.size());
    if (r.id() == 1) {
      const SigId rsig = unr.sig_init(1, iters);
      const Blk rblk = unr.blk_init(1, mh, 0, size, rsig);
      r.send(0, 1, &rblk, sizeof rblk);
      unr.sig_wait(1, rsig);
      digests[1] = fold(kFnvOffset, buf.data(), buf.size());
    } else {
      Blk rblk;
      r.recv(1, 1, &rblk, sizeof rblk);
      const Blk sblk = unr.blk_init(0, mh, 0, size);
      for (int i = 0; i < iters; ++i) unr.put(0, sblk, rblk);
      digests[0] = fold(kFnvOffset, buf.data(), buf.size());
    }
  });
  out.result_digest = kFnvOffset;
  for (const std::uint64_t d : digests)
    out.result_digest = fold(out.result_digest, &d, sizeof d);
  finish(w, spec, out);
  out.ok = true;
}

/// allreduce_sum across every rank, repeated. params: count (doubles per
/// rank, default 256), iters (default 10). The digest folds the reduced
/// vector — identical on every rank, verified by folding all of them.
void scn_allreduce(const RunSpec& spec, RunOutcome& out) {
  World::Config wc = to_world_config(spec, "HPC-IB");
  World w(wc);
  const std::size_t count =
      static_cast<std::size_t>(spec.param("count", 256));
  const int iters = static_cast<int>(spec.param("iters", 10));
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(w.nranks()), 0);
  w.run([&](Rank& r) {
    std::vector<double> v(count);
    for (std::size_t i = 0; i < count; ++i)
      v[i] = static_cast<double>(r.id() + 1) * static_cast<double>(i % 17);
    for (int it = 0; it < iters; ++it) {
      r.allreduce_sum(v.data(), v.size());
      r.barrier();
    }
    digests[static_cast<std::size_t>(r.id())] =
        fold(kFnvOffset, v.data(), v.size() * sizeof(double));
  });
  out.result_digest = kFnvOffset;
  for (const std::uint64_t d : digests)
    out.result_digest = fold(out.result_digest, &d, sizeof d);
  finish(w, spec, out);
  out.ok = true;
}

/// Scenario-pack traffic patterns (src/scenarios): the spec's scenario name
/// selects the builder, params map onto TrafficParams (size/count/depth/
/// rounds/faults), and the expanded workload runs through the oracle-checked
/// runner — so a served AI-traffic run is verified, not just timed. Channel,
/// shards and telemetry route exactly like embedded-workload runs.
void scn_traffic(const RunSpec& spec, RunOutcome& out) {
  const scenarios::Pattern* pat = scenarios::find_pattern(spec.scenario);
  if (pat == nullptr) {  // unreachable: dispatch matched the name
    out.error = "unknown traffic pattern '" + spec.scenario + "'";
    return;
  }
  scenarios::TrafficParams p;
  p.seed = spec.seed;
  p.nodes = spec.nodes;
  p.ranks_per_node = spec.ranks_per_node;
  if (!spec.profile.empty() && spec.profile != "-") p.profile = spec.profile;
  p.size = spec.param("size", 0);
  p.count = static_cast<int>(spec.param("count", 0));
  p.depth = static_cast<int>(spec.param("depth", 0));
  p.rounds = static_cast<int>(spec.param("rounds", 2));
  p.faults = spec.param("faults", 0) != 0;
  const check::WorkloadSpec w = pat->make(p);
  const std::string invalid = check::validate(w);
  if (!invalid.empty()) {
    out.error = "invalid traffic workload: " + invalid;
    return;
  }
  check::RunOptions opt;
  if (!check::channel_from_token(spec.channel, opt.channel)) {
    out.error = "unknown channel '" + spec.channel + "'";
    return;
  }
  opt.shards = spec.shards;
  if (spec.trace) {
    opt.trace_out = &out.trace_json;
    opt.trace_ring = spec.trace_ring;
  }
  if (spec.metrics) opt.metrics_out = &out.metrics_json;
  const check::RunResult r = check::run_workload(w, opt);
  out.ok = r.ok;
  out.violations = r.violations;
  out.result_digest = r.digest;
  out.events = r.events;
  out.virtual_ns = r.end_time;
}

struct Entry {
  const char* name;
  void (*fn)(const RunSpec&, RunOutcome&);
};

constexpr Entry kScenarios[] = {
    {"pingpong", &scn_pingpong},
    {"put_stream", &scn_put_stream},
    {"allreduce", &scn_allreduce},
    {"ai_ring_allreduce", &scn_traffic},
    {"ai_tree_allreduce", &scn_traffic},
    {"ai_pipeline", &scn_traffic},
    {"ai_moe_alltoall", &scn_traffic},
    {"sync_faa_tree", &scn_traffic},
    {"sync_barrier_tree", &scn_traffic},
    {"sync_work_steal", &scn_traffic},
};

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kScenarios) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

bool is_scenario(const std::string& name) {
  for (const Entry& e : kScenarios)
    if (name == e.name) return true;
  return false;
}

bool run_scenario(const RunSpec& spec, RunOutcome& out) {
  for (const Entry& e : kScenarios) {
    if (spec.scenario == e.name) {
      e.fn(spec, out);
      if (!out.error.empty()) out.ok = false;
      return true;
    }
  }
  return false;
}

}  // namespace unr::svc
