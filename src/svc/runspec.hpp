// svc::RunSpec — the ONE canonical, serializable description of a run.
//
// Every way this repo describes "what to simulate" funnels through this
// type: the bench harnesses parse their command lines into it (bench_util's
// Options is a thin view over it), the fuzz harness embeds its WorkloadSpec
// in it when writing .repro files, and the session server (svc::Server)
// accepts it over the wire. A run is a pure function of the RunSpec — the
// seed, the topology, the fault timeline and the telemetry toggles are all
// inside it — which is what makes completed runs cacheable: digest() over
// the canonical text form is the cache key, and two specs with equal digests
// produce byte-identical results.
//
// Canonical text form ("unrspec v1", one field block per line, fixed order,
// params sorted by key; from_text(to_text(s)) == s exactly):
//
//   unrspec v1
//   scenario pingpong            # "-" = none (a workload block follows)
//   profile TH-XY                # "-" = harness/scenario default
//   channel native               # UNR software channel for workload runs
//   topo nodes=2 rpn=1
//   run seed=1 shards=0 full=0 time_budget=0
//   faults drop=0 delay=0 delay_max=20000
//   nicfault node=0 nic=1 at=40000            # 0..N lines
//   cqburst node=0 cq=0 at=0 entries=4 dur=0  # 0..N lines
//   telemetry trace=0 ring=65536 metrics=1
//   param iters=100                           # 0..N lines, sorted
//   param size=4096
//   workload unrfuzz v2                       # optional embedded block,
//   ...                                       # verbatim unrfuzz v2 body,
//   end                                       # terminated by ITS OWN "end"
//   end
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "check/workload.hpp"
#include "fabric/fault.hpp"
#include "runtime/world.hpp"

namespace unr::svc {

inline constexpr const char* kRunSpecFormat = "unrspec v1";

struct RunSpec {
  /// Named scenario from svc::scenario_names() ("" = none). Exactly one of
  /// scenario / workload describes a service run; benches use the field as a
  /// filter and ignore the registry.
  std::string scenario;
  /// Embedded explicit workload (the fuzz harness's unit of execution).
  std::optional<check::WorkloadSpec> workload;

  // --- Machine / topology (scenario runs; a workload carries its own) ---
  std::string profile;  ///< system profile name; "" = harness/scenario default
  int nodes = 2;
  int ranks_per_node = 1;
  std::uint64_t seed = 1;
  int shards = 0;              ///< kernel worker shards (0 = auto)
  std::string channel = "native";  ///< UNR software channel token
  bool full = false;           ///< bench scale: quick (default) vs paper-scale
  double time_budget_sec = 0;  ///< sweeps stop early; 0 = unlimited

  // --- Fault timeline (scenario runs; workloads derive their own) ---
  fabric::FaultConfig faults;

  // --- Telemetry toggles (outputs routed per invocation, NOT part of the
  // spec: file paths / wire streaming are I/O concerns; whether the tracer
  // runs — which also pins the kernel to one shard — is part of the run) ---
  bool trace = false;
  std::size_t trace_ring = 1u << 16;
  bool metrics = true;

  // --- Scenario parameters (canonical: sorted by key) ---
  std::map<std::string, std::uint64_t> params;

  std::uint64_t param(const std::string& key, std::uint64_t fallback) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }

  bool operator==(const RunSpec&) const = default;
};

/// Canonical text form (see the header comment). to_text always emits every
/// field in a fixed order so equal specs serialize identically.
std::string to_text(const RunSpec& spec);
bool from_text(const std::string& text, RunSpec& out, std::string* error);

/// FNV-1a over the canonical text: the result-cache key. Two RunSpecs are
/// the same run iff their canonical texts match; the cache stores the full
/// text next to the digest so a collision can never alias two runs.
std::uint64_t digest(const RunSpec& spec);
std::string digest_hex(const RunSpec& spec);

// --- The one flag schema ----------------------------------------------------
// Every harness derives its run-description flags from this table instead of
// hand-rolling a parser; unknown flags fail loudly at the call site.

struct FlagInfo {
  const char* flag;  ///< e.g. "--seed=N"
  const char* help;
};
std::span<const FlagInfo> flag_schema();
/// One line per schema flag, for --help output.
std::string flags_help();

enum class FlagResult {
  kNotMine,  ///< not a RunSpec flag; the caller's own flags get a chance
  kOk,
  kError,  ///< recognized but malformed; *err explains
};
/// Apply one command-line argument to the spec ("--seed=7", "--full", ...).
FlagResult apply_flag(RunSpec& spec, const std::string& arg, std::string* err);

/// Build the World::Config a scenario run describes: topology, profile
/// (resolved via `fallback_profile` when the spec leaves it empty), seed,
/// shards, fault timeline and telemetry toggles. Output paths stay empty —
/// callers route them per invocation.
runtime::World::Config to_world_config(const RunSpec& spec,
                                       const std::string& fallback_profile);

}  // namespace unr::svc
