// Named scenarios the session server can run directly from a RunSpec —
// parameterized miniatures of the bench workloads (notified-PUT ping-pong,
// a faultable PUT stream, an allreduce ring), each a pure function of the
// spec. Scenario parameters come from RunSpec::params with per-scenario
// defaults; topology/profile/faults/telemetry come from the spec proper.
#pragma once

#include <string>
#include <vector>

#include "svc/run.hpp"
#include "svc/runspec.hpp"

namespace unr::svc {

/// Registry listing, in canonical order (stable for docs and error text).
const std::vector<std::string>& scenario_names();

bool is_scenario(const std::string& name);

/// Execute a named scenario. False when the name is unknown; execution
/// failures (bad parameters, run aborts) come back inside `out`.
bool run_scenario(const RunSpec& spec, RunOutcome& out);

}  // namespace unr::svc
