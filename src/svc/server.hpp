// svc::Server — simulation-as-a-service over plain TCP.
//
// A long-running session server: clients connect (loopback TCP), exchange
// length-prefixed JSON frames (see frame.hpp), and submit RunSpecs. Each
// accepted connection is one SESSION with its own thread, its own byte
// accounting, and strictly sequential request handling; concurrency comes
// from many sessions. Completed runs land in a bounded LRU keyed by the
// canonical RunSpec text — a repeat submission (same digest) is served from
// the cache byte-identically, without re-simulating.
//
// Protocol (every frame is one JSON object):
//   -> {"op":"hello"}
//   <- {"type":"hello","proto":"unr-svc-v1","scenarios":[...]}
//   -> {"op":"submit","spec":"<unrspec v1 text>"}
//   <- {"type":"status","state":"running","cache":"hit"|"miss","digest":...}
//   <- {"type":"result","cache":...,"digest":...,"body":{unr-svc-result-v1}}
//   -> {"op":"stats"}
//   <- {"type":"stats",...,"metrics":{unr-metrics-v1 registry dump}}
//   -> {"op":"bye"}
//   <- {"type":"bye"}           (server closes the session afterwards)
// Malformed JSON / unknown ops get {"type":"error",...} and the session
// lives on; framing violations (zero-length / oversized / truncated frames)
// end the session — the stream is desynced and nothing after it can be
// trusted.
//
// Concurrency contract with the simulator: the sharded kernel flips the
// process-global obs concurrent-update flag around its worker threads, so a
// sharded run may not overlap ANY other run in the process. The server
// arbitrates with a shared_mutex — scalar (1-shard) runs take it shared and
// overlap freely; a run that will shard takes it exclusive.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "svc/cache.hpp"

namespace unr::svc {

class Server {
 public:
  struct Config {
    int port = 0;      ///< 0 = OS-assigned ephemeral (read back via port())
    int backlog = 64;
    std::size_t cache_entries = 128;
    std::size_t cache_bytes = 256u << 20;
    bool verbose = false;  ///< log session lifecycle to stderr
  };

  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t active_sessions = 0;
    std::uint64_t runs = 0;          ///< submissions actually simulated
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t bytes_in = 0;      ///< wire bytes, all sessions, incl. live
    std::uint64_t bytes_out = 0;
  };

  Server() : Server(Config{}) {}
  explicit Server(Config cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread. False (with *err) on failure.
  bool start(std::string* err = nullptr);

  /// Stop accepting, shut every session socket, join every thread. Sessions
  /// mid-simulation finish their run first (runs are bounded); their final
  /// write fails and the session exits. Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  int port() const { return port_; }

  Stats stats() const;

 private:
  struct Session {
    std::uint64_t id = 0;
    int fd = -1;
    /// Written by the session thread, read by stats() — hence atomic.
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void accept_loop();
  void session_loop(Session& s);
  /// Handle one decoded request; appends reply frames to `replies`.
  /// Returns false when the session should end (bye).
  bool handle(Session& s, const std::string& payload,
              std::vector<std::string>& replies);
  void submit(Session& s, const std::string& spec_text,
              std::vector<std::string>& replies);
  std::string render_stats();
  void reap_finished_locked();

  Config cfg_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  ResultCache cache_;
  /// Shard arbitration (see the header comment): shared = scalar run,
  /// exclusive = run whose kernel will spawn worker shards.
  std::shared_mutex run_gate_;
  int auto_shards_ = 1;  ///< resolved UNR_SHARDS default for shards=0 specs

  mutable std::mutex mu_;  ///< sessions list + totals + registry handles
  std::list<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_closed_ = 0;
  std::uint64_t runs_ = 0;
  std::uint64_t closed_bytes_in_ = 0;   ///< totals folded in at session end
  std::uint64_t closed_bytes_out_ = 0;

  obs::Registry registry_{true};
  obs::Counter m_sessions_, m_runs_, m_hits_, m_misses_;
  obs::Gauge m_active_, m_cache_entries_, m_cache_bytes_;
};

}  // namespace unr::svc
