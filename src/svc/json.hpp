// Minimal JSON for the service wire protocol — no external dependencies.
//
// The protocol's frames are small, flat-ish JSON objects (op codes, spec
// text, result summaries), so this is a deliberately small recursive-descent
// parser plus an escaping helper for composing responses with ostringstream.
// Numbers are held as double AND as int64 when the text was integral, so
// byte counts and event counts survive exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace unr::svc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::int64_t integer = 0;  ///< valid when `integral`
  bool integral = false;
  std::string string;
  std::vector<std::pair<std::string, Json>> members;  ///< kObject, in order
  std::vector<Json> items;                            ///< kArray

  /// Parse a complete JSON document; trailing garbage is an error.
  static bool parse(std::string_view text, Json& out, std::string* err);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Convenience string member with fallback.
  std::string str(std::string_view key, const std::string& fallback = "") const;
  /// Convenience integer member with fallback.
  std::int64_t num(std::string_view key, std::int64_t fallback = 0) const;
};

/// JSON string escaping (control chars, quotes, backslash) — the composing
/// side of the protocol. Returns the escaped body WITHOUT surrounding quotes.
std::string json_escape(std::string_view s);

}  // namespace unr::svc
