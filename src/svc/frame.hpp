// Length-prefixed framing over a byte stream (the service wire format).
//
// Every frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. Rules, enforced on BOTH ends:
//   * zero-length frames are a protocol error (there is no valid empty JSON
//     document, and a length of 0 is the classic desync symptom);
//   * frames above kMaxFrameBytes are a protocol error — the reader refuses
//     BEFORE allocating, so a corrupt length can't balloon memory;
//   * short reads/writes are retried: a frame may arrive one byte at a time
//     across any boundary (tests drip-feed exactly that).
//
// All functions are EINTR-safe and never raise SIGPIPE (writes use
// MSG_NOSIGNAL); errors come back as FrameStatus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace unr::svc {

inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  ///< 16 MiB

enum class FrameStatus {
  kOk,
  kClosed,    ///< clean EOF between frames
  kTruncated, ///< EOF inside a frame
  kTooLarge,  ///< advertised length exceeds kMaxFrameBytes
  kEmpty,     ///< advertised length is zero
  kIoError,   ///< read()/send() failed
};

const char* frame_status_name(FrameStatus s);

/// Read one complete frame from `fd` (blocking, looping over partial reads).
FrameStatus read_frame(int fd, std::string& payload);

/// Write one complete frame to `fd` (blocking, looping over partial writes).
FrameStatus write_frame(int fd, const std::string& payload);

/// Encode payload into a wire buffer (prefix + payload) — for tests and for
/// clients that batch their own writes. False when the payload is an illegal
/// frame (empty / too large).
bool encode_frame(const std::string& payload, std::string& wire);

}  // namespace unr::svc
