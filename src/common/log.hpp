// Minimal leveled logging plus an interceptable warning channel.
//
// UNR's bug-avoiding interfaces (Section IV-D of the paper) report suspected
// synchronization errors as warnings; tests install a handler to assert that
// the detector fires (or stays silent).
#pragma once

#include <functional>
#include <string>

namespace unr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& m) { log_message(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::kInfo, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::kError, m); }

/// Warnings additionally go through a replaceable handler (used by tests to
/// capture UNR's synchronization-error diagnostics). The handler runs before
/// the normal log output; returning is always safe.
using WarnHandler = std::function<void(const std::string&)>;
void set_warn_handler(WarnHandler handler);  ///< pass nullptr to reset
void log_warn(const std::string& msg);

}  // namespace unr
